// Heterogeneous-cluster behaviour (paper §8, "Adaptability to heterogeneous
// clusters"): identical GPUs placed together keep per-category symmetry.
// Group extraction must put unequal servers into distinct isomorphism
// classes, and synthesis must still produce valid schedules.
#include <gtest/gtest.h>

#include "coll/collective.h"
#include "core/synthesizer.h"
#include "runtime/executor.h"
#include "topo/isomorphism.h"
#include "topo/topology.h"

namespace syccl {
namespace {

/// Two fast servers (200 GB/s NVLink) and two slow ones (100 GB/s), all on
/// one leaf through per-GPU NICs.
topo::Topology mixed_cluster() {
  topo::Topology t;
  const auto leaf = t.add_node(topo::NodeKind::Switch, -1, 1, "leaf");
  for (int s = 0; s < 4; ++s) {
    const double nv_beta = s < 2 ? 1.0 / 200e9 : 1.0 / 100e9;
    const auto nvsw =
        t.add_node(topo::NodeKind::Switch, s, 0, "nvsw" + std::to_string(s));
    for (int g = 0; g < 4; ++g) {
      const auto gpu = t.add_node(topo::NodeKind::Gpu, s, g,
                                  "gpu" + std::to_string(s) + "." + std::to_string(g));
      t.add_duplex_link(gpu, nvsw, 0.2e-6, nv_beta, "nvlink");
      const auto nic = t.add_node(topo::NodeKind::Nic, s, g,
                                  "nic" + std::to_string(s) + "." + std::to_string(g));
      t.add_duplex_link(gpu, nic, 0.2e-6, 1.0 / 100e9, "pcie");
      t.add_duplex_link(nic, leaf, 2.5e-6, 1.0 / 25e9, "net");
    }
  }
  return t;
}

TEST(Heterogeneous, ServersFallIntoTwoIsomorphismClasses) {
  const auto topo = mixed_cluster();
  const auto groups = topo::extract_groups(topo);
  ASSERT_EQ(groups.num_dims(), 2);
  const auto classes = topo::isomorphism_classes(groups.dims[0].groups);
  ASSERT_EQ(classes.size(), 4u);
  EXPECT_EQ(classes[0], classes[1]);  // the two fast servers
  EXPECT_EQ(classes[2], classes[3]);  // the two slow servers
  EXPECT_NE(classes[0], classes[2]);
  EXPECT_FALSE(topo::isomorphic(groups.dims[0].groups[0], groups.dims[0].groups[2]));
}

TEST(Heterogeneous, SynthesisStillProducesValidSchedules) {
  const auto topo = mixed_cluster();
  core::SynthesisConfig cfg;
  cfg.sketch.max_prototypes = 3;
  core::Synthesizer synth(topo, cfg);
  for (const auto kind : {coll::CollKind::AllGather, coll::CollKind::ReduceScatter}) {
    const coll::Collective c = kind == coll::CollKind::AllGather
                                   ? coll::make_allgather(16, 16 << 20)
                                   : coll::make_reduce_scatter(16, 16 << 20);
    const auto r = synth.synthesize(c);
    EXPECT_GT(r.predicted_time, 0.0);
    const auto exec = runtime::execute_and_verify(r.schedule, c);
    EXPECT_TRUE(exec.ok) << (exec.errors.empty() ? "" : exec.errors.front());
  }
}

TEST(Heterogeneous, SolverRespectsSlowServerLinks) {
  // The same broadcast inside a slow server must take about twice as long
  // as inside a fast one at bandwidth-bound sizes.
  const auto topo = mixed_cluster();
  core::Synthesizer synth(topo);
  // Rooted broadcasts covering all 16 ranks; time dominated by the slowest
  // fills, so compare rooted at fast (0) vs slow (12) — both must work.
  const auto fast = synth.synthesize(coll::make_broadcast(16, 64 << 20, 0));
  const auto slow = synth.synthesize(coll::make_broadcast(16, 64 << 20, 12));
  EXPECT_GT(fast.predicted_time, 0.0);
  EXPECT_GT(slow.predicted_time, 0.0);
}

}  // namespace
}  // namespace syccl
