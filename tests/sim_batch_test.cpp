// Tests for the simulator's batched multi-candidate API: run_batch /
// time_collectives / tune_issue_orders must produce byte-identical results to
// the equivalent serial loop regardless of thread-pool size, capture
// per-candidate failures without masking the others, and mutate schedules
// exactly like their serial counterparts.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "coll/collective.h"
#include "fuzz/generators.h"
#include "sim/schedule.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "topo/groups.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace syccl::sim {
namespace {

struct BatchFixture {
  topo::Topology topo;
  topo::TopologyGroups groups;
  coll::Collective coll;
  std::vector<Schedule> schedules;

  explicit BatchFixture(std::uint64_t seed, int num_candidates = 8)
      : topo(topo::build_multi_rail(topo::MultiRailSpec{2, 4})),
        groups(topo::extract_groups(topo)),
        coll(coll::make_allgather(8, 1 << 16)) {
    util::Rng rng(seed);
    for (int i = 0; i < num_candidates; ++i) {
      Schedule s = fuzz::random_direct_schedule(coll, groups, rng);
      if (i % 2 == 1) fuzz::mutate_schedule(s, groups, rng, 3);
      schedules.push_back(std::move(s));
    }
  }

  std::vector<const Schedule*> pointers() const {
    std::vector<const Schedule*> out;
    for (const auto& s : schedules) out.push_back(&s);
    return out;
  }
};

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.num_events, b.num_events);
  ASSERT_EQ(a.op_start.size(), b.op_start.size());
  ASSERT_EQ(a.op_finish.size(), b.op_finish.size());
  for (std::size_t i = 0; i < a.op_start.size(); ++i) {
    EXPECT_EQ(a.op_start[i], b.op_start[i]) << "op " << i;
    EXPECT_EQ(a.op_finish[i], b.op_finish[i]) << "op " << i;
  }
}

TEST(SimBatch, RunBatchMatchesSerialRuns) {
  const BatchFixture fx(101);
  const Simulator sim(fx.groups);
  util::ThreadPool pool(4);

  const auto batch = sim.run_batch(fx.pointers(), &pool);
  ASSERT_EQ(batch.size(), fx.schedules.size());
  for (std::size_t i = 0; i < fx.schedules.size(); ++i) {
    const SimResult serial = sim.run(fx.schedules[i]);
    expect_identical(batch[i], serial);
  }
}

TEST(SimBatch, TimeCollectivesIsPoolInvariant) {
  const BatchFixture fx(202);
  const Simulator sim(fx.groups);
  util::ThreadPool pool(7);  // deliberately odd vs. candidate count

  const auto serial = sim.time_collectives(fx.pointers(), fx.coll, nullptr);
  const auto pooled = sim.time_collectives(fx.pointers(), fx.coll, &pool);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok()) << serial[i].error;
    ASSERT_TRUE(pooled[i].ok()) << pooled[i].error;
    EXPECT_EQ(serial[i].time, pooled[i].time) << "candidate " << i;
    EXPECT_EQ(serial[i].time, sim.time_collective(fx.schedules[i], fx.coll));
  }
}

TEST(SimBatch, ErrorsAreCapturedPerCandidate) {
  BatchFixture fx(303, 4);
  // Break candidate 1: an op whose source never receives the piece.
  fx.schedules[1].ops.front().src = (fx.schedules[1].ops.front().src + 1) % 8;
  fx.schedules[1].ops.front().dst = (fx.schedules[1].ops.front().src + 1) % 8;

  const Simulator sim(fx.groups);
  util::ThreadPool pool(4);
  const auto timings = sim.time_collectives(fx.pointers(), fx.coll, &pool);
  ASSERT_EQ(timings.size(), 4u);
  EXPECT_FALSE(timings[1].ok());
  EXPECT_FALSE(timings[1].error.empty());
  for (std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
    ASSERT_TRUE(timings[i].ok()) << timings[i].error;
    EXPECT_EQ(timings[i].time, sim.time_collective(fx.schedules[i], fx.coll));
  }
}

TEST(SimBatch, RunBatchRethrowsFirstFailingCandidate) {
  BatchFixture fx(404, 3);
  fx.schedules[2].ops.front().src = (fx.schedules[2].ops.front().src + 1) % 8;
  fx.schedules[2].ops.front().dst = (fx.schedules[2].ops.front().src + 1) % 8;

  const Simulator sim(fx.groups);
  util::ThreadPool pool(3);
  EXPECT_THROW(sim.run_batch(fx.pointers(), &pool), std::invalid_argument);
}

TEST(SimBatch, TuneIssueOrdersIsPoolInvariant) {
  const BatchFixture fx(505);
  const Simulator sim(fx.groups);
  util::ThreadPool pool(5);

  // Three independent copies: tuned serially one-by-one, batched without a
  // pool, and batched across the pool. All three must agree on the final op
  // order and the reported time.
  std::vector<Schedule> one_by_one = fx.schedules;
  std::vector<Schedule> batch_serial = fx.schedules;
  std::vector<Schedule> batch_pooled = fx.schedules;

  std::vector<double> expect_times;
  for (auto& s : one_by_one) expect_times.push_back(sim.tune_issue_order(s, fx.coll));

  const auto as_ptrs = [](std::vector<Schedule>& v) {
    std::vector<Schedule*> out;
    for (auto& s : v) out.push_back(&s);
    return out;
  };
  const auto ts = sim.tune_issue_orders(as_ptrs(batch_serial), fx.coll, 2, nullptr);
  const auto tp = sim.tune_issue_orders(as_ptrs(batch_pooled), fx.coll, 2, &pool);

  ASSERT_EQ(ts.size(), fx.schedules.size());
  ASSERT_EQ(tp.size(), fx.schedules.size());
  for (std::size_t i = 0; i < fx.schedules.size(); ++i) {
    ASSERT_TRUE(ts[i].ok()) << ts[i].error;
    ASSERT_TRUE(tp[i].ok()) << tp[i].error;
    EXPECT_EQ(ts[i].time, expect_times[i]);
    EXPECT_EQ(tp[i].time, expect_times[i]);
    ASSERT_EQ(batch_serial[i].ops.size(), one_by_one[i].ops.size());
    for (std::size_t o = 0; o < one_by_one[i].ops.size(); ++o) {
      const TransferOp& want = one_by_one[i].ops[o];
      const TransferOp& got_s = batch_serial[i].ops[o];
      const TransferOp& got_p = batch_pooled[i].ops[o];
      EXPECT_TRUE(got_s.piece == want.piece && got_s.src == want.src &&
                  got_s.dst == want.dst && got_s.phase == want.phase)
          << "candidate " << i << " op " << o;
      EXPECT_TRUE(got_p.piece == want.piece && got_p.src == want.src &&
                  got_p.dst == want.dst && got_p.phase == want.phase)
          << "candidate " << i << " op " << o;
    }
  }
}

TEST(SimBatch, EmptyBatchIsFine) {
  const BatchFixture fx(606, 1);
  const Simulator sim(fx.groups);
  EXPECT_TRUE(sim.run_batch({}, nullptr).empty());
  EXPECT_TRUE(sim.time_collectives({}, fx.coll, nullptr).empty());
}

}  // namespace
}  // namespace syccl::sim
