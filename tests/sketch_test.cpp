// Tests for the sketch IR, search, pruning, replication and combination.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sketch/alltoall.h"
#include "sketch/combine.h"
#include "sketch/prune.h"
#include "sketch/replicate.h"
#include "sketch/search.h"
#include "topo/builders.h"
#include "topo/groups.h"

namespace syccl::sketch {
namespace {

struct Fig3Fixture {
  // Paper Fig. 3: 4 servers × 4 GPUs, 4 rails + spine.
  topo::Topology topo;
  topo::TopologyGroups groups;
  Fig3Fixture() : topo(topo::build_multi_rail({4, 4, topo::params::nvlink_h800(),
                                               topo::params::nic_400g(),
                                               topo::params::fabric_400g(), true})),
                  groups(topo::extract_groups(topo)) {}
};

/// The paper's sketch ① (Fig. 5): stage 0 — D0.G0 {0}→{1,2,3} and D1.G0
/// {0}→{4,8,12}; stage 1 — D0.G1..3 fill the remaining GPUs.
Sketch paper_sketch_1() {
  Sketch s;
  s.root = 0;
  s.pattern = RootedPattern::Broadcast;
  Stage st0;
  st0.demands.push_back(SubDemandSpec{0, 0, {0}, {1, 2, 3}});
  st0.demands.push_back(SubDemandSpec{1, 0, {0}, {4, 8, 12}});
  Stage st1;
  st1.demands.push_back(SubDemandSpec{0, 1, {4}, {5, 6, 7}});
  st1.demands.push_back(SubDemandSpec{0, 2, {8}, {9, 10, 11}});
  st1.demands.push_back(SubDemandSpec{0, 3, {12}, {13, 14, 15}});
  s.stages = {st0, st1};
  s.parent.assign(16, -1);
  for (int v : {1, 2, 3}) s.parent[static_cast<std::size_t>(v)] = 0;
  for (int v : {4, 8, 12}) s.parent[static_cast<std::size_t>(v)] = 0;
  for (int v : {5, 6, 7}) s.parent[static_cast<std::size_t>(v)] = 4;
  for (int v : {9, 10, 11}) s.parent[static_cast<std::size_t>(v)] = 8;
  for (int v : {13, 14, 15}) s.parent[static_cast<std::size_t>(v)] = 12;
  return s;
}

TEST(Sketch, PaperSketch1Validates) {
  Fig3Fixture f;
  const Sketch s = paper_sketch_1();
  EXPECT_NO_THROW(s.validate(f.groups));
  const auto covered = s.covered_ranks();
  EXPECT_EQ(covered.size(), 16u);
}

TEST(Sketch, WorkloadMatchesPaperNumbers) {
  // Sketch ① has workload ratio 12:3 across dimensions 0 and 1 (§4.2).
  Fig3Fixture f;
  const Sketch s = paper_sketch_1();
  const auto w = s.dim_workload(f.groups);
  EXPECT_DOUBLE_EQ(w[0], 12.0);
  EXPECT_DOUBLE_EQ(w[1], 3.0);
  EXPECT_DOUBLE_EQ(w[2], 0.0);
}

TEST(Sketch, ValidateCatchesDoubleDestination) {
  Fig3Fixture f;
  Sketch s = paper_sketch_1();
  s.stages[1].demands[0].dsts.push_back(9);  // 9 already served by D0.G2
  EXPECT_THROW(s.validate(f.groups), std::invalid_argument);
}

TEST(Sketch, ValidateCatchesSourceWithoutChunk) {
  Fig3Fixture f;
  Sketch s = paper_sketch_1();
  s.stages[0].demands[0].srcs = {5};  // 5 has nothing at stage 0
  EXPECT_THROW(s.validate(f.groups), std::invalid_argument);
}

TEST(Sketch, DescendantsCount) {
  const Sketch s = paper_sketch_1();
  EXPECT_EQ(s.descendants(4), 3);   // 5,6,7
  EXPECT_EQ(s.descendants(0), 15);  // everyone
  EXPECT_EQ(s.descendants(5), 0);
}

TEST(Search, FindsHierarchicalSketches) {
  Fig3Fixture f;
  const auto sketches = search_sketches(f.groups, 0, RootedPattern::Broadcast);
  ASSERT_FALSE(sketches.empty());
  for (const auto& s : sketches) {
    EXPECT_NO_THROW(s.validate(f.groups));
    EXPECT_EQ(s.covered_ranks().size(), 16u);
  }
  // The canonical two-stage hierarchical sketch (paper sketch ①) must be in
  // the result set: stage 0 uses dims 0+1 from the root, stage 1 fills dim 0.
  const Sketch paper = paper_sketch_1();
  const std::string key = paper.canonical_key(f.groups);
  bool found = false;
  for (const auto& s : sketches) {
    if (s.canonical_key(f.groups) == key) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Search, IsomorphismPruningShrinksResults) {
  // Small enough that the search exhausts without hitting caps, so the
  // pruned run and dedup(raw run) must coincide exactly.
  const auto topo = topo::build_multi_rail({2, 2, topo::params::nvlink_h800(),
                                            topo::params::nic_400g(),
                                            topo::params::fabric_400g(), true});
  const auto groups = topo::extract_groups(topo);
  SearchConfig with, without;
  without.prune_isomorphic = false;
  without.max_sketches = 100000;
  without.node_budget = 10000000;
  with.max_sketches = 100000;
  with.node_budget = 10000000;
  const auto pruned = search_sketches(groups, 0, RootedPattern::Broadcast, with);
  const auto raw = search_sketches(groups, 0, RootedPattern::Broadcast, without);
  EXPECT_LE(pruned.size(), raw.size());
  const auto dedup = dedup_isomorphic(raw, groups);
  EXPECT_EQ(dedup.size(), pruned.size());
}

TEST(Search, ConsistencyPruningHolds) {
  Fig3Fixture f;
  SearchConfig cfg;
  cfg.prune_consistency = true;
  const auto sketches = search_sketches(f.groups, 0, RootedPattern::Broadcast, cfg);
  for (const auto& s : sketches) {
    for (std::size_t k = 0; k < s.stages.size(); ++k) {
      EXPECT_TRUE(stage_is_consistent(s.stages[k], f.groups, k + 1 == s.stages.size()))
          << s.describe();
    }
  }
}

TEST(Search, ScatterHopLimit) {
  Fig3Fixture f;
  SearchConfig cfg;  // default max_hops = |D|-1 = 2 for scatter
  const auto sketches = search_sketches(f.groups, 0, RootedPattern::Scatter, cfg);
  for (const auto& s : sketches) {
    EXPECT_LE(max_relay_hops(s), 2) << s.describe();
  }
}

TEST(Search, SingleServerTrivial) {
  const auto topo = topo::build_single_server(8);
  const auto groups = topo::extract_groups(topo);
  const auto sketches = search_sketches(groups, 3, RootedPattern::Broadcast);
  ASSERT_FALSE(sketches.empty());
  EXPECT_EQ(sketches.front().root, 3);
  EXPECT_EQ(sketches.front().covered_ranks().size(), 8u);
}

TEST(Replicate, SameRootReplicaIsValidAndDistinct) {
  Fig3Fixture f;
  const Sketch s = paper_sketch_1();
  WorkloadState acc(f.groups);
  acc.add_sketch(s, f.groups);
  const auto rep = replicate_sketch(s, f.groups, acc, 0);
  ASSERT_TRUE(rep.has_value());
  EXPECT_NO_THROW(rep->validate(f.groups));
  EXPECT_EQ(rep->root, 0);
  // Canonical keys match (isomorphic), workload distribution may shift.
  EXPECT_EQ(rep->canonical_key(f.groups), s.canonical_key(f.groups));
}

TEST(Replicate, NewRootReplicaMapsRoot) {
  Fig3Fixture f;
  const Sketch s = paper_sketch_1();
  const auto rep = replicate_sketch(s, f.groups, WorkloadState(f.groups), 5);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->root, 5);
  EXPECT_NO_THROW(rep->validate(f.groups));
  EXPECT_EQ(rep->covered_ranks().size(), 16u);
}

TEST(Replicate, BalanceAcrossGroupsEvensRailLoad) {
  // 7-server topology of Fig. 19: a single sketch leaves rail groups idle;
  // replication must spread load (Fig. 10).
  const auto topo = topo::build_multi_rail({7, 4, topo::params::nvlink_h800(),
                                            topo::params::nic_400g(),
                                            topo::params::fabric_400g(), true});
  const auto groups = topo::extract_groups(topo);
  const auto sketches = search_sketches(groups, 0, RootedPattern::Broadcast);
  ASSERT_FALSE(sketches.empty());
  // Pick a sketch that uses dimension 1 at stage >= 1 (steerable).
  for (const auto& s : sketches) {
    const SketchCombination combo = balance_across_groups(s, groups);
    EXPECT_GE(combo.sketches.size(), 1u);
    EXPECT_NEAR(combo.total_fraction(), 1.0, 1e-9);
    // Workload imbalance must not increase vs. the single sketch.
    auto imb = [&](const WorkloadMatrix& w) {
      double total = 0;
      for (const auto& dim : w) {
        double lo = 1e300, hi = 0, sum = 0;
        for (double g : dim) {
          lo = std::min(lo, g);
          hi = std::max(hi, g);
          sum += g;
        }
        if (sum > 0) total += hi - lo;
      }
      return total;
    };
    WorkloadMatrix single = s.workload(groups);
    WorkloadMatrix merged = zero_workload(groups);
    for (const auto& ws : combo.sketches) add_workload(merged, ws.sketch.workload(groups));
    // Normalise per sketch count for a fair comparison.
    for (auto& dim : merged) {
      for (auto& g : dim) g /= static_cast<double>(combo.sketches.size());
    }
    EXPECT_LE(imb(merged), imb(single) + 1e-9) << s.describe();
  }
}

TEST(Replicate, AllRootsCoversEveryRoot) {
  Fig3Fixture f;
  const auto sketches = search_sketches(f.groups, 0, RootedPattern::Broadcast);
  const SketchCombination proto = balance_across_groups(sketches.front(), f.groups);
  const SketchCombination all = replicate_for_all_roots(proto, f.groups);
  std::set<int> roots;
  for (const auto& ws : all.sketches) roots.insert(ws.sketch.root);
  EXPECT_EQ(roots.size(), 16u);
  // Per-root fractions each sum to 1.
  for (int r = 0; r < 16; ++r) {
    double frac = 0;
    for (const auto& ws : all.sketches) {
      if (ws.sketch.root == r) frac += ws.fraction;
    }
    EXPECT_NEAR(frac, 1.0, 1e-9);
  }
}

TEST(Combine, AllocationMatchesBandwidthShares) {
  Fig3Fixture f;
  const auto combos = generate_rooted_combinations(f.groups, 0, RootedPattern::Broadcast);
  ASSERT_FALSE(combos.empty());
  for (const auto& c : combos) {
    EXPECT_NEAR(c.total_fraction(), 1.0, 1e-6) << c.describe();
  }
}

TEST(Combine, PaperExampleTwoSketchAllocation) {
  // §4.2 step 2 example shape: two combos with workload ratios 21:6 and
  // 3:24 across dims 0/1 and link capacity 4:5 → both transmit half.
  Fig3Fixture f;
  // Build two synthetic single-sketch combinations with forced workloads by
  // exercising allocate_across_dims' math directly through real sketches is
  // impractical; instead verify the invariant on generated combinations: the
  // weighted dim shares approach the bandwidth shares.
  const auto combos = generate_rooted_combinations(f.groups, 0, RootedPattern::Broadcast);
  bool found_integrated = false;
  for (const auto& c : combos) {
    if (c.sketches.size() < 2) continue;
    const auto w = c.dim_workload(f.groups);
    double total = 0;
    for (double x : w) total += x;
    if (total <= 0) continue;
    // Restrict to used dims as the allocator does.
    double used_share = 0;
    for (std::size_t d = 0; d < w.size(); ++d) {
      if (w[d] > 1e-12) used_share += f.groups.dims[d].bandwidth_share;
    }
    bool close = true;
    for (std::size_t d = 0; d < w.size(); ++d) {
      if (w[d] <= 1e-12) continue;
      const double target = f.groups.dims[d].bandwidth_share / used_share;
      if (std::fabs(w[d] / total - target) > 0.05 + 1e-9) close = false;
    }
    if (close) found_integrated = true;
  }
  EXPECT_TRUE(found_integrated);
}

TEST(AllToAll, GeneratesValidCombinations) {
  const auto topo = topo::build_multi_rail({2, 4, topo::params::nvlink_h800(),
                                            topo::params::nic_400g(),
                                            topo::params::fabric_400g(), true});
  const auto groups = topo::extract_groups(topo);
  const auto combos = generate_alltoall_combinations(groups, RootedPattern::Broadcast);
  ASSERT_FALSE(combos.empty());
  for (const auto& c : combos) {
    std::set<int> roots;
    for (const auto& ws : c.sketches) {
      EXPECT_NO_THROW(ws.sketch.validate(groups));
      roots.insert(ws.sketch.root);
    }
    EXPECT_EQ(roots.size(), 8u) << c.describe();
  }
}

}  // namespace
}  // namespace syccl::sketch
