// Tests for the branch-and-bound MILP solver.
#include <gtest/gtest.h>

#include "milp/branch_and_bound.h"
#include "util/stopwatch.h"

namespace syccl::milp {
namespace {

using lp::Constraint;
using lp::kInf;
using lp::Relation;

TEST(Milp, KnapsackSmall) {
  // maximize 10a + 13b + 7c, weights 3,4,2, capacity 6, binary.
  // Best: b + c = 20 (weight 6); a + c = 17; a only = 10.
  MilpProblem m;
  const int a = m.lp.add_var(0, 1, -10);
  const int b = m.lp.add_var(0, 1, -13);
  const int c = m.lp.add_var(0, 1, -7);
  m.lp.add_constraint({{{a, 3.0}, {b, 4.0}, {c, 2.0}}, Relation::LessEq, 6.0});
  m.is_integer = {true, true, true};
  const MilpSolution s = solve(m);
  ASSERT_EQ(s.status, MilpStatus::Optimal);
  EXPECT_NEAR(s.objective, -20.0, 1e-6);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(b)], 1.0, 1e-6);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(c)], 1.0, 1e-6);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(a)], 0.0, 1e-6);
}

TEST(Milp, IntegerRounding) {
  // minimize x s.t. x >= 1.5, x integer → 2.
  MilpProblem m;
  m.lp.add_var(0, kInf, 1.0);
  m.lp.add_constraint({{{0, 1.0}}, Relation::GreaterEq, 1.5});
  m.is_integer = {true};
  const MilpSolution s = solve(m);
  ASSERT_EQ(s.status, MilpStatus::Optimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-6);
}

TEST(Milp, MixedIntegerContinuous) {
  // minimize y - x with x integer ≤ 2.5, y continuous ≥ 0.3x → x=2, y=0.6.
  MilpProblem m;
  const int x = m.lp.add_var(0, 2.5, -1.0);
  const int y = m.lp.add_var(0, kInf, 1.0);
  m.lp.add_constraint({{{y, 1.0}, {x, -0.3}}, Relation::GreaterEq, 0.0});
  m.is_integer = {true, false};
  const MilpSolution s = solve(m);
  ASSERT_EQ(s.status, MilpStatus::Optimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.0, 1e-6);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 0.6, 1e-6);
  EXPECT_NEAR(s.objective, -1.4, 1e-6);
}

TEST(Milp, Infeasible) {
  // x binary, x >= 0.4, x <= 0.6 → no integer point.
  MilpProblem m;
  m.lp.add_var(0, 1, 1.0);
  m.lp.add_constraint({{{0, 1.0}}, Relation::GreaterEq, 0.4});
  m.lp.add_constraint({{{0, 1.0}}, Relation::LessEq, 0.6});
  m.is_integer = {true};
  EXPECT_EQ(solve(m).status, MilpStatus::Infeasible);
}

TEST(Milp, IncumbentSurvivesNodeLimit) {
  // Tight node limit: solver must return the provided incumbent.
  MilpProblem m;
  for (int i = 0; i < 12; ++i) m.lp.add_var(0, 1, -(1.0 + 0.1 * i));
  Constraint cap;
  for (int i = 0; i < 12; ++i) cap.terms.push_back({i, 1.0 + 0.05 * i});
  cap.rel = Relation::LessEq;
  cap.rhs = 6.0;
  m.lp.add_constraint(cap);
  m.is_integer.assign(12, true);

  std::vector<double> greedy(12, 0.0);
  greedy[11] = 1.0;  // feasible
  MilpOptions opts;
  opts.node_limit = 1;
  const MilpSolution s = solve(m, opts, greedy);
  ASSERT_TRUE(s.status == MilpStatus::Feasible || s.status == MilpStatus::Optimal);
  EXPECT_LE(s.objective, -2.1 + 1e-9);  // at least as good as the incumbent
}

TEST(Milp, IncumbentImproved) {
  MilpProblem m;
  const int a = m.lp.add_var(0, 1, -10);
  const int b = m.lp.add_var(0, 1, -13);
  m.lp.add_constraint({{{a, 1.0}, {b, 1.0}}, Relation::LessEq, 2.0});
  m.is_integer = {true, true};
  std::vector<double> weak = {1.0, 0.0};  // obj -10
  const MilpSolution s = solve(m, {}, weak);
  ASSERT_EQ(s.status, MilpStatus::Optimal);
  EXPECT_NEAR(s.objective, -23.0, 1e-6);
}

TEST(Milp, AssignmentProblemIsIntegralAnyway) {
  // 3x3 assignment; LP relaxation is integral, B&B should terminate fast.
  const double cost[3][3] = {{4, 2, 8}, {4, 3, 7}, {3, 1, 6}};
  MilpProblem m;
  int v[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) v[i][j] = m.lp.add_var(0, 1, cost[i][j]);
  }
  for (int i = 0; i < 3; ++i) {
    Constraint row, col;
    for (int j = 0; j < 3; ++j) {
      row.terms.push_back({v[i][j], 1.0});
      col.terms.push_back({v[j][i], 1.0});
    }
    row.rel = col.rel = Relation::Eq;
    row.rhs = col.rhs = 1.0;
    m.lp.add_constraint(row);
    m.lp.add_constraint(col);
  }
  m.is_integer.assign(9, true);
  const MilpSolution s = solve(m);
  ASSERT_EQ(s.status, MilpStatus::Optimal);
  EXPECT_NEAR(s.objective, 4 + 1 + 7.0, 1e-6);  // x02? compute: best = a0→1(2)? …
  // Optimal assignment: r0→c1 (2), r1→c0 (4), r2→c2 (6) = 12, vs 4+3+? check
  // alternatives: r0→c0(4), r1→c2(7), r2→c1(1) = 12. Either way 12.
  EXPECT_NEAR(s.objective, 12.0, 1e-6);
}

TEST(Milp, TimeBudgetRespected) {
  // Hard subset-sum-flavoured knapsack: near-equal weights force deep search.
  // The solver must stop close to the 50 ms budget instead of letting each
  // node LP stretch it (the old code floored every node's deadline at 50 ms).
  MilpProblem m;
  Constraint cap;
  for (int i = 0; i < 26; ++i) {
    m.lp.add_var(0, 1, -(100.0 + i));
    cap.terms.push_back({i, 100.0 + 1.37 * i});
  }
  cap.rel = Relation::LessEq;
  cap.rhs = 1300.0;
  m.lp.add_constraint(cap);
  m.is_integer.assign(26, true);

  MilpOptions opts;
  opts.time_limit_s = 0.05;
  opts.node_limit = 1000000000;
  util::Stopwatch sw;
  const MilpSolution s = solve(m, opts);
  const double wall = sw.elapsed_seconds();
  EXPECT_LT(wall, 0.5) << "time budget overrun: " << wall << " s";
  // Whatever it returns under the budget must be internally consistent.
  if (s.status == MilpStatus::Optimal || s.status == MilpStatus::Feasible) {
    EXPECT_LE(s.best_bound, s.objective + 1e-6);
  }
}

TEST(Milp, DroppedNodesDowngradeOptimal) {
  // lp_iteration_limit = 1 makes every node LP hit IterationLimit, so the
  // tree is never actually bounded. With an incumbent the result must be
  // Feasible (not a false Optimal); without one, Limit (not Infeasible).
  MilpProblem m;
  Constraint cap;
  for (int i = 0; i < 12; ++i) {
    m.lp.add_var(0, 1, -(1.0 + 0.1 * i));
    cap.terms.push_back({i, 1.0 + 0.05 * i});
  }
  cap.rel = Relation::LessEq;
  cap.rhs = 6.0;
  m.lp.add_constraint(cap);
  m.is_integer.assign(12, true);

  MilpOptions opts;
  opts.lp_iteration_limit = 1;

  std::vector<double> greedy(12, 0.0);
  greedy[11] = 1.0;
  const MilpSolution with_inc = solve(m, opts, greedy);
  EXPECT_EQ(with_inc.status, MilpStatus::Feasible);
  EXPECT_GT(with_inc.dropped_nodes, 0);
  EXPECT_NEAR(with_inc.objective, -2.1, 1e-9);  // incumbent survives

  const MilpSolution without = solve(m, opts);
  EXPECT_EQ(without.status, MilpStatus::Limit);
  EXPECT_GT(without.dropped_nodes, 0);
}

TEST(Milp, RejectsBadSizes) {
  MilpProblem m;
  m.lp.add_var(0, 1, 1.0);
  m.is_integer = {true, true};
  EXPECT_THROW(solve(m), std::invalid_argument);
}

}  // namespace
}  // namespace syccl::milp
