// Tests for the simplex LP solver against hand-solved problems.
#include <gtest/gtest.h>

#include "lp/simplex.h"

namespace syccl::lp {
namespace {

TEST(Simplex, SimpleTwoVarMax) {
  // maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6  → x=4, y=0, obj=12.
  Problem p;
  const int x = p.add_var(0, kInf, -3.0);
  const int y = p.add_var(0, kInf, -2.0);
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Relation::LessEq, 4.0});
  p.add_constraint({{{x, 1.0}, {y, 3.0}}, Relation::LessEq, 6.0});
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, -12.0, 1e-7);
  EXPECT_NEAR(s.x[0], 4.0, 1e-7);
  EXPECT_NEAR(s.x[1], 0.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // minimize x + y s.t. x + 2y = 4, x >= 0, y >= 0 → y=2, x=0, obj=2.
  Problem p;
  const int x = p.add_var(0, kInf, 1.0);
  const int y = p.add_var(0, kInf, 1.0);
  p.add_constraint({{{x, 1.0}, {y, 2.0}}, Relation::Eq, 4.0});
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
  EXPECT_NEAR(s.x[1], 2.0, 1e-7);
}

TEST(Simplex, GreaterEqAndInfeasible) {
  Problem p;
  const int x = p.add_var(0, 1.0, 1.0);
  p.add_constraint({{{x, 1.0}}, Relation::GreaterEq, 2.0});  // x <= 1 but x >= 2
  EXPECT_EQ(solve(p).status, Status::Infeasible);
}

TEST(Simplex, Unbounded) {
  Problem p;
  const int x = p.add_var(0, kInf, -1.0);  // maximize x, no constraint
  (void)x;
  EXPECT_EQ(solve(p).status, Status::Unbounded);
}

TEST(Simplex, VariableBoundsRespected) {
  // minimize -x - y with 1 <= x <= 3, 0 <= y <= 2, x + y <= 4 → x=3,y=1? or x=2,y=2.
  Problem p;
  const int x = p.add_var(1.0, 3.0, -1.0);
  const int y = p.add_var(0.0, 2.0, -1.0);
  p.add_constraint({{{x, 1.0}, {y, 1.0}}, Relation::LessEq, 4.0});
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, -4.0, 1e-7);
  EXPECT_GE(s.x[0], 1.0 - 1e-7);
  EXPECT_LE(s.x[0], 3.0 + 1e-7);
}

TEST(Simplex, NegativeLowerBounds) {
  // minimize x with -5 <= x <= 5, x >= -3 → x = -3.
  Problem p;
  const int x = p.add_var(-5.0, 5.0, 1.0);
  p.add_constraint({{{x, 1.0}}, Relation::GreaterEq, -3.0});
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[0], -3.0, 1e-7);
}

TEST(Simplex, DegenerateDoesNotCycle) {
  // Classic degenerate LP; must terminate.
  Problem p;
  const int x1 = p.add_var(0, kInf, -0.75);
  const int x2 = p.add_var(0, kInf, 150.0);
  const int x3 = p.add_var(0, kInf, -0.02);
  const int x4 = p.add_var(0, kInf, 6.0);
  p.add_constraint({{{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}}, Relation::LessEq, 0.0});
  p.add_constraint({{{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}}, Relation::LessEq, 0.0});
  p.add_constraint({{{x3, 1.0}}, Relation::LessEq, 1.0});
  const Solution s = solve(p);
  EXPECT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-6);
}

TEST(Simplex, TransportationProblem) {
  // 2 sources (supply 20, 30), 3 sinks (demand 10, 25, 15), costs:
  //   s0: 2 4 5 ; s1: 3 1 7.
  // Optimal: x11=25 (25), x02=15 (75), x00=5 (10), x10=5 (15) → 125.
  Problem p;
  std::vector<std::vector<int>> x(2, std::vector<int>(3));
  const double cost[2][3] = {{2, 4, 5}, {3, 1, 7}};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) x[i][j] = p.add_var(0, kInf, cost[i][j]);
  }
  const double supply[2] = {20, 30};
  const double demand[3] = {10, 25, 15};
  for (int i = 0; i < 2; ++i) {
    Constraint c;
    for (int j = 0; j < 3; ++j) c.terms.push_back({x[i][j], 1.0});
    c.rel = Relation::LessEq;
    c.rhs = supply[i];
    p.add_constraint(c);
  }
  for (int j = 0; j < 3; ++j) {
    Constraint c;
    for (int i = 0; i < 2; ++i) c.terms.push_back({x[i][j], 1.0});
    c.rel = Relation::Eq;
    c.rhs = demand[j];
    p.add_constraint(c);
  }
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, 125.0, 1e-6);
}

TEST(Simplex, RejectsUnknownVariable) {
  Problem p;
  p.add_var();
  p.add_constraint({{{5, 1.0}}, Relation::LessEq, 1.0});
  EXPECT_THROW(solve(p), std::invalid_argument);
}

}  // namespace
}  // namespace syccl::lp
