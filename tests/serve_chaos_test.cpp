// Chaos suite for the schedule-compiler service (DESIGN.md §4i): every
// registered serve failpoint (serve/failpoints.h) fired end-to-end, the
// library's crash-safety contract proven by killing forked children mid-
// write, torn-write and index-damage recovery, the deadline → degraded →
// background-upgrade state machine, and the hardened transport (EINTR
// storms, SIGPIPE-proof sends, idle timeouts, drain).
//
// Crash tests fork(): the child arms a crash-mode failpoint, performs the
// I/O, and _exit(kFailpointCrashExit)s at the armed site — a reproducible
// kill -9. The parent reopens the library and asserts nothing acknowledged
// was lost and nothing corrupt is served. Fork is safe here because these
// tests spawn no threads before forking.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>

#include "obs/scenario.h"
#include "serve/broker.h"
#include "serve/canonical.h"
#include "serve/codec.h"
#include "serve/failpoints.h"
#include "serve/library.h"
#include "serve/protocol.h"
#include "serve/socket.h"
#include "sim/schedule.h"
#include "util/failpoint.h"

namespace syccl::serve {
namespace {

namespace fs = std::filesystem;

struct RegistryGuard {
  RegistryGuard() { util::Failpoints::instance().clear(); }
  ~RegistryGuard() { util::Failpoints::instance().clear(); }
};

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("syccl_chaos_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

ScheduleBlob sample_blob(const std::string& key_suffix = "") {
  ScheduleBlob blob;
  blob.scenario_key = "syccl-serve/chaos|ranks=3|coll=Reduce|bucket=1024" + key_suffix;
  blob.num_ranks = 3;
  blob.bucket_bytes = 1024;
  blob.predicted_time = 1.0 / 3.0;
  blob.schedule.name = "chaos-sample";
  blob.schedule.pieces = sim::pieces_for(coll::make_reduce(3, 3000, 0));
  blob.schedule.add_op(0, 1, 0, 0, 0);
  blob.schedule.add_op(0, 2, 0, 1, 1);
  return blob;
}

ServeRequest flat4_request(std::uint64_t bytes = 1 << 20) {
  ServeRequest request;
  request.topology = obs::build_scenario_topology("flat4");
  request.kind = coll::CollKind::AllGather;
  request.total_bytes = bytes;
  return request;
}

/// Runs `body` in a forked child and returns its wait status. The child
/// leaves only via _exit (a crash failpoint, or the fallback exit code when
/// the armed site unexpectedly survives).
int run_in_child(const std::function<void()>& body) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    body();
    ::_exit(99);  // the armed failpoint should have crashed before this
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

bool crashed_at_failpoint(int status) {
  return WIFEXITED(status) && WEXITSTATUS(status) == util::kFailpointCrashExit;
}

// --------------------------------------------------------- crash recovery

TEST(ServeChaos, CrashMidEntryWriteLosesNoAcknowledgedEntry) {
  RegistryGuard guard;
  const std::string dir = scratch_dir("crash_entry");
  const ScheduleBlob a = sample_blob("|a");
  const ScheduleBlob b = sample_blob("|b");

  const int status = run_in_child([&] {
    DiskLibrary library({dir});
    library.put(a);  // acknowledged before the fault arms
    util::Failpoints::instance().enable("serve.library.entry_write", "crash:10");
    library.put(b);  // _exit(42) after 10 bytes of b's entry file hit disk
  });
  ASSERT_TRUE(crashed_at_failpoint(status)) << "status " << status;

  DiskLibrary reopened({dir});
  const auto got = reopened.get(a.scenario_key);
  ASSERT_TRUE(got.has_value()) << "acknowledged entry lost in crash";
  EXPECT_EQ(encode_blob(*got), encode_blob(a));  // byte-exact, not just present
  // b was never acknowledged: a miss is correct, a torn serve would not be.
  EXPECT_FALSE(reopened.get(b.scenario_key).has_value());
  EXPECT_EQ(reopened.stats().quarantined, 0u);  // the torn .tmp was swept, not adopted
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_FALSE(entry.path().extension() == ".tmp") << entry.path();
  }
}

TEST(ServeChaos, CrashMidJournalAppendIsRecoveredByOrphanAdoption) {
  RegistryGuard guard;
  const std::string dir = scratch_dir("crash_journal");
  const ScheduleBlob a = sample_blob("|a");

  const int status = run_in_child([&] {
    DiskLibrary library({dir});
    // Crash 3 bytes into the journal line — after the entry file is durable.
    util::Failpoints::instance().enable("serve.library.journal_append", "crash:3");
    library.put(a);
  });
  ASSERT_TRUE(crashed_at_failpoint(status)) << "status " << status;

  DiskLibrary reopened({dir});
  EXPECT_EQ(reopened.stats().orphans_adopted, 1u);
  const auto got = reopened.get(a.scenario_key);
  ASSERT_TRUE(got.has_value()) << "put() acknowledged a, the index lost it, "
                                  "recovery must adopt the entry file";
  EXPECT_EQ(encode_blob(*got), encode_blob(a));
}

TEST(ServeChaos, CrashMidSnapshotWriteKeepsServingFromTheJournal) {
  RegistryGuard guard;
  const std::string dir = scratch_dir("crash_snapshot");
  const ScheduleBlob a = sample_blob("|a");

  const int status = run_in_child([&] {
    DiskLibrary library({dir});
    library.put(a);  // journaled
    util::Failpoints::instance().enable("serve.library.snapshot_write", "crash:4");
    library.flush();  // crashes writing index.snapshot.tmp
  });
  ASSERT_TRUE(crashed_at_failpoint(status)) << "status " << status;

  // The snapshot rename never happened, the journal was never truncated:
  // recovery replays the journal line and serves a.
  DiskLibrary reopened({dir});
  ASSERT_TRUE(reopened.get(a.scenario_key).has_value());
}

TEST(ServeChaos, CrashBetweenSnapshotRenameAndJournalTruncateReplaysIdempotently) {
  RegistryGuard guard;
  const std::string dir = scratch_dir("crash_truncate");
  const ScheduleBlob a = sample_blob("|a");

  const int status = run_in_child([&] {
    DiskLibrary library({dir});
    library.put(a);
    // dir_fsync fires right after the snapshot rename — the crash window
    // where both the new snapshot AND the untruncated journal exist.
    util::Failpoints::instance().enable("serve.library.dir_fsync", "crash");
    library.flush();
  });
  ASSERT_TRUE(crashed_at_failpoint(status)) << "status " << status;

  DiskLibrary reopened({dir});
  // Snapshot says a, journal repeats a: replay must be idempotent.
  EXPECT_EQ(reopened.stats().entries, 1u);
  ASSERT_TRUE(reopened.get(a.scenario_key).has_value());
}

// ------------------------------------------------------------- torn writes

TEST(ServeChaos, TornEntryOverwriteKeepsTheOldVersionServable) {
  RegistryGuard guard;
  const std::string dir = scratch_dir("torn_entry");
  DiskLibrary library({dir});
  const ScheduleBlob a = sample_blob("|a");
  ASSERT_EQ(library.put(a), DiskLibrary::PutResult::Inserted);

  ScheduleBlob a2 = a;
  a2.predicted_time = 9.0;
  util::Failpoints::instance().enable("serve.library.entry_write", "torn:8");
  EXPECT_THROW(library.put(a2), std::runtime_error);
  util::Failpoints::instance().clear();

  // The overwrite tore in the .tmp file; the real entry was never touched.
  const auto got = library.get(a.scenario_key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->predicted_time, a.predicted_time);

  DiskLibrary reopened({dir});
  const auto persisted = reopened.get(a.scenario_key);
  ASSERT_TRUE(persisted.has_value());
  EXPECT_EQ(encode_blob(*persisted), encode_blob(a));
}

TEST(ServeChaos, TornJournalAppendDamagesAtMostItsOwnLine) {
  RegistryGuard guard;
  const std::string dir = scratch_dir("torn_journal");
  const ScheduleBlob a = sample_blob("|a");
  const ScheduleBlob b = sample_blob("|b");
  {
    DiskLibrary library({dir});
    util::Failpoints::instance().enable("serve.library.journal_append", "torn:4");
    // Index write failures degrade durability, never availability: put()
    // still succeeds and the entry still serves from this process.
    EXPECT_EQ(library.put(a), DiskLibrary::PutResult::Inserted);
    EXPECT_GE(library.stats().journal_failures, 1u);
    EXPECT_TRUE(library.get(a.scenario_key).has_value());
    util::Failpoints::instance().clear();
    EXPECT_EQ(library.put(b), DiskLibrary::PutResult::Inserted);
  }

  // a's journal line is a torn prefix; b's line follows a sealing newline.
  // Recovery: b via the journal, a via orphan adoption. Nothing lost.
  DiskLibrary reopened({dir});
  EXPECT_EQ(reopened.stats().entries, 2u);
  EXPECT_EQ(reopened.stats().orphans_adopted, 1u);
  EXPECT_TRUE(reopened.get(a.scenario_key).has_value());
  EXPECT_TRUE(reopened.get(b.scenario_key).has_value());
}

// ---------------------------------------------------- index damage recovery

TEST(ServeRecovery, GarbageAndTruncatedIndexLinesAreSkipped) {
  RegistryGuard guard;
  const std::string dir = scratch_dir("garbage_index");
  const ScheduleBlob a = sample_blob("|a");
  const ScheduleBlob b = sample_blob("|b");
  {
    DiskLibrary library({dir});
    library.put(a);
    library.put(b);
  }
  {
    // Vandalise the journal: truncated verbs, wrong token counts, binary
    // noise, a trailing line without newline.
    std::ofstream journal(fs::path(dir) / "index.journal", std::ios::app);
    journal << "entr\n"
            << "entry\n"
            << "entry nothex notafile\n"
            << "entry 0123456789abcdef\n"
            << "\x01\x02\x03\n"
            << "evict\n"
            << "entry 0123456789abcdef 0123456789abcdef.sched extra\n"
            << "entry 0123";  // torn tail, no newline
  }

  DiskLibrary reopened({dir});
  EXPECT_EQ(reopened.stats().entries, 2u);
  EXPECT_TRUE(reopened.get(a.scenario_key).has_value());
  EXPECT_TRUE(reopened.get(b.scenario_key).has_value());
}

TEST(ServeRecovery, IndexLineWhoseFileIsMissingIsDropped) {
  RegistryGuard guard;
  const std::string dir = scratch_dir("missing_file");
  const ScheduleBlob a = sample_blob("|a");
  {
    DiskLibrary library({dir});
    library.put(a);
  }
  fs::remove(fs::path(dir) / (fnv1a_hex(a.scenario_key) + ".sched"));

  DiskLibrary reopened({dir});
  EXPECT_EQ(reopened.stats().entries, 0u);
  EXPECT_FALSE(reopened.get(a.scenario_key).has_value());  // a clean miss
}

TEST(ServeRecovery, OrphanScheduleFileIsAdoptedWhenTheIndexVanishes) {
  RegistryGuard guard;
  const std::string dir = scratch_dir("orphan");
  const ScheduleBlob a = sample_blob("|a");
  {
    DiskLibrary library({dir});
    library.put(a);
  }
  fs::remove(fs::path(dir) / "index.snapshot");
  fs::remove(fs::path(dir) / "index.journal");

  DiskLibrary reopened({dir});
  EXPECT_EQ(reopened.stats().orphans_adopted, 1u);
  const auto got = reopened.get(a.scenario_key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(encode_blob(*got), encode_blob(a));
}

TEST(ServeRecovery, UndecodableStrayFileIsQuarantinedNotAdopted) {
  RegistryGuard guard;
  const std::string dir = scratch_dir("stray");
  const ScheduleBlob a = sample_blob("|a");
  {
    DiskLibrary library({dir});
    library.put(a);
  }
  {
    std::ofstream junk(fs::path(dir) / "deadbeefdeadbeef.sched", std::ios::binary);
    junk << "this is not a schedule blob";
  }

  DiskLibrary reopened({dir});
  EXPECT_EQ(reopened.stats().entries, 1u);
  EXPECT_EQ(reopened.stats().quarantined, 1u);
  EXPECT_TRUE(reopened.get(a.scenario_key).has_value());
  EXPECT_TRUE(fs::exists(fs::path(dir) / "quarantine" / "deadbeefdeadbeef.sched"));
}

TEST(ServeRecovery, QuarantineSubdirFailureFallsBackToInPlaceRename) {
  RegistryGuard guard;
  const std::string dir = scratch_dir("quarantine_fail");
  const ScheduleBlob a = sample_blob("|a");
  const ScheduleBlob b = sample_blob("|b");
  {
    DiskLibrary library({dir});
    library.put(a);
    library.put(b);
  }
  const fs::path entry = fs::path(dir) / (fnv1a_hex(a.scenario_key) + ".sched");
  {
    std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(entry) / 2));
    f.put('\xff');
    f.put('\xff');
  }

  util::Failpoints::instance().enable("serve.library.quarantine", "error");
  DiskLibrary reopened({dir});  // must open and keep serving regardless
  util::Failpoints::instance().clear();
  EXPECT_EQ(reopened.stats().entries, 1u);
  EXPECT_EQ(reopened.stats().quarantined, 1u);
  EXPECT_FALSE(reopened.get(a.scenario_key).has_value());
  EXPECT_TRUE(reopened.get(b.scenario_key).has_value());
  // No quarantine/ subdir: the corrupt file was renamed aside in place.
  EXPECT_TRUE(fs::exists(fs::path(dir) / (fnv1a_hex(a.scenario_key) + ".sched.quarantined")));
}

TEST(ServeRecovery, LegacyIndexTxtIsReplayedThenRetired) {
  RegistryGuard guard;
  const std::string dir = scratch_dir("legacy");
  const ScheduleBlob a = sample_blob("|a");
  const std::string hex = fnv1a_hex(a.scenario_key);
  {
    // Hand-build a v1 layout: entry file + append-only index.txt, no
    // snapshot, no journal.
    std::ofstream entry(fs::path(dir) / (hex + ".sched"), std::ios::binary);
    entry << encode_blob(a);
    std::ofstream index(fs::path(dir) / "index.txt");
    index << "entry " << hex << ' ' << hex << ".sched\n";
  }

  DiskLibrary library({dir});
  ASSERT_TRUE(library.get(a.scenario_key).has_value());
  // The open compacted: v1 index folded into the snapshot and removed.
  EXPECT_FALSE(fs::exists(fs::path(dir) / "index.txt"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "index.snapshot"));
}

TEST(ServeRecovery, InMemoryEntryThatStopsDecodingIsQuarantinedOnGet) {
  RegistryGuard guard;
  const std::string dir = scratch_dir("decode_get");
  DiskLibrary library({dir});
  const ScheduleBlob a = sample_blob("|a");
  library.put(a);
  ASSERT_TRUE(library.get(a.scenario_key).has_value());

  util::Failpoints::instance().enable("serve.codec.decode", "error");
  EXPECT_FALSE(library.get(a.scenario_key).has_value());  // a miss, never a throw
  util::Failpoints::instance().clear();
  // The entry was dropped and its file moved aside — still gone after disarm.
  EXPECT_FALSE(library.get(a.scenario_key).has_value());
  EXPECT_EQ(library.stats().quarantined, 1u);
}

TEST(ServeRecovery, DegradedBlobNeverOverwritesAFullEntry) {
  RegistryGuard guard;
  const std::string dir = scratch_dir("downgrade");
  DiskLibrary library({dir});

  ScheduleBlob full = sample_blob("|x");
  ASSERT_EQ(library.put(full), DiskLibrary::PutResult::Inserted);
  ScheduleBlob degraded = full;
  degraded.degraded = true;
  degraded.predicted_time = 99.0;
  EXPECT_EQ(library.put(degraded), DiskLibrary::PutResult::RejectedDowngrade);
  EXPECT_EQ(library.get(full.scenario_key)->predicted_time, full.predicted_time);
  EXPECT_EQ(library.stats().rejected_downgrades, 1u);

  // The other direction is the whole point: degraded then full = Upgraded.
  ScheduleBlob d2 = sample_blob("|y");
  d2.degraded = true;
  EXPECT_EQ(library.put(d2), DiskLibrary::PutResult::Inserted);
  ScheduleBlob f2 = sample_blob("|y");
  EXPECT_EQ(library.put(f2), DiskLibrary::PutResult::Upgraded);
  EXPECT_FALSE(library.get(f2.scenario_key)->degraded);
  // Same grade overwrites are plain replacements.
  EXPECT_EQ(library.put(f2), DiskLibrary::PutResult::Replaced);
}

// ------------------------------------------------- deadlines & degradation

TEST(ServeDeadline, ExpiredDeadlineServesVerifiedDegradedFallback) {
  RegistryGuard guard;
  DiskLibrary library({scratch_dir("deadline_expire")});
  Broker broker(library);

  ServeRequest request = flat4_request();
  request.deadline_seconds = 1e-6;  // expires before any synthesis can land
  const ServeResponse response = broker.handle(request);
  EXPECT_TRUE(response.degraded);
  EXPECT_FALSE(response.hit);
  // Degraded ≠ sloppy: the fallback went through the same validator and
  // simulator as any served schedule (verify_served defaults on).
  EXPECT_GT(response.predicted_time, 0.0);
  EXPECT_FALSE(response.schedule.ops.empty());
  EXPECT_GE(broker.stats().degraded_hits, 1u);

  // The full synthesis kept running; eventually a request with no deadline
  // gets the full-budget entry.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  ServeRequest plain = flat4_request();
  ServeResponse final_response;
  do {
    final_response = broker.handle(plain);
    if (final_response.hit && !final_response.degraded) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  } while (std::chrono::steady_clock::now() < deadline);
  EXPECT_TRUE(final_response.hit);
  EXPECT_FALSE(final_response.degraded);
}

TEST(ServeDeadline, DegradedLibraryHitTriggersBackgroundUpgrade) {
  RegistryGuard guard;
  // Build a full entry with one broker, replant it — flagged degraded — in a
  // fresh library: a deterministic "fallback landed, full never did" state.
  DiskLibrary warm({scratch_dir("upgrade_src")});
  Broker warm_broker(warm);
  const ServeResponse cold = warm_broker.handle(flat4_request());
  auto stored = warm.get(cold.scenario_key);
  ASSERT_TRUE(stored.has_value());
  stored->degraded = true;

  DiskLibrary library({scratch_dir("upgrade_dst")});
  ASSERT_EQ(library.put(*stored), DiskLibrary::PutResult::Inserted);
  Broker broker(library);

  const ServeResponse hit = broker.handle(flat4_request());
  EXPECT_TRUE(hit.hit);
  EXPECT_TRUE(hit.degraded);  // served immediately, not blocked on re-synthesis

  // The hit queued a background full synthesis; it must upgrade the entry.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (broker.stats().upgrades == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(broker.stats().upgrades, 1u);
  const auto upgraded = library.get(cold.scenario_key);
  ASSERT_TRUE(upgraded.has_value());
  EXPECT_FALSE(upgraded->degraded);
  const ServeResponse after = broker.handle(flat4_request());
  EXPECT_TRUE(after.hit);
  EXPECT_FALSE(after.degraded);
}

TEST(ServeDeadline, ExplicitNoDeadlineOverridesServerDefault) {
  RegistryGuard guard;
  DiskLibrary library({scratch_dir("deadline_override")});
  BrokerConfig config;
  config.default_deadline_seconds = 1e-6;  // server degrades everything...
  Broker broker(library, config);

  ServeRequest request = flat4_request();
  request.deadline_seconds = -1.0;  // ...unless the caller opts out
  const ServeResponse response = broker.handle(request);
  EXPECT_FALSE(response.degraded);

  // And the default applies when the request says nothing — on a key whose
  // full synthesis hasn't happened yet.
  ServeRequest defaulted = flat4_request(1 << 21);  // different bucket = new key
  const ServeResponse degraded = broker.handle(defaulted);
  EXPECT_TRUE(degraded.degraded);
}

TEST(ServeDeadline, SynthesisFailureCleansUpInFlightState) {
  RegistryGuard guard;
  DiskLibrary library({scratch_dir("synth_fail")});
  Broker broker(library);

  util::Failpoints::instance().enable("serve.broker.synthesize", "error");
  // The pool-side failure arrives as this thread's own BrokerError (the
  // broker never shares live exception objects across threads).
  EXPECT_THROW(broker.handle(flat4_request()), BrokerError);
  util::Failpoints::instance().clear();
  // The failed synthesis must not leave a poisoned in-flight future behind.
  const ServeResponse retry = broker.handle(flat4_request());
  EXPECT_FALSE(retry.hit);
  EXPECT_GT(retry.predicted_time, 0.0);
}

// ---------------------------------------------------- transport hardening

TEST(ServeSocketHardening, EintrStormOnReadIsRetriedToCompletion) {
  RegistryGuard guard;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_EQ(::send(fds[1], "hello\n", 6, MSG_NOSIGNAL), 6);
  ::close(fds[1]);

  util::Failpoints::instance().enable("serve.socket.read", "eintr:20");
  FdStream stream(fds[0]);
  std::string line;
  ASSERT_TRUE(stream.read_line(line));
  EXPECT_EQ(line, "hello");
  EXPECT_EQ(util::Failpoints::instance().hits("serve.socket.read"), 20u);
}

TEST(ServeSocketHardening, SendToVanishedPeerFailsInsteadOfRaisingSigpipe) {
  RegistryGuard guard;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[0]);  // peer is gone
  FdStream stream(fds[1]);
  // Without MSG_NOSIGNAL this would deliver SIGPIPE and kill the test
  // binary; the hardened send surfaces EPIPE as a clean failure.
  EXPECT_FALSE(stream.write_all("OK 0 0 0 1.0 key\n"));
}

TEST(ServeSocketHardening, WriteFailpointFailsTheConnectionGracefully) {
  RegistryGuard guard;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdStream stream(fds[1]);
  util::Failpoints::instance().enable("serve.socket.write", "error");
  EXPECT_FALSE(stream.write_all("payload"));
  EXPECT_GE(util::Failpoints::instance().hits("serve.socket.write"), 1u);
  ::close(fds[0]);
}

TEST(ServeSocketHardening, IdleTimeoutUnblocksAReadWithNoTraffic) {
  RegistryGuard guard;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdStreamOptions options;
  options.idle_timeout_seconds = 0.3;
  FdStream stream(fds[0], options);
  const auto start = std::chrono::steady_clock::now();
  std::string line;
  EXPECT_FALSE(stream.read_line(line));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(250));
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  ::close(fds[1]);
}

TEST(ServeSocketHardening, StopFlagInterruptsABlockedRead) {
  RegistryGuard guard;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::atomic<bool> stop{false};
  FdStreamOptions options;
  options.stop = &stop;
  FdStream stream(fds[0], options);
  std::thread flipper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
  });
  const auto start = std::chrono::steady_clock::now();
  std::string line;
  EXPECT_FALSE(stream.read_line(line));  // no data ever arrives
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(10));
  flipper.join();
  ::close(fds[1]);
}

TEST(ServeSocketHardening, OversizedRequestLineIsRefusedNotBuffered) {
  RegistryGuard guard;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread writer([fd = fds[1]] {
    const std::string chunk(64 * 1024, 'x');  // no newline, ever
    for (int i = 0; i < 40; ++i) {            // 2.5 MB total
      if (::send(fd, chunk.data(), chunk.size(), MSG_NOSIGNAL) < 0) break;
    }
    ::close(fd);
  });
  {
    FdStream stream(fds[0]);
    std::string line;
    EXPECT_FALSE(stream.read_line(line));  // bails past the 1 MB line bound
  }  // closing the reader unblocks a writer stuck in send()
  writer.join();
}

TEST(ServeSocketHardening, BeginDrainStopsAcceptingAndServeReturns) {
  RegistryGuard guard;
  const std::string sock = scratch_dir("drain") + "/serve.sock";
  DiskLibrary library({scratch_dir("drain_lib")});
  Broker broker(library);
  UnixServer server(sock);

  std::thread serving([&] { server.serve(broker, library, -1, 5.0); });
  {
    auto client = connect_unix(sock, 5.0);
    std::string line;
    ASSERT_TRUE(client->write_all("PING\n"));
    ASSERT_TRUE(client->read_line(line));
    EXPECT_EQ(line, "PONG");
    // Leave the connection open: drain must still bring serve() home.
    server.begin_drain();
  }
  serving.join();  // hangs here = drain is broken
  EXPECT_TRUE(server.draining());
}

// --------------------------------------------- end-to-end failpoint sweep

/// In-memory Stream: scripted input, captured output (the serve_test
/// ScriptedStream pattern).
class MemoryStream : public Stream {
 public:
  explicit MemoryStream(std::string input) : input_(std::move(input)) {}

  bool read_line(std::string& line) override {
    if (pos_ >= input_.size()) return false;
    const std::size_t nl = input_.find('\n', pos_);
    if (nl == std::string::npos) return false;
    line.assign(input_, pos_, nl - pos_);
    pos_ = nl + 1;
    return true;
  }
  bool read_exact(std::string& out, std::size_t n) override {
    if (input_.size() - pos_ < n) return false;
    out.assign(input_, pos_, n);
    pos_ += n;
    return true;
  }
  bool write_all(std::string_view data) override {
    output.append(data);
    return true;
  }

  std::string output;

 private:
  std::string input_;
  std::size_t pos_ = 0;
};

/// One chaos sweep round per registered serve failpoint: arm it, drive a
/// real request end-to-end, and require (a) the failpoint actually fired,
/// (b) the request was answered (OK or ERR frame — never a hang, a desync,
/// or a dead process), and (c) the library reopens clean afterwards — no
/// surviving entry fails decode (the reopen ctor re-validates every file).
class ServeChaosSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ServeChaosSweep, RequestIsAnsweredAndLibraryReopensClean) {
  const std::string name = GetParam();
  RegistryGuard guard;
  const std::string safe = [&] {
    std::string s = name;
    for (char& c : s) {
      if (c == '.') c = '_';
    }
    return s;
  }();
  const std::string dir = scratch_dir("sweep_" + safe);

  ServeRequest request = flat4_request();
  const std::string wire = encode_request(request, "binary") + "QUIT\n";

  if (name == "serve.socket.read" || name == "serve.socket.write") {
    // Transport faults: drive serve_connection over a real socketpair so
    // the FdStream failpoints sit on the request path. The connection dies
    // cleanly; the process and the broker survive.
    DiskLibrary library({dir});
    Broker broker(library);
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    util::Failpoints::instance().enable(name, "error");
    std::thread client([fd = fds[1], &wire] {
      ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
      char sink[4096];
      while (::recv(fd, sink, sizeof(sink), 0) > 0) {
      }
      ::close(fd);
    });
    {
      FdStream stream(fds[0]);
      serve_connection(stream, broker, library);  // returns, never throws/hangs
    }  // close our end so the client's recv loop sees EOF
    client.join();
    EXPECT_GE(util::Failpoints::instance().hits(name.c_str()), 1u);
    util::Failpoints::instance().clear();
    // The broker still works on the next connection.
    const ServeResponse after = broker.handle(flat4_request());
    EXPECT_GT(after.predicted_time, 0.0);
    return;
  }

  std::string key;
  {
    DiskLibrary library({dir});
    Broker broker(library);
    if (name == "serve.codec.decode" || name == "serve.library.quarantine") {
      // These fire on the hit/recovery path: prime an entry first.
      key = broker.handle(request).scenario_key;
    }
    if (name == "serve.library.quarantine") {
      // ...and corrupt it, so reopening must quarantine under the fault.
      const fs::path entry = fs::path(dir) / (fnv1a_hex(key) + ".sched");
      ASSERT_TRUE(fs::exists(entry));
      std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
      f.seekp(static_cast<std::streamoff>(fs::file_size(entry) / 2));
      f.put('\xff');
      f.put('\xff');
    }
  }

  util::Failpoints::instance().enable(name, "error");
  {
    DiskLibrary library({dir});  // quarantine fault fires here
    Broker broker(library);
    MemoryStream stream(wire);
    const int handled = serve_connection(stream, broker, library);
    EXPECT_EQ(handled, 1);
    // Every request is answered: exactly one OK or ERR frame came back.
    MemoryStream replies(stream.output);
    WireResponse response;
    ASSERT_TRUE(read_response(replies, response)) << "no complete answer on the wire";
    if (name == "serve.broker.synthesize") {
      // Synthesis itself "failing" is the one fault that cannot produce a
      // schedule; the answer is a clean ERR, and the connection survived
      // to process QUIT.
      EXPECT_FALSE(response.ok);
    } else {
      // Library and codec faults degrade durability or hit-rate, never
      // availability.
      EXPECT_TRUE(response.ok) << response.error;
      EXPECT_FALSE(response.payload.empty());
    }
    if (name == "serve.library.snapshot_write" || name == "serve.library.snapshot_rename") {
      // Snapshot faults fire on compaction, not on the request path.
      EXPECT_FALSE(library.flush());
    }
  }
  EXPECT_GE(util::Failpoints::instance().hits(name.c_str()), 1u)
      << name << " is registered but never fired — dead failpoint?";
  util::Failpoints::instance().clear();

  // Recovery: the library must reopen, quarantine anything broken, and
  // serve only entries that decode (the ctor validates each one).
  DiskLibrary reopened({dir});
  const auto stats = reopened.stats();
  EXPECT_GE(stats.entries + stats.quarantined, 0u);  // opened without throwing
  if (!key.empty() && name != "serve.library.quarantine") {
    // The primed entry is either served intact or was quarantined — but a
    // get() never returns corrupt bytes (decode + key check inside).
    const auto got = reopened.get(key);
    if (got.has_value()) {
      EXPECT_EQ(got->scenario_key, key);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredFailpoints, ServeChaosSweep,
                         ::testing::ValuesIn(kServeFailpoints),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace syccl::serve
