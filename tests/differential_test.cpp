// Differential tests: the production simulator against the independent
// reference oracle (sim/oracle.h), plus regression tests for the op_start
// fallback and stale-reduce detection bugs the harness was built to catch.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "coll/collective.h"
#include "fuzz/differential.h"
#include "fuzz/generators.h"
#include "sim/oracle.h"
#include "sim/schedule.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "topo/groups.h"

namespace syccl::sim {
namespace {

topo::Topology easy_server(int n) {
  return topo::build_single_server(n, topo::LinkParams{1e-6, 1e9});
}

/// Runs both simulators and requires bit-level structural agreement and
/// 1e-9-relative timing agreement.
void expect_agreement(const topo::TopologyGroups& g, const Schedule& s, SimOptions opts) {
  opts.record_final_state = true;
  const Simulator sim(g, opts);
  const SimResult prod = sim.run(s);
  const OracleResult ref = oracle_run(g, s, opts);
  const auto diffs = diff_against_oracle(prod, ref, 1e-9);
  EXPECT_TRUE(diffs.empty()) << "first divergence: " << (diffs.empty() ? "" : diffs.front());
}

TEST(Differential, AgreesOnRelayChain) {
  const auto g = topo::extract_groups(easy_server(3));
  Schedule s;
  const int p = s.add_piece(Piece{0, 1000.0, 0, false, {}});
  s.add_op(p, 0, 1);
  s.add_op(p, 1, 2);
  SimOptions opts;
  opts.max_blocks = 1;
  expect_agreement(g, s, opts);
}

TEST(Differential, AgreesOnPipelinedFanout) {
  const auto g = topo::extract_groups(easy_server(4));
  Schedule s;
  const int p = s.add_piece(Piece{0, 4000.0, 0, false, {}});
  s.add_op(p, 0, 1);
  s.add_op(p, 0, 2);
  s.add_op(p, 1, 3);
  SimOptions opts;
  opts.block_bytes = 1000.0;  // 4 pipeline blocks
  opts.max_blocks = 8;
  expect_agreement(g, s, opts);
}

TEST(Differential, AgreesAcrossPhaseBarriers) {
  const auto g = topo::extract_groups(easy_server(3));
  Schedule s;
  const int a = s.add_piece(Piece{0, 1000.0, 0, false, {}});
  const int b = s.add_piece(Piece{1, 2000.0, 2, false, {}});
  s.add_op(a, 0, 1, -1, 0);
  s.add_op(b, 2, 0, -1, 1);  // must wait for phase 0 to drain
  s.add_op(a, 1, 2, -1, 1);
  SimOptions opts;
  opts.max_blocks = 2;
  opts.block_bytes = 1000.0;
  expect_agreement(g, s, opts);
}

TEST(Differential, AgreesOnReduceInTree) {
  const auto g = topo::extract_groups(easy_server(4));
  Schedule s;
  const int p = s.add_piece(Piece{0, 1000.0, -1, true, {0, 1, 2, 3}});
  s.add_op(p, 3, 2);
  s.add_op(p, 2, 1);
  s.add_op(p, 1, 0);
  SimOptions opts;
  opts.max_blocks = 1;
  expect_agreement(g, s, opts);

  // And the merged contributor set at the root is complete.
  opts.record_final_state = true;
  const SimResult r = Simulator(g, opts).run(s);
  bool found = false;
  for (const auto& st : r.final_state) {
    if (st.piece == p && st.rank == 0) {
      found = true;
      EXPECT_EQ(st.contributors, (std::vector<int>{0, 1, 2, 3}));
    }
  }
  EXPECT_TRUE(found);
}

TEST(Differential, AgreesOnMultiRailTopology) {
  topo::MultiRailSpec spec;
  spec.num_servers = 2;
  spec.gpus_per_server = 2;
  spec.with_spine = true;
  const auto g = topo::extract_groups(topo::build_multi_rail(spec));
  const auto coll = coll::make_allgather(4, 8192);
  util::Rng rng(7);
  const Schedule s = fuzz::random_direct_schedule(coll, g, rng);
  SimOptions opts;
  opts.block_bytes = 2048.0;
  opts.max_blocks = 4;
  expect_agreement(g, s, opts);
}

TEST(DifferentialFuzz, SmokeCasesAreClean) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    fuzz::CaseOptions opt;
    opt.mutants = 1;
    const fuzz::CaseResult r = fuzz::run_differential_case(seed, opt);
    EXPECT_TRUE(r.failures.empty())
        << "seed " << seed << " (" << r.desc << "): " << r.failures.front();
    EXPECT_GT(r.schedules_checked, 0);
  }
}

// ---------------------------------------------------------------------------
// Regression: op_start of a zero-hop op (satellite of the differential
// harness). A hand-built group with empty up/down hop lists is the only way
// to reach the fallback: extract_groups never produces empty paths.

topo::GroupTopology make_group(int dim, std::vector<int> ranks, bool with_hops, int link_base) {
  topo::GroupTopology gt;
  gt.dim = dim;
  gt.group_index = 0;
  gt.ranks = std::move(ranks);
  const std::size_t n = gt.ranks.size();
  gt.up.assign(n, topo::GroupPort{1e-6, 1e-9, link_base});
  gt.down.assign(n, topo::GroupPort{1e-6, 1e-9, link_base + 1});
  gt.up_hops.assign(n, {});
  gt.down_hops.assign(n, {});
  if (with_hops) {
    for (std::size_t i = 0; i < n; ++i) {
      const int id = link_base + 2 * static_cast<int>(i);
      gt.up_hops[i] = {topo::PathHop{id, 1e-6, 1e-9}};
      gt.down_hops[i] = {topo::PathHop{id + 1, 1e-6, 1e-9}};
    }
  }
  return gt;
}

TEST(SimulatorRegression, ZeroHopOpStartFallsBackToReadyTime) {
  // Dim 0 carries a real transfer; dim 1 is a degenerate zero-hop group.
  topo::TopologyGroups g;
  g.dims.resize(2);
  g.dims[0].groups.push_back(make_group(0, {0, 1}, /*with_hops=*/true, 0));
  g.dims[1].groups.push_back(make_group(1, {0, 1}, /*with_hops=*/false, 100));
  g.group_of = {{0, 0}, {0, 0}};

  Schedule s;
  const int a = s.add_piece(Piece{0, 1000.0, 0, false, {}});
  s.add_op(a, 0, 1, /*dim=*/0, /*phase=*/0);  // takes real time
  const int b = s.add_piece(Piece{1, 1000.0, 0, false, {}});
  s.add_op(b, 0, 1, /*dim=*/1, /*phase=*/1);  // zero-hop, gated by the barrier

  SimOptions opts;
  opts.max_blocks = 1;
  const SimResult r = Simulator(g, opts).run(s);
  ASSERT_GT(r.op_finish[0], 0.0);
  // The zero-hop op allocates no link slot; its start used to be reported as
  // 0.0. It must be the time its first block became ready — here the phase
  // barrier, i.e. the finish of op 0.
  EXPECT_DOUBLE_EQ(r.op_start[1], r.op_finish[0]);
  expect_agreement(g, s, opts);
}

// ---------------------------------------------------------------------------
// Regression: a reduce contribution delivered to a rank after that rank has
// already forwarded its partial is silently lost (the forwarded copy can
// never include it). The simulator used to mistime this; it must throw, as
// it does for absent sources.

TEST(SimulatorRegression, StaleReduceContributionThrows) {
  const auto g = topo::extract_groups(easy_server(3));
  const Simulator sim(g, SimOptions{});
  Schedule s;
  const int p = s.add_piece(Piece{0, 1000.0, -1, true, {0, 1, 2}});
  s.add_op(p, 1, 0);  // rank 1 forwards its partial {1}
  s.add_op(p, 2, 1);  // grows rank 1's set after the forward: stale
  EXPECT_THROW(sim.run(s), std::invalid_argument);
  EXPECT_THROW(oracle_run(g, s, SimOptions{}), std::invalid_argument);
}

TEST(SimulatorRegression, RedeliveryWithoutGrowthIsAllowed) {
  const auto g = topo::extract_groups(easy_server(3));
  Schedule s;
  const int p = s.add_piece(Piece{0, 1000.0, -1, true, {0, 1, 2}});
  s.add_op(p, 2, 1);  // rank 1 holds {1,2}
  s.add_op(p, 1, 0);  // root holds {0,1,2}; rank 1 has forwarded
  s.add_op(p, 2, 1);  // redundant but not stale: {2} adds nothing
  SimOptions opts;
  opts.max_blocks = 1;
  EXPECT_NO_THROW(Simulator(g, opts).run(s));
  expect_agreement(g, s, opts);
}

}  // namespace
}  // namespace syccl::sim
