// Tests for demand-plan construction and sub-schedule merging.
#include <gtest/gtest.h>

#include <set>

#include "core/merge.h"

#include "sim/simulator.h"
#include "core/subdemand.h"
#include "sketch/alltoall.h"
#include "sketch/replicate.h"
#include "solver/milp_scheduler.h"
#include "topo/builders.h"

namespace syccl::core {
namespace {

struct Fixture {
  topo::Topology topo = topo::build_h800_cluster(2);
  topo::TopologyGroups groups = topo::extract_groups(topo);
};

sketch::SketchCombination first_combo(const Fixture& f, sketch::RootedPattern pattern) {
  const auto combos = sketch::generate_alltoall_combinations(f.groups, pattern, {});
  return combos.front();
}

TEST(DemandPlan, AllGatherPiecesMatchChunks) {
  Fixture f;
  const auto combo = first_combo(f, sketch::RootedPattern::Broadcast);
  const auto ag = coll::make_allgather(16, 16 << 20);
  const DemandPlan plan = build_demand_plan(combo, ag, f.groups);

  // One piece per (sketch, root chunk); every chunk covered.
  std::set<int> chunks;
  double total = 0;
  for (const auto& p : plan.pieces) {
    chunks.insert(p.chunk);
    total += p.bytes;
  }
  EXPECT_EQ(chunks.size(), 16u);
  EXPECT_NEAR(total, 16 * ag.chunk_bytes(), 1.0);
  ASSERT_FALSE(plan.demands.empty());
  for (const auto& md : plan.demands) {
    EXPECT_NO_THROW(md.demand.validate());
    EXPECT_EQ(md.demand.pieces.size(), md.global_piece.size());
  }
  // Demands sorted by stage.
  for (std::size_t i = 1; i < plan.demands.size(); ++i) {
    EXPECT_LE(plan.demands[i - 1].stage, plan.demands[i].stage);
  }
}

TEST(DemandPlan, PieceOrderIsCanonical) {
  // Two isomorphic demands must present pieces in the same structural order
  // (required for solver-result sharing).
  Fixture f;
  const auto combo = first_combo(f, sketch::RootedPattern::Broadcast);
  const auto ag = coll::make_allgather(16, 16 << 20);
  const DemandPlan plan = build_demand_plan(combo, ag, f.groups);
  for (const auto& md : plan.demands) {
    for (std::size_t i = 1; i < md.demand.pieces.size(); ++i) {
      const auto& a = md.demand.pieces[i - 1];
      const auto& b = md.demand.pieces[i];
      EXPECT_LE(std::make_pair(a.srcs, a.dsts), std::make_pair(b.srcs, b.dsts));
    }
  }
}

TEST(DemandPlan, ScatterRoutesSubtreeChunks) {
  Fixture f;
  const auto combo = first_combo(f, sketch::RootedPattern::Scatter);
  const auto a2a = coll::make_alltoall(16, 16 << 20);
  const DemandPlan plan = build_demand_plan(combo, a2a, f.groups);
  // AlltoAll: n(n-1) chunks, each a piece per carrying sketch.
  EXPECT_GE(plan.pieces.size(), 16u * 15u);
  for (const auto& md : plan.demands) EXPECT_NO_THROW(md.demand.validate());
}

TEST(DemandPlan, RejectsRootWithoutChunk) {
  Fixture f;
  const auto combo = first_combo(f, sketch::RootedPattern::Broadcast);
  // A rooted Broadcast at rank 0 has no chunk originating at other roots.
  const auto bc = coll::make_broadcast(16, 1 << 20, 0);
  EXPECT_THROW(build_demand_plan(combo, bc, f.groups), std::invalid_argument);
}

TEST(Merge, ForwardScheduleSatisfiesCollective) {
  Fixture f;
  const auto combo = first_combo(f, sketch::RootedPattern::Broadcast);
  const auto ag = coll::make_allgather(16, 16 << 20);
  const DemandPlan plan = build_demand_plan(combo, ag, f.groups);
  std::vector<solver::SubSchedule> solved;
  for (const auto& md : plan.demands) {
    solver::MilpSchedulerOptions opts;
    opts.greedy_only = true;
    solved.push_back(solver::solve_sub_demand(md.demand, opts));
  }
  const sim::Schedule sched = merge_schedule(plan, solved, f.groups, false, false, "test");
  const sim::Simulator sim(f.groups);
  EXPECT_GT(sim.time_collective(sched, ag), 0.0);
}

TEST(Merge, ReverseProducesReducePieces) {
  Fixture f;
  const auto combo = first_combo(f, sketch::RootedPattern::Broadcast);
  const auto twin = coll::make_allgather(16, 16 << 20);
  const auto rs = coll::make_reduce_scatter(16, 16 << 20);
  const DemandPlan plan = build_demand_plan(combo, twin, f.groups);
  std::vector<solver::SubSchedule> solved;
  for (const auto& md : plan.demands) {
    solver::MilpSchedulerOptions opts;
    opts.greedy_only = true;
    solved.push_back(solver::solve_sub_demand(md.demand, opts));
  }
  const sim::Schedule sched = merge_schedule(plan, solved, f.groups, true, true, "test-rs");
  for (const auto& p : sched.pieces) {
    EXPECT_TRUE(p.reduce);
    EXPECT_EQ(p.contributors.size(), 16u);
  }
  const sim::Simulator sim(f.groups);
  EXPECT_GT(sim.time_collective(sched, rs), 0.0);
}

TEST(Merge, SizeMismatchThrows) {
  Fixture f;
  const auto combo = first_combo(f, sketch::RootedPattern::Broadcast);
  const auto ag = coll::make_allgather(16, 1 << 20);
  const DemandPlan plan = build_demand_plan(combo, ag, f.groups);
  std::vector<solver::SubSchedule> wrong(plan.demands.size() + 1);
  EXPECT_THROW(merge_schedule(plan, wrong, f.groups, false, false, "x"), std::invalid_argument);
}

TEST(Merge, ReversePiecesHelper) {
  std::vector<sim::Piece> fwd{{3, 100.0, 7, false, {}}};
  const auto rev = reverse_pieces(fwd, {0, 1, 2});
  ASSERT_EQ(rev.size(), 1u);
  EXPECT_TRUE(rev[0].reduce);
  EXPECT_EQ(rev[0].chunk, 7);  // reversed flow converges at the forward origin
  EXPECT_EQ(rev[0].contributors, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace syccl::core
