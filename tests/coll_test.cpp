// Tests for the collective model, decomposition and busbw metric.
#include <gtest/gtest.h>

#include "coll/busbw.h"
#include "coll/collective.h"
#include "coll/decompose.h"

namespace syccl::coll {
namespace {

TEST(Collective, BroadcastShape) {
  const Collective c = make_broadcast(8, 1 << 20, 3);
  EXPECT_EQ(c.kind(), CollKind::Broadcast);
  ASSERT_EQ(c.num_chunks(), 1);
  EXPECT_EQ(c.chunks()[0].src, 3);
  EXPECT_EQ(c.chunks()[0].dsts.size(), 7u);
  EXPECT_DOUBLE_EQ(c.chunk_bytes(), static_cast<double>(1 << 20));
  EXPECT_FALSE(c.reduce());
}

TEST(Collective, AllGatherShape) {
  const Collective c = make_allgather(4, 4096);
  EXPECT_EQ(c.num_chunks(), 4);
  EXPECT_DOUBLE_EQ(c.chunk_bytes(), 1024.0);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(c.chunks()[r].src, r);
    EXPECT_EQ(c.chunks()[r].dsts.size(), 3u);
  }
}

TEST(Collective, AllToAllShape) {
  const Collective c = make_alltoall(4, 4096);
  EXPECT_EQ(c.num_chunks(), 12);  // n(n-1)
  EXPECT_DOUBLE_EQ(c.chunk_bytes(), 1024.0);
}

TEST(Collective, ReduceScatterIsReduce) {
  const Collective c = make_reduce_scatter(4, 4096);
  EXPECT_TRUE(c.reduce());
  EXPECT_EQ(c.num_chunks(), 12);
}

TEST(Collective, RejectsBadRoot) {
  EXPECT_THROW(make_broadcast(4, 1024, 4), std::invalid_argument);
  EXPECT_THROW(make_broadcast(4, 1024, -1), std::invalid_argument);
  EXPECT_THROW(make_sendrecv(4, 1, 1, 1024), std::invalid_argument);
}

TEST(Collective, TinySizesClampToOneByte) {
  const Collective c = make_allgather(16, 1);
  EXPECT_GE(c.chunk_bytes(), 1.0);
}

TEST(Decompose, AllGatherIntoBroadcasts) {
  const Collective ag = make_allgather(4, 4096);
  const auto parts = decompose(ag);
  ASSERT_EQ(parts.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(parts[static_cast<std::size_t>(r)].kind(), CollKind::Broadcast);
    EXPECT_EQ(parts[static_cast<std::size_t>(r)].chunks()[0].src, r);
    // Piece size must match the parent chunk size.
    EXPECT_DOUBLE_EQ(parts[static_cast<std::size_t>(r)].chunk_bytes(), ag.chunk_bytes());
  }
}

TEST(Decompose, AllToAllIntoScatters) {
  const Collective a2a = make_alltoall(4, 4096);
  const auto parts = decompose(a2a);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0].kind(), CollKind::Scatter);
  EXPECT_DOUBLE_EQ(parts[0].chunk_bytes(), a2a.chunk_bytes());
}

TEST(Decompose, ReduceScatterIntoReduces) {
  const Collective rs = make_reduce_scatter(4, 4096);
  const auto parts = decompose(rs);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2].kind(), CollKind::Reduce);
  EXPECT_TRUE(parts[2].reduce());
  EXPECT_DOUBLE_EQ(parts[2].chunk_bytes(), rs.chunk_bytes());
}

TEST(Decompose, AllReducePhases) {
  const Collective ar = make_allreduce(8, 1 << 20);
  const auto [rs, ag] = allreduce_phases(ar);
  EXPECT_EQ(rs.kind(), CollKind::ReduceScatter);
  EXPECT_EQ(ag.kind(), CollKind::AllGather);
  EXPECT_EQ(rs.total_bytes(), ar.total_bytes());
  EXPECT_THROW(decompose(ar), std::invalid_argument);
  EXPECT_THROW(allreduce_phases(rs), std::invalid_argument);
}

TEST(Decompose, InverseKinds) {
  EXPECT_EQ(inverse_kind(CollKind::Broadcast), CollKind::Reduce);
  EXPECT_EQ(inverse_kind(CollKind::Scatter), CollKind::Gather);
  EXPECT_EQ(inverse_kind(CollKind::Gather), CollKind::Scatter);
  EXPECT_THROW(inverse_kind(CollKind::AllGather), std::invalid_argument);
}

TEST(Busbw, FactorsMatchNcclTests) {
  EXPECT_DOUBLE_EQ(busbw_factor(CollKind::AllGather, 8), 7.0 / 8.0);
  EXPECT_DOUBLE_EQ(busbw_factor(CollKind::ReduceScatter, 8), 7.0 / 8.0);
  EXPECT_DOUBLE_EQ(busbw_factor(CollKind::AllReduce, 8), 14.0 / 8.0);
  EXPECT_DOUBLE_EQ(busbw_factor(CollKind::Broadcast, 8), 1.0);
}

TEST(Busbw, Computation) {
  const Collective ag = make_allgather(4, 4'000'000'000ull);
  // 4 GB in 0.1 s → algbw 40 GB/s → busbw 30 GB/s.
  EXPECT_NEAR(busbw_GBps(ag, 0.1), 30.0, 1e-9);
  EXPECT_THROW(algbw(100, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace syccl::coll
