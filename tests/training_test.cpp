// Tests for the training trace / iteration-time model (Table 6 substrate).
#include <gtest/gtest.h>

#include "training/iteration.h"
#include "training/trace.h"

namespace syccl::training {
namespace {

TrainSetup dp_setup() {
  TrainSetup s;
  s.model = gpt3_6p7b();
  s.mode = Parallelism::DataParallel;
  s.num_gpus = 16;
  s.batch_tokens = 40960;
  return s;
}

TEST(Trace, DataParallelIsRsPlusAg) {
  const auto calls = trace_iteration(dp_setup());
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0].kind, coll::CollKind::ReduceScatter);
  EXPECT_EQ(calls[1].kind, coll::CollKind::AllGather);
  // bf16 gradients: 2 bytes per parameter.
  EXPECT_EQ(calls[0].bytes, 2ull * gpt3_6p7b().parameters);
  EXPECT_EQ(calls[0].count, 1);
}

TEST(Trace, TensorParallelScalesWithLayers) {
  TrainSetup s = dp_setup();
  s.mode = Parallelism::TensorParallel;
  s.batch_tokens = 8192;
  const auto calls = trace_iteration(s);
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0].count, 4 * s.model.layers);
  EXPECT_EQ(calls[1].count, 4 * s.model.layers);
  // Activation buffer: tokens × hidden × 2 bytes.
  EXPECT_EQ(calls[0].bytes, 8192ull * 4096 * 2);
}

TEST(Trace, MaterialiseBuildsCollectives) {
  const auto calls = trace_iteration(dp_setup());
  const auto rs = calls[0].materialise(16);
  EXPECT_EQ(rs.kind(), coll::CollKind::ReduceScatter);
  EXPECT_EQ(rs.num_ranks(), 16);
}

TEST(Trace, RejectsBadSetups) {
  TrainSetup s = dp_setup();
  s.num_gpus = 1;
  EXPECT_THROW(trace_iteration(s), std::invalid_argument);
  s = dp_setup();
  s.batch_tokens = 0;
  EXPECT_THROW(trace_iteration(s), std::invalid_argument);
}

TEST(Iteration, ComputeTimeScalesInversely) {
  const IterationModel m;
  TrainSetup s16 = dp_setup();
  TrainSetup s32 = dp_setup();
  s32.num_gpus = 32;
  EXPECT_NEAR(compute_time(s16, m), 2.0 * compute_time(s32, m), 1e-9);
  // GPT3-6.7B, 40960 tokens, 16×150 TFLOP/s → ~0.69 s of compute.
  EXPECT_NEAR(compute_time(s16, m), 6.0 * 6.7e9 * 40960 / (16 * 150e12), 1e-6);
}

TEST(Iteration, FasterCollectivesShrinkIterationTime) {
  const IterationModel m;
  const TrainSetup s = dp_setup();
  const double slow = iteration_time(s, m, [](const coll::Collective&) { return 100e-3; });
  const double fast = iteration_time(s, m, [](const coll::Collective&) { return 50e-3; });
  EXPECT_GT(slow, fast);
  // 2 calls, 50 ms saved each, 50% overlap → 50 ms difference.
  EXPECT_NEAR(slow - fast, 2 * 50e-3 * (1.0 - m.overlap_dp), 1e-9);
}

TEST(Iteration, TpCommFullyExposed) {
  IterationModel m;
  TrainSetup s = dp_setup();
  s.mode = Parallelism::TensorParallel;
  s.batch_tokens = 8192;
  const double t0 = iteration_time(s, m, [](const coll::Collective&) { return 0.0; });
  const double t1 = iteration_time(s, m, [](const coll::Collective&) { return 1e-3; });
  // 256 calls × 1 ms × (1 − 0) = 0.256 s difference.
  EXPECT_NEAR(t1 - t0, 0.256, 1e-9);
}

}  // namespace
}  // namespace syccl::training
