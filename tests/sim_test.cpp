// Tests for the α–β event simulator against hand-computed timings.
#include <gtest/gtest.h>

#include <cmath>

#include "coll/collective.h"
#include "sim/schedule.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "topo/groups.h"

namespace syccl::sim {
namespace {

using topo::build_single_server;
using topo::extract_groups;
using topo::LinkParams;

/// A server with easy numbers: α = 1 µs GPU→GPU, β = 1 ns/byte.
topo::Topology easy_server(int n) { return build_single_server(n, LinkParams{1e-6, 1e9}); }

SimOptions no_pipeline() {
  SimOptions o;
  o.max_blocks = 1;
  return o;
}

TEST(Simulator, SingleTransferAlphaBeta) {
  const auto t = easy_server(2);
  const auto g = extract_groups(t);
  Simulator sim(g, no_pipeline());

  Schedule s;
  const int p = s.add_piece(Piece{0, 1000.0, 0, false, {}});
  s.add_op(p, 0, 1);
  const SimResult r = sim.run(s);
  // α + β·s = 1e-6 + 1e-9 · 1000 = 2 µs (cut-through across the two hops).
  EXPECT_NEAR(r.makespan, 2e-6, 1e-12);
  EXPECT_EQ(r.num_events, 2u);  // one block over two physical links
}

TEST(Simulator, SerializationOnSendPort) {
  const auto t = easy_server(3);
  const auto g = extract_groups(t);
  Simulator sim(g, no_pipeline());

  Schedule s;
  const int p = s.add_piece(Piece{0, 1000.0, 0, false, {}});
  s.add_op(p, 0, 1);
  s.add_op(p, 0, 2);
  const SimResult r = sim.run(s);
  // Second send waits for the first to clear the port: starts at β·s = 1 µs,
  // arrives at 1 µs + 2 µs = 3 µs.
  EXPECT_NEAR(r.op_finish[0], 2e-6, 1e-12);
  EXPECT_NEAR(r.op_finish[1], 3e-6, 1e-12);
}

TEST(Simulator, ChainWaitsForAvailability) {
  const auto t = easy_server(3);
  const auto g = extract_groups(t);
  Simulator sim(g, no_pipeline());

  Schedule s;
  const int p = s.add_piece(Piece{0, 1000.0, 0, false, {}});
  s.add_op(p, 0, 1);
  s.add_op(p, 1, 2);
  const SimResult r = sim.run(s);
  // Relay: 2 µs then another 2 µs.
  EXPECT_NEAR(r.makespan, 4e-6, 1e-12);
}

TEST(Simulator, RejectsDependencyInversion) {
  const auto t = easy_server(3);
  const auto g = extract_groups(t);
  Simulator sim(g, no_pipeline());

  Schedule s;
  const int p = s.add_piece(Piece{0, 1000.0, 0, false, {}});
  s.add_op(p, 1, 2);  // rank 1 does not have the piece yet
  EXPECT_THROW(sim.run(s), std::invalid_argument);
}

TEST(Simulator, PipeliningOverlapsHops) {
  const auto t = easy_server(3);
  const auto g = extract_groups(t);
  SimOptions opts;
  opts.block_bytes = 250.0;
  opts.max_blocks = 4;
  Simulator pipelined(g, opts);
  Simulator store_forward(g, no_pipeline());

  Schedule s;
  const int p = s.add_piece(Piece{0, 1000.0, 0, false, {}});
  s.add_op(p, 0, 1);
  s.add_op(p, 1, 2);

  const double t_pipe = pipelined.run(s).makespan;
  const double t_sf = store_forward.run(s).makespan;
  // Store-and-forward: 2·(α+βs) = 4 µs. Pipelined: βs + α + α + βs/4 = 2.25 µs + α…
  EXPECT_LT(t_pipe, t_sf);
  EXPECT_NEAR(t_sf, 4e-6, 1e-12);
  // Analytic pipelined time: last block leaves rank 0 at 3·βs/4 = 0.75 µs,
  // arrives at rank 1 at 0.75 + α + βs/4 = 2.0 µs, forwards immediately and
  // arrives at rank 2 at 2.0 + α + βs/4 = 3.25 µs.
  EXPECT_NEAR(t_pipe, 3.25e-6, 1e-9);
}

TEST(Simulator, PhaseBarrier) {
  const auto t = easy_server(4);
  const auto g = extract_groups(t);
  Simulator sim(g, no_pipeline());

  Schedule s;
  const int p0 = s.add_piece(Piece{0, 1000.0, 0, false, {}});
  const int p1 = s.add_piece(Piece{1, 1000.0, 2, false, {}});
  s.add_op(p0, 0, 1, -1, 0);
  s.add_op(p1, 2, 3, -1, 1);  // later phase: waits for phase 0 to finish
  const SimResult r = sim.run(s);
  EXPECT_NEAR(r.op_finish[1], 4e-6, 1e-12);
}

TEST(Simulator, AppendSequentialAddsBarrier) {
  const auto t = easy_server(2);
  const auto g = extract_groups(t);
  Simulator sim(g, no_pipeline());

  Schedule a;
  const int pa = a.add_piece(Piece{0, 1000.0, 0, false, {}});
  a.add_op(pa, 0, 1);
  Schedule b;
  const int pb = b.add_piece(Piece{1, 1000.0, 1, false, {}});
  b.add_op(pb, 1, 0);
  a.append_sequential(b);
  ASSERT_EQ(a.ops.size(), 2u);
  EXPECT_EQ(a.ops[1].piece, 1);
  EXPECT_NEAR(sim.run(a).makespan, 4e-6, 1e-12);
}

TEST(Simulator, ReducePieceWaitsForAllContributors) {
  const auto t = easy_server(3);
  const auto g = extract_groups(t);
  Simulator sim(g, no_pipeline());

  // Reduce to rank 0: ranks 1 and 2 send partials; rank 2 relays via 1.
  Schedule s;
  const int p = s.add_piece(Piece{0, 1000.0, -1, true, {0, 1, 2}});
  s.add_op(p, 2, 1);  // 1 now holds {1,2} partial after 2 µs
  s.add_op(p, 1, 0);  // must wait for the inbound partial
  const SimResult r = sim.run(s);
  EXPECT_NEAR(r.makespan, 4e-6, 1e-12);
}

TEST(Simulator, TimeCollectiveChecksDemands) {
  const auto t = easy_server(3);
  const auto g = extract_groups(t);
  Simulator sim(g, no_pipeline());
  const auto bc = coll::make_broadcast(3, 1000, 0);

  Schedule incomplete;
  incomplete.pieces = pieces_for(bc);
  incomplete.add_op(0, 0, 1);
  EXPECT_THROW(sim.time_collective(incomplete, bc), std::invalid_argument);

  Schedule full = incomplete;
  full.add_op(0, 0, 2);
  EXPECT_NEAR(sim.time_collective(full, bc), 3e-6, 1e-12);
}

TEST(Simulator, TimeCollectiveAcceptsSplitPieces) {
  const auto t = easy_server(2);
  const auto g = extract_groups(t);
  Simulator sim(g, no_pipeline());
  const auto bc = coll::make_broadcast(2, 1000, 0);

  Schedule s;
  const int h1 = s.add_piece(Piece{0, 500.0, 0, false, {}});
  const int h2 = s.add_piece(Piece{0, 500.0, 0, false, {}});
  s.add_op(h1, 0, 1);
  s.add_op(h2, 0, 1);
  // Two halves cover the chunk; serialised on the port.
  EXPECT_NEAR(sim.time_collective(s, bc), 1e-6 + 1e-6, 1e-12);
}

TEST(Simulator, ReduceDemandRequiresAllContributors) {
  const auto t = easy_server(3);
  const auto g = extract_groups(t);
  Simulator sim(g, no_pipeline());
  const auto red = coll::make_reduce(3, 3000, 0);

  Schedule partial;
  partial.pieces = pieces_for(red);
  ASSERT_EQ(partial.pieces.size(), 1u);
  EXPECT_TRUE(partial.pieces[0].reduce);
  partial.add_op(0, 1, 0);  // missing rank 2's contribution
  EXPECT_THROW(sim.time_collective(partial, red), std::invalid_argument);

  Schedule full = partial;
  full.add_op(0, 2, 0);
  EXPECT_GT(sim.time_collective(full, red), 0.0);
}

TEST(Simulator, CrossDimensionPortsAreIndependent) {
  // Two sends from the same GPU on different dimensions overlap.
  const auto t = topo::build_h800_cluster(2);
  const auto g = extract_groups(t);
  Simulator sim(g, no_pipeline());

  Schedule s;
  const int p = s.add_piece(Piece{0, 1 << 20, 0, false, {}});
  s.add_op(p, 0, 1, 0);  // NVLink to neighbour
  s.add_op(p, 0, 8, 1);  // rail to server 1
  const SimResult r = sim.run(s);
  // The rail op does not queue behind the NVLink op.
  const auto& nv = g.group(0, 0);
  const auto& rail = g.group(1, 0);
  const double t_nv = nv.pair_alpha(0, 1) + nv.pair_beta(0, 1) * (1 << 20);
  const int l0 = rail.local_of(0);
  const int l8 = rail.local_of(8);
  const double t_rail = rail.pair_alpha(l0, l8) + rail.pair_beta(l0, l8) * (1 << 20);
  EXPECT_NEAR(r.op_finish[0], t_nv, 1e-10);
  EXPECT_NEAR(r.op_finish[1], t_rail, 1e-10);
}

}  // namespace
}  // namespace syccl::sim
