// Tests for the asymmetric (Alltoallv) heuristic path (§8).
#include <gtest/gtest.h>

#include "core/asymmetric.h"
#include "sim/simulator.h"
#include "topo/builders.h"

namespace syccl::core {
namespace {

struct Fixture {
  topo::Topology topo = topo::build_h800_cluster(2);
  topo::TopologyGroups groups = topo::extract_groups(topo);
};

DemandMatrix uniform(int n, std::uint64_t bytes) {
  DemandMatrix m(static_cast<std::size_t>(n), std::vector<std::uint64_t>(n, bytes));
  for (int i = 0; i < n; ++i) m[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 0;
  return m;
}

TEST(AllToAllV, UniformMatrixIsServed) {
  Fixture f;
  const auto demand = uniform(16, 1 << 20);
  const auto sched = synthesize_alltoallv(demand, f.groups);
  EXPECT_TRUE(verify_alltoallv(sched, demand));
  const sim::Simulator sim(f.groups);
  EXPECT_GT(sim.run(sched).makespan, 0.0);
}

TEST(AllToAllV, SkewedMoeMatrixIsServed) {
  // MoE-style skew: a few hot (expert) destinations get most bytes.
  Fixture f;
  DemandMatrix demand = uniform(16, 64 << 10);
  for (int s = 0; s < 16; ++s) {
    if (s != 3) demand[static_cast<std::size_t>(s)][3] = 8 << 20;
    if (s != 11) demand[static_cast<std::size_t>(s)][11] = 8 << 20;
  }
  const auto sched = synthesize_alltoallv(demand, f.groups);
  EXPECT_TRUE(verify_alltoallv(sched, demand));
}

TEST(AllToAllV, SparseMatrixOnlyMovesWhatIsAsked) {
  Fixture f;
  DemandMatrix demand(16, std::vector<std::uint64_t>(16, 0));
  demand[0][9] = 1 << 20;
  demand[5][2] = 2 << 20;
  const auto sched = synthesize_alltoallv(demand, f.groups);
  EXPECT_TRUE(verify_alltoallv(sched, demand));
  double total = 0;
  for (const auto& p : sched.pieces) total += p.bytes;
  EXPECT_NEAR(total, (1 << 20) + (2 << 20), 1.0);
}

TEST(AllToAllV, CrossRailUsesRelay) {
  Fixture f;
  DemandMatrix demand(16, std::vector<std::uint64_t>(16, 0));
  demand[0][9] = 1 << 20;  // server 0 rail 0 → server 1 rail 1: cross-rail
  const auto sched = synthesize_alltoallv(demand, f.groups);
  ASSERT_EQ(sched.ops.size(), 2u);  // NVLink relay + same-rail hop
  EXPECT_EQ(sched.ops[0].dim, 0);
  EXPECT_EQ(sched.ops[1].dim, 1);
}

TEST(AllToAllV, LongestFirstOrdering) {
  Fixture f;
  DemandMatrix demand(16, std::vector<std::uint64_t>(16, 0));
  demand[0][8] = 1 << 10;   // same rail, small
  demand[1][9] = 8 << 20;   // same rail, big
  const auto sched = synthesize_alltoallv(demand, f.groups);
  ASSERT_EQ(sched.ops.size(), 2u);
  EXPECT_GT(sched.pieces[sched.ops[0].piece].bytes, sched.pieces[sched.ops[1].piece].bytes);
}

TEST(AllToAllV, RejectsBadMatrices) {
  Fixture f;
  DemandMatrix wrong_rank(8, std::vector<std::uint64_t>(8, 1));
  EXPECT_THROW(validate_demand_matrix(wrong_rank, f.groups), std::invalid_argument);
  DemandMatrix not_square(16, std::vector<std::uint64_t>(15, 0));
  EXPECT_THROW(validate_demand_matrix(not_square, f.groups), std::invalid_argument);
  DemandMatrix diag = uniform(16, 0);
  diag[4][4] = 7;
  EXPECT_THROW(validate_demand_matrix(diag, f.groups), std::invalid_argument);
}

TEST(AllToAllV, VerifierCatchesMissingDelivery) {
  Fixture f;
  DemandMatrix demand(16, std::vector<std::uint64_t>(16, 0));
  demand[0][1] = 1024;
  auto sched = synthesize_alltoallv(demand, f.groups);
  sched.ops.clear();  // drop the transfer
  EXPECT_FALSE(verify_alltoallv(sched, demand));
}

}  // namespace
}  // namespace syccl::core
