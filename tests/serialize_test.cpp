// Tests for the plain-text topology serialisation.
#include <gtest/gtest.h>

#include "fuzz/generators.h"
#include "serve/canonical.h"
#include "topo/builders.h"
#include "topo/groups.h"
#include "topo/serialize.h"
#include "util/rng.h"

namespace syccl::topo {
namespace {

TEST(Serialize, RoundTripPreservesStructure) {
  const Topology original = topo::build_h800_cluster(2);
  const Topology parsed = from_text(to_text(original));
  EXPECT_EQ(parsed.num_nodes(), original.num_nodes());
  EXPECT_EQ(parsed.num_links(), original.num_links());
  EXPECT_EQ(parsed.num_gpus(), original.num_gpus());
  for (std::size_t i = 0; i < original.num_nodes(); ++i) {
    const Node& a = original.nodes()[i];
    const Node& b = parsed.nodes()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.server, b.server);
    EXPECT_EQ(a.name, b.name);
  }
  for (std::size_t i = 0; i < original.num_links(); ++i) {
    EXPECT_NEAR(parsed.links()[i].alpha, original.links()[i].alpha, 1e-12);
    EXPECT_NEAR(parsed.links()[i].beta, original.links()[i].beta, 1e-18);
    EXPECT_EQ(parsed.links()[i].kind, original.links()[i].kind);
  }
}

TEST(Serialize, RoundTripPreservesGroups) {
  const Topology original = build_a100_testbed(16);
  const Topology parsed = from_text(to_text(original));
  const auto ga = extract_groups(original);
  const auto gb = extract_groups(parsed);
  ASSERT_EQ(ga.num_dims(), gb.num_dims());
  for (int d = 0; d < ga.num_dims(); ++d) {
    ASSERT_EQ(ga.dims[d].groups.size(), gb.dims[d].groups.size());
    for (std::size_t g = 0; g < ga.dims[d].groups.size(); ++g) {
      EXPECT_EQ(ga.dims[d].groups[g].signature(), gb.dims[d].groups[g].signature());
    }
  }
}

TEST(Serialize, ParsesHandWrittenFile) {
  const std::string text = R"(# two GPUs and a switch
node gpu 0 0 g0
node gpu 0 1 g1
node switch -1 0 sw
duplex g0 sw 1e-6 1e9 nvlink
duplex g1 sw 1e-6 1e9 nvlink
)";
  const Topology t = from_text(text);
  EXPECT_EQ(t.num_gpus(), 2u);
  EXPECT_EQ(t.num_links(), 4u);
  EXPECT_NEAR(t.links()[0].beta, 1e-9, 1e-15);
}

// Randomized round-trip property over the full builder space. alpha is
// emitted with shortest-round-trip formatting, so it re-parses exactly;
// beta goes through a bandwidth reciprocal (at most 1 ulp of wobble), and
// the serialized text is a fixed point: once printed, reparse + reprint is
// byte-identical. The serve library's canonical keys ride on this — a
// topology must hash the same before and after a text round trip.
TEST(SerializeProperty, RandomTopologiesRoundTripExactly) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    util::Rng rng(seed);
    const fuzz::RandomTopology rt = fuzz::random_topology(rng);
    const std::string text = to_text(rt.topo);
    const Topology parsed = from_text(text);

    ASSERT_EQ(parsed.num_nodes(), rt.topo.num_nodes()) << rt.desc;
    ASSERT_EQ(parsed.num_links(), rt.topo.num_links()) << rt.desc;
    ASSERT_EQ(parsed.num_gpus(), rt.topo.num_gpus()) << rt.desc;
    for (std::size_t i = 0; i < rt.topo.num_links(); ++i) {
      const Link& a = rt.topo.links()[i];
      const Link& b = parsed.links()[i];
      EXPECT_EQ(b.alpha, a.alpha) << rt.desc << " link " << i;  // exact
      EXPECT_DOUBLE_EQ(b.beta, a.beta) << rt.desc << " link " << i;
      EXPECT_EQ(b.kind, a.kind);
      EXPECT_EQ(b.src, a.src);
      EXPECT_EQ(b.dst, a.dst);
    }

    // Textual fixed point: serialize(parse(text)) == text.
    EXPECT_EQ(to_text(parsed), text) << rt.desc;

    // Semantic invariance where it matters: the canonical scenario hash.
    EXPECT_EQ(serve::canonicalize(extract_groups(parsed)).hash,
              serve::canonicalize(extract_groups(rt.topo)).hash)
        << rt.desc;
  }
}

TEST(Serialize, RejectsMalformedInput) {
  EXPECT_THROW(from_text("frobnicate a b"), std::invalid_argument);
  EXPECT_THROW(from_text("node gpu 0"), std::invalid_argument);
  EXPECT_THROW(from_text("node widget 0 0 x"), std::invalid_argument);
  EXPECT_THROW(from_text("node gpu 0 0 a\nlink a missing 0 1e9 x"), std::invalid_argument);
  EXPECT_THROW(from_text("node gpu 0 0 a\nnode gpu 0 1 a"), std::invalid_argument);
  EXPECT_THROW(from_text("node gpu 0 0 a\nnode gpu 0 1 b\nlink a b 0 0 x"),
               std::invalid_argument);
}

}  // namespace
}  // namespace syccl::topo
