// Tests for the plain-text topology serialisation.
#include <gtest/gtest.h>

#include "topo/builders.h"
#include "topo/groups.h"
#include "topo/serialize.h"

namespace syccl::topo {
namespace {

TEST(Serialize, RoundTripPreservesStructure) {
  const Topology original = topo::build_h800_cluster(2);
  const Topology parsed = from_text(to_text(original));
  EXPECT_EQ(parsed.num_nodes(), original.num_nodes());
  EXPECT_EQ(parsed.num_links(), original.num_links());
  EXPECT_EQ(parsed.num_gpus(), original.num_gpus());
  for (std::size_t i = 0; i < original.num_nodes(); ++i) {
    const Node& a = original.nodes()[i];
    const Node& b = parsed.nodes()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.server, b.server);
    EXPECT_EQ(a.name, b.name);
  }
  for (std::size_t i = 0; i < original.num_links(); ++i) {
    EXPECT_NEAR(parsed.links()[i].alpha, original.links()[i].alpha, 1e-12);
    EXPECT_NEAR(parsed.links()[i].beta, original.links()[i].beta, 1e-18);
    EXPECT_EQ(parsed.links()[i].kind, original.links()[i].kind);
  }
}

TEST(Serialize, RoundTripPreservesGroups) {
  const Topology original = build_a100_testbed(16);
  const Topology parsed = from_text(to_text(original));
  const auto ga = extract_groups(original);
  const auto gb = extract_groups(parsed);
  ASSERT_EQ(ga.num_dims(), gb.num_dims());
  for (int d = 0; d < ga.num_dims(); ++d) {
    ASSERT_EQ(ga.dims[d].groups.size(), gb.dims[d].groups.size());
    for (std::size_t g = 0; g < ga.dims[d].groups.size(); ++g) {
      EXPECT_EQ(ga.dims[d].groups[g].signature(), gb.dims[d].groups[g].signature());
    }
  }
}

TEST(Serialize, ParsesHandWrittenFile) {
  const std::string text = R"(# two GPUs and a switch
node gpu 0 0 g0
node gpu 0 1 g1
node switch -1 0 sw
duplex g0 sw 1e-6 1e9 nvlink
duplex g1 sw 1e-6 1e9 nvlink
)";
  const Topology t = from_text(text);
  EXPECT_EQ(t.num_gpus(), 2u);
  EXPECT_EQ(t.num_links(), 4u);
  EXPECT_NEAR(t.links()[0].beta, 1e-9, 1e-15);
}

TEST(Serialize, RejectsMalformedInput) {
  EXPECT_THROW(from_text("frobnicate a b"), std::invalid_argument);
  EXPECT_THROW(from_text("node gpu 0"), std::invalid_argument);
  EXPECT_THROW(from_text("node widget 0 0 x"), std::invalid_argument);
  EXPECT_THROW(from_text("node gpu 0 0 a\nlink a missing 0 1e9 x"), std::invalid_argument);
  EXPECT_THROW(from_text("node gpu 0 0 a\nnode gpu 0 1 a"), std::invalid_argument);
  EXPECT_THROW(from_text("node gpu 0 0 a\nnode gpu 0 1 b\nlink a b 0 0 x"),
               std::invalid_argument);
}

}  // namespace
}  // namespace syccl::topo
