// Tests for the NCCL / hand-crafted / TECCL baselines: every generated
// schedule must satisfy its collective on the simulator, and the qualitative
// orderings from the paper's background sections must hold.
#include <gtest/gtest.h>

#include "baselines/crafted.h"
#include "baselines/nccl.h"
#include "baselines/teccl.h"
#include "coll/busbw.h"
#include "runtime/validate.h"
#include "sim/simulator.h"
#include "topo/builders.h"

namespace syccl::baselines {
namespace {

struct H800Fixture {
  topo::Topology topo = topo::build_h800_cluster(2);
  topo::TopologyGroups groups = topo::extract_groups(topo);
  sim::Simulator sim{groups};
};

TEST(NcclRing, SatisfiesAllGather) {
  H800Fixture f;
  const auto ag = coll::make_allgather(16, 16 << 20);
  const auto s = nccl_ring_allgather(ag, f.groups);
  EXPECT_GT(f.sim.time_collective(s, ag), 0.0);
  const auto rep = runtime::validate_schedule(s, ag, f.groups);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors.front());
  EXPECT_TRUE(rep.warnings.empty());  // a ring never delivers twice
}

TEST(NcclRing, ChannelCountDefaultsToNicCount) {
  H800Fixture f;
  const auto ag = coll::make_allgather(16, 16 << 20);
  const auto s = nccl_ring_allgather(ag, f.groups);
  // 8 NICs per server → 8 channels → 8 pieces per chunk.
  EXPECT_EQ(s.pieces.size(), 16u * 8u);
}

TEST(NcclRing, MoreChannelsHelpLargeSizes) {
  H800Fixture f;
  const auto ag = coll::make_allgather(16, 1 << 30);
  NcclOptions one, eight;
  one.channels = 1;
  eight.channels = 8;
  const double t1 = f.sim.time_collective(nccl_ring_allgather(ag, f.groups, one), ag);
  const double t8 = f.sim.time_collective(nccl_ring_allgather(ag, f.groups, eight), ag);
  EXPECT_LT(t8, t1);
}

TEST(NcclRing, ReduceScatterValidates) {
  H800Fixture f;
  const auto rs = coll::make_reduce_scatter(16, 16 << 20);
  const auto s = nccl_ring_reduce_scatter(rs, f.groups);
  EXPECT_GT(f.sim.time_collective(s, rs), 0.0);
  EXPECT_TRUE(runtime::validate_schedule(s, rs, f.groups).ok);
}

TEST(NcclTree, BroadcastValidates) {
  H800Fixture f;
  const auto bc = coll::make_broadcast(16, 1 << 20, 3);
  const auto s = nccl_tree_broadcast(bc, f.groups);
  EXPECT_TRUE(runtime::validate_schedule(s, bc, f.groups).ok);
  // Double binary tree: 2 × (n−1) sends.
  EXPECT_EQ(s.ops.size(), 2u * 15u);
}

TEST(NcclAllToAll, PxnAvoidsCrossRailHops) {
  H800Fixture f;
  const auto a2a = coll::make_alltoall(16, 16 << 20);
  NcclOptions pxn, direct;
  direct.pxn = false;
  const auto s_pxn = nccl_alltoall(a2a, f.groups, pxn);
  const auto s_dir = nccl_alltoall(a2a, f.groups, direct);
  EXPECT_TRUE(runtime::validate_schedule(s_pxn, a2a, f.groups).ok);
  EXPECT_TRUE(runtime::validate_schedule(s_dir, a2a, f.groups).ok);
  // PXN never uses the spine dimension.
  for (const auto& op : s_pxn.ops) EXPECT_LT(op.dim, 2);
  // And is at least as fast on a rail topology.
  EXPECT_LE(f.sim.time_collective(s_pxn, a2a), f.sim.time_collective(s_dir, a2a) * 1.05);
}

TEST(NcclAllReduce, PhasesAndTiming) {
  H800Fixture f;
  const auto ar = coll::make_allreduce(16, 16 << 20);
  const auto s = nccl_ring_allreduce(ar, f.groups);
  int max_phase = 0;
  for (const auto& op : s.ops) max_phase = std::max(max_phase, op.phase);
  EXPECT_GE(max_phase, 1);
  EXPECT_GT(f.sim.run(s).makespan, 0.0);
}

TEST(NcclDispatch, CoversKinds) {
  H800Fixture f;
  EXPECT_NO_THROW(nccl_schedule(coll::make_allgather(16, 1 << 20), f.groups));
  EXPECT_NO_THROW(nccl_schedule(coll::make_alltoall(16, 1 << 20), f.groups));
  EXPECT_THROW(nccl_schedule(coll::make_gather(16, 1 << 20), f.groups), std::invalid_argument);
}

TEST(Crafted, SuiteValidates) {
  H800Fixture f;
  const auto ag = coll::make_allgather(16, 64 << 20);
  const auto suite = crafted_allgather_suite(ag, f.groups, true);
  ASSERT_EQ(suite.size(), 4u);  // ring, direct, hierarchical, improved
  for (const auto& s : suite) {
    EXPECT_TRUE(runtime::validate_schedule(s, ag, f.groups).ok) << s.name;
    EXPECT_GT(f.sim.time_collective(s, ag), 0.0) << s.name;
  }
}

TEST(Crafted, HierarchicalBeatsDirectAtLargeSizes) {
  H800Fixture f;
  const auto ag = coll::make_allgather(16, 1 << 30);
  const double t_dir = f.sim.time_collective(crafted_direct_allgather(ag, f.groups), ag);
  const double t_hier =
      f.sim.time_collective(crafted_hierarchical_allgather(ag, f.groups), ag);
  EXPECT_LT(t_hier, t_dir);
}

TEST(Crafted, DirectWinsAtTinySizes) {
  // Latency regime: one hop beats hierarchical staging.
  H800Fixture f;
  const auto ag = coll::make_allgather(16, 16 * 1024);
  const double t_dir = f.sim.time_collective(crafted_direct_allgather(ag, f.groups), ag);
  const auto ring = nccl_ring_allgather(ag, f.groups);
  const double t_ring = f.sim.time_collective(ring, ag);
  EXPECT_LT(t_dir, t_ring);  // |V|−1 ring hops dominate at small sizes (§2.1)
}

TEST(Crafted, ImprovedRequiresRails) {
  const auto clos = topo::build_a100_testbed(16);
  const auto groups = topo::extract_groups(clos);
  const auto ag = coll::make_allgather(16, 1 << 20);
  EXPECT_THROW(crafted_improved_hierarchical_allgather(ag, groups), std::invalid_argument);
  EXPECT_EQ(crafted_allgather_suite(ag, groups, true).size(), 3u);
}

TEST(Crafted, ImprovedRequiresRailsOnClos) {
  // Regression (fuzz corpus seed 380): on a 4-server Clos, dimension 1 is
  // the leaf tier — each group spans only the servers under one leaf, not
  // one GPU per server. The improved hierarchical schedule used to pass the
  // suite's gate here and emit src=-1 ops (stage 2 finds no rail holder on
  // servers under the other leaf).
  topo::ClosSpec spec;
  spec.num_servers = 4;
  spec.gpus_per_server = 4;
  spec.nics_per_server = 1;
  const auto groups = topo::extract_groups(topo::build_clos(spec));
  const auto ag = coll::make_allgather(16, 1 << 20);
  EXPECT_THROW(crafted_improved_hierarchical_allgather(ag, groups), std::invalid_argument);
  const auto suite = crafted_allgather_suite(ag, groups, true);
  EXPECT_EQ(suite.size(), 3u);
  for (const auto& s : suite) {
    EXPECT_TRUE(runtime::validate_schedule(s, ag, groups).ok) << s.name;
  }
}

TEST(Teccl, SynthesizesValidAllGather) {
  H800Fixture f;
  const auto ag = coll::make_allgather(16, 4 << 20);
  TecclOptions opts;
  opts.time_budget_s = 2.0;
  const TecclResult r = teccl_synthesize(ag, f.groups, opts);
  ASSERT_FALSE(r.timed_out);
  EXPECT_GT(r.restarts, 0);
  EXPECT_GT(r.predicted_time, 0.0);
  EXPECT_TRUE(runtime::validate_schedule(r.schedule, ag, f.groups).ok);
}

TEST(Teccl, ReduceScatterIsReversedAllGather) {
  H800Fixture f;
  const auto rs = coll::make_reduce_scatter(16, 4 << 20);
  TecclOptions opts;
  opts.time_budget_s = 2.0;
  const TecclResult r = teccl_synthesize(rs, f.groups, opts);
  ASSERT_FALSE(r.timed_out);
  EXPECT_TRUE(runtime::validate_schedule(r.schedule, rs, f.groups).ok);
}

TEST(Teccl, RespectsTimeBudget) {
  H800Fixture f;
  const auto ag = coll::make_allgather(16, 4 << 20);
  TecclOptions opts;
  opts.time_budget_s = 0.5;
  const TecclResult r = teccl_synthesize(ag, f.groups, opts);
  EXPECT_LT(r.synth_seconds, 3.0);  // budget plus one pass of slack
}

TEST(Teccl, TimesOutOnHugeProblemWithTinyBudget) {
  const auto big = topo::build_h800_cluster(16);  // 128 GPUs
  const auto groups = topo::extract_groups(big);
  const auto ag = coll::make_allgather(128, 1 << 30);
  TecclOptions opts;
  opts.time_budget_s = 0.05;
  const TecclResult r = teccl_synthesize(ag, groups, opts);
  EXPECT_TRUE(r.timed_out);
}

TEST(Teccl, RejectsUnsupportedKind) {
  H800Fixture f;
  EXPECT_THROW(teccl_synthesize(coll::make_gather(16, 1 << 20), f.groups),
               std::invalid_argument);
}

}  // namespace
}  // namespace syccl::baselines
