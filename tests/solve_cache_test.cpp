// Tests for the process-wide sub-demand solve cache and the parallel
// candidate-evaluation path: cached synthesis must be byte-identical to
// uncached synthesis, repeated synthesis must hit the cache, the LRU byte
// bound must hold, and parallel evaluation must pick the same candidate as a
// single-threaded run.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/synthesizer.h"
#include "runtime/xml.h"
#include "solver/solve_cache.h"
#include "topo/builders.h"

namespace syccl {
namespace {

core::SynthesisConfig test_config(bool use_cache, int num_threads = 0) {
  core::SynthesisConfig cfg;
  cfg.sketch.search.max_sketches = 32;
  cfg.sketch.max_prototypes = 4;
  cfg.sketch.combine.max_outputs = 10;
  // Generous wall-clock limits keep the (deterministic) node limit binding,
  // so repeated solves of the same class yield identical schedules.
  cfg.coarse_solver.time_limit_s = 5.0;
  cfg.fine_solver.time_limit_s = 5.0;
  cfg.use_solve_cache = use_cache;
  cfg.num_threads = num_threads;
  return cfg;
}

std::string xml_of(const core::SynthesisResult& r, int num_ranks) {
  return runtime::to_xml(r.schedule, num_ranks);
}

solver::SubDemand make_broadcast_demand(const topo::GroupTopology& gt, double piece_bytes) {
  solver::SubDemand demand;
  demand.group = &gt;
  demand.piece_bytes = piece_bytes;
  solver::DemandPiece p;
  p.id = 0;
  p.srcs = {0};
  for (int d = 1; d < gt.size(); ++d) p.dsts.push_back(d);
  demand.pieces.push_back(std::move(p));
  return demand;
}

TEST(SolveCache, OptionsFingerprintSeparatesKnobs) {
  solver::MilpSchedulerOptions a;
  solver::MilpSchedulerOptions b = a;
  EXPECT_EQ(solver::SubScheduleCache::options_fingerprint(a),
            solver::SubScheduleCache::options_fingerprint(b));
  b.E = a.E * 2;
  EXPECT_NE(solver::SubScheduleCache::options_fingerprint(a),
            solver::SubScheduleCache::options_fingerprint(b));
  b = a;
  b.greedy_only = !a.greedy_only;
  EXPECT_NE(solver::SubScheduleCache::options_fingerprint(a),
            solver::SubScheduleCache::options_fingerprint(b));
}

TEST(SolveCache, HitReturnsIdenticalScheduleWithoutSolving) {
  const auto topo = topo::build_single_server(8);
  const auto groups = topo::extract_groups(topo);
  solver::SubScheduleCache cache;
  const auto demand = make_broadcast_demand(groups.dims[0].groups[0], 1 << 20);
  solver::MilpSchedulerOptions opts;

  solver::SolveStats s1, s2;
  const auto first = cache.get_or_solve(demand, opts, &s1);
  const auto second = cache.get_or_solve(demand, opts, &s2);
  EXPECT_FALSE(s1.cache_hit);
  EXPECT_TRUE(s2.cache_hit);
  EXPECT_EQ(first.num_epochs, second.num_epochs);
  ASSERT_EQ(first.ops.size(), second.ops.size());
  for (std::size_t i = 0; i < first.ops.size(); ++i) {
    EXPECT_EQ(first.ops[i].piece, second.ops[i].piece);
    EXPECT_EQ(first.ops[i].src, second.ops[i].src);
    EXPECT_EQ(first.ops[i].dst, second.ops[i].dst);
    EXPECT_EQ(first.ops[i].start_epoch, second.ops[i].start_epoch);
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_GT(st.bytes, 0u);

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(SolveCache, LruBoundEvicts) {
  const auto topo = topo::build_single_server(8);
  const auto groups = topo::extract_groups(topo);
  // A budget far below what ~200 distinct entries need forces eviction.
  solver::SubScheduleCache cache(4096);
  solver::MilpSchedulerOptions opts;
  opts.greedy_only = true;
  for (int k = 0; k < 200; ++k) {
    const auto demand =
        make_broadcast_demand(groups.dims[0].groups[0], (1 << 16) + k * 997.0);
    cache.get_or_solve(demand, opts);
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 200u);
  EXPECT_GT(st.evictions, 0u);
  EXPECT_LE(st.bytes, cache.max_bytes());
}

TEST(SolveCache, ConcurrentMissesSolveOnce) {
  const auto topo = topo::build_single_server(8);
  const auto groups = topo::extract_groups(topo);
  solver::SubScheduleCache cache;
  const auto demand = make_broadcast_demand(groups.dims[0].groups[0], 1 << 20);
  solver::MilpSchedulerOptions opts;

  std::atomic<int> solved{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      solver::SolveStats stats;
      cache.get_or_solve(demand, opts, &stats);
      if (!stats.cache_hit) solved.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  // In-flight dedup: exactly one thread solves, everyone else hits (possibly
  // blocking on the in-flight future).
  EXPECT_EQ(solved.load(), 1);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 7u);
}

TEST(SolveCache, SweepByteIdenticalWithAndWithoutCache) {
  const auto topo = topo::build_h800_cluster(2);
  solver::SubScheduleCache::instance().clear();
  core::Synthesizer cached(topo, test_config(true));
  core::Synthesizer uncached(topo, test_config(false));
  for (const std::uint64_t bytes : {1ull << 20, 4ull << 20, 16ull << 20}) {
    const auto coll = coll::make_allgather(16, bytes);
    const auto rc = cached.synthesize(coll);
    const auto ru = uncached.synthesize(coll);
    EXPECT_EQ(rc.chosen, ru.chosen) << "bytes=" << bytes;
    EXPECT_EQ(rc.predicted_time, ru.predicted_time) << "bytes=" << bytes;
    EXPECT_EQ(xml_of(rc, 16), xml_of(ru, 16)) << "bytes=" << bytes;
    EXPECT_EQ(ru.breakdown.cache_hits + ru.breakdown.cache_misses, 0);
  }
}

TEST(SolveCache, SecondIdenticalSynthesisHitsCache) {
  const auto topo = topo::build_h800_cluster(2);
  solver::SubScheduleCache::instance().clear();
  core::Synthesizer synth(topo, test_config(true));
  const auto coll = coll::make_allgather(16, 4 << 20);

  const auto first = synth.synthesize(coll);
  const auto second = synth.synthesize(coll);
  EXPECT_GE(second.breakdown.cache_hits, 1);
  // Every class the second run needed was already solved by the first.
  EXPECT_LT(second.breakdown.num_solver_calls, first.breakdown.num_solver_calls);
  EXPECT_EQ(second.breakdown.num_solver_calls, 0);
  EXPECT_GT(second.breakdown.cache_bytes, 0u);
  // And the reused solves produce the exact same schedule.
  EXPECT_EQ(first.chosen, second.chosen);
  EXPECT_EQ(first.predicted_time, second.predicted_time);
  EXPECT_EQ(xml_of(first, 16), xml_of(second, 16));
}

TEST(SolveCache, AllReducePhasesShareSolves) {
  // RS is synthesized through the reversed AG twin, so the two concurrent
  // phases request identical classes — the second requester must reuse the
  // first's solves (ready or in-flight) rather than duplicate them.
  const auto topo = topo::build_h800_cluster(2);
  solver::SubScheduleCache::instance().clear();
  core::Synthesizer synth(topo, test_config(true));
  const auto r = synth.synthesize(coll::make_allreduce(16, 4 << 20));
  EXPECT_GE(r.breakdown.cache_hits, 1);
  EXPECT_GT(r.predicted_time, 0.0);
}

TEST(SolveCache, ParallelEvaluationMatchesSingleThread) {
  // The chosen candidate and its predicted time must not depend on the
  // number of worker threads (deterministic selection).
  const auto topo = topo::build_h800_cluster(2);
  const auto coll = coll::make_allreduce(16, 4 << 20);

  solver::SubScheduleCache::instance().clear();
  core::Synthesizer serial(topo, test_config(true, 1));
  const auto rs = serial.synthesize(coll);

  solver::SubScheduleCache::instance().clear();
  core::Synthesizer parallel(topo, test_config(true, 4));
  const auto rp = parallel.synthesize(coll);

  EXPECT_EQ(rs.chosen, rp.chosen);
  EXPECT_EQ(rs.predicted_time, rp.predicted_time);
  EXPECT_EQ(xml_of(rs, 16), xml_of(rp, 16));
}

}  // namespace
}  // namespace syccl
