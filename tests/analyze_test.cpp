// Tests for schedule analysis and the Appendix-B topology builders.
#include <gtest/gtest.h>

#include "baselines/nccl.h"
#include "core/asymmetric.h"
#include "sim/analyze.h"
#include "topo/builders.h"
#include "topo/groups.h"

namespace syccl {
namespace {

TEST(Builders, Fig19SevenServerMultiRail) {
  const auto topo = topo::build_fig19_topology();
  EXPECT_EQ(topo.num_gpus(), 28u);
  const auto g = topo::extract_groups(topo);
  ASSERT_EQ(g.num_dims(), 3);
  EXPECT_EQ(g.dims[0].groups.size(), 7u);  // servers
  EXPECT_EQ(g.dims[1].groups.size(), 4u);  // rails
  // Paper Fig. 19: dim-1 group 0 is {0, 4, 8, …, 24}.
  EXPECT_EQ(g.dims[1].groups[0].ranks,
            (std::vector<int>{0, 4, 8, 12, 16, 20, 24}));
}

TEST(Builders, Fig20ClosWithCore) {
  const auto topo = topo::build_fig20_topology();
  EXPECT_EQ(topo.num_gpus(), 32u);
  const auto g = topo::extract_groups(topo);
  // Paper Fig. 20: four dimensions — servers, leaves, spines, core.
  ASSERT_EQ(g.num_dims(), 4);
  EXPECT_EQ(g.dims[0].groups.size(), 8u);
  EXPECT_EQ(g.dims[1].groups.size(), 4u);
  EXPECT_EQ(g.dims[2].groups.size(), 2u);
  EXPECT_EQ(g.dims[3].groups.size(), 1u);
  EXPECT_EQ(g.dims[1].groups[0].size(), 8);
  EXPECT_EQ(g.dims[2].groups[0].size(), 16);
}

TEST(Builders, FlatSwitchIsOneDimension) {
  const auto topo = topo::build_flat_switch(72);
  const auto g = topo::extract_groups(topo);
  ASSERT_EQ(g.num_dims(), 1);
  EXPECT_EQ(g.dims[0].groups[0].size(), 72);
}

TEST(Analyze, RingStatsMatchKnownStructure) {
  const auto topo = topo::build_h800_cluster(2);
  const auto groups = topo::extract_groups(topo);
  const auto ag = coll::make_allgather(16, 16 << 20);
  const auto ring = baselines::nccl_ring_allgather(ag, groups);
  const auto stats = sim::analyze_schedule(ring, groups);
  EXPECT_EQ(stats.num_ops, ring.ops.size());
  EXPECT_EQ(stats.num_pieces, ring.pieces.size());
  // A ring moves every piece across every position: 15 hops deep.
  EXPECT_EQ(stats.max_relay_depth, 15);
  EXPECT_GT(stats.makespan, 0.0);
  EXPECT_GT(stats.bottleneck_utilisation, 0.5);  // rings pipeline well
  EXPECT_LE(stats.bottleneck_utilisation, 1.0);
  // Traffic conservation: per-dim traffic sums to the total.
  double sum = 0;
  for (double t : stats.traffic_per_dim) sum += t;
  EXPECT_NEAR(sum, stats.total_traffic, 1.0);
}

TEST(Analyze, FormatIsHumanReadable) {
  const auto topo = topo::build_single_server(4);
  const auto groups = topo::extract_groups(topo);
  sim::Schedule s;
  s.add_piece(sim::Piece{0, 1000.0, 0, false, {}});
  s.add_op(0, 0, 1);
  const auto stats = sim::analyze_schedule(s, groups);
  const std::string text = sim::format_stats(stats);
  EXPECT_NE(text.find("1 ops"), std::string::npos);
  EXPECT_NE(text.find("makespan"), std::string::npos);
}

TEST(AllGatherV, UniformAndSkewedServed) {
  const auto topo = topo::build_h800_cluster(2);
  const auto groups = topo::extract_groups(topo);
  std::vector<std::uint64_t> uniform(16, 1 << 20);
  const auto s1 = core::synthesize_allgatherv(uniform, groups);
  EXPECT_TRUE(core::verify_allgatherv(s1, uniform));

  std::vector<std::uint64_t> skewed(16, 0);
  skewed[3] = 32 << 20;
  skewed[12] = 1 << 10;
  const auto s2 = core::synthesize_allgatherv(skewed, groups);
  EXPECT_TRUE(core::verify_allgatherv(s2, skewed));
  EXPECT_EQ(s2.pieces.size(), 2u);
  // Longest-first: the 32 MB contribution is issued before the 1 KB one.
  EXPECT_EQ(s2.ops.front().piece, 0);
  EXPECT_EQ(s2.pieces[s2.ops.front().piece].origin, 3);
}

TEST(AllGatherV, RejectsWrongRankCount) {
  const auto topo = topo::build_h800_cluster(2);
  const auto groups = topo::extract_groups(topo);
  std::vector<std::uint64_t> wrong(8, 1);
  EXPECT_THROW(core::synthesize_allgatherv(wrong, groups), std::invalid_argument);
}

TEST(AllGatherV, VerifierCatchesMissingFanOut) {
  const auto topo = topo::build_h800_cluster(2);
  const auto groups = topo::extract_groups(topo);
  std::vector<std::uint64_t> bytes(16, 0);
  bytes[0] = 4096;
  auto s = core::synthesize_allgatherv(bytes, groups);
  s.ops.pop_back();  // drop one delivery
  EXPECT_FALSE(core::verify_allgatherv(s, bytes));
}

}  // namespace
}  // namespace syccl
