// Multi-tenant contention (sim/contention.h): merged schedules share link
// timelines, slowdowns are measured against solo runs, and candidate ranking
// under background traffic prefers schedules that avoid the hot ports.
#include <gtest/gtest.h>

#include <cmath>
#include <initializer_list>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/contention.h"
#include "sim/schedule.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "topo/groups.h"

namespace syccl::sim {
namespace {

constexpr double kBytes = 64.0 * (1 << 20);

/// One-piece-per-op schedule: each (src, dst) pair moves its own piece.
Schedule transfers(std::initializer_list<std::pair<int, int>> pairs) {
  Schedule s;
  for (const auto& [src, dst] : pairs) {
    Piece p;
    p.bytes = kBytes;
    p.origin = src;
    const int piece = s.add_piece(p);
    s.add_op(piece, src, dst, 0);
  }
  return s;
}

class ContentionTest : public ::testing::Test {
 protected:
  ContentionTest() : topo_(topo::build_flat_switch(4)), groups_(topo::extract_groups(topo_)) {}
  topo::Topology topo_;
  topo::TopologyGroups groups_;
};

TEST_F(ContentionTest, MergePreservesTenantOrderAndRebasesPieces) {
  const Schedule a = transfers({{0, 1}, {0, 2}});
  const Schedule b = transfers({{3, 2}});
  const std::vector<Tenant> tenants = {{&a, "a"}, {&b, "b"}};
  const MergedTenants merged = merge_tenants(tenants);

  ASSERT_EQ(merged.schedule.ops.size(), 3u);
  ASSERT_EQ(merged.schedule.pieces.size(), 3u);
  // Round-robin: a0, b0, a1.
  EXPECT_EQ(merged.op_tenant, (std::vector<int>{0, 1, 0}));
  // Tenant b's piece is re-based past tenant a's two pieces.
  EXPECT_EQ(merged.schedule.ops[1].piece, 2);
  EXPECT_EQ(merged.schedule.pieces[2].origin, 3);
  // Within-tenant op order is preserved.
  EXPECT_EQ(merged.schedule.ops[0].dst, 1);
  EXPECT_EQ(merged.schedule.ops[2].dst, 2);
}

TEST_F(ContentionTest, MergeRejectsNullSchedule) {
  const std::vector<Tenant> tenants = {{nullptr, "ghost"}};
  EXPECT_THROW(merge_tenants(tenants), std::invalid_argument);
}

TEST_F(ContentionTest, SingleTenantMatchesSoloRun) {
  const Schedule a = transfers({{0, 1}, {1, 2}});
  const Simulator sim(groups_);
  const std::vector<Tenant> tenants = {{&a, "only"}};
  const ContentionResult r = simulate_concurrent(sim, tenants);
  ASSERT_EQ(r.tenants.size(), 1u);
  EXPECT_DOUBLE_EQ(r.tenants[0].contended, r.tenants[0].solo);
  EXPECT_DOUBLE_EQ(r.tenants[0].slowdown, 1.0);
  EXPECT_DOUBLE_EQ(r.makespan, r.tenants[0].contended);
}

TEST_F(ContentionTest, SharedPortSerializesTenants) {
  // Both tenants send from rank 0: the up-port is shared, so the shared run
  // must be slower than either solo run and at least one tenant slows down.
  const Schedule a = transfers({{0, 1}});
  const Schedule b = transfers({{0, 2}});
  const Simulator sim(groups_);
  const std::vector<Tenant> tenants = {{&a, "a"}, {&b, "b"}};
  const ContentionResult r = simulate_concurrent(sim, tenants);
  ASSERT_EQ(r.tenants.size(), 2u);
  EXPECT_GE(r.tenants[0].contended, r.tenants[0].solo);
  EXPECT_GE(r.tenants[1].contended, r.tenants[1].solo);
  EXPECT_GT(r.makespan, r.tenants[0].solo);
  EXPECT_GT(r.tenants[0].slowdown * r.tenants[1].slowdown, 1.0);
}

TEST_F(ContentionTest, DisjointPortsRunConcurrently) {
  const Schedule a = transfers({{0, 1}});
  const Schedule b = transfers({{2, 3}});
  const Simulator sim(groups_);
  const std::vector<Tenant> tenants = {{&a, "a"}, {&b, "b"}};
  const ContentionResult r = simulate_concurrent(sim, tenants);
  EXPECT_DOUBLE_EQ(r.tenants[0].slowdown, 1.0);
  EXPECT_DOUBLE_EQ(r.tenants[1].slowdown, 1.0);
}

TEST_F(ContentionTest, RankingPrefersCandidateAvoidingHotLinks) {
  // Background hammers rank 0's up-port. Candidate A needs that port twice;
  // candidate B uses disjoint ports. Solo they tie; under contention B wins.
  const Schedule background = transfers({{0, 1}, {0, 1}, {0, 1}, {0, 1}});
  const Schedule cand_a = transfers({{0, 2}, {0, 2}});
  const Schedule cand_b = transfers({{3, 2}, {3, 2}});
  const Simulator sim(groups_);

  EXPECT_DOUBLE_EQ(sim.run(cand_a).makespan, sim.run(cand_b).makespan);

  const std::vector<const Schedule*> candidates = {&cand_a, &cand_b};
  const std::vector<Tenant> bg = {{&background, "bg"}};
  const std::vector<double> finish = rank_under_contention(sim, candidates, bg);
  ASSERT_EQ(finish.size(), 2u);
  EXPECT_LT(finish[1], finish[0]);
}

TEST_F(ContentionTest, RankingReportsInfinityForBrokenCandidate) {
  Schedule broken = transfers({{0, 1}});
  broken.ops[0].src = 2;  // piece 0 never present at rank 2 — simulator throws
  const Schedule fine = transfers({{0, 1}});
  const Simulator sim(groups_);
  const std::vector<const Schedule*> candidates = {&broken, &fine};
  const std::vector<double> finish = rank_under_contention(sim, candidates, {});
  EXPECT_TRUE(std::isinf(finish[0]));
  EXPECT_LT(finish[1], finish[0]);
}

}  // namespace
}  // namespace syccl::sim
