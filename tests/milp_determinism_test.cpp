// Determinism tests for the MILP branch and bound.
//
// Scheduling must be reproducible run to run: the same MilpProblem solved
// twice yields a byte-identical incumbent, and the performance toggles
// (warm start, pseudocost branching, presolve) change speed, not answers —
// on problems with a unique optimum every configuration lands on the same
// bit pattern.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "milp/branch_and_bound.h"

namespace syccl::milp {
namespace {

using lp::Constraint;
using lp::Relation;

// Knapsack with distinct costs and weights chosen so the optimum is unique:
// maximize Σ c_i x_i, Σ w_i x_i ≤ 11, binary. Unique best is {b, d} = 31.
MilpProblem unique_knapsack() {
  MilpProblem m;
  m.lp.add_var(0, 1, -10);  // a, w 5
  m.lp.add_var(0, 1, -14);  // b, w 6
  m.lp.add_var(0, 1, -7);   // c, w 4
  m.lp.add_var(0, 1, -17);  // d, w 5
  m.lp.add_constraint(
      {{{0, 5.0}, {1, 6.0}, {2, 4.0}, {3, 5.0}}, Relation::LessEq, 11.0});
  m.is_integer.assign(4, true);
  return m;
}

void expect_bytes_equal(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
}

TEST(MilpDeterminism, RepeatedSolvesAreByteIdentical) {
  const MilpProblem m = unique_knapsack();
  const MilpSolution first = solve(m);
  const MilpSolution second = solve(m);
  ASSERT_EQ(first.status, MilpStatus::Optimal);
  ASSERT_EQ(second.status, MilpStatus::Optimal);
  expect_bytes_equal(first.x, second.x);
  EXPECT_EQ(first.objective, second.objective);
  EXPECT_EQ(first.nodes_explored, second.nodes_explored);
}

TEST(MilpDeterminism, TogglesChangeSpeedNotAnswers) {
  const MilpProblem m = unique_knapsack();
  const MilpSolution reference = solve(m);
  ASSERT_EQ(reference.status, MilpStatus::Optimal);
  EXPECT_NEAR(reference.objective, -31.0, 1e-9);

  for (const bool warm : {true, false}) {
    for (const bool pseudo : {true, false}) {
      for (const bool presolve : {true, false}) {
        MilpOptions opts;
        opts.use_warm_start = warm;
        opts.use_pseudocost = pseudo;
        opts.use_presolve = presolve;
        const MilpSolution s = solve(m, opts);
        ASSERT_EQ(s.status, MilpStatus::Optimal)
            << "warm=" << warm << " pseudo=" << pseudo << " presolve=" << presolve;
        expect_bytes_equal(reference.x, s.x);
      }
    }
  }
}

TEST(MilpDeterminism, IncumbentSeededSolveIsByteIdentical) {
  const MilpProblem m = unique_knapsack();
  std::vector<double> weak = {1.0, 0.0, 1.0, 0.0};  // obj -17, feasible (w 9)
  const MilpSolution a = solve(m, {}, weak);
  const MilpSolution b = solve(m, {}, weak);
  ASSERT_EQ(a.status, MilpStatus::Optimal);
  EXPECT_NEAR(a.objective, -31.0, 1e-9);
  expect_bytes_equal(a.x, b.x);
}

}  // namespace
}  // namespace syccl::milp
