// Determinism tests for the MILP branch and bound.
//
// Scheduling must be reproducible run to run: the same MilpProblem solved
// twice yields a byte-identical incumbent, and the performance toggles
// (warm start, pseudocost branching, presolve) change speed, not answers —
// on problems with a unique optimum every configuration lands on the same
// bit pattern.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "milp/branch_and_bound.h"
#include "solver/milp_scheduler.h"
#include "topo/builders.h"
#include "topo/groups.h"

namespace syccl::milp {
namespace {

using lp::Constraint;
using lp::Relation;

// Knapsack with distinct costs and weights chosen so the optimum is unique:
// maximize Σ c_i x_i, Σ w_i x_i ≤ 11, binary. Unique best is {b, d} = 31.
MilpProblem unique_knapsack() {
  MilpProblem m;
  m.lp.add_var(0, 1, -10);  // a, w 5
  m.lp.add_var(0, 1, -14);  // b, w 6
  m.lp.add_var(0, 1, -7);   // c, w 4
  m.lp.add_var(0, 1, -17);  // d, w 5
  m.lp.add_constraint(
      {{{0, 5.0}, {1, 6.0}, {2, 4.0}, {3, 5.0}}, Relation::LessEq, 11.0});
  m.is_integer.assign(4, true);
  return m;
}

void expect_bytes_equal(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
}

TEST(MilpDeterminism, RepeatedSolvesAreByteIdentical) {
  const MilpProblem m = unique_knapsack();
  const MilpSolution first = solve(m);
  const MilpSolution second = solve(m);
  ASSERT_EQ(first.status, MilpStatus::Optimal);
  ASSERT_EQ(second.status, MilpStatus::Optimal);
  expect_bytes_equal(first.x, second.x);
  EXPECT_EQ(first.objective, second.objective);
  EXPECT_EQ(first.nodes_explored, second.nodes_explored);
}

TEST(MilpDeterminism, TogglesChangeSpeedNotAnswers) {
  const MilpProblem m = unique_knapsack();
  const MilpSolution reference = solve(m);
  ASSERT_EQ(reference.status, MilpStatus::Optimal);
  EXPECT_NEAR(reference.objective, -31.0, 1e-9);

  for (const bool warm : {true, false}) {
    for (const bool pseudo : {true, false}) {
      for (const bool presolve : {true, false}) {
        MilpOptions opts;
        opts.use_warm_start = warm;
        opts.use_pseudocost = pseudo;
        opts.use_presolve = presolve;
        const MilpSolution s = solve(m, opts);
        ASSERT_EQ(s.status, MilpStatus::Optimal)
            << "warm=" << warm << " pseudo=" << pseudo << " presolve=" << presolve;
        expect_bytes_equal(reference.x, s.x);
      }
    }
  }
}

TEST(MilpDeterminism, IncumbentSeededSolveIsByteIdentical) {
  const MilpProblem m = unique_knapsack();
  std::vector<double> weak = {1.0, 0.0, 1.0, 0.0};  // obj -17, feasible (w 9)
  const MilpSolution a = solve(m, {}, weak);
  const MilpSolution b = solve(m, {}, weak);
  ASSERT_EQ(a.status, MilpStatus::Optimal);
  EXPECT_NEAR(a.objective, -31.0, 1e-9);
  expect_bytes_equal(a.x, b.x);
}

// Flow dual bounds must change how fast the sub-demand solver proves its
// answer, never which schedule it returns: winning schedules are
// byte-identical with flow bounds on and off across a randomized corpus.
TEST(MilpDeterminism, FlowBoundsChangeSpeedNotSchedules) {
  std::mt19937 rng(42);
  for (int seed = 0; seed < 40; ++seed) {
    const int n = 3 + static_cast<int>(rng() % 4);  // 3..6 members
    const topo::Topology topo = topo::build_single_server(n);
    const topo::TopologyGroups groups = topo::extract_groups(topo);
    const topo::GroupTopology& g = groups.dims[0].groups[0];

    solver::SubDemand d;
    d.group = &g;
    d.piece_bytes = 1 << 20;
    const int np = 1 + static_cast<int>(rng() % 3);
    for (int p = 0; p < np; ++p) {
      solver::DemandPiece piece;
      piece.id = p;
      const int src = static_cast<int>(rng() % n);
      piece.srcs = {src};
      if (rng() % 4 == 0) piece.srcs.push_back((src + 1) % n);  // merged piece
      for (int m = 0; m < n; ++m) {
        bool is_src = false;
        for (int s : piece.srcs) is_src = is_src || s == m;
        if (!is_src && rng() % 2 == 0) piece.dsts.push_back(m);
      }
      if (piece.dsts.empty()) {
        for (int m = 0; m < n; ++m) {
          bool is_src = false;
          for (int s : piece.srcs) is_src = is_src || s == m;
          if (!is_src) {
            piece.dsts.push_back(m);
            break;
          }
        }
      }
      if (piece.dsts.empty()) continue;
      d.pieces.push_back(std::move(piece));
    }
    if (d.pieces.empty()) continue;

    solver::MilpSchedulerOptions on;
    on.max_binaries = 2000;
    solver::MilpSchedulerOptions off = on;
    off.use_flow_bounds = false;

    solver::SolveStats stats_on, stats_off;
    const solver::SubSchedule a = solver::solve_sub_demand(d, on, &stats_on);
    const solver::SubSchedule b = solver::solve_sub_demand(d, off, &stats_off);

    ASSERT_EQ(a.num_epochs, b.num_epochs) << "seed " << seed;
    ASSERT_EQ(a.ops.size(), b.ops.size()) << "seed " << seed;
    EXPECT_EQ(std::memcmp(a.ops.data(), b.ops.data(), a.ops.size() * sizeof(solver::SubOp)), 0)
        << "seed " << seed;
    EXPECT_EQ(stats_off.flow_prunes, 0) << "seed " << seed;
    EXPECT_EQ(stats_off.flow_lp_iterations, 0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace syccl::milp
