// Tests for the shared strict CLI numeric parsers (util/cli.h); their
// contract is pinned tool-side by the WILL_FAIL junk-flag ctest cases.
#include <gtest/gtest.h>

#include "util/cli.h"

namespace syccl::util::cli {
namespace {

TEST(Cli, ParseU64AcceptsDecimalAndHexWholeStringOnly) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("12345"), 12345u);
  EXPECT_EQ(parse_u64("0x10"), 16u);
  EXPECT_EQ(parse_u64("18446744073709551615"), ~0ull);

  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("12abc"));
  EXPECT_FALSE(parse_u64("abc"));
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64("+1"));
  EXPECT_FALSE(parse_u64(" 1"));
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // 2^64: overflow
}

TEST(Cli, ParseBytesHandlesSuffixesAndOverflow) {
  EXPECT_EQ(parse_bytes("4096"), 4096u);
  EXPECT_EQ(parse_bytes("4K"), 4096u);
  EXPECT_EQ(parse_bytes("4k"), 4096u);
  EXPECT_EQ(parse_bytes("64M"), 64u << 20);
  EXPECT_EQ(parse_bytes("2G"), 2ull << 30);
  EXPECT_EQ(parse_bytes("0x100K"), 256u << 10);

  EXPECT_FALSE(parse_bytes(""));
  EXPECT_FALSE(parse_bytes("pizza"));
  EXPECT_FALSE(parse_bytes("4T"));       // unknown suffix
  EXPECT_FALSE(parse_bytes("1KB"));      // trailing garbage after suffix
  EXPECT_FALSE(parse_bytes("-1G"));
  // The shift itself would overflow: 2^54 G > 2^64.
  EXPECT_FALSE(parse_bytes("18014398509481984G"));
  EXPECT_TRUE(parse_bytes("17179869183G"));  // just under 2^64
}

TEST(Cli, ParseIntEnforcesBounds) {
  EXPECT_EQ(parse_int("5", 0, 10), 5);
  EXPECT_EQ(parse_int("0", 0, 10), 0);
  EXPECT_EQ(parse_int("10", 0, 10), 10);
  EXPECT_EQ(parse_int("-3", -5, 5), -3);

  EXPECT_FALSE(parse_int("11", 0, 10));
  EXPECT_FALSE(parse_int("-1", 0, 10));
  EXPECT_FALSE(parse_int("5x", 0, 10));
  EXPECT_FALSE(parse_int("", 0, 10));
  EXPECT_FALSE(parse_int("99999999999999999999", 0, 10));
}

}  // namespace
}  // namespace syccl::util::cli
