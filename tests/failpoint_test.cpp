// Tests for the process-wide failpoint registry (util/failpoint.h): spec
// parsing, mode semantics, hit accounting, and the cheap disarmed path.
//
// The registry is process-global state; every test clears it on entry and
// exit (RAII guard) so order never matters. ctest runs each test in its own
// process anyway — the guards matter for running the whole binary at once.
#include <gtest/gtest.h>

#include <chrono>

#include "util/failpoint.h"

namespace syccl::util {
namespace {

struct RegistryGuard {
  RegistryGuard() { Failpoints::instance().clear(); }
  ~RegistryGuard() { Failpoints::instance().clear(); }
};

TEST(FailpointRegistry, DisarmedSiteReturnsNulloptAndCountsNothing) {
  RegistryGuard guard;
  EXPECT_FALSE(Failpoints::instance().any_enabled());
  EXPECT_EQ(failpoint("test.never_armed"), std::nullopt);
  EXPECT_EQ(Failpoints::instance().hits("test.never_armed"), 0u);
}

TEST(FailpointRegistry, ErrorModeThrowsFailpointErrorAtTheSite) {
  RegistryGuard guard;
  Failpoints::instance().enable("test.err", "error");
  EXPECT_TRUE(Failpoints::instance().any_enabled());
  EXPECT_THROW(failpoint("test.err"), FailpointError);
  EXPECT_EQ(Failpoints::instance().hits("test.err"), 1u);
  // Persistent: fires on every evaluation until disarmed.
  EXPECT_THROW(failpoint("test.err"), FailpointError);
  Failpoints::instance().disable("test.err");
  EXPECT_EQ(failpoint("test.err"), std::nullopt);
  EXPECT_EQ(Failpoints::instance().hits("test.err"), 2u);
}

TEST(FailpointRegistry, TornWriteReturnsByteBudgetToTheSite) {
  RegistryGuard guard;
  Failpoints::instance().enable("test.torn", "torn:16");
  const auto action = failpoint("test.torn");
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(action->mode, FailpointMode::TornWrite);
  EXPECT_EQ(action->bytes, 16u);
}

TEST(FailpointRegistry, EintrBudgetDecaysToDisarmed) {
  RegistryGuard guard;
  Failpoints::instance().enable("test.eintr", "eintr:3");
  for (int i = 0; i < 3; ++i) {
    const auto action = failpoint("test.eintr");
    ASSERT_TRUE(action.has_value()) << "storm attempt " << i;
    EXPECT_EQ(action->mode, FailpointMode::Eintr);
  }
  // Budget exhausted: the site proceeds normally.
  EXPECT_EQ(failpoint("test.eintr"), std::nullopt);
  EXPECT_EQ(Failpoints::instance().hits("test.eintr"), 3u);
}

TEST(FailpointRegistry, DelayModeSleepsInline) {
  RegistryGuard guard;
  Failpoints::instance().enable("test.delay", "delay:30");
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(failpoint("test.delay"), std::nullopt);  // applied centrally
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(30));
}

TEST(FailpointRegistry, BudgetedCrashReturnsActionForTheSite) {
  RegistryGuard guard;
  // crash:<N> must NOT exit here — only the write site, after persisting N
  // bytes, is allowed to pull the trigger.
  Failpoints::instance().enable("test.crash", "crash:8");
  const auto action = failpoint("test.crash");
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(action->mode, FailpointMode::Crash);
  EXPECT_EQ(action->bytes, 8u);
}

TEST(FailpointRegistry, EnableListParsesSemicolonSeparatedSpecs) {
  RegistryGuard guard;
  Failpoints::instance().enable_list("test.a=error;test.b=torn:4;test.c=off");
  const auto enabled = Failpoints::instance().enabled();
  EXPECT_EQ(enabled.size(), 2u);
  EXPECT_THROW(failpoint("test.a"), FailpointError);
  const auto b = failpoint("test.b");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->bytes, 4u);
  EXPECT_EQ(failpoint("test.c"), std::nullopt);
}

TEST(FailpointRegistry, OffDisarmsAndClearResetsEverything) {
  RegistryGuard guard;
  Failpoints::instance().enable("test.x", "error");
  Failpoints::instance().enable("test.x", "off");
  EXPECT_EQ(failpoint("test.x"), std::nullopt);

  Failpoints::instance().enable("test.y", "error");
  Failpoints::instance().clear();
  EXPECT_FALSE(Failpoints::instance().any_enabled());
  EXPECT_EQ(failpoint("test.y"), std::nullopt);
}

TEST(FailpointRegistry, MalformedSpecsThrowInvalidArgument) {
  RegistryGuard guard;
  for (const char* bad : {"", "bogus", "torn", "torn:", "torn:x", "torn:-1", "eintr:",
                          "delay:notanumber", "delay:999999999", "crash:abc", "error:5"}) {
    EXPECT_THROW(Failpoints::instance().enable("test.bad", bad), std::invalid_argument) << bad;
  }
  // A failed enable must not leave the point half-armed.
  EXPECT_EQ(failpoint("test.bad"), std::nullopt);
  for (const char* bad_list : {"noequals", "=error"}) {
    Failpoints::instance().clear();
    EXPECT_THROW(Failpoints::instance().enable_list(bad_list), std::invalid_argument)
        << bad_list;
  }
  // Empty segments (trailing/double semicolons) are tolerated, not errors.
  Failpoints::instance().clear();
  EXPECT_NO_THROW(Failpoints::instance().enable_list("test.a=error;;test.b=error;"));
  EXPECT_EQ(Failpoints::instance().enabled().size(), 2u);
}

}  // namespace
}  // namespace syccl::util
