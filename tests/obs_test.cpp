// Tests for the observability subsystem: span tracer (including concurrent
// recording — the Trace*/Metrics*/ChromeTrace* suites run under tsan via
// `ctest -C tsan`), metrics registry bucket/accumulation semantics, the JSON
// document model, the Chrome-trace builder schema, and the end-to-end traced
// scenario whose artifacts the syccl_trace CLI ships.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "milp/branch_and_bound.h"
#include "obs/chrome_trace.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/scenario.h"
#include "obs/trace.h"

namespace syccl::obs {
namespace {

/// Every trace test starts from an empty recorder and leaves tracing off.
struct TraceFixture : ::testing::Test {
  void SetUp() override {
    set_tracing(false);
    trace_clear();
  }
  void TearDown() override {
    set_tracing(false);
    trace_clear();
  }
};

using TraceRecorder = TraceFixture;

std::size_t total_spans(const std::vector<ThreadTrace>& threads) {
  std::size_t n = 0;
  for (const auto& t : threads) n += t.spans.size();
  return n;
}

TEST_F(TraceRecorder, DisabledGuardRecordsNothing) {
  ASSERT_FALSE(tracing_enabled());
  {
    SYCCL_TRACE_SPAN(span, "should_not_appear", "test");
    EXPECT_FALSE(span.active());
    span.annotate("ignored", 1.0);  // must be a no-op, not a crash
  }
  EXPECT_EQ(total_spans(trace_snapshot()), 0u);
}

TEST_F(TraceRecorder, RecordsNestedSpansWithDepthAndArgs) {
  set_tracing(true);
  {
    SYCCL_TRACE_SPAN(outer, "outer", "test");
    outer.annotate("k", 42.0);
    {
      SYCCL_TRACE_SPAN(inner, "inner", "test");
    }
  }
  set_tracing(false);

  const auto threads = trace_snapshot();
  ASSERT_EQ(total_spans(threads), 2u);
  const ThreadTrace* mine = nullptr;
  for (const auto& t : threads) {
    if (!t.spans.empty()) mine = &t;
  }
  ASSERT_NE(mine, nullptr);
  // Completion order: inner closes first.
  const SpanRecord& inner = mine->spans[0];
  const SpanRecord& outer = mine->spans[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_EQ(inner.depth, 1);
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0);
  // Time containment: the outer span covers the inner one.
  EXPECT_LE(outer.begin_us, inner.begin_us);
  EXPECT_GE(outer.end_us, inner.end_us);
  EXPECT_LE(inner.begin_us, inner.end_us);
  ASSERT_EQ(outer.args.size(), 1u);
  EXPECT_STREQ(outer.args[0].first, "k");
  EXPECT_DOUBLE_EQ(outer.args[0].second, 42.0);
}

TEST_F(TraceRecorder, SpanOpenAcrossDisableStillRecords) {
  set_tracing(true);
  {
    SYCCL_TRACE_SPAN(span, "crossing", "test");
    set_tracing(false);  // guard captured the enabled state at construction
  }
  EXPECT_EQ(total_spans(trace_snapshot()), 1u);
}

TEST_F(TraceRecorder, ConcurrentRecordingFromEightThreads) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 250;
  set_tracing(true);

  std::atomic<bool> stop_snapshots{false};
  // A concurrent reader: snapshots must be safe while recorders append.
  std::thread snapshotter([&] {
    while (!stop_snapshots.load()) {
      const auto snap = trace_snapshot();
      for (const auto& t : snap) {
        for (const auto& s : t.spans) ASSERT_LE(s.begin_us, s.end_us);
      }
    }
  });

  std::vector<std::thread> recorders;
  for (int i = 0; i < kThreads; ++i) {
    recorders.emplace_back([i] {
      set_thread_name("recorder-" + std::to_string(i));
      for (int j = 0; j < kSpansPerThread; ++j) {
        SYCCL_TRACE_SPAN(outer, "outer", "test");
        outer.annotate("j", j);
        SYCCL_TRACE_SPAN(inner, "inner", "test");
      }
    });
  }
  for (auto& t : recorders) t.join();
  stop_snapshots.store(true);
  snapshotter.join();
  set_tracing(false);

  // Buffers outlive their threads: all spans must be visible after join.
  const auto threads = trace_snapshot();
  EXPECT_EQ(total_spans(threads), static_cast<std::size_t>(kThreads) * 2 * kSpansPerThread);
  std::set<std::string> names;
  std::set<std::uint64_t> tids;
  for (const auto& t : threads) {
    if (t.spans.empty()) continue;
    EXPECT_TRUE(tids.insert(t.tid).second) << "duplicate tid " << t.tid;
    names.insert(t.name);
    EXPECT_EQ(t.spans.size(), 2u * kSpansPerThread);
  }
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_TRUE(names.count("recorder-" + std::to_string(i)));
  }
}

TEST(Metrics, CounterAndGaugeBasics) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  Counter& c = reg.counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  EXPECT_EQ(&c, &reg.counter("test.counter"));  // stable reference

  Gauge& g = reg.gauge("test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set(-0.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Metrics, HistogramBucketBoundaries) {
  // Bucket i spans [2^(i-64), 2^(i-63)): powers of two open their bucket.
  EXPECT_EQ(Histogram::bucket_index(1.0), 64);
  EXPECT_EQ(Histogram::bucket_index(2.0), 65);
  EXPECT_EQ(Histogram::bucket_index(1.999999), 64);
  EXPECT_EQ(Histogram::bucket_index(0.5), 63);
  EXPECT_EQ(Histogram::bucket_index(0.75), 63);
  EXPECT_EQ(Histogram::bucket_index(std::nextafter(1.0, 0.0)), 63);
  // Clamps: zero, negatives and out-of-range magnitudes stay in range.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-5.0), 0);
  EXPECT_EQ(Histogram::bucket_index(1e-300), 0);
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kNumBuckets - 1);
  // Lower bounds invert the mapping.
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower_bound(64), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower_bound(65), 2.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower_bound(63), 0.5);
  for (const double v : {1e-9, 0.3, 1.0, 7.5, 4096.0}) {
    const int b = Histogram::bucket_index(v);
    EXPECT_LE(Histogram::bucket_lower_bound(b), v);
    EXPECT_GT(Histogram::bucket_lower_bound(b + 1), v);
  }
}

TEST(Metrics, HistogramObserveAccumulates) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  Histogram& h = reg.histogram("test.histogram");
  h.observe(1.5);
  h.observe(1.0);
  h.observe(3.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 5.5);
  EXPECT_EQ(h.bucket_count(64), 2);  // [1, 2)
  EXPECT_EQ(h.bucket_count(65), 1);  // [2, 4)
}

TEST(Metrics, ConcurrentUpdatesAreExact) {
  constexpr int kThreads = 8;
  constexpr int kOps = 10000;
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&reg] {
      // Lookup under contention on purpose: the registry mutex is part of
      // the tsan surface even though hot paths hoist the reference.
      Counter& c = reg.counter("test.concurrent.counter");
      Histogram& h = reg.histogram("test.concurrent.histogram");
      Gauge& g = reg.gauge("test.concurrent.gauge");
      for (int j = 0; j < kOps; ++j) {
        c.add(1);
        h.observe(1.0);
        g.set(static_cast<double>(j));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("test.concurrent.counter").value(), kThreads * kOps);
  Histogram& h = reg.histogram("test.concurrent.histogram");
  EXPECT_EQ(h.count(), kThreads * kOps);
  // The CAS loop makes the sum exact, not approximate: every add is 1.0.
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kOps));
  EXPECT_DOUBLE_EQ(reg.gauge("test.concurrent.gauge").value(),
                   static_cast<double>(kOps - 1));
}

TEST(Metrics, SnapshotAndJsonExport) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.counter("test.export.counter").add(7);
  reg.gauge("test.export.gauge").set(1.25);
  reg.histogram("test.export.histogram").observe(2.0);

  const Json root = Json::parse(reg.to_json());
  EXPECT_DOUBLE_EQ(root.at("counters").at("test.export.counter").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("test.export.gauge").as_number(), 1.25);
  const Json& h = root.at("histograms").at("test.export.histogram");
  EXPECT_DOUBLE_EQ(h.at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(h.at("sum").as_number(), 2.0);
  ASSERT_EQ(h.at("buckets").size(), 1u);
  EXPECT_DOUBLE_EQ(h.at("buckets").at(std::size_t{0}).at("ge").as_number(), 2.0);

  const std::string text = reg.to_text();
  EXPECT_NE(text.find("test.export.counter"), std::string::npos);
  EXPECT_NE(text.find("count=1"), std::string::npos);
}

TEST(ObsJson, RoundTripsDocuments) {
  const std::string doc =
      R"({"a":[1,2.5,-3e-2,true,false,null],"b":{"nested":"va\"lue"},"c":"A\n"})";
  const Json j = Json::parse(doc);
  EXPECT_DOUBLE_EQ(j.at("a").at(std::size_t{0}).as_number(), 1.0);
  EXPECT_DOUBLE_EQ(j.at("a").at(std::size_t{1}).as_number(), 2.5);
  EXPECT_DOUBLE_EQ(j.at("a").at(std::size_t{2}).as_number(), -0.03);
  EXPECT_TRUE(j.at("a").at(std::size_t{3}).as_bool());
  EXPECT_FALSE(j.at("a").at(std::size_t{4}).as_bool());
  EXPECT_TRUE(j.at("a").at(std::size_t{5}).is_null());
  EXPECT_EQ(j.at("b").at("nested").as_string(), "va\"lue");
  EXPECT_EQ(j.at("c").as_string(), "A\n");
  // dump → parse is the identity on the document model.
  const Json again = Json::parse(j.dump());
  EXPECT_EQ(again.dump(), j.dump());
}

TEST(ObsJson, PreservesIntegersAndKeyOrder) {
  Json obj = Json::object();
  obj.set("z", Json(1));
  obj.set("a", Json(std::int64_t{1} << 52));
  EXPECT_EQ(obj.dump(), "{\"z\":1,\"a\":4503599627370496}");
}

TEST(ObsJson, ParseErrorsCarryOffsets) {
  EXPECT_THROW(Json::parse("{"), JsonParseError);
  EXPECT_THROW(Json::parse("[1,]"), JsonParseError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), JsonParseError);
  try {
    Json::parse("[1, x]");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.offset, 4u);
  }
}

TEST(ChromeTrace, EmitsMetadataThenSortedEvents) {
  ChromeTraceBuilder builder;
  builder.set_process_name(1, "proc");
  builder.set_thread_name(1, 7, "track");
  TraceEvent late{"late", "test", 20.0, 1.0, 1, 7, {{"x", 3.0}}};
  TraceEvent early{"early", "test", 10.0, 2.0, 1, 7, {}};
  builder.add_event(late);
  builder.add_event(early);
  ASSERT_EQ(builder.num_events(), 2u);

  const Json root = Json::parse(builder.json());
  const Json& events = root.at("traceEvents");
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.at(std::size_t{0}).at("ph").as_string(), "M");
  EXPECT_EQ(events.at(std::size_t{0}).at("name").as_string(), "process_name");
  EXPECT_EQ(events.at(std::size_t{1}).at("name").as_string(), "thread_name");
  EXPECT_EQ(events.at(std::size_t{1}).at("args").at("name").as_string(), "track");
  // Duration events sorted by ts regardless of insertion order.
  EXPECT_EQ(events.at(std::size_t{2}).at("name").as_string(), "early");
  EXPECT_EQ(events.at(std::size_t{3}).at("name").as_string(), "late");
  EXPECT_DOUBLE_EQ(events.at(std::size_t{3}).at("args").at("x").as_number(), 3.0);
}

TEST(ChromeTrace, FoldsTracerSnapshotIntoTracks) {
  set_tracing(false);
  trace_clear();
  set_tracing(true);
  set_thread_name("main");
  {
    SYCCL_TRACE_SPAN(span, "work", "test");
  }
  set_tracing(false);

  ChromeTraceBuilder builder;
  builder.add_spans(5, trace_snapshot());
  const Json root = Json::parse(builder.json());
  bool saw_thread_name = false;
  bool saw_span = false;
  for (const Json& e : root.at("traceEvents").items()) {
    if (e.at("ph").as_string() == "M" && e.at("name").as_string() == "thread_name" &&
        e.at("args").at("name").as_string() == "main") {
      saw_thread_name = true;
    }
    if (e.at("ph").as_string() == "X" && e.at("name").as_string() == "work") {
      saw_span = true;
      EXPECT_EQ(static_cast<int>(e.at("pid").as_number()), 5);
      EXPECT_DOUBLE_EQ(e.at("args").at("depth").as_number(), 0.0);
    }
  }
  EXPECT_TRUE(saw_thread_name);
  EXPECT_TRUE(saw_span);
  trace_clear();
}

TEST(ObsMilp, SolveFoldsSolutionCountersIntoRegistry) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();

  // The knapsack from milp_test: small, but guaranteed to branch.
  milp::MilpProblem m;
  const int a = m.lp.add_var(0, 1, -10);
  const int b = m.lp.add_var(0, 1, -13);
  const int c = m.lp.add_var(0, 1, -7);
  m.lp.add_constraint({{{a, 3.0}, {b, 4.0}, {c, 2.0}}, lp::Relation::LessEq, 6.0});
  m.is_integer = {true, true, true};
  const milp::MilpSolution s = milp::solve(m);
  ASSERT_EQ(s.status, milp::MilpStatus::Optimal);

  // One reporting path: registry totals must equal the returned stats.
  EXPECT_EQ(reg.counter("milp.solves").value(), 1);
  EXPECT_EQ(reg.counter("milp.nodes_explored").value(), s.nodes_explored);
  EXPECT_EQ(reg.counter("milp.lp_iterations").value(), s.lp_iterations);
  EXPECT_EQ(reg.counter("milp.warm_hits").value(), s.warm_hits);
  EXPECT_EQ(reg.counter("milp.warm_fallbacks").value(), s.warm_fallbacks);
  EXPECT_EQ(reg.counter("milp.presolve_prunes").value(), s.presolve_prunes);
  EXPECT_GT(s.nodes_explored, 0);
}

TEST(ObsScenario, UnknownNamesThrow) {
  EXPECT_THROW(build_scenario_topology("nosuch"), std::invalid_argument);
  EXPECT_THROW(build_scenario_topology("h800x"), std::invalid_argument);
  EXPECT_THROW(build_scenario_collective("nosuch", 8, 1024), std::invalid_argument);
  EXPECT_EQ(build_scenario_topology("dgx16").num_gpus(), 16u);
  EXPECT_EQ(build_scenario_topology("flat4").num_gpus(), 4u);
}

/// The acceptance scenario: a 16-GPU DGX-style AllReduce, traced end to end.
/// trace.json must be schema-valid (monotone ts, every event on a named
/// track, ≥1 span per instrumented layer) and metrics.json must agree with
/// the SynthesisBreakdown the call returned.
TEST(ObsScenario, TracedDgx16AllReduceEmitsConsistentArtifacts) {
  ScenarioSpec spec;
  spec.topo = "dgx16";
  spec.coll = "allreduce";
  spec.bytes = 8ull << 20;
  // Trimmed search so the test stays in seconds; the layers crossed are
  // identical to the full-size run.
  spec.config.sketch.max_prototypes = 3;
  spec.config.sketch.combine.max_outputs = 6;
  spec.config.coarse_solver.time_limit_s = 0.05;
  spec.config.fine_solver.time_limit_s = 0.1;

  const ScenarioResult result = run_traced_scenario(spec);
  EXPECT_FALSE(tracing_enabled());  // the guard restored the disabled state
  EXPECT_GT(result.synthesis.predicted_time, 0.0);
  EXPECT_FALSE(result.sim.link_events.empty());

  // --- trace.json ---
  const Json trace = Json::parse(result.trace_json);
  const Json& events = trace.at("traceEvents");
  ASSERT_GT(events.size(), 0u);

  std::set<std::pair<int, std::uint64_t>> named_tracks;
  std::set<int> named_pids;
  std::set<std::string> categories;
  double last_ts = -1.0;
  std::size_t duration_events = 0;
  for (const Json& e : events.items()) {
    const std::string ph = e.at("ph").as_string();
    const int pid = static_cast<int>(e.at("pid").as_number());
    if (ph == "M") {
      if (e.at("name").as_string() == "process_name") named_pids.insert(pid);
      if (e.at("name").as_string() == "thread_name") {
        named_tracks.insert({pid, static_cast<std::uint64_t>(e.at("tid").as_number())});
      }
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++duration_events;
    const double ts = e.at("ts").as_number();
    EXPECT_GE(ts, last_ts) << "trace not sorted by ts";
    last_ts = ts;
    EXPECT_GE(e.at("dur").as_number(), 0.0);
    // Every event must land on a track the metadata names (matched pid/tid).
    const auto track =
        std::make_pair(pid, static_cast<std::uint64_t>(e.at("tid").as_number()));
    EXPECT_TRUE(named_tracks.count(track))
        << "event on unnamed track pid=" << track.first << " tid=" << track.second;
    categories.insert(e.at("cat").as_string());
  }
  EXPECT_GT(duration_events, 0u);
  EXPECT_TRUE(named_pids.count(1));  // synthesis
  EXPECT_TRUE(named_pids.count(2));  // schedule simulation
  // ≥1 span per instrumented layer crossed by this scenario.
  for (const char* layer : {"core", "solver", "sim", "cache", "link"}) {
    EXPECT_TRUE(categories.count(layer)) << "no spans from layer " << layer;
  }

  // --- metrics.json vs the returned breakdown ---
  const Json metrics = Json::parse(result.metrics_json);
  const Json& counters = metrics.at("counters");
  const auto counter = [&](const char* name) {
    return static_cast<std::int64_t>(counters.at(name).as_number());
  };
  const auto& bd = result.synthesis.breakdown;
  EXPECT_EQ(counter("synth.patterns"), 2);  // AllReduce = RS + AG
  EXPECT_EQ(counter("synth.combinations"), bd.num_combinations);
  EXPECT_EQ(counter("synth.subdemands"), bd.num_subdemands);
  EXPECT_EQ(counter("synth.solver_calls"), bd.num_solver_calls);
  // Independent derivations of the same totals must agree: the solver
  // counts its own invocations, the cache its hits and misses.
  EXPECT_EQ(counter("solver.solves"), bd.num_solver_calls);
  EXPECT_EQ(counter("solve_cache.hits"), bd.cache_hits);
  EXPECT_EQ(counter("solve_cache.misses"), bd.cache_misses);
  EXPECT_GT(counter("sim.runs"), 0);
  EXPECT_GT(counter("sim.events"), 0);
  const Json& total_hist = metrics.at("histograms").at("synth.total_seconds");
  EXPECT_DOUBLE_EQ(total_hist.at("count").as_number(), 2.0);
  EXPECT_GT(metrics.at("gauges").at("solve_cache.bytes").as_number(), 0.0);
}

}  // namespace
}  // namespace syccl::obs
