// Tests for the topology graph, builders and dimension/group extraction.
#include <gtest/gtest.h>

#include <set>

#include "topo/builders.h"
#include "topo/groups.h"
#include "topo/isomorphism.h"
#include "topo/topology.h"

namespace syccl::topo {
namespace {

TEST(Topology, AddNodesAndLinks) {
  Topology t;
  const NodeId a = t.add_node(NodeKind::Gpu, 0, 0, "gpu0");
  const NodeId b = t.add_node(NodeKind::Gpu, 0, 1, "gpu1");
  const NodeId sw = t.add_node(NodeKind::Switch, -1, 0, "sw");
  t.add_duplex_link(a, sw, 1e-6, 1e-9, "nvlink");
  t.add_duplex_link(b, sw, 1e-6, 1e-9, "nvlink");
  EXPECT_EQ(t.num_nodes(), 3u);
  EXPECT_EQ(t.num_links(), 4u);
  EXPECT_EQ(t.num_gpus(), 2u);
  EXPECT_EQ(t.gpu_rank(a), 0);
  EXPECT_EQ(t.gpu_rank(b), 1);
  EXPECT_FALSE(t.gpu_rank(sw).has_value());
  EXPECT_NE(t.find_link(a, sw), kInvalidLink);
  EXPECT_EQ(t.find_link(a, b), kInvalidLink);
}

TEST(Topology, RejectsBadLinks) {
  Topology t;
  const NodeId a = t.add_node(NodeKind::Gpu, 0, 0, "gpu0");
  const NodeId b = t.add_node(NodeKind::Gpu, 0, 1, "gpu1");
  EXPECT_THROW(t.add_link(a, a, 0, 1e-9, "x"), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, b, 0, 0.0, "x"), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, b, -1.0, 1e-9, "x"), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, 99, 0, 1e-9, "x"), std::out_of_range);
}

TEST(Builders, SingleServer) {
  const Topology t = build_single_server(8);
  EXPECT_EQ(t.num_gpus(), 8u);
  const TopologyGroups g = extract_groups(t);
  ASSERT_EQ(g.num_dims(), 1);
  ASSERT_EQ(g.dims[0].groups.size(), 1u);
  EXPECT_EQ(g.dims[0].groups[0].size(), 8);
  EXPECT_DOUBLE_EQ(g.dims[0].bandwidth_share, 1.0);
}

TEST(Builders, A100Testbed16HasTwoDims) {
  const Topology t = build_a100_testbed(16);
  EXPECT_EQ(t.num_gpus(), 16u);
  const TopologyGroups g = extract_groups(t);
  // NVSwitch tier + single ToR tier (no spine with one leaf).
  ASSERT_EQ(g.num_dims(), 2);
  EXPECT_EQ(g.dims[0].groups.size(), 2u);  // two servers
  EXPECT_EQ(g.dims[0].groups[0].size(), 8);
  EXPECT_EQ(g.dims[1].groups.size(), 1u);  // one ToR spanning all
  EXPECT_EQ(g.dims[1].groups[0].size(), 16);
}

TEST(Builders, A100Testbed32HasThreeDims) {
  const Topology t = build_a100_testbed(32);
  const TopologyGroups g = extract_groups(t);
  ASSERT_EQ(g.num_dims(), 3);
  EXPECT_EQ(g.dims[0].groups.size(), 4u);  // servers
  EXPECT_EQ(g.dims[1].groups.size(), 2u);  // ToRs of 2 servers each
  EXPECT_EQ(g.dims[1].groups[0].size(), 16);
  EXPECT_EQ(g.dims[2].groups.size(), 1u);  // spine over everything
  EXPECT_EQ(g.dims[2].groups[0].size(), 32);
}

TEST(Builders, MultiRailMatchesPaperFig3Structure) {
  // Paper Fig. 3: 16 GPUs over 4 servers of 4 GPUs, 4 rails + spine.
  MultiRailSpec spec;
  spec.num_servers = 4;
  spec.gpus_per_server = 4;
  const Topology t = build_multi_rail(spec);
  const TopologyGroups g = extract_groups(t);
  ASSERT_EQ(g.num_dims(), 3);
  EXPECT_EQ(g.dims[0].groups.size(), 4u);  // servers
  EXPECT_EQ(g.dims[1].groups.size(), 4u);  // rails
  EXPECT_EQ(g.dims[2].groups.size(), 1u);  // spine
  // Dim 1 group 0 must be {0, 4, 8, 12} (same intra-server index).
  EXPECT_EQ(g.dims[1].groups[0].ranks, (std::vector<int>{0, 4, 8, 12}));
  // Every GPU is in exactly one group per dimension.
  for (int d = 0; d < g.num_dims(); ++d) {
    for (int r = 0; r < 16; ++r) EXPECT_GE(g.group_of[d][r], 0);
  }
}

TEST(Builders, H800ClusterShape) {
  const Topology t = build_h800_cluster(8);  // scaled: 8 servers x 8 GPUs
  EXPECT_EQ(t.num_gpus(), 64u);
  const TopologyGroups g = extract_groups(t);
  ASSERT_EQ(g.num_dims(), 3);
  EXPECT_EQ(g.dims[0].groups.size(), 8u);
  EXPECT_EQ(g.dims[1].groups.size(), 8u);
  EXPECT_EQ(g.dims[1].groups[0].size(), 8);
}

TEST(Groups, BestCommonDim) {
  const Topology t = build_h800_cluster(2);
  const TopologyGroups g = extract_groups(t);
  // Same server -> dim 0; same rail -> dim 1; otherwise the spine dim.
  EXPECT_EQ(g.best_common_dim(0, 1), 0);
  EXPECT_EQ(g.best_common_dim(0, 8), 1);   // rank 8 = server 1 gpu 0, same rail
  EXPECT_EQ(g.best_common_dim(0, 9), 2);   // cross rail, cross server
}

TEST(Groups, NvlinkPortParameters) {
  const Topology t = build_single_server(4, params::nvlink_a100());
  const TopologyGroups g = extract_groups(t);
  const GroupTopology& gt = g.dims[0].groups[0];
  // GPU->GPU through the NVSwitch: α = 2 × α/2; β = nvlink β.
  EXPECT_NEAR(gt.pair_alpha(0, 1), params::nvlink_a100().alpha_s, 1e-12);
  EXPECT_NEAR(gt.pair_beta(0, 1), params::nvlink_a100().beta(), 1e-15);
  // Up ports are per-GPU (no sharing).
  std::set<int> ports;
  for (const auto& p : gt.up) ports.insert(p.port_id);
  EXPECT_EQ(ports.size(), 4u);
}

TEST(Groups, A100NicSharingShowsInPorts) {
  // 8 GPUs share 4 NICs: pairs of GPUs share one up-port in the network dim.
  const Topology t = build_a100_testbed(16);
  const TopologyGroups g = extract_groups(t);
  const GroupTopology& net = g.dims[1].groups[0];
  std::set<int> ports;
  for (const auto& p : net.up) ports.insert(p.port_id);
  EXPECT_EQ(net.size(), 16);
  EXPECT_EQ(ports.size(), 8u);  // 4 NICs per server × 2 servers
}

TEST(Isomorphism, ServerGroupsAreIsomorphic) {
  const Topology t = build_h800_cluster(4);
  const TopologyGroups g = extract_groups(t);
  const auto& servers = g.dims[0].groups;
  ASSERT_GE(servers.size(), 2u);
  EXPECT_TRUE(isomorphic(servers[0], servers[1]));
  const auto cls = isomorphism_classes(servers);
  for (int c : cls) EXPECT_EQ(c, 0);
  EXPECT_NO_THROW(positional_mapping(servers[0], servers[1]));
}

TEST(Isomorphism, DifferentSizesNotIsomorphic) {
  const Topology a = build_single_server(4);
  const Topology b = build_single_server(8);
  const auto ga = extract_groups(a).dims[0].groups[0];
  const auto gb = extract_groups(b).dims[0].groups[0];
  EXPECT_FALSE(isomorphic(ga, gb));
  EXPECT_THROW(positional_mapping(ga, gb), std::invalid_argument);
}

TEST(Groups, BandwidthSharesSumToOne) {
  for (int servers : {2, 4}) {
    const Topology t = build_h800_cluster(servers);
    const TopologyGroups g = extract_groups(t);
    double sum = 0;
    for (const auto& d : g.dims) sum += d.bandwidth_share;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // NVLink carries more aggregate bandwidth than the rails.
    EXPECT_GT(g.dims[0].bandwidth_share, g.dims[1].bandwidth_share);
  }
}

}  // namespace
}  // namespace syccl::topo
