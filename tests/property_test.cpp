// Property-based sweeps over the end-to-end pipeline: for a grid of
// (topology, collective, size) configurations, every synthesized schedule
// must satisfy the structural validator, the data-plane executor, and basic
// timing sanity (monotonicity in size, lower bounds from link physics).
#include <gtest/gtest.h>

#include <tuple>

#include "coll/busbw.h"
#include "core/synthesizer.h"
#include "runtime/executor.h"
#include "runtime/validate.h"
#include "topo/builders.h"

namespace syccl {
namespace {

enum class Topo { SingleServer8, H800x2, A100x16, Microbench };

topo::Topology make_topo(Topo t) {
  switch (t) {
    case Topo::SingleServer8: return topo::build_single_server(8);
    case Topo::H800x2: return topo::build_h800_cluster(2);
    case Topo::A100x16: return topo::build_a100_testbed(16);
    case Topo::Microbench: return topo::build_microbench_cluster();
  }
  throw std::logic_error("unknown topo");
}

int ranks_of(Topo t) {
  switch (t) {
    case Topo::SingleServer8: return 8;
    case Topo::H800x2: return 16;
    case Topo::A100x16: return 16;
    case Topo::Microbench: return 24;
  }
  return 0;
}

coll::Collective make_coll(coll::CollKind kind, int n, std::uint64_t size) {
  switch (kind) {
    case coll::CollKind::AllGather: return coll::make_allgather(n, size);
    case coll::CollKind::ReduceScatter: return coll::make_reduce_scatter(n, size);
    case coll::CollKind::AllToAll: return coll::make_alltoall(n, size);
    case coll::CollKind::Broadcast: return coll::make_broadcast(n, size, n / 2);
    default: throw std::logic_error("unsupported in sweep");
  }
}

core::SynthesisConfig sweep_config() {
  core::SynthesisConfig cfg;
  cfg.sketch.max_prototypes = 3;
  cfg.sketch.combine.max_outputs = 6;
  cfg.coarse_solver.time_limit_s = 0.05;
  cfg.fine_solver.time_limit_s = 0.1;
  return cfg;
}

using Param = std::tuple<Topo, coll::CollKind, std::uint64_t>;

class SynthesisSweep : public ::testing::TestWithParam<Param> {};

TEST_P(SynthesisSweep, ScheduleIsValidAndMovesCorrectData) {
  const auto [topo_kind, coll_kind, size] = GetParam();
  const topo::Topology topo = make_topo(topo_kind);
  const topo::TopologyGroups groups = topo::extract_groups(topo);
  const coll::Collective coll = make_coll(coll_kind, ranks_of(topo_kind), size);

  core::Synthesizer synth(topo, sweep_config());
  const auto result = synth.synthesize(coll);

  // Timing sanity: above the single-hop physical floor.
  EXPECT_GT(result.predicted_time, 0.0);

  // Structural validation.
  const auto report = runtime::validate_schedule(result.schedule, coll, groups);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors.front());

  // Data-plane execution.
  const auto exec = runtime::execute_and_verify(result.schedule, coll);
  EXPECT_TRUE(exec.ok) << (exec.errors.empty() ? "" : exec.errors.front());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SynthesisSweep,
    ::testing::Combine(::testing::Values(Topo::SingleServer8, Topo::H800x2, Topo::A100x16,
                                         Topo::Microbench),
                       ::testing::Values(coll::CollKind::AllGather,
                                         coll::CollKind::ReduceScatter,
                                         coll::CollKind::AllToAll, coll::CollKind::Broadcast),
                       ::testing::Values(std::uint64_t{64} << 10, std::uint64_t{16} << 20)));

class MonotonicSweep : public ::testing::TestWithParam<Topo> {};

TEST_P(MonotonicSweep, CompletionTimeGrowsWithSize) {
  const topo::Topology topo = make_topo(GetParam());
  core::Synthesizer synth(topo, sweep_config());
  const int n = ranks_of(GetParam());
  double prev = 0.0;
  for (const std::uint64_t size : {std::uint64_t{64} << 10, std::uint64_t{4} << 20,
                                   std::uint64_t{256} << 20}) {
    const double t = synth.synthesize(coll::make_allgather(n, size)).predicted_time;
    EXPECT_GT(t, prev * 0.99);  // allow tiny noise; sizes differ by 64x
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, MonotonicSweep,
                         ::testing::Values(Topo::SingleServer8, Topo::H800x2,
                                           Topo::Microbench));

class BusbwBound : public ::testing::TestWithParam<Topo> {};

TEST_P(BusbwBound, NeverExceedsAggregateIngress) {
  // busbw of an AllGather cannot exceed the per-GPU aggregate ingress
  // bandwidth (NVLink + NIC) — a physical upper bound the simulator must
  // respect for any schedule the synthesizer emits.
  const topo::Topology topo = make_topo(GetParam());
  const topo::TopologyGroups groups = topo::extract_groups(topo);
  core::Synthesizer synth(topo, sweep_config());
  const int n = ranks_of(GetParam());
  const coll::Collective ag = coll::make_allgather(n, 256 << 20);
  const auto r = synth.synthesize(ag);

  double ingress = 0.0;  // bytes/s into one GPU across dimensions
  for (const auto& dim : groups.dims) {
    if (dim.capacity_dim != dim.groups.front().dim) continue;  // shared ports
    ingress += 1.0 / dim.groups.front().down.front().beta;
  }
  EXPECT_LT(coll::busbw(ag, r.predicted_time), ingress * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Topologies, BusbwBound,
                         ::testing::Values(Topo::SingleServer8, Topo::H800x2,
                                           Topo::A100x16));

}  // namespace
}  // namespace syccl
