// Additional sketch-engine tests: rotation automorphisms, the kUnits
// structural fill, workload-state accounting, and seed coverage.
#include <gtest/gtest.h>

#include <set>

#include "sketch/replicate.h"
#include "sketch/search.h"
#include "topo/builders.h"
#include "topo/groups.h"

namespace syccl::sketch {
namespace {

struct MultiRail {
  topo::Topology topo = topo::build_h800_cluster(2);
  topo::TopologyGroups groups = topo::extract_groups(topo);
};

struct Clos32 {
  topo::Topology topo = topo::build_a100_testbed(32);
  topo::TopologyGroups groups = topo::extract_groups(topo);
};

Sketch simple_hier_sketch(const topo::TopologyGroups& groups, int root) {
  // stage 0: fill the root's server; stage 1: one crossing per other server;
  // stage 2: fill the reached servers.
  const auto& servers = groups.dims[0].groups;
  const int home = groups.group_of[0][static_cast<std::size_t>(root)];
  Sketch s;
  s.root = root;
  s.pattern = RootedPattern::Broadcast;
  s.parent.assign(groups.group_of[0].size(), -1);

  Stage st0;
  SubDemandSpec fill0{0, home, {root}, {}};
  for (int g : servers[static_cast<std::size_t>(home)].ranks) {
    if (g != root) {
      fill0.dsts.push_back(g);
      s.parent[static_cast<std::size_t>(g)] = root;
    }
  }
  st0.demands.push_back(fill0);
  s.stages.push_back(st0);

  // Crossing via the rail of `root` (dim 1): root's rail peers.
  const int rail = groups.group_of[1][static_cast<std::size_t>(root)];
  Stage st1;
  SubDemandSpec cross{1, rail, {root}, {}};
  for (int g : groups.dims[1].groups[static_cast<std::size_t>(rail)].ranks) {
    if (g != root) {
      cross.dsts.push_back(g);
      s.parent[static_cast<std::size_t>(g)] = root;
    }
  }
  st1.demands.push_back(cross);
  s.stages.push_back(st1);

  Stage st2;
  for (std::size_t si = 0; si < servers.size(); ++si) {
    if (static_cast<int>(si) == home) continue;
    // Entry GPU: the rail peer in that server.
    int entry = -1;
    for (int g : servers[si].ranks) {
      if (groups.group_of[1][static_cast<std::size_t>(g)] == rail) entry = g;
    }
    SubDemandSpec fill{0, static_cast<int>(si), {entry}, {}};
    for (int g : servers[si].ranks) {
      if (g != entry) {
        fill.dsts.push_back(g);
        s.parent[static_cast<std::size_t>(g)] = entry;
      }
    }
    st2.demands.push_back(fill);
  }
  s.stages.push_back(st2);
  s.validate(groups);
  return s;
}

TEST(Rotate, MultiRailRotationIsExactAutomorphism) {
  MultiRail f;
  const Sketch s = simple_hier_sketch(f.groups, 0);
  for (int root : {1, 7, 8, 15}) {
    const auto r = rotate_sketch(s, f.groups, root);
    ASSERT_TRUE(r.has_value()) << "root " << root;
    EXPECT_EQ(r->root, root);
    EXPECT_NO_THROW(r->validate(f.groups));
    EXPECT_EQ(r->covered_ranks().size(), 16u);
    // Rotation preserves structure exactly.
    EXPECT_EQ(r->canonical_key(f.groups), s.canonical_key(f.groups));
  }
}

TEST(Rotate, IdentityRotationIsIdentity) {
  MultiRail f;
  const Sketch s = simple_hier_sketch(f.groups, 0);
  const auto r = rotate_sketch(s, f.groups, 0);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->stages.size(), s.stages.size());
  for (std::size_t k = 0; k < s.stages.size(); ++k) {
    ASSERT_EQ(r->stages[k].demands.size(), s.stages[k].demands.size());
    for (std::size_t d = 0; d < s.stages[k].demands.size(); ++d) {
      EXPECT_EQ(r->stages[k].demands[d].srcs, s.stages[k].demands[d].srcs);
      EXPECT_EQ(r->stages[k].demands[d].dsts, s.stages[k].demands[d].dsts);
    }
  }
}

TEST(Rotate, ClosRotationKeepsPodStructure) {
  // Rotating across the 32-GPU Clos must keep every sub-demand inside one
  // group of its dimension (hierarchical digit rotation, not plain shifts).
  Clos32 f;
  const auto sketches = search_sketches(f.groups, 0, RootedPattern::Broadcast);
  ASSERT_FALSE(sketches.empty());
  int rotated = 0;
  for (const auto& s : sketches) {
    for (int root : {1, 9, 17, 31}) {
      const auto r = rotate_sketch(s, f.groups, root);
      if (!r.has_value()) continue;
      EXPECT_NO_THROW(r->validate(f.groups));
      ++rotated;
    }
    if (rotated > 8) break;
  }
  EXPECT_GT(rotated, 0);
}

TEST(WorkloadState, TracksPerDimensionReceptions) {
  MultiRail f;
  WorkloadState state(f.groups);
  const Sketch s = simple_hier_sketch(f.groups, 0);
  state.add_sketch(s, f.groups);
  // Stage 0 + stage 2 fills: 7 + 7 NVLink receptions land in dim 0;
  // the crossing lands in dim 1.
  double dim0 = 0, dim1 = 0;
  for (double v : state.ranks[0]) dim0 += v;
  for (double v : state.ranks[1]) dim1 += v;
  EXPECT_DOUBLE_EQ(dim0, 14.0);
  EXPECT_DOUBLE_EQ(dim1, 1.0);
}

TEST(Search, KUnitsSketchesExistOnClos) {
  // The minimal-crossing hierarchical sketch (one NIC crossing into the
  // sibling server, one spine crossing into the other pod) must be in the
  // result set — it is the backbone of the paper's winning schedules.
  Clos32 f;
  const auto sketches = search_sketches(f.groups, 0, RootedPattern::Broadcast);
  bool found_minimal = false;
  for (const auto& s : sketches) {
    const auto w = s.dim_workload(f.groups);
    if (w[1] <= 2.0 && w[2] <= 2.0 && w[1] + w[2] >= 2.0) found_minimal = true;
  }
  EXPECT_TRUE(found_minimal);
}

TEST(Search, SeedsCoverDimensionPermutations) {
  // Both rail-first and server-first two-stage hierarchies must appear.
  MultiRail f;
  const auto sketches = search_sketches(f.groups, 0, RootedPattern::Broadcast);
  bool server_first = false, rail_first = false;
  for (const auto& s : sketches) {
    if (s.stages.empty() || s.stages[0].demands.empty()) continue;
    const int first_dim = s.stages[0].demands[0].dim;
    if (s.num_stages() >= 2) {
      if (first_dim == 0) server_first = true;
      if (first_dim == 1) rail_first = true;
    }
  }
  EXPECT_TRUE(server_first);
  EXPECT_TRUE(rail_first);
}

TEST(Replicate, SteeringSpreadsCrossingsAcrossNics) {
  // After replicating the hierarchical sketch to all 16 roots, every GPU
  // must receive a similar number of rail (dim-1) crossings — no NIC funnel.
  MultiRail f;
  const Sketch proto = simple_hier_sketch(f.groups, 0);
  SketchCombination combo;
  combo.sketches.push_back(WeightedSketch{proto, 1.0});
  const auto all = replicate_for_all_roots(combo, f.groups);
  std::vector<int> rail_recv(16, 0);
  for (const auto& ws : all.sketches) {
    for (const auto& st : ws.sketch.stages) {
      for (const auto& r : st.demands) {
        if (r.dim == 1) {
          for (int d : r.dsts) rail_recv[static_cast<std::size_t>(d)]++;
        }
      }
    }
  }
  const auto [lo, hi] = std::minmax_element(rail_recv.begin(), rail_recv.end());
  EXPECT_LE(*hi - *lo, 1);
}

}  // namespace
}  // namespace syccl::sketch
