// Additional simulator tests: gap-filling link arbitration, issue-order
// tuning, phase barriers under reordering, and fabric-contention modelling.
#include <gtest/gtest.h>

#include "baselines/crafted.h"
#include "coll/collective.h"
#include "sim/schedule.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "topo/groups.h"

namespace syccl::sim {
namespace {

topo::Topology easy_server(int n) {
  return topo::build_single_server(n, topo::LinkParams{1e-6, 1e9});
}

TEST(GapFilling, LateReadyOpDoesNotBlockEarlierReadyOne) {
  // Op A's piece arrives late; op B (issued after A on the same port) is
  // ready at t = 0. A per-packet link arbiter lets B go first.
  const auto t = easy_server(4);
  const auto g = topo::extract_groups(t);
  Simulator sim(g, SimOptions{1e9, 1});

  Schedule s;
  const int pa = s.add_piece(Piece{0, 1000.0, 0, false, {}});
  const int pb = s.add_piece(Piece{1, 1000.0, 1, false, {}});
  s.add_op(pa, 0, 1);  // arrives at 1 at t = 2 µs
  s.add_op(pa, 1, 2);  // 1 must wait until 2 µs to forward
  s.add_op(pb, 1, 3);  // ready at t = 0 on 1's same up-port
  const SimResult r = sim.run(s);
  // pb backfills the gap before pa's relay: finishes at 2 µs, not after it.
  EXPECT_NEAR(r.op_finish[2], 2e-6, 1e-12);
  EXPECT_NEAR(r.op_finish[1], 4e-6, 1e-12);
}

TEST(GapFilling, BusyIntervalsStillSerialise) {
  const auto t = easy_server(3);
  const auto g = topo::extract_groups(t);
  Simulator sim(g, SimOptions{1e9, 1});
  Schedule s;
  const int p = s.add_piece(Piece{0, 1000.0, 0, false, {}});
  s.add_op(p, 0, 1);
  s.add_op(p, 0, 2);
  const SimResult r = sim.run(s);
  // Two ready sends on one port: strictly serialised.
  EXPECT_NEAR(r.op_finish[0], 2e-6, 1e-12);
  EXPECT_NEAR(r.op_finish[1], 3e-6, 1e-12);
}

TEST(TuneIssueOrder, FixesHeadOfLineHeavySchedules) {
  // A schedule whose issue order is reversed-chronological: tuning must not
  // make it slower, and usually improves it.
  const auto t = topo::build_h800_cluster(2);
  const auto g = topo::extract_groups(t);
  const Simulator sim(g);
  const auto ag = coll::make_allgather(16, 64 << 20);
  auto valid = baselines::crafted_hierarchical_allgather(ag, g);
  const double before = sim.time_collective(valid, ag);
  const double after = sim.tune_issue_order(valid, ag, 4);
  EXPECT_LE(after, before + 1e-12);
  EXPECT_NEAR(sim.time_collective(valid, ag), after, 1e-9);  // order persisted
}

TEST(TuneIssueOrder, PreservesPhaseBarriers) {
  const auto t = easy_server(4);
  const auto g = topo::extract_groups(t);
  const Simulator sim(g, SimOptions{1e9, 1});
  const auto ar = coll::make_allreduce(4, 4096);

  // Hand-built RS + AG with a phase barrier.
  Schedule s;
  s.pieces = pieces_for(coll::make_reduce_scatter(4, 4096));
  // Reduce flows into each rank (direct).
  for (int d = 0; d < 4; ++d) {
    for (int src = 0; src < 4; ++src) {
      if (src != d) s.add_op(d, src, d, -1, 0);
    }
  }
  Schedule ag_part;
  ag_part.pieces = pieces_for(coll::make_allgather(4, 4096));
  for (int r = 0; r < 4; ++r) {
    for (int d = 0; d < 4; ++d) {
      if (d != r) ag_part.add_op(r, r, d, -1, 0);
    }
  }
  s.append_sequential(ag_part);

  auto tuned = s;
  (void)sim.tune_issue_order(tuned, ar, 2);
  // Phase 1 ops must still all come after phase 0 ops.
  int last_phase = 0;
  for (const auto& op : tuned.ops) {
    EXPECT_GE(op.phase, last_phase);
    last_phase = op.phase;
  }
}

TEST(FabricContention, SpineSharingSlowsConcurrentCrossRail) {
  // Two concurrent cross-rail transfers from the same leaf squeeze through
  // the shared leaf→spine pipe; the second must see queueing.
  const auto t = topo::build_h800_cluster(2);
  const auto g = topo::extract_groups(t);
  const Simulator sim(g, SimOptions{1e9, 1});

  Schedule one;
  const int p1 = one.add_piece(Piece{0, 8 << 20, 0, false, {}});
  one.add_op(p1, 0, 9, 2);  // cross-rail via spine
  const double t1 = sim.run(one).makespan;

  Schedule two = one;
  const int p2 = two.add_piece(Piece{1, 8 << 20, 8, false, {}});
  two.add_op(p2, 8, 1, 2);  // reverse direction, same leaf pair
  const double t2 = sim.run(two).makespan;
  EXPECT_GE(t2, t1);  // never faster with extra load
}

TEST(Simulator, LargerPiecesNeverFinishEarlier) {
  const auto t = topo::build_h800_cluster(2);
  const auto g = topo::extract_groups(t);
  const Simulator sim(g);
  double prev = 0.0;
  for (const double bytes : {1e4, 1e6, 1e8}) {
    Schedule s;
    const int p = s.add_piece(Piece{0, bytes, 0, false, {}});
    s.add_op(p, 0, 8, 1);
    const double now = sim.run(s).makespan;
    EXPECT_GT(now, prev);
    prev = now;
  }
}

TEST(Simulator, BlockCountDoesNotChangeSingleHopTotal) {
  // Over one logical hop, pipelining granularity must not change the α+βs
  // total (blocks only help across multi-hop relays).
  const auto t = easy_server(2);
  const auto g = topo::extract_groups(t);
  Schedule s;
  const int p = s.add_piece(Piece{0, 1 << 20, 0, false, {}});
  s.add_op(p, 0, 1);
  const double t1 = Simulator(g, SimOptions{1e9, 1}).run(s).makespan;
  const double t16 = Simulator(g, SimOptions{64 << 10, 16}).run(s).makespan;
  EXPECT_NEAR(t1, t16, t1 * 0.02);
}

}  // namespace
}  // namespace syccl::sim
