// Tests for the serve broker (hit/miss/join/reject paths, the pinned
// isomorphic-request acceptance test), the wire protocol, and the unix
// socket transport.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <numeric>
#include <thread>
#include <vector>

#include "obs/scenario.h"
#include "runtime/validate.h"
#include "runtime/xml.h"
#include "serve/broker.h"
#include "serve/protocol.h"
#include "serve/socket.h"
#include "sim/simulator.h"
#include "topo/groups.h"
#include "topo/mutate.h"

namespace syccl::serve {
namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("syccl_broker_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

ServeRequest flat4_request(std::uint64_t bytes = 1 << 20) {
  ServeRequest request;
  request.topology = obs::build_scenario_topology("flat4");
  request.kind = coll::CollKind::AllGather;
  request.total_bytes = bytes;
  return request;
}

// ------------------------------------------------------------------- broker

TEST(ServeBroker, MissThenHitWithByteLevelAgreement) {
  DiskLibrary library({scratch_dir("miss_hit")});
  Broker broker(library);

  const ServeRequest request = flat4_request();
  const ServeResponse cold = broker.handle(request);
  EXPECT_FALSE(cold.hit);
  EXPECT_FALSE(cold.joined);
  EXPECT_GT(cold.predicted_time, 0.0);

  const ServeResponse warm = broker.handle(request);
  EXPECT_TRUE(warm.hit);
  EXPECT_EQ(warm.scenario_key, cold.scenario_key);
  EXPECT_DOUBLE_EQ(warm.predicted_time, cold.predicted_time);
  ASSERT_EQ(warm.schedule.ops.size(), cold.schedule.ops.size());

  const Broker::Stats stats = broker.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.joins, 0u);
}

// The pinned acceptance test: a request whose topology is a rank-permuted
// copy of an already-served one must derive the same canonical key, hit the
// library entry, and the served schedule must validate and simulate to the
// same completion time under the caller's labelling.
TEST(ServeBroker, IsomorphicPermutedRequestHitsSameEntry) {
  DiskLibrary library({scratch_dir("isomorphic")});
  Broker broker(library);

  ServeRequest original;
  original.topology = obs::build_scenario_topology("flat8");
  original.kind = coll::CollKind::AllGather;
  original.total_bytes = 1 << 20;
  const ServeResponse cold = broker.handle(original);
  EXPECT_FALSE(cold.hit);

  const std::vector<int> perm = {5, 2, 7, 0, 3, 6, 1, 4};
  ServeRequest permuted = original;
  permuted.topology = topo::permute_gpu_ranks(original.topology, perm);
  const ServeResponse served = broker.handle(permuted);

  EXPECT_TRUE(served.hit);
  EXPECT_EQ(served.scenario_key, cold.scenario_key);

  // Must be a valid schedule for the *caller's* labelling of the cluster.
  const topo::TopologyGroups groups = topo::extract_groups(permuted.topology);
  const coll::Collective coll = coll::make_allgather(8, permuted.total_bytes);
  const runtime::ValidationReport report =
      runtime::validate_schedule(served.schedule, coll, groups);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors.front());

  // Isomorphic fabrics: the relabelled schedule must price identically.
  const sim::Simulator simulator(groups, broker.config().synthesis.sim);
  const double time = simulator.time_collective(served.schedule, coll);
  EXPECT_NEAR(time, cold.predicted_time, 1e-12 + 1e-9 * cold.predicted_time);

  EXPECT_EQ(broker.stats().hits, 1u);
  EXPECT_EQ(library.stats().entries, 1u);  // one entry serves both labellings
}

// AllToAll is the chunk-remap regression guard: unlike AllGather (every
// chunk demanded everywhere), its chunk ids are rank-pair-specific, so a
// served schedule whose chunk ids were not remapped alongside the ranks
// fails verification and the hit silently degrades to a re-synthesis.
TEST(ServeBroker, IsomorphicAllToAllRequestRemapsChunkIds) {
  DiskLibrary library({scratch_dir("alltoall_chunks")});
  Broker broker(library);

  ServeRequest original = flat4_request();
  original.kind = coll::CollKind::AllToAll;
  const ServeResponse cold = broker.handle(original);
  EXPECT_FALSE(cold.hit);

  const std::vector<int> perm = {2, 0, 3, 1};
  ServeRequest permuted = original;
  permuted.topology = topo::permute_gpu_ranks(original.topology, perm);
  const ServeResponse served = broker.handle(permuted);

  EXPECT_TRUE(served.hit);
  EXPECT_EQ(served.scenario_key, cold.scenario_key);
  EXPECT_EQ(broker.stats().verify_failures, 0u);

  const topo::TopologyGroups groups = topo::extract_groups(permuted.topology);
  const coll::Collective coll = coll::make_alltoall(4, permuted.total_bytes);
  const runtime::ValidationReport report =
      runtime::validate_schedule(served.schedule, coll, groups);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors.front());
}

TEST(ServeBroker, SameBucketRequestRescalesPieceBytes) {
  DiskLibrary library({scratch_dir("rescale")});
  Broker broker(library);

  const ServeResponse cold = broker.handle(flat4_request(1 << 20));
  // 600 KiB shares the 1 MiB bucket: must hit and rescale, not resynthesize.
  const ServeResponse scaled = broker.handle(flat4_request(600 << 10));
  EXPECT_TRUE(scaled.hit);
  EXPECT_EQ(scaled.scenario_key, cold.scenario_key);

  const auto total_bytes = [](const sim::Schedule& s) {
    double sum = 0.0;
    for (const auto& p : s.pieces) sum += p.bytes;
    return sum;
  };
  const double ratio = total_bytes(scaled.schedule) / total_bytes(cold.schedule);
  EXPECT_NEAR(ratio, static_cast<double>(600 << 10) / (1 << 20), 1e-12);
  EXPECT_LT(scaled.predicted_time, cold.predicted_time);
}

TEST(ServeBroker, ConcurrentMissesCoalesceIntoOneSynthesis) {
  DiskLibrary library({scratch_dir("coalesce")});
  BrokerConfig config;
  config.num_threads = 2;
  Broker broker(library, config);

  constexpr int kThreads = 4;
  std::vector<ServeResponse> responses(kThreads);
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back(
          [&broker, &responses, i] { responses[static_cast<std::size_t>(i)] = broker.handle(flat4_request()); });
    }
    for (auto& t : threads) t.join();
  }

  const Broker::Stats stats = broker.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kThreads));
  // Exactly one synthesis ran; everyone else joined it or (if they arrived
  // after it finished) hit the library.
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.joins + stats.hits, static_cast<std::uint64_t>(kThreads - 1));
  for (const auto& response : responses) {
    EXPECT_DOUBLE_EQ(response.predicted_time, responses[0].predicted_time);
    EXPECT_EQ(response.scenario_key, responses[0].scenario_key);
  }
  EXPECT_EQ(library.stats().entries, 1u);
}

TEST(ServeBroker, AdmissionLimitRejectsInsteadOfQueueingUnbounded) {
  DiskLibrary library({scratch_dir("admission")});
  BrokerConfig config;
  config.max_in_flight = 0;
  Broker broker(library, config);
  EXPECT_THROW(broker.handle(flat4_request()), BrokerError);
  EXPECT_EQ(broker.stats().rejects, 1u);
}

TEST(ServeBroker, UnverifiableLibraryEntryFallsBackToSynthesis) {
  DiskLibrary library({scratch_dir("verify_fallback")});
  Broker broker(library);

  // Plant a decodable but bogus entry under the exact key the request will
  // derive: an empty schedule satisfies no demand.
  const ServeRequest request = flat4_request();
  const CanonicalTopology canon = canonicalize(topo::extract_groups(request.topology));
  ScheduleBlob bogus;
  bogus.scenario_key =
      scenario_key(canon, request.kind, -1, size_bucket(request.total_bytes),
                   options_fingerprint(broker.config().synthesis));
  bogus.num_ranks = canon.num_ranks;
  bogus.bucket_bytes = size_bucket(request.total_bytes);
  library.put(bogus);

  const ServeResponse response = broker.handle(request);
  EXPECT_FALSE(response.hit);  // fell back to synthesis, did not crash
  EXPECT_GT(response.schedule.ops.size(), 0u);
  EXPECT_EQ(broker.stats().verify_failures, 1u);
  EXPECT_EQ(broker.stats().misses, 1u);
}

TEST(ServeBroker, SendRecvIsRejected) {
  DiskLibrary library({scratch_dir("sendrecv")});
  Broker broker(library);
  ServeRequest request = flat4_request();
  request.kind = coll::CollKind::SendRecv;
  EXPECT_THROW(broker.handle(request), std::invalid_argument);
}

// ----------------------------------------------------------------- protocol

/// In-memory Stream: reads from a preloaded input, records writes.
class ScriptedStream : public Stream {
 public:
  explicit ScriptedStream(std::string input) : input_(std::move(input)) {}

  bool read_line(std::string& line) override {
    if (pos_ >= input_.size()) return false;
    const std::size_t nl = input_.find('\n', pos_);
    if (nl == std::string::npos) return false;
    line = input_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return true;
  }
  bool read_exact(std::string& out, std::size_t n) override {
    if (input_.size() - pos_ < n) return false;
    out = input_.substr(pos_, n);
    pos_ += n;
    return true;
  }
  bool write_all(std::string_view data) override {
    output.append(data);
    return true;
  }

  std::string output;

 private:
  std::string input_;
  std::size_t pos_ = 0;
};

TEST(ServeProtocol, PingStatsAndUnknownCommands) {
  DiskLibrary library({scratch_dir("protocol_ping")});
  Broker broker(library);
  ScriptedStream stream("PING\nFROBNICATE\nSTATS\nQUIT\n");
  EXPECT_EQ(serve_connection(stream, broker, library), 0);
  EXPECT_EQ(stream.output.substr(0, 5), "PONG\n");
  EXPECT_NE(stream.output.find("ERR "), std::string::npos);
  EXPECT_NE(stream.output.find("\"broker\""), std::string::npos);
  EXPECT_NE(stream.output.find("\"library\""), std::string::npos);
}

TEST(ServeProtocol, MalformedRequestsGetErrFramesAndKeepTheStream) {
  DiskLibrary library({scratch_dir("protocol_err")});
  Broker broker(library);
  const std::string topo = "TOPOLOGY 0\n";
  ScriptedStream stream("REQUEST NoSuchColl 0 1024 binary\n" + topo +
                        "REQUEST AllGather 0 banana binary\n" + topo +
                        "REQUEST AllGather 0 1024 yaml\n" + topo + "PING\nQUIT\n");
  serve_connection(stream, broker, library);
  // Three ERR frames, then the stream is still alive for the PING.
  std::size_t errs = 0, at = 0;
  while ((at = stream.output.find("ERR ", at)) != std::string::npos) {
    ++errs;
    at += 4;
  }
  EXPECT_EQ(errs, 3u);
  EXPECT_NE(stream.output.find("PONG\n"), std::string::npos);
  EXPECT_EQ(broker.stats().requests, 0u);  // nothing reached the broker
}

TEST(ServeProtocol, RequestRoundTripsInBinaryAndXml) {
  DiskLibrary library({scratch_dir("protocol_rt")});
  Broker broker(library);
  const ServeRequest request = flat4_request();

  for (const char* format : {"binary", "xml"}) {
    ScriptedStream server(encode_request(request, format) + "QUIT\n");
    EXPECT_EQ(serve_connection(server, broker, library), 1);

    ScriptedStream client(server.output);
    WireResponse response;
    ASSERT_TRUE(read_response(client, response)) << format;
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.format, format);
    EXPECT_GT(response.predicted_time, 0.0);
    EXPECT_NE(response.scenario_key.find("coll=AllGather"), std::string::npos);

    if (std::string(format) == "binary") {
      const ScheduleBlob blob = decode_blob(response.payload);
      EXPECT_EQ(blob.scenario_key, response.scenario_key);
      EXPECT_GT(blob.schedule.ops.size(), 0u);
    } else {
      const sim::Schedule parsed = runtime::from_xml(response.payload);
      EXPECT_GT(parsed.ops.size(), 0u);
    }
  }
  // First format missed, second hit the same entry.
  EXPECT_EQ(broker.stats().misses, 1u);
  EXPECT_EQ(broker.stats().hits, 1u);
}

TEST(ServeProtocol, TruncatedTopologyPayloadEndsTheConnection) {
  DiskLibrary library({scratch_dir("protocol_trunc")});
  Broker broker(library);
  ScriptedStream stream("REQUEST AllGather 0 1024 binary\nTOPOLOGY 100\nshort");
  EXPECT_EQ(serve_connection(stream, broker, library), 0);
  EXPECT_NE(stream.output.find("ERR "), std::string::npos);
}

// ------------------------------------------------------------------- socket

TEST(ServeSocket, EndToEndOverUnixSocket) {
  DiskLibrary library({scratch_dir("socket_lib")});
  Broker broker(library);
  const std::string sock = fs::path(::testing::TempDir()) / "syccl_serve_test.sock";
  fs::remove(sock);

  UnixServer server(sock);
  std::thread server_thread(
      [&server, &broker, &library] { server.serve(broker, library, 2); });

  const ServeRequest request = flat4_request();
  for (int round = 0; round < 2; ++round) {
    auto stream = connect_unix(sock);
    std::string line;
    ASSERT_TRUE(stream->write_all("PING\n"));
    ASSERT_TRUE(stream->read_line(line));
    EXPECT_EQ(line, "PONG");

    ASSERT_TRUE(stream->write_all(encode_request(request, "binary")));
    WireResponse response;
    ASSERT_TRUE(read_response(*stream, response));
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.hit, round == 1);
    stream->write_all("QUIT\n");
  }

  server_thread.join();  // request budget reached -> serve() returns
  EXPECT_EQ(broker.stats().requests, 2u);
  EXPECT_EQ(broker.stats().hits, 1u);
}

}  // namespace
}  // namespace syccl::serve
