// Tests for the structural schedule validator.
#include <gtest/gtest.h>

#include "coll/collective.h"
#include "runtime/validate.h"
#include "sim/schedule.h"
#include "topo/builders.h"
#include "topo/groups.h"

namespace syccl::runtime {
namespace {

struct Fixture {
  topo::Topology topo = topo::build_single_server(4);
  topo::TopologyGroups groups = topo::extract_groups(topo);
};

TEST(Validate, AcceptsCorrectBroadcast) {
  Fixture f;
  const auto bc = coll::make_broadcast(4, 4096, 0);
  sim::Schedule s;
  s.pieces = sim::pieces_for(bc);
  s.add_op(0, 0, 1);
  s.add_op(0, 1, 2);
  s.add_op(0, 0, 3);
  const auto rep = validate_schedule(s, bc, f.groups);
  EXPECT_TRUE(rep.ok);
  EXPECT_TRUE(rep.warnings.empty());
  EXPECT_DOUBLE_EQ(rep.total_traffic, 3 * 4096.0);
  EXPECT_DOUBLE_EQ(rep.traffic_per_dim[0], 3 * 4096.0);
}

TEST(Validate, FlagsUnmetDemand) {
  Fixture f;
  const auto bc = coll::make_broadcast(4, 4096, 0);
  sim::Schedule s;
  s.pieces = sim::pieces_for(bc);
  s.add_op(0, 0, 1);
  const auto rep = validate_schedule(s, bc, f.groups);
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.errors.size(), 2u);  // ranks 2 and 3 unmet
}

TEST(Validate, FlagsSourceWithoutPiece) {
  Fixture f;
  const auto bc = coll::make_broadcast(4, 4096, 0);
  sim::Schedule s;
  s.pieces = sim::pieces_for(bc);
  s.add_op(0, 1, 2);  // 1 never received it
  const auto rep = validate_schedule(s, bc, f.groups);
  EXPECT_FALSE(rep.ok);
}

TEST(Validate, WarnsOnRedundantDelivery) {
  Fixture f;
  const auto bc = coll::make_broadcast(4, 4096, 0);
  sim::Schedule s;
  s.pieces = sim::pieces_for(bc);
  s.add_op(0, 0, 1);
  s.add_op(0, 0, 2);
  s.add_op(0, 0, 3);
  s.add_op(0, 2, 3);  // 3 already has it
  const auto rep = validate_schedule(s, bc, f.groups);
  EXPECT_TRUE(rep.ok);  // demands met; waste is a warning
  EXPECT_EQ(rep.warnings.size(), 1u);
}

TEST(Validate, ReduceNeedsAllContributors) {
  Fixture f;
  const auto red = coll::make_reduce(4, 4096, 0);
  sim::Schedule s;
  s.pieces = sim::pieces_for(red);
  s.add_op(0, 1, 0);
  s.add_op(0, 2, 0);
  const auto partial = validate_schedule(s, red, f.groups);
  EXPECT_FALSE(partial.ok);  // rank 3 missing
  s.add_op(0, 3, 0);
  EXPECT_TRUE(validate_schedule(s, red, f.groups).ok);
}

TEST(Validate, ReduceViaRelayTree) {
  Fixture f;
  const auto red = coll::make_reduce(4, 4096, 0);
  sim::Schedule s;
  s.pieces = sim::pieces_for(red);
  s.add_op(0, 3, 2);  // 2 holds {2,3}
  s.add_op(0, 2, 1);  // 1 holds {1,2,3}
  s.add_op(0, 1, 0);  // 0 holds all
  EXPECT_TRUE(validate_schedule(s, red, f.groups).ok);
}

TEST(Validate, FlagsBadEndpointsAndPieces) {
  Fixture f;
  const auto bc = coll::make_broadcast(4, 4096, 0);
  sim::Schedule s;
  s.pieces = sim::pieces_for(bc);
  s.ops.push_back(sim::TransferOp{7, 0, 1, -1, 0});   // unknown piece
  s.ops.push_back(sim::TransferOp{0, 0, 9, -1, 0});   // bad rank
  s.ops.push_back(sim::TransferOp{0, 0, 1, 5, 0});    // bad dim
  const auto rep = validate_schedule(s, bc, f.groups);
  EXPECT_FALSE(rep.ok);
  EXPECT_GE(rep.errors.size(), 3u);
}

TEST(Validate, ReduceContributorOutOfRange) {
  Fixture f;
  const auto red = coll::make_reduce(4, 4096, 0);
  sim::Schedule s;
  s.pieces = sim::pieces_for(red);
  s.pieces[0].contributors = {0, 1, 2, 99};  // rank 99 does not exist
  const auto rep = validate_schedule(s, red, f.groups);
  EXPECT_FALSE(rep.ok);
  bool flagged = false;
  for (const auto& e : rep.errors) {
    if (e.find("contributor rank out of range") != std::string::npos) flagged = true;
  }
  EXPECT_TRUE(flagged);
}

TEST(Validate, ReduceIncompleteContributorCoverage) {
  Fixture f;
  const auto red = coll::make_reduce(4, 4096, 0);
  sim::Schedule s;
  s.pieces = sim::pieces_for(red);
  // Rank 0 receives partials from 1 and 2 directly, but rank 3's partial is
  // parked at rank 2 *after* 2 already forwarded — it never reaches rank 0.
  s.add_op(0, 1, 0);
  s.add_op(0, 2, 0);
  s.add_op(0, 3, 2);
  const auto rep = validate_schedule(s, red, f.groups);
  EXPECT_FALSE(rep.ok);
  bool unmet = false;
  for (const auto& e : rep.errors) {
    if (e.find("reduce demand unmet at rank 0") != std::string::npos) unmet = true;
  }
  EXPECT_TRUE(unmet);
}

TEST(Validate, WarnsOnRedundantReduceDelivery) {
  Fixture f;
  const auto red = coll::make_reduce(4, 4096, 0);
  sim::Schedule s;
  s.pieces = sim::pieces_for(red);
  s.add_op(0, 3, 2);  // 2 holds {2,3}
  s.add_op(0, 2, 1);  // 1 holds {1,2,3}
  s.add_op(0, 3, 1);  // {3} adds nothing to {1,2,3}: wasted + double-count risk
  s.add_op(0, 1, 0);  // 0 holds all
  const auto rep = validate_schedule(s, red, f.groups);
  EXPECT_TRUE(rep.ok);  // demands met; waste is a warning
  ASSERT_EQ(rep.warnings.size(), 1u);
  EXPECT_NE(rep.warnings[0].find("no new contributors"), std::string::npos);
}

TEST(Validate, FreshReduceDeliveryDoesNotWarn) {
  Fixture f;
  const auto red = coll::make_reduce(4, 4096, 0);
  sim::Schedule s;
  s.pieces = sim::pieces_for(red);
  s.add_op(0, 3, 2);  // each delivery grows the destination's set
  s.add_op(0, 2, 1);
  s.add_op(0, 1, 0);
  const auto rep = validate_schedule(s, red, f.groups);
  EXPECT_TRUE(rep.ok);
  EXPECT_TRUE(rep.warnings.empty());
}

TEST(Validate, SplitPiecesCoverDemand) {
  Fixture f;
  const auto bc = coll::make_broadcast(2, 4096, 0);
  const auto topo2 = topo::build_single_server(2);
  const auto groups2 = topo::extract_groups(topo2);
  sim::Schedule s;
  const int a = s.add_piece(sim::Piece{0, 2048.0, 0, false, {}});
  const int b = s.add_piece(sim::Piece{0, 2048.0, 0, false, {}});
  s.add_op(a, 0, 1);
  const auto half = validate_schedule(s, bc, groups2);
  EXPECT_FALSE(half.ok);  // only half the chunk arrived
  s.add_op(b, 0, 1);
  EXPECT_TRUE(validate_schedule(s, bc, groups2).ok);
}

}  // namespace
}  // namespace syccl::runtime
