// Incremental re-synthesis (core/resynthesize.h): byte-identity with cold
// synthesis on the mutated topology, solve-cache reuse for unaffected
// groups, the empty-delta fast path, and failure-mode re-synthesis.
#include <gtest/gtest.h>

#include "coll/collective.h"
#include "core/resynthesize.h"
#include "core/synthesizer.h"
#include "solver/solve_cache.h"
#include "topo/builders.h"
#include "topo/mutate.h"

namespace syccl::core {
namespace {

SynthesisConfig fast_config() {
  SynthesisConfig cfg;
  cfg.sketch.search.max_sketches = 16;
  cfg.sketch.max_prototypes = 2;
  cfg.sketch.combine.max_outputs = 4;
  cfg.coarse_solver.greedy_only = true;
  cfg.fine_solver.greedy_only = true;
  cfg.num_threads = 2;
  return cfg;
}

topo::Topology small_fabric() {
  topo::MultiRailSpec spec;
  spec.num_servers = 2;
  spec.gpus_per_server = 2;
  return topo::build_multi_rail(spec);
}

void expect_identical(const sim::Schedule& a, const sim::Schedule& b) {
  ASSERT_EQ(a.pieces.size(), b.pieces.size());
  for (std::size_t i = 0; i < a.pieces.size(); ++i) {
    EXPECT_EQ(a.pieces[i].chunk, b.pieces[i].chunk);
    EXPECT_EQ(a.pieces[i].bytes, b.pieces[i].bytes);
    EXPECT_EQ(a.pieces[i].origin, b.pieces[i].origin);
    EXPECT_EQ(a.pieces[i].reduce, b.pieces[i].reduce);
    EXPECT_EQ(a.pieces[i].contributors, b.pieces[i].contributors);
  }
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].piece, b.ops[i].piece);
    EXPECT_EQ(a.ops[i].src, b.ops[i].src);
    EXPECT_EQ(a.ops[i].dst, b.ops[i].dst);
    EXPECT_EQ(a.ops[i].dim, b.ops[i].dim);
    EXPECT_EQ(a.ops[i].phase, b.ops[i].phase);
  }
}

TEST(Resynthesize, ByteIdenticalToColdSynthesisAfterDegradation) {
  const topo::Topology base = small_fabric();
  const auto coll = coll::make_allgather(4, 1 << 20);
  const SynthesisConfig cfg = fast_config();

  // Previous fleet state: synthesize on the healthy fabric, warming the
  // process-wide solve cache.
  solver::SubScheduleCache::instance().clear();
  Synthesizer prev_synth(base, cfg);
  const SynthesisResult previous = prev_synth.synthesize(coll);

  // One NVLink degrades 8x on server 1; re-synthesize incrementally.
  const topo::MutationResult m =
      topo::degrade_duplex(base, topo::node_by_name(base, "gpu1.0"),
                           topo::node_by_name(base, "nvswitch1"), 1.0, 8.0);
  const ResynthesisReport warm = resynthesize(base, m, coll, cfg, &previous);
  EXPECT_FALSE(warm.reused_previous);
  EXPECT_EQ(warm.affected_groups, 1);
  EXPECT_GE(warm.total_groups, 4);
  // Unaffected groups' classes come from the warm cache; the degraded
  // group's classes are re-solved.
  EXPECT_GT(warm.classes_reused, 0);
  EXPECT_GT(warm.classes_resolved, 0);

  // Cold reference: cleared cache, full synthesis on the mutated topology.
  solver::SubScheduleCache::instance().clear();
  Synthesizer cold_synth(m.topo, cfg);
  const SynthesisResult cold = cold_synth.synthesize(coll);

  EXPECT_EQ(warm.result.predicted_time, cold.predicted_time);
  EXPECT_EQ(warm.result.chosen, cold.chosen);
  expect_identical(warm.result.schedule, cold.schedule);
  // The incremental pass ran strictly fewer solver calls than the cold one.
  EXPECT_LT(warm.result.breakdown.num_solver_calls, cold.breakdown.num_solver_calls);
}

TEST(Resynthesize, EmptyDeltaReturnsPreviousResult) {
  const topo::Topology base = small_fabric();
  const auto coll = coll::make_allgather(4, 1 << 20);
  solver::SubScheduleCache::instance().clear();
  Synthesizer synth(base, fast_config());
  const SynthesisResult previous = synth.synthesize(coll);

  topo::MutationResult noop;
  noop.topo = base;
  const ResynthesisReport r = resynthesize(base, noop, coll, fast_config(), &previous);
  EXPECT_TRUE(r.reused_previous);
  EXPECT_EQ(r.affected_groups, 0);
  EXPECT_GE(r.total_groups, 4);
  expect_identical(r.result.schedule, previous.schedule);
}

TEST(Resynthesize, EmptyDeltaWithoutPreviousStillSynthesizes) {
  const topo::Topology base = small_fabric();
  const auto coll = coll::make_allgather(4, 1 << 20);
  solver::SubScheduleCache::instance().clear();
  topo::MutationResult noop;
  noop.topo = base;
  const ResynthesisReport r = resynthesize(base, noop, coll, fast_config());
  EXPECT_FALSE(r.reused_previous);
  EXPECT_EQ(r.affected_groups, 0);
  EXPECT_FALSE(r.result.schedule.ops.empty());
}

TEST(Resynthesize, FailedNicReSynthesizesValidSchedule) {
  topo::MultiRailSpec spec;
  spec.num_servers = 2;
  spec.gpus_per_server = 2;
  const topo::Topology base = topo::build_multi_rail(spec);
  const auto coll = coll::make_allgather(4, 1 << 20);
  const SynthesisConfig cfg = fast_config();

  solver::SubScheduleCache::instance().clear();
  Synthesizer prev_synth(base, cfg);
  const SynthesisResult previous = prev_synth.synthesize(coll);

  const topo::MutationResult m = topo::fail_nic(base, topo::node_by_name(base, "nic0.1"));
  const ResynthesisReport r = resynthesize(base, m, coll, cfg, &previous);
  EXPECT_GE(r.affected_groups, 1);
  EXPECT_FALSE(r.result.schedule.ops.empty());
  EXPECT_GT(r.result.predicted_time, 0.0);

  // Still byte-identical to a cold synthesis on the degraded fabric.
  solver::SubScheduleCache::instance().clear();
  Synthesizer cold_synth(m.topo, cfg);
  const SynthesisResult cold = cold_synth.synthesize(coll);
  EXPECT_EQ(r.result.predicted_time, cold.predicted_time);
  expect_identical(r.result.schedule, cold.schedule);
}

}  // namespace
}  // namespace syccl::core
