// Randomised consistency tests: generate random-but-valid schedules with the
// deterministic RNG and check that the three independent oracles — the
// structural validator, the data-plane executor, and the simulator — agree
// on their verdicts.
#include <gtest/gtest.h>

#include "coll/collective.h"
#include "runtime/executor.h"
#include "runtime/validate.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "topo/groups.h"
#include "util/rng.h"

namespace syccl {
namespace {

/// A random broadcast relay tree over `n` ranks: every rank receives from a
/// uniformly chosen, already-covered predecessor.
sim::Schedule random_broadcast_tree(const coll::Collective& bc, util::Rng& rng) {
  const int n = bc.num_ranks();
  const int root = bc.chunks().front().src;
  sim::Schedule s;
  s.pieces = sim::pieces_for(bc);
  std::vector<int> covered{root};
  std::vector<bool> is_covered(static_cast<std::size_t>(n), false);
  is_covered[static_cast<std::size_t>(root)] = true;
  // Random coverage order.
  std::vector<int> order;
  for (int r = 0; r < n; ++r) {
    if (r != root) order.push_back(r);
  }
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  for (int dst : order) {
    const int src = covered[rng.next_below(covered.size())];
    s.add_op(0, src, dst);
    covered.push_back(dst);
  }
  return s;
}

/// A random reduce in-tree: the reverse of a random broadcast tree.
sim::Schedule random_reduce_tree(const coll::Collective& red, util::Rng& rng) {
  const int root = red.chunks().front().dsts.front();
  const coll::Collective twin = coll::make_broadcast(red.num_ranks(), 1024, root);
  const sim::Schedule fwd = random_broadcast_tree(twin, rng);
  sim::Schedule out;
  out.pieces = sim::pieces_for(red);
  for (auto it = fwd.ops.rbegin(); it != fwd.ops.rend(); ++it) {
    out.add_op(0, it->dst, it->src);
  }
  return out;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, RandomBroadcastTreesSatisfyAllOracles) {
  util::Rng rng(GetParam());
  const auto topo = topo::build_h800_cluster(2);
  const auto groups = topo::extract_groups(topo);
  const sim::Simulator sim(groups);

  for (int trial = 0; trial < 8; ++trial) {
    const int root = static_cast<int>(rng.next_below(16));
    const auto bc = coll::make_broadcast(16, 1 << 16, root);
    const auto sched = random_broadcast_tree(bc, rng);

    EXPECT_TRUE(runtime::validate_schedule(sched, bc, groups).ok);
    EXPECT_TRUE(runtime::execute_and_verify(sched, bc).ok);
    EXPECT_GT(sim.time_collective(sched, bc), 0.0);
  }
}

TEST_P(FuzzSeeds, RandomReduceTreesSatisfyAllOracles) {
  util::Rng rng(GetParam() ^ 0xDEADBEEF);
  const auto topo = topo::build_h800_cluster(2);
  const auto groups = topo::extract_groups(topo);
  const sim::Simulator sim(groups);

  for (int trial = 0; trial < 8; ++trial) {
    const int root = static_cast<int>(rng.next_below(16));
    const auto red = coll::make_reduce(16, 1 << 16, root);
    const auto sched = random_reduce_tree(red, rng);

    EXPECT_TRUE(runtime::validate_schedule(sched, red, groups).ok);
    EXPECT_TRUE(runtime::execute_and_verify(sched, red).ok);
    EXPECT_GT(sim.time_collective(sched, red), 0.0);
  }
}

TEST_P(FuzzSeeds, MutilatedSchedulesAreRejectedByAllOracles) {
  util::Rng rng(GetParam() ^ 0x5EED);
  const auto topo = topo::build_h800_cluster(2);
  const auto groups = topo::extract_groups(topo);
  const sim::Simulator sim(groups);

  for (int trial = 0; trial < 8; ++trial) {
    const auto bc = coll::make_broadcast(16, 1 << 16, 0);
    auto sched = random_broadcast_tree(bc, rng);
    // Drop a random op: some destination goes hungry (or a relay source
    // never receives — either way at least one oracle must complain).
    const std::size_t victim = rng.next_below(sched.ops.size());
    sched.ops.erase(sched.ops.begin() + static_cast<std::ptrdiff_t>(victim));

    const bool validator_ok = runtime::validate_schedule(sched, bc, groups).ok;
    const bool executor_ok = runtime::execute_and_verify(sched, bc).ok;
    bool simulator_ok = true;
    try {
      sim.time_collective(sched, bc);
    } catch (const std::invalid_argument&) {
      simulator_ok = false;
    }
    EXPECT_FALSE(validator_ok);
    EXPECT_FALSE(executor_ok);
    EXPECT_FALSE(simulator_ok);
  }
}

TEST_P(FuzzSeeds, SimulatorMakespanInvariantUnderValidReordering) {
  // Reordering ops that have no mutual dependencies (different pieces on a
  // random tree share no state) must keep demand completion well-defined;
  // makespan may change (port order differs) but the oracles must all agree
  // the schedule is still correct.
  util::Rng rng(GetParam() + 17);
  const auto topo = topo::build_h800_cluster(2);
  const auto groups = topo::extract_groups(topo);
  const sim::Simulator sim(groups);
  const auto ag = coll::make_allgather(8, 1 << 16);

  // Independent trees per chunk, interleaved randomly (dependency-safe
  // because each piece's own ops keep their relative order).
  sim::Schedule merged;
  merged.pieces = sim::pieces_for(ag);
  std::vector<std::vector<sim::TransferOp>> per_piece;
  for (int r = 0; r < 8; ++r) {
    const auto bc = coll::make_broadcast(8, 1 << 16, r);
    auto tree = random_broadcast_tree(bc, rng);
    std::vector<sim::TransferOp> ops;
    for (auto op : tree.ops) {
      op.piece = r;
      ops.push_back(op);
    }
    per_piece.push_back(std::move(ops));
  }
  std::vector<std::size_t> cursor(8, 0);
  for (;;) {
    std::vector<int> ready;
    for (int r = 0; r < 8; ++r) {
      if (cursor[static_cast<std::size_t>(r)] < per_piece[static_cast<std::size_t>(r)].size()) {
        ready.push_back(r);
      }
    }
    if (ready.empty()) break;
    const int pick = ready[rng.next_below(ready.size())];
    merged.ops.push_back(
        per_piece[static_cast<std::size_t>(pick)][cursor[static_cast<std::size_t>(pick)]++]);
  }

  EXPECT_TRUE(runtime::validate_schedule(merged, ag, groups).ok);
  EXPECT_TRUE(runtime::execute_and_verify(merged, ag).ok);
  EXPECT_GT(sim.time_collective(merged, ag), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(1ull, 42ull, 1337ull, 0xABCDEFull, 2026ull));

}  // namespace
}  // namespace syccl
