// Error paths of the topology builders (src/topo/builders.cpp) and
// extract_groups/signature behaviour on hand-built heterogeneous
// topologies — fabrics whose link parameters differ per position, the shape
// every degradation/failure scenario produces.
#include <gtest/gtest.h>

#include <stdexcept>

#include "topo/builders.h"
#include "topo/groups.h"
#include "topo/topology.h"

namespace syccl::topo {
namespace {

TEST(BuilderErrors, SingleServerRejectsTooFewGpus) {
  EXPECT_THROW(build_single_server(1), std::invalid_argument);
  EXPECT_THROW(build_single_server(0), std::invalid_argument);
  EXPECT_THROW(build_single_server(-4), std::invalid_argument);
  EXPECT_NO_THROW(build_single_server(2));
}

TEST(BuilderErrors, MultiRailRejectsNonPositiveSizes) {
  MultiRailSpec spec;
  spec.num_servers = 0;
  EXPECT_THROW(build_multi_rail(spec), std::invalid_argument);
  spec.num_servers = 2;
  spec.gpus_per_server = 0;
  EXPECT_THROW(build_multi_rail(spec), std::invalid_argument);
  spec.gpus_per_server = -2;
  EXPECT_THROW(build_multi_rail(spec), std::invalid_argument);
}

TEST(BuilderErrors, ClosRejectsNonPositiveSizes) {
  ClosSpec spec;
  spec.num_servers = 0;
  EXPECT_THROW(build_clos(spec), std::invalid_argument);
  spec.num_servers = 4;
  spec.nics_per_server = 0;
  EXPECT_THROW(build_clos(spec), std::invalid_argument);
}

TEST(BuilderErrors, ClosRejectsIndivisibleNicSharing) {
  ClosSpec spec;
  spec.gpus_per_server = 6;
  spec.nics_per_server = 4;  // 6 GPUs cannot share 4 NICs evenly
  EXPECT_THROW(build_clos(spec), std::invalid_argument);
  spec.nics_per_server = 3;
  EXPECT_NO_THROW(build_clos(spec));
}

TEST(BuilderErrors, A100TestbedScalesInWholeServers) {
  EXPECT_THROW(build_a100_testbed(12), std::invalid_argument);
  EXPECT_THROW(build_a100_testbed(7), std::invalid_argument);
  EXPECT_NO_THROW(build_a100_testbed(16));
}

/// A star of `n` GPUs where GPU i's duplex uplink uses per-position β:
/// up[i] = up_beta[i], down[i] = down_beta[i].
Topology hand_built_star(const std::vector<double>& up_beta,
                         const std::vector<double>& down_beta) {
  Topology t;
  const NodeId sw = t.add_node(NodeKind::Switch, -1, 0, "sw");
  for (std::size_t i = 0; i < up_beta.size(); ++i) {
    const NodeId g =
        t.add_node(NodeKind::Gpu, 0, static_cast<int>(i), "gpu" + std::to_string(i));
    t.add_link(g, sw, 0.5e-6, up_beta[i], "nvlink");
    t.add_link(sw, g, 0.5e-6, down_beta[i], "nvlink");
  }
  return t;
}

constexpr double kBeta = 1.0 / 100e9;

TEST(HeterogeneousGroups, DegradedStarSplitsFromHealthySignature) {
  const TopologyGroups healthy =
      extract_groups(hand_built_star({kBeta, kBeta, kBeta, kBeta}, {kBeta, kBeta, kBeta, kBeta}));
  const TopologyGroups degraded = extract_groups(
      hand_built_star({kBeta, 8 * kBeta, kBeta, kBeta}, {kBeta, kBeta, kBeta, kBeta}));
  ASSERT_EQ(healthy.dims.size(), 1u);
  ASSERT_EQ(degraded.dims.size(), 1u);
  EXPECT_NE(healthy.dims[0].groups[0].signature(), degraded.dims[0].groups[0].signature());
}

TEST(HeterogeneousGroups, DegradedPositionIsCanonicalized) {
  // Degradation at member 0 vs member 2: positionally isomorphic (rotate the
  // star), so the canonical signatures must agree and each group's perm must
  // send its slow member to the same canonical position.
  const TopologyGroups a = extract_groups(
      hand_built_star({8 * kBeta, kBeta, kBeta}, {kBeta, kBeta, kBeta}));
  const TopologyGroups b = extract_groups(
      hand_built_star({kBeta, kBeta, 8 * kBeta}, {kBeta, kBeta, kBeta}));
  const GroupTopology& ga = a.dims[0].groups[0];
  const GroupTopology& gb = b.dims[0].groups[0];
  EXPECT_EQ(ga.signature(), gb.signature());
  EXPECT_EQ(ga.canonical_form().perm[0], gb.canonical_form().perm[2]);
}

TEST(HeterogeneousGroups, UpDownPairingDistinguishesEqualMultisets) {
  // Both stars carry the same multiset of port parameters {β, β, 8β, 8β} over
  // up+down, but group A pairs slow-up with fast-down on one member while
  // group B concentrates both slow directions on one member. No positional
  // isomorphism exists, so the signatures must differ — the historical
  // multiset encoding collapsed exactly this pair.
  const TopologyGroups a = extract_groups(
      hand_built_star({8 * kBeta, kBeta}, {kBeta, 8 * kBeta}));
  const TopologyGroups b = extract_groups(
      hand_built_star({8 * kBeta, kBeta}, {8 * kBeta, kBeta}));
  EXPECT_NE(a.dims[0].groups[0].signature(), b.dims[0].groups[0].signature());
}

TEST(HeterogeneousGroups, HeterogeneousMultiRailKeepsAllRanksCovered) {
  // Degrading a rail uplink must not change group membership, only the
  // degraded group's signature.
  MultiRailSpec spec;
  spec.num_servers = 2;
  spec.gpus_per_server = 2;
  Topology t = build_multi_rail(spec);
  const TopologyGroups groups = extract_groups(t);
  for (const auto& per_rank : groups.group_of) {
    int covered = 0;
    for (int g : per_rank) covered += g >= 0 ? 1 : 0;
    EXPECT_EQ(covered, static_cast<int>(t.num_gpus()));
  }
}

}  // namespace
}  // namespace syccl::topo
