// Tests for the schedule library (memoisation + on-disk persistence) and
// topology signatures.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/cache.h"
#include "runtime/executor.h"
#include "topo/builders.h"

namespace syccl::core {
namespace {

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("syccl_cache_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(TopologySignature, StableAndDiscriminating) {
  const auto a1 = topo::extract_groups(topo::build_h800_cluster(2));
  const auto a2 = topo::extract_groups(topo::build_h800_cluster(2));
  const auto b = topo::extract_groups(topo::build_h800_cluster(4));
  const auto c = topo::extract_groups(topo::build_a100_testbed(16));
  EXPECT_EQ(topology_signature(a1), topology_signature(a2));
  EXPECT_NE(topology_signature(a1), topology_signature(b));
  EXPECT_NE(topology_signature(a1), topology_signature(c));
}

TEST(ScheduleKey, DependsOnAllFields) {
  const auto g = topo::extract_groups(topo::build_h800_cluster(2));
  const auto k1 = schedule_key(g, coll::make_allgather(16, 1 << 20));
  const auto k2 = schedule_key(g, coll::make_allgather(16, 2 << 20));
  const auto k3 = schedule_key(g, coll::make_reduce_scatter(16, 1 << 20));
  EXPECT_NE(k1, k2);
  EXPECT_NE(k1, k3);
  EXPECT_EQ(k1, schedule_key(g, coll::make_allgather(16, 1 << 20)));
}

TEST(ScheduleLibrary, MemoisesSynthesis) {
  const auto topo = topo::build_h800_cluster(2);
  Synthesizer synth(topo);
  ScheduleLibrary lib(synth);
  const auto ag = coll::make_allgather(16, 1 << 20);
  EXPECT_FALSE(lib.contains(ag));
  const auto& first = lib.get(ag);
  EXPECT_TRUE(lib.contains(ag));
  const auto& second = lib.get(ag);
  EXPECT_EQ(&first, &second);  // same cached object
  EXPECT_EQ(lib.size(), 1u);
}

TEST(ScheduleLibrary, SaveAndLoadRoundTrip) {
  TempDir dir;
  const auto topo = topo::build_h800_cluster(2);
  const auto ag = coll::make_allgather(16, 4 << 20);
  double predicted = 0.0;
  {
    Synthesizer synth(topo);
    ScheduleLibrary lib(synth);
    predicted = lib.get(ag).predicted_time;
    EXPECT_EQ(lib.save(dir.path.string()), 1);
  }
  {
    Synthesizer synth(topo);
    ScheduleLibrary lib(synth);
    EXPECT_EQ(lib.load(dir.path.string()), 1);
    EXPECT_TRUE(lib.contains(ag));
    const auto& r = lib.get(ag);  // served from disk, no re-synthesis
    EXPECT_NEAR(r.predicted_time, predicted, 1e-9);  // text round-trip precision
    EXPECT_EQ(r.chosen, "loaded from library");
    // The loaded schedule still moves the right bytes.
    EXPECT_TRUE(runtime::execute_and_verify(r.schedule, ag).ok);
  }
}

TEST(ScheduleLibrary, LoadSkipsOtherTopologies) {
  TempDir dir;
  {
    const auto topo16 = topo::build_h800_cluster(2);
    Synthesizer synth(topo16);
    ScheduleLibrary lib(synth);
    (void)lib.get(coll::make_allgather(16, 1 << 20));
    lib.save(dir.path.string());
  }
  const auto topo32 = topo::build_h800_cluster(4);
  Synthesizer synth(topo32);
  ScheduleLibrary lib(synth);
  EXPECT_EQ(lib.load(dir.path.string()), 0);
}

TEST(ScheduleLibrary, LoadFromMissingDirIsZero) {
  const auto topo = topo::build_h800_cluster(2);
  Synthesizer synth(topo);
  ScheduleLibrary lib(synth);
  EXPECT_EQ(lib.load("/nonexistent/syccl/dir"), 0);
}

}  // namespace
}  // namespace syccl::core
