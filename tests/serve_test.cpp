// Tests for the schedule-compiler service's canonical scenario keys, the
// binary schedule codec, and the persistent on-disk library.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <random>

#include "obs/scenario.h"
#include "serve/canonical.h"
#include "serve/codec.h"
#include "serve/library.h"
#include "sim/schedule.h"
#include "topo/groups.h"
#include "topo/mutate.h"

namespace syccl::serve {
namespace {

namespace fs = std::filesystem;

CanonicalTopology canon_of(const topo::Topology& t) {
  return canonicalize(topo::extract_groups(t));
}

/// Fresh scratch directory under the test temp root.
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("syccl_serve_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// ---------------------------------------------------------------- canonical

TEST(ServeCanonical, PermutedRanksProduceIdenticalRendering) {
  for (const char* name : {"flat8", "dgx16", "h800x2"}) {
    const topo::Topology original = obs::build_scenario_topology(name);
    const CanonicalTopology a = canon_of(original);

    const int n = static_cast<int>(original.num_gpus());
    std::vector<int> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    std::reverse(perm.begin(), perm.end());
    const CanonicalTopology b = canon_of(topo::permute_gpu_ranks(original, perm));

    EXPECT_EQ(a.rendering, b.rendering) << name;
    EXPECT_EQ(a.hash, b.hash) << name;
    EXPECT_EQ(a.num_ranks, n);
  }
}

TEST(ServeCanonical, RandomPermutationsProduceIdenticalHash) {
  const topo::Topology original = obs::build_scenario_topology("dgx16");
  const CanonicalTopology base = canon_of(original);
  const int n = static_cast<int>(original.num_gpus());
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::mt19937 gen(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(perm.begin(), perm.end(), gen);
    const CanonicalTopology permuted = canon_of(topo::permute_gpu_ranks(original, perm));
    EXPECT_EQ(base.hash, permuted.hash) << "trial " << trial;
    // The permutation must be a bijection onto [0, n).
    std::vector<int> seen(static_cast<std::size_t>(n), 0);
    for (int p : permuted.perm) {
      ASSERT_GE(p, 0);
      ASSERT_LT(p, n);
      ++seen[static_cast<std::size_t>(p)];
    }
    EXPECT_EQ(std::count(seen.begin(), seen.end(), 1), n);
  }
}

TEST(ServeCanonical, DistinctTopologiesProduceDistinctHashes) {
  const std::vector<std::string> names = {"flat4", "flat8", "dgx16", "dgx16@degraded",
                                          "a100x16", "micro"};
  std::vector<std::string> hashes;
  for (const auto& name : names) {
    hashes.push_back(canon_of(obs::build_scenario_topology(name)).hash);
  }
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    for (std::size_t j = i + 1; j < hashes.size(); ++j) {
      EXPECT_NE(hashes[i], hashes[j]) << names[i] << " vs " << names[j];
    }
  }
}

TEST(ServeCanonical, AliasedScenarioNamesShareAHash) {
  // "dgx16" is literally build_h800_cluster(2): the canonical key must unify
  // the two spellings — that unification is the service's reason to exist.
  EXPECT_EQ(canon_of(obs::build_scenario_topology("dgx16")).hash,
            canon_of(obs::build_scenario_topology("h800x2")).hash);
}

TEST(ServeCanonical, SizeBucketIsPow2CeilingFlooredAt1K) {
  EXPECT_EQ(size_bucket(1), 1024u);
  EXPECT_EQ(size_bucket(1024), 1024u);
  EXPECT_EQ(size_bucket(1025), 2048u);
  EXPECT_EQ(size_bucket(1u << 20), 1u << 20);
  EXPECT_EQ(size_bucket((1u << 20) + 1), 2u << 20);
}

TEST(ServeCanonical, OptionsFingerprintTracksResultAffectingFieldsOnly) {
  core::SynthesisConfig base;
  const std::string fp = options_fingerprint(base);

  core::SynthesisConfig tuned = base;
  tuned.R2 = base.R2 + 1;
  EXPECT_NE(options_fingerprint(tuned), fp);

  core::SynthesisConfig sim_tuned = base;
  sim_tuned.sim.max_blocks = base.sim.max_blocks * 2;
  EXPECT_NE(options_fingerprint(sim_tuned), fp);

  // num_threads and use_solve_cache are pinned byte-identical elsewhere;
  // they must not split the library.
  core::SynthesisConfig threads = base;
  threads.num_threads = 3;
  threads.use_solve_cache = !base.use_solve_cache;
  EXPECT_EQ(options_fingerprint(threads), fp);
}

TEST(ServeCanonical, ScenarioKeySeparatesCollectiveRootAndBucket) {
  const CanonicalTopology canon = canon_of(obs::build_scenario_topology("flat4"));
  const std::string fp = options_fingerprint(core::SynthesisConfig{});
  const std::string base = scenario_key(canon, coll::CollKind::Broadcast, 0, 1024, fp);
  EXPECT_NE(base, scenario_key(canon, coll::CollKind::AllGather, -1, 1024, fp));
  EXPECT_NE(base, scenario_key(canon, coll::CollKind::Broadcast, 1, 1024, fp));
  EXPECT_NE(base, scenario_key(canon, coll::CollKind::Broadcast, 0, 2048, fp));
  EXPECT_EQ(base, scenario_key(canon, coll::CollKind::Broadcast, 0, 1024, fp));
}

TEST(ServeCanonical, InvertPermutationRoundTripsAndValidates) {
  const std::vector<int> perm = {2, 0, 3, 1};
  const std::vector<int> inv = invert_permutation(perm);
  EXPECT_EQ(inv, (std::vector<int>{1, 3, 0, 2}));
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inv[static_cast<std::size_t>(perm[i])], static_cast<int>(i));
  }
  EXPECT_THROW(invert_permutation({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(invert_permutation({0, 5}), std::invalid_argument);
}

TEST(ServeCanonical, ApplyRankMapRemapsEveryEndpoint) {
  sim::Schedule s;
  s.pieces = sim::pieces_for(coll::make_reduce(3, 3000, 0));
  s.add_op(0, 1, 0, 0, 0);
  s.add_op(0, 2, 0, 1, 1);
  const std::vector<int> map = {2, 0, 1};
  apply_rank_map(s, map);
  EXPECT_EQ(s.ops[0].src, 0);
  EXPECT_EQ(s.ops[0].dst, 2);
  EXPECT_EQ(s.ops[1].src, 1);
  EXPECT_EQ(s.ops[1].dst, 2);
  EXPECT_EQ(s.ops[0].dim, 0);  // dims are structural, never remapped
  for (const auto& p : s.pieces) {
    if (p.origin >= 0) {
      EXPECT_LT(p.origin, 3);
    }
    // Contributors were {0,1,2} in some order; still a permutation of ranks.
    std::vector<int> c = p.contributors;
    std::sort(c.begin(), c.end());
    EXPECT_EQ(c, (std::vector<int>{0, 1, 2}));
  }

  sim::Schedule bad;
  bad.pieces = sim::pieces_for(coll::make_broadcast(4, 4096, 0));
  bad.add_op(0, 0, 3);
  EXPECT_THROW(apply_rank_map(bad, {0, 1, 2}), std::invalid_argument);
}

// -------------------------------------------------------------------- codec

ScheduleBlob sample_blob() {
  ScheduleBlob blob;
  blob.scenario_key = "syccl-serve/v1|topo=abc|ranks=4|coll=AllGather|root=-1|bucket=1024|opt=x";
  blob.num_ranks = 4;
  blob.bucket_bytes = 1024;
  blob.predicted_time = 1.0 / 3.0;  // not exactly representable in decimal
  blob.schedule.name = "sample";
  blob.schedule.pieces = sim::pieces_for(coll::make_reduce(3, 3000, 0));
  blob.schedule.pieces[0].bytes = 0.1 * 12345.0;  // exercise bit-exactness
  blob.schedule.add_op(0, 1, 0, 0, 0);
  blob.schedule.add_op(0, 2, 0, 1, 1);
  return blob;
}

TEST(ServeCodec, RoundTripIsExact) {
  const ScheduleBlob blob = sample_blob();
  const std::string encoded = encode_blob(blob);
  const ScheduleBlob decoded = decode_blob(encoded);

  EXPECT_EQ(decoded.scenario_key, blob.scenario_key);
  EXPECT_EQ(decoded.num_ranks, blob.num_ranks);
  EXPECT_EQ(decoded.bucket_bytes, blob.bucket_bytes);
  // Doubles travel as IEEE-754 bit patterns: equality is exact, not "close".
  EXPECT_EQ(decoded.predicted_time, blob.predicted_time);
  ASSERT_EQ(decoded.schedule.pieces.size(), blob.schedule.pieces.size());
  for (std::size_t i = 0; i < blob.schedule.pieces.size(); ++i) {
    EXPECT_EQ(decoded.schedule.pieces[i].bytes, blob.schedule.pieces[i].bytes);
    EXPECT_EQ(decoded.schedule.pieces[i].chunk, blob.schedule.pieces[i].chunk);
    EXPECT_EQ(decoded.schedule.pieces[i].origin, blob.schedule.pieces[i].origin);
    EXPECT_EQ(decoded.schedule.pieces[i].reduce, blob.schedule.pieces[i].reduce);
    EXPECT_EQ(decoded.schedule.pieces[i].contributors, blob.schedule.pieces[i].contributors);
  }
  ASSERT_EQ(decoded.schedule.ops.size(), blob.schedule.ops.size());
  for (std::size_t i = 0; i < blob.schedule.ops.size(); ++i) {
    EXPECT_EQ(decoded.schedule.ops[i].piece, blob.schedule.ops[i].piece);
    EXPECT_EQ(decoded.schedule.ops[i].src, blob.schedule.ops[i].src);
    EXPECT_EQ(decoded.schedule.ops[i].dst, blob.schedule.ops[i].dst);
    EXPECT_EQ(decoded.schedule.ops[i].dim, blob.schedule.ops[i].dim);
    EXPECT_EQ(decoded.schedule.ops[i].phase, blob.schedule.ops[i].phase);
  }

  // encode(decode(s)) == s: the byte-exact save -> reopen guarantee.
  EXPECT_EQ(encode_blob(decoded), encoded);
}

TEST(ServeCodec, EveryTruncationThrows) {
  const std::string encoded = encode_blob(sample_blob());
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_THROW(decode_blob(std::string_view(encoded).substr(0, len)), CodecError)
        << "prefix length " << len;
  }
}

TEST(ServeCodec, CorruptionAnywhereThrows) {
  const std::string encoded = encode_blob(sample_blob());
  // Flip one bit in every byte: magic, version, size, payload and checksum
  // corruption must all be caught.
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    std::string corrupt = encoded;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    EXPECT_THROW(decode_blob(corrupt), CodecError) << "byte " << i;
  }
}

TEST(ServeCodec, TrailingBytesThrow) {
  const std::string encoded = encode_blob(sample_blob());
  EXPECT_THROW(decode_blob(encoded + "x"), CodecError);
}

// ------------------------------------------------------------------ library

TEST(ServeLibrary, EntriesPersistByteExactAcrossReopen) {
  const std::string dir = scratch_dir("reopen");
  ScheduleBlob a = sample_blob();
  ScheduleBlob b = sample_blob();
  b.scenario_key += "|other";
  b.predicted_time = 2.5e-6;

  {
    DiskLibrary library({dir});
    library.put(a);
    library.put(b);
    EXPECT_TRUE(library.get(a.scenario_key).has_value());
    EXPECT_FALSE(library.get("no such key").has_value());
    const auto stats = library.stats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
  }

  DiskLibrary reopened({dir});
  const auto stats = reopened.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.quarantined, 0u);
  const auto got = reopened.get(a.scenario_key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(encode_blob(*got), encode_blob(a));
  EXPECT_EQ(got->predicted_time, a.predicted_time);
}

TEST(ServeLibrary, CorruptEntryIsQuarantinedNotFatal) {
  const std::string dir = scratch_dir("quarantine");
  ScheduleBlob a = sample_blob();
  ScheduleBlob b = sample_blob();
  b.scenario_key += "|other";
  {
    DiskLibrary library({dir});
    library.put(a);
    library.put(b);
  }

  // Corrupt a's entry file in the middle of the payload.
  const fs::path entry = fs::path(dir) / (fnv1a_hex(a.scenario_key) + ".sched");
  ASSERT_TRUE(fs::exists(entry));
  {
    std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(entry) / 2));
    f.put('\xff');
    f.put('\xff');
  }

  DiskLibrary reopened({dir});
  const auto stats = reopened.stats();
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_FALSE(reopened.get(a.scenario_key).has_value());  // falls back to synthesis
  EXPECT_TRUE(reopened.get(b.scenario_key).has_value());
  EXPECT_FALSE(fs::exists(entry));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "quarantine" / entry.filename()));
}

TEST(ServeLibrary, LruEvictionBoundsBytesAndDeletesFiles) {
  const std::string dir = scratch_dir("lru");
  ScheduleBlob a = sample_blob();
  a.scenario_key += "|a";
  ScheduleBlob b = sample_blob();
  b.scenario_key += "|b";
  ScheduleBlob c = sample_blob();
  c.scenario_key += "|c";
  const std::size_t entry_bytes = encode_blob(a).size();

  DiskLibrary library({dir, entry_bytes * 2 + entry_bytes / 2});
  library.put(a);
  library.put(b);
  EXPECT_TRUE(library.get(a.scenario_key).has_value());  // a is now most recent
  library.put(c);                                        // evicts b (LRU)

  EXPECT_FALSE(library.get(b.scenario_key).has_value());
  EXPECT_TRUE(library.get(a.scenario_key).has_value());
  EXPECT_TRUE(library.get(c.scenario_key).has_value());
  const auto stats = library.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, entry_bytes * 2 + entry_bytes / 2);
  EXPECT_FALSE(fs::exists(fs::path(dir) / (fnv1a_hex(b.scenario_key) + ".sched")));

  DiskLibrary reopened({dir, entry_bytes * 2 + entry_bytes / 2});
  EXPECT_EQ(reopened.stats().entries, 2u);
  EXPECT_FALSE(reopened.get(b.scenario_key).has_value());
}

}  // namespace
}  // namespace syccl::serve
