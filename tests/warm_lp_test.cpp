// Property tests for warm-started LP re-solves (lp::SimplexSolver).
//
// The warm path must be an exact drop-in for the cold two-phase solver: for
// any bounded LP and any sequence of bound perturbations, resolve() and
// lp::solve() must agree on status and (when Optimal) on objective value.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/simplex.h"
#include "lp/simplex_solver.h"
#include "util/rng.h"

namespace syccl::lp {
namespace {

// Random LP with finite bounds, feasible by construction: the rhs of every
// row is chosen so that a random interior point x0 satisfies it.
Problem random_lp(util::Rng& rng) {
  Problem p;
  const int n = static_cast<int>(rng.next_in(3, 8));
  std::vector<double> x0(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double lo = -3.0 * rng.next_double();
    const double hi = lo + 0.5 + 4.0 * rng.next_double();
    const double cost = -2.0 + 4.0 * rng.next_double();
    p.add_var(lo, hi, cost);
    x0[static_cast<std::size_t>(i)] = lo + rng.next_double() * (hi - lo);
  }
  const int m = static_cast<int>(rng.next_in(2, 6));
  for (int r = 0; r < m; ++r) {
    Constraint c;
    double activity = 0.0;
    const int terms = static_cast<int>(rng.next_in(1, n));
    for (int t = 0; t < terms; ++t) {
      const int v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      const double coef = (rng.next_double() < 0.5 ? -1.0 : 1.0) * (0.2 + 2.8 * rng.next_double());
      c.terms.push_back({v, coef});
      activity += coef * x0[static_cast<std::size_t>(v)];
    }
    const std::uint64_t kind = rng.next_below(3);
    if (kind == 0) {
      c.rel = Relation::LessEq;
      c.rhs = activity + 2.0 * rng.next_double();
    } else if (kind == 1) {
      c.rel = Relation::GreaterEq;
      c.rhs = activity - 2.0 * rng.next_double();
    } else {
      c.rel = Relation::Eq;
      c.rhs = activity;  // x0 satisfies it exactly
    }
    p.add_constraint(c);
  }
  return p;
}

// Tightens or loosens one random variable bound, keeping lo <= hi. The LP may
// become infeasible through its constraints; both solvers must agree on that.
void perturb_bounds(util::Rng& rng, const Problem& p, std::vector<double>& lo,
                    std::vector<double>& hi) {
  const int v = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(p.num_vars)));
  const std::size_t vi = static_cast<std::size_t>(v);
  const double width = hi[vi] - lo[vi];
  if (rng.next_double() < 0.5) {
    lo[vi] += rng.next_double() * 0.9 * width;
  } else {
    hi[vi] -= rng.next_double() * 0.9 * width;
  }
}

// Cold reference: the same LP with the given bounds through lp::solve().
Solution solve_cold(Problem p, const std::vector<double>& lo, const std::vector<double>& hi) {
  p.lower = lo;
  p.upper = hi;
  return solve(p);
}

void expect_agreement(const Solution& warm, const Solution& cold, std::uint64_t seed, int step) {
  ASSERT_EQ(warm.status, cold.status) << "seed " << seed << " step " << step;
  if (warm.status == Status::Optimal) {
    const double scale = 1.0 + std::fabs(cold.objective);
    EXPECT_NEAR(warm.objective, cold.objective, 1e-6 * scale)
        << "seed " << seed << " step " << step;
  }
}

TEST(WarmLp, MatchesColdSolveAcrossRandomLps) {
  int optimal_seen = 0;
  int infeasible_seen = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    util::Rng rng(seed);
    const Problem p = random_lp(rng);
    SimplexSolver solver(p);
    std::vector<double> lo = p.lower;
    std::vector<double> hi = p.upper;
    // First resolve is a cold crash; the following five reuse the basis.
    for (int step = 0; step < 6; ++step) {
      const Solution warm = solver.resolve(lo, hi);
      const Solution cold = solve_cold(p, lo, hi);
      expect_agreement(warm, cold, seed, step);
      if (warm.status == Status::Optimal) ++optimal_seen;
      if (warm.status == Status::Infeasible) ++infeasible_seen;
      perturb_bounds(rng, p, lo, hi);
    }
    EXPECT_GT(solver.stats().warm_hits, 0) << "seed " << seed;
  }
  // The generator must actually exercise both outcomes.
  EXPECT_GT(optimal_seen, 100);
  EXPECT_GT(infeasible_seen, 0);
}

TEST(WarmLp, WarmResolveReusesBasisCheaply) {
  // After the first solve, tiny bound perturbations should resolve in far
  // fewer pivots than a cold solve of the same LP.
  util::Rng rng(7);
  const Problem p = random_lp(rng);
  SimplexSolver solver(p);
  std::vector<double> lo = p.lower;
  std::vector<double> hi = p.upper;
  ASSERT_EQ(solver.resolve(lo, hi).status, Status::Optimal);
  const long after_first = solver.stats().lp_iterations;
  lo[0] += 1e-3;
  const Solution warm = solver.resolve(lo, hi);
  ASSERT_EQ(warm.status, Status::Optimal);
  EXPECT_EQ(solver.stats().warm_fallbacks, 0);
  EXPECT_LE(solver.stats().lp_iterations - after_first, after_first + 2);
}

// The degenerate LP from lp_test with finite upper bounds (so the crash basis
// exists). Repeated resolves under perturbed bounds with stall_limit = 0 force
// every pivot through the Bland's-rule selection path; the solver must still
// terminate and agree with the cold reference while reusing its basis.
TEST(WarmLp, DegeneratePivotsUnderBlandFallback) {
  Problem p;
  const int x1 = p.add_var(0, 50.0, -0.75);
  const int x2 = p.add_var(0, 50.0, 150.0);
  const int x3 = p.add_var(0, 1.0, -0.02);
  const int x4 = p.add_var(0, 50.0, 6.0);
  p.add_constraint({{{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}}, Relation::LessEq, 0.0});
  p.add_constraint({{{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}}, Relation::LessEq, 0.0});
  p.add_constraint({{{x3, 1.0}}, Relation::LessEq, 1.0});

  SimplexSolver bland(p, /*stall_limit=*/0);
  std::vector<double> lo = p.lower;
  std::vector<double> hi = p.upper;
  util::Rng rng(11);
  for (int step = 0; step < 20; ++step) {
    const Solution warm = bland.resolve(lo, hi);
    const Solution cold = solve_cold(p, lo, hi);
    expect_agreement(warm, cold, 11, step);
    perturb_bounds(rng, p, lo, hi);
  }
  EXPECT_GT(bland.stats().warm_hits, 0);
}

TEST(WarmLp, InfeasibleBoundsDetectedWithoutPivoting) {
  Problem p;
  p.add_var(0.0, 1.0, 1.0);
  p.add_constraint({{{0, 1.0}}, Relation::LessEq, 5.0});
  SimplexSolver solver(p);
  const Solution s = solver.resolve({2.0}, {1.0});  // lo > hi
  EXPECT_EQ(s.status, Status::Infeasible);
}

TEST(WarmLp, BasisSnapshotRoundTrips) {
  util::Rng rng(3);
  const Problem p = random_lp(rng);
  SimplexSolver solver(p);
  ASSERT_EQ(solver.resolve(p.lower, p.upper).status, Status::Optimal);
  const Basis snap = solver.basis();
  ASSERT_EQ(static_cast<int>(snap.basic.size()), solver.num_rows());
  ASSERT_EQ(static_cast<int>(snap.status.size()), solver.num_cols());
  // Re-solving the identical bounds with the matching hint is an exact warm
  // re-entry.
  ASSERT_EQ(solver.resolve(p.lower, p.upper, 200000, 0.0, &snap).status, Status::Optimal);
  EXPECT_GT(solver.stats().warm_exact, 0);
  EXPECT_EQ(snap, solver.basis());
}

}  // namespace
}  // namespace syccl::lp
