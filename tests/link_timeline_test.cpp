// Unit tests for the per-link busy-interval timeline: allocation policy and
// interval compaction. Fragmentation is invisible end-to-end (it changes
// asymptotics, not results), so the merge behaviour is pinned here.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <random>

#include "sim/link_timeline.h"

namespace syccl::sim {
namespace {

TEST(LinkTimeline, AllocatesAtReadyWhenIdle) {
  LinkTimeline tl;
  EXPECT_DOUBLE_EQ(tl.allocate(5.0, 2.0), 5.0);
  EXPECT_EQ(tl.num_intervals(), 1u);
}

TEST(LinkTimeline, ZeroDurationClaimsNoSlot) {
  LinkTimeline tl;
  EXPECT_DOUBLE_EQ(tl.allocate(1.0, 0.0), 1.0);
  EXPECT_EQ(tl.num_intervals(), 0u);
}

TEST(LinkTimeline, SerializesConflictingTransfers) {
  LinkTimeline tl;
  EXPECT_DOUBLE_EQ(tl.allocate(0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(tl.allocate(1.0, 2.0), 2.0);  // pushed past the first
  EXPECT_EQ(tl.num_intervals(), 1u);             // exact touch: compacted
}

TEST(LinkTimeline, FillsEarliestSufficientGap) {
  LinkTimeline tl;
  tl.allocate(0.0, 1.0);  // [0, 1)
  tl.allocate(5.0, 1.0);  // [5, 6)
  // A 2-wide request ready at 0 fits the [1, 5) gap.
  EXPECT_DOUBLE_EQ(tl.allocate(0.0, 2.0), 1.0);
  // A 3-wide request no longer fits before 5: goes after [5, 6).
  EXPECT_DOUBLE_EQ(tl.allocate(0.0, 3.0), 6.0);
}

// Regression: the merge tolerance used to be an absolute 1e-18, which is
// below one ulp of any time ≥ ~4.5e-3 s. Back-to-back transfers whose ready
// times carry rounding-level gaps (1 ulp apart at second scale) therefore
// never merged, and a saturated link fragmented into one interval per
// transfer — O(n²) allocation on long schedules. The tolerance is now
// relative (a few ulps of the endpoints), so the timeline must stay at one
// interval.
TEST(LinkTimeline, MergesUlpGapsAtSecondScale) {
  LinkTimeline tl;
  double end = tl.allocate(0.0, 1.0) + 1.0;
  ASSERT_EQ(tl.num_intervals(), 1u);
  for (int i = 0; i < 200; ++i) {
    // Ready one ulp after the previous end — exactly the gap that float
    // arithmetic on arrival times produces.
    const double ready = std::nextafter(end, 1e300);
    const double start = tl.allocate(ready, 1.0);
    EXPECT_DOUBLE_EQ(start, ready);
    end = start + 1.0;
    ASSERT_EQ(tl.num_intervals(), 1u) << "fragmented at transfer " << i;
  }
}

TEST(LinkTimeline, DoesNotMergeRealGaps) {
  LinkTimeline tl;
  tl.allocate(0.0, 1.0);     // [0, 1)
  tl.allocate(1.0001, 1.0);  // a genuine 100 µs idle gap must survive
  EXPECT_EQ(tl.num_intervals(), 2u);
  // ... because a later transfer may still claim it.
  EXPECT_DOUBLE_EQ(tl.allocate(0.0, 0.0001), 1.0);
}

TEST(LinkTimeline, MergeKeepsTinyAbsoluteFloorNearZero) {
  LinkTimeline tl;
  // Near t = 0 the relative tolerance vanishes; the absolute floor still
  // merges mathematically-touching intervals.
  tl.allocate(0.0, 1e-9);
  tl.allocate(1e-9, 1e-9);
  EXPECT_EQ(tl.num_intervals(), 1u);
}

// ---------------------------------------------------------------------------
// Differential property test: the production sorted-vector timeline against a
// verbatim copy of the original std::map implementation. The two must agree
// bit-for-bit on every returned start time and on the merged interval count —
// the vector rewrite is a layout change, not a policy change.

/// The pre-rewrite map-backed timeline, kept test-only as the reference.
class MapTimeline {
 public:
  double allocate(double ready, double dur) {
    if (dur <= 0) return ready;
    double t = ready;
    auto it = intervals_.upper_bound(t);
    if (it != intervals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > t) t = prev->second;
    }
    while (it != intervals_.end() && it->first < t + dur) {
      t = std::max(t, it->second);
      ++it;
    }
    double lo = t;
    double hi = t + dur;
    auto next = intervals_.lower_bound(lo);
    if (next != intervals_.begin()) {
      auto prev = std::prev(next);
      if (touches(prev->second, lo)) {
        lo = prev->first;
        hi = std::max(hi, prev->second);
        next = intervals_.erase(prev);
      }
    }
    while (next != intervals_.end() && touches(hi, next->first)) {
      hi = std::max(hi, next->second);
      next = intervals_.erase(next);
    }
    intervals_.emplace(lo, hi);
    return t;
  }

  std::size_t num_intervals() const { return intervals_.size(); }

 private:
  static double touch_tolerance(double a, double b) {
    constexpr double kUlps = 4.0;
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return std::max(1e-18, kUlps * std::numeric_limits<double>::epsilon() * scale);
  }
  static bool touches(double earlier_end, double later_start) {
    return earlier_end >= later_start - touch_tolerance(earlier_end, later_start);
  }

  std::map<double, double> intervals_;  // start -> end
};

TEST(LinkTimelineProperty, MatchesMapReferenceOnRandomSequences) {
  std::mt19937_64 rng(20260808);
  // Time scales from nanoseconds to kiloseconds: the merge tolerance is
  // relative, so every magnitude band exercises a different tolerance.
  const double scales[] = {1e-9, 1e-6, 1e-3, 1.0, 1e3};
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> kind(0, 9);

  std::size_t total_allocations = 0;
  for (int seq = 0; seq < 250; ++seq) {
    const double scale = scales[static_cast<std::size_t>(seq) % std::size(scales)];
    LinkTimeline vec;
    MapTimeline ref;
    double prev_end = 0.0;
    for (int i = 0; i < 40; ++i) {
      double ready;
      double dur = unit(rng) * scale;
      switch (kind(rng)) {
        case 0:  // exact touch: ready at the previous allocation's end
          ready = prev_end;
          break;
        case 1:  // one ulp past the previous end — the fragmentation case
          ready = std::nextafter(prev_end, std::numeric_limits<double>::infinity());
          break;
        case 2:  // one ulp before the previous end
          ready = std::nextafter(prev_end, -std::numeric_limits<double>::infinity());
          break;
        case 3:  // far in the past: fills gaps or serialises from the front
          ready = 0.0;
          break;
        case 4:  // zero duration claims no slot
          ready = unit(rng) * 8.0 * scale;
          dur = 0.0;
          break;
        case 5:  // tiny sliver, ulp-scale duration
          ready = unit(rng) * 8.0 * scale;
          dur = scale * std::numeric_limits<double>::epsilon() * unit(rng);
          break;
        default:  // generic random request
          ready = unit(rng) * 8.0 * scale;
          break;
      }
      const double got = vec.allocate(ready, dur);
      const double want = ref.allocate(ready, dur);
      ASSERT_EQ(got, want) << "seq " << seq << " step " << i << " ready " << ready << " dur "
                           << dur;
      ASSERT_EQ(vec.num_intervals(), ref.num_intervals())
          << "seq " << seq << " step " << i;
      prev_end = got + std::max(dur, 0.0);
      ++total_allocations;
    }
  }
  EXPECT_GE(total_allocations, 10000u);
}

TEST(LinkTimelineProperty, ResetKeepsBehaviourIdentical) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  LinkTimeline vec;
  for (int round = 0; round < 4; ++round) {
    MapTimeline ref;  // fresh reference each round; vec is reset instead
    vec.reset();
    ASSERT_EQ(vec.num_intervals(), 0u);
    for (int i = 0; i < 64; ++i) {
      const double ready = unit(rng) * 4.0;
      const double dur = unit(rng) * 0.5;
      ASSERT_EQ(vec.allocate(ready, dur), ref.allocate(ready, dur)) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace syccl::sim
