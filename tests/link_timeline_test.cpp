// Unit tests for the per-link busy-interval timeline: allocation policy and
// interval compaction. Fragmentation is invisible end-to-end (it changes
// asymptotics, not results), so the merge behaviour is pinned here.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/link_timeline.h"

namespace syccl::sim {
namespace {

TEST(LinkTimeline, AllocatesAtReadyWhenIdle) {
  LinkTimeline tl;
  EXPECT_DOUBLE_EQ(tl.allocate(5.0, 2.0), 5.0);
  EXPECT_EQ(tl.num_intervals(), 1u);
}

TEST(LinkTimeline, ZeroDurationClaimsNoSlot) {
  LinkTimeline tl;
  EXPECT_DOUBLE_EQ(tl.allocate(1.0, 0.0), 1.0);
  EXPECT_EQ(tl.num_intervals(), 0u);
}

TEST(LinkTimeline, SerializesConflictingTransfers) {
  LinkTimeline tl;
  EXPECT_DOUBLE_EQ(tl.allocate(0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(tl.allocate(1.0, 2.0), 2.0);  // pushed past the first
  EXPECT_EQ(tl.num_intervals(), 1u);             // exact touch: compacted
}

TEST(LinkTimeline, FillsEarliestSufficientGap) {
  LinkTimeline tl;
  tl.allocate(0.0, 1.0);  // [0, 1)
  tl.allocate(5.0, 1.0);  // [5, 6)
  // A 2-wide request ready at 0 fits the [1, 5) gap.
  EXPECT_DOUBLE_EQ(tl.allocate(0.0, 2.0), 1.0);
  // A 3-wide request no longer fits before 5: goes after [5, 6).
  EXPECT_DOUBLE_EQ(tl.allocate(0.0, 3.0), 6.0);
}

// Regression: the merge tolerance used to be an absolute 1e-18, which is
// below one ulp of any time ≥ ~4.5e-3 s. Back-to-back transfers whose ready
// times carry rounding-level gaps (1 ulp apart at second scale) therefore
// never merged, and a saturated link fragmented into one interval per
// transfer — O(n²) allocation on long schedules. The tolerance is now
// relative (a few ulps of the endpoints), so the timeline must stay at one
// interval.
TEST(LinkTimeline, MergesUlpGapsAtSecondScale) {
  LinkTimeline tl;
  double end = tl.allocate(0.0, 1.0) + 1.0;
  ASSERT_EQ(tl.num_intervals(), 1u);
  for (int i = 0; i < 200; ++i) {
    // Ready one ulp after the previous end — exactly the gap that float
    // arithmetic on arrival times produces.
    const double ready = std::nextafter(end, 1e300);
    const double start = tl.allocate(ready, 1.0);
    EXPECT_DOUBLE_EQ(start, ready);
    end = start + 1.0;
    ASSERT_EQ(tl.num_intervals(), 1u) << "fragmented at transfer " << i;
  }
}

TEST(LinkTimeline, DoesNotMergeRealGaps) {
  LinkTimeline tl;
  tl.allocate(0.0, 1.0);     // [0, 1)
  tl.allocate(1.0001, 1.0);  // a genuine 100 µs idle gap must survive
  EXPECT_EQ(tl.num_intervals(), 2u);
  // ... because a later transfer may still claim it.
  EXPECT_DOUBLE_EQ(tl.allocate(0.0, 0.0001), 1.0);
}

TEST(LinkTimeline, MergeKeepsTinyAbsoluteFloorNearZero) {
  LinkTimeline tl;
  // Near t = 0 the relative tolerance vanishes; the absolute floor still
  // merges mathematically-touching intervals.
  tl.allocate(0.0, 1e-9);
  tl.allocate(1e-9, 1e-9);
  EXPECT_EQ(tl.num_intervals(), 1u);
}

}  // namespace
}  // namespace syccl::sim
