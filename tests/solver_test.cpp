// Tests for the epoch model, τ derivation, greedy scheduler and MILP
// scheduler on hand-checkable sub-demands.
#include <gtest/gtest.h>

#include "solver/epoch_model.h"
#include "solver/greedy.h"
#include "solver/milp_scheduler.h"
#include "solver/tau.h"
#include "topo/builders.h"
#include "topo/groups.h"

namespace syccl::solver {
namespace {

struct GroupFixture {
  topo::Topology topo;
  topo::TopologyGroups groups;
  explicit GroupFixture(int n, topo::LinkParams lp = {1e-6, 1e9})
      : topo(topo::build_single_server(n, lp)), groups(topo::extract_groups(topo)) {}
  const topo::GroupTopology& group() const { return groups.dims[0].groups[0]; }
};

SubDemand broadcast_demand(const topo::GroupTopology& g, double bytes) {
  SubDemand d;
  d.group = &g;
  d.piece_bytes = bytes;
  DemandPiece p;
  p.id = 0;
  p.srcs = {0};
  for (int i = 1; i < g.size(); ++i) p.dsts.push_back(i);
  d.pieces.push_back(std::move(p));
  return d;
}

SubDemand allgather_demand(const topo::GroupTopology& g, double bytes) {
  SubDemand d;
  d.group = &g;
  d.piece_bytes = bytes;
  for (int r = 0; r < g.size(); ++r) {
    DemandPiece p;
    p.id = r;
    p.srcs = {r};
    for (int i = 0; i < g.size(); ++i) {
      if (i != r) p.dsts.push_back(i);
    }
    d.pieces.push_back(std::move(p));
  }
  return d;
}

TEST(Tau, LargeEGivesLargeTau) {
  const double alpha = 1e-6, beta = 1e-9, bytes = 1e6;  // βs = 1 ms >> α
  const EpochParams coarse = derive_epoch_params(alpha, beta, bytes, 3.0);
  const EpochParams fine = derive_epoch_params(alpha, beta, bytes, 0.5);
  EXPECT_GT(coarse.tau, fine.tau);
  EXPECT_EQ(coarse.capacity, 3);
  EXPECT_EQ(coarse.occupancy, 1);
  EXPECT_EQ(fine.capacity, 1);
  EXPECT_EQ(fine.occupancy, 2);
  // τ is a multiple (or unit fraction) of βs — bandwidth constraint.
  EXPECT_NEAR(coarse.tau, 3.0 * beta * bytes, 1e-12);
  EXPECT_NEAR(fine.tau, 0.5 * beta * bytes, 1e-12);
}

TEST(Tau, LatencyEpochsCoverAlphaPlusBetaS) {
  const EpochParams p = derive_epoch_params(5e-6, 1e-9, 1000.0, 1.0);
  // α + βs = 6 µs, τ = r·βs (r integer): L·τ ≥ α+βs.
  EXPECT_GE(p.lat_epochs * p.tau, 5e-6 + 1e-6 - 1e-12);
}

TEST(Tau, RejectsBadInput) {
  EXPECT_THROW(derive_epoch_params(-1.0, 1e-9, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(derive_epoch_params(0.0, 0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(derive_epoch_params(0.0, 1e-9, 1.0, 0.0), std::invalid_argument);
}

TEST(EpochModel, IsomorphismKeyIgnoresPieceOrder) {
  GroupFixture f(4);
  SubDemand a = allgather_demand(f.group(), 100.0);
  SubDemand b = a;
  std::swap(b.pieces[0], b.pieces[3]);
  EXPECT_EQ(a.isomorphism_key(), b.isomorphism_key());
  SubDemand c = broadcast_demand(f.group(), 100.0);
  EXPECT_NE(a.isomorphism_key(), c.isomorphism_key());
}

TEST(EpochModel, ValidateRejectsBadDemands) {
  GroupFixture f(4);
  SubDemand d = broadcast_demand(f.group(), 100.0);
  d.pieces[0].dsts.push_back(99);
  EXPECT_THROW(d.validate(), std::invalid_argument);
  SubDemand e = broadcast_demand(f.group(), 0.0);
  EXPECT_THROW(e.validate(), std::invalid_argument);
}

TEST(EpochModel, CheckerCatchesViolations) {
  GroupFixture f(4);
  const SubDemand d = broadcast_demand(f.group(), 1000.0);
  const EpochParams ep = derive_epoch_params(f.group(), 1000.0, 1.0);

  SubSchedule missing;
  missing.params = ep;
  missing.ops.push_back(SubOp{0, 0, 1, 0});
  missing.num_epochs = ep.lat_epochs;
  EXPECT_THROW(check_sub_schedule(d, missing), std::logic_error);  // 2,3 unserved

  SubSchedule early;
  early.params = ep;
  early.ops.push_back(SubOp{0, 1, 2, 0});  // 1 does not have the piece yet
  EXPECT_THROW(check_sub_schedule(d, early), std::logic_error);

  SubSchedule over;
  over.params = ep;
  // Capacity of a port is ep.capacity; saturate it with duplicates.
  for (int k = 0; k < ep.capacity + 1; ++k) over.ops.push_back(SubOp{0, 0, 1, 0});
  EXPECT_THROW(check_sub_schedule(d, over), std::logic_error);
}

TEST(Greedy, BroadcastStreamsInAlphaDominatedRegime) {
  // α ≫ βs: the port is only busy βs per send, so streaming direct sends
  // from the root (one per epoch) beats a binomial tree — last arrival at
  // (n−2) + L epochs instead of ⌈log₂n⌉·L.
  GroupFixture f(8, {1e-6, 1e9});
  SubDemand d = broadcast_demand(f.group(), 100.0);  // βs = 0.1 µs << α
  const EpochParams ep = derive_epoch_params(f.group(), d.piece_bytes, 1.0);
  const SubSchedule s = solve_greedy(d, ep);
  check_sub_schedule(d, s);
  EXPECT_EQ(s.ops.size(), 7u);  // tree: n-1 sends
  EXPECT_EQ(s.num_epochs, (8 - 2) + ep.lat_epochs);
}

TEST(Greedy, BroadcastRelaysInBandwidthDominatedRegime) {
  // βs ≫ α with occupancy 2: relaying through early receivers beats pure
  // streaming. Greedy must at least stay within the streaming bound; the
  // MILP (next suite) is allowed to relay below it.
  GroupFixture f(4, {1e-6, 1e9});
  SubDemand d = broadcast_demand(f.group(), 1e6);  // βs = 1 ms >> α
  const EpochParams ep = derive_epoch_params(f.group(), d.piece_bytes, 0.5);
  ASSERT_EQ(ep.occupancy, 2);
  const SubSchedule s = solve_greedy(d, ep);
  check_sub_schedule(d, s);
  EXPECT_LE(s.num_epochs, (4 - 2) * ep.occupancy + ep.lat_epochs);
}

TEST(Greedy, AllGatherUsesAllPorts) {
  GroupFixture f(4);
  SubDemand d = allgather_demand(f.group(), 1e6);  // bandwidth regime
  const EpochParams ep = derive_epoch_params(f.group(), d.piece_bytes, 1.0);
  const SubSchedule s = solve_greedy(d, ep);
  check_sub_schedule(d, s);
  EXPECT_EQ(s.ops.size(), 12u);  // n(n-1) sends minimum
  // Bandwidth-optimal: each GPU sends 3 pieces on its port with capacity 1
  // per epoch ⇒ ≥ 3 epochs + latency; greedy should land near that.
  EXPECT_LE(s.num_epochs, 3 + ep.lat_epochs + 1);
}

TEST(Greedy, ScatterSerializesOnRootPort) {
  GroupFixture f(5);
  SubDemand d;
  d.group = &f.group();
  d.piece_bytes = 1e6;
  for (int i = 1; i < 5; ++i) {
    DemandPiece p;
    p.id = i - 1;
    p.srcs = {0};
    p.dsts = {i};
    d.pieces.push_back(p);
  }
  const EpochParams ep = derive_epoch_params(f.group(), d.piece_bytes, 1.0);
  const SubSchedule s = solve_greedy(d, ep);
  check_sub_schedule(d, s);
  EXPECT_EQ(s.ops.size(), 4u);
  // Root's up-port is the bottleneck: 4 sends with capacity C.
  const int expected = (4 + ep.capacity - 1) / ep.capacity - 1 + ep.lat_epochs;
  EXPECT_GE(s.num_epochs, expected);
}

TEST(Greedy, RespectsCapacityGreaterThanOne) {
  GroupFixture f(5, {1e-9, 1e9});  // negligible α
  SubDemand d = broadcast_demand(f.group(), 1000.0);
  EpochParams ep = derive_epoch_params(f.group(), d.piece_bytes, 2.0);
  ASSERT_EQ(ep.capacity, 2);
  const SubSchedule s = solve_greedy(d, ep);
  check_sub_schedule(d, s);
  // Root can send 2 per epoch: epoch 0 → 2 dsts; epoch 1 ≥ covers rest.
  EXPECT_LE(s.num_epochs, 2 * ep.lat_epochs);
}

TEST(MilpScheduler, MatchesGreedyOnBroadcast) {
  GroupFixture f(4);
  SubDemand d = broadcast_demand(f.group(), 100.0);
  SolveStats stats;
  const SubSchedule s = solve_sub_demand(d, {}, &stats);
  check_sub_schedule(d, s);
  // α-dominated streaming optimum: last send leaves the root at epoch n−2
  // and arrives L epochs later.
  const EpochParams ep = derive_epoch_params(f.group(), d.piece_bytes, 1.0);
  EXPECT_EQ(s.num_epochs, (4 - 2) + ep.lat_epochs);
}

TEST(MilpScheduler, ImprovesSuboptimalGreedyOrMatches) {
  // AllGather on 4: greedy is already near-optimal; the MILP must never be
  // worse and must validate.
  GroupFixture f(4);
  SubDemand d = allgather_demand(f.group(), 1e5);
  const EpochParams ep = derive_epoch_params(f.group(), d.piece_bytes, 1.0);
  const SubSchedule greedy = solve_greedy(d, ep);
  MilpSchedulerOptions opts;
  opts.time_limit_s = 3.0;
  SolveStats stats;
  const SubSchedule milp = solve_sub_demand(d, opts, &stats);
  check_sub_schedule(d, milp);
  EXPECT_LE(milp.num_epochs, greedy.num_epochs);
}

TEST(MilpScheduler, GreedyOnlyFlagSkipsMilp) {
  GroupFixture f(6);
  SubDemand d = broadcast_demand(f.group(), 1000.0);
  MilpSchedulerOptions opts;
  opts.greedy_only = true;
  SolveStats stats;
  const SubSchedule s = solve_sub_demand(d, opts, &stats);
  check_sub_schedule(d, s);
  EXPECT_FALSE(stats.used_milp);
}

TEST(MilpScheduler, SizeGateFallsBackToGreedy) {
  GroupFixture f(8);
  SubDemand d = allgather_demand(f.group(), 1e6);
  MilpSchedulerOptions opts;
  opts.max_binaries = 10;  // force the gate
  SolveStats stats;
  const SubSchedule s = solve_sub_demand(d, opts, &stats);
  check_sub_schedule(d, s);
  EXPECT_FALSE(stats.used_milp);
}

TEST(EpochModel, RemapSubSchedule) {
  GroupFixture f(4);
  SubDemand d = broadcast_demand(f.group(), 1000.0);
  const EpochParams ep = derive_epoch_params(f.group(), d.piece_bytes, 1.0);
  const SubSchedule s = solve_greedy(d, ep);
  const std::vector<int> rot = {1, 2, 3, 0};
  const SubSchedule r = remap_sub_schedule(s, rot);
  ASSERT_EQ(r.ops.size(), s.ops.size());
  for (std::size_t i = 0; i < s.ops.size(); ++i) {
    EXPECT_EQ(r.ops[i].src, rot[static_cast<std::size_t>(s.ops[i].src)]);
    EXPECT_EQ(r.ops[i].dst, rot[static_cast<std::size_t>(s.ops[i].dst)]);
  }
  EXPECT_THROW(remap_sub_schedule(s, {0, 1}), std::invalid_argument);
}

// Parameterized sweep: greedy feasibility across sizes, E values and group
// widths — property: check_sub_schedule never throws and epochs are bounded
// by the trivial sequential schedule.
struct SweepParam {
  int n;
  double bytes;
  double E;
};

class GreedySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GreedySweep, BroadcastAndAllGatherFeasible) {
  const auto [n, bytes, E] = GetParam();
  GroupFixture f(n);
  for (const bool ag : {false, true}) {
    SubDemand d = ag ? allgather_demand(f.group(), bytes) : broadcast_demand(f.group(), bytes);
    const EpochParams ep = derive_epoch_params(f.group(), d.piece_bytes, E);
    const SubSchedule s = solve_greedy(d, ep);
    ASSERT_NO_THROW(check_sub_schedule(d, s));
    // Trivial upper bound: all sends sequential on one port.
    const long sends = static_cast<long>(s.ops.size());
    EXPECT_LE(s.num_epochs, sends * std::max(ep.occupancy, ep.lat_epochs) + ep.lat_epochs);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GreedySweep,
                         ::testing::Values(SweepParam{2, 1e3, 1.0}, SweepParam{3, 1e6, 0.5},
                                           SweepParam{4, 1e4, 2.0}, SweepParam{5, 1e7, 3.0},
                                           SweepParam{8, 1e3, 0.5}, SweepParam{8, 1e8, 3.0},
                                           SweepParam{16, 1e6, 1.0}));

}  // namespace
}  // namespace syccl::solver
