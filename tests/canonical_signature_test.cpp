// Regression tests for the position-canonical group signature and the
// canonical solve-cache keys (the heterogeneous-group cache-key fix).
//
// The historical GroupTopology::signature() encoded per-rank port α/β as a
// *multiset*, so a group with member 0's uplink degraded and a group with
// member 2's uplink degraded shared one signature — and because schedules
// were transferred by the identity mapping, the solve cache could serve a
// schedule optimised (or merely valid) for the wrong degraded position.
// These tests fail against that encoding and pin the canonical behaviour:
// keys match exactly when a positional isomorphism exists, and cached
// schedules are remapped onto the requesting group's labelling.
#include <gtest/gtest.h>

#include "solver/epoch_model.h"
#include "solver/milp_scheduler.h"
#include "solver/solve_cache.h"
#include "topo/groups.h"
#include "topo/isomorphism.h"

namespace syccl::solver {
namespace {

/// Hand-built star group: per-member up β (seconds/byte) and optional shared
/// up port ids. Down links are uniform with distinct ports.
topo::GroupTopology make_group(const std::vector<double>& up_beta,
                               std::vector<int> up_port = {}) {
  const std::size_t n = up_beta.size();
  topo::GroupTopology gt;
  gt.dim = 0;
  gt.group_index = 0;
  if (up_port.empty()) {
    for (std::size_t i = 0; i < n; ++i) up_port.push_back(static_cast<int>(i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    gt.ranks.push_back(static_cast<int>(i));
    gt.up.push_back(topo::GroupPort{1e-6, up_beta[i], up_port[i]});
    gt.down.push_back(topo::GroupPort{1e-6, 1e-9, 1000 + static_cast<int>(i)});
    gt.up_hops.push_back({});
    gt.down_hops.push_back({});
  }
  return gt;
}

SubDemand demand_of(const topo::GroupTopology& g,
                    const std::vector<std::pair<std::vector<int>, std::vector<int>>>& pieces,
                    double bytes = 1000.0) {
  SubDemand d;
  d.group = &g;
  d.piece_bytes = bytes;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    DemandPiece p;
    p.id = static_cast<int>(i);
    p.srcs = pieces[i].first;
    p.dsts = pieces[i].second;
    d.pieces.push_back(std::move(p));
  }
  return d;
}

MilpSchedulerOptions greedy_opts() {
  MilpSchedulerOptions o;
  o.greedy_only = true;
  return o;
}

// The headline regression: same β multiset, degradation at different
// positions, demand anchored differently relative to the slow link. The
// multiset signature keyed these identically, so the cache would serve the
// first demand's schedule for the second with the slow link misplaced.
TEST(CanonicalSignature, DegradedPositionChangesDemandKey) {
  const topo::GroupTopology slow_at_src = make_group({1e-8, 1e-9, 1e-9});
  const topo::GroupTopology slow_at_leaf = make_group({1e-9, 1e-9, 1e-8});
  // Broadcast from member 0 in both groups: in the first, the source sits on
  // the degraded uplink; in the second the degraded member is a leaf.
  const SubDemand a = demand_of(slow_at_src, {{{0}, {1, 2}}});
  const SubDemand b = demand_of(slow_at_leaf, {{{0}, {1, 2}}});
  EXPECT_NE(a.isomorphism_key(), b.isomorphism_key());
}

// The dual guarantee: when a positional isomorphism *does* exist, the
// canonical key still collapses the two demands to one class (dedup is
// preserved, not just disabled) and the cached schedule comes back remapped
// onto the requesting group's labelling.
TEST(CanonicalSignature, IsomorphicDegradedDemandsShareOneRemappedEntry) {
  const topo::GroupTopology slow_at_0 = make_group({1e-8, 1e-9, 1e-9, 1e-9});
  const topo::GroupTopology slow_at_2 = make_group({1e-9, 1e-9, 1e-8, 1e-9});
  // Broadcast from the slow member in both groups — positionally isomorphic.
  const SubDemand a = demand_of(slow_at_0, {{{0}, {1, 2, 3}}});
  const SubDemand b = demand_of(slow_at_2, {{{2}, {0, 1, 3}}});
  ASSERT_EQ(a.isomorphism_key(), b.isomorphism_key());
  EXPECT_EQ(slow_at_0.signature(), slow_at_2.signature());

  SubScheduleCache cache(1 << 20);
  SolveStats stats;
  const SubSchedule sa = cache.get_or_solve(a, greedy_opts(), &stats);
  EXPECT_FALSE(stats.cache_hit);
  EXPECT_NO_THROW(check_sub_schedule(a, sa));

  const SubSchedule sb = cache.get_or_solve(b, greedy_opts(), &stats);
  EXPECT_TRUE(stats.cache_hit);
  // The remapped schedule must be valid *for b's labelling* — under the
  // pre-fix identity transfer it would broadcast from member 0, never
  // satisfying b at all.
  EXPECT_NO_THROW(check_sub_schedule(b, sb));
  EXPECT_EQ(sb.num_epochs, sa.num_epochs);
}

// Port-sharing variant of the bug: groups whose shared-NIC pair sits at
// different positions shared a signature (same share-count multiset), and
// the identity transfer produced a schedule that oversubscribes the target
// group's shared port — check_sub_schedule throws on the pre-fix behaviour.
TEST(CanonicalSignature, SharedPortScheduleTransferRespectsCapacity) {
  // A: members 0,1 share an up port; 2,3 have private ports.
  const topo::GroupTopology shared_front =
      make_group({1e-9, 1e-9, 1e-9, 1e-9}, {7, 7, 8, 9});
  // B: members 2,3 share; 0,1 private.
  const topo::GroupTopology shared_back =
      make_group({1e-9, 1e-9, 1e-9, 1e-9}, {7, 8, 9, 9});

  // Two pieces sent from the members with *private* ports in A (parallel in
  // one epoch) — the same member indices share a port in B.
  const SubDemand a = demand_of(shared_front, {{{2}, {0}}, {{3}, {1}}});
  const SubDemand b = demand_of(shared_back, {{{2}, {0}}, {{3}, {1}}});

  SubScheduleCache cache(1 << 20);
  SolveStats stats;
  const SubSchedule sa = cache.get_or_solve(a, greedy_opts(), &stats);
  EXPECT_NO_THROW(check_sub_schedule(a, sa));

  const SubSchedule sb = cache.get_or_solve(b, greedy_opts(), &stats);
  EXPECT_NO_THROW(check_sub_schedule(b, sb));
  const SubSchedule direct = solve_sub_demand(b, greedy_opts());
  EXPECT_EQ(sb.num_epochs, direct.num_epochs);
}

// Piece ids permuted relative to list order still canonicalise: a hit
// returns ops whose piece ids are valid for the requesting demand.
TEST(CanonicalSignature, PermutedPieceIdsRemapOnHit) {
  const topo::GroupTopology g = make_group({1e-9, 1e-9, 1e-9, 1e-9});
  SubDemand a = demand_of(g, {{{0}, {1, 2, 3}}, {{1}, {0, 2, 3}}});
  SubDemand b = a;
  std::swap(b.pieces[0], b.pieces[1]);  // ids travel with the pieces
  ASSERT_EQ(a.isomorphism_key(), b.isomorphism_key());

  SubScheduleCache cache(1 << 20);
  SolveStats stats;
  const SubSchedule sa = cache.get_or_solve(a, greedy_opts(), &stats);
  EXPECT_NO_THROW(check_sub_schedule(a, sa));
  const SubSchedule sb = cache.get_or_solve(b, greedy_opts(), &stats);
  EXPECT_TRUE(stats.cache_hit);
  EXPECT_NO_THROW(check_sub_schedule(b, sb));
  EXPECT_EQ(sb.num_epochs, sa.num_epochs);
}

// Signature sanity on the group level.
TEST(CanonicalSignature, GroupSignatureProperties) {
  const topo::GroupTopology uniform_a = make_group({1e-9, 1e-9, 1e-9});
  const topo::GroupTopology uniform_b = make_group({1e-9, 1e-9, 1e-9});
  const topo::GroupTopology degraded_0 = make_group({1e-8, 1e-9, 1e-9});
  const topo::GroupTopology degraded_1 = make_group({1e-9, 1e-8, 1e-9});

  EXPECT_EQ(uniform_a.signature(), uniform_b.signature());
  // Isomorphic heterogeneous groups canonicalise to one signature...
  EXPECT_EQ(degraded_0.signature(), degraded_1.signature());
  // ...which differs from the homogeneous one.
  EXPECT_NE(uniform_a.signature(), degraded_0.signature());
  // canonical_form() really is positional: the degraded member lands on the
  // same canonical position in both groups.
  const auto f0 = degraded_0.canonical_form();
  const auto f1 = degraded_1.canonical_form();
  EXPECT_EQ(f0.perm[0], f1.perm[1]);
}

}  // namespace
}  // namespace syccl::solver
