// End-to-end tests for the SyCCL synthesizer across collectives, sizes and
// topologies. These assert feasibility (validated by the simulator's demand
// checks), sane busbw, and the paper's qualitative properties.
#include <gtest/gtest.h>

#include "coll/busbw.h"
#include "core/synthesizer.h"
#include "topo/builders.h"

namespace syccl::core {
namespace {

SynthesisConfig fast_config() {
  SynthesisConfig cfg;
  cfg.sketch.search.max_sketches = 32;
  cfg.sketch.max_prototypes = 4;
  cfg.sketch.combine.max_outputs = 10;
  cfg.coarse_solver.time_limit_s = 0.1;
  cfg.fine_solver.time_limit_s = 0.2;
  return cfg;
}

TEST(Synthesizer, BroadcastSingleServer) {
  const auto topo = topo::build_single_server(8);
  Synthesizer synth(topo, fast_config());
  const auto coll = coll::make_broadcast(8, 1 << 20);
  const auto r = synth.synthesize(coll);
  EXPECT_GT(r.predicted_time, 0.0);
  EXPECT_FALSE(r.schedule.ops.empty());
  // Sanity: within 10x of the single-link lower bound α+βs.
  EXPECT_LT(r.predicted_time, 10 * (0.35e-6 + (1 << 20) / 200e9 * 8));
}

TEST(Synthesizer, AllGatherTwoServers) {
  const auto topo = topo::build_h800_cluster(2);
  Synthesizer synth(topo, fast_config());
  const auto coll = coll::make_allgather(16, 16 << 20);
  const auto r = synth.synthesize(coll);
  EXPECT_GT(coll::busbw_GBps(coll, r.predicted_time), 20.0);
  EXPECT_GT(r.breakdown.num_combinations, 1);
  // Classes needed = actual solves + process-wide cache hits (the cache may
  // be warm when the whole binary runs in one process).
  const int classes = r.breakdown.num_solver_calls + r.breakdown.cache_hits;
  EXPECT_GT(classes, 0);
  // Isomorphism dedup must kick in: fewer solver calls than sub-demands.
  EXPECT_LT(classes, r.breakdown.num_subdemands);
}

TEST(Synthesizer, ReduceScatterMatchesAllGatherShape) {
  // RS is the reversed AG; completion times should be comparable.
  const auto topo = topo::build_h800_cluster(2);
  Synthesizer synth(topo, fast_config());
  const auto ag = synth.synthesize(coll::make_allgather(16, 4 << 20));
  const auto rs = synth.synthesize(coll::make_reduce_scatter(16, 4 << 20));
  EXPECT_GT(rs.predicted_time, 0.0);
  EXPECT_LT(rs.predicted_time, 3.0 * ag.predicted_time);
  EXPECT_GT(rs.predicted_time, ag.predicted_time / 3.0);
  // Reduce schedules carry reduce pieces.
  bool any_reduce = false;
  for (const auto& p : rs.schedule.pieces) any_reduce |= p.reduce;
  EXPECT_TRUE(any_reduce);
}

TEST(Synthesizer, AllToAllTwoServers) {
  const auto topo = topo::build_h800_cluster(2);
  Synthesizer synth(topo, fast_config());
  const auto coll = coll::make_alltoall(16, 16 << 20);
  const auto r = synth.synthesize(coll);
  EXPECT_GT(coll::busbw_GBps(coll, r.predicted_time), 5.0);
}

TEST(Synthesizer, AllReduceConcatenatesPhases) {
  const auto topo = topo::build_h800_cluster(2);
  Synthesizer synth(topo, fast_config());
  const auto coll = coll::make_allreduce(16, 4 << 20);
  const auto r = synth.synthesize(coll);
  EXPECT_GT(r.predicted_time, 0.0);
  // Two phases present.
  int max_phase = 0;
  for (const auto& op : r.schedule.ops) max_phase = std::max(max_phase, op.phase);
  EXPECT_GE(max_phase, 1);
  EXPECT_NE(r.chosen.find("++"), std::string::npos);
}

TEST(Synthesizer, RootedReduceAndGather) {
  const auto topo = topo::build_h800_cluster(2);
  Synthesizer synth(topo, fast_config());
  EXPECT_GT(synth.synthesize(coll::make_reduce(16, 1 << 20, 3)).predicted_time, 0.0);
  EXPECT_GT(synth.synthesize(coll::make_gather(16, 1 << 20, 5)).predicted_time, 0.0);
  EXPECT_GT(synth.synthesize(coll::make_scatter(16, 1 << 20, 2)).predicted_time, 0.0);
}

TEST(Synthesizer, SendRecv) {
  const auto topo = topo::build_h800_cluster(2);
  Synthesizer synth(topo, fast_config());
  const auto r = synth.synthesize(coll::make_sendrecv(16, 0, 9, 1 << 20));
  ASSERT_EQ(r.schedule.ops.size(), 1u);
  EXPECT_GT(r.predicted_time, 0.0);
}

TEST(Synthesizer, SmallSizesBeatLargeScheduleLatency) {
  // At 1 KB the chosen schedule must be latency-bound (microseconds), far
  // from the bandwidth-regime choice.
  const auto topo = topo::build_h800_cluster(2);
  Synthesizer synth(topo, fast_config());
  const auto small = synth.synthesize(coll::make_allgather(16, 1024));
  EXPECT_LT(small.predicted_time, 100e-6);
}

TEST(Synthesizer, A100TopologyWorks) {
  const auto topo = topo::build_a100_testbed(16);
  Synthesizer synth(topo, fast_config());
  const auto coll = coll::make_allgather(16, 64 << 20);
  const auto r = synth.synthesize(coll);
  // Paper reports ~100+ GB/s busbw at large sizes on this testbed.
  EXPECT_GT(coll::busbw_GBps(coll, r.predicted_time), 30.0);
}

TEST(Synthesizer, TwoStepOffStillWorks) {
  const auto topo = topo::build_h800_cluster(2);
  SynthesisConfig cfg = fast_config();
  cfg.two_step = false;
  Synthesizer synth(topo, cfg);
  const auto r = synth.synthesize(coll::make_allgather(16, 1 << 20));
  EXPECT_GT(r.predicted_time, 0.0);
  // No fine pass: the "solve2" bucket only holds the final re-simulation.
  EXPECT_LT(r.breakdown.solve2_s, 0.5);
}

TEST(Synthesizer, PruningOffProducesComparableSchedules) {
  // §7.4 Fig 17(a): pruning saves time with minimal performance impact.
  const auto topo = topo::build_h800_cluster(2);
  SynthesisConfig on = fast_config();
  SynthesisConfig off = fast_config();
  off.sketch.search.prune_isomorphic = false;
  off.sketch.search.prune_consistency = false;
  Synthesizer s_on(topo, on);
  Synthesizer s_off(topo, off);
  const auto coll = coll::make_allgather(16, 1 << 20);
  const auto r_on = s_on.synthesize(coll);
  const auto r_off = s_off.synthesize(coll);
  EXPECT_LT(r_on.predicted_time, r_off.predicted_time * 1.5);
}

}  // namespace
}  // namespace syccl::core
