// Tests for the MSCCL-style XML emitter/parser round trip.
#include <gtest/gtest.h>

#include "coll/collective.h"
#include "runtime/xml.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "topo/groups.h"

namespace syccl::runtime {
namespace {

sim::Schedule sample_schedule() {
  sim::Schedule s;
  s.name = "sample";
  const auto bc = coll::make_broadcast(4, 4096, 0);
  s.pieces = sim::pieces_for(bc);
  s.add_op(0, 0, 1, 0, 0);
  s.add_op(0, 0, 2, -1, 0);
  s.add_op(0, 1, 3, 0, 1);
  return s;
}

TEST(Xml, RoundTripPreservesStructure) {
  const sim::Schedule s = sample_schedule();
  const std::string xml = to_xml(s, 4);
  const sim::Schedule parsed = from_xml(xml);
  ASSERT_EQ(parsed.pieces.size(), s.pieces.size());
  ASSERT_EQ(parsed.ops.size(), s.ops.size());
  for (std::size_t i = 0; i < s.ops.size(); ++i) {
    EXPECT_EQ(parsed.ops[i].piece, s.ops[i].piece);
    EXPECT_EQ(parsed.ops[i].src, s.ops[i].src);
    EXPECT_EQ(parsed.ops[i].dst, s.ops[i].dst);
    EXPECT_EQ(parsed.ops[i].dim, s.ops[i].dim);
    EXPECT_EQ(parsed.ops[i].phase, s.ops[i].phase);
  }
  EXPECT_EQ(parsed.name, "sample");
}

TEST(Xml, RoundTripPreservesReducePieces) {
  sim::Schedule s;
  s.name = "red";
  const auto red = coll::make_reduce(3, 3000, 0);
  s.pieces = sim::pieces_for(red);
  s.add_op(0, 1, 0);
  s.add_op(0, 2, 0);
  const sim::Schedule parsed = from_xml(to_xml(s, 3));
  ASSERT_EQ(parsed.pieces.size(), 1u);
  EXPECT_TRUE(parsed.pieces[0].reduce);
  EXPECT_EQ(parsed.pieces[0].contributors, s.pieces[0].contributors);
}

TEST(Xml, RoundTripSimulatesIdentically) {
  const auto topo = topo::build_single_server(4);
  const auto groups = topo::extract_groups(topo);
  const sim::Simulator sim(groups);
  const sim::Schedule s = sample_schedule();
  const sim::Schedule parsed = from_xml(to_xml(s, 4));
  EXPECT_DOUBLE_EQ(sim.run(s).makespan, sim.run(parsed).makespan);
}

TEST(Xml, EmitsRuntimeParameters) {
  XmlOptions opts;
  opts.name = "ag16";
  opts.protocol = "LL128";
  opts.channels = 4;
  const std::string xml = to_xml(sample_schedule(), 4, opts);
  EXPECT_NE(xml.find("proto=\"LL128\""), std::string::npos);
  EXPECT_NE(xml.find("nchannels=\"4\""), std::string::npos);
}

TEST(Xml, ParserRejectsMalformedInput) {
  EXPECT_THROW(from_xml("not xml"), std::invalid_argument);
  EXPECT_THROW(from_xml("<notalgo></notalgo>"), std::invalid_argument);
  EXPECT_THROW(from_xml("<algo name=\"x\"><send step=\"0\" /></algo>"), std::invalid_argument);
  // Send referencing an unknown piece.
  EXPECT_THROW(from_xml("<algo name=\"x\"><gpu id=\"0\"><send step=\"0\" piece=\"7\" "
                        "dst=\"1\" dim=\"0\" phase=\"0\" /></gpu></algo>"),
               std::invalid_argument);
}

TEST(Xml, ParserRejectsTruncatedDocument) {
  // Any prefix of a valid document that cuts the closing </algo> must throw
  // rather than parse as a shorter schedule (a torn artifact file would
  // otherwise execute partially).
  const std::string xml = to_xml(sample_schedule(), 4);
  const std::size_t close = xml.rfind("</algo>");
  ASSERT_NE(close, std::string::npos);
  EXPECT_THROW(from_xml(xml.substr(0, close)), std::invalid_argument);
  // Cut mid-tag as well.
  EXPECT_THROW(from_xml(xml.substr(0, close / 2)), std::invalid_argument);
  // The intact document still parses.
  EXPECT_NO_THROW(from_xml(xml));
}

TEST(Xml, ParserRejectsUnknownOpKind) {
  EXPECT_THROW(from_xml("<algo name=\"x\" ngpus=\"2\"><gpu id=\"0\">"
                        "<teleport step=\"0\" piece=\"0\" dst=\"1\" dim=\"0\" phase=\"0\" />"
                        "</gpu></algo>"),
               std::invalid_argument);
}

TEST(Xml, ParserRejectsOutOfRangeRanks) {
  // <gpu id> beyond the declared ngpus.
  EXPECT_THROW(from_xml("<algo name=\"x\" ngpus=\"2\"><gpu id=\"2\"></gpu></algo>"),
               std::invalid_argument);
  EXPECT_THROW(from_xml("<algo name=\"x\" ngpus=\"2\"><gpu id=\"-1\"></gpu></algo>"),
               std::invalid_argument);
  // <send dst> beyond the declared ngpus.
  EXPECT_THROW(
      from_xml("<algo name=\"x\" ngpus=\"2\">"
               "<pieces><piece id=\"0\" chunk=\"0\" bytes=\"1024\" origin=\"0\" reduce=\"0\" "
               "contributors=\"\" /></pieces>"
               "<gpu id=\"0\"><send step=\"0\" piece=\"0\" dst=\"5\" dim=\"0\" phase=\"0\" />"
               "</gpu></algo>"),
      std::invalid_argument);
  // In range parses fine.
  EXPECT_NO_THROW(
      from_xml("<algo name=\"x\" ngpus=\"2\">"
               "<pieces><piece id=\"0\" chunk=\"0\" bytes=\"1024\" origin=\"0\" reduce=\"0\" "
               "contributors=\"\" /></pieces>"
               "<gpu id=\"0\"><send step=\"0\" piece=\"0\" dst=\"1\" dim=\"0\" phase=\"0\" />"
               "</gpu></algo>"));
}

}  // namespace
}  // namespace syccl::runtime
