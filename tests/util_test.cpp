// Tests for utility primitives: RNG determinism, thread pool, timers.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "util/log.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace syccl::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, BoundsRespected) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(10), 10u);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const auto v = r.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, CoversRange) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ChunkedDispatchCoversEveryIndexExactlyOnce) {
  // Chunked dispatch claims indices from a shared counter; repeated rounds
  // shake out lost or doubly-claimed indices.
  ThreadPool pool(4);
  for (int round = 0; round < 25; ++round) {
    std::vector<std::atomic<int>> hits(517);
    pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ConcurrentCallersShareWorkers) {
  // Several external threads issue batches against the same pool; each batch
  // must complete exactly (the caller can always finish its batch alone).
  ThreadPool pool(3);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back(
        [&] { pool.parallel_for(100, [&](std::size_t) { total.fetch_add(1); }); });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 400);
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  double t1 = sw.elapsed_seconds();
  EXPECT_GE(t1, 0.0);
  sw.reset();
  EXPECT_LE(sw.elapsed_seconds(), t1 + 1.0);
}

TEST(PhaseTimer, Accumulates) {
  PhaseTimer pt;
  pt.add(0, 1.5);
  pt.add(0, 0.5);
  pt.add(3, 2.0);
  EXPECT_DOUBLE_EQ(pt.total(0), 2.0);
  EXPECT_DOUBLE_EQ(pt.total(3), 2.0);
  EXPECT_DOUBLE_EQ(pt.grand_total(), 4.0);
  EXPECT_THROW(pt.add(99, 1.0), std::out_of_range);
}

TEST(Log, LevelGate) {
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  SYCCL_INFO << "suppressed";  // must not crash
  set_log_level(LogLevel::Warn);
}

}  // namespace
}  // namespace syccl::util
