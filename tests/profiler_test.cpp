// Tests for the network profiler: fitted α/β must recover the topology's
// ground-truth link parameters.
#include <gtest/gtest.h>

#include "profiler/profiler.h"
#include "topo/builders.h"

namespace syccl::profiler {
namespace {

TEST(Fit, RecoversExactLine) {
  // t = 5e-6 + 2e-9·s exactly.
  std::vector<double> sizes{1e3, 1e4, 1e5, 1e6};
  std::vector<double> times;
  for (double s : sizes) times.push_back(5e-6 + 2e-9 * s);
  const LinkProfile p = fit_alpha_beta(sizes, times);
  EXPECT_NEAR(p.alpha, 5e-6, 1e-12);
  EXPECT_NEAR(p.beta, 2e-9, 1e-18);
  EXPECT_NEAR(p.r_squared, 1.0, 1e-9);
}

TEST(Fit, RejectsDegenerateInput) {
  EXPECT_THROW(fit_alpha_beta({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(fit_alpha_beta({1.0, 1.0}, {2.0, 3.0}), std::invalid_argument);
  EXPECT_THROW(fit_alpha_beta({1.0, 2.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(fit_alpha_beta({}, {}), std::invalid_argument);
}

TEST(Fit, RejectsAllIdenticalProbeSizes) {
  // Vertical line: any number of samples at one size has no defined slope,
  // even when the times differ and even at large n.
  const std::vector<double> sizes(8, 4096.0);
  std::vector<double> times;
  for (int i = 0; i < 8; ++i) times.push_back(1e-6 * (i + 1));
  EXPECT_THROW(fit_alpha_beta(sizes, times), std::invalid_argument);
}

TEST(Fit, ExactlyTwoSamplesIsAnExactFit) {
  // n = 2 determines the line uniquely: residuals are zero by construction,
  // so the fit must pass through both points with r² = 1.
  const LinkProfile p = fit_alpha_beta({1e3, 1e6}, {3e-6, 1.002e-3});
  EXPECT_NEAR(p.alpha + p.beta * 1e3, 3e-6, 1e-15);
  EXPECT_NEAR(p.alpha + p.beta * 1e6, 1.002e-3, 1e-12);
  EXPECT_EQ(p.samples, 2);
  EXPECT_DOUBLE_EQ(p.r_squared, 1.0);
}

TEST(Fit, ZeroVarianceTimesFitAsFlatLine) {
  // All probes took the same time: β must be (numerically) zero, α the
  // common time, and the ss_tot == 0 guard must report r² = 1 rather than
  // divide by zero.
  const LinkProfile p = fit_alpha_beta({1e3, 2e3, 4e3, 8e3}, {7e-6, 7e-6, 7e-6, 7e-6});
  EXPECT_NEAR(p.beta, 0.0, 1e-18);
  EXPECT_NEAR(p.alpha, 7e-6, 1e-12);
  EXPECT_DOUBLE_EQ(p.r_squared, 1.0);
}

TEST(Profiler, PingMatchesAlphaBetaModel) {
  const auto topo = topo::build_single_server(4, {1e-6, 1e9});
  const auto groups = topo::extract_groups(topo);
  // α + β·s with α = 1 µs, β = 1 ns/B.
  EXPECT_NEAR(measure_ping(groups, 0, 0, 1000.0), 2e-6, 1e-12);
  EXPECT_NEAR(measure_ping(groups, 0, 0, 2000.0), 3e-6, 1e-12);
}

TEST(Profiler, RecoversH800LinkClasses) {
  const auto topo = topo::build_h800_cluster(2);
  const auto profiles = profile_topology(topo);
  ASSERT_EQ(profiles.size(), 3u);  // nvlink, rail, spine

  // Dimension 0: NVLink ≈ 180 GB/s.
  EXPECT_NEAR(1.0 / profiles[0].beta, 180e9, 5e9);
  // Dimension 1: 400G NIC ≈ 50 GB/s bottleneck.
  EXPECT_NEAR(1.0 / profiles[1].beta, 50e9, 5e9);
  // Latency ordering: network paths have higher α than NVLink.
  EXPECT_LT(profiles[0].alpha, profiles[1].alpha);
  EXPECT_LE(profiles[1].alpha, profiles[2].alpha + 1e-9);
  for (const auto& p : profiles) EXPECT_GT(p.r_squared, 0.999);
}

TEST(Profiler, CustomProbeSizes) {
  const auto topo = topo::build_single_server(2);
  ProfilerOptions opts;
  opts.probe_sizes = {1e4, 1e6};
  const auto profiles = profile_topology(topo, opts);
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].samples, 2);
}

}  // namespace
}  // namespace syccl::profiler
