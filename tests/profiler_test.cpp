// Tests for the network profiler: fitted α/β must recover the topology's
// ground-truth link parameters.
#include <gtest/gtest.h>

#include "profiler/profiler.h"
#include "topo/builders.h"

namespace syccl::profiler {
namespace {

TEST(Fit, RecoversExactLine) {
  // t = 5e-6 + 2e-9·s exactly.
  std::vector<double> sizes{1e3, 1e4, 1e5, 1e6};
  std::vector<double> times;
  for (double s : sizes) times.push_back(5e-6 + 2e-9 * s);
  const LinkProfile p = fit_alpha_beta(sizes, times);
  EXPECT_NEAR(p.alpha, 5e-6, 1e-12);
  EXPECT_NEAR(p.beta, 2e-9, 1e-18);
  EXPECT_NEAR(p.r_squared, 1.0, 1e-9);
}

TEST(Fit, RejectsDegenerateInput) {
  EXPECT_THROW(fit_alpha_beta({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(fit_alpha_beta({1.0, 1.0}, {2.0, 3.0}), std::invalid_argument);
  EXPECT_THROW(fit_alpha_beta({1.0, 2.0}, {2.0}), std::invalid_argument);
}

TEST(Profiler, PingMatchesAlphaBetaModel) {
  const auto topo = topo::build_single_server(4, {1e-6, 1e9});
  const auto groups = topo::extract_groups(topo);
  // α + β·s with α = 1 µs, β = 1 ns/B.
  EXPECT_NEAR(measure_ping(groups, 0, 0, 1000.0), 2e-6, 1e-12);
  EXPECT_NEAR(measure_ping(groups, 0, 0, 2000.0), 3e-6, 1e-12);
}

TEST(Profiler, RecoversH800LinkClasses) {
  const auto topo = topo::build_h800_cluster(2);
  const auto profiles = profile_topology(topo);
  ASSERT_EQ(profiles.size(), 3u);  // nvlink, rail, spine

  // Dimension 0: NVLink ≈ 180 GB/s.
  EXPECT_NEAR(1.0 / profiles[0].beta, 180e9, 5e9);
  // Dimension 1: 400G NIC ≈ 50 GB/s bottleneck.
  EXPECT_NEAR(1.0 / profiles[1].beta, 50e9, 5e9);
  // Latency ordering: network paths have higher α than NVLink.
  EXPECT_LT(profiles[0].alpha, profiles[1].alpha);
  EXPECT_LE(profiles[1].alpha, profiles[2].alpha + 1e-9);
  for (const auto& p : profiles) EXPECT_GT(p.r_squared, 0.999);
}

TEST(Profiler, CustomProbeSizes) {
  const auto topo = topo::build_single_server(2);
  ProfilerOptions opts;
  opts.probe_sizes = {1e4, 1e6};
  const auto profiles = profile_topology(topo, opts);
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].samples, 2);
}

}  // namespace
}  // namespace syccl::profiler
