// Degenerate and adversarial cases for the multi-commodity flow relaxation
// (lp/flow_relax.h), plus a randomized soundness cross-check: the flow root
// bound must never exceed the exact MILP optimum, and an undeliverable
// demand must be reported Infeasible — never as a finite bound.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "lp/flow_relax.h"
#include "milp/branch_and_bound.h"
#include "solver/milp_scheduler.h"
#include "solver/tau.h"
#include "topo/builders.h"
#include "topo/groups.h"

namespace syccl::lp {
namespace {

struct GroupFixture {
  topo::Topology topo;
  topo::TopologyGroups groups;
  explicit GroupFixture(int n) : topo(topo::build_single_server(n)), groups(topo::extract_groups(topo)) {}
  const topo::GroupTopology& group() const { return groups.dims[0].groups[0]; }
};

solver::SubDemand demand_of(const topo::GroupTopology& g, double bytes,
                            std::vector<solver::DemandPiece> pieces) {
  solver::SubDemand d;
  d.group = &g;
  d.piece_bytes = bytes;
  d.pieces = std::move(pieces);
  return d;
}

/// Root box of an encoding (the bound vectors branch and bound starts from).
std::pair<std::vector<double>, std::vector<double>> root_box(const solver::SubDemandEncoding& e) {
  std::vector<double> lo = e.problem.lp.lower;
  std::vector<double> hi = e.problem.lp.upper;
  lo.resize(static_cast<std::size_t>(e.problem.lp.num_vars), 0.0);
  hi.resize(static_cast<std::size_t>(e.problem.lp.num_vars), kInf);
  return {std::move(lo), std::move(hi)};
}

TEST(FlowRelax, SingleLinkBoundsTheOptimum) {
  GroupFixture f(2);
  const auto d = demand_of(f.group(), 1 << 20, {{0, {0}, {1}}});
  const auto enc = solver::encode_sub_demand_milp(d, 1.0);
  FlowRelaxation fr(d, enc.params, enc.horizon, enc.flow_map, solver::kMilpSendCost);
  EXPECT_EQ(fr.num_commodities(), 1);
  EXPECT_EQ(fr.num_arcs(), 1);

  const auto [lo, hi] = root_box(enc);
  const auto root = fr.root_bound(lo, hi);
  ASSERT_FALSE(root.infeasible);

  milp::MilpSolution exact = milp::solve(enc.problem, {}, enc.incumbent);
  ASSERT_EQ(exact.status, milp::MilpStatus::Optimal);
  EXPECT_LE(root.bound, exact.objective + 1e-9);
  // One send over one link: the static projection loses nothing here.
  EXPECT_NEAR(root.bound, exact.objective, 1e-9);
}

TEST(FlowRelax, DisconnectedDemandIsInfeasibleNotFinite) {
  GroupFixture f(3);
  // A destination whose every inbound send has been branched away can never
  // be served: the relaxation must prove it, not report a finite bound.
  const auto d = demand_of(f.group(), 1 << 20, {{0, {0}, {1, 2}}});
  const auto enc = solver::encode_sub_demand_milp(d, 1.0);
  FlowRelaxation fr(d, enc.params, enc.horizon, enc.flow_map, solver::kMilpSendCost);
  auto [lo, hi] = root_box(enc);
  for (const auto& arc : enc.flow_map.arcs) {
    if (arc.to == 2) {
      for (int v : arc.x_vars) hi[static_cast<std::size_t>(v)] = 0.0;
    }
  }
  EXPECT_TRUE(fr.node_bound(lo, hi).infeasible);
  EXPECT_TRUE(fr.root_bound(lo, hi).infeasible);
}

TEST(FlowRelax, SourcelessPieceIsStaticallyInfeasible) {
  GroupFixture f(2);
  // Hand-built projection (validate() would reject a sourceless piece, but
  // branch and bound boxes can degenerate to the equivalent): a required
  // destination with no inbound arcs at all.
  solver::SubDemand d = demand_of(f.group(), 1 << 20, {{0, {}, {1}}});
  FlowVarMap map;
  map.done_vars = {0, 1};
  FlowRelaxation fr(d, solver::EpochParams{}, 2, map, solver::kMilpSendCost);
  const std::vector<double> lo(2, 0.0), hi(2, 1.0);
  EXPECT_TRUE(fr.root_bound(lo, hi).infeasible);
  EXPECT_TRUE(fr.node_bound(lo, hi).infeasible);
}

TEST(FlowRelax, ZeroDemandCommodityIsElided) {
  GroupFixture f(2);
  // Piece 0 is a real commodity; piece 1's destination already holds the
  // piece (dsts ⊆ srcs) and must contribute no commodities or LP arcs.
  solver::SubDemand d = demand_of(f.group(), 1 << 20,
                                  {{0, {0}, {1}}, {1, {0, 1}, {1}}});
  // Layout: vars 0,1 = piece-0 sends; var 2 = piece-1 send; vars 3,4 = done.
  FlowVarMap map;
  map.arcs.push_back({0, 0, 1, {0, 1}});
  map.arcs.push_back({1, 0, 1, {2}});
  map.done_vars = {3, 4};
  const auto ep = solver::derive_epoch_params(f.group(), 1 << 20, 1.0);
  FlowRelaxation fr(d, ep, 2, map, solver::kMilpSendCost);
  EXPECT_EQ(fr.num_commodities(), 1);
  EXPECT_EQ(fr.num_arcs(), 1);

  std::vector<double> lo(5, 0.0), hi(5, 1.0);
  const auto base = fr.root_bound(lo, hi);
  ASSERT_FALSE(base.infeasible);
  // Forcing the elided piece's send still raises F_min by one send cost.
  lo[2] = 1.0;
  const auto forced = fr.root_bound(lo, hi);
  ASSERT_FALSE(forced.infeasible);
  EXPECT_NEAR(forced.bound - base.bound, solver::kMilpSendCost, 1e-12);
}

TEST(FlowRelax, RandomCrossCheckBoundNeverExceedsOptimum) {
  std::mt19937 rng(7);
  for (int seed = 0; seed < 50; ++seed) {
    const int n = 3 + static_cast<int>(rng() % 3);  // 3..5 members
    GroupFixture f(n);
    std::vector<solver::DemandPiece> pieces;
    const int np = 1 + static_cast<int>(rng() % 2);
    for (int p = 0; p < np; ++p) {
      solver::DemandPiece piece;
      piece.id = p;
      const int src = static_cast<int>(rng() % n);
      piece.srcs = {src};
      for (int m = 0; m < n; ++m) {
        if (m != src && rng() % 2 == 0) piece.dsts.push_back(m);
      }
      if (piece.dsts.empty()) piece.dsts.push_back((src + 1) % n);
      pieces.push_back(std::move(piece));
    }
    const auto d = demand_of(f.group(), 1 << 20, std::move(pieces));
    const auto enc = solver::encode_sub_demand_milp(d, 1.0);
    if (enc.incumbent.empty()) continue;

    milp::MilpOptions exact_opts;
    exact_opts.node_limit = 200000;
    exact_opts.time_limit_s = 30.0;
    const milp::MilpSolution exact = milp::solve(enc.problem, exact_opts, enc.incumbent);
    ASSERT_EQ(exact.status, milp::MilpStatus::Optimal) << "seed " << seed;

    FlowRelaxation fr(d, enc.params, enc.horizon, enc.flow_map, solver::kMilpSendCost);
    const auto [lo, hi] = root_box(enc);
    const auto root = fr.root_bound(lo, hi);
    ASSERT_FALSE(root.infeasible) << "seed " << seed;
    EXPECT_LE(root.bound, exact.objective + 1e-9) << "seed " << seed;

    // The flow-assisted solve proves the same objective.
    FlowRelaxation fr2(d, enc.params, enc.horizon, enc.flow_map, solver::kMilpSendCost);
    milp::MilpOptions flow_opts = exact_opts;
    flow_opts.flow = &fr2;
    const milp::MilpSolution assisted = milp::solve(enc.problem, flow_opts, enc.incumbent);
    ASSERT_EQ(assisted.status, milp::MilpStatus::Optimal) << "seed " << seed;
    EXPECT_NEAR(assisted.objective, exact.objective, 1e-9) << "seed " << seed;
    EXPECT_LE(assisted.flow_root_bound, exact.objective + 1e-9) << "seed " << seed;
    EXPECT_LE(assisted.nodes_explored, exact.nodes_explored) << "seed " << seed;
  }
}

}  // namespace
}  // namespace syccl::lp
