// Tests for the data-plane executor: byte-level semantics of schedules,
// including the end-to-end check that SyCCL- and baseline-generated
// schedules move the right data (the strongest integration test in the
// repo).
#include <gtest/gtest.h>

#include "baselines/nccl.h"
#include "coll/collective.h"
#include "core/synthesizer.h"
#include "runtime/executor.h"
#include "runtime/xml.h"
#include "topo/builders.h"

namespace syccl::runtime {
namespace {

TEST(Executor, BroadcastDeliversExactPayload) {
  const auto bc = coll::make_broadcast(4, 4096, 0);
  sim::Schedule s;
  s.pieces = sim::pieces_for(bc);
  s.add_op(0, 0, 1);
  s.add_op(0, 1, 2);
  s.add_op(0, 2, 3);
  const auto r = execute_and_verify(s, bc);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());
  EXPECT_DOUBLE_EQ(r.bytes_moved, 3 * 4096.0);
}

TEST(Executor, DetectsSendBeforeReceive) {
  const auto bc = coll::make_broadcast(3, 999, 0);
  sim::Schedule s;
  s.pieces = sim::pieces_for(bc);
  s.add_op(0, 1, 2);  // rank 1 has nothing yet
  const auto r = execute_and_verify(s, bc);
  EXPECT_FALSE(r.ok);
}

TEST(Executor, DetectsMissingCoverage) {
  const auto ag = coll::make_allgather(3, 3000);
  sim::Schedule s;
  s.pieces = sim::pieces_for(ag);
  s.add_op(0, 0, 1);  // chunk 0 only reaches rank 1
  const auto r = execute_and_verify(s, ag);
  EXPECT_FALSE(r.ok);
  EXPECT_GE(r.errors.size(), 4u);
}

TEST(Executor, ReduceSumsElementwise) {
  const auto red = coll::make_reduce(3, 3000, 0);
  sim::Schedule s;
  s.pieces = sim::pieces_for(red);
  s.add_op(0, 2, 1);  // 1 accumulates {1,2}
  s.add_op(0, 1, 0);  // 0 accumulates {0,1,2}
  const auto r = execute_and_verify(s, red);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());
  EXPECT_GT(r.reductions, 0u);
}

TEST(Executor, DetectsDoubleCountedContributor) {
  const auto red = coll::make_reduce(3, 3000, 0);
  sim::Schedule s;
  s.pieces = sim::pieces_for(red);
  s.add_op(0, 2, 1);  // 1 holds {1,2}
  s.add_op(0, 2, 0);  // 0 holds {0,2}
  s.add_op(0, 1, 0);  // merging {1,2} into {0,2}: 2 double-counted
  const auto r = execute_and_verify(s, red);
  EXPECT_FALSE(r.ok);
}

TEST(Executor, PatternIsDiscriminating) {
  EXPECT_NE(executor_pattern(1, 2, 0), executor_pattern(2, 1, 0));
  EXPECT_NE(executor_pattern(0, 0, 1), executor_pattern(0, 0, 2));
}

TEST(Executor, SycclAllGatherMovesCorrectData) {
  const auto topo = topo::build_h800_cluster(2);
  core::Synthesizer synth(topo);
  const auto ag = coll::make_allgather(16, 16 << 20);
  const auto result = synth.synthesize(ag);
  const auto r = execute_and_verify(result.schedule, ag);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());
}

TEST(Executor, SycclReduceScatterSumsCorrectly) {
  const auto topo = topo::build_h800_cluster(2);
  core::Synthesizer synth(topo);
  const auto rs = coll::make_reduce_scatter(16, 16 << 20);
  const auto result = synth.synthesize(rs);
  const auto r = execute_and_verify(result.schedule, rs);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());
}

TEST(Executor, SycclAllToAllMovesCorrectData) {
  const auto topo = topo::build_h800_cluster(2);
  core::Synthesizer synth(topo);
  const auto a2a = coll::make_alltoall(16, 16 << 20);
  const auto result = synth.synthesize(a2a);
  const auto r = execute_and_verify(result.schedule, a2a);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());
}

TEST(Executor, NcclBaselinesMoveCorrectData) {
  const auto topo = topo::build_h800_cluster(2);
  const auto groups = topo::extract_groups(topo);
  const auto ag = coll::make_allgather(16, 16 << 20);
  EXPECT_TRUE(execute_and_verify(baselines::nccl_ring_allgather(ag, groups), ag).ok);
  const auto rs = coll::make_reduce_scatter(16, 16 << 20);
  EXPECT_TRUE(execute_and_verify(baselines::nccl_ring_reduce_scatter(rs, groups), rs).ok);
  const auto a2a = coll::make_alltoall(16, 16 << 20);
  EXPECT_TRUE(execute_and_verify(baselines::nccl_alltoall(a2a, groups), a2a).ok);
}

TEST(Executor, XmlRoundTripPreservesSemantics) {
  // The full artifact path: synthesize → XML → parse → execute.
  const auto topo = topo::build_h800_cluster(2);
  core::Synthesizer synth(topo);
  const auto ag = coll::make_allgather(16, 4 << 20);
  const auto result = synth.synthesize(ag);
  const auto parsed = from_xml(to_xml(result.schedule, 16));
  const auto r = execute_and_verify(parsed, ag);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors.front());
}

}  // namespace
}  // namespace syccl::runtime
