// Tests for the topology-mutation API: link degradation, link/NIC failure,
// delta bookkeeping, reachability checks, and how mutations flow through
// group extraction.
#include <gtest/gtest.h>

#include "topo/builders.h"
#include "topo/groups.h"
#include "topo/mutate.h"

namespace syccl::topo {
namespace {

TEST(Mutate, DegradeLinkScalesParamsAndKeepsIds) {
  const Topology base = build_single_server(4);
  const NodeId gpu0 = node_by_name(base, "gpu0");
  const NodeId sw = node_by_name(base, "nvswitch0");
  const LinkId old_id = base.find_link(gpu0, sw);
  ASSERT_NE(old_id, kInvalidLink);
  const Link before = base.link(old_id);

  const MutationResult m = degrade_link(base, gpu0, sw, 2.0, 4.0);
  EXPECT_EQ(m.topo.num_links(), base.num_links());
  EXPECT_EQ(m.topo.num_nodes(), base.num_nodes());
  // Pure degradation: identity link map, one changed link, nothing removed.
  ASSERT_EQ(m.delta.changed_links.size(), 1u);
  EXPECT_TRUE(m.delta.removed_links.empty());
  EXPECT_EQ(m.delta.link_map[static_cast<std::size_t>(old_id)], old_id);
  const Link& after = m.topo.link(m.delta.changed_links[0]);
  EXPECT_DOUBLE_EQ(after.alpha, before.alpha * 2.0);
  EXPECT_DOUBLE_EQ(after.beta, before.beta * 4.0);
  // Every other link is untouched.
  for (const Link& l : base.links()) {
    if (l.id == old_id) continue;
    const Link& nl = m.topo.link(m.delta.link_map[static_cast<std::size_t>(l.id)]);
    EXPECT_DOUBLE_EQ(nl.alpha, l.alpha);
    EXPECT_DOUBLE_EQ(nl.beta, l.beta);
  }
}

TEST(Mutate, DegradeDuplexScalesBothDirections) {
  const Topology base = build_single_server(4);
  const NodeId gpu1 = node_by_name(base, "gpu1");
  const NodeId sw = node_by_name(base, "nvswitch0");
  const MutationResult m = degrade_duplex(base, gpu1, sw, 1.0, 3.0);
  ASSERT_EQ(m.delta.changed_links.size(), 2u);
  for (LinkId l : m.delta.changed_links) {
    EXPECT_DOUBLE_EQ(m.topo.link(l).beta, base.link(l).beta * 3.0);
  }
}

TEST(Mutate, DegradationChangesOnlyTouchedGroupSignatures) {
  MultiRailSpec spec;
  spec.num_servers = 2;
  spec.gpus_per_server = 2;
  const Topology base = build_multi_rail(spec);
  const MutationResult m =
      degrade_duplex(base, node_by_name(base, "gpu1.0"), node_by_name(base, "nvswitch1"),
                     1.0, 8.0);

  const TopologyGroups gb = extract_groups(base);
  const TopologyGroups gm = extract_groups(m.topo);
  ASSERT_EQ(gb.dims.size(), gm.dims.size());
  int changed = 0, unchanged = 0;
  for (std::size_t d = 0; d < gb.dims.size(); ++d) {
    ASSERT_EQ(gb.dims[d].groups.size(), gm.dims[d].groups.size());
    for (std::size_t g = 0; g < gb.dims[d].groups.size(); ++g) {
      if (gb.dims[d].groups[g].signature() == gm.dims[d].groups[g].signature()) {
        ++unchanged;
      } else {
        ++changed;
      }
    }
  }
  // Exactly the degraded server's NVLink group changes; all other groups
  // (other server, both rails) keep their signatures — this is what lets
  // incremental re-synthesis reuse their cached sub-schedules.
  EXPECT_EQ(changed, 1);
  EXPECT_GE(unchanged, 3);
  // The modal-β bandwidth share is unaffected by the minority degradation.
  for (std::size_t d = 0; d < gb.dims.size(); ++d) {
    EXPECT_DOUBLE_EQ(gb.dims[d].bandwidth_share, gm.dims[d].bandwidth_share);
  }
}

TEST(Mutate, FailLinkRemovesDuplexPairAndRenumbers) {
  MultiRailSpec spec;
  spec.num_servers = 2;
  spec.gpus_per_server = 2;
  const Topology base = build_multi_rail(spec);
  // Fail one NIC->leaf pair; the GPU keeps NVLink + the other server's rail.
  const NodeId nic = node_by_name(base, "nic0.1");
  const NodeId leaf = node_by_name(base, "leaf1");
  const MutationResult m = fail_link(base, nic, leaf);
  EXPECT_EQ(m.delta.removed_links.size(), 2u);  // duplex pair
  EXPECT_EQ(m.topo.num_links(), base.num_links() - 2);
  for (LinkId old_id : m.delta.removed_links) {
    EXPECT_EQ(m.delta.link_map[static_cast<std::size_t>(old_id)], kInvalidLink);
  }
  // Surviving links keep their parameters under renumbering.
  for (const Link& l : base.links()) {
    const LinkId nl = m.delta.link_map[static_cast<std::size_t>(l.id)];
    if (nl == kInvalidLink) continue;
    EXPECT_DOUBLE_EQ(m.topo.link(nl).beta, l.beta);
    EXPECT_EQ(m.topo.link(nl).src, l.src);
    EXPECT_EQ(m.topo.link(nl).dst, l.dst);
  }
  // The mutated topology still group-extracts.
  EXPECT_NO_THROW(extract_groups(m.topo));
}

TEST(Mutate, FailNicDropsAllNicLinks) {
  const Topology base = build_a100_testbed(8);
  const NodeId nic = node_by_name(base, "nic0.0");
  const std::size_t nic_links =
      base.out_links(nic).size() + base.in_links(nic).size();
  ASSERT_GT(nic_links, 0u);
  const MutationResult m = fail_nic(base, nic);
  EXPECT_EQ(m.delta.removed_links.size(), nic_links);
  EXPECT_NO_THROW(extract_groups(m.topo));
}

TEST(Mutate, FailLinkThrowsWhenItDisconnects) {
  // Single server: removing a GPU's only uplink strands it.
  const Topology base = build_single_server(2);
  EXPECT_THROW(
      fail_link(base, node_by_name(base, "gpu0"), node_by_name(base, "nvswitch0")),
      std::runtime_error);
}

TEST(Mutate, ErrorPaths) {
  const Topology base = build_single_server(4);
  const NodeId gpu0 = node_by_name(base, "gpu0");
  const NodeId gpu1 = node_by_name(base, "gpu1");
  // No direct GPU-GPU link in the star topology.
  EXPECT_THROW(degrade_link(base, gpu0, gpu1, 2.0, 2.0), std::invalid_argument);
  EXPECT_THROW(degrade_link(base, gpu0, node_by_name(base, "nvswitch0"), 0.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW(fail_link(base, gpu0, gpu1), std::invalid_argument);
  // fail_nic on a non-NIC node.
  EXPECT_THROW(fail_nic(base, gpu0), std::invalid_argument);
  EXPECT_THROW(node_by_name(base, "no-such-node"), std::invalid_argument);
}

TEST(Mutate, DeltaDescribe) {
  const Topology base = build_single_server(4);
  const MutationResult m =
      degrade_link(base, node_by_name(base, "gpu0"), node_by_name(base, "nvswitch0"), 2, 2);
  EXPECT_NE(m.delta.describe().find("degraded 1 link"), std::string::npos);
  EXPECT_EQ(TopologyDelta{}.describe(), "no-op");
}

}  // namespace
}  // namespace syccl::topo
