// Differential schedule fuzzer (see fuzz/differential.h).
//
//   fuzz_schedules --cases 500 --seed 1              sweep 500 seeded cases
//   fuzz_schedules --replay 0xDEADBEEF               re-run one case, verbose
//   fuzz_schedules --corpus tests/corpus/seeds.txt   replay a pinned corpus
//   fuzz_schedules --synth-every 4                   synthesizer on every 4th case
//
// Exit code 0 iff every case passed. On failure, the offending seed is
// printed in a form directly usable with --replay; pin it in
// tests/corpus/seeds.txt once the bug is fixed.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/differential.h"
#include "util/cli.h"
#include "util/stopwatch.h"

namespace {

struct Args {
  std::uint64_t cases = 100;
  std::uint64_t seed = 1;  ///< base seed; case i uses seed + i
  std::vector<std::uint64_t> replay;
  std::string corpus;
  int synth_every = 0;  ///< 0 = never run the synthesizer
  int mutants = 2;
  bool degraded = false;  ///< degraded-topology axis (random fault per case)
  bool verbose = false;
  std::string trace_out;  ///< Chrome trace of the first divergent case
};

void print_usage() {
  std::cerr << "usage: fuzz_schedules [--cases N] [--seed S] [--synth-every K] "
               "[--mutants M] [--replay SEED] [--corpus FILE] [--degraded] "
               "[--trace-out FILE] [--verbose]\n";
}

using syccl::util::cli::parse_u64;

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto need_u64 = [&]() -> std::optional<std::uint64_t> {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        return std::nullopt;
      }
      const std::string v = argv[++i];
      const auto parsed = parse_u64(v);
      if (!parsed) std::cerr << "bad value for " << a << ": '" << v << "'\n";
      return parsed;
    };
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--cases") {
      const auto v = need_u64();
      if (!v) return false;
      args.cases = *v;
    } else if (a == "--seed") {
      const auto v = need_u64();
      if (!v) return false;
      args.seed = *v;
    } else if (a == "--replay") {
      const auto v = need_u64();
      if (!v) return false;
      args.replay.push_back(*v);
      args.verbose = true;
    } else if (a == "--corpus") {
      const char* v = need_value();
      if (!v) return false;
      args.corpus = v;
    } else if (a == "--synth-every") {
      const auto v = need_u64();
      if (!v) return false;
      args.synth_every = static_cast<int>(*v);
    } else if (a == "--mutants") {
      const auto v = need_u64();
      if (!v) return false;
      args.mutants = static_cast<int>(*v);
    } else if (a == "--degraded") {
      args.degraded = true;
    } else if (a == "--verbose") {
      args.verbose = true;
    } else if (a == "--trace-out") {
      const char* v = need_value();
      if (!v) return false;
      args.trace_out = v;
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return false;
    }
  }
  return true;
}

/// Corpus format: one seed per line (decimal or 0x...), '#' comments.
std::vector<std::uint64_t> load_corpus(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open corpus file: " << path << "\n";
    std::exit(2);
  }
  std::vector<std::uint64_t> seeds;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string token;
    if (ls >> token) {
      const auto seed = parse_u64(token);
      if (!seed) {
        std::cerr << "bad seed in corpus " << path << ": '" << token << "'\n";
        std::exit(2);
      }
      seeds.push_back(*seed);
    }
  }
  return seeds;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    print_usage();
    return 2;
  }

  struct Job {
    std::uint64_t seed;
    bool with_synth;
    const char* origin;
  };
  std::vector<Job> jobs;
  for (const std::uint64_t s : args.replay) jobs.push_back({s, false, "replay"});
  if (!args.corpus.empty()) {
    for (const std::uint64_t s : load_corpus(args.corpus)) jobs.push_back({s, false, "corpus"});
  }
  if (args.replay.empty()) {
    for (std::uint64_t i = 0; i < args.cases; ++i) {
      const bool synth = args.synth_every > 0 && i % static_cast<std::uint64_t>(args.synth_every) == 0;
      jobs.push_back({args.seed + i, synth, "sweep"});
    }
  }

  std::uint64_t failed_cases = 0;
  std::uint64_t schedules = 0;
  std::uint64_t events = 0;
  bool trace_written = false;
  const syccl::util::Stopwatch clock;
  for (const Job& job : jobs) {
    syccl::fuzz::CaseOptions opts;
    opts.with_synthesizer = job.with_synth;
    opts.mutants = args.mutants;
    opts.degrade_topology = args.degraded;
    // Only the first divergent case dumps a timeline; once written, stop
    // paying for link-event recording.
    if (!trace_written) opts.trace_out = args.trace_out;
    syccl::fuzz::CaseResult r;
    try {
      r = syccl::fuzz::run_differential_case(job.seed, opts);
    } catch (const std::exception& e) {
      std::cerr << "FAIL seed " << job.seed << " (" << job.origin
                << "): harness exception: " << e.what() << "\n";
      ++failed_cases;
      continue;
    }
    schedules += static_cast<std::uint64_t>(r.schedules_checked);
    events += r.sim_events;
    if (!r.failures.empty()) {
      ++failed_cases;
      std::cerr << "FAIL seed " << job.seed << " (" << job.origin << "): " << r.desc << "\n";
      for (const auto& f : r.failures) std::cerr << "  " << f << "\n";
      std::cerr << "  replay with: fuzz_schedules --replay " << job.seed << "\n";
      if (r.trace_written) {
        trace_written = true;
        std::cerr << "  divergence timelines written to " << args.trace_out << "\n";
      }
    } else if (args.verbose) {
      std::cout << "ok seed " << job.seed << ": " << r.desc << " (" << r.schedules_checked
                << " schedules, " << r.sim_events << " events)\n";
    }
  }

  const double elapsed = clock.elapsed_seconds();
  std::cout << "fuzz_schedules: " << jobs.size() << " cases, " << schedules << " schedules, "
            << events << " simulated events, " << failed_cases << " failures\n";
  // Throughput over the whole differential loop (generation + production
  // simulator + oracle + comparison) — a coarse end-to-end trend line; the
  // engine-only number is bench_sim's job.
  std::cout << "fuzz_schedules: throughput "
            << static_cast<std::uint64_t>(elapsed > 0 ? events / elapsed : 0)
            << " events/sec over " << elapsed << " s\n";
  return failed_cases == 0 ? 0 : 1;
}
