// Traced end-to-end run: synthesize a collective on a named topology, dump a
// Chrome trace of the synthesis plus the winning schedule's per-link Gantt,
// and a metrics JSON scoped to the run.
//
//   syccl_trace --topo dgx16 --coll allreduce --bytes 64M
//   syccl_trace --topo h800x4 --coll allgather --bytes 256M --out /tmp/run
//
// Writes <out>/trace.json (load in Perfetto / chrome://tracing) and
// <out>/metrics.json. Default --out is the current directory.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "obs/scenario.h"
#include "util/cli.h"

namespace {

struct Args {
  syccl::obs::ScenarioSpec spec;
  std::string out_dir = ".";
  std::string trace_path;    ///< overrides <out>/trace.json when set
  std::string metrics_path;  ///< overrides <out>/metrics.json when set
};

void print_usage() {
  std::cerr << "usage: syccl_trace [--topo NAME] [--coll NAME] [--bytes N[K|M|G]]\n"
            << "                   [--threads N] [--tenants N] [--keep-cache] [--out DIR]\n"
            << "                   [--trace FILE] [--metrics FILE]\n"
            << "topologies: dgx16, h800x<servers>, a100x<gpus>, flat<gpus>, micro\n"
            << "            (append @degraded or @failnic for a faulty variant)\n"
            << "collectives: allreduce allgather reducescatter alltoall broadcast "
               "scatter gather reduce\n";
}

using syccl::util::cli::parse_bytes;
using syccl::util::cli::parse_int;

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--topo") {
      const char* v = need_value();
      if (!v) return false;
      args.spec.topo = v;
    } else if (a == "--coll") {
      const char* v = need_value();
      if (!v) return false;
      args.spec.coll = v;
    } else if (a == "--bytes") {
      const char* v = need_value();
      if (!v) return false;
      const auto bytes = parse_bytes(v);
      if (!bytes) {
        std::cerr << "bad value for --bytes: '" << v << "'\n";
        return false;
      }
      args.spec.bytes = *bytes;
    } else if (a == "--threads") {
      const char* v = need_value();
      if (!v) return false;
      const auto threads = parse_int(v, 0, 1 << 10);
      if (!threads) {
        std::cerr << "bad value for --threads: '" << v << "'\n";
        return false;
      }
      args.spec.num_threads = *threads;
    } else if (a == "--tenants") {
      const char* v = need_value();
      if (!v) return false;
      const auto tenants = parse_int(v, 1, 64);
      if (!tenants) {
        std::cerr << "bad value for --tenants: '" << v << "'\n";
        return false;
      }
      args.spec.tenants = *tenants;
    } else if (a == "--keep-cache") {
      args.spec.clear_solve_cache = false;
    } else if (a == "--out") {
      const char* v = need_value();
      if (!v) return false;
      args.out_dir = v;
    } else if (a == "--trace") {
      const char* v = need_value();
      if (!v) return false;
      args.trace_path = v;
    } else if (a == "--metrics") {
      const char* v = need_value();
      if (!v) return false;
      args.metrics_path = v;
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return false;
    }
  }
  if (args.trace_path.empty()) args.trace_path = args.out_dir + "/trace.json";
  if (args.metrics_path.empty()) args.metrics_path = args.out_dir + "/metrics.json";
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  out.close();
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    print_usage();
    return 2;
  }

  syccl::obs::ScenarioResult result;
  try {
    result = syccl::obs::run_traced_scenario(args.spec);
  } catch (const std::exception& e) {
    std::cerr << "syccl_trace: " << e.what() << "\n";
    return 1;
  }

  if (!write_file(args.trace_path, result.trace_json)) return 1;
  if (!write_file(args.metrics_path, result.metrics_json)) return 1;

  const auto& b = result.synthesis.breakdown;
  std::cout << "syccl_trace: " << args.spec.topo << " " << args.spec.coll << " "
            << args.spec.bytes << " bytes\n"
            << "  chosen:    " << result.synthesis.chosen << "\n"
            << "  predicted: " << result.synthesis.predicted_time * 1e6 << " us ("
            << result.sim.link_events.size() << " link events)\n"
            << "  synthesis: " << b.total_s << " s total, " << b.num_combinations
            << " combinations, " << b.num_solver_calls << " solver calls, "
            << b.cache_hits << "/" << b.cache_hits + b.cache_misses << " cache hits\n";
  if (args.spec.tenants > 1) {
    std::cout << "  contention: " << args.spec.tenants << " tenants, makespan "
              << result.contention.makespan * 1e6 << " us\n";
    for (const auto& t : result.contention.tenants) {
      std::cout << "    " << t.name << ": solo " << t.solo * 1e6 << " us, contended "
                << t.contended * 1e6 << " us (slowdown " << t.slowdown << "x)\n";
    }
  }
  std::cout << "  wrote " << args.trace_path << " and " << args.metrics_path << "\n";
  return 0;
}
