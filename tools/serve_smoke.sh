#!/bin/sh
# Two-process serve smoke, in two phases. Driven by ctest
# (syccl_serve_client_smoke).
#
# Phase 1 — happy path: start the server with a 2-request budget, run the
# client twice against it (cold miss, then a library hit), require the server
# to drain and exit 0.
#
# Phase 2 — crash recovery: restart the server on the same library, SIGKILL
# it while a synthesis request is in flight (a kill -9 mid-load, the case the
# crash-safe index exists for), then restart once more and require a
# rank-permuted re-request of the phase-1 scenario to be answered as a hit
# from the recovered library.
set -e
SERVE="$1"
CLIENT="$2"
DIR="$3"

SOCK="$DIR/serve_smoke.sock"
LIB="$DIR/serve_smoke_lib"
rm -rf "$LIB" "$SOCK"

wait_for_socket() {
  i=0
  while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "server socket never appeared" >&2
      kill "$SERVE_PID" 2>/dev/null || true
      exit 1
    fi
    sleep 0.1
  done
}

# ---- Phase 1: cold miss, then hit, then graceful drain ----
"$SERVE" --socket "$SOCK" --library "$LIB" --max-requests 2 &
SERVE_PID=$!
wait_for_socket

"$CLIENT" --socket "$SOCK" --topo flat4 --coll allgather --bytes 1M
"$CLIENT" --socket "$SOCK" --topo flat4 --coll allgather --bytes 1M \
  | tee /dev/stderr | grep -q "syccl_client: hit"

wait "$SERVE_PID"

# ---- Phase 2: SIGKILL mid-load, restart, recover, serve from cache ----
rm -f "$SOCK"
"$SERVE" --socket "$SOCK" --library "$LIB" &
SERVE_PID=$!
wait_for_socket

# A 16-GPU all-to-all synthesizes for long enough that the kill below lands
# while the server is mid-request. The client is expected to fail.
"$CLIENT" --socket "$SOCK" --topo dgx16 --coll alltoall --bytes 16M \
  --timeout 120 >/dev/null 2>&1 &
CLIENT_PID=$!
sleep 0.5
kill -9 "$SERVE_PID"
wait "$CLIENT_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true

# Restart on the killed library: recovery must reopen it (snapshot + journal
# replay, orphan adoption, quarantine — whatever the crash left behind) and
# still hold the phase-1 entry. A permuted re-request must be served from it:
# same canonical key, no fresh synthesis.
rm -f "$SOCK"
"$SERVE" --socket "$SOCK" --library "$LIB" --max-requests 1 &
SERVE_PID=$!
wait_for_socket

"$CLIENT" --socket "$SOCK" --topo flat4 --coll allgather --bytes 1M \
  --permute-seed 7 | tee /dev/stderr | grep -q "syccl_client: hit"

wait "$SERVE_PID"
