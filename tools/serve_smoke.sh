#!/bin/sh
# Two-process serve smoke: start the server with a 2-request budget, run the
# client twice against it (cold miss, then a library hit), require the server
# to drain and exit 0. Driven by ctest (syccl_serve_client_smoke).
set -e
SERVE="$1"
CLIENT="$2"
DIR="$3"

SOCK="$DIR/serve_smoke.sock"
LIB="$DIR/serve_smoke_lib"
rm -rf "$LIB" "$SOCK"

"$SERVE" --socket "$SOCK" --library "$LIB" --max-requests 2 &
SERVE_PID=$!

# Wait for the socket to appear (the server prints after listen()).
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "server socket never appeared" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done

"$CLIENT" --socket "$SOCK" --topo flat4 --coll allgather --bytes 1M
"$CLIENT" --socket "$SOCK" --topo flat4 --coll allgather --bytes 1M \
  | tee /dev/stderr | grep -q "syccl_client: hit"

wait "$SERVE_PID"
