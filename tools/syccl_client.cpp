// Client for the schedule-compiler service (tools/syccl_serve).
//
//   syccl_client --socket /tmp/syccl.sock --ping
//   syccl_client --socket s.sock --topo dgx16 --coll allgather --bytes 64M
//   syccl_client --socket s.sock --topo-file cluster.topo --coll allreduce
//                --bytes 1G --format xml --out sched.xml   (one command line)
//   syccl_client --socket s.sock --stats
//   syccl_client --socket s.sock --topo dgx16 --coll allgather
//                --deadline-ms 200 --timeout 30 --retries 3   (one command line)
//
// The topology is either a named scenario (--topo, obs/scenario.h names) or
// a topo::from_text file produced by inventory tooling (--topo-file);
// --permute-seed relabels its GPU ranks by a seeded shuffle (isomorphic
// topology, different labelling — smoke tests use it to prove the
// symmetry-keyed cache). The returned schedule is written to --out as a
// serve codec blob (binary) or MSCCL-style XML.
//
// --timeout bounds each socket read/write; --retries re-runs the whole
// attempt (reconnect included) with exponential backoff on transport
// failures — a server ERR response is an answer, not a failure, and is
// never retried.
#include <cctype>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <numeric>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>

#include "obs/scenario.h"
#include "serve/protocol.h"
#include "serve/socket.h"
#include "topo/mutate.h"
#include "topo/serialize.h"
#include "util/cli.h"

namespace {

struct Args {
  std::string socket_path = "syccl_serve.sock";
  std::string topo_name;
  std::string topo_file;
  std::string coll = "allgather";
  std::uint64_t bytes = 1 << 20;
  int root = 0;
  std::string format = "binary";
  std::string out_path;
  double timeout_seconds = 0.0;  ///< per-socket-op bound (0 = block forever)
  int retries = 0;               ///< transport-failure retries beyond the first attempt
  int deadline_ms = -1;          ///< -1 = absent (server default); 0 = explicitly none
  std::optional<std::uint64_t> permute_seed;
  bool ping = false;
  bool stats = false;
};

void print_usage() {
  std::cerr << "usage: syccl_client [--socket PATH] (--topo NAME | --topo-file FILE)\n"
            << "                    [--coll NAME] [--bytes N[K|M|G]] [--root R]\n"
            << "                    [--format binary|xml] [--out FILE] [--deadline-ms N]\n"
            << "                    [--timeout SECONDS] [--retries N] [--permute-seed N]\n"
            << "                    [--ping] [--stats]\n"
            << "collectives: allreduce allgather reducescatter alltoall broadcast "
               "scatter gather reduce\n";
}

/// Case-insensitive collective name -> protocol kind token ("AllGather").
std::optional<syccl::coll::CollKind> kind_for_name(const std::string& name) {
  std::string lower;
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  using syccl::coll::CollKind;
  for (CollKind kind : {CollKind::Broadcast, CollKind::Scatter, CollKind::Gather,
                        CollKind::Reduce, CollKind::AllGather, CollKind::AllToAll,
                        CollKind::ReduceScatter, CollKind::AllReduce}) {
    std::string kind_lower;
    for (const char* p = syccl::coll::kind_name(kind); *p; ++p) {
      kind_lower.push_back(static_cast<char>(std::tolower(*p)));
    }
    if (lower == kind_lower) return kind;
  }
  return std::nullopt;
}

bool parse_args(int argc, char** argv, Args& args) {
  namespace cli = syccl::util::cli;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--socket") {
      const char* v = need_value();
      if (!v) return false;
      args.socket_path = v;
    } else if (a == "--topo") {
      const char* v = need_value();
      if (!v) return false;
      args.topo_name = v;
    } else if (a == "--topo-file") {
      const char* v = need_value();
      if (!v) return false;
      args.topo_file = v;
    } else if (a == "--coll") {
      const char* v = need_value();
      if (!v) return false;
      args.coll = v;
    } else if (a == "--bytes") {
      const char* v = need_value();
      if (!v) return false;
      const auto bytes = cli::parse_bytes(v);
      if (!bytes || *bytes == 0) {
        std::cerr << "bad value for --bytes: '" << v << "'\n";
        return false;
      }
      args.bytes = *bytes;
    } else if (a == "--root") {
      const char* v = need_value();
      if (!v) return false;
      const auto root = cli::parse_int(v, 0, 1 << 20);
      if (!root) {
        std::cerr << "bad value for --root: '" << v << "'\n";
        return false;
      }
      args.root = *root;
    } else if (a == "--format") {
      const char* v = need_value();
      if (!v) return false;
      args.format = v;
      if (args.format != "binary" && args.format != "xml") {
        std::cerr << "bad value for --format: '" << v << "' (binary|xml)\n";
        return false;
      }
    } else if (a == "--out") {
      const char* v = need_value();
      if (!v) return false;
      args.out_path = v;
    } else if (a == "--timeout") {
      const char* v = need_value();
      if (!v) return false;
      const auto n = cli::parse_int(v, 0, 86'400);
      if (!n) {
        std::cerr << "bad value for --timeout: '" << v << "'\n";
        return false;
      }
      args.timeout_seconds = static_cast<double>(*n);
    } else if (a == "--retries") {
      const char* v = need_value();
      if (!v) return false;
      const auto n = cli::parse_int(v, 0, 100);
      if (!n) {
        std::cerr << "bad value for --retries: '" << v << "'\n";
        return false;
      }
      args.retries = *n;
    } else if (a == "--deadline-ms") {
      const char* v = need_value();
      if (!v) return false;
      const auto n = cli::parse_int(v, 0, 86'400'000);
      if (!n) {
        std::cerr << "bad value for --deadline-ms: '" << v << "'\n";
        return false;
      }
      args.deadline_ms = *n;
    } else if (a == "--permute-seed") {
      const char* v = need_value();
      if (!v) return false;
      const auto n = cli::parse_u64(v);
      if (!n) {
        std::cerr << "bad value for --permute-seed: '" << v << "'\n";
        return false;
      }
      args.permute_seed = *n;
    } else if (a == "--ping") {
      args.ping = true;
    } else if (a == "--stats") {
      args.stats = true;
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return false;
    }
  }
  return true;
}

/// One full request attempt: connect, send, read the response. Returns false
/// on transport failure (retryable); a server ERR is returned as success
/// with response.ok == false (not retryable — the server answered).
bool attempt_request(const Args& args, const syccl::serve::ServeRequest& request,
                     syccl::serve::WireResponse& response, std::string& failure) {
  std::unique_ptr<syccl::serve::Stream> stream;
  try {
    stream = syccl::serve::connect_unix(args.socket_path, args.timeout_seconds);
  } catch (const std::exception& e) {
    failure = e.what();
    return false;
  }
  if (!stream->write_all(syccl::serve::encode_request(request, args.format))) {
    failure = "cannot send request";
    return false;
  }
  if (!syccl::serve::read_response(*stream, response)) {
    failure = "connection closed mid-response";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    print_usage();
    return 2;
  }
  // A server that dies mid-request surfaces as a write error (and a retry),
  // not a SIGPIPE kill.
  std::signal(SIGPIPE, SIG_IGN);

  try {
    // Validate the request before touching the socket, so usage errors are
    // reported even when no server is running.
    std::optional<syccl::coll::CollKind> kind;
    if (!args.ping && !args.stats) {
      kind = kind_for_name(args.coll);
      if (!kind) {
        std::cerr << "syccl_client: unknown collective '" << args.coll << "'\n";
        print_usage();
        return 2;
      }
      if (args.topo_file.empty() && args.topo_name.empty()) {
        std::cerr << "syccl_client: one of --topo / --topo-file is required\n";
        print_usage();
        return 2;
      }
    }

    if (args.ping || args.stats) {
      auto stream = syccl::serve::connect_unix(args.socket_path, args.timeout_seconds);
      if (args.ping) {
        std::string line;
        if (!stream->write_all("PING\n") || !stream->read_line(line) || line != "PONG") {
          std::cerr << "syccl_client: no PONG from " << args.socket_path << "\n";
          return 1;
        }
        std::cout << "PONG\n";
        return 0;
      }
      std::string line;
      if (!stream->write_all("STATS\n") || !stream->read_line(line)) {
        std::cerr << "syccl_client: no stats response\n";
        return 1;
      }
      std::istringstream header(line);
      std::string verb;
      std::size_t n = 0;
      std::string json;
      if (!(header >> verb >> n) || verb != "OK" || !stream->read_exact(json, n)) {
        std::cerr << "syccl_client: malformed stats response '" << line << "'\n";
        return 1;
      }
      std::cout << json << "\n";
      return 0;
    }

    syccl::serve::ServeRequest request;
    request.kind = *kind;
    request.root = args.root;
    request.total_bytes = args.bytes;
    if (args.deadline_ms == 0) {
      request.deadline_seconds = -1.0;  // explicit "no deadline"
    } else if (args.deadline_ms > 0) {
      request.deadline_seconds = static_cast<double>(args.deadline_ms) / 1000.0;
    }
    if (!args.topo_file.empty()) {
      std::ifstream in(args.topo_file);
      if (!in) {
        std::cerr << "syccl_client: cannot read " << args.topo_file << "\n";
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      request.topology = syccl::topo::from_text(text.str());
    } else {
      request.topology = syccl::obs::build_scenario_topology(args.topo_name);
    }
    if (args.permute_seed) {
      // Seeded rank relabelling: same seed, same permutation — a restarted
      // smoke test can re-request "the same cluster, labelled differently".
      std::vector<int> perm(request.topology.gpus().size());
      std::iota(perm.begin(), perm.end(), 0);
      std::mt19937_64 rng(*args.permute_seed);
      std::shuffle(perm.begin(), perm.end(), rng);
      request.topology = syccl::topo::permute_gpu_ranks(request.topology, perm);
      if (args.root >= 0 && static_cast<std::size_t>(args.root) < perm.size()) {
        request.root = perm[static_cast<std::size_t>(args.root)];
      }
    }

    syccl::serve::WireResponse response;
    std::string failure;
    bool transported = false;
    for (int attempt = 0; attempt <= args.retries; ++attempt) {
      if (attempt > 0) {
        // Exponential backoff, capped: 100ms, 200ms, 400ms, ... ≤ 5s.
        const auto delay = std::min(std::chrono::milliseconds(100) * (1 << (attempt - 1)),
                                    std::chrono::milliseconds(5000));
        std::cerr << "syccl_client: " << failure << "; retry " << attempt << "/"
                  << args.retries << " in " << delay.count() << "ms\n";
        std::this_thread::sleep_for(delay);
      }
      if (attempt_request(args, request, response, failure)) {
        transported = true;
        break;
      }
    }
    if (!transported) {
      std::cerr << "syccl_client: " << failure << "\n";
      return 1;
    }
    if (!response.ok) {
      std::cerr << "syccl_client: server error: " << response.error << "\n";
      return 1;
    }

    std::cout << "syccl_client: " << (response.hit ? "hit" : "miss")
              << (response.joined ? " (joined in-flight synthesis)" : "")
              << (response.degraded ? " (degraded: deadline fallback)" : "") << ", predicted "
              << response.predicted_time * 1e6 << " us\n"
              << "  key: " << response.scenario_key << "\n"
              << "  schedule: " << response.payload.size() << " bytes (" << response.format
              << ")\n";
    if (!args.out_path.empty()) {
      std::ofstream out(args.out_path, std::ios::binary);
      out << response.payload;
      if (!out) {
        std::cerr << "syccl_client: cannot write " << args.out_path << "\n";
        return 1;
      }
      std::cout << "  wrote " << args.out_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "syccl_client: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
