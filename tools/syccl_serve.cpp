// Long-running schedule-compiler service: listens on a unix socket, serves
// schedule requests from a persistent, symmetry-keyed library, synthesizes
// on miss.
//
//   syccl_serve --socket /tmp/syccl.sock --library /var/lib/syccl
//   syccl_serve --socket s.sock --library lib --max-requests 8   # drain & exit
//   syccl_serve --socket s.sock --library lib --deadline-ms 500  # degrade past 500ms
//   syccl_serve --selfcheck --library /tmp/lib                   # no socket
//
// SIGTERM/SIGINT start a graceful drain: stop accepting, finish in-flight
// requests, flush the library index, exit 0. SIGPIPE is ignored (a vanished
// client is that connection's problem). --failpoint injects named faults
// (util/failpoint.h; also via $SYCCL_FAILPOINTS) for chaos testing.
//
// --selfcheck runs the full pipeline in-process — synthesize a small
// scenario, re-request it under a permuted rank labelling, require a library
// hit — and exits non-zero on any mismatch. It is the deployment smoke test
// (and the ctest smoke).
#include <csignal>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>

#include "obs/scenario.h"
#include "serve/broker.h"
#include "serve/library.h"
#include "serve/socket.h"
#include "topo/mutate.h"
#include "util/cli.h"
#include "util/failpoint.h"

namespace {

struct Args {
  std::string socket_path = "syccl_serve.sock";
  std::string library_dir = "syccl_library";
  std::uint64_t max_library_bytes = 256ull << 20;
  int max_requests = -1;  ///< <= 0: serve forever
  int threads = 0;
  double deadline_seconds = 0.0;      ///< default synthesis deadline (0 = none)
  double idle_timeout_seconds = 60.0;  ///< per-connection idle bound (0 = none)
  bool selfcheck = false;
};

void print_usage() {
  std::cerr << "usage: syccl_serve [--socket PATH] [--library DIR] [--max-bytes N[K|M|G]]\n"
            << "                   [--max-requests N] [--threads N] [--deadline-ms N]\n"
            << "                   [--idle-timeout SECONDS] [--failpoint NAME=SPEC[;...]]\n"
            << "                   [--selfcheck]\n";
}

bool parse_args(int argc, char** argv, Args& args) {
  namespace cli = syccl::util::cli;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--socket") {
      const char* v = need_value();
      if (!v) return false;
      args.socket_path = v;
    } else if (a == "--library") {
      const char* v = need_value();
      if (!v) return false;
      args.library_dir = v;
    } else if (a == "--max-bytes") {
      const char* v = need_value();
      if (!v) return false;
      const auto bytes = cli::parse_bytes(v);
      if (!bytes) {
        std::cerr << "bad value for --max-bytes: '" << v << "'\n";
        return false;
      }
      args.max_library_bytes = *bytes;
    } else if (a == "--max-requests") {
      const char* v = need_value();
      if (!v) return false;
      const auto n = cli::parse_int(v, 1, 1 << 20);
      if (!n) {
        std::cerr << "bad value for --max-requests: '" << v << "'\n";
        return false;
      }
      args.max_requests = *n;
    } else if (a == "--threads") {
      const char* v = need_value();
      if (!v) return false;
      const auto n = cli::parse_int(v, 0, 1 << 10);
      if (!n) {
        std::cerr << "bad value for --threads: '" << v << "'\n";
        return false;
      }
      args.threads = *n;
    } else if (a == "--deadline-ms") {
      const char* v = need_value();
      if (!v) return false;
      const auto n = cli::parse_int(v, 0, 86'400'000);
      if (!n) {
        std::cerr << "bad value for --deadline-ms: '" << v << "'\n";
        return false;
      }
      args.deadline_seconds = static_cast<double>(*n) / 1000.0;
    } else if (a == "--idle-timeout") {
      const char* v = need_value();
      if (!v) return false;
      const auto n = cli::parse_int(v, 0, 86'400);
      if (!n) {
        std::cerr << "bad value for --idle-timeout: '" << v << "'\n";
        return false;
      }
      args.idle_timeout_seconds = static_cast<double>(*n);
    } else if (a == "--failpoint") {
      const char* v = need_value();
      if (!v) return false;
      try {
        syccl::util::Failpoints::instance().enable_list(v);
      } catch (const std::exception& e) {
        std::cerr << "bad value for --failpoint: " << e.what() << "\n";
        return false;
      }
    } else if (a == "--selfcheck") {
      args.selfcheck = true;
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return false;
    }
  }
  return true;
}

/// End-to-end in-process check: cold miss, identical re-request (hit), and a
/// rank-permuted re-request (the symmetry the service exists for — must hit
/// the same entry).
int selfcheck(syccl::serve::Broker& broker) {
  using namespace syccl;
  serve::ServeRequest request;
  request.topology = obs::build_scenario_topology("flat4");
  request.kind = coll::CollKind::AllGather;
  request.total_bytes = 1 << 20;

  const serve::ServeResponse cold = broker.handle(request);
  if (cold.hit) {
    // A persistent library dir from an earlier selfcheck run; everything
    // below still has to hit.
    std::cout << "selfcheck: library pre-warmed, skipping cold-miss check\n";
  }
  const serve::ServeResponse warm = broker.handle(request);
  if (!warm.hit) {
    std::cerr << "selfcheck: identical re-request missed the library\n";
    return 1;
  }

  serve::ServeRequest permuted = request;
  permuted.topology = topo::permute_gpu_ranks(request.topology, {2, 0, 3, 1});
  const serve::ServeResponse iso = broker.handle(permuted);
  if (!iso.hit) {
    std::cerr << "selfcheck: permuted-rank re-request missed the library\n";
    return 1;
  }
  if (iso.scenario_key != warm.scenario_key) {
    std::cerr << "selfcheck: permuted request derived a different scenario key\n";
    return 1;
  }
  std::cout << "selfcheck: ok (key " << warm.scenario_key << ", predicted "
            << warm.predicted_time * 1e6 << " us)\n";
  return 0;
}

/// Set by main once the server exists; the handler body is async-signal-safe
/// (an atomic store plus shutdown(2) inside begin_drain).
syccl::serve::UnixServer* g_server = nullptr;

void handle_drain_signal(int) {
  if (g_server != nullptr) g_server->begin_drain();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    print_usage();
    return 2;
  }
  // A client that disconnects mid-response must not kill the process; send
  // paths also pass MSG_NOSIGNAL, this covers any non-socket writes.
  std::signal(SIGPIPE, SIG_IGN);

  try {
    syccl::serve::DiskLibrary library({args.library_dir, args.max_library_bytes});
    syccl::serve::BrokerConfig config;
    config.num_threads = args.threads;
    config.default_deadline_seconds = args.deadline_seconds;
    syccl::serve::Broker broker(library, config);
    const auto stats = library.stats();
    std::cout << "syccl_serve: library " << args.library_dir << " (" << stats.entries
              << " entries, " << stats.bytes << " bytes";
    if (stats.quarantined > 0) std::cout << ", " << stats.quarantined << " quarantined";
    if (stats.orphans_adopted > 0) std::cout << ", " << stats.orphans_adopted << " adopted";
    std::cout << ")\n";

    if (args.selfcheck) return selfcheck(broker);

    syccl::serve::UnixServer server(args.socket_path);
    g_server = &server;
    struct sigaction sa{};
    sa.sa_handler = handle_drain_signal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    std::cout << "syccl_serve: listening on " << args.socket_path << std::endl;
    const int handled =
        server.serve(broker, library, args.max_requests, args.idle_timeout_seconds);
    g_server = nullptr;
    // Drain epilogue: fold the journal into a fresh snapshot so the next
    // open replays nothing.
    if (!library.flush()) {
      std::cerr << "syccl_serve: warning: final index flush failed\n";
    }
    std::cout << "syccl_serve: exiting after " << handled << " requests"
              << (server.draining() ? " (drained)" : "") << "\n";
  } catch (const std::exception& e) {
    std::cerr << "syccl_serve: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
