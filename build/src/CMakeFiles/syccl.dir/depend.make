# Empty dependencies file for syccl.
# This may be replaced when dependencies are built.
