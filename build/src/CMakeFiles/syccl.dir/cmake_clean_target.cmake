file(REMOVE_RECURSE
  "libsyccl.a"
)
