
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/crafted.cpp" "src/CMakeFiles/syccl.dir/baselines/crafted.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/baselines/crafted.cpp.o.d"
  "/root/repo/src/baselines/nccl.cpp" "src/CMakeFiles/syccl.dir/baselines/nccl.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/baselines/nccl.cpp.o.d"
  "/root/repo/src/baselines/teccl.cpp" "src/CMakeFiles/syccl.dir/baselines/teccl.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/baselines/teccl.cpp.o.d"
  "/root/repo/src/coll/busbw.cpp" "src/CMakeFiles/syccl.dir/coll/busbw.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/coll/busbw.cpp.o.d"
  "/root/repo/src/coll/collective.cpp" "src/CMakeFiles/syccl.dir/coll/collective.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/coll/collective.cpp.o.d"
  "/root/repo/src/coll/decompose.cpp" "src/CMakeFiles/syccl.dir/coll/decompose.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/coll/decompose.cpp.o.d"
  "/root/repo/src/core/asymmetric.cpp" "src/CMakeFiles/syccl.dir/core/asymmetric.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/core/asymmetric.cpp.o.d"
  "/root/repo/src/core/cache.cpp" "src/CMakeFiles/syccl.dir/core/cache.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/core/cache.cpp.o.d"
  "/root/repo/src/core/merge.cpp" "src/CMakeFiles/syccl.dir/core/merge.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/core/merge.cpp.o.d"
  "/root/repo/src/core/subdemand.cpp" "src/CMakeFiles/syccl.dir/core/subdemand.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/core/subdemand.cpp.o.d"
  "/root/repo/src/core/synthesizer.cpp" "src/CMakeFiles/syccl.dir/core/synthesizer.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/core/synthesizer.cpp.o.d"
  "/root/repo/src/lp/simplex.cpp" "src/CMakeFiles/syccl.dir/lp/simplex.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/lp/simplex.cpp.o.d"
  "/root/repo/src/milp/branch_and_bound.cpp" "src/CMakeFiles/syccl.dir/milp/branch_and_bound.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/milp/branch_and_bound.cpp.o.d"
  "/root/repo/src/profiler/profiler.cpp" "src/CMakeFiles/syccl.dir/profiler/profiler.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/profiler/profiler.cpp.o.d"
  "/root/repo/src/runtime/executor.cpp" "src/CMakeFiles/syccl.dir/runtime/executor.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/runtime/executor.cpp.o.d"
  "/root/repo/src/runtime/validate.cpp" "src/CMakeFiles/syccl.dir/runtime/validate.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/runtime/validate.cpp.o.d"
  "/root/repo/src/runtime/xml.cpp" "src/CMakeFiles/syccl.dir/runtime/xml.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/runtime/xml.cpp.o.d"
  "/root/repo/src/sim/analyze.cpp" "src/CMakeFiles/syccl.dir/sim/analyze.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/sim/analyze.cpp.o.d"
  "/root/repo/src/sim/schedule.cpp" "src/CMakeFiles/syccl.dir/sim/schedule.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/sim/schedule.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/syccl.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sketch/alltoall.cpp" "src/CMakeFiles/syccl.dir/sketch/alltoall.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/sketch/alltoall.cpp.o.d"
  "/root/repo/src/sketch/combine.cpp" "src/CMakeFiles/syccl.dir/sketch/combine.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/sketch/combine.cpp.o.d"
  "/root/repo/src/sketch/prune.cpp" "src/CMakeFiles/syccl.dir/sketch/prune.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/sketch/prune.cpp.o.d"
  "/root/repo/src/sketch/replicate.cpp" "src/CMakeFiles/syccl.dir/sketch/replicate.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/sketch/replicate.cpp.o.d"
  "/root/repo/src/sketch/search.cpp" "src/CMakeFiles/syccl.dir/sketch/search.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/sketch/search.cpp.o.d"
  "/root/repo/src/sketch/sketch.cpp" "src/CMakeFiles/syccl.dir/sketch/sketch.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/sketch/sketch.cpp.o.d"
  "/root/repo/src/solver/epoch_model.cpp" "src/CMakeFiles/syccl.dir/solver/epoch_model.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/solver/epoch_model.cpp.o.d"
  "/root/repo/src/solver/greedy.cpp" "src/CMakeFiles/syccl.dir/solver/greedy.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/solver/greedy.cpp.o.d"
  "/root/repo/src/solver/milp_scheduler.cpp" "src/CMakeFiles/syccl.dir/solver/milp_scheduler.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/solver/milp_scheduler.cpp.o.d"
  "/root/repo/src/solver/tau.cpp" "src/CMakeFiles/syccl.dir/solver/tau.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/solver/tau.cpp.o.d"
  "/root/repo/src/topo/builders.cpp" "src/CMakeFiles/syccl.dir/topo/builders.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/topo/builders.cpp.o.d"
  "/root/repo/src/topo/groups.cpp" "src/CMakeFiles/syccl.dir/topo/groups.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/topo/groups.cpp.o.d"
  "/root/repo/src/topo/isomorphism.cpp" "src/CMakeFiles/syccl.dir/topo/isomorphism.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/topo/isomorphism.cpp.o.d"
  "/root/repo/src/topo/serialize.cpp" "src/CMakeFiles/syccl.dir/topo/serialize.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/topo/serialize.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/CMakeFiles/syccl.dir/topo/topology.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/topo/topology.cpp.o.d"
  "/root/repo/src/training/iteration.cpp" "src/CMakeFiles/syccl.dir/training/iteration.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/training/iteration.cpp.o.d"
  "/root/repo/src/training/trace.cpp" "src/CMakeFiles/syccl.dir/training/trace.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/training/trace.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/syccl.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/util/log.cpp.o.d"
  "/root/repo/src/util/stopwatch.cpp" "src/CMakeFiles/syccl.dir/util/stopwatch.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/util/stopwatch.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/syccl.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/syccl.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
