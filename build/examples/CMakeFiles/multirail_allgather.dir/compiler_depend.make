# Empty compiler generated dependencies file for multirail_allgather.
# This may be replaced when dependencies are built.
