file(REMOVE_RECURSE
  "CMakeFiles/multirail_allgather.dir/multirail_allgather.cpp.o"
  "CMakeFiles/multirail_allgather.dir/multirail_allgather.cpp.o.d"
  "multirail_allgather"
  "multirail_allgather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirail_allgather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
