file(REMOVE_RECURSE
  "CMakeFiles/schedule_library.dir/schedule_library.cpp.o"
  "CMakeFiles/schedule_library.dir/schedule_library.cpp.o.d"
  "schedule_library"
  "schedule_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
