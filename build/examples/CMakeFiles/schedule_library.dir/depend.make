# Empty dependencies file for schedule_library.
# This may be replaced when dependencies are built.
