# Empty compiler generated dependencies file for training_step.
# This may be replaced when dependencies are built.
