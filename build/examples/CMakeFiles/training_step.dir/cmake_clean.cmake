file(REMOVE_RECURSE
  "CMakeFiles/training_step.dir/training_step.cpp.o"
  "CMakeFiles/training_step.dir/training_step.cpp.o.d"
  "training_step"
  "training_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
