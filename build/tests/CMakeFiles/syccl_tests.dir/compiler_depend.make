# Empty compiler generated dependencies file for syccl_tests.
# This may be replaced when dependencies are built.
