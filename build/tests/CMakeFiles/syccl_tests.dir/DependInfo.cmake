
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analyze_test.cpp" "tests/CMakeFiles/syccl_tests.dir/analyze_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/analyze_test.cpp.o.d"
  "/root/repo/tests/asymmetric_test.cpp" "tests/CMakeFiles/syccl_tests.dir/asymmetric_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/asymmetric_test.cpp.o.d"
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/syccl_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/cache_test.cpp" "tests/CMakeFiles/syccl_tests.dir/cache_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/cache_test.cpp.o.d"
  "/root/repo/tests/coll_test.cpp" "tests/CMakeFiles/syccl_tests.dir/coll_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/coll_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/syccl_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/executor_test.cpp" "tests/CMakeFiles/syccl_tests.dir/executor_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/executor_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/syccl_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/heterogeneous_test.cpp" "tests/CMakeFiles/syccl_tests.dir/heterogeneous_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/heterogeneous_test.cpp.o.d"
  "/root/repo/tests/lp_test.cpp" "tests/CMakeFiles/syccl_tests.dir/lp_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/lp_test.cpp.o.d"
  "/root/repo/tests/milp_test.cpp" "tests/CMakeFiles/syccl_tests.dir/milp_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/milp_test.cpp.o.d"
  "/root/repo/tests/profiler_test.cpp" "tests/CMakeFiles/syccl_tests.dir/profiler_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/profiler_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/syccl_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/serialize_test.cpp" "tests/CMakeFiles/syccl_tests.dir/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/serialize_test.cpp.o.d"
  "/root/repo/tests/sim_more_test.cpp" "tests/CMakeFiles/syccl_tests.dir/sim_more_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/sim_more_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/syccl_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/sketch_more_test.cpp" "tests/CMakeFiles/syccl_tests.dir/sketch_more_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/sketch_more_test.cpp.o.d"
  "/root/repo/tests/sketch_test.cpp" "tests/CMakeFiles/syccl_tests.dir/sketch_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/sketch_test.cpp.o.d"
  "/root/repo/tests/solver_test.cpp" "tests/CMakeFiles/syccl_tests.dir/solver_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/solver_test.cpp.o.d"
  "/root/repo/tests/synthesizer_test.cpp" "tests/CMakeFiles/syccl_tests.dir/synthesizer_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/synthesizer_test.cpp.o.d"
  "/root/repo/tests/topo_test.cpp" "tests/CMakeFiles/syccl_tests.dir/topo_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/topo_test.cpp.o.d"
  "/root/repo/tests/training_test.cpp" "tests/CMakeFiles/syccl_tests.dir/training_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/training_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/syccl_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/validate_test.cpp" "tests/CMakeFiles/syccl_tests.dir/validate_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/validate_test.cpp.o.d"
  "/root/repo/tests/xml_test.cpp" "tests/CMakeFiles/syccl_tests.dir/xml_test.cpp.o" "gcc" "tests/CMakeFiles/syccl_tests.dir/xml_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/syccl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
