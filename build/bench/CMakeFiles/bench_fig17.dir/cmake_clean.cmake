file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17.dir/bench_fig17.cpp.o"
  "CMakeFiles/bench_fig17.dir/bench_fig17.cpp.o.d"
  "bench_fig17"
  "bench_fig17.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
