file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15.dir/bench_fig15.cpp.o"
  "CMakeFiles/bench_fig15.dir/bench_fig15.cpp.o.d"
  "bench_fig15"
  "bench_fig15.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
