file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16.dir/bench_fig16.cpp.o"
  "CMakeFiles/bench_fig16.dir/bench_fig16.cpp.o.d"
  "bench_fig16"
  "bench_fig16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
