// SyCCL's end-to-end schedule synthesizer (paper §3.3, Fig. 6).
//
// Phase 1 — sketch exploration: search rooted sketches (§4.1), balance and
// replicate them (§4.2/§4.3), and integrate sketch combinations across
// dimensions. Phase 2 — schedule synthesis: solve every merged sub-demand
// (coarse E₁ pass over all combinations, then fine E₂ pass over the top
// candidates within R₁ of the best, at most R₂ of them), merge the
// sub-schedules, rank the complete schedules with the α–β simulator, and
// return the best (§5). Sub-demand solves are deduplicated by isomorphism
// class, memoised process-wide (solver::SubScheduleCache) and run on a
// thread pool alongside parallel candidate evaluation (§5.3); selection
// stays deterministic — candidates are ranked by predicted time with a
// stable index tie-break, independent of task completion order.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "coll/collective.h"
#include "sim/schedule.h"
#include "sim/simulator.h"
#include "sketch/alltoall.h"
#include "solver/milp_scheduler.h"
#include "topo/topology.h"
#include "util/thread_pool.h"

namespace syccl::core {

struct SynthesisConfig {
  /// Epoch knobs for the two-step synthesis (§5.3; paper defaults).
  double E1 = 3.0;
  double E2 = 0.5;
  /// Candidate filter: keep schedules within R1 of the best, at most R2.
  double R1 = 0.20;
  int R2 = 8;
  /// Disable the fine pass (single coarse pass only).
  bool two_step = true;

  /// Sketch search/combination settings (pruning toggles for §7.4 live in
  /// sketch.search).
  sketch::AllToAllConfig sketch;

  /// Per-sub-demand solver settings. E is overwritten from E1/E2. The
  /// binary-count gates keep the dense-simplex B&B inside its practical
  /// size range; larger merged demands fall back to the greedy incumbent.
  solver::MilpSchedulerOptions coarse_solver{3.0, 0.25, 500, 250, false};
  solver::MilpSchedulerOptions fine_solver{0.5, 1.0, 2000, 550, false};

  /// Simulator options used for candidate ranking.
  sim::SimOptions sim;

  /// Worker threads for parallel sub-demand solving and candidate
  /// evaluation (0 = hardware).
  int num_threads = 0;

  /// Memoise sub-demand solves in the process-wide
  /// solver::SubScheduleCache: reuse spans candidates, the RS/AG phases of
  /// AllReduce, repeated synthesize() calls and size sweeps. Disable for
  /// A/B measurements; results are identical either way.
  bool use_solve_cache = true;
};

/// Wall-clock breakdown of one synthesis call (Fig. 16(b)).
struct SynthesisBreakdown {
  double search_s = 0.0;
  double combine_s = 0.0;
  double solve1_s = 0.0;
  double solve2_s = 0.0;
  double total_s = 0.0;
  int num_combinations = 0;
  int num_subdemands = 0;
  /// Solver invocations after isomorphism-class deduplication *and* solve
  /// caching — i.e. solves that actually ran.
  int num_solver_calls = 0;
  /// Longest single sub-demand solve (Fig. 17(c) metric).
  double max_solve_s = 0.0;
  /// SubScheduleCache traffic of this synthesis (0/0 when the cache is
  /// disabled). hits + misses = deduplicated classes that were needed.
  int cache_hits = 0;
  int cache_misses = 0;
  /// Resident bytes of the process-wide solve cache after this synthesis.
  std::size_t cache_bytes = 0;
};

struct SynthesisResult {
  sim::Schedule schedule;
  /// Simulator-predicted completion time of the chosen schedule (seconds).
  double predicted_time = 0.0;
  SynthesisBreakdown breakdown;
  /// Human-readable description of the winning sketch combination.
  std::string chosen;
};

class Synthesizer {
 public:
  /// Extracts dimensions/groups from `topo` (kept by reference: the topology
  /// must outlive the synthesizer).
  explicit Synthesizer(const topo::Topology& topo, SynthesisConfig config = {});

  /// Synthesizes a schedule for `coll`. Supports every collective of §2.1;
  /// AllReduce is synthesised as ReduceScatter + AllGather (§4.3).
  SynthesisResult synthesize(const coll::Collective& coll);

  const topo::TopologyGroups& groups() const { return groups_; }
  const SynthesisConfig& config() const { return config_; }

 private:
  /// `coll` is the forward collective that drives the demand plan; for
  /// reversed (reduce) synthesis, `eval_coll` is the real collective the
  /// merged schedule must satisfy.
  SynthesisResult synthesize_pattern(const coll::Collective& coll,
                                     const coll::Collective& eval_coll, bool all_to_all,
                                     int root, sketch::RootedPattern pattern, bool reverse);
  SynthesisResult synthesize_sendrecv(const coll::Collective& coll);

  const topo::Topology& topo_;
  topo::TopologyGroups groups_;
  SynthesisConfig config_;
  util::ThreadPool pool_;
};

}  // namespace syccl::core
