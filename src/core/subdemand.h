// Demand-plan construction: turns a sketch combination plus a collective into
// the merged sub-demands the solvers consume (paper §5.1).
//
// Every weighted sketch carries the chunk(s) originating at its root, scaled
// by its fraction. Sub-demands of the same (stage, dimension, group, piece
// size) are merged — they happen simultaneously and compete for the group's
// bandwidth. Scatter sketches route each destination's chunk (and those of
// its relay subtree) along the relay tree edges.
#pragma once

#include <vector>

#include "coll/collective.h"
#include "sim/schedule.h"
#include "sketch/sketch.h"
#include "solver/epoch_model.h"
#include "topo/groups.h"

namespace syccl::core {

/// One merged sub-demand: a solver SubDemand in group-local indices plus the
/// mapping from its local piece ids back to global schedule pieces.
struct MergedSubDemand {
  int stage = 0;
  int dim = -1;
  int group = -1;
  solver::SubDemand demand;
  /// global_piece[i] = index into DemandPlan::pieces for demand.pieces[i].
  std::vector<int> global_piece;
};

struct DemandPlan {
  /// Global piece table (becomes Schedule::pieces).
  std::vector<sim::Piece> pieces;
  /// Merged sub-demands, ascending by stage.
  std::vector<MergedSubDemand> demands;

  int add_piece_index(sim::Piece piece) {
    pieces.push_back(std::move(piece));
    return static_cast<int>(pieces.size()) - 1;
  }
};

/// Builds the demand plan for `combo` realising `coll` (or, for reduce
/// collectives, realising the forward twin that will be reversed at merge
/// time — pieces are still emitted as forward pieces here).
/// Throws std::invalid_argument if a sketch's root carries no chunk of the
/// collective or group lookups fail.
DemandPlan build_demand_plan(const sketch::SketchCombination& combo,
                             const coll::Collective& coll, const topo::TopologyGroups& groups);

}  // namespace syccl::core
