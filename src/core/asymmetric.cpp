#include "core/asymmetric.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace syccl::core {

void validate_demand_matrix(const DemandMatrix& demand, const topo::TopologyGroups& groups) {
  const std::size_t n = groups.group_of.front().size();
  if (demand.size() != n) throw std::invalid_argument("demand matrix rank-count mismatch");
  for (std::size_t s = 0; s < n; ++s) {
    if (demand[s].size() != n) throw std::invalid_argument("demand matrix is not square");
    if (demand[s][s] != 0) throw std::invalid_argument("demand matrix diagonal must be zero");
  }
}

sim::Schedule synthesize_alltoallv(const DemandMatrix& demand,
                                   const topo::TopologyGroups& groups) {
  validate_demand_matrix(demand, groups);
  const int n = static_cast<int>(demand.size());
  sim::Schedule out;
  out.name = "syccl-alltoallv";

  struct Entry {
    int src, dst, piece;
    std::uint64_t bytes;
  };
  std::vector<Entry> entries;
  int chunk = 0;
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (demand[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)] == 0) continue;
      const auto bytes = demand[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)];
      const int piece =
          out.add_piece(sim::Piece{chunk++, static_cast<double>(bytes), s, false, {}});
      entries.push_back(Entry{s, d, piece, bytes});
    }
  }

  // Longest-processing-time first: big transfers claim the contended ports
  // early so small ones backfill the gaps.
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.bytes > b.bytes; });

  const bool rails = groups.num_dims() >= 3;
  const auto& server_of = groups.group_of[0];
  const auto& rail_of = groups.num_dims() >= 2 ? groups.group_of[1] : groups.group_of[0];

  for (const Entry& e : entries) {
    const bool same_server = server_of[static_cast<std::size_t>(e.src)] ==
                             server_of[static_cast<std::size_t>(e.dst)];
    const bool same_rail =
        rail_of[static_cast<std::size_t>(e.src)] == rail_of[static_cast<std::size_t>(e.dst)];
    if (rails && !same_server && !same_rail) {
      // PXN-style relay: NVLink to the server-mate on the destination rail,
      // then a same-rail network hop.
      const auto& server =
          groups.dims[0].groups[static_cast<std::size_t>(
              server_of[static_cast<std::size_t>(e.src)])];
      int relay = -1;
      for (int r : server.ranks) {
        if (rail_of[static_cast<std::size_t>(r)] == rail_of[static_cast<std::size_t>(e.dst)]) {
          relay = r;
          break;
        }
      }
      if (relay >= 0 && relay != e.src) {
        out.add_op(e.piece, e.src, relay, 0);
        out.add_op(e.piece, relay, e.dst, 1);
        continue;
      }
    }
    out.add_op(e.piece, e.src, e.dst);
  }
  return out;
}

sim::Schedule synthesize_allgatherv(const std::vector<std::uint64_t>& bytes_per_rank,
                                    const topo::TopologyGroups& groups) {
  const int n = static_cast<int>(groups.group_of.front().size());
  if (static_cast<int>(bytes_per_rank.size()) != n) {
    throw std::invalid_argument("bytes_per_rank rank-count mismatch");
  }
  sim::Schedule out;
  out.name = "syccl-allgatherv";

  struct Entry {
    int rank, piece;
    std::uint64_t bytes;
  };
  std::vector<Entry> entries;
  for (int r = 0; r < n; ++r) {
    if (bytes_per_rank[static_cast<std::size_t>(r)] == 0) continue;
    const int piece = out.add_piece(sim::Piece{
        r, static_cast<double>(bytes_per_rank[static_cast<std::size_t>(r)]), r, false, {}});
    entries.push_back(Entry{r, piece, bytes_per_rank[static_cast<std::size_t>(r)]});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.bytes > b.bytes; });

  const auto& servers = groups.dims.front().groups;
  const auto& server_of = groups.group_of[0];

  for (const Entry& e : entries) {
    const int home = server_of[static_cast<std::size_t>(e.rank)];
    // NVLink fill of the home server.
    for (int g : servers[static_cast<std::size_t>(home)].ranks) {
      if (g != e.rank) out.add_op(e.piece, e.rank, g, 0);
    }
    // One crossing per remote server (rail-aligned when possible — the
    // owner's counterpart shares its rail on multi-rail fabrics), then
    // NVLink fan-out from the entry GPU.
    const int local = servers[static_cast<std::size_t>(home)].local_of(e.rank);
    for (std::size_t si = 0; si < servers.size(); ++si) {
      if (static_cast<int>(si) == home) continue;
      const auto& server = servers[si];
      const int entry = server.ranks[static_cast<std::size_t>(
          local % static_cast<int>(server.ranks.size()))];
      out.add_op(e.piece, e.rank, entry);
      for (int g : server.ranks) {
        if (g != entry) out.add_op(e.piece, entry, g, 0);
      }
    }
  }
  return out;
}

bool verify_allgatherv(const sim::Schedule& schedule,
                       const std::vector<std::uint64_t>& bytes_per_rank) {
  const int n = static_cast<int>(bytes_per_rank.size());
  std::map<std::pair<int, int>, bool> have;
  for (std::size_t pi = 0; pi < schedule.pieces.size(); ++pi) {
    have[{static_cast<int>(pi), schedule.pieces[pi].origin}] = true;
  }
  for (const auto& op : schedule.ops) {
    if (!have[{op.piece, op.src}]) return false;
    have[{op.piece, op.dst}] = true;
  }
  for (std::size_t pi = 0; pi < schedule.pieces.size(); ++pi) {
    for (int r = 0; r < n; ++r) {
      if (!have[{static_cast<int>(pi), r}]) return false;
    }
  }
  // Every non-zero contribution must be represented by a piece.
  std::size_t expected = 0;
  for (auto b : bytes_per_rank) expected += b > 0 ? 1 : 0;
  return schedule.pieces.size() == expected;
}

bool verify_alltoallv(const sim::Schedule& schedule, const DemandMatrix& demand) {
  // Replay availability and check the (src → dst, bytes) coverage.
  std::map<std::pair<int, int>, bool> have;  // (piece, rank)
  for (std::size_t pi = 0; pi < schedule.pieces.size(); ++pi) {
    have[{static_cast<int>(pi), schedule.pieces[pi].origin}] = true;
  }
  for (const auto& op : schedule.ops) {
    if (!have[{op.piece, op.src}]) return false;
    have[{op.piece, op.dst}] = true;
  }
  // Sum delivered bytes per (origin, dst).
  std::map<std::pair<int, int>, double> delivered;
  for (const auto& [key, present] : have) {
    if (!present) continue;
    const auto& piece = schedule.pieces[static_cast<std::size_t>(key.first)];
    if (key.second == piece.origin) continue;
    delivered[{piece.origin, key.second}] += piece.bytes;
  }
  for (std::size_t s = 0; s < demand.size(); ++s) {
    for (std::size_t d = 0; d < demand.size(); ++d) {
      if (demand[s][d] == 0) continue;
      if (delivered[{static_cast<int>(s), static_cast<int>(d)}] + 1e-6 <
          static_cast<double>(demand[s][d])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace syccl::core
