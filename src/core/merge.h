// Sub-schedule merging (paper §5.2).
//
// Solved sub-schedules are stitched into one global schedule: ops are issued
// stage by stage and, inside a stage, epoch by epoch across all groups.
// Stages are NOT barriers — the simulator lets a GPU forward a piece the
// moment it arrives (Fig. 12(b)); the issue order only fixes per-port FIFO
// order.
//
// Reduce collectives (Reduce / Gather / ReduceScatter) reuse forward
// synthesis: `reverse=true` flips every op (src↔dst) and reverses the global
// order, turning broadcast trees into reduction trees of identical cost, and
// rewrites the pieces as reduce pieces.
#pragma once

#include <string>
#include <vector>

#include "core/subdemand.h"
#include "sim/schedule.h"
#include "solver/epoch_model.h"

namespace syccl::core {

/// Merges solved sub-schedules (parallel array to `plan.demands`) into a
/// global schedule. When `reverse` is set, `reduce` selects between a
/// reduction reversal (Broadcast→Reduce: reduce pieces converging on the
/// forward origin) and a gather reversal (Scatter→Gather: plain pieces whose
/// origin is the forward destination). Throws std::invalid_argument on size
/// mismatch.
sim::Schedule merge_schedule(const DemandPlan& plan,
                             const std::vector<solver::SubSchedule>& solved,
                             const topo::TopologyGroups& groups, bool reverse, bool reduce,
                             std::string name);

/// Rewrites forward pieces into reduce pieces over `contributors` (used by
/// merge_schedule when reverse=true; exposed for tests).
std::vector<sim::Piece> reverse_pieces(const std::vector<sim::Piece>& pieces,
                                       const std::vector<int>& contributors);

/// Reverses a complete forward schedule into its inverse collective's
/// schedule: ops flipped and played backwards; pieces become reduce pieces
/// (`reduce` = true, Broadcast→Reduce) or keep their identity with the
/// origin moved to the forward destination (Scatter→Gather). Works on any
/// valid forward schedule, including ones whose issue order was tuned.
sim::Schedule reverse_schedule(const sim::Schedule& forward, bool reduce, int num_ranks,
                               std::string name);

}  // namespace syccl::core
