#include "core/merge.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace syccl::core {

namespace {

/// Reorders ops by their contention-free estimated start time. The merged
/// (stage, epoch) order assumes stages start synchronously, but pieces
/// actually arrive spread out; since per-port execution is FIFO in issue
/// order, a not-yet-ready op would head-of-line block ready ones. Estimated
/// availability propagation preserves dependency order (an op's start is
/// strictly after the delivering op's start because α > 0).
void reorder_by_estimated_start(sim::Schedule& s, const topo::TopologyGroups& groups) {
  std::map<std::pair<int, int>, double> avail;
  for (std::size_t pi = 0; pi < s.pieces.size(); ++pi) {
    const sim::Piece& p = s.pieces[pi];
    if (p.reduce) {
      for (int c : p.contributors) avail[{static_cast<int>(pi), c}] = 0.0;
    } else if (p.origin >= 0) {
      avail[{static_cast<int>(pi), p.origin}] = 0.0;
    }
  }
  std::vector<double> key(s.ops.size(), 0.0);
  for (std::size_t i = 0; i < s.ops.size(); ++i) {
    const sim::TransferOp& op = s.ops[i];
    const int dim = op.dim >= 0 ? op.dim : groups.best_common_dim(op.src, op.dst);
    if (dim < 0) continue;  // leave key 0; the simulator will reject later
    const auto& gt =
        groups.group(dim, groups.group_of[static_cast<std::size_t>(dim)]
                                         [static_cast<std::size_t>(op.src)]);
    const int ls = gt.local_of(op.src);
    const int ld = gt.local_of(op.dst);
    const auto it = avail.find({op.piece, op.src});
    const double t0 = it != avail.end() ? it->second : 0.0;
    const double arrival = t0 + gt.pair_alpha(ls, ld) +
                           gt.pair_beta(ls, ld) * s.pieces[static_cast<std::size_t>(op.piece)].bytes;
    key[i] = t0;
    auto [dit, inserted] = avail.try_emplace({op.piece, op.dst}, arrival);
    if (!inserted) {
      if (s.pieces[static_cast<std::size_t>(op.piece)].reduce) {
        dit->second = std::max(dit->second, arrival);
      } else {
        dit->second = std::min(dit->second, arrival);
      }
    }
  }
  std::vector<std::size_t> idx(s.ops.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    if (s.ops[a].phase != s.ops[b].phase) return s.ops[a].phase < s.ops[b].phase;
    return key[a] < key[b];
  });
  std::vector<sim::TransferOp> reordered;
  reordered.reserve(s.ops.size());
  for (std::size_t i : idx) reordered.push_back(s.ops[i]);
  s.ops = std::move(reordered);
}

}  // namespace

std::vector<sim::Piece> reverse_pieces(const std::vector<sim::Piece>& pieces,
                                       const std::vector<int>& contributors) {
  std::vector<sim::Piece> out;
  out.reserve(pieces.size());
  for (const auto& p : pieces) {
    sim::Piece r;
    // The reversed flow converges where the forward flow originated: the
    // forward origin rank identifies the reduced block.
    r.chunk = p.origin;
    r.bytes = p.bytes;
    r.origin = -1;
    r.reduce = true;
    r.contributors = contributors;
    out.push_back(std::move(r));
  }
  return out;
}

sim::Schedule merge_schedule(const DemandPlan& plan,
                             const std::vector<solver::SubSchedule>& solved,
                             const topo::TopologyGroups& groups, bool reverse, bool reduce,
                             std::string name) {
  if (solved.size() != plan.demands.size()) {
    throw std::invalid_argument("solved sub-schedule count mismatch");
  }

  struct GlobalOp {
    int stage;
    int epoch;
    int demand_index;
    int order;  // original op index, for stable tie-break
    sim::TransferOp op;
  };
  std::vector<GlobalOp> ops;

  for (std::size_t di = 0; di < plan.demands.size(); ++di) {
    const MergedSubDemand& md = plan.demands[di];
    const topo::GroupTopology& gt = groups.group(md.dim, md.group);
    const solver::SubSchedule& ss = solved[di];
    for (std::size_t oi = 0; oi < ss.ops.size(); ++oi) {
      const solver::SubOp& so = ss.ops[oi];
      if (so.piece < 0 || static_cast<std::size_t>(so.piece) >= md.global_piece.size()) {
        throw std::invalid_argument("sub-op references unknown demand piece");
      }
      sim::TransferOp top;
      top.piece = md.global_piece[static_cast<std::size_t>(so.piece)];
      top.src = gt.ranks[static_cast<std::size_t>(so.src)];
      top.dst = gt.ranks[static_cast<std::size_t>(so.dst)];
      top.dim = md.dim;
      top.phase = 0;
      ops.push_back(GlobalOp{md.stage, so.start_epoch, static_cast<int>(di),
                             static_cast<int>(oi), top});
    }
  }

  std::stable_sort(ops.begin(), ops.end(), [&](const GlobalOp& a, const GlobalOp& b) {
    if (a.stage != b.stage) return reverse ? a.stage > b.stage : a.stage < b.stage;
    if (a.epoch != b.epoch) return reverse ? a.epoch > b.epoch : a.epoch < b.epoch;
    if (a.demand_index != b.demand_index) return a.demand_index < b.demand_index;
    return a.order < b.order;
  });

  sim::Schedule out;
  out.name = std::move(name);
  if (reverse && reduce) {
    const int num_ranks = static_cast<int>(groups.group_of.front().size());
    std::vector<int> contributors(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) contributors[static_cast<std::size_t>(r)] = r;
    out.pieces = reverse_pieces(plan.pieces, contributors);
    for (const auto& g : ops) {
      sim::TransferOp op = g.op;
      std::swap(op.src, op.dst);
      out.ops.push_back(op);
    }
  } else if (reverse) {
    // Gather reversal: each forward piece travelled to exactly one final
    // destination; reversed it originates there and flows to the root.
    std::vector<int> final_dst(plan.pieces.size(), -1);
    for (const auto& g : ops) {
      // `ops` is already sorted in reversed order, so the first occurrence
      // of a piece is the forward-last hop — its scatter destination.
      int& slot = final_dst[static_cast<std::size_t>(g.op.piece)];
      if (slot < 0) slot = g.op.dst;
    }
    out.pieces = plan.pieces;
    for (std::size_t i = 0; i < out.pieces.size(); ++i) {
      if (final_dst[i] >= 0) out.pieces[i].origin = final_dst[i];
    }
    for (const auto& g : ops) {
      sim::TransferOp op = g.op;
      std::swap(op.src, op.dst);
      out.ops.push_back(op);
    }
  } else {
    out.pieces = plan.pieces;
    for (const auto& g : ops) out.ops.push_back(g.op);
  }
  reorder_by_estimated_start(out, groups);
  return out;
}

sim::Schedule reverse_schedule(const sim::Schedule& forward, bool reduce, int num_ranks,
                               std::string name) {
  sim::Schedule out;
  out.name = std::move(name);
  if (reduce) {
    std::vector<int> contributors(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) contributors[static_cast<std::size_t>(r)] = r;
    out.pieces = reverse_pieces(forward.pieces, contributors);
  } else {
    // Gather reversal: the piece's chronologically last forward op delivers
    // it to its scatter destination — that destination becomes the origin.
    out.pieces = forward.pieces;
    std::vector<int> final_dst(forward.pieces.size(), -1);
    for (const auto& op : forward.ops) {
      final_dst[static_cast<std::size_t>(op.piece)] = op.dst;
    }
    for (std::size_t i = 0; i < out.pieces.size(); ++i) {
      if (final_dst[i] >= 0) out.pieces[i].origin = final_dst[i];
    }
  }
  for (auto it = forward.ops.rbegin(); it != forward.ops.rend(); ++it) {
    sim::TransferOp op = *it;
    std::swap(op.src, op.dst);
    out.ops.push_back(op);
  }
  return out;
}

}  // namespace syccl::core
