// Schedule library: memoised synthesis plus a persistent on-disk format.
//
// Production deployments synthesize once per (topology, collective, size)
// and serve the schedule from a library afterwards (the paper's workflow:
// synthesize offline in minutes, execute for the lifetime of the job). The
// library keys on a structural topology signature, so a re-profiled but
// identical cluster hits the cache.
#pragma once

#include <map>
#include <string>

#include "coll/collective.h"
#include "core/synthesizer.h"

namespace syccl::core {

/// Structural digest of a topology's dimension/group decomposition: equal
/// signatures ⇒ schedules are transferable.
std::string topology_signature(const topo::TopologyGroups& groups);

/// Cache key for one collective on one topology.
std::string schedule_key(const topo::TopologyGroups& groups, const coll::Collective& coll);

class ScheduleLibrary {
 public:
  /// The library synthesizes through `synth` on a miss. The synthesizer must
  /// outlive the library.
  explicit ScheduleLibrary(Synthesizer& synth);

  /// Returns the cached result for `coll`, synthesizing on first use.
  const SynthesisResult& get(const coll::Collective& coll);

  /// True if `coll` is already cached (no synthesis triggered).
  bool contains(const coll::Collective& coll) const;

  std::size_t size() const { return entries_.size(); }

  /// Persists every cached schedule as MSCCL-style XML plus an index file
  /// under `dir` (created if missing). Returns the number of files written.
  int save(const std::string& dir) const;

  /// Loads previously saved schedules for this library's topology; entries
  /// for other topologies are skipped. Returns the number loaded.
  int load(const std::string& dir);

 private:
  Synthesizer& synth_;
  std::map<std::string, SynthesisResult> entries_;
};

}  // namespace syccl::core
