// Schedule library: memoised synthesis plus a persistent on-disk format.
//
// Production deployments synthesize once per (topology, collective, size)
// and serve the schedule from a library afterwards (the paper's workflow:
// synthesize offline in minutes, execute for the lifetime of the job). The
// library keys on a structural topology signature, so a re-profiled but
// identical cluster hits the cache.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "coll/collective.h"
#include "core/synthesizer.h"
#include "solver/solve_cache.h"

namespace syccl::core {

/// Structural digest of a topology's dimension/group decomposition: equal
/// signatures ⇒ schedules are transferable.
std::string topology_signature(const topo::TopologyGroups& groups);

/// Cache key for one collective on one topology.
std::string schedule_key(const topo::TopologyGroups& groups, const coll::Collective& coll);

class ScheduleLibrary {
 public:
  /// The library synthesizes through `synth` on a miss. The synthesizer must
  /// outlive the library.
  explicit ScheduleLibrary(Synthesizer& synth);

  /// Running lookup counters of get(). The library is the whole-schedule
  /// layer; sub-demand reuse below it shows up in solve_cache_stats().
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// Returns the cached result for `coll`, synthesizing on first use.
  const SynthesisResult& get(const coll::Collective& coll);

  /// True if `coll` is already cached (no synthesis triggered).
  bool contains(const coll::Collective& coll) const;

  std::size_t size() const { return entries_.size(); }

  Counters counters() const { return counters_; }

  /// Snapshot of the process-wide sub-demand solve cache that backs every
  /// synthesis this library triggers (hits/misses/bytes; §5.3 reuse layer).
  solver::SubScheduleCache::Stats solve_cache_stats() const {
    return solver::SubScheduleCache::instance().stats();
  }

  /// Persists every cached schedule as MSCCL-style XML plus an index file
  /// under `dir` (created if missing). Returns the number of files written.
  int save(const std::string& dir) const;

  /// Loads previously saved schedules for this library's topology; entries
  /// for other topologies are skipped. Returns the number loaded.
  int load(const std::string& dir);

 private:
  Synthesizer& synth_;
  std::map<std::string, SynthesisResult> entries_;
  Counters counters_;
};

}  // namespace syccl::core
