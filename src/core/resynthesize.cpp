#include "core/resynthesize.h"

#include <set>
#include <sstream>

#include "topo/groups.h"
#include "util/stopwatch.h"

namespace syccl::core {

namespace {

/// Identity key of one group: tier, member ranks, canonical signature.
/// Two groups with equal keys present exactly the same star abstraction on
/// exactly the same GPUs, so their sub-demands (and cached sub-schedules)
/// are interchangeable.
std::string group_key(int tier, const topo::GroupTopology& g) {
  std::ostringstream os;
  os << tier << "|";
  for (int r : g.ranks) os << r << ",";
  os << "|" << g.signature();
  return os.str();
}

}  // namespace

ResynthesisReport resynthesize(const topo::Topology& base, const topo::MutationResult& mutation,
                               const coll::Collective& coll, const SynthesisConfig& config,
                               const SynthesisResult* previous) {
  ResynthesisReport report;
  if (mutation.delta.empty() && previous != nullptr) {
    report.result = *previous;
    report.reused_previous = true;
    const topo::TopologyGroups groups = topo::extract_groups(base);
    for (const auto& dim : groups.dims) {
      report.total_groups += static_cast<int>(dim.groups.size());
    }
    return report;
  }

  SynthesisConfig cfg = config;
  cfg.use_solve_cache = true;

  util::Stopwatch clock;
  Synthesizer synth(mutation.topo, cfg);

  // Diff the group decompositions: a group of the mutated topology is
  // affected iff no base group matches its (tier, ranks, signature). Keyed
  // by content rather than (dim, index) so the count stays meaningful when a
  // failure removes or reshapes whole dimensions.
  std::multiset<std::string> base_keys;
  const topo::TopologyGroups base_groups = topo::extract_groups(base);
  for (const auto& dim : base_groups.dims) {
    for (const auto& g : dim.groups) base_keys.insert(group_key(dim.tier, g));
  }
  for (const auto& dim : synth.groups().dims) {
    for (const auto& g : dim.groups) {
      ++report.total_groups;
      const auto it = base_keys.find(group_key(dim.tier, g));
      if (it == base_keys.end()) {
        ++report.affected_groups;
      } else {
        base_keys.erase(it);
      }
    }
  }

  report.result = synth.synthesize(coll);
  report.elapsed_s = clock.elapsed_seconds();
  report.classes_reused = report.result.breakdown.cache_hits;
  report.classes_resolved = report.result.breakdown.cache_misses;
  return report;
}

}  // namespace syccl::core
