// Asymmetric collectives (paper §8, "Adaptability to asymmetric collective
// workloads").
//
// MoE-style Alltoall(v) breaks the collective symmetry SyCCL relies on; the
// paper argues heuristic synthesis is the right tool there and suggests
// SyCCL can still seed it. This module implements that path: a size-aware
// heuristic that routes each (src, dst, bytes) entry directly — or through a
// rail-aligned relay on multi-rail fabrics (PXN-style) — ordering transfers
// longest-first to minimise makespan on the contended ports.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/schedule.h"
#include "topo/groups.h"

namespace syccl::core {

/// Per-pair demand matrix: bytes[s][d] to move from rank s to rank d
/// (diagonal ignored). Sizes may differ arbitrarily — Alltoallv.
using DemandMatrix = std::vector<std::vector<std::uint64_t>>;

/// Validates shape (square, matching the topology's rank count, zero
/// diagonal). Throws std::invalid_argument otherwise.
void validate_demand_matrix(const DemandMatrix& demand, const topo::TopologyGroups& groups);

/// Heuristic Alltoallv schedule: longest-processing-time-first ordering,
/// rail-aligned relays for cross-rail transfers on ≥3-dimensional
/// topologies. Piece i corresponds to matrix entry in row-major order of
/// the non-zero entries; Piece::chunk is assigned densely in that order.
sim::Schedule synthesize_alltoallv(const DemandMatrix& demand,
                                   const topo::TopologyGroups& groups);

/// True when every destination receives every non-zero entry destined to it
/// exactly once (structural check mirroring validate_schedule).
bool verify_alltoallv(const sim::Schedule& schedule, const DemandMatrix& demand);

/// Heuristic AllGatherv (paper §8: AllGather(v) with per-rank sizes): each
/// rank with a non-zero contribution broadcasts it hierarchically — NVLink
/// inside its server, one rail crossing per remote server, NVLink fan-out
/// there. Contributions are issued longest-first.
sim::Schedule synthesize_allgatherv(const std::vector<std::uint64_t>& bytes_per_rank,
                                    const topo::TopologyGroups& groups);

/// True when every rank holds every non-zero contribution.
bool verify_allgatherv(const sim::Schedule& schedule,
                       const std::vector<std::uint64_t>& bytes_per_rank);

}  // namespace syccl::core
