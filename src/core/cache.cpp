#include "core/cache.h"

#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

#include "runtime/xml.h"
#include "util/log.h"

namespace syccl::core {

namespace {

/// Filesystem-safe digest of an arbitrary string.
std::string digest(const std::string& text) {
  // FNV-1a, printed as hex — collision-safe enough for a cache key prefix;
  // the full key is verified from the index file on load.
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  std::ostringstream os;
  os << std::hex << h;
  return os.str();
}

}  // namespace

std::string topology_signature(const topo::TopologyGroups& groups) {
  std::ostringstream os;
  for (const auto& dim : groups.dims) {
    os << "dim(tier=" << dim.tier << ",cap=" << dim.capacity_dim << "){";
    for (const auto& g : dim.groups) os << g.signature() << "|";
    os << "}";
  }
  return os.str();
}

std::string schedule_key(const topo::TopologyGroups& groups, const coll::Collective& coll) {
  std::ostringstream os;
  os << digest(topology_signature(groups)) << ":" << coll::kind_name(coll.kind()) << ":"
     << coll.num_ranks() << ":" << coll.total_bytes();
  return os.str();
}

ScheduleLibrary::ScheduleLibrary(Synthesizer& synth) : synth_(synth) {}

const SynthesisResult& ScheduleLibrary::get(const coll::Collective& coll) {
  const std::string key = schedule_key(synth_.groups(), coll);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++counters_.misses;
    it = entries_.emplace(key, synth_.synthesize(coll)).first;
  } else {
    ++counters_.hits;
  }
  return it->second;
}

bool ScheduleLibrary::contains(const coll::Collective& coll) const {
  return entries_.count(schedule_key(synth_.groups(), coll)) != 0;
}

int ScheduleLibrary::save(const std::string& dir) const {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  std::ofstream index(fs::path(dir) / "index.txt");
  if (!index) return 0;
  int written = 0;
  for (const auto& [key, result] : entries_) {
    const std::string file = digest(key) + ".xml";
    std::ofstream out(fs::path(dir) / file);
    if (!out) continue;
    // num_ranks is recoverable from the key (third field).
    std::istringstream ks(key);
    std::string topo_part, kind_part, ranks_part;
    std::getline(ks, topo_part, ':');
    std::getline(ks, kind_part, ':');
    std::getline(ks, ranks_part, ':');
    out << runtime::to_xml(result.schedule, std::stoi(ranks_part));
    index << key << " " << file << " " << result.predicted_time << "\n";
    ++written;
  }
  return written;
}

int ScheduleLibrary::load(const std::string& dir) {
  namespace fs = std::filesystem;
  std::ifstream index(fs::path(dir) / "index.txt");
  if (!index) return 0;
  const std::string my_topo = digest(topology_signature(synth_.groups()));
  int loaded = 0;
  std::string key, file;
  double predicted = 0.0;
  while (index >> key >> file >> predicted) {
    if (key.rfind(my_topo + ":", 0) != 0) continue;  // different topology
    std::ifstream in(fs::path(dir) / file);
    if (!in) continue;
    std::stringstream buffer;
    buffer << in.rdbuf();
    try {
      SynthesisResult result;
      result.schedule = runtime::from_xml(buffer.str());
      result.predicted_time = predicted;
      result.chosen = "loaded from library";
      entries_[key] = std::move(result);
      ++loaded;
    } catch (const std::exception& e) {
      SYCCL_WARN << "skipping corrupt library entry " << file << ": " << e.what();
    }
  }
  return loaded;
}

}  // namespace syccl::core
