#include "core/subdemand.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace syccl::core {

namespace {

/// chunk index by (src, first dst) for scatter routing; -1 keys by src only.
struct ChunkIndex {
  std::map<int, std::vector<int>> by_src;
  std::map<std::pair<int, int>, int> by_src_dst;

  explicit ChunkIndex(const coll::Collective& coll) {
    for (int c = 0; c < coll.num_chunks(); ++c) {
      const auto& chunk = coll.chunks()[static_cast<std::size_t>(c)];
      by_src[chunk.src].push_back(c);
      if (chunk.dsts.size() == 1) by_src_dst[{chunk.src, chunk.dsts.front()}] = c;
    }
  }
};

/// Children lists of the relay tree.
std::vector<std::vector<int>> children_of(const sketch::Sketch& s) {
  std::vector<std::vector<int>> ch(s.parent.size());
  for (std::size_t v = 0; v < s.parent.size(); ++v) {
    const int p = s.parent[v];
    if (p >= 0) ch[static_cast<std::size_t>(p)].push_back(static_cast<int>(v));
  }
  return ch;
}

/// Ranks in the subtree rooted at v (v included).
void collect_subtree(int v, const std::vector<std::vector<int>>& children,
                     std::vector<int>& out) {
  out.push_back(v);
  for (int c : children[static_cast<std::size_t>(v)]) collect_subtree(c, children, out);
}

}  // namespace

DemandPlan build_demand_plan(const sketch::SketchCombination& combo,
                             const coll::Collective& coll, const topo::TopologyGroups& groups) {
  if (combo.sketches.empty()) throw std::invalid_argument("empty sketch combination");
  const ChunkIndex chunks(coll);
  const double chunk_bytes = coll.chunk_bytes();

  DemandPlan plan;
  // Merge accumulator: (stage, dim, group, quantised bytes) → demand index.
  std::map<std::tuple<int, int, int, long long>, std::size_t> merged;

  for (const auto& ws : combo.sketches) {
    const sketch::Sketch& sk = ws.sketch;
    const double bytes = ws.fraction * chunk_bytes;
    if (bytes <= 0) throw std::invalid_argument("non-positive piece bytes");
    const long long size_key = std::llround(bytes * 256.0);

    // Global pieces carried by this sketch.
    const auto src_it = chunks.by_src.find(sk.root);
    if (src_it == chunks.by_src.end() || src_it->second.empty()) {
      throw std::invalid_argument("sketch root carries no chunk of the collective");
    }
    // piece id per chunk index (for this sketch).
    std::map<int, int> piece_of_chunk;
    for (int c : src_it->second) {
      sim::Piece piece;
      piece.chunk = c;
      piece.bytes = bytes;
      piece.origin = sk.root;
      piece_of_chunk[c] = plan.add_piece_index(std::move(piece));
    }

    const bool scatter = sk.pattern == sketch::RootedPattern::Scatter;
    std::vector<std::vector<int>> children;
    if (scatter) children = children_of(sk);

    for (int k = 0; k < sk.num_stages(); ++k) {
      for (const auto& spec : sk.stages[static_cast<std::size_t>(k)].demands) {
        const topo::GroupTopology& gt = groups.group(spec.dim, spec.group);

        const auto key = std::make_tuple(k, spec.dim, spec.group, size_key);
        auto mit = merged.find(key);
        if (mit == merged.end()) {
          MergedSubDemand md;
          md.stage = k;
          md.dim = spec.dim;
          md.group = spec.group;
          md.demand.group = &gt;
          md.demand.piece_bytes = bytes;
          plan.demands.push_back(std::move(md));
          mit = merged.emplace(key, plan.demands.size() - 1).first;
        }
        MergedSubDemand& md = plan.demands[mit->second];

        auto local = [&](int rank) {
          const int l = gt.local_of(rank);
          if (l < 0) throw std::invalid_argument("sketch rank outside its group");
          return l;
        };

        if (!scatter) {
          // Broadcast: every chunk of the root flows along the sub-demand.
          std::vector<int> lsrcs, ldsts;
          for (int s : spec.srcs) lsrcs.push_back(local(s));
          for (int d : spec.dsts) ldsts.push_back(local(d));
          for (const auto& [c, pid] : piece_of_chunk) {
            (void)c;
            solver::DemandPiece dp;
            dp.id = static_cast<int>(md.demand.pieces.size());
            dp.srcs = lsrcs;
            dp.dsts = ldsts;
            md.demand.pieces.push_back(std::move(dp));
            md.global_piece.push_back(pid);
          }
        } else {
          // Scatter: each destination pulls its own chunk plus its subtree's
          // chunks from its relay parent.
          for (int v : spec.dsts) {
            const int p = sk.parent[static_cast<std::size_t>(v)];
            if (p < 0) throw std::invalid_argument("scatter destination without parent");
            std::vector<int> subtree;
            collect_subtree(v, children, subtree);
            for (int w : subtree) {
              const auto cit = chunks.by_src_dst.find({sk.root, w});
              if (cit == chunks.by_src_dst.end()) continue;  // root keeps its own block
              solver::DemandPiece dp;
              dp.id = static_cast<int>(md.demand.pieces.size());
              dp.srcs = {local(p)};
              dp.dsts = {local(v)};
              md.demand.pieces.push_back(std::move(dp));
              md.global_piece.push_back(piece_of_chunk.at(cit->second));
            }
          }
        }
      }
    }
  }

  // Drop empty demands (scatter specs whose chunks were absent).
  std::vector<MergedSubDemand> kept;
  for (auto& d : plan.demands) {
    if (!d.demand.pieces.empty()) kept.push_back(std::move(d));
  }
  plan.demands = std::move(kept);

  // Canonicalise piece order inside every demand: isomorphism-class caching
  // (§5.3) shares solved sub-schedules positionally, so demands with the
  // same structure must list their pieces in the same order.
  for (auto& d : plan.demands) {
    const std::size_t np = d.demand.pieces.size();
    for (auto& p : d.demand.pieces) {
      std::sort(p.srcs.begin(), p.srcs.end());
      std::sort(p.dsts.begin(), p.dsts.end());
    }
    std::vector<std::size_t> idx(np);
    for (std::size_t i = 0; i < np; ++i) idx[i] = i;
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      const auto& pa = d.demand.pieces[a];
      const auto& pb = d.demand.pieces[b];
      if (pa.srcs != pb.srcs) return pa.srcs < pb.srcs;
      return pa.dsts < pb.dsts;
    });
    std::vector<solver::DemandPiece> pieces;
    std::vector<int> globals;
    pieces.reserve(np);
    globals.reserve(np);
    for (std::size_t i = 0; i < np; ++i) {
      solver::DemandPiece p = std::move(d.demand.pieces[idx[i]]);
      p.id = static_cast<int>(i);
      pieces.push_back(std::move(p));
      globals.push_back(d.global_piece[idx[i]]);
    }
    d.demand.pieces = std::move(pieces);
    d.global_piece = std::move(globals);
  }
  std::stable_sort(plan.demands.begin(), plan.demands.end(),
                   [](const MergedSubDemand& a, const MergedSubDemand& b) {
                     return a.stage < b.stage;
                   });
  return plan;
}

}  // namespace syccl::core
