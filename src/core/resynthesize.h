// Incremental re-synthesis after a topology mutation (dynamic-fleet layer).
//
// A link degradation or failure invalidates only the groups whose physical
// paths touch the changed links; every other group keeps its canonical
// signature, so its sub-demand classes still hit the process-wide
// solver::SubScheduleCache (solve_cache.h) warmed by the previous synthesis.
// Re-synthesis therefore costs one sketch pass plus re-solving the few
// affected classes — milliseconds where a cold synthesis burns seconds in
// the solver — while producing output *byte-identical* to a cold synthesis
// on the mutated topology: the pipeline is deterministic and cache hits
// return exactly the schedule a fresh solve would (PR-pinned property).
//
// The modal-β bandwidth share (topo/groups.cpp) is what keeps unaffected
// classes cache-hot: a minority degradation leaves every dimension's u_d —
// and hence the sketch fractions and sub-demand piece sizes — unchanged.
#pragma once

#include "core/synthesizer.h"
#include "topo/mutate.h"

namespace syccl::core {

/// Outcome of one incremental re-synthesis.
struct ResynthesisReport {
  SynthesisResult result;
  /// Groups of the mutated topology with no identical counterpart (same
  /// tier, member ranks and canonical signature) in the base topology —
  /// the groups whose sub-demands had to be re-solved.
  int affected_groups = 0;
  int total_groups = 0;
  /// Sub-demand classes served from the warm solve cache vs re-solved.
  int classes_reused = 0;
  int classes_resolved = 0;
  /// Wall time of the incremental synthesis, seconds.
  double elapsed_s = 0.0;
  /// True when the delta was empty and `previous` was returned unchanged.
  bool reused_previous = false;
};

/// Re-synthesizes `coll` on `mutation.topo`, reusing every sub-demand class
/// the mutation did not touch from the process-wide solve cache (warmed by
/// whatever synthesis produced `previous`). `base` is the pre-mutation
/// topology, used to report which groups changed. If the delta is empty and
/// `previous` is provided, returns it unchanged without re-synthesizing.
///
/// The cache is always enabled for the incremental pass regardless of
/// `config.use_solve_cache` — serving unaffected classes from it is the
/// point. The result is byte-identical to a cold synthesis on
/// `mutation.topo` with the same config.
ResynthesisReport resynthesize(const topo::Topology& base, const topo::MutationResult& mutation,
                               const coll::Collective& coll, const SynthesisConfig& config = {},
                               const SynthesisResult* previous = nullptr);

}  // namespace syccl::core
