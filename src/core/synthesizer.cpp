#include "core/synthesizer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "coll/decompose.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/solve_cache.h"
#include "core/merge.h"
#include "core/subdemand.h"
#include "sketch/replicate.h"
#include "sketch/search.h"
#include "topo/groups.h"
#include "util/log.h"
#include "util/stopwatch.h"

namespace syccl::core {

namespace {

/// A candidate = one sketch combination with its demand plan and the
/// isomorphism-class index of every merged sub-demand.
struct Candidate {
  sketch::SketchCombination combo;
  DemandPlan plan;
  std::vector<int> demand_class;
  /// Per-demand remap carrying the class representative's solution into this
  /// demand's local coordinates (identity for the representative itself and
  /// for positionally identical demands).
  std::vector<solver::SubScheduleRemap> demand_remap;
  double predicted = std::numeric_limits<double>::infinity();
  bool valid = true;
};

/// Isomorphism-class registry shared by all candidates of one synthesis.
/// Owns copies of its representative demands so interning never depends on
/// candidate storage staying put (candidates move while being collected and
/// are evaluated concurrently later). Classes are keyed on the *canonical*
/// demand key, so demands whose groups are isomorphic but differently
/// labelled (e.g. the same degraded link at different ranks) share a class;
/// intern() returns the remap that repositions the representative's solution
/// onto the interned demand.
struct ClassRegistry {
  std::map<std::string, int> index_of;
  std::vector<solver::SubDemand> representative;
  std::vector<solver::CanonicalDemand> canon;  ///< of the representative

  std::pair<int, solver::SubScheduleRemap> intern(const solver::SubDemand& demand) {
    solver::CanonicalDemand cd = demand.canonical();
    const auto it = index_of.find(cd.key);
    if (it == index_of.end()) {
      const int id = static_cast<int>(representative.size());
      index_of.emplace(cd.key, id);
      representative.push_back(demand);
      canon.push_back(std::move(cd));
      return {id, solver::SubScheduleRemap{}};
    }
    const solver::CanonicalDemand& rep = canon[static_cast<std::size_t>(it->second)];
    if (rep.identity && cd.identity) return {it->second, solver::SubScheduleRemap{}};
    // Compose rep-local -> canonical -> this-local.
    const solver::SubScheduleRemap down = cd.from_canonical();
    solver::SubScheduleRemap remap;
    remap.member.resize(rep.member_perm.size());
    remap.piece.resize(rep.piece_perm.size());
    bool ident = true;
    for (std::size_t i = 0; i < rep.member_perm.size(); ++i) {
      const int to = down.is_identity()
                         ? rep.member_perm[i]
                         : down.member[static_cast<std::size_t>(rep.member_perm[i])];
      remap.member[i] = to;
      if (to != static_cast<int>(i)) ident = false;
    }
    for (std::size_t i = 0; i < rep.piece_perm.size(); ++i) {
      const int to = down.is_identity()
                         ? rep.piece_perm[i]
                         : down.piece[static_cast<std::size_t>(rep.piece_perm[i])];
      remap.piece[i] = to;
      if (to != static_cast<int>(i)) ident = false;
    }
    if (ident) return {it->second, solver::SubScheduleRemap{}};
    return {it->second, std::move(remap)};
  }
};

}  // namespace

Synthesizer::Synthesizer(const topo::Topology& topo, SynthesisConfig config)
    : topo_(topo),
      groups_(topo::extract_groups(topo)),
      config_(std::move(config)),
      pool_(static_cast<std::size_t>(std::max(0, config_.num_threads))) {}

SynthesisResult Synthesizer::synthesize(const coll::Collective& coll) {
  SYCCL_TRACE_SPAN(span, "synthesize", "core");
  using coll::CollKind;
  switch (coll.kind()) {
    case CollKind::SendRecv:
      return synthesize_sendrecv(coll);
    case CollKind::Broadcast:
      return synthesize_pattern(coll, coll, false, coll.chunks().front().src,
                                sketch::RootedPattern::Broadcast, false);
    case CollKind::Scatter:
      return synthesize_pattern(coll, coll, false, coll.chunks().front().src,
                                sketch::RootedPattern::Scatter, false);
    case CollKind::Reduce: {
      // Reverse of Broadcast rooted at the reduce root: synthesize the
      // forward twin, then flip (§4.1).
      const int root = coll.chunks().front().dsts.front();
      const coll::Collective twin =
          coll::make_broadcast(coll.num_ranks(), coll.total_bytes() / coll.num_ranks(), root);
      return synthesize_pattern(twin, coll, false, root, sketch::RootedPattern::Broadcast,
                                true);
    }
    case CollKind::Gather: {
      const int root = coll.chunks().front().dsts.front();
      const coll::Collective twin =
          coll::make_scatter(coll.num_ranks(), coll.total_bytes(), root);
      return synthesize_pattern(twin, coll, false, root, sketch::RootedPattern::Scatter, true);
    }
    case CollKind::AllGather:
      return synthesize_pattern(coll, coll, true, 0, sketch::RootedPattern::Broadcast, false);
    case CollKind::AllToAll:
      return synthesize_pattern(coll, coll, true, 0, sketch::RootedPattern::Scatter, false);
    case CollKind::ReduceScatter: {
      // Reverse of AllGather with the same per-chunk size.
      const coll::Collective twin = coll::make_allgather(coll.num_ranks(), coll.total_bytes());
      return synthesize_pattern(twin, coll, true, 0, sketch::RootedPattern::Broadcast, true);
    }
    case CollKind::AllReduce: {
      const auto [rs, ag] = coll::allreduce_phases(coll);
      // The phases are independent syntheses, so they run concurrently on
      // the pool (parallel_for is re-entrant). The RS phase is the reversed
      // twin of the AG phase, so their sub-demand classes coincide — the
      // solve cache's in-flight dedup makes whichever phase gets there
      // second reuse the first phase's solves instead of duplicating them.
      SynthesisResult first, second;
      pool_.parallel_for(2, [&](std::size_t i) {
        if (i == 0) {
          first = synthesize(rs);
        } else {
          second = synthesize(ag);
        }
      });
      SynthesisResult out;
      out.schedule = std::move(first.schedule);
      out.schedule.append_sequential(second.schedule);
      out.schedule.name = "syccl-allreduce";
      out.predicted_time = first.predicted_time + second.predicted_time;
      out.breakdown = first.breakdown;
      out.breakdown.search_s += second.breakdown.search_s;
      out.breakdown.combine_s += second.breakdown.combine_s;
      out.breakdown.solve1_s += second.breakdown.solve1_s;
      out.breakdown.solve2_s += second.breakdown.solve2_s;
      out.breakdown.total_s += second.breakdown.total_s;
      out.breakdown.num_combinations += second.breakdown.num_combinations;
      out.breakdown.num_subdemands += second.breakdown.num_subdemands;
      out.breakdown.num_solver_calls += second.breakdown.num_solver_calls;
      out.breakdown.max_solve_s =
          std::max(out.breakdown.max_solve_s, second.breakdown.max_solve_s);
      out.breakdown.cache_hits += second.breakdown.cache_hits;
      out.breakdown.cache_misses += second.breakdown.cache_misses;
      out.breakdown.cache_bytes =
          std::max(out.breakdown.cache_bytes, second.breakdown.cache_bytes);
      out.chosen = first.chosen + " ++ " + second.chosen;
      return out;
    }
  }
  throw std::invalid_argument("unsupported collective kind");
}

SynthesisResult Synthesizer::synthesize_sendrecv(const coll::Collective& coll) {
  SynthesisResult out;
  out.schedule.name = "syccl-sendrecv";
  out.schedule.pieces = sim::pieces_for(coll);
  const auto& chunk = coll.chunks().front();
  out.schedule.add_op(0, chunk.src, chunk.dsts.front());
  const sim::Simulator simulator(groups_, config_.sim);
  out.predicted_time = simulator.time_collective(out.schedule, coll);
  out.chosen = "direct send";
  return out;
}

SynthesisResult Synthesizer::synthesize_pattern(const coll::Collective& coll,
                                                const coll::Collective& eval_coll,
                                                bool all_to_all, int root,
                                                sketch::RootedPattern pattern, bool reverse) {
  SYCCL_TRACE_SPAN(synth_span, "synthesize_pattern", "core");
  util::Stopwatch total_clock;
  SynthesisBreakdown breakdown;
  util::Stopwatch phase_clock;

  // ---- Phase 1a: sketch search (§4.1).
  std::vector<sketch::Sketch> sketches;
  std::vector<sketch::Sketch> prototypes;
  {
    SYCCL_TRACE_SPAN(span, "sketch_search", "core");
    sketches = sketch::search_sketches(groups_, root, pattern, config_.sketch.search);
    span.annotate("sketches", static_cast<double>(sketches.size()));
    // `sketches` is kept alive: when none of the selected prototypes
    // replicates (degraded/failed topologies), phase 1b falls back to the
    // full search output — profile dedup in select_prototypes can hide a
    // replicable sketch behind an infeasible one with the same workload.
    prototypes = sketch::select_prototypes(sketches, groups_, config_.sketch.max_prototypes);
    span.annotate("prototypes", static_cast<double>(prototypes.size()));
  }
  breakdown.search_s = phase_clock.elapsed_seconds();

  // ---- Phase 1b: replication + cross-dimension combination (§4.2/§4.3).
  phase_clock.reset();
  std::vector<sketch::SketchCombination> combos;
  {
    SYCCL_TRACE_SPAN(span, "combine", "core");
    std::vector<sketch::SketchCombination> balanced;
    auto try_family = [&](const sketch::Sketch& proto) {
      try {
        sketch::SketchCombination combo = sketch::balance_across_groups(proto, groups_);
        if (all_to_all) combo = sketch::replicate_for_all_roots(combo, groups_);
        balanced.push_back(std::move(combo));
      } catch (const std::runtime_error& e) {
        // Some sketch families cannot be replicated consistently onto every
        // root (their mapping corners itself); drop the family.
        SYCCL_DEBUG << "dropping sketch family: " << e.what();
      }
    };
    for (const auto& proto : prototypes) try_family(proto);
    // Fallback for degraded/failed fabrics: every selected prototype can be
    // structurally impossible to root everywhere (e.g. the root's image
    // cannot cross any fabric dim), and select_prototypes' workload-profile
    // dedup may have discarded a replicable sketch in favour of such an
    // impossible one. Walk the raw search output until one family works.
    for (std::size_t si = 0; si < sketches.size() && balanced.empty(); ++si) {
      try_family(sketches[si]);
    }
    if (balanced.empty()) throw std::runtime_error("no replicable sketch family found");
    combos = sketch::generate_combinations(balanced, groups_, config_.sketch.combine);
    if (combos.empty()) throw std::runtime_error("no sketch combinations generated");
    span.annotate("combinations", static_cast<double>(combos.size()));
  }
  breakdown.combine_s = phase_clock.elapsed_seconds();
  breakdown.num_combinations = static_cast<int>(combos.size());

  // ---- Phase 2a: coarse solve of every candidate (§5.1, E₁).
  phase_clock.reset();
  std::vector<Candidate> candidates;
  candidates.reserve(combos.size());
  ClassRegistry registry;
  for (const auto& combo : combos) {
    Candidate cand;
    cand.combo = combo;
    cand.plan = build_demand_plan(combo, coll, groups_);
    cand.demand_class.reserve(cand.plan.demands.size());
    cand.demand_remap.reserve(cand.plan.demands.size());
    for (const auto& md : cand.plan.demands) {
      auto [cls, remap] = registry.intern(md.demand);
      cand.demand_class.push_back(cls);
      cand.demand_remap.push_back(std::move(remap));
    }
    breakdown.num_subdemands += static_cast<int>(cand.plan.demands.size());
    candidates.push_back(std::move(cand));
  }

  auto solve_classes = [&](const solver::MilpSchedulerOptions& base_opts, double E,
                           const std::vector<bool>& needed,
                           std::vector<solver::SubSchedule>& out) {
    solver::MilpSchedulerOptions opts = base_opts;
    opts.E = E;
    std::vector<int> todo;
    for (std::size_t c = 0; c < registry.representative.size(); ++c) {
      if (needed[c]) todo.push_back(static_cast<int>(c));
    }
    out.resize(registry.representative.size());
    std::vector<double> solve_times(todo.size(), 0.0);
    std::atomic<int> hits{0};
    pool_.parallel_for(todo.size(), [&](std::size_t i) {
      SYCCL_TRACE_SPAN(span, "solve_class", "core");
      const std::size_t c = static_cast<std::size_t>(todo[i]);
      span.annotate("class", static_cast<double>(c));
      solver::SolveStats stats;
      out[c] = config_.use_solve_cache
                   ? solver::SubScheduleCache::instance().get_or_solve(
                         registry.representative[c], opts, &stats)
                   : solver::solve_sub_demand(registry.representative[c], opts, &stats);
      if (stats.cache_hit) hits.fetch_add(1);
      solve_times[i] = stats.solve_seconds;
    });
    const int n_hits = hits.load();
    breakdown.num_solver_calls += static_cast<int>(todo.size()) - n_hits;
    if (config_.use_solve_cache) {
      breakdown.cache_hits += n_hits;
      breakdown.cache_misses += static_cast<int>(todo.size()) - n_hits;
    }
    for (double t : solve_times) breakdown.max_solve_s = std::max(breakdown.max_solve_s, t);
  };

  std::vector<bool> all_needed(registry.representative.size(), true);
  std::vector<solver::SubSchedule> coarse_solutions;
  {
    SYCCL_TRACE_SPAN(span, "coarse_solve", "core");
    span.annotate("classes", static_cast<double>(registry.representative.size()));
    solve_classes(config_.coarse_solver, config_.E1, all_needed, coarse_solutions);
  }

  const sim::Simulator simulator(groups_, config_.sim);

  // Batched candidate evaluation: merge every candidate on the pool, then
  // rank the merged schedules through the simulator's batch API (one shared
  // topology/path cache, candidates fanned across the pool). Per-candidate
  // failures surface as BatchTiming errors, never mask other candidates, and
  // every output is written by candidate index — so the selection below is
  // deterministic regardless of pool size.
  auto evaluate_all = [&](const std::vector<Candidate*>& cands,
                          const std::vector<solver::SubSchedule>& solutions,
                          const char* pass) -> std::vector<sim::Schedule> {
    // Issue-order tuning triples simulation cost; the coarse pass only needs
    // a ranking, so it simulates once and leaves tuning to the fine pass.
    const bool tune = pass[0] == 'f';
    SYCCL_TRACE_SPAN(span, "evaluate_candidates", "core");
    span.annotate("candidates", static_cast<double>(cands.size()));
    span.annotate("fine", tune ? 1.0 : 0.0);
    const std::size_t n = cands.size();
    std::vector<sim::Schedule> schedules(n);
    std::vector<std::string> error(n);

    pool_.parallel_for(n, [&](std::size_t i) {
      const Candidate& cand = *cands[i];
      std::vector<solver::SubSchedule> per_demand;
      per_demand.reserve(cand.plan.demands.size());
      for (std::size_t k = 0; k < cand.demand_class.size(); ++k) {
        const auto& sol = solutions[static_cast<std::size_t>(cand.demand_class[k])];
        per_demand.push_back(solver::remap_sub_schedule(sol, cand.demand_remap[k]));
      }
      try {
        schedules[i] =
            merge_schedule(cand.plan, per_demand, groups_, false, false, "syccl-candidate");
      } catch (const std::exception& e) {
        error[i] = e.what();
      }
    });

    // Collect the candidates that survived so far; batch calls skip the rest.
    const auto live_schedules = [&]() {
      std::pair<std::vector<sim::Schedule*>, std::vector<std::size_t>> live;
      for (std::size_t i = 0; i < n; ++i) {
        if (error[i].empty()) {
          live.first.push_back(&schedules[i]);
          live.second.push_back(i);
        }
      }
      return live;
    };

    if (reverse) {
      // Always tune the forward schedule before flipping it (§4.1): reversing
      // an already well-ordered schedule preserves its pipelining, reversing
      // a raw one does not. The coarse pass skips tuning entirely.
      if (tune) {
        const auto [fwd, fwd_idx] = live_schedules();
        const auto tuned = simulator.tune_issue_orders(fwd, coll, 2, &pool_);
        for (std::size_t j = 0; j < tuned.size(); ++j) {
          if (!tuned[j].ok()) error[fwd_idx[j]] = tuned[j].error;
        }
      }
      pool_.parallel_for(n, [&](std::size_t i) {
        if (!error[i].empty()) return;
        try {
          schedules[i] = reverse_schedule(schedules[i], eval_coll.reduce(),
                                          static_cast<int>(groups_.group_of.front().size()),
                                          "syccl-candidate");
        } catch (const std::exception& e) {
          error[i] = e.what();
        }
      });
    }

    // Issue-order tuning removes head-of-line blocking under the per-port
    // FIFO execution model (§5.2 simulator ranking).
    const auto [live, live_idx] = live_schedules();
    const std::vector<sim::BatchTiming> timings =
        tune ? simulator.tune_issue_orders(live, eval_coll, 2, &pool_)
             : simulator.time_collectives(live, eval_coll, &pool_);
    for (std::size_t j = 0; j < timings.size(); ++j) {
      if (timings[j].ok()) {
        Candidate& cand = *cands[live_idx[j]];
        cand.predicted = timings[j].time;
        SYCCL_DEBUG << pass << " candidate " << cand.combo.describe() << " -> "
                    << cand.predicted * 1e6 << " us";
      } else {
        error[live_idx[j]] = timings[j].error;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (error[i].empty()) continue;
      SYCCL_WARN << "candidate rejected in " << pass << " pass: " << error[i];
      cands[i]->valid = false;
      cands[i]->predicted = std::numeric_limits<double>::infinity();
      schedules[i] = sim::Schedule{};
    }
    return schedules;
  };

  {
    SYCCL_TRACE_SPAN(span, "coarse_eval", "core");
    span.annotate("candidates", static_cast<double>(candidates.size()));
    std::vector<Candidate*> all;
    all.reserve(candidates.size());
    for (auto& cand : candidates) all.push_back(&cand);
    evaluate_all(all, coarse_solutions, "coarse");
  }
  breakdown.solve1_s = phase_clock.elapsed_seconds();

  // ---- Candidate filter: within R1 of the best, at most R2 (§5.3).
  phase_clock.reset();
  double best_coarse = std::numeric_limits<double>::infinity();
  for (const auto& cand : candidates) best_coarse = std::min(best_coarse, cand.predicted);
  if (!std::isfinite(best_coarse)) {
    throw std::runtime_error("every sketch combination failed to produce a valid schedule");
  }
  std::vector<Candidate*> survivors;
  for (auto& cand : candidates) {
    if (cand.valid && cand.predicted <= best_coarse * (1.0 + config_.R1)) {
      survivors.push_back(&cand);
    }
  }
  std::stable_sort(survivors.begin(), survivors.end(),
                   [](const Candidate* a, const Candidate* b) {
                     return a->predicted < b->predicted;
                   });
  if (static_cast<int>(survivors.size()) > config_.R2) {
    survivors.resize(static_cast<std::size_t>(config_.R2));
  }

  // ---- Phase 2b: fine solve of the survivors (E₂) and final selection.
  const std::vector<solver::SubSchedule>* final_solutions = &coarse_solutions;
  std::vector<solver::SubSchedule> fine_solutions;
  if (config_.two_step) {
    SYCCL_TRACE_SPAN(span, "fine_solve", "core");
    std::vector<bool> needed(registry.representative.size(), false);
    for (const Candidate* cand : survivors) {
      for (int c : cand->demand_class) needed[static_cast<std::size_t>(c)] = true;
    }
    solve_classes(config_.fine_solver, config_.E2, needed, fine_solutions);
    final_solutions = &fine_solutions;
  }

  // Fine evaluation (merge + batched simulate + issue-order tuning); the
  // winner is then picked sequentially by predicted time with a stable index
  // tie-break, so the choice is independent of completion order.
  std::vector<sim::Schedule> fine_schedules;
  {
    SYCCL_TRACE_SPAN(span, "fine_eval", "core");
    span.annotate("survivors", static_cast<double>(survivors.size()));
    fine_schedules = evaluate_all(survivors, *final_solutions, "fine");
  }

  SynthesisResult result;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    Candidate* cand = survivors[i];
    if (cand->valid && cand->predicted < best) {
      best = cand->predicted;
      result.schedule = std::move(fine_schedules[i]);
      result.predicted_time = cand->predicted;
      result.chosen = cand->combo.describe();
    }
  }
  if (!std::isfinite(best)) {
    throw std::runtime_error("fine pass invalidated every surviving candidate");
  }
  breakdown.solve2_s = phase_clock.elapsed_seconds();
  breakdown.total_s = total_clock.elapsed_seconds();
  if (config_.use_solve_cache) {
    breakdown.cache_bytes = solver::SubScheduleCache::instance().stats().bytes;
  }
  result.schedule.name = "syccl";
  result.breakdown = breakdown;

  // Fold the per-call breakdown into the process-wide metrics registry so
  // phase totals aggregate across synthesize() calls (one reporting path
  // with the solver/cache/milp layers). Once per synthesis — name lookups
  // here are not on a hot path.
  {
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("synth.patterns").add(1);
    reg.counter("synth.combinations").add(breakdown.num_combinations);
    reg.counter("synth.subdemands").add(breakdown.num_subdemands);
    reg.counter("synth.solver_calls").add(breakdown.num_solver_calls);
    reg.histogram("synth.search_seconds").observe(breakdown.search_s);
    reg.histogram("synth.combine_seconds").observe(breakdown.combine_s);
    reg.histogram("synth.solve1_seconds").observe(breakdown.solve1_s);
    reg.histogram("synth.solve2_seconds").observe(breakdown.solve2_s);
    reg.histogram("synth.total_seconds").observe(breakdown.total_s);
    reg.histogram("synth.max_solve_seconds").observe(breakdown.max_solve_s);
  }
  synth_span.annotate("combinations", breakdown.num_combinations);
  synth_span.annotate("subdemands", breakdown.num_subdemands);
  synth_span.annotate("solver_calls", breakdown.num_solver_calls);
  synth_span.annotate("predicted_us", result.predicted_time * 1e6);
  return result;
}

}  // namespace syccl::core
