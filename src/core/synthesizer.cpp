#include "core/synthesizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "coll/decompose.h"
#include "core/merge.h"
#include "core/subdemand.h"
#include "sketch/replicate.h"
#include "sketch/search.h"
#include "topo/groups.h"
#include "util/log.h"
#include "util/stopwatch.h"

namespace syccl::core {

namespace {

/// A candidate = one sketch combination with its demand plan and the
/// isomorphism-class index of every merged sub-demand.
struct Candidate {
  sketch::SketchCombination combo;
  DemandPlan plan;
  std::vector<int> demand_class;
  double predicted = std::numeric_limits<double>::infinity();
  bool valid = true;
};

/// Isomorphism-class registry shared by all candidates of one synthesis.
struct ClassRegistry {
  std::map<std::string, int> index_of;
  std::vector<const solver::SubDemand*> representative;

  int intern(const solver::SubDemand& demand) {
    const std::string key = demand.isomorphism_key();
    const auto it = index_of.find(key);
    if (it != index_of.end()) return it->second;
    const int id = static_cast<int>(representative.size());
    index_of.emplace(key, id);
    representative.push_back(&demand);
    return id;
  }
};

}  // namespace

Synthesizer::Synthesizer(const topo::Topology& topo, SynthesisConfig config)
    : topo_(topo),
      groups_(topo::extract_groups(topo)),
      config_(std::move(config)),
      pool_(static_cast<std::size_t>(std::max(0, config_.num_threads))) {}

SynthesisResult Synthesizer::synthesize(const coll::Collective& coll) {
  using coll::CollKind;
  switch (coll.kind()) {
    case CollKind::SendRecv:
      return synthesize_sendrecv(coll);
    case CollKind::Broadcast:
      return synthesize_pattern(coll, coll, false, coll.chunks().front().src,
                                sketch::RootedPattern::Broadcast, false);
    case CollKind::Scatter:
      return synthesize_pattern(coll, coll, false, coll.chunks().front().src,
                                sketch::RootedPattern::Scatter, false);
    case CollKind::Reduce: {
      // Reverse of Broadcast rooted at the reduce root: synthesize the
      // forward twin, then flip (§4.1).
      const int root = coll.chunks().front().dsts.front();
      const coll::Collective twin =
          coll::make_broadcast(coll.num_ranks(), coll.total_bytes() / coll.num_ranks(), root);
      return synthesize_pattern(twin, coll, false, root, sketch::RootedPattern::Broadcast,
                                true);
    }
    case CollKind::Gather: {
      const int root = coll.chunks().front().dsts.front();
      const coll::Collective twin =
          coll::make_scatter(coll.num_ranks(), coll.total_bytes(), root);
      return synthesize_pattern(twin, coll, false, root, sketch::RootedPattern::Scatter, true);
    }
    case CollKind::AllGather:
      return synthesize_pattern(coll, coll, true, 0, sketch::RootedPattern::Broadcast, false);
    case CollKind::AllToAll:
      return synthesize_pattern(coll, coll, true, 0, sketch::RootedPattern::Scatter, false);
    case CollKind::ReduceScatter: {
      // Reverse of AllGather with the same per-chunk size.
      const coll::Collective twin = coll::make_allgather(coll.num_ranks(), coll.total_bytes());
      return synthesize_pattern(twin, coll, true, 0, sketch::RootedPattern::Broadcast, true);
    }
    case CollKind::AllReduce: {
      const auto [rs, ag] = coll::allreduce_phases(coll);
      SynthesisResult first = synthesize(rs);
      SynthesisResult second = synthesize(ag);
      SynthesisResult out;
      out.schedule = std::move(first.schedule);
      out.schedule.append_sequential(second.schedule);
      out.schedule.name = "syccl-allreduce";
      out.predicted_time = first.predicted_time + second.predicted_time;
      out.breakdown = first.breakdown;
      out.breakdown.search_s += second.breakdown.search_s;
      out.breakdown.combine_s += second.breakdown.combine_s;
      out.breakdown.solve1_s += second.breakdown.solve1_s;
      out.breakdown.solve2_s += second.breakdown.solve2_s;
      out.breakdown.total_s += second.breakdown.total_s;
      out.breakdown.num_combinations += second.breakdown.num_combinations;
      out.breakdown.num_subdemands += second.breakdown.num_subdemands;
      out.breakdown.num_solver_calls += second.breakdown.num_solver_calls;
      out.breakdown.max_solve_s =
          std::max(out.breakdown.max_solve_s, second.breakdown.max_solve_s);
      out.chosen = first.chosen + " ++ " + second.chosen;
      return out;
    }
  }
  throw std::invalid_argument("unsupported collective kind");
}

SynthesisResult Synthesizer::synthesize_sendrecv(const coll::Collective& coll) {
  SynthesisResult out;
  out.schedule.name = "syccl-sendrecv";
  out.schedule.pieces = sim::pieces_for(coll);
  const auto& chunk = coll.chunks().front();
  out.schedule.add_op(0, chunk.src, chunk.dsts.front());
  const sim::Simulator simulator(groups_, config_.sim);
  out.predicted_time = simulator.time_collective(out.schedule, coll);
  out.chosen = "direct send";
  return out;
}

SynthesisResult Synthesizer::synthesize_pattern(const coll::Collective& coll,
                                                const coll::Collective& eval_coll,
                                                bool all_to_all, int root,
                                                sketch::RootedPattern pattern, bool reverse) {
  util::Stopwatch total_clock;
  SynthesisBreakdown breakdown;
  util::Stopwatch phase_clock;

  // ---- Phase 1a: sketch search (§4.1).
  const auto sketches = sketch::search_sketches(groups_, root, pattern, config_.sketch.search);
  const auto prototypes =
      sketch::select_prototypes(sketches, groups_, config_.sketch.max_prototypes);
  breakdown.search_s = phase_clock.elapsed_seconds();

  // ---- Phase 1b: replication + cross-dimension combination (§4.2/§4.3).
  phase_clock.reset();
  std::vector<sketch::SketchCombination> balanced;
  for (const auto& s : prototypes) {
    try {
      sketch::SketchCombination combo = sketch::balance_across_groups(s, groups_);
      if (all_to_all) combo = sketch::replicate_for_all_roots(combo, groups_);
      balanced.push_back(std::move(combo));
    } catch (const std::runtime_error& e) {
      // Some sketch families cannot be replicated consistently onto every
      // root (their mapping corners itself); drop the family.
      SYCCL_DEBUG << "dropping sketch family: " << e.what();
    }
  }
  if (balanced.empty()) throw std::runtime_error("no replicable sketch family found");
  const auto combos = sketch::generate_combinations(balanced, groups_, config_.sketch.combine);
  if (combos.empty()) throw std::runtime_error("no sketch combinations generated");
  breakdown.combine_s = phase_clock.elapsed_seconds();
  breakdown.num_combinations = static_cast<int>(combos.size());

  // ---- Phase 2a: coarse solve of every candidate (§5.1, E₁).
  phase_clock.reset();
  std::vector<Candidate> candidates;
  candidates.reserve(combos.size());
  ClassRegistry registry;
  for (const auto& combo : combos) {
    Candidate cand;
    cand.combo = combo;
    cand.plan = build_demand_plan(combo, coll, groups_);
    cand.demand_class.assign(cand.plan.demands.size(), 0);  // interned below
    breakdown.num_subdemands += static_cast<int>(cand.plan.demands.size());
    candidates.push_back(std::move(cand));
  }
  // Intern after plans stopped moving (registry stores demand pointers).
  for (auto& cand : candidates) {
    for (std::size_t di = 0; di < cand.plan.demands.size(); ++di) {
      cand.demand_class[di] = registry.intern(cand.plan.demands[di].demand);
    }
  }

  auto solve_classes = [&](const solver::MilpSchedulerOptions& base_opts, double E,
                           const std::vector<bool>& needed,
                           std::vector<solver::SubSchedule>& out) {
    solver::MilpSchedulerOptions opts = base_opts;
    opts.E = E;
    std::vector<int> todo;
    for (std::size_t c = 0; c < registry.representative.size(); ++c) {
      if (needed[c]) todo.push_back(static_cast<int>(c));
    }
    out.resize(registry.representative.size());
    std::vector<double> solve_times(todo.size(), 0.0);
    pool_.parallel_for(todo.size(), [&](std::size_t i) {
      const int c = todo[i];
      solver::SolveStats stats;
      out[static_cast<std::size_t>(c)] =
          solver::solve_sub_demand(*registry.representative[static_cast<std::size_t>(c)], opts,
                                   &stats);
      solve_times[i] = stats.solve_seconds;
    });
    breakdown.num_solver_calls += static_cast<int>(todo.size());
    for (double t : solve_times) breakdown.max_solve_s = std::max(breakdown.max_solve_s, t);
  };

  std::vector<bool> all_needed(registry.representative.size(), true);
  std::vector<solver::SubSchedule> coarse_solutions;
  solve_classes(config_.coarse_solver, config_.E1, all_needed, coarse_solutions);

  const sim::Simulator simulator(groups_, config_.sim);
  auto evaluate = [&](Candidate& cand, const std::vector<solver::SubSchedule>& solutions,
                      const char* pass) {
    // Issue-order tuning triples simulation cost; the coarse pass only needs
    // a ranking, so it simulates once and leaves tuning to the fine pass.
    const bool tune = pass[0] == 'f';
    std::vector<solver::SubSchedule> per_demand;
    per_demand.reserve(cand.plan.demands.size());
    for (std::size_t di = 0; di < cand.plan.demands.size(); ++di) {
      per_demand.push_back(solutions[static_cast<std::size_t>(cand.demand_class[di])]);
    }
    try {
      // Always merge and tune the forward schedule first; for reduce/gather
      // collectives the tuned forward schedule is then reversed (§4.1) and
      // tuned again — reversing an already well-ordered schedule preserves
      // its pipelining, reversing a raw one does not.
      sim::Schedule sched = merge_schedule(cand.plan, per_demand, groups_, false,
                                           false, "syccl-candidate");
      if (reverse) {
        if (tune) simulator.tune_issue_order(sched, coll);
        sched = reverse_schedule(sched, eval_coll.reduce(),
                                 static_cast<int>(groups_.group_of.front().size()),
                                 "syccl-candidate");
      }
      // Issue-order tuning removes head-of-line blocking under the per-port
      // FIFO execution model (§5.2 simulator ranking).
      cand.predicted = tune ? simulator.tune_issue_order(sched, eval_coll)
                            : simulator.time_collective(sched, eval_coll);
      SYCCL_DEBUG << pass << " candidate " << cand.combo.describe() << " -> "
                  << cand.predicted * 1e6 << " us";
      return sched;
    } catch (const std::exception& e) {
      SYCCL_WARN << "candidate rejected in " << pass << " pass: " << e.what();
      cand.valid = false;
      cand.predicted = std::numeric_limits<double>::infinity();
      return sim::Schedule{};
    }
  };

  for (auto& cand : candidates) evaluate(cand, coarse_solutions, "coarse");
  breakdown.solve1_s = phase_clock.elapsed_seconds();

  // ---- Candidate filter: within R1 of the best, at most R2 (§5.3).
  phase_clock.reset();
  double best_coarse = std::numeric_limits<double>::infinity();
  for (const auto& cand : candidates) best_coarse = std::min(best_coarse, cand.predicted);
  if (!std::isfinite(best_coarse)) {
    throw std::runtime_error("every sketch combination failed to produce a valid schedule");
  }
  std::vector<Candidate*> survivors;
  for (auto& cand : candidates) {
    if (cand.valid && cand.predicted <= best_coarse * (1.0 + config_.R1)) {
      survivors.push_back(&cand);
    }
  }
  std::stable_sort(survivors.begin(), survivors.end(),
                   [](const Candidate* a, const Candidate* b) {
                     return a->predicted < b->predicted;
                   });
  if (static_cast<int>(survivors.size()) > config_.R2) {
    survivors.resize(static_cast<std::size_t>(config_.R2));
  }

  // ---- Phase 2b: fine solve of the survivors (E₂) and final selection.
  const std::vector<solver::SubSchedule>* final_solutions = &coarse_solutions;
  std::vector<solver::SubSchedule> fine_solutions;
  if (config_.two_step) {
    std::vector<bool> needed(registry.representative.size(), false);
    for (const Candidate* cand : survivors) {
      for (int c : cand->demand_class) needed[static_cast<std::size_t>(c)] = true;
    }
    solve_classes(config_.fine_solver, config_.E2, needed, fine_solutions);
    final_solutions = &fine_solutions;
  }

  SynthesisResult result;
  double best = std::numeric_limits<double>::infinity();
  for (Candidate* cand : survivors) {
    sim::Schedule sched = evaluate(*cand, *final_solutions, "fine");
    if (cand->valid && cand->predicted < best) {
      best = cand->predicted;
      result.schedule = std::move(sched);
      result.predicted_time = cand->predicted;
      result.chosen = cand->combo.describe();
    }
  }
  if (!std::isfinite(best)) {
    throw std::runtime_error("fine pass invalidated every surviving candidate");
  }
  breakdown.solve2_s = phase_clock.elapsed_seconds();
  breakdown.total_s = total_clock.elapsed_seconds();
  result.schedule.name = "syccl";
  result.breakdown = breakdown;
  return result;
}

}  // namespace syccl::core
