#include "sketch/sketch.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace syccl::sketch {

int Sketch::descendants(int rank) const {
  int count = 0;
  for (std::size_t v = 0; v < parent.size(); ++v) {
    // Walk up from v; if the path passes through `rank`, v is a descendant.
    int cur = parent[v];
    while (cur >= 0) {
      if (cur == rank) {
        ++count;
        break;
      }
      cur = parent[static_cast<std::size_t>(cur)];
    }
  }
  return count;
}

std::vector<std::vector<double>> Sketch::workload(const topo::TopologyGroups& groups) const {
  std::vector<std::vector<double>> w(static_cast<std::size_t>(groups.num_dims()));
  for (int d = 0; d < groups.num_dims(); ++d) {
    w[static_cast<std::size_t>(d)].assign(groups.dims[static_cast<std::size_t>(d)].groups.size(),
                                          0.0);
  }
  for (const Stage& st : stages) {
    for (const SubDemandSpec& r : st.demands) {
      double load = 0.0;
      for (int v : r.dsts) {
        load += pattern == RootedPattern::Scatter ? 1.0 + descendants(v) : 1.0;
      }
      w[static_cast<std::size_t>(r.dim)][static_cast<std::size_t>(r.group)] += load;
    }
  }
  return w;
}

std::vector<double> Sketch::dim_workload(const topo::TopologyGroups& groups) const {
  const auto w = workload(groups);
  std::vector<double> out(w.size(), 0.0);
  for (std::size_t d = 0; d < w.size(); ++d) {
    for (double g : w[d]) out[d] += g;
  }
  return out;
}

std::string Sketch::canonical_key(const topo::TopologyGroups& groups) const {
  // Encode each stage as the sorted multiset of
  // (dim, group-isomorphism-size, |srcs|, |dsts|, per-dst subtree sizes).
  // GPU identities and group indices are erased, so sketches related by a
  // topology automorphism collapse to the same key.
  std::ostringstream os;
  os << (pattern == RootedPattern::Scatter ? "S" : "B") << "|";
  for (const Stage& st : stages) {
    std::vector<std::string> parts;
    for (const SubDemandSpec& r : st.demands) {
      std::ostringstream ps;
      ps << r.dim << ":" << groups.group(r.dim, r.group).size() << ":" << r.srcs.size() << ":"
         << r.dsts.size();
      if (pattern == RootedPattern::Scatter) {
        std::multiset<int> subtrees;
        for (int v : r.dsts) subtrees.insert(descendants(v));
        ps << ":[";
        for (int s : subtrees) ps << s << ",";
        ps << "]";
      }
      parts.push_back(ps.str());
    }
    std::sort(parts.begin(), parts.end());
    for (const auto& p : parts) os << p << ";";
    os << "/";
  }
  return os.str();
}

void Sketch::validate(const topo::TopologyGroups& groups) const {
  const int num_ranks =
      groups.group_of.empty() ? 0 : static_cast<int>(groups.group_of.front().size());
  std::set<int> holders{root};
  std::set<int> ever_dst;
  for (const Stage& st : stages) {
    std::set<int> new_holders;
    for (const SubDemandSpec& r : st.demands) {
      if (r.dim < 0 || r.dim >= groups.num_dims()) throw std::invalid_argument("bad dimension");
      const auto& gd = groups.group_of[static_cast<std::size_t>(r.dim)];
      if (r.srcs.empty() || r.dsts.empty()) {
        throw std::invalid_argument("sub-demand with empty sources or destinations");
      }
      for (int s : r.srcs) {
        if (s < 0 || s >= num_ranks) throw std::invalid_argument("src rank out of range");
        if (gd[static_cast<std::size_t>(s)] != r.group) {
          throw std::invalid_argument("src outside its group");
        }
        if (holders.count(s) == 0) {
          throw std::invalid_argument("source does not hold the chunk yet");
        }
      }
      for (int v : r.dsts) {
        if (v < 0 || v >= num_ranks) throw std::invalid_argument("dst rank out of range");
        if (gd[static_cast<std::size_t>(v)] != r.group) {
          throw std::invalid_argument("dst outside its group");
        }
        if (v == root || ever_dst.count(v) != 0 || new_holders.count(v) != 0) {
          throw std::invalid_argument("rank is a destination more than once");
        }
        ever_dst.insert(v);
        new_holders.insert(v);
      }
    }
    holders.insert(new_holders.begin(), new_holders.end());
  }
  // Relay tree consistency.
  if (!parent.empty()) {
    if (static_cast<int>(parent.size()) != num_ranks) {
      throw std::invalid_argument("parent vector size mismatch");
    }
    if (parent[static_cast<std::size_t>(root)] != -1) {
      throw std::invalid_argument("root must not have a parent");
    }
    for (int v : ever_dst) {
      if (parent[static_cast<std::size_t>(v)] < 0) {
        throw std::invalid_argument("destination without a parent in the relay tree");
      }
    }
  }
}

std::vector<int> Sketch::covered_ranks() const {
  std::set<int> out{root};
  for (const Stage& st : stages) {
    for (const SubDemandSpec& r : st.demands) out.insert(r.dsts.begin(), r.dsts.end());
  }
  return {out.begin(), out.end()};
}

std::string Sketch::describe() const {
  std::ostringstream os;
  os << (pattern == RootedPattern::Scatter ? "Scatter" : "Broadcast") << " sketch root=" << root;
  for (std::size_t k = 0; k < stages.size(); ++k) {
    os << " | stage " << k << ":";
    for (const auto& r : stages[k].demands) {
      os << " D" << r.dim << ".G" << r.group << "{" << r.srcs.size() << "->" << r.dsts.size()
         << "}";
    }
  }
  return os.str();
}

double SketchCombination::total_fraction() const {
  double sum = 0.0;
  for (const auto& ws : sketches) sum += ws.fraction;
  return sum;
}

std::vector<double> SketchCombination::dim_workload(const topo::TopologyGroups& groups) const {
  std::vector<double> out(static_cast<std::size_t>(groups.num_dims()), 0.0);
  for (const auto& ws : sketches) {
    const auto w = ws.sketch.dim_workload(groups);
    for (std::size_t d = 0; d < w.size(); ++d) out[d] += ws.fraction * w[d];
  }
  return out;
}

std::string SketchCombination::describe() const {
  // Summarise fractions as distinct value × count pairs (combinations can
  // hold hundreds of replicas sharing a handful of fractions).
  std::map<long long, int> counts;
  for (const auto& ws : sketches) counts[std::llround(ws.fraction * 1e6)]++;
  std::ostringstream os;
  os << sketches.size() << "-sketch combination (fractions:";
  for (const auto& [f, c] : counts) {
    os << " " << static_cast<double>(f) / 1e6 << "x" << c;
  }
  os << ")";
  return os.str();
}

}  // namespace syccl::sketch
