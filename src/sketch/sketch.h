// Sketch intermediate representation (paper §3.2, Table 3).
//
// A sketch decomposes a rooted (one-to-all) collective into K stages; a stage
// holds communication sub-demands R_{k,d,g} = V^s → V^r inside single
// (dimension, group) pairs. Destinations appear exactly once across the whole
// sketch (tree property, §4.1). For Scatter workload accounting the sketch
// also records the relay tree: parent[v] = the GPU whose sub-demand delivered
// v its data.
#pragma once

#include <string>
#include <vector>

#include "topo/groups.h"

namespace syccl::sketch {

/// R_{k,d,g}: sources V^s send to destinations V^r inside group g of
/// dimension d. Ranks are global GPU ranks.
struct SubDemandSpec {
  int dim = -1;
  int group = -1;
  std::vector<int> srcs;
  std::vector<int> dsts;
};

struct Stage {
  std::vector<SubDemandSpec> demands;
};

/// The collective pattern a sketch was searched for. Reduce flows reuse the
/// forward pattern and are reversed at merge time (§4.1: all-to-one
/// collectives are the inverses of one-to-all ones).
enum class RootedPattern { Broadcast, Scatter };

class Sketch {
 public:
  int root = 0;
  RootedPattern pattern = RootedPattern::Broadcast;
  std::vector<Stage> stages;
  /// Relay tree: parent[rank] = predecessor rank, -1 for the root and for
  /// uninvolved ranks.
  std::vector<int> parent;

  int num_stages() const { return static_cast<int>(stages.size()); }

  /// Number of descendants of `rank` in the relay tree (f(v) in §4.2).
  int descendants(int rank) const;

  /// Workload w_{d,g} (§4.2): Broadcast — number of destinations served in
  /// (d,g); Scatter — Σ over destinations of (f(v)+1) redundant chunk loads.
  /// Returned as dense [dim][group] matrix shaped like `groups`.
  std::vector<std::vector<double>> workload(const topo::TopologyGroups& groups) const;

  /// Per-dimension totals w_d = Σ_g w_{d,g}.
  std::vector<double> dim_workload(const topo::TopologyGroups& groups) const;

  /// Canonical structural key for isomorphism pruning (#1, §4.1): sketches
  /// with equal keys are related by a topology automorphism and synthesise
  /// into equally fast schedules.
  std::string canonical_key(const topo::TopologyGroups& groups) const;

  /// Structural validation: destinations unique, sources hold data (root or
  /// earlier destination), demands stay inside their group. Throws
  /// std::invalid_argument with a description.
  void validate(const topo::TopologyGroups& groups) const;

  /// Set of all ranks covered (root + every destination).
  std::vector<int> covered_ranks() const;

  std::string describe() const;
};

/// A sketch plus the fraction of each chunk it transmits (⟨S_i, t_i⟩ pairs,
/// §4.2). Fractions of a combination sum to 1.
struct WeightedSketch {
  Sketch sketch;
  double fraction = 1.0;
};

struct SketchCombination {
  std::vector<WeightedSketch> sketches;

  double total_fraction() const;
  /// Aggregate workload per dimension, fraction-weighted.
  std::vector<double> dim_workload(const topo::TopologyGroups& groups) const;
  std::string describe() const;
};

}  // namespace syccl::sketch
