// Cross-dimension chunk allocation (paper §4.2 step 2).
//
// Given up to |D| candidate combinations with different per-dimension
// workload profiles, find fractions t_i ≥ 0 (Σt_i = 1) such that the
// weighted workload share of every dimension matches its bandwidth share
// u_d — i.e., every dimension's links are saturated simultaneously. Solved
// exactly as a small LP; candidates without a non-negative solution are
// rejected (paper: "the candidate is deemed invalid").
#pragma once

#include <optional>
#include <vector>

#include "sketch/sketch.h"

namespace syccl::sketch {

struct CombineConfig {
  /// Accept allocations whose worst per-dimension share deviation is below
  /// this (exact solutions preferred; small slack tolerates rounding).
  double max_share_error = 0.05;
  /// Cap on the number of emitted combinations.
  int max_outputs = 24;
  /// Drop combination members whose allocated fraction falls below this.
  double min_fraction = 1e-6;
};

/// Allocates chunk fractions across `candidates` to match the dimension
/// bandwidth shares. Returns the merged combination (each member sketch's
/// fraction scaled by its combination's t_i), or nullopt if invalid.
std::optional<SketchCombination> allocate_across_dims(
    const std::vector<SketchCombination>& candidates, const topo::TopologyGroups& groups,
    const CombineConfig& config = {});

/// Generates the full set of sketch combinations for a rooted collective
/// (§4.2): every input combination alone (small-size candidates, t=1), plus
/// every ≤|D|-subset integrated by allocate_across_dims (large-size
/// candidates).
std::vector<SketchCombination> generate_combinations(
    const std::vector<SketchCombination>& balanced, const topo::TopologyGroups& groups,
    const CombineConfig& config = {});

}  // namespace syccl::sketch
