// Sketch replication (paper §4.2 step 1 and §4.3).
//
// Replication maps a sketch onto the topology's symmetry: group mapping
// H_d : G_d → G_d and GPU mapping F : V → V, built stage by stage. Source
// GPUs keep their (already established) images; destination GPUs that act as
// sources later are steered into the group with the least accumulated
// workload in the dimension they will send on, which is exactly what
// balances load across isomorphic groups (Fig. 10).
#pragma once

#include <optional>
#include <vector>

#include "sketch/sketch.h"

namespace syccl::sketch {

/// Workload accumulator: [dim][group] load shaped like `groups`.
using WorkloadMatrix = std::vector<std::vector<double>>;

WorkloadMatrix zero_workload(const topo::TopologyGroups& groups);
void add_workload(WorkloadMatrix& acc, const WorkloadMatrix& w);

/// Group- plus rank-level load state used to steer replication. The rank
/// vector breaks ties *inside* a group: without it every replica funnels its
/// relay traffic through the same member GPU (and thus the same NIC).
struct WorkloadState {
  WorkloadMatrix groups;
  /// ranks[dim][rank] — receptions of `rank` in dimension `dim` (a crossing
  /// reception loads that rank's port in that dimension).
  std::vector<std::vector<double>> ranks;

  explicit WorkloadState(const topo::TopologyGroups& g);
  void add_sketch(const Sketch& sketch, const topo::TopologyGroups& g);
};

/// Replicates `sketch` with the root mapped to `new_root` (pass the original
/// root for same-root replicas). Destination images are steered by `state`
/// (not modified): least-loaded target group first, least-loaded rank within
/// it second. Returns nullopt when no consistent mapping exists (sources of
/// one sub-demand scattered across groups).
std::optional<Sketch> replicate_sketch(const Sketch& sketch, const topo::TopologyGroups& groups,
                                       const WorkloadState& state, int new_root,
                                       bool steer_by_load = true);

/// §4.2 step 1: replicates `sketch` (same root) until the workload is
/// balanced across the groups of every dimension the sketch family touches,
/// or `max_replicas` is reached. Fractions are set to 1/|C|.
SketchCombination balance_across_groups(const Sketch& sketch, const topo::TopologyGroups& groups,
                                        int max_replicas = 64);

/// Maps a sketch through the topology automorphism that rotates the root to
/// `new_root` (server index and intra-server index shift uniformly).
/// Returns nullopt when the topology is irregular (unequal server sizes) or
/// a mapped sub-demand leaves its group.
std::optional<Sketch> rotate_sketch(const Sketch& sketch, const topo::TopologyGroups& groups,
                                    int new_root);

/// §4.3: replicates every sketch of a rooted combination for every root,
/// yielding the all-to-all combination (per-root fractions preserved).
/// Rotation (the exact automorphism — uniform by construction) is tried
/// first; load-steered replication is the fallback for irregular cases.
SketchCombination replicate_for_all_roots(const SketchCombination& proto,
                                          const topo::TopologyGroups& groups);

}  // namespace syccl::sketch
