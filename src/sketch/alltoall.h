// All-to-all sketch generation (paper §4.3).
//
// An N-GPU all-to-all collective decomposes into N isomorphic rooted
// collectives. SyCCL searches sketches once for the prototype rooted at one
// GPU, balances each across groups (§4.2 step 1), replicates to all N roots,
// then integrates the resulting N-sketch combinations across dimensions
// (§4.2 step 2).
#pragma once

#include <vector>

#include "sketch/combine.h"
#include "sketch/search.h"
#include "sketch/sketch.h"

namespace syccl::sketch {

struct AllToAllConfig {
  SearchConfig search;
  CombineConfig combine;
  /// Number of searched prototype sketches carried into replication (the
  /// best few by workload diversity; more = bigger candidate pool).
  int max_prototypes = 6;
};

/// Generates candidate combinations for an all-to-all collective whose
/// decomposed rooted pattern is `pattern` (Broadcast for AllGather, Scatter
/// for AllToAll, Broadcast-reversed for ReduceScatter). Every returned
/// combination covers all N roots.
std::vector<SketchCombination> generate_alltoall_combinations(
    const topo::TopologyGroups& groups, RootedPattern pattern, const AllToAllConfig& config = {});

/// Generates candidate combinations for a single rooted collective at
/// `root` (§4.1–4.2 only, no root replication).
std::vector<SketchCombination> generate_rooted_combinations(const topo::TopologyGroups& groups,
                                                            int root, RootedPattern pattern,
                                                            const AllToAllConfig& config = {});

/// Keeps a diverse subset of searched sketches: one per distinct
/// per-dimension workload profile, favouring fewer stages (lower latency).
std::vector<Sketch> select_prototypes(std::vector<Sketch> sketches,
                                      const topo::TopologyGroups& groups, int max_count);

}  // namespace syccl::sketch
