#include "sketch/combine.h"

#include <algorithm>
#include <cmath>

#include "lp/simplex.h"
#include "util/log.h"

namespace syccl::sketch {

namespace {

/// Solves for t: Σ_i t_i·(W_{i,d} − u_d·W_{i,·}) minimal deviation, Σt = 1,
/// t ≥ 0. Returns (t, worst share error) or nullopt on LP failure.
std::optional<std::pair<std::vector<double>, double>> solve_allocation(
    const std::vector<std::vector<double>>& W, const std::vector<double>& u) {
  const int k = static_cast<int>(W.size());
  const int nd = static_cast<int>(u.size());

  lp::Problem p;
  std::vector<int> t_vars;
  for (int i = 0; i < k; ++i) t_vars.push_back(p.add_var(0.0, 1.0, 0.0));
  // Deviation variables per dimension: e_d ≥ |Σ_i t_i (W_id − u_d W_i·)|.
  std::vector<int> e_vars;
  for (int d = 0; d < nd; ++d) e_vars.push_back(p.add_var(0.0, lp::kInf, 1.0));

  lp::Constraint norm;
  for (int i = 0; i < k; ++i) norm.terms.push_back({t_vars[static_cast<std::size_t>(i)], 1.0});
  norm.rel = lp::Relation::Eq;
  norm.rhs = 1.0;
  p.add_constraint(norm);

  for (int d = 0; d < nd; ++d) {
    lp::Constraint up, down;
    for (int i = 0; i < k; ++i) {
      double wi_total = 0.0;
      for (double w : W[static_cast<std::size_t>(i)]) wi_total += w;
      const double coef = W[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)] -
                          u[static_cast<std::size_t>(d)] * wi_total;
      up.terms.push_back({t_vars[static_cast<std::size_t>(i)], coef});
      down.terms.push_back({t_vars[static_cast<std::size_t>(i)], -coef});
    }
    up.terms.push_back({e_vars[static_cast<std::size_t>(d)], -1.0});
    down.terms.push_back({e_vars[static_cast<std::size_t>(d)], -1.0});
    up.rel = down.rel = lp::Relation::LessEq;
    up.rhs = down.rhs = 0.0;
    p.add_constraint(up);
    p.add_constraint(down);
  }

  const lp::Solution sol = lp::solve(p);
  if (sol.status != lp::Status::Optimal) return std::nullopt;

  std::vector<double> t(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) t[static_cast<std::size_t>(i)] = sol.x[static_cast<std::size_t>(i)];

  // Worst relative share error given the solution.
  double total = 0.0;
  std::vector<double> share(static_cast<std::size_t>(nd), 0.0);
  for (int i = 0; i < k; ++i) {
    for (int d = 0; d < nd; ++d) {
      share[static_cast<std::size_t>(d)] +=
          t[static_cast<std::size_t>(i)] * W[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)];
    }
  }
  for (double s : share) total += s;
  double worst = 0.0;
  if (total > 0) {
    for (int d = 0; d < nd; ++d) {
      worst = std::max(worst,
                       std::fabs(share[static_cast<std::size_t>(d)] / total -
                                 u[static_cast<std::size_t>(d)]));
    }
  }
  return std::make_pair(std::move(t), worst);
}

}  // namespace

std::optional<SketchCombination> allocate_across_dims(
    const std::vector<SketchCombination>& candidates, const topo::TopologyGroups& groups,
    const CombineConfig& config) {
  if (candidates.empty()) return std::nullopt;

  // Aggregate workloads and shares by capacity dimension: tiers that ride
  // on another tier's physical ports (e.g. the spine over the rail NICs)
  // compete for the same capacity.
  const int nd = groups.num_dims();
  std::vector<std::vector<double>> W;
  for (const auto& c : candidates) {
    const auto raw = c.dim_workload(groups);
    std::vector<double> agg(static_cast<std::size_t>(nd), 0.0);
    for (int d = 0; d < nd; ++d) {
      agg[static_cast<std::size_t>(groups.dims[static_cast<std::size_t>(d)].capacity_dim)] +=
          raw[static_cast<std::size_t>(d)];
    }
    W.push_back(std::move(agg));
  }
  std::vector<double> u(static_cast<std::size_t>(nd), 0.0);
  for (int d = 0; d < nd; ++d) {
    u[static_cast<std::size_t>(groups.dims[static_cast<std::size_t>(d)].capacity_dim)] +=
        groups.dims[static_cast<std::size_t>(d)].bandwidth_share;
  }

  // Restrict the share targets to dimensions any candidate actually uses;
  // unused dimensions cannot be saturated by these sketches at all.
  double used_share = 0.0;
  std::vector<bool> used(u.size(), false);
  for (std::size_t d = 0; d < u.size(); ++d) {
    for (const auto& w : W) {
      if (w[d] > 1e-12) used[d] = true;
    }
    if (used[d]) used_share += u[d];
  }
  if (used_share <= 0) return std::nullopt;
  for (std::size_t d = 0; d < u.size(); ++d) u[d] = used[d] ? u[d] / used_share : 0.0;

  const auto alloc = solve_allocation(W, u);
  if (!alloc.has_value()) return std::nullopt;
  const auto& [t, err] = *alloc;
  if (err > config.max_share_error) return std::nullopt;

  SketchCombination out;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (t[i] < config.min_fraction) continue;
    for (const auto& ws : candidates[i].sketches) {
      out.sketches.push_back(WeightedSketch{ws.sketch, ws.fraction * t[i]});
    }
  }
  if (out.sketches.empty()) return std::nullopt;
  return out;
}

std::vector<SketchCombination> generate_combinations(
    const std::vector<SketchCombination>& balanced, const topo::TopologyGroups& groups,
    const CombineConfig& config) {
  std::vector<SketchCombination> out;

  // Small-size candidates: each balanced combination on its own (§4.2: "for
  // small chunk sizes, a single sketch suffices").
  for (const auto& c : balanced) {
    out.push_back(c);
    if (static_cast<int>(out.size()) >= config.max_outputs) return out;
  }

  // Large-size candidates: integrate subsets (size 2..|D|) across dimensions.
  const int nd = groups.num_dims();
  const int n = static_cast<int>(balanced.size());
  for (int mask = 1; mask < (1 << std::min(n, 16)); ++mask) {
    const int bits = __builtin_popcount(static_cast<unsigned>(mask));
    if (bits < 2 || bits > nd) continue;
    std::vector<SketchCombination> subset;
    for (int i = 0; i < std::min(n, 16); ++i) {
      if (mask & (1 << i)) subset.push_back(balanced[static_cast<std::size_t>(i)]);
    }
    const auto merged = allocate_across_dims(subset, groups, config);
    if (merged.has_value()) {
      out.push_back(*merged);
      if (static_cast<int>(out.size()) >= config.max_outputs) break;
    }
  }
  return out;
}

}  // namespace syccl::sketch
