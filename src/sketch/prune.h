// Pruning strategies for sketch exploration (paper §4.1).
//
//   #1 — isomorphism dedup: sketches related by a topology automorphism
//        synthesise equally fast schedules; keep one per canonical key.
//   #2 — consistency: across isomorphic groups of one dimension at one
//        stage, the destination/source ratio must be uniform (groups not
//        communicating, and the final stage, are excluded).
//   #3 — relay limit: bound root-path hops (Scatter relays add redundant
//        chunk loads); in practice X = |D| − 1 so each dimension is crossed
//        at most once.
//
// All three are exposed separately so the Fig. 17 ablations can toggle them.
#pragma once

#include <vector>

#include "sketch/sketch.h"

namespace syccl::sketch {

/// Removes isomorphic duplicates (pruning #1), keeping first occurrences.
std::vector<Sketch> dedup_isomorphic(std::vector<Sketch> sketches,
                                     const topo::TopologyGroups& groups);

/// Pruning #2 check for one stage: for every dimension and isomorphism class
/// of groups, all *communicating* groups must show the same |dsts|/|srcs|
/// ratio. `is_final_stage` exempts the stage entirely (paper rule).
bool stage_is_consistent(const Stage& stage, const topo::TopologyGroups& groups,
                         bool is_final_stage);

/// Pruning #3 helper: longest root-path (in stages-hops) of the sketch.
int max_relay_hops(const Sketch& sketch);

}  // namespace syccl::sketch
