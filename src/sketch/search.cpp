#include "sketch/search.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "sketch/prune.h"
#include "util/log.h"

namespace syccl::sketch {

namespace {

struct SearchState {
  std::vector<bool> covered;      ///< rank has the data
  std::vector<unsigned> path;     ///< bitmask of dimensions on the root path
  std::vector<int> hops;          ///< root-path length
  std::vector<int> parent;        ///< relay tree
  std::vector<Stage> stages;
  std::vector<bool> fresh;        ///< became a holder in the latest stage
};

struct Searcher {
  const topo::TopologyGroups& groups;
  const SearchConfig& cfg;
  RootedPattern pattern;
  int root;
  int num_ranks;
  int max_hops;

  std::vector<Sketch> results;
  std::set<std::string> result_keys;
  std::set<std::string> visited;
  long nodes = 0;

  Searcher(const topo::TopologyGroups& g, const SearchConfig& c, RootedPattern p, int r)
      : groups(g), cfg(c), pattern(p), root(r) {
    num_ranks = static_cast<int>(g.group_of.front().size());
    max_hops = cfg.max_hops;
    if (max_hops < 0) {
      max_hops = pattern == RootedPattern::Scatter ? std::max(1, g.num_dims() - 1)
                                                   : g.num_dims();
    }
  }

  bool all_covered(const SearchState& s) const {
    for (bool c : s.covered) {
      if (!c) return false;
    }
    return true;
  }

  std::string state_key(const SearchState& s) const {
    std::ostringstream os;
    for (int r = 0; r < num_ranks; ++r) {
      os << (s.covered[static_cast<std::size_t>(r)] ? 1 + static_cast<int>(s.path[static_cast<std::size_t>(r)]) : 0)
         << ",";
    }
    os << "#" << s.stages.size();
    return os.str();
  }

  /// Destination-count options for dimension d at the current state.
  /// kAll fills each group completely; kUnits places one destination in each
  /// still-unreached server (dim-0 group) inside the group — the structurally
  /// minimal hierarchical fill (1 crossing per pod on a Clos, 1 per server on
  /// a rail); the geometric ladder covers the in-between splits. kUnits and
  /// c=1 come right after kAll so tight search budgets still reach the
  /// low-traffic sketches.
  static constexpr int kAll = -1;
  static constexpr int kUnits = -2;
  std::vector<int> count_options(const SearchState& s, int d) const {
    int max_remaining = 0;
    const auto& dim = groups.dims[static_cast<std::size_t>(d)];
    for (const auto& g : dim.groups) {
      int rem = 0;
      for (int r : g.ranks) {
        if (!s.covered[static_cast<std::size_t>(r)]) ++rem;
      }
      max_remaining = std::max(max_remaining, rem);
    }
    std::vector<int> out;
    if (max_remaining == 0) return out;
    out.push_back(kAll);
    if (d > 0) out.push_back(kUnits);
    if (max_remaining > 1) out.push_back(1);
    if (cfg.exhaustive_counts) {
      for (int c = max_remaining - 1; c >= 2; --c) out.push_back(c);
    } else {
      std::vector<int> ladder;
      for (int c = 2; c < max_remaining; c *= 2) ladder.push_back(c);
      out.insert(out.end(), ladder.rbegin(), ladder.rend());
    }
    return out;
  }

  /// Builds the sub-demands of one dimension under count option `c`.
  /// `claimed` marks ranks already taken as destinations in this stage.
  /// Returns false if no group of the dimension can act.
  bool build_dim(const SearchState& s, int d, int c, std::vector<bool>& claimed,
                 std::vector<SubDemandSpec>& out) const {
    const auto& dim = groups.dims[static_cast<std::size_t>(d)];
    bool any = false;
    for (std::size_t gi = 0; gi < dim.groups.size(); ++gi) {
      const auto& g = dim.groups[gi];
      SubDemandSpec spec;
      spec.dim = d;
      spec.group = static_cast<int>(gi);
      for (int r : g.ranks) {
        if (!s.covered[static_cast<std::size_t>(r)]) continue;
        if (s.path[static_cast<std::size_t>(r)] & (1u << d)) continue;  // dim already crossed
        if (s.hops[static_cast<std::size_t>(r)] >= max_hops) continue;
        spec.srcs.push_back(r);
      }
      if (spec.srcs.empty()) continue;
      // kUnits: one destination per dim-0 group (server) of this group that
      // has no holder yet — the minimal set of crossings that lets NVLink
      // finish the job.
      std::vector<bool> unit_blocked;
      if (c == kUnits) {
        unit_blocked.assign(groups.dims.front().groups.size(), false);
        for (int r : g.ranks) {
          if (s.covered[static_cast<std::size_t>(r)] || claimed[static_cast<std::size_t>(r)]) {
            unit_blocked[static_cast<std::size_t>(
                groups.group_of[0][static_cast<std::size_t>(r)])] = true;
          }
        }
      }
      const int want = (c == kAll || c == kUnits) ? num_ranks : c;
      // Candidate destinations, cheapest-common-dim == d first: a slow-tier
      // sub-demand should serve the ranks only that tier can reach, not
      // ranks a faster tier covers anyway.
      std::vector<int> cands;
      for (int r : g.ranks) {
        if (s.covered[static_cast<std::size_t>(r)] || claimed[static_cast<std::size_t>(r)]) continue;
        cands.push_back(r);
      }
      std::stable_sort(cands.begin(), cands.end(), [&](int a, int b) {
        auto need = [&](int r) {
          int cheapest = groups.num_dims();
          for (int src : spec.srcs) {
            const int bd = groups.best_common_dim(src, r);
            if (bd >= 0) cheapest = std::min(cheapest, bd);
          }
          return cheapest == d ? 0 : 1;
        };
        return need(a) < need(b);
      });
      for (int r : cands) {
        if (static_cast<int>(spec.dsts.size()) >= want) break;
        if (c == kUnits) {
          const int u = groups.group_of[0][static_cast<std::size_t>(r)];
          if (unit_blocked[static_cast<std::size_t>(u)]) continue;
          unit_blocked[static_cast<std::size_t>(u)] = true;
        }
        spec.dsts.push_back(r);
      }
      if (spec.dsts.empty()) continue;
      for (int r : spec.dsts) claimed[static_cast<std::size_t>(r)] = true;
      any = true;
      out.push_back(std::move(spec));
    }
    return any;
  }

  void apply_stage(SearchState& s, const Stage& stage) const {
    std::fill(s.fresh.begin(), s.fresh.end(), false);
    for (const SubDemandSpec& r : stage.demands) {
      for (int v : r.dsts) s.fresh[static_cast<std::size_t>(v)] = true;
    }
    for (const SubDemandSpec& r : stage.demands) {
      for (std::size_t i = 0; i < r.dsts.size(); ++i) {
        const int v = r.dsts[i];
        const int p = r.srcs[i % r.srcs.size()];
        s.covered[static_cast<std::size_t>(v)] = true;
        s.path[static_cast<std::size_t>(v)] =
            s.path[static_cast<std::size_t>(p)] | (1u << r.dim);
        s.hops[static_cast<std::size_t>(v)] = s.hops[static_cast<std::size_t>(p)] + 1;
        s.parent[static_cast<std::size_t>(v)] = p;
      }
    }
    s.stages.push_back(stage);
  }

  void emit(const SearchState& s) {
    Sketch sk;
    sk.root = root;
    sk.pattern = pattern;
    sk.stages = s.stages;
    sk.parent = s.parent;
    const std::string key = sk.canonical_key(groups);
    if (cfg.prune_isomorphic && !result_keys.insert(key).second) return;
    sk.validate(groups);
    results.push_back(std::move(sk));
  }

  /// Pruning #2 gate shared by DFS and seeds: the stage must be consistent
  /// unless it completes the sketch.
  bool stage_passes_consistency(const SearchState& s, const Stage& stage) const {
    if (!cfg.prune_consistency) return true;
    int newly = 0;
    for (const auto& r : stage.demands) newly += static_cast<int>(r.dsts.size());
    int uncovered = 0;
    for (bool c : s.covered) {
      if (!c) ++uncovered;
    }
    return stage_is_consistent(stage, groups, newly == uncovered);
  }

  /// Builds the stage for (dims, counts) at state `s`, or nullopt if some
  /// chosen dimension cannot act or the stage is empty.
  std::optional<Stage> build_stage(const SearchState& s, const std::vector<int>& dims,
                                   const std::vector<int>& counts) const {
    Stage stage;
    std::vector<bool> claimed(static_cast<std::size_t>(num_ranks), false);
    for (std::size_t i = 0; i < dims.size(); ++i) {
      std::vector<SubDemandSpec> specs;
      if (!build_dim(s, dims[i], counts[i], claimed, specs)) return std::nullopt;
      for (auto& sp : specs) stage.demands.push_back(std::move(sp));
    }
    if (stage.demands.empty()) return std::nullopt;
    return stage;
  }

  /// Constructive seeds: dimension-order hierarchical sketches (pure
  /// permutations, eager-root starts like the paper's sketch ①, and the
  /// "first send to one peer" shape of Appendix C). Guarantees the classic
  /// candidates exist regardless of DFS budget.
  void seed_canonical() {
    const int nd = groups.num_dims();
    std::vector<int> dims(static_cast<std::size_t>(nd));
    for (int d = 0; d < nd; ++d) dims[static_cast<std::size_t>(d)] = d;

    std::vector<std::vector<int>> perms;
    std::sort(dims.begin(), dims.end());
    // Permutations of every non-empty subset.
    for (int mask = 1; mask < (1 << nd); ++mask) {
      std::vector<int> subset;
      for (int d = 0; d < nd; ++d) {
        if (mask & (1 << d)) subset.push_back(d);
      }
      std::sort(subset.begin(), subset.end());
      do {
        perms.push_back(subset);
      } while (std::next_permutation(subset.begin(), subset.end()));
    }

    for (const auto& perm : perms) {
      for (int variant = 0; variant < 4; ++variant) {
        // Plans: (dim, count) per stage.
        std::vector<std::pair<int, int>> plans;
        if (variant == 2) plans.push_back({perm.front(), 1});
        for (int d : perm) {
          plans.push_back({d, variant == 3 && d != 0 ? kUnits : kAll});
        }
        if (variant == 3) {
          // Unit crossings leave the reached servers to fill locally; append
          // fill rounds in permutation order until everything is covered.
          for (int round = 0; round < 2; ++round) {
            for (int d : perm) plans.push_back({d, d == 0 ? kAll : kUnits});
          }
        }
        if (variant == 2) plans.push_back({perm.front(), kAll});

        SearchState s = initial_state();
        bool eager_done = false;
        for (std::size_t pi = 0; pi < plans.size(); ++pi) {
          std::vector<int> stage_dims{plans[pi].first};
          std::vector<int> stage_counts{plans[pi].second};
          if (variant == 1 && !eager_done && plans[pi].second == kAll) {
            // Eager-root: the first ALL stage fires every dimension of the
            // permutation at once (paper sketch ① shape).
            stage_dims.clear();
            stage_counts.clear();
            for (std::size_t pj = pi; pj < plans.size(); ++pj) {
              stage_dims.push_back(plans[pj].first);
              stage_counts.push_back(kAll);
            }
            eager_done = true;
          }
          // Drop dims that cannot act at this point.
          std::vector<int> usable_dims, usable_counts;
          for (std::size_t i = 0; i < stage_dims.size(); ++i) {
            if (!count_options(s, stage_dims[i]).empty()) {
              usable_dims.push_back(stage_dims[i]);
              usable_counts.push_back(stage_counts[i]);
            }
          }
          if (usable_dims.empty()) continue;
          const auto stage = build_stage(s, usable_dims, usable_counts);
          if (!stage.has_value()) continue;
          if (!stage_passes_consistency(s, *stage)) continue;
          apply_stage(s, *stage);
          if (all_covered(s)) break;
        }
        if (all_covered(s) && static_cast<int>(s.stages.size()) <= cfg.max_stages) {
          bool hops_ok = true;
          for (int h : s.hops) hops_ok = hops_ok && h <= max_hops;
          if (hops_ok) emit(s);
        }
      }
    }
  }

  SearchState initial_state() const {
    SearchState init;
    init.covered.assign(static_cast<std::size_t>(num_ranks), false);
    init.covered[static_cast<std::size_t>(root)] = true;
    init.path.assign(static_cast<std::size_t>(num_ranks), 0u);
    init.hops.assign(static_cast<std::size_t>(num_ranks), 0);
    init.parent.assign(static_cast<std::size_t>(num_ranks), -1);
    init.fresh.assign(static_cast<std::size_t>(num_ranks), false);
    return init;
  }

  void dfs(SearchState& s, int cap) {
    if (static_cast<int>(results.size()) >= cap) return;
    if (++nodes > cfg.node_budget) return;
    if (all_covered(s)) {
      emit(s);
      return;
    }
    if (static_cast<int>(s.stages.size()) >= cfg.max_stages) return;
    if (!visited.insert(state_key(s)).second) return;

    // Enumerate dimension subsets for this stage; within a subset, the count
    // ladder per dimension (cartesian product, built recursively).
    const int nd = groups.num_dims();
    std::vector<int> actionable;
    for (int d = 0; d < nd; ++d) {
      if (!count_options(s, d).empty()) actionable.push_back(d);
    }
    if (actionable.empty()) return;

    // Enumerate subsets largest-first: stages that drive several dimensions
    // at once (the paper's sketch ① shape) surface before narrow ones. The
    // result budget is split across subsets so late subsets still get
    // explored under tight caps.
    const int subsets = 1 << actionable.size();
    std::vector<int> masks;
    for (int mask = 1; mask < subsets; ++mask) masks.push_back(mask);
    std::stable_sort(masks.begin(), masks.end(), [](int a, int b) {
      return __builtin_popcount(static_cast<unsigned>(a)) >
             __builtin_popcount(static_cast<unsigned>(b));
    });
    for (std::size_t mi = 0; mi < masks.size(); ++mi) {
      const int have = static_cast<int>(results.size());
      if (have >= cap) return;
      const int share = (cap - have + static_cast<int>(masks.size() - mi) - 1) /
                        static_cast<int>(masks.size() - mi);
      const int child_cap = have + std::max(1, share);
      std::vector<int> dims;
      for (std::size_t i = 0; i < actionable.size(); ++i) {
        if (masks[mi] & (1 << i)) dims.push_back(actionable[i]);
      }
      enumerate_counts(s, dims, 0, {}, std::min(cap, child_cap));
    }
  }

  void enumerate_counts(SearchState& s, const std::vector<int>& dims, std::size_t idx,
                        std::vector<int> counts, int cap) {
    if (static_cast<int>(results.size()) >= cap) return;
    if (idx == dims.size()) {
      try_stage(s, dims, counts, cap);
      return;
    }
    for (int c : count_options(s, dims[idx])) {
      counts.push_back(c);
      enumerate_counts(s, dims, idx + 1, counts, cap);
      counts.pop_back();
    }
  }

  void try_stage(SearchState& s, const std::vector<int>& dims, const std::vector<int>& counts,
                 int cap) {
    const auto built = build_stage(s, dims, counts);
    if (!built.has_value()) return;
    const Stage& stage = *built;

    // Progress rule: after stage 0, at least one source must have become a
    // holder in the previous stage — otherwise the new sub-demands could
    // have been issued a stage earlier (dominated staging).
    if (!s.stages.empty()) {
      bool uses_fresh_src = false;
      for (const auto& r : stage.demands) {
        for (int src : r.srcs) {
          if (s.fresh[static_cast<std::size_t>(src)]) uses_fresh_src = true;
        }
      }
      if (!uses_fresh_src) return;
    }

    // Pruning #2.
    if (!stage_passes_consistency(s, stage)) return;

    SearchState next = s;
    apply_stage(next, stage);
    dfs(next, cap);
  }
};

}  // namespace

std::vector<Sketch> search_sketches(const topo::TopologyGroups& groups, int root,
                                    RootedPattern pattern, const SearchConfig& config) {
  if (groups.num_dims() == 0) throw std::invalid_argument("topology has no dimensions");
  if (groups.num_dims() > 16) throw std::invalid_argument("too many dimensions (>16)");
  const int num_ranks = static_cast<int>(groups.group_of.front().size());
  if (root < 0 || root >= num_ranks) throw std::invalid_argument("root out of range");

  Searcher searcher(groups, config, pattern, root);
  searcher.seed_canonical();
  SearchState init = searcher.initial_state();
  searcher.dfs(init, config.max_sketches);

  if (searcher.results.empty()) {
    // Relaxed retry: more stages and hops (disconnected-looking demands can
    // need more than |D| stages when groups overlap sparsely).
    SearchConfig relaxed = config;
    relaxed.max_stages = config.max_stages + 2;
    relaxed.max_hops = groups.num_dims() + 1;
    if (relaxed.max_stages != config.max_stages || relaxed.max_hops != config.max_hops) {
      Searcher retry(groups, relaxed, pattern, root);
      retry.seed_canonical();
      SearchState init2 = retry.initial_state();
      retry.dfs(init2, relaxed.max_sketches);
      if (!retry.results.empty()) return std::move(retry.results);
    }
    throw std::runtime_error("sketch search found no covering sketch");
  }
  SYCCL_DEBUG << "sketch search: " << searcher.results.size() << " sketches, "
              << searcher.nodes << " nodes";
  return std::move(searcher.results);
}

}  // namespace syccl::sketch
