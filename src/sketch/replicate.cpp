#include "sketch/replicate.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "util/log.h"

namespace syccl::sketch {

namespace {

/// First dimension on which `rank` acts as a source after having received
/// (i.e., in any stage's sub-demand sources), or -1.
std::vector<int> later_send_dims(const Sketch& sketch, int num_ranks) {
  std::vector<int> dims(static_cast<std::size_t>(num_ranks), -1);
  for (const Stage& st : sketch.stages) {
    for (const SubDemandSpec& r : st.demands) {
      for (int s : r.srcs) {
        if (s != sketch.root && dims[static_cast<std::size_t>(s)] < 0) {
          dims[static_cast<std::size_t>(s)] = r.dim;
        }
      }
    }
  }
  return dims;
}

double imbalance(const WorkloadMatrix& w) {
  double total = 0.0;
  for (const auto& dim : w) {
    double lo = 1e300, hi = 0.0, sum = 0.0;
    for (double g : dim) {
      lo = std::min(lo, g);
      hi = std::max(hi, g);
      sum += g;
    }
    if (sum > 0) total += hi - lo;
  }
  return total;
}

}  // namespace

WorkloadState::WorkloadState(const topo::TopologyGroups& g)
    : groups(zero_workload(g)),
      ranks(static_cast<std::size_t>(g.num_dims()),
            std::vector<double>(g.group_of.front().size(), 0.0)) {}

void WorkloadState::add_sketch(const Sketch& sketch, const topo::TopologyGroups& g) {
  add_workload(groups, sketch.workload(g));
  for (const Stage& st : sketch.stages) {
    for (const SubDemandSpec& r : st.demands) {
      for (int v : r.dsts) {
        ranks[static_cast<std::size_t>(r.dim)][static_cast<std::size_t>(v)] += 1.0;
      }
    }
  }
}

WorkloadMatrix zero_workload(const topo::TopologyGroups& groups) {
  WorkloadMatrix w(static_cast<std::size_t>(groups.num_dims()));
  for (int d = 0; d < groups.num_dims(); ++d) {
    w[static_cast<std::size_t>(d)].assign(groups.dims[static_cast<std::size_t>(d)].groups.size(),
                                          0.0);
  }
  return w;
}

void add_workload(WorkloadMatrix& acc, const WorkloadMatrix& w) {
  for (std::size_t d = 0; d < acc.size(); ++d) {
    for (std::size_t g = 0; g < acc[d].size(); ++g) acc[d][g] += w[d][g];
  }
}

std::optional<Sketch> replicate_sketch(const Sketch& sketch, const topo::TopologyGroups& groups,
                                       const WorkloadState& state, int new_root,
                                       bool steer_by_load) {
  const int num_ranks = static_cast<int>(groups.group_of.front().size());
  std::vector<int> F(static_cast<std::size_t>(num_ranks), -1);
  std::vector<bool> used(static_cast<std::size_t>(num_ranks), false);
  // Ranks whose image holds the data before the current stage (stage-ordered,
  // like Sketch::validate): the substitute pool for coverage holes.
  std::vector<bool> holds(static_cast<std::size_t>(num_ranks), false);
  F[static_cast<std::size_t>(sketch.root)] = new_root;
  used[static_cast<std::size_t>(new_root)] = true;
  holds[static_cast<std::size_t>(new_root)] = true;

  const std::vector<int> send_dim = later_send_dims(sketch, num_ranks);

  // Local accumulator: the global picture plus this replica's own loads, so
  // in-replica steering does not pile everything onto one group.
  WorkloadMatrix local = state.groups;
  std::vector<std::vector<double>> rank_load = state.ranks;

  Sketch out;
  out.root = new_root;
  out.pattern = sketch.pattern;
  out.parent.assign(static_cast<std::size_t>(num_ranks), -1);

  for (const Stage& st : sketch.stages) {
    Stage mapped_stage;
    for (const SubDemandSpec& r : st.demands) {
      SubDemandSpec m;
      m.dim = r.dim;
      const auto& gd = groups.group_of[static_cast<std::size_t>(r.dim)];
      for (int s : r.srcs) {
        const int fs = F[static_cast<std::size_t>(s)];
        if (fs < 0) return std::nullopt;  // source not yet mapped: malformed sketch
        // A failed link/NIC can leave ranks uncovered by a dimension: such an
        // image holds the data but cannot send on this dimension, so drop it
        // instead of failing the whole replica.
        if (gd[static_cast<std::size_t>(fs)] < 0) continue;
        m.srcs.push_back(fs);
      }
      bool dim_hole = false;
      for (int u = 0; u < num_ranks; ++u) {
        if (gd[static_cast<std::size_t>(u)] < 0) dim_hole = true;
      }
      if (!m.srcs.empty()) {
        m.group = gd[static_cast<std::size_t>(m.srcs.front())];
        for (int fs : m.srcs) {
          if (gd[static_cast<std::size_t>(fs)] != m.group) return std::nullopt;
        }
      }
      // Candidate images: unused members of the mapped group.
      auto avail_of = [&](int g2) {
        std::vector<int> out_avail;
        for (int u : groups.group(r.dim, g2).ranks) {
          if (!used[static_cast<std::size_t>(u)]) out_avail.push_back(u);
        }
        return out_avail;
      };
      std::vector<int> avail;
      if (m.group >= 0) avail = avail_of(m.group);
      if (m.srcs.empty() || avail.size() < r.dsts.size()) {
        // The structural mapping dead-ends: either every mapped source fell
        // into a coverage hole, or the mapped group cannot seat the
        // destinations (a failure can shrink a group to a singleton). Only
        // hole-ridden dimensions may re-source — on intact topologies the
        // historical strict mapping is preserved. Pick the first group with
        // a data-holding, covered source and enough free members; all of its
        // holders become sources, mirroring how the search picks sources.
        if (!dim_hole) return std::nullopt;
        const auto& dim_groups = groups.dims[static_cast<std::size_t>(r.dim)].groups;
        m.group = -1;
        for (std::size_t g2 = 0; g2 < dim_groups.size() && m.group < 0; ++g2) {
          std::vector<int> srcs2;
          for (int u : dim_groups[g2].ranks) {
            if (holds[static_cast<std::size_t>(u)]) srcs2.push_back(u);
          }
          if (srcs2.empty()) continue;
          std::vector<int> avail2 = avail_of(static_cast<int>(g2));
          if (avail2.size() < r.dsts.size()) continue;
          m.group = static_cast<int>(g2);
          m.srcs = std::move(srcs2);
          avail = std::move(avail2);
        }
        if (m.group < 0) return std::nullopt;
      }

      // Map relaying destinations first: their image choice decides which
      // group carries the next stage's load.
      std::vector<int> order(r.dsts);
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        const bool ra = send_dim[static_cast<std::size_t>(a)] >= 0;
        const bool rb = send_dim[static_cast<std::size_t>(b)] >= 0;
        return ra > rb;
      });

      for (int v : order) {
        int chosen = -1;
        const int d2 = send_dim[static_cast<std::size_t>(v)];
        double best_group = 1e300;
        double best_rank = 1e300;
        for (int u : steer_by_load ? avail : std::vector<int>{}) {
          double group_load = 0.0;
          if (d2 >= 0) {
            const int g2 =
                groups.group_of[static_cast<std::size_t>(d2)][static_cast<std::size_t>(u)];
            group_load = g2 >= 0 ? local[static_cast<std::size_t>(d2)][static_cast<std::size_t>(g2)]
                                 : 1e300;
          }
          // Reception on this dimension's port: this is what spreads the
          // crossings of successive replicas across the group's NICs.
          const double rl = rank_load[static_cast<std::size_t>(r.dim)][static_cast<std::size_t>(u)];
          if (group_load < best_group - 1e-12 ||
              (group_load < best_group + 1e-12 && rl < best_rank - 1e-12)) {
            best_group = group_load;
            best_rank = rl;
            chosen = u;
          }
        }
        if (chosen < 0) chosen = avail.front();
        avail.erase(std::find(avail.begin(), avail.end(), chosen));
        used[static_cast<std::size_t>(chosen)] = true;
        rank_load[static_cast<std::size_t>(r.dim)][static_cast<std::size_t>(chosen)] += 1.0;
        F[static_cast<std::size_t>(v)] = chosen;
      }
      // Map destinations preserving per-destination order of the original.
      for (int v : r.dsts) m.dsts.push_back(F[static_cast<std::size_t>(v)]);

      // Account this sub-demand's load at its mapped group.
      double load = 0.0;
      for (int v : r.dsts) {
        load += sketch.pattern == RootedPattern::Scatter ? 1.0 + sketch.descendants(v) : 1.0;
      }
      local[static_cast<std::size_t>(m.dim)][static_cast<std::size_t>(m.group)] += load;

      mapped_stage.demands.push_back(std::move(m));
    }
    for (const SubDemandSpec& m : mapped_stage.demands) {
      for (int v : m.dsts) holds[static_cast<std::size_t>(v)] = true;
    }
    out.stages.push_back(std::move(mapped_stage));
  }

  // Map the relay tree.
  for (int v = 0; v < num_ranks; ++v) {
    const int p = sketch.parent.empty() ? -1 : sketch.parent[static_cast<std::size_t>(v)];
    if (p >= 0 && F[static_cast<std::size_t>(v)] >= 0) {
      out.parent[static_cast<std::size_t>(F[static_cast<std::size_t>(v)])] =
          F[static_cast<std::size_t>(p)];
    }
  }

  try {
    out.validate(groups);
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // hole substitution cornered itself on this root
  }
  return out;
}

SketchCombination balance_across_groups(const Sketch& sketch, const topo::TopologyGroups& groups,
                                        int max_replicas) {
  SketchCombination combo;
  combo.sketches.push_back(WeightedSketch{sketch, 1.0});
  WorkloadState acc(groups);
  acc.add_sketch(sketch, groups);

  double current = imbalance(acc.groups);
  while (static_cast<int>(combo.sketches.size()) < max_replicas && current > 1e-9) {
    auto rep = replicate_sketch(sketch, groups, acc, sketch.root);
    if (!rep.has_value()) rep = replicate_sketch(sketch, groups, acc, sketch.root, false);
    if (!rep.has_value()) break;
    WorkloadMatrix g2 = acc.groups;
    add_workload(g2, rep->workload(groups));
    const double next = imbalance(g2);
    // Accept only strict improvement of the balance metric; a one-to-all
    // sketch whose root pins a dimension's load can never balance fully.
    if (next >= current - 1e-9) break;
    acc.add_sketch(*rep, groups);
    combo.sketches.push_back(WeightedSketch{*rep, 1.0});
    current = next;
  }
  const double frac = 1.0 / static_cast<double>(combo.sketches.size());
  for (auto& ws : combo.sketches) ws.fraction = frac;
  return combo;
}

std::optional<Sketch> rotate_sketch(const Sketch& sketch, const topo::TopologyGroups& groups,
                                    int new_root) {
  const int num_ranks = static_cast<int>(groups.group_of.front().size());

  // Build hierarchical coordinates: digit 0 is the position inside the
  // dim-0 group; every higher dimension that *nests* the previous level
  // (Clos pods contain whole servers) adds a digit. Dimensions that cross
  // servers (rails) are implied by digit 0 and add nothing. Rotating each
  // digit independently is an automorphism of the whole tier structure.
  const auto& servers = groups.dims.front().groups;
  const int per_server = servers.front().size();
  for (const auto& sv : servers) {
    if (sv.size() != per_server) return std::nullopt;  // irregular topology
  }

  struct Level {
    int dim;
    int fanout;  // children per unit at this level
  };

  // Detect nested dimensions and their fanouts by replaying the hierarchy:
  // `cur[r]` is rank r's unit id at the current level (starts at its dim-0
  // group). A dimension d nests when every unit lies inside one dim-d group.
  std::vector<Level> levels;
  {
    std::vector<int> cur(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) {
      cur[static_cast<std::size_t>(r)] = groups.group_of[0][static_cast<std::size_t>(r)];
    }
    int num_units = static_cast<int>(servers.size());
    for (int d = 1; d < groups.num_dims(); ++d) {
      const auto& gd = groups.group_of[static_cast<std::size_t>(d)];
      std::vector<int> unit_group(static_cast<std::size_t>(num_units), -2);
      bool nested = true;
      for (int r = 0; r < num_ranks && nested; ++r) {
        int& ug = unit_group[static_cast<std::size_t>(cur[static_cast<std::size_t>(r)])];
        const int g = gd[static_cast<std::size_t>(r)];
        if (ug == -2) {
          ug = g;
        } else if (ug != g) {
          nested = false;
        }
      }
      if (!nested) continue;
      std::map<int, std::vector<int>> members;  // dim-d group -> unit ids
      for (int u = 0; u < num_units; ++u) {
        members[unit_group[static_cast<std::size_t>(u)]].push_back(u);
      }
      const int fanout = static_cast<int>(members.begin()->second.size());
      for (const auto& [g, us] : members) {
        (void)g;
        if (static_cast<int>(us.size()) != fanout) return std::nullopt;
      }
      // Renumber units to dim-d groups.
      std::map<int, int> group_id;
      for (const auto& [g, us] : members) {
        (void)us;
        group_id.emplace(g, static_cast<int>(group_id.size()));
      }
      for (int r = 0; r < num_ranks; ++r) {
        cur[static_cast<std::size_t>(r)] = group_id.at(gd[static_cast<std::size_t>(r)]);
      }
      num_units = static_cast<int>(group_id.size());
      if (fanout > 1) levels.push_back(Level{d, fanout});
    }
  }

  // Compute full digit vectors directly per rank.
  std::vector<std::vector<int>> digits(static_cast<std::size_t>(num_ranks));
  {
    std::vector<int> u2(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) {
      const int s0 = groups.group_of[0][static_cast<std::size_t>(r)];
      digits[static_cast<std::size_t>(r)].push_back(
          servers[static_cast<std::size_t>(s0)].local_of(r));
      u2[static_cast<std::size_t>(r)] = s0;
    }
    // Recompute level digits rank-wise by replaying the nesting.
    std::vector<int> cur = u2;
    int n_units = static_cast<int>(servers.size());
    std::size_t level_idx = 0;
    for (int d = 1; d < groups.num_dims() && level_idx < levels.size(); ++d) {
      if (levels[level_idx].dim != d) continue;
      const auto& gd = groups.group_of[static_cast<std::size_t>(d)];
      std::map<int, std::map<int, int>> digit_of;  // dim-d group -> unit -> digit
      std::map<int, int> group_id;
      for (int r = 0; r < num_ranks; ++r) {
        const int g = gd[static_cast<std::size_t>(r)];
        auto& m = digit_of[g];
        m.emplace(cur[static_cast<std::size_t>(r)], static_cast<int>(m.size()));
      }
      int next = 0;
      for (auto& [g, m] : digit_of) {
        (void)m;
        group_id.emplace(g, next++);
      }
      for (int r = 0; r < num_ranks; ++r) {
        const int g = gd[static_cast<std::size_t>(r)];
        digits[static_cast<std::size_t>(r)].push_back(
            digit_of[g][cur[static_cast<std::size_t>(r)]]);
        cur[static_cast<std::size_t>(r)] = group_id[g];
      }
      n_units = next;
      (void)n_units;
      ++level_idx;
    }
  }
  std::vector<int> sizes;
  sizes.push_back(per_server);
  for (const auto& l : levels) sizes.push_back(l.fanout);

  std::map<std::vector<int>, int> rank_of;
  for (int r = 0; r < num_ranks; ++r) rank_of[digits[static_cast<std::size_t>(r)]] = r;

  const auto& c0 = digits[static_cast<std::size_t>(sketch.root)];
  const auto& c1 = digits[static_cast<std::size_t>(new_root)];
  std::vector<int> delta(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    delta[i] = ((c1[i] - c0[i]) % sizes[i] + sizes[i]) % sizes[i];
  }
  auto F = [&](int rank) {
    std::vector<int> c = digits[static_cast<std::size_t>(rank)];
    for (std::size_t i = 0; i < sizes.size(); ++i) c[i] = (c[i] + delta[i]) % sizes[i];
    return rank_of.at(c);
  };

  Sketch out;
  out.root = new_root;
  out.pattern = sketch.pattern;
  out.parent.assign(static_cast<std::size_t>(num_ranks), -1);
  for (const Stage& st : sketch.stages) {
    Stage mapped;
    for (const SubDemandSpec& r : st.demands) {
      SubDemandSpec m;
      m.dim = r.dim;
      for (int x : r.srcs) m.srcs.push_back(F(x));
      for (int x : r.dsts) m.dsts.push_back(F(x));
      const auto& gd = groups.group_of[static_cast<std::size_t>(r.dim)];
      m.group = gd[static_cast<std::size_t>(m.srcs.front())];
      if (m.group < 0) return std::nullopt;  // rotated onto an uncovered rank
      for (int x : m.srcs) {
        if (gd[static_cast<std::size_t>(x)] != m.group) return std::nullopt;
      }
      for (int x : m.dsts) {
        if (gd[static_cast<std::size_t>(x)] != m.group) return std::nullopt;
      }
      mapped.demands.push_back(std::move(m));
    }
    out.stages.push_back(std::move(mapped));
  }
  for (int v = 0; v < num_ranks; ++v) {
    const int p = sketch.parent.empty() ? -1 : sketch.parent[static_cast<std::size_t>(v)];
    if (p >= 0) out.parent[static_cast<std::size_t>(F(v))] = F(p);
  }
  try {
    out.validate(groups);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  return out;
}

SketchCombination replicate_for_all_roots(const SketchCombination& proto,
                                          const topo::TopologyGroups& groups) {
  if (proto.sketches.empty()) throw std::invalid_argument("empty prototype combination");
  const int num_ranks = static_cast<int>(groups.group_of.front().size());
  const int r0 = proto.sketches.front().sketch.root;

  SketchCombination out = proto;
  WorkloadState acc(groups);
  for (const auto& ws : proto.sketches) acc.add_sketch(ws.sketch, groups);

  for (int r = 0; r < num_ranks; ++r) {
    if (r == r0) continue;
    for (const auto& ws : proto.sketches) {
      // The exact automorphism first (uniform by construction); load-steered
      // replication handles irregular topologies; canonical mapping is the
      // last resort.
      auto rep = rotate_sketch(ws.sketch, groups, r);
      if (!rep.has_value()) rep = replicate_sketch(ws.sketch, groups, acc, r);
      if (!rep.has_value()) rep = replicate_sketch(ws.sketch, groups, acc, r, false);
      if (!rep.has_value()) {
        throw std::runtime_error("all-to-all replication failed for a root");
      }
      acc.add_sketch(*rep, groups);
      out.sketches.push_back(WeightedSketch{std::move(*rep), ws.fraction});
    }
  }
  return out;
}

}  // namespace syccl::sketch
