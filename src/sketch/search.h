// Enumeration-based sketch search (paper §4.1).
//
// Depth-first over stages: each stage activates a subset of dimensions; in
// every activated dimension, each group containing an eligible source fills
// `c` of its still-uncovered members (c swept over a geometric ladder plus
// "all", or every count in exhaustive mode). Sources are all holders of a
// group whose root path has not crossed the dimension yet — giving the tree
// property and "each dimension at most once per path" for free.
//
// Destinations inside a group are picked canonically (lowest uncovered
// rank); the replication pass (§4.2) later remaps them to balance load, so
// canonical choice loses no generality while slashing the search space.
#pragma once

#include <vector>

#include "sketch/sketch.h"

namespace syccl::sketch {

struct SearchConfig {
  /// K limit on sketch stages.
  int max_stages = 4;
  /// Pruning #3: maximum root-path hops. -1 → |D| for Broadcast, |D|−1
  /// (min 1) for Scatter.
  int max_hops = -1;
  /// Pruning #1 (isomorphism dedup) toggle.
  bool prune_isomorphic = true;
  /// Pruning #2 (cross-group consistency) toggle.
  bool prune_consistency = true;
  /// Sweep every destination count instead of the {1,2,4,…,all} ladder.
  bool exhaustive_counts = false;
  /// Result cap (distinct sketches).
  int max_sketches = 64;
  /// DFS node budget (safety valve on pathological topologies).
  long node_budget = 200000;
};

/// Searches sketches delivering `root`'s data to every other rank.
/// Returns at least one sketch for any tier-structured topology (a pure
/// dimension-ordered hierarchical sketch always exists); throws
/// std::runtime_error if the search cannot cover all ranks within limits.
std::vector<Sketch> search_sketches(const topo::TopologyGroups& groups, int root,
                                    RootedPattern pattern, const SearchConfig& config = {});

}  // namespace syccl::sketch
