#include "sketch/prune.h"

#include <map>
#include <set>
#include <string>

#include "topo/isomorphism.h"

namespace syccl::sketch {

std::vector<Sketch> dedup_isomorphic(std::vector<Sketch> sketches,
                                     const topo::TopologyGroups& groups) {
  std::set<std::string> seen;
  std::vector<Sketch> out;
  for (auto& s : sketches) {
    if (seen.insert(s.canonical_key(groups)).second) out.push_back(std::move(s));
  }
  return out;
}

bool stage_is_consistent(const Stage& stage, const topo::TopologyGroups& groups,
                         bool is_final_stage) {
  if (is_final_stage) return true;
  // Group the stage's demands by (dim, isomorphism class) and compare ratios.
  std::map<std::pair<int, int>, std::set<long long>> ratios;
  for (const SubDemandSpec& r : stage.demands) {
    if (r.srcs.empty()) return false;
    const auto classes =
        topo::isomorphism_classes(groups.dims[static_cast<std::size_t>(r.dim)].groups);
    const int cls = classes[static_cast<std::size_t>(r.group)];
    // Fixed-point ratio to avoid float-equality issues.
    const long long ratio =
        static_cast<long long>(1000.0 * static_cast<double>(r.dsts.size()) /
                               static_cast<double>(r.srcs.size()));
    ratios[{r.dim, cls}].insert(ratio);
  }
  for (const auto& [key, set] : ratios) {
    (void)key;
    if (set.size() > 1) return false;
  }
  return true;
}

int max_relay_hops(const Sketch& sketch) {
  int longest = 0;
  for (std::size_t v = 0; v < sketch.parent.size(); ++v) {
    int hops = 0;
    int cur = sketch.parent[v];
    while (cur >= 0) {
      ++hops;
      cur = sketch.parent[static_cast<std::size_t>(cur)];
    }
    longest = std::max(longest, hops);
  }
  return longest;
}

}  // namespace syccl::sketch
