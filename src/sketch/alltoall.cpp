#include "sketch/alltoall.h"

#include <algorithm>
#include <set>

#include "sketch/replicate.h"
#include "util/log.h"

namespace syccl::sketch {

std::vector<Sketch> select_prototypes(std::vector<Sketch> sketches,
                                      const topo::TopologyGroups& groups, int max_count) {
  // Rank by β-weighted traffic: the workload each dimension carries times
  // its (relative) per-byte cost — a cheap proxy for bandwidth efficiency.
  // Ties favour fewer stages (lower latency).
  std::vector<double> dim_beta;
  double beta_min = 1e300;
  for (const auto& d : groups.dims) {
    const double b = d.groups.front().up.front().beta;
    dim_beta.push_back(b);
    beta_min = std::min(beta_min, b);
  }
  auto score = [&](const Sketch& s) {
    double total = 0.0;
    const auto w = s.dim_workload(groups);
    for (std::size_t d = 0; d < w.size(); ++d) total += w[d] * dim_beta[d] / beta_min;
    return total;
  };
  std::stable_sort(sketches.begin(), sketches.end(), [&](const Sketch& a, const Sketch& b) {
    const double sa = score(a);
    const double sb = score(b);
    if (sa != sb) return sa < sb;
    return a.num_stages() < b.num_stages();
  });
  std::set<std::string> profiles;
  std::vector<Sketch> out;
  for (auto& s : sketches) {
    std::string profile;
    for (double w : s.dim_workload(groups)) {
      profile += std::to_string(static_cast<long long>(w * 1000)) + ",";
    }
    if (!profiles.insert(profile).second) continue;
    out.push_back(std::move(s));
    if (static_cast<int>(out.size()) >= max_count) break;
  }
  return out;
}

std::vector<SketchCombination> generate_rooted_combinations(const topo::TopologyGroups& groups,
                                                            int root, RootedPattern pattern,
                                                            const AllToAllConfig& config) {
  const auto sketches = search_sketches(groups, root, pattern, config.search);
  const auto prototypes = select_prototypes(sketches, groups, config.max_prototypes);
  std::vector<SketchCombination> balanced;
  for (const auto& s : prototypes) {
    balanced.push_back(balance_across_groups(s, groups));
  }
  return generate_combinations(balanced, groups, config.combine);
}

std::vector<SketchCombination> generate_alltoall_combinations(
    const topo::TopologyGroups& groups, RootedPattern pattern, const AllToAllConfig& config) {
  // Search once for the prototype rooted at rank 0 (§4.3), replicate to all
  // roots, then integrate across dimensions.
  const auto sketches = search_sketches(groups, 0, pattern, config.search);
  const auto prototypes = select_prototypes(sketches, groups, config.max_prototypes);

  std::vector<SketchCombination> balanced;
  auto try_family = [&](const Sketch& proto) {
    try {
      const SketchCombination combo = balance_across_groups(proto, groups);
      balanced.push_back(replicate_for_all_roots(combo, groups));
    } catch (const std::runtime_error& e) {
      SYCCL_DEBUG << "dropping sketch family: " << e.what();
    }
  };
  for (const auto& proto : prototypes) try_family(proto);
  // Fallback for degraded/failed fabrics (mirrors
  // Synthesizer::synthesize_pattern): the profile-deduped working set can be
  // entirely unreplicable while the raw search output still holds a
  // feasible family.
  for (std::size_t si = 0; si < sketches.size() && balanced.empty(); ++si) {
    try_family(sketches[si]);
  }
  return generate_combinations(balanced, groups, config.combine);
}

}  // namespace syccl::sketch
