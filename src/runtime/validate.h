// Structural schedule validation, independent of timing.
//
// The simulator already rejects dependency inversions and unmet demands; the
// validator adds static checks and accounting that the executor path needs
// before a schedule is shipped: demand coverage, redundant-delivery
// detection, per-dimension traffic stats.
#pragma once

#include <string>
#include <vector>

#include "coll/collective.h"
#include "sim/schedule.h"
#include "topo/groups.h"

namespace syccl::runtime {

struct ValidationReport {
  bool ok = false;
  std::vector<std::string> errors;
  std::vector<std::string> warnings;  ///< e.g. redundant deliveries
  /// Bytes crossing each dimension's links.
  std::vector<double> traffic_per_dim;
  double total_traffic = 0.0;
};

/// Validates `schedule` against `coll` on `groups`: every op's endpoints
/// must share the claimed dimension group, pieces must flow from their
/// origins, every demand must be covered, and reduce pieces must gather all
/// contributors. Never throws; problems land in the report.
ValidationReport validate_schedule(const sim::Schedule& schedule, const coll::Collective& coll,
                                   const topo::TopologyGroups& groups);

}  // namespace syccl::runtime
