#include "runtime/xml.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace syccl::runtime {

namespace {

/// Minimal XML tokenizer for the dialect we emit: <tag a="v" ...> , </tag>,
/// <tag ... />. No text nodes, comments or entities.
struct Tag {
  std::string name;
  std::map<std::string, std::string> attrs;
  bool closing = false;
  bool self_closing = false;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  /// Next tag, or nullopt at end of input.
  bool next(Tag& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    if (text_[pos_] != '<') throw std::invalid_argument("expected '<' in XML");
    ++pos_;
    out = Tag{};
    if (peek() == '?') {  // declaration: skip to '>'
      while (pos_ < text_.size() && text_[pos_] != '>') ++pos_;
      ++pos_;
      return next(out);
    }
    if (peek() == '/') {
      out.closing = true;
      ++pos_;
    }
    out.name = read_name();
    for (;;) {
      skip_ws();
      if (peek() == '/') {
        out.self_closing = true;
        ++pos_;
        skip_ws();
      }
      if (peek() == '>') {
        ++pos_;
        return true;
      }
      if (pos_ >= text_.size()) throw std::invalid_argument("unterminated tag");
      const std::string key = read_name();
      skip_ws();
      if (peek() != '=') throw std::invalid_argument("expected '=' after attribute name");
      ++pos_;
      skip_ws();
      if (peek() != '"') throw std::invalid_argument("expected '\"' around attribute value");
      ++pos_;
      std::string value;
      while (pos_ < text_.size() && text_[pos_] != '"') value += text_[pos_++];
      if (pos_ >= text_.size()) throw std::invalid_argument("unterminated attribute value");
      ++pos_;
      out.attrs[key] = value;
    }
  }

 private:
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                                   text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  std::string read_name() {
    std::string name;
    while (pos_ < text_.size() && (isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '_' || text_[pos_] == '-')) {
      name += text_[pos_++];
    }
    if (name.empty()) throw std::invalid_argument("empty XML name");
    return name;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

int attr_int(const Tag& tag, const std::string& key) {
  const auto it = tag.attrs.find(key);
  if (it == tag.attrs.end()) {
    throw std::invalid_argument("missing attribute '" + key + "' on <" + tag.name + ">");
  }
  return std::stoi(it->second);
}

double attr_double(const Tag& tag, const std::string& key) {
  const auto it = tag.attrs.find(key);
  if (it == tag.attrs.end()) {
    throw std::invalid_argument("missing attribute '" + key + "' on <" + tag.name + ">");
  }
  return std::stod(it->second);
}

}  // namespace

std::string to_xml(const sim::Schedule& schedule, int num_ranks, const XmlOptions& options) {
  std::ostringstream os;
  const std::string& algo_name = options.name.empty() ? schedule.name : options.name;
  os << "<algo name=\"" << algo_name << "\" proto=\"" << options.protocol
     << "\" nchannels=\"" << options.channels << "\" ngpus=\"" << num_ranks << "\">\n";

  os << "  <pieces count=\"" << schedule.pieces.size() << "\">\n";
  for (std::size_t i = 0; i < schedule.pieces.size(); ++i) {
    const sim::Piece& p = schedule.pieces[i];
    os << "    <piece id=\"" << i << "\" chunk=\"" << p.chunk << "\" bytes=\"" << p.bytes
       << "\" origin=\"" << p.origin << "\" reduce=\"" << (p.reduce ? 1 : 0) << "\"";
    if (p.reduce) {
      os << " contributors=\"";
      for (std::size_t c = 0; c < p.contributors.size(); ++c) {
        if (c != 0) os << ",";
        os << p.contributors[c];
      }
      os << "\"";
    }
    os << " />\n";
  }
  os << "  </pieces>\n";

  // Group ops per source GPU (threadblock programs), preserving global issue
  // order via the step attribute.
  std::map<int, std::vector<std::pair<int, const sim::TransferOp*>>> per_gpu;
  for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
    per_gpu[schedule.ops[i].src].push_back({static_cast<int>(i), &schedule.ops[i]});
  }
  for (int g = 0; g < num_ranks; ++g) {
    const auto it = per_gpu.find(g);
    os << "  <gpu id=\"" << g << "\">\n";
    if (it != per_gpu.end()) {
      os << "    <tb id=\"0\">\n";
      for (const auto& [step, op] : it->second) {
        os << "      <send step=\"" << step << "\" piece=\"" << op->piece << "\" dst=\""
           << op->dst << "\" dim=\"" << op->dim << "\" phase=\"" << op->phase << "\" />\n";
      }
      os << "    </tb>\n";
    }
    os << "  </gpu>\n";
  }
  os << "</algo>\n";
  return os.str();
}

sim::Schedule from_xml(const std::string& xml) {
  Lexer lexer(xml);
  Tag tag;
  if (!lexer.next(tag) || tag.name != "algo") {
    throw std::invalid_argument("XML does not start with <algo>");
  }
  sim::Schedule out;
  const auto name_it = tag.attrs.find("name");
  out.name = name_it != tag.attrs.end() ? name_it->second : "parsed";
  // Rank bound for endpoint checks; our emitter always writes ngpus. -1
  // (attribute absent, foreign document) disables the range checks.
  const int ngpus = tag.attrs.count("ngpus") ? attr_int(tag, "ngpus") : -1;
  const auto check_rank = [ngpus](int rank, const char* what) {
    if (rank < 0 || (ngpus >= 0 && rank >= ngpus)) {
      throw std::invalid_argument(std::string(what) + " rank " + std::to_string(rank) +
                                  " out of range");
    }
  };

  int current_gpu = -1;
  bool closed = false;
  struct ParsedOp {
    int step;
    sim::TransferOp op;
  };
  std::vector<ParsedOp> ops;

  while (lexer.next(tag)) {
    if (tag.closing) {
      if (tag.name == "algo") closed = true;
      continue;
    }
    if (tag.name == "piece") {
      sim::Piece p;
      const int id = attr_int(tag, "id");
      p.chunk = attr_int(tag, "chunk");
      p.bytes = attr_double(tag, "bytes");
      p.origin = attr_int(tag, "origin");
      p.reduce = attr_int(tag, "reduce") != 0;
      const auto cit = tag.attrs.find("contributors");
      if (cit != tag.attrs.end() && !cit->second.empty()) {
        std::istringstream cs(cit->second);
        std::string item;
        while (std::getline(cs, item, ',')) p.contributors.push_back(std::stoi(item));
      }
      if (id != static_cast<int>(out.pieces.size())) {
        throw std::invalid_argument("piece ids must be dense and ordered");
      }
      out.pieces.push_back(std::move(p));
    } else if (tag.name == "gpu") {
      current_gpu = attr_int(tag, "id");
      check_rank(current_gpu, "<gpu>");
    } else if (tag.name == "send") {
      if (current_gpu < 0) throw std::invalid_argument("<send> outside <gpu>");
      ParsedOp po;
      po.step = attr_int(tag, "step");
      po.op.piece = attr_int(tag, "piece");
      po.op.src = current_gpu;
      po.op.dst = attr_int(tag, "dst");
      check_rank(po.op.dst, "<send> dst");
      po.op.dim = attr_int(tag, "dim");
      po.op.phase = attr_int(tag, "phase");
      ops.push_back(po);
    } else if (tag.name == "pieces" || tag.name == "tb" || tag.name == "algo") {
      // structural tags
    } else {
      throw std::invalid_argument("unexpected tag <" + tag.name + ">");
    }
  }

  if (!closed) {
    // A document cut off mid-transfer parses as a shorter, silently wrong
    // schedule; the emitter always terminates with </algo>, so its absence
    // means truncation.
    throw std::invalid_argument("truncated XML: missing </algo>");
  }
  std::sort(ops.begin(), ops.end(),
            [](const ParsedOp& a, const ParsedOp& b) { return a.step < b.step; });
  for (const auto& po : ops) {
    if (po.op.piece < 0 || static_cast<std::size_t>(po.op.piece) >= out.pieces.size()) {
      throw std::invalid_argument("send references unknown piece");
    }
    out.ops.push_back(po.op);
  }
  return out;
}

}  // namespace syccl::runtime
