// In-memory data-plane executor (paper §6: the schedule executor).
//
// The paper injects synthesized schedules into MSCCL-executor, which moves
// real GPU buffers. This executor is the repo's equivalent: it runs a
// schedule against host-memory buffers, byte for byte, and checks that the
// collective's semantics hold — every destination ends with exactly the
// payload the collective promises, reductions sum element-wise, and split
// pieces reassemble into whole chunks. This is the strongest correctness
// check in the repo: it validates data movement, not just timing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coll/collective.h"
#include "sim/schedule.h"

namespace syccl::runtime {

struct ExecutionReport {
  bool ok = false;
  std::vector<std::string> errors;
  /// Total bytes copied between ranks.
  double bytes_moved = 0.0;
  /// Number of element-wise reductions performed.
  std::size_t reductions = 0;
};

/// Executes `schedule` for `coll` on synthetic buffers and verifies the
/// result. Elements are doubles; rank r's contribution to chunk c is the
/// deterministic pattern value(c, r). Reduce collectives verify element-wise
/// sums; forward collectives verify exact payload identity and full byte
/// coverage of every demanded chunk. Never throws on semantic errors — they
/// land in the report. Throws std::invalid_argument only on structurally
/// unusable schedules (unknown piece ids, bad ranks).
ExecutionReport execute_and_verify(const sim::Schedule& schedule, const coll::Collective& coll);

/// The deterministic element pattern used by the executor (exposed so tests
/// can compute expected values).
double executor_pattern(int chunk, int contributor, int element);

/// Elements stored per piece (fixed; bytes are modelled, elements carry the
/// semantics).
inline constexpr int kElementsPerPiece = 4;

}  // namespace syccl::runtime
