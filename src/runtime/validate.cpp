#include "runtime/validate.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "sim/analyze.h"

namespace syccl::runtime {

namespace {

std::string fmt_op(std::size_t index, const sim::TransferOp& op) {
  std::ostringstream os;
  os << "op #" << index << " (piece " << op.piece << ", " << op.src << "->" << op.dst << ")";
  return os.str();
}

}  // namespace

ValidationReport validate_schedule(const sim::Schedule& schedule, const coll::Collective& coll,
                                   const topo::TopologyGroups& groups) {
  ValidationReport report;
  report.traffic_per_dim.assign(static_cast<std::size_t>(groups.num_dims()), 0.0);
  const int num_ranks = static_cast<int>(groups.group_of.front().size());

  // Availability per (piece, rank); reduce contributor sets per (piece, rank).
  std::set<std::pair<int, int>> have;
  std::map<std::pair<int, int>, std::set<int>> contrib;
  for (std::size_t pi = 0; pi < schedule.pieces.size(); ++pi) {
    const sim::Piece& p = schedule.pieces[pi];
    if (p.reduce) {
      for (int c : p.contributors) {
        if (c < 0 || c >= num_ranks) {
          report.errors.push_back("piece contributor rank out of range");
          continue;
        }
        have.insert({static_cast<int>(pi), c});
        contrib[{static_cast<int>(pi), c}].insert(c);
      }
    } else {
      if (p.origin < 0 || p.origin >= num_ranks) {
        report.errors.push_back("piece origin rank out of range");
        continue;
      }
      have.insert({static_cast<int>(pi), p.origin});
    }
  }

  for (std::size_t oi = 0; oi < schedule.ops.size(); ++oi) {
    const sim::TransferOp& op = schedule.ops[oi];
    if (op.piece < 0 || static_cast<std::size_t>(op.piece) >= schedule.pieces.size()) {
      report.errors.push_back(fmt_op(oi, op) + ": unknown piece");
      continue;
    }
    if (op.src < 0 || op.src >= num_ranks || op.dst < 0 || op.dst >= num_ranks ||
        op.src == op.dst) {
      report.errors.push_back(fmt_op(oi, op) + ": bad endpoints");
      continue;
    }
    const int dim = op.dim >= 0 ? op.dim : groups.best_common_dim(op.src, op.dst);
    if (dim < 0 || dim >= groups.num_dims() ||
        groups.group_of[static_cast<std::size_t>(dim)][static_cast<std::size_t>(op.src)] !=
            groups.group_of[static_cast<std::size_t>(dim)][static_cast<std::size_t>(op.dst)] ||
        groups.group_of[static_cast<std::size_t>(dim)][static_cast<std::size_t>(op.src)] < 0) {
      report.errors.push_back(fmt_op(oi, op) + ": endpoints share no group in dimension " +
                              std::to_string(dim));
      continue;
    }
    if (have.count({op.piece, op.src}) == 0) {
      report.errors.push_back(fmt_op(oi, op) + ": source does not hold the piece yet");
      continue;
    }
    const sim::Piece& p = schedule.pieces[static_cast<std::size_t>(op.piece)];
    if (!p.reduce && have.count({op.piece, op.dst}) != 0) {
      report.warnings.push_back(fmt_op(oi, op) + ": redundant delivery (bandwidth waste)");
    }
    if (p.reduce) {
      auto& dst_set = contrib[{op.piece, op.dst}];
      const auto& src_set = contrib[{op.piece, op.src}];
      // A reduce delivery whose source set adds no contributor the
      // destination does not already hold is pure bandwidth waste (and a
      // double-count hazard for non-idempotent reductions).
      if (have.count({op.piece, op.dst}) != 0 &&
          std::includes(dst_set.begin(), dst_set.end(), src_set.begin(), src_set.end())) {
        report.warnings.push_back(fmt_op(oi, op) +
                                  ": redundant delivery (no new contributors)");
      }
      dst_set.insert(src_set.begin(), src_set.end());
    }
    have.insert({op.piece, op.dst});
    report.traffic_per_dim[static_cast<std::size_t>(dim)] += p.bytes;
    report.total_traffic += p.bytes;
  }

  // Demand coverage.
  const double chunk_bytes = coll.chunk_bytes();
  const sim::DemandIndex demand_index = sim::build_demand_index(schedule, coll);
  auto covered = [&](int chunk, int dst, const std::vector<int>* need_contrib) {
    const auto it = demand_index.pieces_by_chunk.find(chunk);
    if (it == demand_index.pieces_by_chunk.end()) return false;
    double bytes = 0.0;
    for (int pi : it->second) {
      if (have.count({pi, dst}) == 0) continue;
      if (need_contrib != nullptr) {
        const auto cit = contrib.find({pi, dst});
        if (cit == contrib.end() ||
            !std::includes(cit->second.begin(), cit->second.end(), need_contrib->begin(),
                           need_contrib->end())) {
          continue;
        }
      }
      bytes += schedule.pieces[static_cast<std::size_t>(pi)].bytes;
    }
    return bytes + 1e-6 >= chunk_bytes;
  };

  if (!coll.reduce()) {
    for (std::size_t c = 0; c < coll.chunks().size(); ++c) {
      for (int d : coll.chunks()[c].dsts) {
        if (!covered(static_cast<int>(c), d, nullptr)) {
          report.errors.push_back("demand unmet: chunk " + std::to_string(c) + " at rank " +
                                  std::to_string(d));
        }
      }
    }
  } else {
    for (const auto& [dst, cs] : demand_index.reduce_demands) {
      if (!covered(dst, dst, &cs)) {
        report.errors.push_back("reduce demand unmet at rank " + std::to_string(dst));
      }
    }
  }

  report.ok = report.errors.empty();
  return report;
}

}  // namespace syccl::runtime
