// MSCCL-style XML schedule emission and parsing (paper §6).
//
// The schedule executor in the paper converts synthesized schedules into XML
// consumed by MSCCL-executor. We reproduce that artifact path: emit an
// <algo> document with per-GPU <tb> (threadblock) programs of <send>/<recv>
// steps, and parse it back for round-trip validation. The dialect follows
// MSCCL's structure; runtime parameters (protocol, channel count) are
// attributes on <algo>.
#pragma once

#include <string>

#include "sim/schedule.h"

namespace syccl::runtime {

struct XmlOptions {
  /// Algorithm name; empty = use the schedule's own name.
  std::string name;
  std::string protocol = "Simple";  ///< MSCCL protocol hint (Simple/LL/LL128)
  int channels = 1;                 ///< communication channels
};

/// Serialises a schedule to MSCCL-style XML. `num_ranks` bounds the GPU
/// list; ops are grouped per source GPU into threadblocks in issue order.
std::string to_xml(const sim::Schedule& schedule, int num_ranks, const XmlOptions& options = {});

/// Parses XML produced by to_xml back into a schedule. Throws
/// std::invalid_argument on malformed documents. Round-trip guarantee:
/// parse(to_xml(s)) preserves pieces, op endpoints and per-port op order.
sim::Schedule from_xml(const std::string& xml);

}  // namespace syccl::runtime
