#include "runtime/executor.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "sim/analyze.h"

namespace syccl::runtime {

namespace {

using Payload = std::array<double, kElementsPerPiece>;

struct Slot {
  Payload values{};
  std::set<int> contributors;  // reduce pieces only
  bool present = false;
};

std::string fmt(const char* what, int piece, int rank) {
  std::ostringstream os;
  os << what << " (piece " << piece << ", rank " << rank << ")";
  return os.str();
}

bool nearly_equal(const Payload& a, const Payload& b) {
  for (int e = 0; e < kElementsPerPiece; ++e) {
    if (std::fabs(a[static_cast<std::size_t>(e)] - b[static_cast<std::size_t>(e)]) > 1e-9) {
      return false;
    }
  }
  return true;
}

}  // namespace

double executor_pattern(int chunk, int contributor, int element) {
  // Any injective-ish deterministic pattern works; primes keep collisions
  // (e.g. swapped chunk/contributor) detectable.
  return 1.0 + 31.0 * chunk + 97.0 * contributor + 7.0 * element;
}

ExecutionReport execute_and_verify(const sim::Schedule& schedule, const coll::Collective& coll) {
  ExecutionReport report;
  const int num_ranks = coll.num_ranks();

  // State per (piece, rank).
  std::map<std::pair<int, int>, Slot> state;
  for (std::size_t pi = 0; pi < schedule.pieces.size(); ++pi) {
    const sim::Piece& p = schedule.pieces[pi];
    if (p.reduce) {
      for (int c : p.contributors) {
        if (c < 0 || c >= num_ranks) throw std::invalid_argument("contributor out of range");
        Slot& s = state[{static_cast<int>(pi), c}];
        s.present = true;
        s.contributors = {c};
        for (int e = 0; e < kElementsPerPiece; ++e) {
          s.values[static_cast<std::size_t>(e)] = executor_pattern(p.chunk, c, e);
        }
      }
    } else {
      if (p.origin < 0 || p.origin >= num_ranks) {
        throw std::invalid_argument("piece origin out of range");
      }
      Slot& s = state[{static_cast<int>(pi), p.origin}];
      s.present = true;
      for (int e = 0; e < kElementsPerPiece; ++e) {
        s.values[static_cast<std::size_t>(e)] = executor_pattern(p.chunk, p.origin, e);
      }
    }
  }

  // Execute ops in issue order.
  for (const sim::TransferOp& op : schedule.ops) {
    if (op.piece < 0 || static_cast<std::size_t>(op.piece) >= schedule.pieces.size()) {
      throw std::invalid_argument("op references unknown piece");
    }
    if (op.src < 0 || op.src >= num_ranks || op.dst < 0 || op.dst >= num_ranks) {
      throw std::invalid_argument("op rank out of range");
    }
    const sim::Piece& p = schedule.pieces[static_cast<std::size_t>(op.piece)];
    const auto sit = state.find({op.piece, op.src});
    if (sit == state.end() || !sit->second.present) {
      report.errors.push_back(fmt("send before receive", op.piece, op.src));
      continue;
    }
    const Slot src_copy = sit->second;  // the dst insert may rehash
    Slot& dst = state[{op.piece, op.dst}];
    report.bytes_moved += p.bytes;

    if (!p.reduce) {
      if (dst.present && !nearly_equal(dst.values, src_copy.values)) {
        report.errors.push_back(fmt("conflicting payload delivered", op.piece, op.dst));
        continue;
      }
      dst.values = src_copy.values;
      dst.present = true;
    } else {
      // Element-wise accumulate; contributor sets must stay disjoint or a
      // partial would be summed twice.
      for (int c : src_copy.contributors) {
        if (dst.contributors.count(c) != 0) {
          report.errors.push_back(fmt("double-counted reduce contributor", op.piece, op.dst));
        }
      }
      if (!dst.present) {
        dst.values = Payload{};
        dst.present = true;
      }
      for (int e = 0; e < kElementsPerPiece; ++e) {
        dst.values[static_cast<std::size_t>(e)] += src_copy.values[static_cast<std::size_t>(e)];
      }
      dst.contributors.insert(src_copy.contributors.begin(), src_copy.contributors.end());
      report.reductions += kElementsPerPiece;
    }
  }

  // Final verification against the collective's demands.
  const double chunk_bytes = coll.chunk_bytes();
  const sim::DemandIndex demand_index = sim::build_demand_index(schedule, coll);
  static const std::vector<int> kNoPieces;
  auto pieces_of = [&](int chunk) -> const std::vector<int>& {
    const auto it = demand_index.pieces_by_chunk.find(chunk);
    return it != demand_index.pieces_by_chunk.end() ? it->second : kNoPieces;
  };

  auto check_forward = [&](int chunk, int dst) {
    double covered = 0.0;
    for (int pi : pieces_of(chunk)) {
      const auto it = state.find({pi, dst});
      if (it == state.end() || !it->second.present) continue;
      const sim::Piece& p = schedule.pieces[static_cast<std::size_t>(pi)];
      Payload expect;
      for (int e = 0; e < kElementsPerPiece; ++e) {
        expect[static_cast<std::size_t>(e)] = executor_pattern(p.chunk, p.origin, e);
      }
      if (!nearly_equal(it->second.values, expect)) {
        report.errors.push_back(fmt("corrupted payload at destination", pi, dst));
        continue;
      }
      covered += p.bytes;
    }
    if (covered + 1e-6 < chunk_bytes) {
      std::ostringstream os;
      os << "chunk " << chunk << " only " << covered << "/" << chunk_bytes << " bytes at rank "
         << dst;
      report.errors.push_back(os.str());
    }
  };

  auto check_reduce = [&](int block, int dst, const std::vector<int>& contributors) {
    double covered = 0.0;
    for (int pi : pieces_of(block)) {
      const auto it = state.find({pi, dst});
      if (it == state.end() || !it->second.present) continue;
      // Exactly the demanded contributor set (a partial does not count).
      if (!std::equal(it->second.contributors.begin(), it->second.contributors.end(),
                      contributors.begin(), contributors.end())) {
        continue;
      }
      Payload expect{};
      for (int c : contributors) {
        for (int e = 0; e < kElementsPerPiece; ++e) {
          expect[static_cast<std::size_t>(e)] += executor_pattern(block, c, e);
        }
      }
      if (!nearly_equal(it->second.values, expect)) {
        report.errors.push_back(fmt("wrong reduction value", pi, dst));
        continue;
      }
      covered += schedule.pieces[static_cast<std::size_t>(pi)].bytes;
    }
    if (covered + 1e-6 < chunk_bytes) {
      std::ostringstream os;
      os << "reduced block " << block << " incomplete at rank " << dst;
      report.errors.push_back(os.str());
    }
  };

  if (!coll.reduce()) {
    for (std::size_t c = 0; c < coll.chunks().size(); ++c) {
      for (int d : coll.chunks()[c].dsts) check_forward(static_cast<int>(c), d);
    }
  } else {
    for (const auto& [dst, cs] : demand_index.reduce_demands) {
      check_reduce(dst, dst, cs);
    }
  }

  report.ok = report.errors.empty();
  return report;
}

}  // namespace syccl::runtime
