// One differential fuzz case: generators → all oracles → divergence report.
//
// A case is fully determined by a 64-bit seed. It draws a topology, a
// collective and simulator options, gathers schedules from three sources —
// random direct schedules plus validity-preserving mutants, the baselines
// (NCCL rings/trees, TECCL, crafted), and optionally the full synthesizer —
// and pushes every schedule through four independent checkers:
//
//   1. runtime::validate_schedule  (structural)
//   2. runtime::execute_and_verify (data plane, byte-for-byte)
//   3. sim::Simulator              (production timing + final state)
//   4. sim::oracle_run             (reference timing + final state)
//
// A case fails if any checker reports an error, if the production simulator
// and the oracle disagree (makespan/op times beyond the relative tolerance,
// or different final piece/contributor state), or if exactly one of them
// throws. Used by tools/fuzz_schedules (CLI sweeps, corpus replay) and by
// the default-suite smoke test in tests/differential_test.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace syccl::fuzz {

struct CaseOptions {
  /// Also synthesize a schedule with core::Synthesizer (slow; a full §3.3
  /// search per case) and check it.
  bool with_synthesizer = false;
  /// Check baseline generators (NCCL, TECCL, crafted) where applicable.
  bool with_baselines = true;
  /// Degraded-topology axis: apply a random fault (link degradation or NIC
  /// failure, generators.h degrade_random) to the drawn topology before
  /// grouping, so every oracle runs against a heterogeneous fabric.
  bool degrade_topology = false;
  /// Number of mutated variants of the direct random schedule.
  int mutants = 2;
  /// Divergence tolerance on times (relative).
  double rel_tol = 1e-9;
  /// When non-empty: on the first timing/state divergence of this case,
  /// write a Chrome trace to this path with the production simulator's and
  /// the oracle's per-link timelines as two separate processes, so the
  /// disagreement can be eyeballed in Perfetto. Implies link-event recording
  /// for every checked schedule of the case.
  std::string trace_out;
};

struct CaseResult {
  std::uint64_t seed = 0;
  std::string desc;  ///< topology / collective / sim-options summary
  int schedules_checked = 0;
  std::size_t sim_events = 0;
  /// One entry per divergence or checker error; empty means the case passed.
  std::vector<std::string> failures;
  /// True when CaseOptions::trace_out was set and a divergence trace was
  /// written (at most one per case — the first divergent schedule).
  bool trace_written = false;
};

/// Runs one seeded case. Never throws on schedule-level problems (they land
/// in failures); throws only on harness bugs (e.g. generator produced a
/// schedule no checker accepts as input at all).
CaseResult run_differential_case(std::uint64_t seed, const CaseOptions& options = {});

}  // namespace syccl::fuzz
