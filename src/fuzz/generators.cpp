#include "fuzz/generators.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "topo/builders.h"
#include "topo/mutate.h"

namespace syccl::fuzz {

namespace {

topo::LinkParams jitter(util::Rng& rng, double alpha_lo_us, double alpha_hi_us, double bw_lo_GBs,
                        double bw_hi_GBs) {
  topo::LinkParams p;
  p.alpha_s = (alpha_lo_us + (alpha_hi_us - alpha_lo_us) * rng.next_double()) * 1e-6;
  p.bandwidth_Bps = (bw_lo_GBs + (bw_hi_GBs - bw_lo_GBs) * rng.next_double()) * 1e9;
  return p;
}

/// Random spanning tree (parent pointers, -1 at root) over the connectivity
/// graph via randomized Prim: each step attaches a uniformly drawn
/// (covered, uncovered) edge.
std::vector<int> random_spanning_tree(const std::vector<std::vector<int>>& adj, int root,
                                      util::Rng& rng) {
  const int n = static_cast<int>(adj.size());
  std::vector<int> parent(static_cast<std::size_t>(n), -2);
  parent[static_cast<std::size_t>(root)] = -1;
  int covered = 1;
  while (covered < n) {
    std::vector<std::pair<int, int>> frontier;  // (covered u, uncovered v)
    for (int u = 0; u < n; ++u) {
      if (parent[static_cast<std::size_t>(u)] == -2) continue;
      for (int v : adj[static_cast<std::size_t>(u)]) {
        if (parent[static_cast<std::size_t>(v)] == -2) frontier.emplace_back(u, v);
      }
    }
    if (frontier.empty()) {
      throw std::invalid_argument("rank connectivity graph is disconnected");
    }
    const auto [u, v] = frontier[rng.next_below(frontier.size())];
    parent[static_cast<std::size_t>(v)] = u;
    ++covered;
  }
  return parent;
}

std::vector<int> tree_depths(const std::vector<int>& parent) {
  std::vector<int> depth(parent.size(), -1);
  for (std::size_t v = 0; v < parent.size(); ++v) {
    int d = 0;
    for (int u = static_cast<int>(v); parent[static_cast<std::size_t>(u)] >= 0;
         u = parent[static_cast<std::size_t>(u)]) {
      ++d;
    }
    depth[v] = d;
  }
  return depth;
}

/// Nodes needed to deliver to / collect from `targets`: the targets plus all
/// their ancestors up to the root.
std::vector<bool> needed_nodes(const std::vector<int>& parent, const std::vector<int>& targets) {
  std::vector<bool> needed(parent.size(), false);
  for (int t : targets) {
    for (int u = t; u >= 0; u = parent[static_cast<std::size_t>(u)]) {
      if (needed[static_cast<std::size_t>(u)]) break;
      needed[static_cast<std::size_t>(u)] = true;
    }
  }
  return needed;
}

/// Random interleave of per-piece op lists that preserves each piece's own
/// order (the only intra-schedule dependency the simulator model has).
std::vector<sim::TransferOp> interleave(std::vector<std::vector<sim::TransferOp>> per_piece,
                                        util::Rng& rng) {
  std::vector<sim::TransferOp> out;
  std::vector<std::size_t> cursor(per_piece.size(), 0);
  for (;;) {
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < per_piece.size(); ++i) {
      if (cursor[i] < per_piece[i].size()) ready.push_back(i);
    }
    if (ready.empty()) break;
    const std::size_t pick = ready[rng.next_below(ready.size())];
    out.push_back(per_piece[pick][cursor[pick]++]);
  }
  return out;
}

}  // namespace

RandomTopology random_topology(util::Rng& rng) {
  std::ostringstream desc;
  switch (rng.next_below(8)) {
    case 0: {
      const int n = static_cast<int>(rng.next_in(2, 8));
      desc << "single_server(" << n << ")";
      return {topo::build_single_server(n, jitter(rng, 0.2, 1.0, 100, 400)), desc.str()};
    }
    case 1: {
      const int n = static_cast<int>(rng.next_in(2, 8));
      desc << "flat_switch(" << n << ")";
      return {topo::build_flat_switch(n, jitter(rng, 0.2, 1.0, 100, 400)), desc.str()};
    }
    case 2:
    case 3: {
      topo::MultiRailSpec spec;
      spec.num_servers = static_cast<int>(rng.next_in(2, 3));
      spec.gpus_per_server = static_cast<int>(rng.next_in(2, 4));
      spec.with_spine = rng.next_below(2) == 0;
      spec.nvlink = jitter(rng, 0.2, 1.0, 100, 400);
      spec.nic = jitter(rng, 1.0, 4.0, 12, 50);
      spec.fabric = jitter(rng, 0.5, 2.0, 12, 50);
      desc << "multi_rail(" << spec.num_servers << "x" << spec.gpus_per_server
           << (spec.with_spine ? ",spine" : ",no-spine") << ")";
      return {topo::build_multi_rail(spec), desc.str()};
    }
    case 4: {
      topo::ClosSpec spec;
      spec.num_servers = 2 * static_cast<int>(rng.next_in(1, 2));
      spec.gpus_per_server = static_cast<int>(rng.next_in(2, 4));
      // NICs must divide the GPU count per server.
      spec.nics_per_server =
          spec.gpus_per_server % 2 == 0 ? static_cast<int>(rng.next_in(1, 2)) : 1;
      spec.servers_per_leaf = 2;
      spec.leaves_per_spine = 2;
      spec.nvlink = jitter(rng, 0.2, 1.0, 100, 400);
      spec.nic = jitter(rng, 1.0, 4.0, 12, 50);
      spec.fabric = jitter(rng, 0.5, 2.0, 12, 50);
      desc << "clos(" << spec.num_servers << "x" << spec.gpus_per_server << ",nics="
           << spec.nics_per_server << ")";
      return {topo::build_clos(spec), desc.str()};
    }
    case 5:
      desc << "a100_testbed(16)";
      return {topo::build_a100_testbed(16), desc.str()};
    case 6:
      desc << "h800_cluster(2)";
      return {topo::build_h800_cluster(2), desc.str()};
    default:
      desc << "microbench_cluster";
      return {topo::build_microbench_cluster(), desc.str()};
  }
}

void degrade_random(RandomTopology& t, util::Rng& rng) {
  std::ostringstream desc;
  const auto degrade = [&]() {
    const auto& links = t.topo.links();
    const topo::Link& l = links[rng.next_below(links.size())];
    const double alpha_scale = static_cast<double>(std::uint64_t{1} << rng.next_in(1, 4));
    const double beta_scale = static_cast<double>(std::uint64_t{1} << rng.next_in(1, 4));
    desc << ",degrade(link" << l.id << ",a" << alpha_scale << ",b" << beta_scale << ")";
    t.topo = topo::degrade_duplex(t.topo, l.src, l.dst, alpha_scale, beta_scale).topo;
  };
  if (rng.next_below(2) == 0) {
    // NIC failure, drawn uniformly over NICs that still have links.
    std::vector<topo::NodeId> nics;
    for (const topo::Node& n : t.topo.nodes()) {
      if (n.kind == topo::NodeKind::Nic && !t.topo.out_links(n.id).empty()) nics.push_back(n.id);
    }
    if (!nics.empty()) {
      const topo::NodeId nic = nics[rng.next_below(nics.size())];
      try {
        topo::MutationResult m = topo::fail_nic(t.topo, nic);
        desc << ",failnic(" << t.topo.nodes()[static_cast<std::size_t>(nic)].name << ")";
        t.topo = std::move(m.topo);
        t.desc += desc.str();
        return;
      } catch (const std::runtime_error&) {
        // Failure would disconnect the fabric — degrade instead.
      }
    }
  }
  degrade();
  t.desc += desc.str();
}

coll::Collective random_collective(util::Rng& rng, int num_ranks) {
  const std::uint64_t bytes = std::uint64_t{1} << rng.next_in(10, 22);
  const int root = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(num_ranks)));
  switch (rng.next_below(9)) {
    case 0: {
      int dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(num_ranks)));
      if (dst == root) dst = (dst + 1) % num_ranks;
      return coll::make_sendrecv(num_ranks, root, dst, bytes);
    }
    case 1: return coll::make_broadcast(num_ranks, bytes, root);
    case 2: return coll::make_scatter(num_ranks, bytes, root);
    case 3: return coll::make_gather(num_ranks, bytes, root);
    case 4: return coll::make_reduce(num_ranks, bytes, root);
    case 5: return coll::make_allgather(num_ranks, bytes);
    case 6: return coll::make_alltoall(num_ranks, bytes);
    case 7: return coll::make_reduce_scatter(num_ranks, bytes);
    default: return coll::make_allreduce(num_ranks, bytes);
  }
}

std::vector<std::vector<int>> rank_adjacency(const topo::TopologyGroups& groups) {
  const int n = groups.group_of.empty() ? 0 : static_cast<int>(groups.group_of.front().size());
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u != v && groups.best_common_dim(u, v) >= 0) {
        adj[static_cast<std::size_t>(u)].push_back(v);
      }
    }
  }
  return adj;
}

sim::Schedule random_direct_schedule(const coll::Collective& coll,
                                     const topo::TopologyGroups& groups, util::Rng& rng) {
  const auto adj = rank_adjacency(groups);
  sim::Schedule s;
  s.name = "fuzz-direct-" + std::string(coll::kind_name(coll.kind()));
  std::vector<std::vector<sim::TransferOp>> per_piece;

  if (!coll.reduce()) {
    // One random relay tree per piece; chunks may split into 2–3 pieces
    // routed independently.
    for (std::size_t c = 0; c < coll.chunks().size(); ++c) {
      const auto& chunk = coll.chunks()[c];
      if (chunk.dsts.empty()) continue;
      const int splits = rng.next_double() < 0.3 ? static_cast<int>(rng.next_in(2, 3)) : 1;
      for (int part = 0; part < splits; ++part) {
        const int piece = s.add_piece(sim::Piece{static_cast<int>(c),
                                                 coll.chunk_bytes() / splits, chunk.src, false,
                                                 {}});
        const auto parent = random_spanning_tree(adj, chunk.src, rng);
        const auto depth = tree_depths(parent);
        const auto needed = needed_nodes(parent, chunk.dsts);
        // Parents before children: emit by ascending depth.
        std::vector<int> order;
        for (std::size_t v = 0; v < parent.size(); ++v) {
          if (needed[v] && parent[v] >= 0) order.push_back(static_cast<int>(v));
        }
        std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
          return depth[static_cast<std::size_t>(a)] < depth[static_cast<std::size_t>(b)];
        });
        std::vector<sim::TransferOp> ops;
        for (int v : order) {
          ops.push_back(sim::TransferOp{piece, parent[static_cast<std::size_t>(v)], v, -1, 0});
        }
        per_piece.push_back(std::move(ops));
      }
    }
  } else {
    // One random in-tree per reduced block, deepest-first: every relay
    // receives all inbound partials before forwarding its own.
    s.pieces = sim::pieces_for(coll);
    for (std::size_t pi = 0; pi < s.pieces.size(); ++pi) {
      const sim::Piece& p = s.pieces[pi];
      const int root = p.chunk;  // block index == destination rank
      const auto parent = random_spanning_tree(adj, root, rng);
      const auto depth = tree_depths(parent);
      const auto needed = needed_nodes(parent, p.contributors);
      std::vector<int> order;
      for (std::size_t v = 0; v < parent.size(); ++v) {
        if (needed[v] && parent[v] >= 0) order.push_back(static_cast<int>(v));
      }
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return depth[static_cast<std::size_t>(a)] > depth[static_cast<std::size_t>(b)];
      });
      std::vector<sim::TransferOp> ops;
      for (int v : order) {
        ops.push_back(
            sim::TransferOp{static_cast<int>(pi), v, parent[static_cast<std::size_t>(v)], -1, 0});
      }
      per_piece.push_back(std::move(ops));
    }
  }

  s.ops = interleave(std::move(per_piece), rng);
  return s;
}

void mutate_schedule(sim::Schedule& schedule, const topo::TopologyGroups& groups,
                     util::Rng& rng, int count) {
  for (int m = 0; m < count; ++m) {
    if (schedule.ops.empty()) return;
    switch (rng.next_below(4)) {
      case 0: {
        // Dependency-safe reorder: within each phase, randomly interleave
        // ops while preserving every piece's own order.
        std::map<int, std::map<int, std::vector<sim::TransferOp>>> phased;  // phase -> piece -> ops
        for (const auto& op : schedule.ops) phased[op.phase][op.piece].push_back(op);
        std::vector<sim::TransferOp> out;
        for (auto& [phase, by_piece] : phased) {
          (void)phase;
          std::vector<std::vector<sim::TransferOp>> lists;
          for (auto& [piece, ops] : by_piece) {
            (void)piece;
            lists.push_back(std::move(ops));
          }
          for (auto& op : interleave(std::move(lists), rng)) out.push_back(op);
        }
        schedule.ops = std::move(out);
        break;
      }
      case 1: {
        // Reassign a random op's dimension to any valid alternative.
        auto& op = schedule.ops[rng.next_below(schedule.ops.size())];
        std::vector<int> dims{-1};
        for (int d = 0; d < groups.num_dims(); ++d) {
          const auto& gd = groups.group_of[static_cast<std::size_t>(d)];
          if (gd[static_cast<std::size_t>(op.src)] >= 0 &&
              gd[static_cast<std::size_t>(op.src)] == gd[static_cast<std::size_t>(op.dst)]) {
            dims.push_back(d);
          }
        }
        op.dim = dims[rng.next_below(dims.size())];
        break;
      }
      case 2: {
        // Duplicate a random forward op: a redundant delivery (warning, not
        // error) that must not confuse either simulator.
        std::vector<std::size_t> candidates;
        for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
          if (!schedule.pieces[static_cast<std::size_t>(schedule.ops[i].piece)].reduce) {
            candidates.push_back(i);
          }
        }
        if (candidates.empty()) break;
        const std::size_t i = candidates[rng.next_below(candidates.size())];
        const sim::TransferOp dup = schedule.ops[i];
        schedule.ops.insert(schedule.ops.begin() + static_cast<std::ptrdiff_t>(i) + 1, dup);
        break;
      }
      default: {
        // Introduce a phase barrier at a random split point. Issue order is
        // preserved, so the schedule stays valid; timing changes.
        const std::size_t split = rng.next_below(schedule.ops.size() + 1);
        for (std::size_t i = split; i < schedule.ops.size(); ++i) {
          schedule.ops[i].phase += 1;
        }
        break;
      }
    }
  }
}

}  // namespace syccl::fuzz
