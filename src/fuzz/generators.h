// Reusable random generators for the differential fuzz harness.
//
// Everything is seeded through util::Rng, so any case is replayable from a
// single 64-bit seed (tools/fuzz_schedules --replay, tests/corpus/). Three
// layers:
//
//   * random_topology   — small multi-dimensional clusters via src/topo
//                         builders with jittered link parameters;
//   * random_collective — any §2.1 pattern with random root/size, plus
//                         random chunk splitting at the schedule layer;
//   * random_direct_schedule / mutate_schedule — valid-by-construction
//                         schedules (random relay trees / reduce in-trees on
//                         the rank connectivity graph) and validity-
//                         preserving mutations (dependency-safe reordering,
//                         dim reassignment, redundant deliveries, phase
//                         splits) that stress simulator paths the
//                         synthesizer never emits.
#pragma once

#include <string>
#include <vector>

#include "coll/collective.h"
#include "sim/schedule.h"
#include "topo/groups.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace syccl::fuzz {

struct RandomTopology {
  topo::Topology topo;
  std::string desc;  ///< human-readable shape, for replay logs
};

/// Draws a small topology (2–24 ranks): single server, flat switch,
/// multi-rail (with/without spine) or Clos, with jittered α/bandwidth, plus
/// the paper's fixed testbeds occasionally.
RandomTopology random_topology(util::Rng& rng);

/// Applies a random fault to `t` through topo/mutate.h — the degraded-
/// topology fuzz axis. Either degrades a random duplex pair (α/β scaled
/// ×2–×16, possibly asymmetrically) or fails a random NIC; a failure that
/// would disconnect the fabric falls back to degrading instead, so every
/// draw yields a usable topology. Appends the fault to `t.desc` for replay
/// logs.
void degrade_random(RandomTopology& t, util::Rng& rng);

/// Draws a collective of any §2.1 kind over `num_ranks` ranks with a random
/// root and a random size between 1 KB and 4 MB.
coll::Collective random_collective(util::Rng& rng, int num_ranks);

/// Rank-level connectivity: ranks are adjacent iff they share a group in
/// some dimension (i.e. a direct transfer between them is schedulable).
std::vector<std::vector<int>> rank_adjacency(const topo::TopologyGroups& groups);

/// Builds a random valid schedule for `coll` directly on the connectivity
/// graph: forward collectives route every chunk through a random relay tree
/// (with random chunk splits); reduce collectives build a random in-tree per
/// reduced block, deepest-first so no partial is forwarded before its
/// inbound contributions arrive. Throws if the connectivity graph is
/// disconnected.
sim::Schedule random_direct_schedule(const coll::Collective& coll,
                                     const topo::TopologyGroups& groups, util::Rng& rng);

/// Applies `count` random validity-preserving mutations in place:
/// piece-order-preserving reordering, dim reassignment, redundant forward
/// deliveries, and phase splitting.
void mutate_schedule(sim::Schedule& schedule, const topo::TopologyGroups& groups,
                     util::Rng& rng, int count = 2);

}  // namespace syccl::fuzz
