#include "fuzz/differential.h"

#include <algorithm>
#include <exception>
#include <fstream>
#include <optional>
#include <sstream>

#include "baselines/crafted.h"
#include "baselines/nccl.h"
#include "baselines/teccl.h"
#include "core/synthesizer.h"
#include "fuzz/generators.h"
#include "obs/chrome_trace.h"
#include "obs/timeline.h"
#include "runtime/executor.h"
#include "runtime/validate.h"
#include "sim/oracle.h"
#include "sim/simulator.h"
#include "topo/groups.h"
#include "util/rng.h"

namespace syccl::fuzz {

namespace {

/// Writes the two engines' link timelines as one Chrome trace, production
/// and oracle as separate processes, so Perfetto shows them side by side.
void write_divergence_trace(const std::string& path, const sim::Schedule& schedule,
                            const sim::SimResult& production, const sim::OracleResult& oracle,
                            const topo::Topology& topo) {
  obs::ChromeTraceBuilder builder;
  builder.set_process_name(1, "production simulator");
  obs::add_link_timeline(builder, 1, schedule, production.link_events, &topo);
  builder.set_process_name(2, "oracle");
  obs::add_oracle_timeline(builder, 2, schedule, oracle, &topo);
  std::ofstream file(path, std::ios::binary);
  file << builder.json();
}

/// Checks one schedule against all four oracles; appends failures.
void check_schedule(const sim::Schedule& schedule, const std::string& label,
                    const coll::Collective& coll, const topo::Topology& topo,
                    const topo::TopologyGroups& groups, const sim::SimOptions& sim_opts,
                    const CaseOptions& options, CaseResult& out) {
  out.schedules_checked++;
  const auto fail = [&](const std::string& what) {
    out.failures.push_back("[" + label + "] " + what);
  };

  const auto report = runtime::validate_schedule(schedule, coll, groups);
  if (!report.ok) {
    for (const auto& e : report.errors) fail("validator: " + e);
  }

  const auto exec = runtime::execute_and_verify(schedule, coll);
  if (!exec.ok) {
    for (const auto& e : exec.errors) fail("executor: " + e);
  }

  sim::SimOptions opts = sim_opts;
  opts.record_final_state = true;
  opts.record_link_events = !options.trace_out.empty();
  const sim::Simulator simulator(groups, opts);

  std::optional<sim::SimResult> production;
  std::string production_error;
  try {
    production = simulator.run(schedule);
  } catch (const std::exception& e) {
    production_error = e.what();
  }

  std::optional<sim::OracleResult> oracle;
  std::string oracle_error;
  try {
    oracle = sim::oracle_run(groups, schedule, opts);
  } catch (const std::exception& e) {
    oracle_error = e.what();
  }

  if (production.has_value() != oracle.has_value()) {
    fail("verdict mismatch: production " +
         (production ? std::string("accepted") : "rejected (" + production_error + ")") +
         ", oracle " + (oracle ? std::string("accepted") : "rejected (" + oracle_error + ")"));
    return;
  }
  if (!production) {
    // Both rejected: a valid-by-construction schedule must not be rejected.
    fail("both simulators rejected a generated schedule: " + production_error);
    return;
  }
  out.sim_events += production->num_events;
  const auto diffs = sim::diff_against_oracle(*production, *oracle, options.rel_tol);
  for (const auto& d : diffs) fail("divergence: " + d);
  if (!diffs.empty() && !options.trace_out.empty() && !out.trace_written) {
    write_divergence_trace(options.trace_out, schedule, *production, *oracle, topo);
    out.trace_written = true;
  }
}

}  // namespace

CaseResult run_differential_case(std::uint64_t seed, const CaseOptions& options) {
  util::Rng rng(seed);
  CaseResult out;
  out.seed = seed;

  RandomTopology rt = random_topology(rng);
  if (options.degrade_topology) degrade_random(rt, rng);
  const topo::TopologyGroups groups = topo::extract_groups(rt.topo);
  const int num_ranks = static_cast<int>(rt.topo.num_gpus());
  const coll::Collective coll = random_collective(rng, num_ranks);

  sim::SimOptions sim_opts;
  sim_opts.block_bytes = static_cast<double>(std::uint64_t{1} << rng.next_in(14, 20));
  sim_opts.max_blocks = static_cast<int>(rng.next_in(1, 8));

  {
    std::ostringstream desc;
    desc << rt.desc << " / " << coll.describe() << " / block_bytes=" << sim_opts.block_bytes
         << " max_blocks=" << sim_opts.max_blocks;
    out.desc = desc.str();
  }

  // 1. Random direct schedule + mutants.
  const sim::Schedule direct = random_direct_schedule(coll, groups, rng);
  check_schedule(direct, "direct", coll, rt.topo, groups, sim_opts, options, out);
  for (int m = 0; m < options.mutants; ++m) {
    sim::Schedule mutant = direct;
    mutate_schedule(mutant, groups, rng, 1 + static_cast<int>(rng.next_below(3)));
    check_schedule(mutant, "mutant#" + std::to_string(m), coll, rt.topo, groups, sim_opts, options, out);
  }

  // 2. Baselines, where the kind/topology is supported.
  // The NCCL ring and crafted baselines assume every rank pair can talk
  // directly; they are genuinely unrunnable on partially connected
  // topologies (e.g. multi-rail without a spine), so gate them.
  const auto adj = rank_adjacency(groups);
  const bool fully_connected =
      std::all_of(adj.begin(), adj.end(), [&](const std::vector<int>& nbrs) {
        return static_cast<int>(nbrs.size()) == num_ranks - 1;
      });

  if (options.with_baselines) {
    if (fully_connected) {
      try {
        const sim::Schedule nccl = baselines::nccl_schedule(coll, groups);
        check_schedule(nccl, "nccl", coll, rt.topo, groups, sim_opts, options, out);
      } catch (const std::invalid_argument&) {
        // Kind not covered by the NCCL baseline; skip.
      }
    }
    try {
      baselines::TecclOptions teccl_opts;
      teccl_opts.time_budget_s = 0.05;
      teccl_opts.seed = seed;
      const auto teccl = baselines::teccl_synthesize(coll, groups, teccl_opts);
      if (!teccl.timed_out) {
        check_schedule(teccl.schedule, "teccl", coll, rt.topo, groups, sim_opts, options, out);
      }
    } catch (const std::invalid_argument&) {
      // Kind not covered by the TECCL baseline; skip.
    }
    if (coll.kind() == coll::CollKind::AllGather && fully_connected) {
      try {
        for (const auto& crafted : baselines::crafted_allgather_suite(coll, groups, true)) {
          check_schedule(crafted, "crafted:" + crafted.name, coll, rt.topo, groups, sim_opts, options,
                         out);
        }
      } catch (const std::invalid_argument&) {
        // Crafted schedules need specific topology shapes; skip.
      }
    }
  }

  // 3. The full synthesizer.
  if (options.with_synthesizer) {
    core::SynthesisConfig cfg;
    cfg.sketch.max_prototypes = 3;
    cfg.sketch.combine.max_outputs = 6;
    cfg.coarse_solver.time_limit_s = 0.05;
    cfg.fine_solver.time_limit_s = 0.1;
    cfg.num_threads = 2;
    // Seed-parity toggle so the `--synth-every` sweep exercises both the
    // flow-bounded and the plain branch-and-bound solver paths.
    cfg.coarse_solver.use_flow_bounds = seed % 2 == 0;
    cfg.fine_solver.use_flow_bounds = seed % 2 == 0;
    core::Synthesizer synth(rt.topo, cfg);
    try {
      const auto result = synth.synthesize(coll);
      check_schedule(result.schedule, "synthesizer", coll, rt.topo, groups, sim_opts, options, out);
    } catch (const std::exception&) {
      // Under the deliberately tiny fuzz time budget the synthesizer can
      // fail to produce any valid candidate. That is a synthesis-coverage
      // matter, not a simulator/validator divergence — skip, don't fail.
    }
  }

  return out;
}

}  // namespace syccl::fuzz
