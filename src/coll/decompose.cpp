#include "coll/decompose.h"

#include <stdexcept>

namespace syccl::coll {

bool is_all_to_all(CollKind kind) {
  return kind == CollKind::AllGather || kind == CollKind::AllToAll ||
         kind == CollKind::ReduceScatter || kind == CollKind::AllReduce;
}

bool is_all_to_one(CollKind kind) {
  return kind == CollKind::Gather || kind == CollKind::Reduce;
}

namespace {

CollKind rooted_kind_for(CollKind kind) {
  switch (kind) {
    case CollKind::AllGather: return CollKind::Broadcast;
    case CollKind::AllToAll: return CollKind::Scatter;
    case CollKind::ReduceScatter: return CollKind::Reduce;
    default:
      throw std::invalid_argument("collective is not decomposable into rooted collectives");
  }
}

}  // namespace

Collective prototype_rooted(const Collective& coll, int root) {
  const CollKind rk = rooted_kind_for(coll.kind());
  const int n = coll.num_ranks();
  // The prototype keeps the per-chunk size of the parent: a Broadcast piece
  // of an AllGather carries total/n bytes, i.e. a rooted total of total/n.
  const auto rooted_total =
      static_cast<std::uint64_t>(coll.chunk_bytes() * (rk == CollKind::Broadcast ? 1 : n));
  switch (rk) {
    case CollKind::Broadcast: return make_broadcast(n, rooted_total, root);
    case CollKind::Scatter: return make_scatter(n, rooted_total, root);
    case CollKind::Reduce: {
      // The Reduce rooted at `root` in a ReduceScatter gathers one chunk
      // from every other rank; chunk size must match the parent's.
      return make_reduce(n, rooted_total, root);
    }
    default: break;
  }
  throw std::logic_error("unreachable");
}

std::vector<Collective> decompose(const Collective& coll) {
  if (coll.kind() == CollKind::AllReduce) {
    throw std::invalid_argument(
        "AllReduce decomposes into phases, not rooted collectives; use allreduce_phases");
  }
  const int n = coll.num_ranks();
  std::vector<Collective> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) out.push_back(prototype_rooted(coll, r));
  return out;
}

CollKind inverse_kind(CollKind kind) {
  switch (kind) {
    case CollKind::Broadcast: return CollKind::Reduce;
    case CollKind::Reduce: return CollKind::Broadcast;
    case CollKind::Scatter: return CollKind::Gather;
    case CollKind::Gather: return CollKind::Scatter;
    default: throw std::invalid_argument("collective has no rooted inverse");
  }
}

std::pair<Collective, Collective> allreduce_phases(const Collective& coll) {
  if (coll.kind() != CollKind::AllReduce) {
    throw std::invalid_argument("allreduce_phases requires an AllReduce collective");
  }
  return {make_reduce_scatter(coll.num_ranks(), coll.total_bytes()),
          make_allgather(coll.num_ranks(), coll.total_bytes())};
}

}  // namespace syccl::coll
