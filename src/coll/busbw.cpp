#include "coll/busbw.h"

#include <stdexcept>

namespace syccl::coll {

double busbw_factor(CollKind kind, int num_ranks) {
  const double n = static_cast<double>(num_ranks);
  switch (kind) {
    case CollKind::AllGather:
    case CollKind::ReduceScatter:
    case CollKind::AllToAll:
      return (n - 1.0) / n;
    case CollKind::AllReduce:
      return 2.0 * (n - 1.0) / n;
    case CollKind::SendRecv:
    case CollKind::Broadcast:
    case CollKind::Scatter:
    case CollKind::Gather:
    case CollKind::Reduce:
      return 1.0;
  }
  throw std::invalid_argument("unknown collective kind");
}

double algbw(std::uint64_t total_bytes, double seconds) {
  if (seconds <= 0.0) throw std::invalid_argument("non-positive completion time");
  return static_cast<double>(total_bytes) / seconds;
}

double busbw(const Collective& coll, double seconds) {
  return algbw(coll.total_bytes(), seconds) * busbw_factor(coll.kind(), coll.num_ranks());
}

double busbw_GBps(const Collective& coll, double seconds) {
  return busbw(coll, seconds) / 1e9;
}

}  // namespace syccl::coll
