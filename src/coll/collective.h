// Collective communication model (paper §2.1, Table 1).
//
// A collective involves ranks 0..n-1 (indices into Topology::gpus()) and a
// set of equally sized chunks C. F_s maps each chunk to the rank it starts
// on; F_d maps each chunk to the set of ranks that demand it; r says whether
// chunks are reduced at the destination.
//
// Size convention: `total_bytes` is the nccl-tests "size" column — the full
// collective payload (e.g. the AllGather receive buffer across all ranks).
// chunk_bytes() derives the per-chunk size from it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace syccl::coll {

enum class CollKind {
  SendRecv,
  Broadcast,
  Scatter,
  Gather,
  Reduce,
  AllGather,
  AllToAll,
  ReduceScatter,
  AllReduce,
};

/// Human-readable name ("AllGather", ...).
const char* kind_name(CollKind kind);

struct Chunk {
  int src = 0;                ///< F_s: initial rank
  std::vector<int> dsts;      ///< F_d: demanding ranks (never contains src)
};

class Collective {
 public:
  /// `chunk_bytes` is the uniform size s of every chunk (Table 1); factories
  /// derive it from `total_bytes` per nccl-tests semantics (e.g. D/n for
  /// AllGather/ReduceScatter/AllToAll, D for Broadcast).
  Collective(CollKind kind, int num_ranks, std::uint64_t total_bytes, double chunk_bytes,
             bool reduce, std::vector<Chunk> chunks);

  CollKind kind() const { return kind_; }
  int num_ranks() const { return num_ranks_; }
  bool reduce() const { return reduce_; }
  std::uint64_t total_bytes() const { return total_bytes_; }

  const std::vector<Chunk>& chunks() const { return chunks_; }
  int num_chunks() const { return static_cast<int>(chunks_.size()); }

  /// Uniform chunk size s (Table 1). At least 1 byte.
  double chunk_bytes() const { return chunk_bytes_; }

  /// Validates structural invariants (ranks in range, no src in dsts, no
  /// duplicate dsts); throws std::invalid_argument on violation.
  void validate() const;

  std::string describe() const;

 private:
  CollKind kind_;
  int num_ranks_;
  std::uint64_t total_bytes_;
  double chunk_bytes_;
  bool reduce_;
  std::vector<Chunk> chunks_;
};

/// Factories — one per pattern of §2.1. `total_bytes` follows the size
/// convention above. `root` defaults to rank 0 for rooted collectives.
Collective make_sendrecv(int num_ranks, int src, int dst, std::uint64_t total_bytes);
Collective make_broadcast(int num_ranks, std::uint64_t total_bytes, int root = 0);
Collective make_scatter(int num_ranks, std::uint64_t total_bytes, int root = 0);
Collective make_gather(int num_ranks, std::uint64_t total_bytes, int root = 0);
Collective make_reduce(int num_ranks, std::uint64_t total_bytes, int root = 0);
Collective make_allgather(int num_ranks, std::uint64_t total_bytes);
Collective make_alltoall(int num_ranks, std::uint64_t total_bytes);
Collective make_reduce_scatter(int num_ranks, std::uint64_t total_bytes);
/// AllReduce is synthesised as ReduceScatter + AllGather (§4.3); this factory
/// exists for demand description and busbw accounting.
Collective make_allreduce(int num_ranks, std::uint64_t total_bytes);

}  // namespace syccl::coll
