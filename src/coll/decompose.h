// All-to-all decomposition into isomorphic one-to-all / all-to-one
// collectives (paper §4.3): AllGather → Broadcasts, AllToAll → Scatters,
// ReduceScatter → Reduces; AllReduce → ReduceScatter then AllGather.
#pragma once

#include <vector>

#include "coll/collective.h"

namespace syccl::coll {

/// True when `kind` is all-to-all (decomposable into N rooted collectives).
bool is_all_to_all(CollKind kind);

/// True when `kind` is all-to-one (Gather/Reduce): synthesised as the inverse
/// of the corresponding one-to-all collective (§4.1).
bool is_all_to_one(CollKind kind);

/// The rooted *prototype* collective of an all-to-all collective: the
/// decomposed collective rooted at `root` (default rank 0). The sketch engine
/// searches sketches for the prototype and replicates them to all roots.
/// Throws for non-decomposable kinds.
Collective prototype_rooted(const Collective& coll, int root = 0);

/// Full decomposition: one rooted collective per rank (§4.3). Chunk ids in
/// the originals correspond positionally: decomposed[r] owns the chunks of
/// `coll` whose src is r.
std::vector<Collective> decompose(const Collective& coll);

/// The inverse collective of a rooted one (Broadcast ↔ Reduce,
/// Scatter ↔ Gather): same tree structure with all edges reversed.
CollKind inverse_kind(CollKind kind);

/// For AllReduce: the (ReduceScatter, AllGather) pair whose concatenation
/// realises it (§4.3). Each phase carries the full total_bytes.
std::pair<Collective, Collective> allreduce_phases(const Collective& coll);

}  // namespace syccl::coll
