#include "coll/collective.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace syccl::coll {

const char* kind_name(CollKind kind) {
  switch (kind) {
    case CollKind::SendRecv: return "SendRecv";
    case CollKind::Broadcast: return "Broadcast";
    case CollKind::Scatter: return "Scatter";
    case CollKind::Gather: return "Gather";
    case CollKind::Reduce: return "Reduce";
    case CollKind::AllGather: return "AllGather";
    case CollKind::AllToAll: return "AllToAll";
    case CollKind::ReduceScatter: return "ReduceScatter";
    case CollKind::AllReduce: return "AllReduce";
  }
  return "Unknown";
}

Collective::Collective(CollKind kind, int num_ranks, std::uint64_t total_bytes,
                       double chunk_bytes, bool reduce, std::vector<Chunk> chunks)
    : kind_(kind),
      num_ranks_(num_ranks),
      total_bytes_(total_bytes),
      chunk_bytes_(std::max(1.0, chunk_bytes)),
      reduce_(reduce),
      chunks_(std::move(chunks)) {
  validate();
}

void Collective::validate() const {
  if (num_ranks_ < 1) throw std::invalid_argument("collective needs >= 1 rank");
  for (const Chunk& c : chunks_) {
    if (c.src < 0 || c.src >= num_ranks_) throw std::invalid_argument("chunk src out of range");
    std::set<int> seen;
    for (int d : c.dsts) {
      if (d < 0 || d >= num_ranks_) throw std::invalid_argument("chunk dst out of range");
      if (d == c.src) throw std::invalid_argument("chunk dst equals src");
      if (!seen.insert(d).second) throw std::invalid_argument("duplicate chunk dst");
    }
  }
}

std::string Collective::describe() const {
  std::ostringstream os;
  os << kind_name(kind_) << "(" << num_ranks_ << " ranks, " << chunks_.size() << " chunks, "
     << total_bytes_ << " B" << (reduce_ ? ", reduce" : "") << ")";
  return os.str();
}

namespace {

std::vector<int> all_except(int num_ranks, int excluded) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(num_ranks) - 1);
  for (int r = 0; r < num_ranks; ++r) {
    if (r != excluded) out.push_back(r);
  }
  return out;
}

void check_root(int num_ranks, int root) {
  if (root < 0 || root >= num_ranks) throw std::invalid_argument("root out of range");
}

}  // namespace

Collective make_sendrecv(int num_ranks, int src, int dst, std::uint64_t total_bytes) {
  check_root(num_ranks, src);
  check_root(num_ranks, dst);
  if (src == dst) throw std::invalid_argument("sendrecv src == dst");
  return Collective(CollKind::SendRecv, num_ranks, total_bytes,
                    static_cast<double>(total_bytes), false, {Chunk{src, {dst}}});
}

Collective make_broadcast(int num_ranks, std::uint64_t total_bytes, int root) {
  check_root(num_ranks, root);
  return Collective(CollKind::Broadcast, num_ranks, total_bytes,
                    static_cast<double>(total_bytes), false,
                    {Chunk{root, all_except(num_ranks, root)}});
}

Collective make_scatter(int num_ranks, std::uint64_t total_bytes, int root) {
  check_root(num_ranks, root);
  std::vector<Chunk> chunks;
  for (int r = 0; r < num_ranks; ++r) {
    if (r == root) continue;
    chunks.push_back(Chunk{root, {r}});
  }
  return Collective(CollKind::Scatter, num_ranks, total_bytes, static_cast<double>(total_bytes) / num_ranks, false,
                    std::move(chunks));
}

Collective make_gather(int num_ranks, std::uint64_t total_bytes, int root) {
  check_root(num_ranks, root);
  std::vector<Chunk> chunks;
  for (int r = 0; r < num_ranks; ++r) {
    if (r == root) continue;
    chunks.push_back(Chunk{r, {root}});
  }
  return Collective(CollKind::Gather, num_ranks, total_bytes, static_cast<double>(total_bytes) / num_ranks, false,
                    std::move(chunks));
}

Collective make_reduce(int num_ranks, std::uint64_t total_bytes, int root) {
  check_root(num_ranks, root);
  std::vector<Chunk> chunks;
  for (int r = 0; r < num_ranks; ++r) {
    if (r == root) continue;
    chunks.push_back(Chunk{r, {root}});
  }
  return Collective(CollKind::Reduce, num_ranks, total_bytes, static_cast<double>(total_bytes) / num_ranks, true,
                    std::move(chunks));
}

Collective make_allgather(int num_ranks, std::uint64_t total_bytes) {
  std::vector<Chunk> chunks;
  for (int r = 0; r < num_ranks; ++r) {
    chunks.push_back(Chunk{r, all_except(num_ranks, r)});
  }
  return Collective(CollKind::AllGather, num_ranks, total_bytes, static_cast<double>(total_bytes) / num_ranks, false,
                    std::move(chunks));
}

Collective make_alltoall(int num_ranks, std::uint64_t total_bytes) {
  std::vector<Chunk> chunks;
  for (int s = 0; s < num_ranks; ++s) {
    for (int d = 0; d < num_ranks; ++d) {
      if (s == d) continue;
      chunks.push_back(Chunk{s, {d}});
    }
  }
  return Collective(CollKind::AllToAll, num_ranks, total_bytes, static_cast<double>(total_bytes) / num_ranks, false,
                    std::move(chunks));
}

Collective make_reduce_scatter(int num_ranks, std::uint64_t total_bytes) {
  // Chunk (s, d): rank s's contribution to the block reduced at rank d.
  std::vector<Chunk> chunks;
  for (int d = 0; d < num_ranks; ++d) {
    for (int s = 0; s < num_ranks; ++s) {
      if (s == d) continue;
      chunks.push_back(Chunk{s, {d}});
    }
  }
  return Collective(CollKind::ReduceScatter, num_ranks, total_bytes, static_cast<double>(total_bytes) / num_ranks, true,
                    std::move(chunks));
}

Collective make_allreduce(int num_ranks, std::uint64_t total_bytes) {
  // Demand description only: every rank needs every rank's contribution,
  // reduced. Synthesis always goes through ReduceScatter + AllGather.
  std::vector<Chunk> chunks;
  for (int r = 0; r < num_ranks; ++r) {
    chunks.push_back(Chunk{r, all_except(num_ranks, r)});
  }
  return Collective(CollKind::AllReduce, num_ranks, total_bytes, static_cast<double>(total_bytes) / num_ranks, true,
                    std::move(chunks));
}

}  // namespace syccl::coll
