// Bus bandwidth metric (paper §7.1), following nccl-tests PERFORMANCE.md:
// algbw = size / time; busbw = algbw × collective-specific factor that
// normalises to the per-link hardware bandwidth.
#pragma once

#include <cstdint>

#include "coll/collective.h"

namespace syccl::coll {

/// The busbw correction factor for `kind` with `num_ranks` participants:
/// AllGather/ReduceScatter/AllToAll → (n−1)/n, AllReduce → 2(n−1)/n,
/// rooted collectives → 1.
double busbw_factor(CollKind kind, int num_ranks);

/// algbw in bytes/second for a collective of `total_bytes` finishing in
/// `seconds`.
double algbw(std::uint64_t total_bytes, double seconds);

/// busbw in bytes/second.
double busbw(const Collective& coll, double seconds);

/// busbw in GB/s (decimal GB, as plotted in the paper figures).
double busbw_GBps(const Collective& coll, double seconds);

}  // namespace syccl::coll
