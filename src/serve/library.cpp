#include "serve/library.h"

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <system_error>
#include <vector>

#include "serve/canonical.h"

namespace fs = std::filesystem;

namespace syccl::serve {

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void write_file_atomic(const fs::path& path, const std::string& data) {
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) throw std::runtime_error("cannot write " + tmp.string());
  }
  fs::rename(tmp, path);
}

void append_index(const fs::path& dir, const std::string& line) {
  std::ofstream out(dir / "index.txt", std::ios::app);
  out << line << '\n';
}

}  // namespace

DiskLibrary::DiskLibrary(DiskLibraryConfig config) : config_(std::move(config)) {
  const fs::path dir(config_.dir);
  fs::create_directories(dir);

  // Replay the index: later lines win, an evict line drops the key. Entry
  // files referenced by the surviving set are decoded eagerly so corruption
  // is discovered (and quarantined) at open, not mid-request.
  std::map<std::string, std::string> live;  // key hex -> file name
  {
    std::ifstream in(dir / "index.txt");
    std::string verb, hex, file;
    while (in >> verb >> hex) {
      if (verb == "entry" && (in >> file)) {
        live[hex] = file;
      } else if (verb == "evict") {
        live.erase(hex);
      } else {
        in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
      }
    }
  }

  for (const auto& [hex, file] : live) {
    const fs::path entry_path = dir / file;
    try {
      std::string encoded = read_file(entry_path);
      ScheduleBlob blob = decode_blob(encoded);  // validates magic + checksum
      if (fnv1a_hex(blob.scenario_key) != hex) {
        throw CodecError("entry file key does not match index");
      }
      bytes_ += encoded.size();
      entries_[blob.scenario_key] = Entry{std::move(encoded), ++tick_};
    } catch (const std::exception&) {
      // Move the evidence aside and carry on; the scenario re-synthesizes on
      // its next request.
      std::error_code ec;
      fs::create_directories(dir / "quarantine", ec);
      fs::rename(entry_path, dir / "quarantine" / file, ec);
      ++quarantined_;
    }
  }

  // Compact: rewrite the index to the entries that actually survived, so
  // replay cost and evict-line buildup reset on every open.
  {
    std::ostringstream compacted;
    for (const auto& [key, entry] : entries_) {
      const std::string hex = fnv1a_hex(key);
      compacted << "entry " << hex << ' ' << hex << ".sched\n";
    }
    write_file_atomic(dir / "index.txt", compacted.str());
  }

  std::lock_guard<std::mutex> lock(mutex_);
  evict_locked();
}

std::optional<ScheduleBlob> DiskLibrary::get(const std::string& scenario_key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(scenario_key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  it->second.last_used = ++tick_;
  ScheduleBlob blob = decode_blob(it->second.encoded);
  if (blob.scenario_key != scenario_key) {
    // Defensive: entries_ is keyed by the decoded key, so this cannot
    // happen unless memory was corrupted under us.
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return blob;
}

void DiskLibrary::put(const ScheduleBlob& blob) {
  std::string encoded = encode_blob(blob);
  const fs::path dir(config_.dir);
  const std::string file = file_for(blob.scenario_key);

  std::lock_guard<std::mutex> lock(mutex_);
  write_file_atomic(dir / file, encoded);
  auto it = entries_.find(blob.scenario_key);
  if (it != entries_.end()) {
    bytes_ -= it->second.encoded.size();
    bytes_ += encoded.size();
    it->second = Entry{std::move(encoded), ++tick_};
  } else {
    bytes_ += encoded.size();
    entries_[blob.scenario_key] = Entry{std::move(encoded), ++tick_};
    append_index(dir, "entry " + fnv1a_hex(blob.scenario_key) + ' ' + file);
  }
  evict_locked();
}

DiskLibrary::Stats DiskLibrary::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.quarantined = quarantined_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  return s;
}

void DiskLibrary::evict_locked() {
  const fs::path dir(config_.dir);
  while (bytes_ > config_.max_bytes && !entries_.empty()) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    const std::string hex = fnv1a_hex(victim->first);
    std::error_code ec;
    fs::remove(dir / (hex + ".sched"), ec);
    append_index(dir, "evict " + hex);
    bytes_ -= victim->second.encoded.size();
    entries_.erase(victim);
    ++evictions_;
  }
}

std::string DiskLibrary::file_for(const std::string& scenario_key) const {
  return fnv1a_hex(scenario_key) + ".sched";
}

}  // namespace syccl::serve
