#include "serve/library.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <system_error>
#include <vector>

#include "serve/canonical.h"
#include "util/failpoint.h"

namespace fs = std::filesystem;

namespace syccl::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// write(2) loop with EINTR retry, failpoint-instrumented: `fp_name` in
/// torn:<N> mode persists N bytes then throws; crash:<N> persists N bytes,
/// fsyncs them (a real crash would leave what the kernel already had — we
/// force the torn prefix to disk so recovery faces the worst case), then
/// _exit()s; eintr:<K> storms the retry loop.
void write_fd_all(int fd, std::string_view data, const char* fp_name) {
  std::size_t limit = data.size();
  enum class After { None, Throw, Crash } after = After::None;
  std::size_t written = 0;
  for (;;) {
    if (const auto fp = util::failpoint(fp_name)) {  // Error mode throws here
      if (fp->mode == util::FailpointMode::Eintr) {
        errno = EINTR;  // simulated interrupted syscall; the loop must retry
        continue;
      }
      if (fp->mode == util::FailpointMode::TornWrite) {
        limit = std::min<std::size_t>(limit, fp->bytes);
        after = After::Throw;
      } else if (fp->mode == util::FailpointMode::Crash) {
        limit = std::min<std::size_t>(limit, fp->bytes);
        after = After::Crash;
      }
    }
    if (written >= limit) break;
    const ssize_t n = ::write(fd, data.data() + written, limit - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write failed");
    }
    written += static_cast<std::size_t>(n);
  }
  if (after == After::Crash) {
    ::fsync(fd);
    util::failpoint_crash();
  }
  if (after == After::Throw) {
    throw std::runtime_error(std::string("failpoint '") + fp_name + "' tore the write after " +
                             std::to_string(written) + " bytes");
  }
}

void fsync_fd(int fd, const char* what) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) throw_errno(std::string("fsync failed (") + what + ")");
}

/// fsync of the directory containing `path`: what makes a rename into that
/// directory durable rather than merely ordered.
void fsync_parent_dir(const fs::path& path) {
  util::failpoint("serve.library.dir_fsync");
  const int fd = ::open(path.parent_path().c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) throw_errno("cannot open dir for fsync");
  try {
    fsync_fd(fd, "directory");
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

/// Durable atomic file replacement: tmp → write → fsync → rename → dir
/// fsync. A crash at any point leaves either the old file or the new file
/// (plus at worst a stale .tmp that the next open sweeps away).
void write_file_durable(const fs::path& path, std::string_view data, const char* fp_write,
                        const char* fp_rename) {
  const fs::path tmp = path.string() + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("cannot create " + tmp.string());
  try {
    write_fd_all(fd, data, fp_write);
    fsync_fd(fd, tmp.c_str());
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  util::failpoint(fp_rename);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    throw_errno("cannot rename " + tmp.string());
  }
  fsync_parent_dir(path);
}

bool is_hex16(const std::string& s) {
  if (s.size() != 16) return false;
  for (char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Replays one index file into `live` (hex -> file). Later lines win; evict
/// drops. Torn or garbage lines — a crash mid-append, bit rot, hand edits —
/// are skipped: the entry files are the source of truth and orphan adoption
/// recovers anything a lost line dropped.
void replay_index(const fs::path& path, std::map<std::string, std::string>& live) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string verb, hex, file, extra;
    if (!(ls >> verb >> hex)) continue;
    if (verb == "entry") {
      if (!(ls >> file) || (ls >> extra) || !is_hex16(hex) || file != hex + ".sched") continue;
      live[hex] = file;
    } else if (verb == "evict") {
      if ((ls >> extra) || !is_hex16(hex)) continue;
      live.erase(hex);
    }
    // anything else: skip
  }
}

}  // namespace

DiskLibrary::DiskLibrary(DiskLibraryConfig config) : config_(std::move(config)) {
  const fs::path dir(config_.dir);
  fs::create_directories(dir);

  // Recover the index: snapshot first, then the legacy v1 append-only
  // index.txt (only present before the first v2 snapshot), then the journal.
  std::map<std::string, std::string> live;  // key hex -> file name
  replay_index(dir / "index.snapshot", live);
  replay_index(dir / "index.txt", live);
  replay_index(dir / "index.journal", live);

  // Load every referenced entry eagerly so corruption is discovered (and
  // quarantined) at open, not mid-request. References whose file vanished
  // (crash between journal append and entry rename never happens — the
  // entry file is renamed first — but an evicted-then-crashed journal can
  // leave one) are dropped.
  std::set<std::string> accounted;
  for (const auto& [hex, file] : live) {
    accounted.insert(file);
    const fs::path entry_path = dir / file;
    std::error_code ec;
    if (!fs::exists(entry_path, ec)) continue;
    try {
      std::string encoded = read_file(entry_path);
      ScheduleBlob blob = decode_blob(encoded);  // validates magic + checksum
      if (fnv1a_hex(blob.scenario_key) != hex) {
        throw CodecError("entry file key does not match index");
      }
      bytes_ += encoded.size();
      entries_[blob.scenario_key] = Entry{std::move(encoded), ++tick_, blob.degraded};
    } catch (const std::exception&) {
      quarantine_file(file);
    }
  }

  // Orphan adoption + stale-tmp sweep: a decodable .sched file the index
  // never heard of is an acknowledged put() whose journal line was lost to
  // a crash — adopt it. Undecodable strays quarantine; .tmp leftovers from
  // interrupted atomic writes are deleted.
  for (const auto& dirent : fs::directory_iterator(dir)) {
    if (!dirent.is_regular_file()) continue;
    const std::string name = dirent.path().filename().string();
    if (ends_with(name, ".tmp")) {
      std::error_code ec;
      fs::remove(dirent.path(), ec);
      continue;
    }
    if (!ends_with(name, ".sched") || accounted.count(name) > 0) continue;
    try {
      std::string encoded = read_file(dirent.path());
      ScheduleBlob blob = decode_blob(encoded);
      if (name != fnv1a_hex(blob.scenario_key) + ".sched") {
        throw CodecError("orphan file name does not match its key");
      }
      if (entries_.count(blob.scenario_key) > 0) continue;  // FNV alias of a live entry
      bytes_ += encoded.size();
      entries_[blob.scenario_key] = Entry{std::move(encoded), ++tick_, blob.degraded};
      ++orphans_adopted_;
    } catch (const std::exception&) {
      quarantine_file(name);
    }
  }

  journal_fd_ = ::open((dir / "index.journal").c_str(),
                       O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);

  std::lock_guard<std::mutex> lock(mutex_);
  try {
    compact_locked();  // fresh snapshot; resets replay cost and evict buildup
  } catch (const std::exception&) {
    ++journal_failures_;  // degraded durability; the library still serves
  }
  evict_locked();
}

DiskLibrary::~DiskLibrary() {
  if (journal_fd_ >= 0) ::close(journal_fd_);
}

std::optional<ScheduleBlob> DiskLibrary::get(const std::string& scenario_key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(scenario_key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  it->second.last_used = ++tick_;
  ScheduleBlob blob;
  try {
    blob = decode_blob(it->second.encoded);
  } catch (const std::exception&) {
    // In-memory bytes that stopped decoding (memory corruption — or the
    // serve.codec.decode failpoint): drop the entry, keep the evidence,
    // report a miss so the request falls back to synthesis.
    const std::string file = file_for(scenario_key);
    bytes_ -= it->second.encoded.size();
    entries_.erase(it);
    quarantine_file(file);
    journal_locked("evict " + fnv1a_hex(scenario_key));
    ++misses_;
    return std::nullopt;
  }
  if (blob.scenario_key != scenario_key) {
    // FNV filename collision: a different key hashed to this slot. A miss,
    // never a mis-serve.
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return blob;
}

DiskLibrary::PutResult DiskLibrary::put(const ScheduleBlob& blob) {
  std::string encoded = encode_blob(blob);
  const fs::path dir(config_.dir);
  const std::string file = file_for(blob.scenario_key);

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(blob.scenario_key);
  if (it != entries_.end() && blob.degraded && !it->second.degraded) {
    // Never replace a full-budget schedule with a deadline fallback: the
    // background upgrade must stick even when a racing fallback lands late.
    ++rejected_downgrades_;
    return PutResult::RejectedDowngrade;
  }

  // Entry file first — once this returns, the blob survives any crash (the
  // index may lose its line, but open() adopts orphans).
  write_file_durable(dir / file, encoded, "serve.library.entry_write",
                     "serve.library.entry_rename");

  PutResult result;
  if (it != entries_.end()) {
    result = (!blob.degraded && it->second.degraded) ? PutResult::Upgraded : PutResult::Replaced;
    bytes_ -= it->second.encoded.size();
    bytes_ += encoded.size();
    it->second = Entry{std::move(encoded), ++tick_, blob.degraded};
    // Same file name: the index already maps this key; no journal traffic.
  } else {
    result = PutResult::Inserted;
    bytes_ += encoded.size();
    entries_[blob.scenario_key] = Entry{std::move(encoded), ++tick_, blob.degraded};
    journal_locked("entry " + fnv1a_hex(blob.scenario_key) + ' ' + file);
  }
  evict_locked();
  return result;
}

bool DiskLibrary::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  try {
    compact_locked();
    return true;
  } catch (const std::exception&) {
    ++journal_failures_;
    return false;
  }
}

DiskLibrary::Stats DiskLibrary::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.quarantined = quarantined_;
  s.orphans_adopted = orphans_adopted_;
  s.journal_failures = journal_failures_;
  s.rejected_downgrades = rejected_downgrades_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  return s;
}

void DiskLibrary::evict_locked() {
  const fs::path dir(config_.dir);
  while (bytes_ > config_.max_bytes && !entries_.empty()) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    const std::string hex = fnv1a_hex(victim->first);
    std::error_code ec;
    fs::remove(dir / (hex + ".sched"), ec);
    journal_locked("evict " + hex);
    bytes_ -= victim->second.encoded.size();
    entries_.erase(victim);
    ++evictions_;
  }
  if (journal_lines_ >= config_.compact_every) {
    try {
      compact_locked();
    } catch (const std::exception&) {
      ++journal_failures_;
      journal_lines_ = 0;  // don't retry on every call; the next open compacts
    }
  }
}

void DiskLibrary::compact_locked() {
  const fs::path dir(config_.dir);
  std::ostringstream snapshot;
  for (const auto& [key, entry] : entries_) {
    const std::string hex = fnv1a_hex(key);
    snapshot << "entry " << hex << ' ' << hex << ".sched\n";
  }
  // Snapshot must land durably *before* the journal is truncated: a crash
  // between the two replays stale journal lines on top of the new snapshot,
  // which is idempotent (same mappings, evictions of absent keys).
  write_file_durable(dir / "index.snapshot", snapshot.str(), "serve.library.snapshot_write",
                     "serve.library.snapshot_rename");
  if (journal_fd_ >= 0) {
    if (::ftruncate(journal_fd_, 0) == 0) {
      fsync_fd(journal_fd_, "journal truncate");
    }
  }
  journal_lines_ = 0;
  journal_dirty_tail_ = false;
  std::error_code ec;
  fs::remove(dir / "index.txt", ec);  // legacy index is folded into the snapshot
}

void DiskLibrary::journal_locked(const std::string& line) {
  if (journal_fd_ < 0) {
    ++journal_failures_;
    return;
  }
  try {
    std::string data;
    if (journal_dirty_tail_) data += '\n';  // seal a torn tail; replay skips it
    data += line;
    data += '\n';
    journal_dirty_tail_ = true;  // cleared only when the full line landed
    write_fd_all(journal_fd_, data, "serve.library.journal_append");
    fsync_fd(journal_fd_, "journal");
    journal_dirty_tail_ = false;
    ++journal_lines_;
  } catch (const std::exception&) {
    // Lost index line, not a lost entry: the .sched file is durable and the
    // next open adopts it as an orphan. Availability is unaffected.
    ++journal_failures_;
  }
}

void DiskLibrary::quarantine_file(const std::string& file_name) {
  const fs::path dir(config_.dir);
  const fs::path path = dir / file_name;
  ++quarantined_;
  std::error_code ec;
  bool subdir_ok = true;
  try {
    util::failpoint("serve.library.quarantine");
  } catch (const util::FailpointError&) {
    subdir_ok = false;  // simulated mkdir failure
  }
  if (subdir_ok) {
    fs::create_directories(dir / "quarantine", ec);
    subdir_ok = !ec;
  }
  if (subdir_ok) {
    fs::rename(path, dir / "quarantine" / file_name, ec);
    if (!ec) return;
  }
  // No quarantine dir (e.g. a file squatting on the name): rename in place —
  // the suffix keeps it out of every index/orphan scan. If even that fails
  // the file stays put; it is excluded from entries_ either way.
  fs::rename(path, dir / (file_name + ".quarantined"), ec);
}

std::string DiskLibrary::file_for(const std::string& scenario_key) const {
  return fnv1a_hex(scenario_key) + ".sched";
}

}  // namespace syccl::serve
