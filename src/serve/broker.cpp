#include "serve/broker.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/validate.h"
#include "sim/simulator.h"
#include "topo/groups.h"

namespace syccl::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

bool is_rooted(coll::CollKind kind) {
  switch (kind) {
    case coll::CollKind::Broadcast:
    case coll::CollKind::Scatter:
    case coll::CollKind::Gather:
    case coll::CollKind::Reduce:
      return true;
    default:
      return false;
  }
}

struct ServeMetrics {
  obs::Counter& requests;
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& joins;
  obs::Counter& rejects;
  obs::Counter& verify_failures;
  obs::Histogram& canon_seconds;
  obs::Histogram& synth_seconds;
  obs::Histogram& request_seconds;

  static ServeMetrics& instance() {
    auto& reg = obs::MetricsRegistry::instance();
    static ServeMetrics m{reg.counter("serve.requests"),
                          reg.counter("serve.hits"),
                          reg.counter("serve.misses"),
                          reg.counter("serve.joins"),
                          reg.counter("serve.rejects"),
                          reg.counter("serve.verify_failures"),
                          reg.histogram("serve.canon_seconds"),
                          reg.histogram("serve.synth_seconds"),
                          reg.histogram("serve.request_seconds")};
    return m;
  }
};

}  // namespace

coll::Collective make_serve_collective(coll::CollKind kind, int num_ranks,
                                       std::uint64_t total_bytes, int root) {
  switch (kind) {
    case coll::CollKind::Broadcast:
      return coll::make_broadcast(num_ranks, total_bytes, root);
    case coll::CollKind::Scatter:
      return coll::make_scatter(num_ranks, total_bytes, root);
    case coll::CollKind::Gather:
      return coll::make_gather(num_ranks, total_bytes, root);
    case coll::CollKind::Reduce:
      return coll::make_reduce(num_ranks, total_bytes, root);
    case coll::CollKind::AllGather:
      return coll::make_allgather(num_ranks, total_bytes);
    case coll::CollKind::AllToAll:
      return coll::make_alltoall(num_ranks, total_bytes);
    case coll::CollKind::ReduceScatter:
      return coll::make_reduce_scatter(num_ranks, total_bytes);
    case coll::CollKind::AllReduce:
      return coll::make_allreduce(num_ranks, total_bytes);
    case coll::CollKind::SendRecv:
      break;
  }
  throw std::invalid_argument("serve does not handle SendRecv");
}

Broker::Broker(DiskLibrary& library, BrokerConfig config)
    : library_(library),
      config_(std::move(config)),
      pool_(static_cast<std::size_t>(config_.num_threads < 0 ? 0 : config_.num_threads)) {}

ServeResponse Broker::handle(const ServeRequest& request) {
  auto& metrics = ServeMetrics::instance();
  SYCCL_TRACE_SPAN(span, "serve.request", "serve");
  const auto request_start = std::chrono::steady_clock::now();
  metrics.requests.add();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }

  const topo::TopologyGroups groups = topo::extract_groups(request.topology);
  const auto canon_start = std::chrono::steady_clock::now();
  const CanonicalTopology canon = canonicalize(groups);
  metrics.canon_seconds.observe(seconds_since(canon_start));

  const std::uint64_t bucket = size_bucket(request.total_bytes);
  if (is_rooted(request.kind) && (request.root < 0 || request.root >= canon.num_ranks)) {
    throw BrokerError("root rank out of range");
  }
  const int canonical_root =
      is_rooted(request.kind) ? canon.perm[static_cast<std::size_t>(request.root)] : -1;
  const std::string key = scenario_key(canon, request.kind, canonical_root, bucket,
                                       options_fingerprint(config_.synthesis));
  const coll::Collective coll =
      make_serve_collective(request.kind, canon.num_ranks, request.total_bytes, request.root);

  // Relabels a canonical-space blob into the caller's rank space at the
  // caller's size, verifies it, and prices it on the caller's topology.
  // Throws when the blob does not satisfy the caller's demands.
  const auto serve_blob = [&](const ScheduleBlob& blob) {
    ServeResponse response;
    response.scenario_key = key;
    response.schedule = blob.schedule;
    const coll::Collective canon_coll = make_serve_collective(
        request.kind, canon.num_ranks, request.total_bytes, canonical_root);
    apply_rank_map(response.schedule, invert_permutation(canon.perm), canon_coll, coll);
    // chunk_bytes is linear in total_bytes for every collective, so piece
    // bytes rescale exactly from the synthesis bucket to the caller's size.
    const double scale =
        static_cast<double>(request.total_bytes) / static_cast<double>(blob.bucket_bytes);
    for (auto& piece : response.schedule.pieces) piece.bytes *= scale;
    if (config_.verify_served) {
      const runtime::ValidationReport report =
          runtime::validate_schedule(response.schedule, coll, groups);
      if (!report.ok) {
        throw BrokerError("served schedule failed validation: " +
                          (report.errors.empty() ? "unknown" : report.errors.front()));
      }
    }
    const sim::Simulator simulator(groups, config_.synthesis.sim);
    response.predicted_time = simulator.time_collective(response.schedule, coll);
    return response;
  };

  if (std::optional<ScheduleBlob> stored = library_.get(key)) {
    try {
      ServeResponse response = serve_blob(*stored);
      response.hit = true;
      metrics.hits.add();
      metrics.request_seconds.observe(seconds_since(request_start));
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.hits;
      return response;
    } catch (const std::exception&) {
      // A stored entry that no longer verifies (e.g. hand-edited library) is
      // treated as a miss: fall through and synthesize fresh.
      metrics.verify_failures.add();
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.verify_failures;
    }
  }

  // Miss: join an in-flight synthesis for this key, or start one.
  std::shared_future<std::shared_ptr<const ScheduleBlob>> future;
  bool initiator = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = in_flight_.find(key);
    if (it != in_flight_.end()) {
      future = it->second;
    } else {
      if (in_flight_.size() >= config_.max_in_flight) {
        metrics.rejects.add();
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.rejects;
        throw BrokerError("admission limit reached (" +
                          std::to_string(config_.max_in_flight) + " syntheses in flight)");
      }
      initiator = true;
      // The task captures copies (request owns the topology), so it outlives
      // any individual requester; it runs on the broker pool while
      // connection threads block on the future from outside the pool.
      future = pool_
                   .submit([this, request, canon, key, bucket] {
                     return synthesize_blob(request, canon, key, bucket);
                   })
                   .share();
      in_flight_.emplace(key, future);
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (initiator) {
      ++stats_.misses;
    } else {
      ++stats_.joins;
    }
  }
  if (initiator) {
    metrics.misses.add();
  } else {
    metrics.joins.add();
  }

  const auto wait_start = std::chrono::steady_clock::now();
  std::shared_ptr<const ScheduleBlob> blob;
  try {
    blob = future.get();
  } catch (...) {
    if (initiator) {
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_.erase(key);
    }
    throw;
  }
  if (initiator) {
    std::lock_guard<std::mutex> lock(mutex_);
    in_flight_.erase(key);
  }

  ServeResponse response = serve_blob(*blob);
  response.joined = !initiator;
  response.synth_seconds = seconds_since(wait_start);
  metrics.request_seconds.observe(seconds_since(request_start));
  return response;
}

std::shared_ptr<const ScheduleBlob> Broker::synthesize_blob(const ServeRequest& request,
                                                            const CanonicalTopology& canon,
                                                            const std::string& key,
                                                            std::uint64_t bucket) {
  auto& metrics = ServeMetrics::instance();
  SYCCL_TRACE_SPAN(span, "serve.synthesize", "serve");
  const auto start = std::chrono::steady_clock::now();

  core::Synthesizer synthesizer(request.topology, config_.synthesis);
  const coll::Collective bucket_coll =
      make_serve_collective(request.kind, canon.num_ranks, bucket, request.root);
  core::SynthesisResult result = synthesizer.synthesize(bucket_coll);

  auto blob = std::make_shared<ScheduleBlob>();
  blob->scenario_key = key;
  blob->num_ranks = canon.num_ranks;
  blob->bucket_bytes = bucket;
  blob->predicted_time = result.predicted_time;
  blob->schedule = std::move(result.schedule);
  // Store in canonical rank space (ranks AND chunk ids) so every isomorphic
  // requester can relabel it into their own.
  const int canonical_root =
      is_rooted(request.kind) ? canon.perm[static_cast<std::size_t>(request.root)] : -1;
  const coll::Collective canon_coll =
      make_serve_collective(request.kind, canon.num_ranks, bucket, canonical_root);
  apply_rank_map(blob->schedule, canon.perm, bucket_coll, canon_coll);
  library_.put(*blob);

  metrics.synth_seconds.observe(seconds_since(start));
  obs::MetricsRegistry::instance().gauge("serve.library_bytes")
      .set(static_cast<double>(library_.stats().bytes));
  return blob;
}

Broker::Stats Broker::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace syccl::serve
