#include "serve/broker.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/validate.h"
#include "sim/simulator.h"
#include "topo/groups.h"
#include "util/failpoint.h"

namespace syccl::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

bool is_rooted(coll::CollKind kind) {
  switch (kind) {
    case coll::CollKind::Broadcast:
    case coll::CollKind::Scatter:
    case coll::CollKind::Gather:
    case coll::CollKind::Reduce:
      return true;
    default:
      return false;
  }
}

struct ServeMetrics {
  obs::Counter& requests;
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& joins;
  obs::Counter& rejects;
  obs::Counter& verify_failures;
  obs::Counter& degraded_hits;
  obs::Counter& upgrades;
  obs::Counter& put_failures;
  obs::Histogram& canon_seconds;
  obs::Histogram& synth_seconds;
  obs::Histogram& request_seconds;

  static ServeMetrics& instance() {
    auto& reg = obs::MetricsRegistry::instance();
    static ServeMetrics m{reg.counter("serve.requests"),
                          reg.counter("serve.hits"),
                          reg.counter("serve.misses"),
                          reg.counter("serve.joins"),
                          reg.counter("serve.rejects"),
                          reg.counter("serve.verify_failures"),
                          reg.counter("serve.degraded_hits"),
                          reg.counter("serve.upgrades"),
                          reg.counter("serve.put_failures"),
                          reg.histogram("serve.canon_seconds"),
                          reg.histogram("serve.synth_seconds"),
                          reg.histogram("serve.request_seconds")};
    return m;
  }
};

}  // namespace

core::SynthesisConfig fallback_synthesis_config(core::SynthesisConfig config) {
  config.two_step = false;
  config.coarse_solver.greedy_only = true;
  config.fine_solver.greedy_only = true;
  config.sketch.search.max_sketches = 2;
  config.sketch.max_prototypes = 1;
  config.sketch.combine.max_outputs = 2;
  config.R2 = 1;
  // Runs on the connection thread at a moment the pool is saturated; one
  // worker keeps the fallback from competing with the full synthesis.
  config.num_threads = 1;
  return config;
}

coll::Collective make_serve_collective(coll::CollKind kind, int num_ranks,
                                       std::uint64_t total_bytes, int root) {
  switch (kind) {
    case coll::CollKind::Broadcast:
      return coll::make_broadcast(num_ranks, total_bytes, root);
    case coll::CollKind::Scatter:
      return coll::make_scatter(num_ranks, total_bytes, root);
    case coll::CollKind::Gather:
      return coll::make_gather(num_ranks, total_bytes, root);
    case coll::CollKind::Reduce:
      return coll::make_reduce(num_ranks, total_bytes, root);
    case coll::CollKind::AllGather:
      return coll::make_allgather(num_ranks, total_bytes);
    case coll::CollKind::AllToAll:
      return coll::make_alltoall(num_ranks, total_bytes);
    case coll::CollKind::ReduceScatter:
      return coll::make_reduce_scatter(num_ranks, total_bytes);
    case coll::CollKind::AllReduce:
      return coll::make_allreduce(num_ranks, total_bytes);
    case coll::CollKind::SendRecv:
      break;
  }
  throw std::invalid_argument("serve does not handle SendRecv");
}

Broker::Broker(DiskLibrary& library, BrokerConfig config)
    : library_(library),
      config_(std::move(config)),
      pool_(static_cast<std::size_t>(config_.num_threads < 0 ? 0 : config_.num_threads)) {}

ServeResponse Broker::handle(const ServeRequest& request) {
  auto& metrics = ServeMetrics::instance();
  SYCCL_TRACE_SPAN(span, "serve.request", "serve");
  const auto request_start = std::chrono::steady_clock::now();
  metrics.requests.add();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }

  const topo::TopologyGroups groups = topo::extract_groups(request.topology);
  const auto canon_start = std::chrono::steady_clock::now();
  const CanonicalTopology canon = canonicalize(groups);
  metrics.canon_seconds.observe(seconds_since(canon_start));

  const std::uint64_t bucket = size_bucket(request.total_bytes);
  if (is_rooted(request.kind) && (request.root < 0 || request.root >= canon.num_ranks)) {
    throw BrokerError("root rank out of range");
  }
  const int canonical_root =
      is_rooted(request.kind) ? canon.perm[static_cast<std::size_t>(request.root)] : -1;
  const std::string key = scenario_key(canon, request.kind, canonical_root, bucket,
                                       options_fingerprint(config_.synthesis));
  const coll::Collective coll =
      make_serve_collective(request.kind, canon.num_ranks, request.total_bytes, request.root);

  // Relabels a canonical-space blob into the caller's rank space at the
  // caller's size, verifies it, and prices it on the caller's topology.
  // Throws when the blob does not satisfy the caller's demands.
  const auto serve_blob = [&](const ScheduleBlob& blob) {
    ServeResponse response;
    response.scenario_key = key;
    response.schedule = blob.schedule;
    response.degraded = blob.degraded;
    const coll::Collective canon_coll = make_serve_collective(
        request.kind, canon.num_ranks, request.total_bytes, canonical_root);
    apply_rank_map(response.schedule, invert_permutation(canon.perm), canon_coll, coll);
    // chunk_bytes is linear in total_bytes for every collective, so piece
    // bytes rescale exactly from the synthesis bucket to the caller's size.
    const double scale =
        static_cast<double>(request.total_bytes) / static_cast<double>(blob.bucket_bytes);
    for (auto& piece : response.schedule.pieces) piece.bytes *= scale;
    if (config_.verify_served) {
      const runtime::ValidationReport report =
          runtime::validate_schedule(response.schedule, coll, groups);
      if (!report.ok) {
        throw BrokerError("served schedule failed validation: " +
                          (report.errors.empty() ? "unknown" : report.errors.front()));
      }
    }
    const sim::Simulator simulator(groups, config_.synthesis.sim);
    response.predicted_time = simulator.time_collective(response.schedule, coll);
    return response;
  };

  const auto count_degraded = [&] {
    metrics.degraded_hits.add();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.degraded_hits;
  };

  if (std::optional<ScheduleBlob> stored = library_.get(key)) {
    try {
      ServeResponse response = serve_blob(*stored);
      response.hit = true;
      metrics.hits.add();
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.hits;
      }
      if (response.degraded) {
        // A degraded entry means no full synthesis has landed yet; make
        // sure one is running (or queued) so the entry eventually upgrades.
        // The caller is not kept waiting for it.
        count_degraded();
        bool started = false;
        join_or_start(request, canon, key, bucket, started, /*reject_throws=*/false);
      }
      metrics.request_seconds.observe(seconds_since(request_start));
      return response;
    } catch (const std::exception&) {
      // A stored entry that no longer verifies (e.g. hand-edited library) is
      // treated as a miss: fall through and synthesize fresh.
      metrics.verify_failures.add();
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.verify_failures;
    }
  }

  // Miss: join an in-flight synthesis for this key, or start one.
  bool initiator = false;
  std::shared_future<SynthOutcome> future =
      join_or_start(request, canon, key, bucket, initiator, /*reject_throws=*/true);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (initiator) {
      ++stats_.misses;
    } else {
      ++stats_.joins;
    }
  }
  if (initiator) {
    metrics.misses.add();
  } else {
    metrics.joins.add();
  }

  const double deadline_s = request.deadline_seconds != 0.0 ? request.deadline_seconds
                                                            : config_.default_deadline_seconds;
  const auto wait_start = std::chrono::steady_clock::now();
  if (deadline_s > 0.0) {
    // The deadline is measured from request arrival: canonicalisation and
    // admission already spent part of it.
    const auto deadline_tp =
        request_start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(deadline_s));
    if (future.wait_until(deadline_tp) == std::future_status::timeout) {
      // Deadline expired with the full synthesis still running. Answer now
      // with a minimal-budget fallback, synthesized here on the connection
      // thread — the pool is busy with exactly the work we stopped waiting
      // for. The full synthesis upgrades the library entry when it lands.
      SYCCL_TRACE_SPAN(fb_span, "serve.fallback", "serve");
      BlobPtr fallback =
          synthesize_blob(request, canon, key, bucket,
                          fallback_synthesis_config(config_.synthesis), /*degraded=*/true);
      ServeResponse response = serve_blob(*fallback);
      response.joined = !initiator;
      response.synth_seconds = seconds_since(wait_start);
      count_degraded();
      metrics.request_seconds.observe(seconds_since(request_start));
      return response;
    }
  }
  const SynthOutcome& outcome = future.get();
  if (!outcome.blob) throw BrokerError(outcome.error);  // this thread's own exception

  ServeResponse response = serve_blob(*outcome.blob);
  response.joined = !initiator;
  response.synth_seconds = seconds_since(wait_start);
  metrics.request_seconds.observe(seconds_since(request_start));
  return response;
}

std::shared_future<Broker::SynthOutcome> Broker::join_or_start(const ServeRequest& request,
                                                               const CanonicalTopology& canon,
                                                               const std::string& key,
                                                               std::uint64_t bucket,
                                                               bool& started,
                                                               bool reject_throws) {
  started = false;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = in_flight_.find(key);
  if (it != in_flight_.end()) return it->second;

  if (in_flight_.size() >= config_.max_in_flight) {
    if (!reject_throws) return {};  // background upgrade: retry on a later hit
    auto& metrics = ServeMetrics::instance();
    metrics.rejects.add();
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.rejects;
    throw BrokerError("admission limit reached (" + std::to_string(config_.max_in_flight) +
                      " syntheses in flight)");
  }

  started = true;
  // The future comes from an explicit promise so the in-flight entry can be
  // registered *before* the pool task exists: the task erases the entry
  // itself when done (requesters may abandon the wait at their deadline, so
  // cleanup cannot be theirs), and must not race its own registration.
  auto promise = std::make_shared<std::promise<SynthOutcome>>();
  std::shared_future<SynthOutcome> future = promise->get_future().share();
  in_flight_.emplace(key, future);
  // The task captures copies (request owns the topology), so it outlives
  // any individual requester; it runs on the broker pool while connection
  // threads block on the future from outside the pool. Failures become a
  // message in the outcome, never a shared exception object (see
  // SynthOutcome).
  pool_.submit([this, promise, request, canon, key, bucket] {
    SynthOutcome outcome;
    try {
      outcome.blob =
          synthesize_blob(request, canon, key, bucket, config_.synthesis, /*degraded=*/false);
    } catch (const std::exception& e) {
      outcome.error = e.what();
    } catch (...) {
      outcome.error = "synthesis failed with a non-standard exception";
    }
    promise->set_value(std::move(outcome));
    std::lock_guard<std::mutex> inner(mutex_);
    in_flight_.erase(key);
  });
  return future;
}

Broker::BlobPtr Broker::synthesize_blob(const ServeRequest& request,
                                        const CanonicalTopology& canon, const std::string& key,
                                        std::uint64_t bucket,
                                        const core::SynthesisConfig& synth, bool degraded) {
  auto& metrics = ServeMetrics::instance();
  SYCCL_TRACE_SPAN(span, "serve.synthesize", "serve");
  util::failpoint("serve.broker.synthesize");  // error mode: synthesis "fails"
  const auto start = std::chrono::steady_clock::now();

  core::Synthesizer synthesizer(request.topology, synth);
  const coll::Collective bucket_coll =
      make_serve_collective(request.kind, canon.num_ranks, bucket, request.root);
  core::SynthesisResult result = synthesizer.synthesize(bucket_coll);

  auto blob = std::make_shared<ScheduleBlob>();
  blob->scenario_key = key;
  blob->num_ranks = canon.num_ranks;
  blob->bucket_bytes = bucket;
  blob->predicted_time = result.predicted_time;
  blob->degraded = degraded;
  blob->schedule = std::move(result.schedule);
  // Store in canonical rank space (ranks AND chunk ids) so every isomorphic
  // requester can relabel it into their own.
  const int canonical_root =
      is_rooted(request.kind) ? canon.perm[static_cast<std::size_t>(request.root)] : -1;
  const coll::Collective canon_coll =
      make_serve_collective(request.kind, canon.num_ranks, bucket, canonical_root);
  apply_rank_map(blob->schedule, canon.perm, bucket_coll, canon_coll);
  try {
    const DiskLibrary::PutResult put = library_.put(*blob);
    if (put == DiskLibrary::PutResult::Upgraded) {
      metrics.upgrades.add();
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.upgrades;
    }
  } catch (const std::exception&) {
    // Entry could not be persisted (disk full, failpoint): the schedule is
    // still correct — serve it and let a later put retry. Availability over
    // durability.
    metrics.put_failures.add();
  }

  metrics.synth_seconds.observe(seconds_since(start));
  obs::MetricsRegistry::instance().gauge("serve.library_bytes")
      .set(static_cast<double>(library_.stats().bytes));
  return blob;
}

Broker::Stats Broker::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace syccl::serve
