// Wire protocol of the schedule-compiler service: line-oriented commands
// with byte-counted payloads, transport-agnostic (serve/socket.h provides
// the AF_UNIX transport; tests drive the same code over in-memory streams).
//
// Client → server:
//   PING\n
//   STATS\n
//   REQUEST <kind> <root> <total_bytes> <binary|xml> [deadline_ms]\n
//   TOPOLOGY <nbytes>\n<nbytes of topo::to_text format>
//   QUIT\n
// A REQUEST line must be followed immediately by its TOPOLOGY payload.
// The optional deadline_ms bounds the synthesis wait: past it the server
// answers with a degraded fallback schedule (serve/broker.h). 0 = no
// deadline even if the server configures a default; absent = the default.
//
// Server → client:
//   PONG\n                                     (PING)
//   OK <nbytes>\n<json>                        (STATS: broker+library stats)
//   OK <hit> <joined> <degraded> <predicted_time> <scenario_key>\n
//   SCHEDULE <binary|xml> <nbytes>\n<nbytes>   (REQUEST; binary = serve
//                                               codec blob, xml = MSCCL XML)
//   ERR <nbytes>\n<nbytes of message>          (any failure; the connection
//                                               stays open)
//
// Payload sizes are byte counts, so payloads may contain newlines. Numbers
// use util::cli strict parsing server-side — a malformed count is an ERR,
// never a desynchronised stream.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "serve/broker.h"

namespace syccl::serve {

/// Blocking byte stream the protocol runs over. Implementations: the unix
/// socket connection (serve/socket.h) and the in-memory pipe used in tests.
class Stream {
 public:
  virtual ~Stream() = default;
  /// Reads up to '\n' (consumed, not returned). False on EOF/error with no
  /// buffered bytes.
  virtual bool read_line(std::string& line) = 0;
  /// Reads exactly `n` bytes. False on premature EOF/error.
  virtual bool read_exact(std::string& out, std::size_t n) = 0;
  virtual bool write_all(std::string_view data) = 0;
};

/// Maps a protocol kind token ("AllGather", case-sensitive, the names of
/// coll::kind_name) back to the kind. nullopt for unknown names and for
/// SendRecv (not served).
std::optional<coll::CollKind> parse_kind(std::string_view name);

/// Client-side encoder: the REQUEST + TOPOLOGY byte sequence for `request`.
std::string encode_request(const ServeRequest& request, std::string_view format);

/// Client-side view of one response.
struct WireResponse {
  bool ok = false;
  std::string error;  ///< set when !ok
  bool hit = false;
  bool joined = false;
  bool degraded = false;  ///< deadline-fallback schedule (see serve/broker.h)
  double predicted_time = 0.0;
  std::string scenario_key;
  std::string format;   ///< "binary" or "xml"
  std::string payload;  ///< encoded schedule
};

/// Client-side decoder: reads one REQUEST response off `stream`. False on
/// EOF before a complete response.
bool read_response(Stream& stream, WireResponse& response);

/// Serves one connection until QUIT, EOF, or — checked between requests,
/// never mid-request — `stop` becoming true (graceful drain: the in-flight
/// request still gets its response). Every protocol or broker error is
/// reported as an ERR frame on the stream; only transport failures end the
/// loop early. Returns the number of REQUEST commands handled.
int serve_connection(Stream& stream, Broker& broker, DiskLibrary& library,
                     const std::atomic<bool>* stop = nullptr);

}  // namespace syccl::serve
