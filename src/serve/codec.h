// Versioned binary schedule serialisation for the serve library and wire.
//
// The MSCCL-XML path (runtime/xml.h) is a human-debuggable artifact format;
// the library needs something stricter: doubles as bit patterns (byte-exact
// round trip — XML loses the last digits through decimal), an explicit
// format version so old libraries miss instead of mis-serving, and an
// integrity checksum so a torn write or bit rot is detected and quarantined
// rather than executed.
//
// Layout (little-endian, fixed-width):
//   magic "SYSB" | u32 version | u64 payload size | payload | u64 fnv1a(payload)
// Payload: scenario key string, rank count, bucket bytes, predicted time,
// degraded flag, then the schedule (name, pieces, ops). Strings are u32 length + bytes;
// vectors are u32 count + elements; doubles are their IEEE-754 bit pattern.
//
// Guarantees (pinned by ServeCodec tests):
//   * decode(encode(b)) reproduces every field exactly, doubles bit-for-bit;
//   * encode(decode(s)) == s for any s produced by encode (byte-exact across
//     save → reopen);
//   * any truncation, version skew, or payload corruption throws CodecError
//     — never returns a partially-decoded blob.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/schedule.h"

namespace syccl::serve {

class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One library/wire entry: a schedule in canonical rank labelling plus the
/// metadata needed to verify and rescale it.
struct ScheduleBlob {
  /// Full scenario key (serve/canonical.h) — verified on library hits so an
  /// FNV collision degrades to a miss, never a mis-serve.
  std::string scenario_key;
  std::int32_t num_ranks = 0;
  /// Size bucket the schedule was synthesized for; serve rescales piece
  /// bytes by (request chunk bytes / bucket chunk bytes).
  std::uint64_t bucket_bytes = 0;
  /// Simulator-predicted completion time at bucket size (seconds).
  double predicted_time = 0.0;
  /// True for deadline-fallback schedules synthesized at a minimal budget:
  /// correct but not competitive. The library never lets a degraded blob
  /// overwrite a full one, and the broker re-synthesizes in the background
  /// whenever it serves one (serve/broker.h).
  bool degraded = false;
  sim::Schedule schedule;
};

std::string encode_blob(const ScheduleBlob& blob);

/// Throws CodecError on bad magic, unsupported version, truncation, size
/// mismatch, or checksum failure.
ScheduleBlob decode_blob(std::string_view data);

}  // namespace syccl::serve
