// Inventory of every failpoint threaded through the serve stack.
//
// The chaos suite (tests/serve_chaos_test.cpp, `ctest -C chaos`) iterates
// this list and fires each site at least once end-to-end, so adding a
// failpoint here without wiring it into a code path — or wiring one into
// code without listing it here — fails the sweep, not code review.
//
// Naming: serve.<component>.<operation>. Specs and modes are documented in
// util/failpoint.h; sites fire via util::failpoint(name).
#pragma once

#include <cstddef>

namespace syccl::serve {

inline constexpr const char* kServeFailpoints[] = {
    // DiskLibrary entry files: tmp write+fsync, then rename into place.
    "serve.library.entry_write",
    "serve.library.entry_rename",
    // DiskLibrary index: atomic snapshot rewrite + fsynced journal appends.
    "serve.library.snapshot_write",
    "serve.library.snapshot_rename",
    "serve.library.journal_append",
    // Parent-directory fsync after renames (the step that makes the rename
    // itself durable).
    "serve.library.dir_fsync",
    // Quarantine of a corrupt entry at open (error = the quarantine/ dir
    // cannot be created).
    "serve.library.quarantine",
    // Blob decode — forces the corrupt-entry path without editing files.
    "serve.codec.decode",
    // Full-budget synthesis on the broker pool (delay = deterministic slow
    // synthesis for deadline tests; error = synthesis failure propagation).
    "serve.broker.synthesize",
    // Transport syscalls (eintr storms, hard errors, stalls).
    "serve.socket.read",
    "serve.socket.write",
};

inline constexpr std::size_t kNumServeFailpoints =
    sizeof(kServeFailpoints) / sizeof(kServeFailpoints[0]);

}  // namespace syccl::serve
