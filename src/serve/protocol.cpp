#include "serve/protocol.h"

#include <charconv>
#include <sstream>
#include <vector>

#include "runtime/xml.h"
#include "serve/codec.h"
#include "topo/serialize.h"
#include "util/cli.h"

namespace syccl::serve {

namespace {

constexpr std::size_t kMaxPayloadBytes = 64ull << 20;  ///< refuse absurd frames

/// Splits on single spaces (the protocol never emits runs of them, but
/// tolerate and skip empties so a sloppy client still parses).
std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

std::string exact_double_str(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

bool write_err(Stream& stream, const std::string& message) {
  return stream.write_all("ERR " + std::to_string(message.size()) + "\n" + message);
}

/// Reads a "<VERB> <nbytes>\n<payload>" frame whose verb line is already
/// split into `tokens`. Empty optional = protocol error (reported inline).
std::optional<std::string> read_counted_payload(Stream& stream,
                                                const std::vector<std::string>& tokens,
                                                std::string& error) {
  if (tokens.size() != 2) {
    error = "expected '" + (tokens.empty() ? std::string("?") : tokens[0]) + " <nbytes>'";
    return std::nullopt;
  }
  const std::optional<std::uint64_t> parsed = util::cli::parse_u64(tokens[1]);
  if (!parsed) {
    error = "bad payload size '" + tokens[1] + "'";
    return std::nullopt;
  }
  const std::uint64_t n = *parsed;
  if (n > kMaxPayloadBytes) {
    error = "payload size " + tokens[1] + " exceeds limit";
    return std::nullopt;
  }
  std::string payload;
  if (!stream.read_exact(payload, static_cast<std::size_t>(n))) {
    error = "truncated payload";
    return std::nullopt;
  }
  return payload;
}

std::string stats_json(const Broker& broker, DiskLibrary& library) {
  const Broker::Stats b = broker.stats();
  const DiskLibrary::Stats l = library.stats();
  std::ostringstream os;
  os << "{\"broker\":{\"requests\":" << b.requests << ",\"hits\":" << b.hits
     << ",\"misses\":" << b.misses << ",\"joins\":" << b.joins << ",\"rejects\":" << b.rejects
     << ",\"verify_failures\":" << b.verify_failures << ",\"degraded_hits\":" << b.degraded_hits
     << ",\"upgrades\":" << b.upgrades << "},\"library\":{\"entries\":" << l.entries
     << ",\"bytes\":" << l.bytes << ",\"hits\":" << l.hits << ",\"misses\":" << l.misses
     << ",\"evictions\":" << l.evictions << ",\"quarantined\":" << l.quarantined
     << ",\"orphans_adopted\":" << l.orphans_adopted
     << ",\"journal_failures\":" << l.journal_failures
     << ",\"rejected_downgrades\":" << l.rejected_downgrades << "}}";
  return os.str();
}

}  // namespace

std::optional<coll::CollKind> parse_kind(std::string_view name) {
  using coll::CollKind;
  static constexpr CollKind kServed[] = {
      CollKind::Broadcast,     CollKind::Scatter,  CollKind::Gather,
      CollKind::Reduce,        CollKind::AllGather, CollKind::AllToAll,
      CollKind::ReduceScatter, CollKind::AllReduce,
  };
  for (CollKind kind : kServed) {
    if (name == coll::kind_name(kind)) return kind;
  }
  return std::nullopt;
}

std::string encode_request(const ServeRequest& request, std::string_view format) {
  const std::string topology = topo::to_text(request.topology);
  std::ostringstream os;
  os << "REQUEST " << coll::kind_name(request.kind) << ' ' << request.root << ' '
     << request.total_bytes << ' ' << format;
  if (request.deadline_seconds != 0.0) {
    // deadline_ms token: explicit 0 = no deadline, overriding any server
    // default (the encoding of deadline_seconds < 0).
    const std::uint64_t ms =
        request.deadline_seconds < 0.0
            ? 0
            : static_cast<std::uint64_t>(request.deadline_seconds * 1000.0 + 0.5);
    os << ' ' << ms;
  }
  os << '\n';
  os << "TOPOLOGY " << topology.size() << '\n' << topology;
  return os.str();
}

bool read_response(Stream& stream, WireResponse& response) {
  response = WireResponse{};
  std::string line;
  if (!stream.read_line(line)) return false;
  std::vector<std::string> tokens = split_tokens(line);
  if (tokens.empty()) return false;
  if (tokens[0] == "ERR") {
    std::string error;
    auto payload = read_counted_payload(stream, tokens, error);
    if (!payload) return false;
    response.error = *payload;
    return true;
  }
  if (tokens[0] != "OK" || tokens.size() != 6) return false;
  response.hit = tokens[1] == "1";
  response.joined = tokens[2] == "1";
  response.degraded = tokens[3] == "1";
  try {
    response.predicted_time = std::stod(tokens[4]);
  } catch (const std::exception&) {
    return false;
  }
  response.scenario_key = tokens[5];

  if (!stream.read_line(line)) return false;
  tokens = split_tokens(line);
  if (tokens.size() != 3 || tokens[0] != "SCHEDULE") return false;
  response.format = tokens[1];
  std::string error;
  auto payload = read_counted_payload(stream, {tokens[0], tokens[2]}, error);
  if (!payload) return false;
  response.payload = std::move(*payload);
  response.ok = true;
  return true;
}

int serve_connection(Stream& stream, Broker& broker, DiskLibrary& library,
                     const std::atomic<bool>* stop) {
  int handled = 0;
  std::string line;
  while (!(stop && stop->load(std::memory_order_relaxed)) && stream.read_line(line)) {
    const std::vector<std::string> tokens = split_tokens(line);
    if (tokens.empty()) continue;  // blank keep-alive line
    const std::string& verb = tokens[0];

    if (verb == "QUIT") break;
    if (verb == "PING") {
      if (!stream.write_all("PONG\n")) break;
      continue;
    }
    if (verb == "STATS") {
      const std::string json = stats_json(broker, library);
      if (!stream.write_all("OK " + std::to_string(json.size()) + "\n" + json)) break;
      continue;
    }
    if (verb != "REQUEST") {
      if (!write_err(stream, "unknown command '" + verb + "'")) break;
      continue;
    }

    // REQUEST <kind> <root> <total_bytes> <binary|xml> [deadline_ms]
    if (tokens.size() != 5 && tokens.size() != 6) {
      if (!write_err(stream,
                     "expected 'REQUEST <kind> <root> <bytes> <binary|xml> [deadline_ms]'")) {
        break;
      }
      continue;
    }
    const std::optional<coll::CollKind> kind = parse_kind(tokens[1]);
    const std::string& format = tokens[4];
    std::string error;
    if (!kind) error = "unknown collective '" + tokens[1] + "'";
    if (error.empty() && format != "binary" && format != "xml") {
      error = "unknown schedule format '" + format + "'";
    }
    ServeRequest request;
    if (error.empty()) {
      request.kind = *kind;
      const std::optional<int> root = util::cli::parse_int(tokens[2], 0, 1 << 20);
      const std::optional<std::uint64_t> bytes = util::cli::parse_bytes(tokens[3]);
      if (!root) {
        error = "bad root '" + tokens[2] + "'";
      } else if (!bytes || *bytes == 0) {
        error = "bad byte count '" + tokens[3] + "'";
      } else {
        request.root = *root;
        request.total_bytes = *bytes;
      }
    }
    if (error.empty() && tokens.size() == 6) {
      // Bounded to a day: a fat-fingered deadline must not look like "no
      // deadline for the next 49 days".
      const std::optional<std::uint64_t> deadline_ms = util::cli::parse_u64(tokens[5]);
      if (!deadline_ms || *deadline_ms > 86'400'000) {
        error = "bad deadline '" + tokens[5] + "'";
      } else if (*deadline_ms == 0) {
        request.deadline_seconds = -1.0;  // explicit "no deadline"
      } else {
        request.deadline_seconds = static_cast<double>(*deadline_ms) / 1000.0;
      }
    }

    // The TOPOLOGY frame must be consumed even when the request line was
    // bad, or the stream desynchronises.
    if (!stream.read_line(line)) break;
    const std::vector<std::string> topo_tokens = split_tokens(line);
    std::string frame_error;
    std::optional<std::string> topology_text;
    if (topo_tokens.empty() || topo_tokens[0] != "TOPOLOGY") {
      frame_error = "expected TOPOLOGY frame after REQUEST";
    } else {
      topology_text = read_counted_payload(stream, topo_tokens, frame_error);
    }
    if (!topology_text) {
      if (!write_err(stream, frame_error)) break;
      if (frame_error == "truncated payload") break;  // stream is dead
      continue;
    }
    if (!error.empty()) {
      if (!write_err(stream, error)) break;
      continue;
    }

    ++handled;
    try {
      request.topology = topo::from_text(*topology_text);
      const ServeResponse response = broker.handle(request);

      std::string payload;
      if (format == "binary") {
        ScheduleBlob blob;
        blob.scenario_key = response.scenario_key;
        blob.num_ranks = static_cast<std::int32_t>(request.topology.gpus().size());
        blob.bucket_bytes = size_bucket(request.total_bytes);
        blob.predicted_time = response.predicted_time;
        blob.degraded = response.degraded;
        blob.schedule = response.schedule;
        payload = encode_blob(blob);
      } else {
        payload = runtime::to_xml(response.schedule,
                                  static_cast<int>(request.topology.gpus().size()));
      }
      std::ostringstream os;
      os << "OK " << (response.hit ? 1 : 0) << ' ' << (response.joined ? 1 : 0) << ' '
         << (response.degraded ? 1 : 0) << ' '
         << exact_double_str(response.predicted_time) << ' ' << response.scenario_key << '\n'
         << "SCHEDULE " << format << ' ' << payload.size() << '\n'
         << payload;
      if (!stream.write_all(os.str())) break;
    } catch (const std::exception& e) {
      if (!write_err(stream, e.what())) break;
    }
  }
  return handled;
}

}  // namespace syccl::serve
