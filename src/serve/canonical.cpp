#include "serve/canonical.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "solver/solve_cache.h"

namespace syccl::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Same quantisation the group signatures use (topo/groups.cpp): picoseconds
/// for α, 1e-21 s/byte for β — fine enough that distinct link classes never
/// collide, coarse enough that a 1-ulp serialisation wobble never splits.
long long quant_alpha(double a) { return std::llround(a * 1e12); }
long long quant_beta(double b) { return std::llround(b * 1e21); }

/// Hop ladder of one member, up and down: the signature covers the
/// aggregated ports; the ladder pins the per-hop structure the simulator's
/// contention model sees, so topologies that aggregate identically but route
/// differently hash apart.
std::string hop_rendering(const topo::GroupTopology& g, int local) {
  std::ostringstream os;
  const auto render = [&os](const std::vector<topo::PathHop>& hops) {
    os << "[";
    for (const auto& h : hops) os << quant_alpha(h.alpha) << "/" << quant_beta(h.beta) << ",";
    os << "]";
  };
  os << "u";
  render(g.up_hops[static_cast<std::size_t>(local)]);
  os << "d";
  render(g.down_hops[static_cast<std::size_t>(local)]);
  return os.str();
}

/// Assigns dense ids to strings by sorted order; returns ids per input.
std::vector<int> compress(const std::vector<std::string>& strings) {
  std::map<std::string, int> rank;
  for (const auto& s : strings) rank.emplace(s, 0);
  int next = 0;
  for (auto& [s, r] : rank) r = next++;
  std::vector<int> out(strings.size());
  for (std::size_t i = 0; i < strings.size(); ++i) out[i] = rank.at(strings[i]);
  return out;
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t seed) {
  std::uint64_t h = seed == 0 ? kFnvOffset : seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::string fnv1a_hex(const std::string& text) {
  std::ostringstream os;
  os << std::hex << fnv1a(text.data(), text.size());
  return os.str();
}

CanonicalTopology canonicalize(const topo::TopologyGroups& groups) {
  CanonicalTopology out;
  if (groups.group_of.empty()) throw std::invalid_argument("canonicalize: no dimensions");
  const int num_ranks = static_cast<int>(groups.group_of.front().size());
  out.num_ranks = num_ranks;

  // Label-invariant member descriptors, built from the raw star abstraction.
  // GroupTopology::canonical_form() is deliberately NOT used here: its member
  // order (and therefore the port-sharing block ids inside its signature)
  // breaks ties between structurally identical members by local index — the
  // caller labelling this function must be invariant to. Instead each member
  // contributes its quantised port α/β, its physical hop ladder, and the
  // sizes of its up/down port-sharing blocks; which members share a port is
  // propagated through refinement via port-mate colour multisets.
  const int num_dims = groups.num_dims();
  std::vector<std::vector<std::string>> member_desc(static_cast<std::size_t>(num_dims));
  std::vector<std::vector<std::string>> ladder(static_cast<std::size_t>(num_dims));
  // Per dim, per rank: the co-members (global ranks) sharing this member's
  // physical up/down serialisation port.
  std::vector<std::vector<std::vector<int>>> up_mates(static_cast<std::size_t>(num_dims));
  std::vector<std::vector<std::vector<int>>> down_mates(static_cast<std::size_t>(num_dims));
  for (int d = 0; d < num_dims; ++d) {
    member_desc[static_cast<std::size_t>(d)].resize(static_cast<std::size_t>(num_ranks));
    ladder[static_cast<std::size_t>(d)].resize(static_cast<std::size_t>(num_ranks));
    up_mates[static_cast<std::size_t>(d)].resize(static_cast<std::size_t>(num_ranks));
    down_mates[static_cast<std::size_t>(d)].resize(static_cast<std::size_t>(num_ranks));
    for (const auto& g : groups.dims[static_cast<std::size_t>(d)].groups) {
      for (int i = 0; i < g.size(); ++i) {
        const int r = g.ranks[static_cast<std::size_t>(i)];
        for (int j = 0; j < g.size(); ++j) {
          if (j == i) continue;
          const int mate = g.ranks[static_cast<std::size_t>(j)];
          if (g.up[static_cast<std::size_t>(i)].port_id >= 0 &&
              g.up[static_cast<std::size_t>(j)].port_id == g.up[static_cast<std::size_t>(i)].port_id) {
            up_mates[static_cast<std::size_t>(d)][static_cast<std::size_t>(r)].push_back(mate);
          }
          if (g.down[static_cast<std::size_t>(i)].port_id >= 0 &&
              g.down[static_cast<std::size_t>(j)].port_id == g.down[static_cast<std::size_t>(i)].port_id) {
            down_mates[static_cast<std::size_t>(d)][static_cast<std::size_t>(r)].push_back(mate);
          }
        }
        ladder[static_cast<std::size_t>(d)][static_cast<std::size_t>(r)] = hop_rendering(g, i);
        std::ostringstream ds;
        ds << "n" << g.size() << ";u" << quant_alpha(g.up[static_cast<std::size_t>(i)].alpha)
           << "/" << quant_beta(g.up[static_cast<std::size_t>(i)].beta) << "+"
           << up_mates[static_cast<std::size_t>(d)][static_cast<std::size_t>(r)].size() << ";d"
           << quant_alpha(g.down[static_cast<std::size_t>(i)].alpha) << "/"
           << quant_beta(g.down[static_cast<std::size_t>(i)].beta) << "+"
           << down_mates[static_cast<std::size_t>(d)][static_cast<std::size_t>(r)].size() << ";L"
           << ladder[static_cast<std::size_t>(d)][static_cast<std::size_t>(r)];
        member_desc[static_cast<std::size_t>(d)][static_cast<std::size_t>(r)] = ds.str();
      }
    }
  }

  // Colour refinement over ranks. A rank's colour starts from its per-dim
  // (group signature, canonical position); each round then separates groups
  // of equal signature by their member-colour multisets, which in turn
  // separates their members. Group order ids restart from the signatures
  // every round, so the fixed point does not depend on the iteration count.
  std::vector<int> color(static_cast<std::size_t>(num_ranks), 0);
  std::vector<int> pinned(static_cast<std::size_t>(num_ranks), -1);
  std::vector<std::vector<int>> group_order(static_cast<std::size_t>(num_dims));
  const auto rank_strings = [&](bool with_colors) {
    std::vector<std::string> strings(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) {
      std::ostringstream os;
      if (pinned[static_cast<std::size_t>(r)] >= 0) {
        os << "p" << pinned[static_cast<std::size_t>(r)] << ";";
      }
      if (with_colors) os << "c" << color[static_cast<std::size_t>(r)] << ";";
      for (int d = 0; d < num_dims; ++d) {
        const int gi = groups.group_of[static_cast<std::size_t>(d)][static_cast<std::size_t>(r)];
        if (gi < 0) {
          os << "d" << d << ":-;";
          continue;
        }
        os << "d" << d << ":";
        if (with_colors && !group_order[static_cast<std::size_t>(d)].empty()) {
          os << "g" << group_order[static_cast<std::size_t>(d)][static_cast<std::size_t>(gi)];
        } else {
          os << "m" << member_desc[static_cast<std::size_t>(d)][static_cast<std::size_t>(r)];
        }
        if (with_colors) {
          // Port-sharing incidence: the sorted colours of the members this
          // rank serialises with, per direction. This is what lets refinement
          // see *which* co-members share a rail, not just how many.
          const auto mate_colors = [&](const std::vector<int>& mates) {
            std::vector<int> cs;
            cs.reserve(mates.size());
            for (int m : mates) cs.push_back(color[static_cast<std::size_t>(m)]);
            std::sort(cs.begin(), cs.end());
            os << "[";
            for (int c : cs) os << c << ",";
            os << "]";
          };
          os << "U";
          mate_colors(up_mates[static_cast<std::size_t>(d)][static_cast<std::size_t>(r)]);
          os << "D";
          mate_colors(down_mates[static_cast<std::size_t>(d)][static_cast<std::size_t>(r)]);
        }
        os << ";";
      }
      strings[static_cast<std::size_t>(r)] = os.str();
    }
    return strings;
  };

  const auto refine_to_fixpoint = [&]() {
    int num_colors = *std::max_element(color.begin(), color.end()) + 1;
    for (int round = 0; round <= num_ranks; ++round) {
      // Order groups within each dimension by their sorted member-colour
      // multiset (colours already encode every member's structural
      // descriptor): isomorphic groups containing differently-coloured
      // members pull apart, deterministically across relabellings.
      for (int d = 0; d < num_dims; ++d) {
        const auto& dim = groups.dims[static_cast<std::size_t>(d)];
        std::vector<std::string> keys(dim.groups.size());
        for (std::size_t gi = 0; gi < dim.groups.size(); ++gi) {
          std::vector<int> member_colors;
          for (int r : dim.groups[gi].ranks) {
            member_colors.push_back(color[static_cast<std::size_t>(r)]);
          }
          std::sort(member_colors.begin(), member_colors.end());
          std::ostringstream os;
          for (int c : member_colors) os << c << ",";
          keys[gi] = os.str();
        }
        group_order[static_cast<std::size_t>(d)] = compress(keys);
      }
      color = compress(rank_strings(true));
      const int refined = *std::max_element(color.begin(), color.end()) + 1;
      if (refined == num_colors) break;
      num_colors = refined;
    }
    return num_colors;
  };

  color = compress(rank_strings(false));
  int num_colors = refine_to_fixpoint();

  // Individualisation–refinement: while some colour class is still tied,
  // refinement alone cannot see past the symmetry, so pin one representative
  // of the first tied class (give it a fresh colour) and re-refine. Each pin
  // strictly splits its class, so this terminates within num_ranks rounds and
  // ends with every rank in a singleton class — a true canonical permutation.
  //
  // The representative is the lowest-indexed member. For the symmetric
  // topologies the builders produce, a refinement-stable class is an
  // automorphism orbit, so every choice of representative leads to the same
  // rendering and the hash is relabelling-invariant. On adversarial regular
  // graphs where a stable class is not an orbit, two isomorphic topologies
  // may hash apart — a conservative cache miss, never a false share: equal
  // renderings always exhibit a concrete isomorphism.
  int pin_counter = 0;
  while (num_colors < num_ranks) {
    int target_color = -1;
    int representative = -1;
    std::vector<int> class_size(static_cast<std::size_t>(num_colors), 0);
    for (int r = 0; r < num_ranks; ++r) ++class_size[static_cast<std::size_t>(color[static_cast<std::size_t>(r)])];
    for (int c = 0; c < num_colors && target_color < 0; ++c) {
      if (class_size[static_cast<std::size_t>(c)] > 1) target_color = c;
    }
    for (int r = 0; r < num_ranks; ++r) {
      if (color[static_cast<std::size_t>(r)] == target_color) {
        representative = r;
        break;
      }
    }
    pinned[static_cast<std::size_t>(representative)] = pin_counter++;
    color = compress(rank_strings(true));
    const int split = refine_to_fixpoint();
    if (split <= num_colors) {
      throw std::logic_error("canonicalize: individualisation failed to split a class");
    }
    num_colors = split;
  }

  // Canonical rank order = final colour (all classes are singletons now).
  std::vector<int> ord(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) ord[static_cast<std::size_t>(r)] = r;
  std::sort(ord.begin(), ord.end(), [&](int a, int b) {
    return color[static_cast<std::size_t>(a)] < color[static_cast<std::size_t>(b)];
  });
  out.perm.assign(static_cast<std::size_t>(num_ranks), -1);
  for (int k = 0; k < num_ranks; ++k) out.perm[static_cast<std::size_t>(ord[static_cast<std::size_t>(k)])] = k;

  // Render the decomposition under the canonical permutation. Groups are
  // listed by their smallest canonical member (groups partition the ranks of
  // a dimension, so that is a total order); members in canonical-position
  // order as canonical ranks plus their physical hop ladders.
  std::ostringstream os;
  os << "syccl-canon/v" << kServeVersion << ";ranks=" << num_ranks << ";dims=" << num_dims
     << ";\n";
  for (int d = 0; d < num_dims; ++d) {
    const auto& dim = groups.dims[static_cast<std::size_t>(d)];
    os << "dim" << d << "{tier=" << dim.tier << ";cap=" << dim.capacity_dim
       << ";share=" << std::llround(dim.bandwidth_share * 1e6) << ";\n";
    std::vector<std::pair<int, std::size_t>> order;  // (min canonical member, group index)
    for (std::size_t gi = 0; gi < dim.groups.size(); ++gi) {
      int lo = num_ranks;
      for (int r : dim.groups[gi].ranks) {
        lo = std::min(lo, out.perm[static_cast<std::size_t>(r)]);
      }
      order.emplace_back(lo, gi);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [lo, gi] : order) {
      const auto& g = dim.groups[gi];
      os << " group{n=" << g.size() << ";members=";
      // Members in canonical-rank order. Physical port ids are renumbered by
      // first appearance along that order, so the port-sharing blocks (which
      // members serialise together) render identically for any relabelling
      // that reaches the same canonical order.
      std::vector<int> members(g.ranks);
      std::sort(members.begin(), members.end(), [&](int a, int b) {
        return out.perm[static_cast<std::size_t>(a)] < out.perm[static_cast<std::size_t>(b)];
      });
      std::map<int, int> up_port_id;
      std::map<int, int> down_port_id;
      const auto canon_port = [](std::map<int, int>& ids, int raw) {
        if (raw < 0) return -1;
        return ids.emplace(raw, static_cast<int>(ids.size())).first->second;
      };
      for (int r : members) {
        const int i = g.local_of(r);
        os << out.perm[static_cast<std::size_t>(r)] << ":u"
           << quant_alpha(g.up[static_cast<std::size_t>(i)].alpha) << "/"
           << quant_beta(g.up[static_cast<std::size_t>(i)].beta) << "@p"
           << canon_port(up_port_id, g.up[static_cast<std::size_t>(i)].port_id) << ";d"
           << quant_alpha(g.down[static_cast<std::size_t>(i)].alpha) << "/"
           << quant_beta(g.down[static_cast<std::size_t>(i)].beta) << "@p"
           << canon_port(down_port_id, g.down[static_cast<std::size_t>(i)].port_id) << ";L"
           << ladder[static_cast<std::size_t>(d)][static_cast<std::size_t>(r)] << ",";
      }
      os << "}\n";
    }
    os << "}\n";
  }
  out.rendering = os.str();
  out.hash = fnv1a_hex(out.rendering);
  return out;
}

std::uint64_t size_bucket(std::uint64_t bytes) {
  std::uint64_t bucket = 1024;
  while (bucket < bytes) bucket <<= 1;
  return bucket;
}

std::string options_fingerprint(const core::SynthesisConfig& config) {
  // Every field that can change the winning schedule. num_threads and
  // use_solve_cache are excluded on purpose: results are byte-identical
  // across both (pinned by milp_determinism_test / cache_test).
  std::ostringstream os;
  os << std::hexfloat << "E1=" << config.E1 << ";E2=" << config.E2 << ";R1=" << config.R1
     << ";R2=" << config.R2 << ";ts=" << static_cast<int>(config.two_step)
     << ";coarse={" << solver::SubScheduleCache::options_fingerprint(config.coarse_solver)
     << "};fine={" << solver::SubScheduleCache::options_fingerprint(config.fine_solver)
     << "};sk={st=" << config.sketch.search.max_stages << ";h=" << config.sketch.search.max_hops
     << ";pi=" << static_cast<int>(config.sketch.search.prune_isomorphic)
     << ";pc=" << static_cast<int>(config.sketch.search.prune_consistency)
     << ";ex=" << static_cast<int>(config.sketch.search.exhaustive_counts)
     << ";ms=" << config.sketch.search.max_sketches << ";nb=" << config.sketch.search.node_budget
     << ";se=" << config.sketch.combine.max_share_error
     << ";mo=" << config.sketch.combine.max_outputs
     << ";mf=" << config.sketch.combine.min_fraction
     << ";mp=" << config.sketch.max_prototypes << "};sim={bb=" << config.sim.block_bytes
     << ";mb=" << config.sim.max_blocks << "}";
  return fnv1a_hex(os.str());
}

std::string scenario_key(const CanonicalTopology& canon, coll::CollKind kind,
                         int canonical_root, std::uint64_t bucket_bytes,
                         const std::string& options_fp) {
  std::ostringstream os;
  os << "syccl-serve/v" << kServeVersion << "|topo=" << canon.hash
     << "|ranks=" << canon.num_ranks << "|coll=" << coll::kind_name(kind)
     << "|root=" << canonical_root << "|bucket=" << bucket_bytes << "|opt=" << options_fp;
  return os.str();
}

void apply_rank_map(sim::Schedule& schedule, const std::vector<int>& map) {
  const int n = static_cast<int>(map.size());
  const auto remap = [&](int rank) {
    if (rank < 0 || rank >= n) {
      throw std::invalid_argument("apply_rank_map: rank out of range");
    }
    return map[static_cast<std::size_t>(rank)];
  };
  for (auto& p : schedule.pieces) {
    if (p.origin >= 0) p.origin = remap(p.origin);
    for (int& c : p.contributors) c = remap(c);
  }
  for (auto& op : schedule.ops) {
    op.src = remap(op.src);
    op.dst = remap(op.dst);
  }
}

void apply_rank_map(sim::Schedule& schedule, const std::vector<int>& map,
                    const coll::Collective& from, const coll::Collective& to) {
  if (from.num_chunks() != to.num_chunks()) {
    throw std::invalid_argument("apply_rank_map: chunk count mismatch");
  }
  const int n = static_cast<int>(map.size());
  const auto remap = [&](int rank) {
    if (rank < 0 || rank >= n) {
      throw std::invalid_argument("apply_rank_map: rank out of range");
    }
    return map[static_cast<std::size_t>(rank)];
  };
  const auto key_of = [](int src, std::vector<int> dsts) {
    std::sort(dsts.begin(), dsts.end());
    std::ostringstream os;
    os << src << "|";
    for (int d : dsts) os << d << ",";
    return os.str();
  };
  // Slots: each (src, dsts) image class of `to`, ids in ascending order.
  std::map<std::string, std::vector<int>> slots;
  for (int j = 0; j < to.num_chunks(); ++j) {
    const coll::Chunk& c = to.chunks()[static_cast<std::size_t>(j)];
    slots[key_of(c.src, c.dsts)].push_back(j);
  }
  std::map<std::string, std::size_t> taken;
  std::vector<int> chunk_map(static_cast<std::size_t>(from.num_chunks()), -1);
  for (int i = 0; i < from.num_chunks(); ++i) {
    const coll::Chunk& c = from.chunks()[static_cast<std::size_t>(i)];
    std::vector<int> dsts;
    dsts.reserve(c.dsts.size());
    for (int d : c.dsts) dsts.push_back(remap(d));
    const std::string key = key_of(remap(c.src), std::move(dsts));
    const auto it = slots.find(key);
    std::size_t& used = taken[key];
    if (it == slots.end() || used >= it->second.size()) {
      throw std::invalid_argument("apply_rank_map: target is not a relabelling of source");
    }
    chunk_map[static_cast<std::size_t>(i)] = it->second[used++];
  }
  apply_rank_map(schedule, map);
  for (auto& p : schedule.pieces) {
    if (p.chunk < 0 || p.chunk >= from.num_chunks()) {
      throw std::invalid_argument("apply_rank_map: piece chunk out of range");
    }
    p.chunk = chunk_map[static_cast<std::size_t>(p.chunk)];
  }
}

std::vector<int> invert_permutation(const std::vector<int>& perm) {
  std::vector<int> inv(perm.size(), -1);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const int p = perm[i];
    if (p < 0 || static_cast<std::size_t>(p) >= perm.size() || inv[static_cast<std::size_t>(p)] != -1) {
      throw std::invalid_argument("invert_permutation: not a permutation");
    }
    inv[static_cast<std::size_t>(p)] = static_cast<int>(i);
  }
  return inv;
}

}  // namespace syccl::serve
