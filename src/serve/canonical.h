// Canonical scenario keys for the schedule-compiler service (paper §3.1,
// lifted from groups to whole topologies).
//
// The service's whole point is that isomorphic requests collapse to one
// library entry fleet-wide: two consumers that label the same physical
// cluster differently — or own two identical clusters — must derive the
// same key, and each must receive the stored schedule relabelled into its
// own rank space. This module extends the per-group CanonicalForm machinery
// (topo/groups.h, topo/isomorphism.h) to a whole-topology canonicalisation:
//
//   1. Extract dimensions/groups. Only the raw star abstraction is consumed
//      — not GroupTopology::canonical_form(), whose member order (and the
//      port-sharing block ids inside its signature) breaks structural ties
//      by local index, i.e. by the very caller labelling this module must be
//      invariant to.
//   2. Colour-refine GPU ranks: a rank's initial colour is, per dimension,
//      a label-invariant member descriptor (group size, quantised up/down
//      port α/β, port-sharing block sizes, physical hop ladder). Each round
//      then separates groups by their member-colour multisets and members by
//      the colour multisets of the co-members they share an up/down port
//      with, iterated to a fixed point.
//   3. Individualise-and-refine: while a colour class stays tied, pin one
//      representative (fresh colour) and re-refine, until every class is a
//      singleton. Final colours are the canonical rank permutation.
//   4. Render the full decomposition under that permutation — per dimension
//      tier/capacity/share, per group the members in canonical order with
//      quantised port α/β, port ids renumbered by first canonical
//      appearance, and hop ladders — and hash it (FNV-1a 64).
//
// Equal renderings guarantee a rank bijection that maps group structure
// onto group structure member-by-member, which is everything the
// synthesizer, validator and simulator consume — so a schedule synthesized
// under one labelling is valid under the other after rank remapping. The
// converse direction is conservative: refinement ties can make two
// isomorphic topologies render differently and merely miss the dedup (same
// stance as GroupTopology::CanonicalForm).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coll/collective.h"
#include "core/synthesizer.h"
#include "sim/schedule.h"
#include "topo/groups.h"
#include "topo/topology.h"

namespace syccl::serve {

/// Serve-format version; bumped whenever key derivation, the codec or the
/// library layout changes incompatibly. Part of every scenario key, so a
/// library written by an older format simply misses instead of mis-serving.
/// v2: ScheduleBlob carries a `degraded` flag (deadline-fallback entries),
/// the library index became snapshot + journal.
inline constexpr std::uint32_t kServeVersion = 2;

/// The canonical form of one topology.
struct CanonicalTopology {
  /// Full canonical rendering (the hash preimage). Stored alongside library
  /// entries so hash collisions verify instead of mis-serving.
  std::string rendering;
  /// FNV-1a 64 of `rendering`, hex — the topology component of scenario keys.
  std::string hash;
  /// perm[caller rank] = canonical rank.
  std::vector<int> perm;
  int num_ranks = 0;
};

/// Canonicalises an extracted decomposition. Deterministic; O(n² · dims) in
/// the worst refinement case, microseconds at cluster sizes.
CanonicalTopology canonicalize(const topo::TopologyGroups& groups);

/// Power-of-two size bucket (ceiling), floored at 1 KiB: every request size
/// in (bucket/2, bucket] shares one synthesized schedule, rescaled to the
/// caller's bytes on serve. Piece bytes scale linearly with the collective's
/// chunk size, so the rescale is exact.
std::uint64_t size_bucket(std::uint64_t bytes);

/// Digest of every SynthesisConfig field that can change a synthesized
/// schedule; part of the scenario key so differently-tuned servers never
/// share entries.
std::string options_fingerprint(const core::SynthesisConfig& config);

/// The library key: serve version, canonical topology hash, collective kind,
/// rank count, canonical root, size bucket and options fingerprint.
/// `canonical_root` is perm[caller root] for rooted collectives and -1 for
/// root-less ones — two callers whose roots map to the same canonical rank
/// share the entry, others never do.
std::string scenario_key(const CanonicalTopology& canon, coll::CollKind kind,
                         int canonical_root, std::uint64_t bucket_bytes,
                         const std::string& options_fp);

/// Relabels every rank of `schedule` in place: rank r becomes map[r]
/// (piece origins, reduce contributors and op endpoints; dims are
/// structural and invariant under isomorphism). Throws std::invalid_argument
/// on an out-of-range rank.
void apply_rank_map(sim::Schedule& schedule, const std::vector<int>& map);

/// Rank-relabels `schedule` AND remaps its piece chunk ids. Chunk ids index
/// the collective's chunk list, whose sources/demands are rank-defined, so a
/// pure rank remap leaves them meaning the wrong thing (harmless for
/// AllGather, where every chunk is demanded everywhere, fatal for AllToAll).
/// Chunk c of `from` (the collective in the schedule's current labelling)
/// becomes the chunk of `to` (the same collective under `map`) whose source
/// and demand set are the images of c's; chunks with identical images are
/// interchangeable and matched in order. Throws std::invalid_argument when
/// `to` is not a relabelling of `from`.
void apply_rank_map(sim::Schedule& schedule, const std::vector<int>& map,
                    const coll::Collective& from, const coll::Collective& to);

/// Inverse of a permutation (inv[perm[i]] = i).
std::vector<int> invert_permutation(const std::vector<int>& perm);

/// FNV-1a 64 as lowercase hex — the digest used throughout serve (keys,
/// codec checksums, entry file names).
std::string fnv1a_hex(const std::string& text);
std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t seed = 0);

}  // namespace syccl::serve
