// Persistent on-disk schedule library (the fleet-wide counterpart of the
// in-process core::ScheduleLibrary).
//
// Layout under one directory:
//   index.txt            append-friendly text index: "entry <hex> <file>" /
//                        "evict <hex>" lines; replayed then compacted on
//                        open, so a crash between a file write and an index
//                        append loses at most that one entry.
//   <hex>.sched          one codec blob per entry (hex = fnv1a of the
//                        scenario key).
//   quarantine/          corrupt entry files are *moved* here on open, never
//                        deleted and never served — the request that wanted
//                        one falls back to synthesis while a human keeps the
//                        evidence.
//
// Entries are held decoded-size-accounted in memory (schedules are a few KB;
// the byte bound covers both memory and disk) with LRU eviction: evicting
// removes the file and appends an evict line. get() verifies the stored
// scenario key against the requested one, so an FNV collision reads as a
// miss, never a mis-serve. All public methods are thread-safe — broker
// connection threads and the synthesis pool hit the library concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "serve/codec.h"

namespace syccl::serve {

struct DiskLibraryConfig {
  std::string dir;
  /// Byte bound over encoded entries (LRU eviction).
  std::size_t max_bytes = 256ull << 20;
};

class DiskLibrary {
 public:
  /// Opens (creating the directory if missing) and replays the index.
  /// Unreadable or corrupt entry files are quarantined, not fatal.
  explicit DiskLibrary(DiskLibraryConfig config);

  DiskLibrary(const DiskLibrary&) = delete;
  DiskLibrary& operator=(const DiskLibrary&) = delete;

  /// Returns the blob stored for `scenario_key`, or nullopt.
  std::optional<ScheduleBlob> get(const std::string& scenario_key);

  /// Inserts (or overwrites) the entry, persisting it to disk first. Throws
  /// std::runtime_error if the entry file cannot be written.
  void put(const ScheduleBlob& blob);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t quarantined = 0;  ///< corrupt files moved aside on open
    std::size_t entries = 0;
    std::size_t bytes = 0;  ///< encoded bytes of resident entries
  };
  Stats stats() const;

  const std::string& dir() const { return config_.dir; }
  std::size_t max_bytes() const { return config_.max_bytes; }

 private:
  struct Entry {
    std::string encoded;  ///< full codec blob (what the file holds)
    std::uint64_t last_used = 0;
  };

  void evict_locked();
  std::string file_for(const std::string& scenario_key) const;

  DiskLibraryConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  ///< scenario key -> entry
  std::size_t bytes_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t quarantined_ = 0;
};

}  // namespace syccl::serve
