// Persistent on-disk schedule library (the fleet-wide counterpart of the
// in-process core::ScheduleLibrary), crash-safe by construction.
//
// Layout under one directory:
//   <hex>.sched          one codec blob per entry (hex = fnv1a of the
//                        scenario key), written tmp → write → fsync →
//                        rename → parent-dir fsync, so a crash leaves either
//                        the old bytes or the new bytes, never a mix.
//   index.snapshot       full index ("entry <hex> <file>" lines), rewritten
//                        write-temp + fsync + atomic-rename — never
//                        truncated in place.
//   index.journal        fsynced "entry <hex> <file>" / "evict <hex>" lines
//                        appended since the last snapshot; truncated only
//                        *after* a snapshot lands.
//   index.txt            legacy (v1) append-only index; replayed once as a
//                        journal and removed after the first v2 snapshot.
//   quarantine/          corrupt entry files are *moved* here on open, never
//                        deleted and never served — the request that wanted
//                        one falls back to synthesis while a human keeps the
//                        evidence. If the subdir cannot be created the file
//                        is renamed to <name>.quarantined in place instead.
//
// Durability contract (pinned by the chaos suite, DESIGN.md §4i):
//   * put() returns only after the entry file is fsynced and renamed — a
//     crash at any later point (journal append, snapshot, eviction) loses
//     no acknowledged entry: recovery replays snapshot + journal, skips
//     torn/garbage lines, drops index lines whose file is missing, and
//     *adopts* decodable .sched files the index never heard of (the
//     crash-between-entry-rename-and-journal-append window).
//   * A reopened library never serves bytes that fail the codec checksum or
//     whose key does not hash to their file name — such files quarantine.
//   * Index writes are failpoint-instrumented (serve/failpoints.h); index
//     I/O failures degrade durability (counted in Stats.journal_failures),
//     never availability — put() keeps serving from memory.
//
// Entries are held decoded-size-accounted in memory (schedules are a few KB;
// the byte bound covers both memory and disk) with LRU eviction: evicting
// removes the file and journals an evict line. get() verifies the stored
// scenario key against the requested one, so an FNV collision reads as a
// miss, never a mis-serve. All public methods are thread-safe — broker
// connection threads and the synthesis pool hit the library concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "serve/codec.h"

namespace syccl::serve {

struct DiskLibraryConfig {
  std::string dir;
  /// Byte bound over encoded entries (LRU eviction).
  std::size_t max_bytes = 256ull << 20;
  /// Journal lines accumulated before the library compacts (snapshot +
  /// journal truncate) on its own; opens and flush() always compact.
  std::size_t compact_every = 512;
};

class DiskLibrary {
 public:
  /// What put() did — the broker uses this to count background upgrades.
  enum class PutResult {
    Inserted,            ///< new key
    Replaced,            ///< overwrote an entry of the same grade
    Upgraded,            ///< full-budget blob replaced a degraded one
    RejectedDowngrade,   ///< degraded blob refused: a full entry already exists
  };

  /// Opens (creating the directory if missing), replays snapshot + journal
  /// (+ legacy index.txt), adopts orphans, quarantines corruption, then
  /// compacts. Never fatal on bad entries or index damage.
  explicit DiskLibrary(DiskLibraryConfig config);
  ~DiskLibrary();

  DiskLibrary(const DiskLibrary&) = delete;
  DiskLibrary& operator=(const DiskLibrary&) = delete;

  /// Returns the blob stored for `scenario_key`, or nullopt. An entry whose
  /// bytes no longer decode is dropped and quarantined, not served.
  std::optional<ScheduleBlob> get(const std::string& scenario_key);

  /// Inserts (or overwrites) the entry, persisting the entry file durably
  /// first. A degraded blob never overwrites a full one
  /// (RejectedDowngrade) — the background upgrade that follows a degraded
  /// serve must not be undone by a racing fallback. Throws
  /// std::runtime_error if the entry *file* cannot be written; index
  /// failures only degrade durability (see header comment).
  PutResult put(const ScheduleBlob& blob);

  /// Compacts now: atomic snapshot rewrite, journal truncate. Called on
  /// graceful drain so a restart replays nothing. Returns false (after
  /// counting a journal failure) if the snapshot could not be written.
  bool flush();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t quarantined = 0;  ///< corrupt files moved aside
    std::uint64_t orphans_adopted = 0;  ///< entry files recovered past a lost index line
    std::uint64_t journal_failures = 0;  ///< index writes that failed (durability, not availability)
    std::uint64_t rejected_downgrades = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;  ///< encoded bytes of resident entries
  };
  Stats stats() const;

  const std::string& dir() const { return config_.dir; }
  std::size_t max_bytes() const { return config_.max_bytes; }

 private:
  struct Entry {
    std::string encoded;  ///< full codec blob (what the file holds)
    std::uint64_t last_used = 0;
    bool degraded = false;
  };

  void evict_locked();
  /// Snapshot + journal truncate. Throws on snapshot I/O failure.
  void compact_locked();
  /// Appends one index line to the fsynced journal. Failures are counted,
  /// never thrown — the entry files are the durable source of truth.
  void journal_locked(const std::string& line);
  void quarantine_file(const std::string& file_name);
  std::string file_for(const std::string& scenario_key) const;

  DiskLibraryConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  ///< scenario key -> entry
  int journal_fd_ = -1;
  std::size_t journal_lines_ = 0;
  /// Last journal append died mid-line; the next one leads with '\n' so the
  /// torn tail damages at most itself.
  bool journal_dirty_tail_ = false;
  std::size_t bytes_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t quarantined_ = 0;
  std::uint64_t orphans_adopted_ = 0;
  std::uint64_t journal_failures_ = 0;
  std::uint64_t rejected_downgrades_ = 0;
};

}  // namespace syccl::serve
