// Request broker for the schedule-compiler service: the layer between a
// transport (serve/socket.h, or a test calling it directly) and the
// synthesis pipeline.
//
// Per request: canonicalize the caller's topology, derive the scenario key,
// and then one of three paths —
//   hit    the disk library holds the entry; relabel the stored canonical
//          schedule into the caller's rank space, rescale piece bytes from
//          the synthesis bucket to the caller's size, verify, serve. A hit
//          on a *degraded* entry (deadline fallback, below) additionally
//          re-queues the full-budget synthesis in the background.
//   join   another request for the same key is already synthesizing;
//          block on its shared future instead of synthesizing again
//          (the same miss-coalescing pattern as solver::SubScheduleCache,
//          one level up the stack).
//   miss   admit (bounded by max_in_flight), synthesize at the bucket size
//          on the worker pool, store canonically, serve.
//
// Deadlines (DESIGN.md §4i): a request may carry a synthesis deadline. A
// miss whose full synthesis has not landed by the deadline is answered
// anyway — the broker synthesizes a minimal-budget fallback schedule
// (greedy-only, tiny sketch budgets: see fallback_synthesis_config) on the
// connection thread, marks it `degraded`, and stores it so the next
// requester hits it instead of paying the fallback again. The full
// synthesis keeps running on the pool; when it completes it *upgrades* the
// library entry (the library refuses the reverse transition), so the
// degraded window closes on its own. Every request is answered — full or
// degraded — unless synthesis itself fails.
//
// Thread-safe: transports run one thread per connection; synthesis runs on
// the broker's own pool, so connection threads only ever block on futures —
// never inside the pool (util/thread_pool.h's deadlock caveat). Fallback
// synthesis runs on the connection thread itself for the same reason: at
// deadline expiry the pool is by definition still busy.
//
// Instrumented via obs::MetricsRegistry (counters serve.requests/.hits/
// .misses/.joins/.rejects/.verify_failures/.degraded_hits/.upgrades,
// histograms serve.canon_seconds/.synth_seconds/.request_seconds) plus
// per-broker Stats for tests that must not depend on process-global state.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "core/synthesizer.h"
#include "serve/canonical.h"
#include "serve/library.h"
#include "util/thread_pool.h"

namespace syccl::serve {

class BrokerError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Minimal-budget derivative of `config` for deadline fallbacks: greedy-only
/// solving (no MILP, no fine pass), one prototype sketch, single-candidate
/// filter, one worker thread. Orders of magnitude cheaper than the full
/// budget; the schedules are correct but not competitive, which is exactly
/// what the `degraded` flag communicates.
core::SynthesisConfig fallback_synthesis_config(core::SynthesisConfig config);

struct BrokerConfig {
  /// Synthesis settings; fingerprinted into every scenario key, so brokers
  /// with different tuning never share library entries.
  core::SynthesisConfig synthesis;
  /// Admission bound on concurrently in-flight syntheses; requests beyond
  /// it are rejected with BrokerError instead of queueing without bound.
  std::size_t max_in_flight = 64;
  /// Worker threads for the synthesis pool (0 = hardware concurrency).
  int num_threads = 0;
  /// Run the structural validator on every served schedule (hits and
  /// misses). The α–β re-simulation always runs — it both prices the
  /// schedule under the caller's labelling and rejects unmet demands.
  bool verify_served = true;
  /// Synthesis deadline applied to requests that do not set their own
  /// (seconds, measured from request arrival). 0 = no deadline: block until
  /// the full synthesis lands, the pre-deadline behaviour.
  double default_deadline_seconds = 0.0;
};

struct ServeRequest {
  topo::Topology topology;  ///< the caller's labelling
  coll::CollKind kind = coll::CollKind::AllGather;
  /// Root rank for rooted collectives (Broadcast/Scatter/Gather/Reduce);
  /// ignored otherwise.
  int root = 0;
  std::uint64_t total_bytes = 1 << 20;
  /// Per-request synthesis deadline in seconds. 0 = use the broker's
  /// default; negative = explicitly no deadline regardless of the default.
  double deadline_seconds = 0.0;
};

struct ServeResponse {
  /// Schedule in the caller's rank labelling at the caller's size.
  sim::Schedule schedule;
  /// α–β completion time of `schedule` on the caller's topology (seconds).
  double predicted_time = 0.0;
  std::string scenario_key;
  bool hit = false;     ///< served from the disk library
  bool joined = false;  ///< coalesced onto a concurrent miss's synthesis
  /// Deadline-fallback schedule (fresh or from a degraded library entry):
  /// correct, verified, but synthesized at a minimal budget. A full-budget
  /// upgrade is running (or queued) in the background.
  bool degraded = false;
  /// Synthesis wall-clock this request waited for (0 on library hits).
  double synth_seconds = 0.0;
};

/// Builds the collective a serve request describes. Throws
/// std::invalid_argument for SendRecv (point-to-point; not served) or an
/// out-of-range root.
coll::Collective make_serve_collective(coll::CollKind kind, int num_ranks,
                                       std::uint64_t total_bytes, int root);

class Broker {
 public:
  /// The library must outlive the broker.
  explicit Broker(DiskLibrary& library, BrokerConfig config = {});

  /// Handles one request, blocking until a schedule is available: the full
  /// one, or — past the request's deadline — a degraded fallback. Throws
  /// BrokerError when admission rejects, and propagates synthesis errors.
  ServeResponse handle(const ServeRequest& request);

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;  ///< syntheses this broker initiated
    std::uint64_t joins = 0;   ///< requests coalesced onto an in-flight miss
    std::uint64_t rejects = 0;
    std::uint64_t verify_failures = 0;  ///< hits that failed verification
    std::uint64_t degraded_hits = 0;    ///< responses served degraded
    std::uint64_t upgrades = 0;  ///< background syntheses that replaced a degraded entry
  };
  Stats stats() const;

  const BrokerConfig& config() const { return config_; }

 private:
  using BlobPtr = std::shared_ptr<const ScheduleBlob>;

  /// What a pool synthesis hands its waiters. Failures travel as a message,
  /// not a live exception: set_exception/rethrow would share one exception
  /// object between the pool thread (releasing its reference) and every
  /// requester thread reading what() — each waiter instead throws its own
  /// BrokerError from `error`.
  struct SynthOutcome {
    BlobPtr blob;       ///< null on failure
    std::string error;  ///< failure message when blob is null
  };

  /// Returns the in-flight synthesis future for `key`, starting one on the
  /// pool if absent (`started` reports which). The task itself removes the
  /// in-flight entry when it finishes — requesters may stop waiting at
  /// their deadline, so completion cannot be their job. When a start is
  /// needed but admission is full: throws BrokerError if `reject_throws`
  /// (foreground misses), else returns an invalid future (background
  /// upgrades just wait for a quieter moment).
  std::shared_future<SynthOutcome> join_or_start(const ServeRequest& request,
                                                 const CanonicalTopology& canon,
                                                 const std::string& key, std::uint64_t bucket,
                                                 bool& started, bool reject_throws);

  /// Synthesizes at the bucket size under `synth`, stores the blob
  /// canonically (marked `degraded`), and returns it. Library index
  /// failures are swallowed — an unsaved schedule still answers the
  /// request.
  BlobPtr synthesize_blob(const ServeRequest& request, const CanonicalTopology& canon,
                          const std::string& key, std::uint64_t bucket,
                          const core::SynthesisConfig& synth, bool degraded);

  DiskLibrary& library_;
  BrokerConfig config_;

  std::mutex mutex_;
  /// In-flight miss coalescing: scenario key -> the synthesis future every
  /// concurrent requester of that key waits on.
  std::map<std::string, std::shared_future<SynthOutcome>> in_flight_;

  mutable std::mutex stats_mutex_;
  Stats stats_;

  /// Declared last: pool tasks erase their own in_flight_ entries, so the
  /// pool must drain (its destructor joins) before mutex_ and the map go.
  util::ThreadPool pool_;
};

}  // namespace syccl::serve
