// Request broker for the schedule-compiler service: the layer between a
// transport (serve/socket.h, or a test calling it directly) and the
// synthesis pipeline.
//
// Per request: canonicalize the caller's topology, derive the scenario key,
// and then one of three paths —
//   hit    the disk library holds the entry; relabel the stored canonical
//          schedule into the caller's rank space, rescale piece bytes from
//          the synthesis bucket to the caller's size, verify, serve.
//   join   another request for the same key is already synthesizing;
//          block on its shared future instead of synthesizing again
//          (the same miss-coalescing pattern as solver::SubScheduleCache,
//          one level up the stack).
//   miss   admit (bounded by max_in_flight), synthesize at the bucket size
//          on the worker pool, store canonically, serve.
//
// Thread-safe: transports run one thread per connection; synthesis runs on
// the broker's own pool, so connection threads only ever block on futures —
// never inside the pool (util/thread_pool.h's deadlock caveat).
//
// Instrumented via obs::MetricsRegistry (counters serve.requests/.hits/
// .misses/.joins/.rejects/.verify_failures, histograms serve.canon_seconds/
// .synth_seconds/.request_seconds) plus per-broker Stats for tests that must
// not depend on process-global state.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "core/synthesizer.h"
#include "serve/canonical.h"
#include "serve/library.h"
#include "util/thread_pool.h"

namespace syccl::serve {

class BrokerError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct BrokerConfig {
  /// Synthesis settings; fingerprinted into every scenario key, so brokers
  /// with different tuning never share library entries.
  core::SynthesisConfig synthesis;
  /// Admission bound on concurrently in-flight syntheses; requests beyond
  /// it are rejected with BrokerError instead of queueing without bound.
  std::size_t max_in_flight = 64;
  /// Worker threads for the synthesis pool (0 = hardware concurrency).
  int num_threads = 0;
  /// Run the structural validator on every served schedule (hits and
  /// misses). The α–β re-simulation always runs — it both prices the
  /// schedule under the caller's labelling and rejects unmet demands.
  bool verify_served = true;
};

struct ServeRequest {
  topo::Topology topology;  ///< the caller's labelling
  coll::CollKind kind = coll::CollKind::AllGather;
  /// Root rank for rooted collectives (Broadcast/Scatter/Gather/Reduce);
  /// ignored otherwise.
  int root = 0;
  std::uint64_t total_bytes = 1 << 20;
};

struct ServeResponse {
  /// Schedule in the caller's rank labelling at the caller's size.
  sim::Schedule schedule;
  /// α–β completion time of `schedule` on the caller's topology (seconds).
  double predicted_time = 0.0;
  std::string scenario_key;
  bool hit = false;     ///< served from the disk library
  bool joined = false;  ///< coalesced onto a concurrent miss's synthesis
  /// Synthesis wall-clock this request waited for (0 on library hits).
  double synth_seconds = 0.0;
};

/// Builds the collective a serve request describes. Throws
/// std::invalid_argument for SendRecv (point-to-point; not served) or an
/// out-of-range root.
coll::Collective make_serve_collective(coll::CollKind kind, int num_ranks,
                                       std::uint64_t total_bytes, int root);

class Broker {
 public:
  /// The library must outlive the broker.
  explicit Broker(DiskLibrary& library, BrokerConfig config = {});

  /// Handles one request, blocking until the schedule is available. Throws
  /// BrokerError when admission rejects, and propagates synthesis errors.
  ServeResponse handle(const ServeRequest& request);

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;  ///< syntheses this broker initiated
    std::uint64_t joins = 0;   ///< requests coalesced onto an in-flight miss
    std::uint64_t rejects = 0;
    std::uint64_t verify_failures = 0;  ///< hits that failed verification
  };
  Stats stats() const;

  const BrokerConfig& config() const { return config_; }

 private:
  std::shared_ptr<const ScheduleBlob> synthesize_blob(const ServeRequest& request,
                                                      const CanonicalTopology& canon,
                                                      const std::string& key,
                                                      std::uint64_t bucket);

  DiskLibrary& library_;
  BrokerConfig config_;
  util::ThreadPool pool_;

  std::mutex mutex_;
  /// In-flight miss coalescing: scenario key -> the synthesis future every
  /// concurrent requester of that key waits on.
  std::map<std::string, std::shared_future<std::shared_ptr<const ScheduleBlob>>> in_flight_;

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace syccl::serve
