#include "serve/codec.h"

#include <cstring>

#include "serve/canonical.h"
#include "util/failpoint.h"

namespace syccl::serve {

namespace {

constexpr char kMagic[4] = {'S', 'Y', 'S', 'B'};

class Writer {
 public:
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i32(std::int32_t v) { raw(&v, sizeof(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }
  void ints(const std::vector<int>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (int x : v) i32(x);
  }

  std::string take() { return std::move(out_); }

 private:
  void raw(const void* p, std::size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint32_t u32() { return fixed<std::uint32_t>(); }
  std::uint64_t u64() { return fixed<std::uint64_t>(); }
  std::int32_t i32() { return fixed<std::int32_t>(); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    require(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  std::vector<int> ints() {
    const std::uint32_t n = u32();
    // Elements are ≥4 bytes each; bounding up front prevents a corrupt count
    // from triggering a giant allocation before the read fails.
    require(static_cast<std::size_t>(n) * sizeof(std::int32_t));
    std::vector<int> v(n);
    for (std::uint32_t i = 0; i < n; ++i) v[i] = i32();
    return v;
  }
  bool done() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  T fixed() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void require(std::size_t n) {
    if (data_.size() - pos_ < n) throw CodecError("truncated serve blob");
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encode_blob(const ScheduleBlob& blob) {
  Writer payload;
  payload.str(blob.scenario_key);
  payload.i32(blob.num_ranks);
  payload.u64(blob.bucket_bytes);
  payload.f64(blob.predicted_time);
  payload.u32(blob.degraded ? 1 : 0);
  payload.str(blob.schedule.name);
  payload.u32(static_cast<std::uint32_t>(blob.schedule.pieces.size()));
  for (const sim::Piece& p : blob.schedule.pieces) {
    payload.i32(p.chunk);
    payload.f64(p.bytes);
    payload.i32(p.origin);
    payload.u32(p.reduce ? 1 : 0);
    payload.ints(p.contributors);
  }
  payload.u32(static_cast<std::uint32_t>(blob.schedule.ops.size()));
  for (const sim::TransferOp& op : blob.schedule.ops) {
    payload.i32(op.piece);
    payload.i32(op.src);
    payload.i32(op.dst);
    payload.i32(op.dim);
    payload.i32(op.phase);
  }
  const std::string body = payload.take();

  Writer framed;
  framed.u32(kServeVersion);
  framed.u64(body.size());
  std::string result(kMagic, sizeof(kMagic));
  result += framed.take();
  result += body;
  Writer tail;
  tail.u64(fnv1a(body.data(), body.size()));
  result += tail.take();
  return result;
}

ScheduleBlob decode_blob(std::string_view data) {
  util::failpoint("serve.codec.decode");  // error mode: every blob "corrupt"
  if (data.size() < 4 || std::memcmp(data.data(), kMagic, 4) != 0) {
    throw CodecError("bad serve blob magic");
  }
  Reader in(data.substr(4));
  const std::uint32_t version = in.u32();
  if (version != kServeVersion) {
    throw CodecError("unsupported serve blob version " + std::to_string(version));
  }
  const std::uint64_t body_size = in.u64();
  const std::size_t header_size = 4 + sizeof(std::uint32_t) + sizeof(std::uint64_t);
  if (data.size() != header_size + body_size + sizeof(std::uint64_t)) {
    throw CodecError("serve blob size mismatch");
  }
  const std::string_view body = data.substr(header_size, body_size);
  std::uint64_t stored_checksum;
  std::memcpy(&stored_checksum, data.data() + header_size + body_size, sizeof(stored_checksum));
  if (fnv1a(body.data(), body.size()) != stored_checksum) {
    throw CodecError("serve blob checksum mismatch");
  }

  Reader r(body);
  ScheduleBlob blob;
  blob.scenario_key = r.str();
  blob.num_ranks = r.i32();
  blob.bucket_bytes = r.u64();
  blob.predicted_time = r.f64();
  blob.degraded = r.u32() != 0;
  blob.schedule.name = r.str();
  const std::uint32_t num_pieces = r.u32();
  blob.schedule.pieces.reserve(num_pieces);
  for (std::uint32_t i = 0; i < num_pieces; ++i) {
    sim::Piece p;
    p.chunk = r.i32();
    p.bytes = r.f64();
    p.origin = r.i32();
    p.reduce = r.u32() != 0;
    p.contributors = r.ints();
    blob.schedule.pieces.push_back(std::move(p));
  }
  const std::uint32_t num_ops = r.u32();
  blob.schedule.ops.reserve(num_ops);
  for (std::uint32_t i = 0; i < num_ops; ++i) {
    sim::TransferOp op;
    op.piece = r.i32();
    op.src = r.i32();
    op.dst = r.i32();
    op.dim = r.i32();
    op.phase = r.i32();
    blob.schedule.ops.push_back(op);
  }
  if (!r.done()) throw CodecError("trailing bytes in serve blob payload");
  return blob;
}

}  // namespace syccl::serve
