// AF_UNIX transport for the schedule-compiler service.
//
// A local stream socket is the right scope for this reproduction: the
// service shares a machine (or a mount namespace) with its clients, the
// kernel handles framing-free byte streams, and there is no auth surface.
// The listener runs one thread per accepted connection — connections are
// few and long-lived, and the broker already serialises what must be
// serialised — so a slow synthesis on one connection never blocks another
// connection's library hits.
#pragma once

#include <memory>
#include <string>

#include "serve/protocol.h"

namespace syccl::serve {

/// Buffered protocol stream over a connected file descriptor; owns the fd.
class FdStream : public Stream {
 public:
  explicit FdStream(int fd) : fd_(fd) {}
  ~FdStream() override;

  FdStream(const FdStream&) = delete;
  FdStream& operator=(const FdStream&) = delete;

  bool read_line(std::string& line) override;
  bool read_exact(std::string& out, std::size_t n) override;
  bool write_all(std::string_view data) override;

 private:
  /// Pulls more bytes into buffer_. False on EOF/error.
  bool fill();

  int fd_;
  std::string buffer_;
  std::size_t pos_ = 0;  ///< consumed prefix of buffer_
};

/// Listening unix-domain server. Construction binds and listens (replacing
/// a stale socket file at `path`); destruction closes and unlinks.
class UnixServer {
 public:
  explicit UnixServer(const std::string& path);
  ~UnixServer();

  UnixServer(const UnixServer&) = delete;
  UnixServer& operator=(const UnixServer&) = delete;

  /// Accept loop, one serve_connection thread per client. Returns the total
  /// REQUEST count once `max_requests` (> 0) have been handled and their
  /// connections drained; max_requests <= 0 serves until the process dies.
  int serve(Broker& broker, DiskLibrary& library, int max_requests = -1);

  const std::string& path() const { return path_; }

 private:
  int listen_fd_ = -1;
  std::string path_;
};

/// Connects to a serve socket. Throws std::runtime_error on failure.
std::unique_ptr<Stream> connect_unix(const std::string& path);

}  // namespace syccl::serve
