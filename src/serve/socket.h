// AF_UNIX transport for the schedule-compiler service.
//
// A local stream socket is the right scope for this reproduction: the
// service shares a machine (or a mount namespace) with its clients, the
// kernel handles framing-free byte streams, and there is no auth surface.
// The listener runs one thread per accepted connection — connections are
// few and long-lived, and the broker already serialises what must be
// serialised — so a slow synthesis on one connection never blocks another
// connection's library hits.
//
// Hardening (DESIGN.md §4i): accepted connections run with SO_RCVTIMEO /
// SO_SNDTIMEO ticks so a wedged peer can never pin a thread forever — an
// idle timeout closes the connection, and a drain flag (set from a signal
// handler via begin_drain()) interrupts blocked I/O within one tick. Sends
// use MSG_NOSIGNAL, so a peer that disappears mid-response surfaces as a
// write error on that connection instead of a process-wide SIGPIPE. Request
// lines are length-bounded (a payload-less client cannot balloon the read
// buffer).
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "serve/protocol.h"

namespace syccl::serve {

struct FdStreamOptions {
  /// Close the stream after this long with no bytes moving (seconds).
  /// 0 = wait forever (client-side default; servers should bound it).
  double idle_timeout_seconds = 0.0;
  /// When set and true, blocked reads/writes fail within one timeout tick —
  /// how a drain interrupts connections parked in read_line.
  const std::atomic<bool>* stop = nullptr;
};

/// Buffered protocol stream over a connected file descriptor; owns the fd.
class FdStream : public Stream {
 public:
  explicit FdStream(int fd, FdStreamOptions options = {});
  ~FdStream() override;

  FdStream(const FdStream&) = delete;
  FdStream& operator=(const FdStream&) = delete;

  bool read_line(std::string& line) override;
  bool read_exact(std::string& out, std::size_t n) override;
  bool write_all(std::string_view data) override;

 private:
  /// Pulls more bytes into buffer_. False on EOF, error, idle timeout, or
  /// stop flag.
  bool fill();
  bool stopped() const { return options_.stop && options_.stop->load(std::memory_order_relaxed); }

  int fd_;
  FdStreamOptions options_;
  std::string buffer_;
  std::size_t pos_ = 0;  ///< consumed prefix of buffer_
};

/// Listening unix-domain server. Construction binds and listens (replacing
/// a stale socket file at `path`); destruction closes and unlinks.
class UnixServer {
 public:
  explicit UnixServer(const std::string& path);
  ~UnixServer();

  UnixServer(const UnixServer&) = delete;
  UnixServer& operator=(const UnixServer&) = delete;

  /// Accept loop, one serve_connection thread per client. Returns the total
  /// REQUEST count once `max_requests` (> 0) have been handled and their
  /// connections drained, or after begin_drain(); max_requests <= 0 serves
  /// until one of those. `idle_timeout_seconds` bounds how long an accepted
  /// connection may sit with no traffic (0 = forever).
  int serve(Broker& broker, DiskLibrary& library, int max_requests = -1,
            double idle_timeout_seconds = 0.0);

  /// Starts a graceful drain: stop accepting, let in-flight requests
  /// finish, then serve() returns (the caller flushes the library).
  /// Async-signal-safe — exactly what a SIGTERM handler may call.
  void begin_drain();
  bool draining() const { return drain_.load(std::memory_order_relaxed); }

  const std::string& path() const { return path_; }

 private:
  int listen_fd_ = -1;
  std::atomic<bool> drain_{false};
  std::string path_;
};

/// Connects to a serve socket; `timeout_seconds` bounds each read/write on
/// the resulting stream (0 = block forever). Throws std::runtime_error on
/// connect failure.
std::unique_ptr<Stream> connect_unix(const std::string& path, double timeout_seconds = 0.0);

}  // namespace syccl::serve
