#include "serve/socket.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "serve/broker.h"
#include "util/failpoint.h"

namespace syccl::serve {

namespace {

/// A request line that grows past this without a newline is an attack or a
/// desynchronised peer, not a command (counted payloads don't go through
/// read_line).
constexpr std::size_t kMaxLineBytes = 1 << 20;

/// SO_RCVTIMEO/SO_SNDTIMEO tick: how often blocked I/O wakes to check the
/// stop flag and the idle budget.
constexpr double kTimeoutTickSeconds = 0.2;

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

void set_socket_timeouts(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  // Best-effort: a non-socket fd (tests wrapping a pipe) just stays blocking.
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Evaluates a socket failpoint inside an I/O retry loop. Returns false when
/// the failpoint says the operation fails (error mode); an EINTR action is
/// absorbed as one simulated interrupted-syscall retry.
bool socket_failpoint_ok(const char* name) {
  try {
    while (const auto fp = util::failpoint(name)) {
      if (fp->mode == util::FailpointMode::Eintr) continue;  // storm: re-evaluate
      break;  // torn/crash budgets are file-I/O notions; ignore on sockets
    }
  } catch (const util::FailpointError&) {
    return false;
  }
  return true;
}

}  // namespace

FdStream::FdStream(int fd, FdStreamOptions options) : fd_(fd), options_(options) {
  if (options_.idle_timeout_seconds > 0.0 || options_.stop != nullptr) {
    set_socket_timeouts(fd_, options_.idle_timeout_seconds > 0.0
                                 ? std::min(kTimeoutTickSeconds, options_.idle_timeout_seconds)
                                 : kTimeoutTickSeconds);
  }
}

FdStream::~FdStream() {
  if (fd_ >= 0) ::close(fd_);
}

bool FdStream::fill() {
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  const auto idle_start = std::chrono::steady_clock::now();
  char chunk[4096];
  for (;;) {
    if (!socket_failpoint_ok("serve.socket.read")) return false;
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
    if (n == 0) return false;  // EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Timeout tick, not an error: give up only on drain or idle budget.
      if (stopped()) return false;
      if (options_.idle_timeout_seconds > 0.0 &&
          seconds_since(idle_start) >= options_.idle_timeout_seconds) {
        return false;
      }
      continue;
    }
    return false;
  }
}

bool FdStream::read_line(std::string& line) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n', pos_);
    if (nl != std::string::npos) {
      line.assign(buffer_, pos_, nl - pos_);
      pos_ = nl + 1;
      return true;
    }
    if (buffer_.size() - pos_ > kMaxLineBytes) return false;  // bounded lines
    if (!fill()) return false;
  }
}

bool FdStream::read_exact(std::string& out, std::size_t n) {
  while (buffer_.size() - pos_ < n) {
    if (!fill()) return false;
  }
  out.assign(buffer_, pos_, n);
  pos_ += n;
  return true;
}

bool FdStream::write_all(std::string_view data) {
  const auto idle_start = std::chrono::steady_clock::now();
  std::size_t written = 0;
  while (written < data.size()) {
    if (!socket_failpoint_ok("serve.socket.write")) return false;
    // MSG_NOSIGNAL: a peer that vanished mid-response is an EPIPE on this
    // connection, never a process-killing SIGPIPE.
    const ssize_t n =
        ::send(fd_, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ENOTSOCK) {
        // Not a socket (tests wrap pipes): plain write, SIGPIPE handled by
        // the tools ignoring it process-wide.
        const ssize_t w = ::write(fd_, data.data() + written, data.size() - written);
        if (w < 0) {
          if (errno == EINTR) continue;
          return false;
        }
        written += static_cast<std::size_t>(w);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (stopped()) return false;
        if (options_.idle_timeout_seconds > 0.0 &&
            seconds_since(idle_start) >= options_.idle_timeout_seconds) {
          return false;
        }
        continue;
      }
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

UnixServer::UnixServer(const std::string& path) : path_(path) {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  const sockaddr_un addr = make_addr(path_);
  ::unlink(path_.c_str());  // replace a stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error("cannot listen on " + path_ + ": " + err);
  }
}

UnixServer::~UnixServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(path_.c_str());
}

void UnixServer::begin_drain() {
  // Only async-signal-safe operations: an atomic store and the shutdown(2)
  // syscall, which wakes the blocked accept() so serve() can wind down.
  drain_.store(true, std::memory_order_relaxed);
  ::shutdown(listen_fd_, SHUT_RDWR);
}

int UnixServer::serve(Broker& broker, DiskLibrary& library, int max_requests,
                      double idle_timeout_seconds) {
  std::atomic<int> handled{0};
  std::vector<std::thread> connections;
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && !draining()) continue;
      break;  // drain begun, budget reached, or fatal error
    }
    if (draining()) {
      ::close(fd);  // raced past shutdown; not serving new connections
      continue;
    }
    connections.emplace_back(
        [this, fd, &broker, &library, &handled, max_requests, idle_timeout_seconds] {
          FdStreamOptions options;
          options.idle_timeout_seconds = idle_timeout_seconds;
          options.stop = &drain_;
          FdStream stream(fd, options);
          const int n = serve_connection(stream, broker, library, &drain_);
          if (max_requests > 0 && handled.fetch_add(n) + n >= max_requests) {
            // Budget reached: wake the accept loop so serve() can return.
            begin_drain();
          } else if (max_requests <= 0) {
            handled.fetch_add(n);
          }
        });
  }
  for (std::thread& t : connections) t.join();
  return handled.load();
}

std::unique_ptr<Stream> connect_unix(const std::string& path, double timeout_seconds) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  const sockaddr_un addr = make_addr(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("cannot connect to " + path + ": " + err);
  }
  FdStreamOptions options;
  options.idle_timeout_seconds = timeout_seconds;
  return std::make_unique<FdStream>(fd, options);
}

}  // namespace syccl::serve
