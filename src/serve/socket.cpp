#include "serve/socket.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "serve/broker.h"

namespace syccl::serve {

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

FdStream::~FdStream() {
  if (fd_ >= 0) ::close(fd_);
}

bool FdStream::fill() {
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  char chunk[4096];
  ssize_t n;
  do {
    n = ::read(fd_, chunk, sizeof(chunk));
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return false;
  buffer_.append(chunk, static_cast<std::size_t>(n));
  return true;
}

bool FdStream::read_line(std::string& line) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n', pos_);
    if (nl != std::string::npos) {
      line.assign(buffer_, pos_, nl - pos_);
      pos_ = nl + 1;
      return true;
    }
    if (!fill()) return false;
  }
}

bool FdStream::read_exact(std::string& out, std::size_t n) {
  while (buffer_.size() - pos_ < n) {
    if (!fill()) return false;
  }
  out.assign(buffer_, pos_, n);
  pos_ += n;
  return true;
}

bool FdStream::write_all(std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd_, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

UnixServer::UnixServer(const std::string& path) : path_(path) {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  const sockaddr_un addr = make_addr(path_);
  ::unlink(path_.c_str());  // replace a stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error("cannot listen on " + path_ + ": " + err);
  }
}

UnixServer::~UnixServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(path_.c_str());
}

int UnixServer::serve(Broker& broker, DiskLibrary& library, int max_requests) {
  std::atomic<int> handled{0};
  std::vector<std::thread> connections;
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (request budget reached) or fatal error
    }
    connections.emplace_back([this, fd, &broker, &library, &handled, max_requests] {
      FdStream stream(fd);
      const int n = serve_connection(stream, broker, library);
      if (max_requests > 0 && handled.fetch_add(n) + n >= max_requests) {
        // Budget reached: wake the accept loop so serve() can return.
        ::shutdown(listen_fd_, SHUT_RDWR);
      }
    });
  }
  for (std::thread& t : connections) t.join();
  return handled.load();
}

std::unique_ptr<Stream> connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  const sockaddr_un addr = make_addr(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("cannot connect to " + path + ": " + err);
  }
  return std::make_unique<FdStream>(fd);
}

}  // namespace syccl::serve
