// Training-workload collective traces (paper §7.5, Table 6).
//
// The paper traces the collective calls of GPT-3 6.7B and Llama3-8B under
// data parallelism (with a distributed optimizer) and tensor parallelism,
// then synthesizes schedules for the traced (collective, size) pairs. We
// derive those traces analytically from the published model configurations:
//   DP  — per iteration: ReduceScatter(gradients) + AllGather(parameters)
//         (ZeRO-1 distributed optimizer).
//   TP  — per transformer layer, with sequence parallelism: AllGather +
//         ReduceScatter around attention and around the MLP, in both the
//         forward and backward passes (Megatron-LM style).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coll/collective.h"

namespace syccl::training {

struct ModelSpec {
  std::string name;
  std::uint64_t parameters = 0;
  int layers = 0;
  int hidden = 0;
  int ffn = 0;
  int seq_len = 0;
};

/// GPT-3 6.7B (Brown et al.): 32 layers, hidden 4096, ffn 16384.
ModelSpec gpt3_6p7b();
/// Llama3-8B: 32 layers, hidden 4096, ffn 14336 (GQA).
ModelSpec llama3_8b();

enum class Parallelism { DataParallel, TensorParallel };

const char* parallelism_name(Parallelism p);

struct TrainSetup {
  ModelSpec model;
  Parallelism mode = Parallelism::DataParallel;
  int num_gpus = 16;
  /// Tokens processed per iteration (global batch × sequence length).
  std::uint64_t batch_tokens = 0;
  double dtype_bytes = 2.0;  ///< bf16
};

/// One traced collective call pattern: `count` invocations of `kind` with
/// nccl-tests-convention `bytes` each.
struct CollectiveCall {
  coll::CollKind kind = coll::CollKind::AllGather;
  std::uint64_t bytes = 0;
  int count = 0;

  coll::Collective materialise(int num_gpus) const;
};

/// The per-iteration collective trace of a setup.
std::vector<CollectiveCall> trace_iteration(const TrainSetup& setup);

}  // namespace syccl::training
