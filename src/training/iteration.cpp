#include "training/iteration.h"

#include <stdexcept>

namespace syccl::training {

double compute_time(const TrainSetup& setup, const IterationModel& model) {
  if (model.gpu_flops <= 0) throw std::invalid_argument("gpu_flops must be positive");
  // 6 FLOPs per parameter per token (fwd 2 + bwd 4), split across GPUs: DP
  // splits tokens, TP splits parameters — either way per-GPU work is
  // 6·P·T / N.
  const double flops = 6.0 * static_cast<double>(setup.model.parameters) *
                       static_cast<double>(setup.batch_tokens);
  return flops / (static_cast<double>(setup.num_gpus) * model.gpu_flops);
}

double iteration_time(const TrainSetup& setup, const IterationModel& model,
                      const CollectiveTimer& timer) {
  const double overlap =
      setup.mode == Parallelism::DataParallel ? model.overlap_dp : model.overlap_tp;
  double comm = 0.0;
  for (const CollectiveCall& call : trace_iteration(setup)) {
    const coll::Collective coll = call.materialise(setup.num_gpus);
    comm += call.count * timer(coll);
  }
  return compute_time(setup, model) + (1.0 - overlap) * comm;
}

}  // namespace syccl::training
