#include "training/trace.h"

#include <stdexcept>

namespace syccl::training {

ModelSpec gpt3_6p7b() {
  ModelSpec m;
  m.name = "GPT3-6.7B";
  m.parameters = 6'700'000'000ull;
  m.layers = 32;
  m.hidden = 4096;
  m.ffn = 16384;
  m.seq_len = 2048;
  return m;
}

ModelSpec llama3_8b() {
  ModelSpec m;
  m.name = "Llama3-8B";
  m.parameters = 8'030'000'000ull;
  m.layers = 32;
  m.hidden = 4096;
  m.ffn = 14336;
  m.seq_len = 8192;
  return m;
}

const char* parallelism_name(Parallelism p) {
  return p == Parallelism::DataParallel ? "DP" : "TP";
}

coll::Collective CollectiveCall::materialise(int num_gpus) const {
  switch (kind) {
    case coll::CollKind::AllGather: return coll::make_allgather(num_gpus, bytes);
    case coll::CollKind::ReduceScatter: return coll::make_reduce_scatter(num_gpus, bytes);
    case coll::CollKind::AllReduce: return coll::make_allreduce(num_gpus, bytes);
    case coll::CollKind::AllToAll: return coll::make_alltoall(num_gpus, bytes);
    default: throw std::invalid_argument("unsupported traced collective");
  }
}

std::vector<CollectiveCall> trace_iteration(const TrainSetup& setup) {
  if (setup.num_gpus < 2) throw std::invalid_argument("training needs >= 2 GPUs");
  if (setup.batch_tokens == 0) throw std::invalid_argument("batch_tokens must be positive");
  std::vector<CollectiveCall> out;

  if (setup.mode == Parallelism::DataParallel) {
    // ZeRO-1: gradients reduce-scattered once per iteration, updated shards
    // gathered back (paper: "ReduceScatter and AllGather are the primary
    // collective communication operations").
    const auto bytes =
        static_cast<std::uint64_t>(static_cast<double>(setup.model.parameters) *
                                   setup.dtype_bytes);
    out.push_back({coll::CollKind::ReduceScatter, bytes, 1});
    out.push_back({coll::CollKind::AllGather, bytes, 1});
    return out;
  }

  // Tensor parallelism with sequence parallelism: per layer, AG before and
  // RS after each of the two parallel blocks (attention, MLP), in forward
  // and backward — 4 AllGathers and 4 ReduceScatters per layer per
  // iteration. Activation buffer: batch_tokens × hidden × dtype.
  const auto act_bytes = static_cast<std::uint64_t>(
      static_cast<double>(setup.batch_tokens) * setup.model.hidden * setup.dtype_bytes);
  out.push_back({coll::CollKind::AllGather, act_bytes, 4 * setup.model.layers});
  out.push_back({coll::CollKind::ReduceScatter, act_bytes, 4 * setup.model.layers});
  return out;
}

}  // namespace syccl::training
