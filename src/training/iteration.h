// Iteration-time model for end-to-end training comparisons (Table 6).
//
// t_iter = t_compute + Σ (1 − overlap) · count · t_collective. Compute time
// comes from the standard 6·P·T FLOP estimate at an effective per-GPU
// throughput; DP gradient communication partially overlaps the backward
// pass, TP collectives sit on the critical path.
#pragma once

#include <functional>

#include "training/trace.h"

namespace syccl::training {

struct IterationModel {
  /// Effective per-GPU throughput (A100 bf16 with typical MFU).
  double gpu_flops = 150e12;
  /// Fraction of DP communication hidden behind the backward pass.
  double overlap_dp = 0.5;
  /// Fraction of TP communication hidden (sequence-parallel TP exposes it).
  double overlap_tp = 0.0;
};

/// Compute-only time per iteration, seconds.
double compute_time(const TrainSetup& setup, const IterationModel& model);

/// Timer: completion time (seconds) of one collective on the cluster.
using CollectiveTimer = std::function<double(const coll::Collective&)>;

/// Full iteration time under a schedule family represented by `timer`.
double iteration_time(const TrainSetup& setup, const IterationModel& model,
                      const CollectiveTimer& timer);

}  // namespace syccl::training
