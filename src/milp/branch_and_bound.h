// Mixed-integer linear programming by LP-based branch and bound.
//
// This module plays the role of the commercial MILP solver (Gurobi) in the
// paper's pipeline. Best-first search over LP relaxations. A warm-start
// incumbent (from the greedy scheduler, §5.3) both bounds the search and
// guarantees a feasible answer under node/time limits — mirroring how the
// paper runs Gurobi with a timeout and keeps the best incumbent.
//
// Node LPs are re-solved warm: one lp::SimplexSolver is built per MILP
// instance and each node re-enters from the previous basis via dual simplex
// (bound changes leave the basis dual feasible). Nodes store only their
// branching delta plus the parent's basis snapshot; bounds are materialized
// on pop. A cheap per-node presolve propagates the branched bound through
// the rows that contain it and can prune the node without an LP call.
// Branching uses pseudocosts (seeded from objective coefficients, updated
// from observed per-branch degradation); most-fractional selection remains
// available as a toggle.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "lp/simplex.h"

namespace syccl::milp {

struct MilpProblem {
  lp::Problem lp;
  /// is_integer[v] — variable v must take an integer value.
  std::vector<bool> is_integer;
};

/// External dual-bound oracle consulted by the branch and bound in addition
/// to the node LP relaxation (implemented by lp::FlowRelaxation, which
/// relaxes the epoch encoding to a multi-commodity flow LP). Both methods
/// receive the full per-variable bound box of the (root or current) node and
/// must return a bound that never exceeds the best integer objective
/// attainable inside that box; `infeasible` asserts the box contains no
/// integer-feasible point at all.
class DualBoundProvider {
 public:
  struct Result {
    bool infeasible = false;
    double bound = -lp::kInf;  ///< lower bound on the MILP objective in the box
    long lp_iterations = 0;    ///< pivots spent producing it
  };

  virtual ~DualBoundProvider() = default;
  /// Bound for the root box. May use strengthenings that are only valid
  /// against optimal solutions (e.g. no-duplicate-send caps).
  virtual Result root_bound(const std::vector<double>& lower,
                            const std::vector<double>& upper) = 0;
  /// Bound for an interior node box. Must stay sound under arbitrary forced
  /// variable fixings (branching can force redundant work).
  virtual Result node_bound(const std::vector<double>& lower,
                            const std::vector<double>& upper) = 0;
};

struct MilpOptions {
  double time_limit_s = 5.0;
  long node_limit = 20000;
  double int_tol = 1e-6;
  /// Relative optimality gap at which search stops.
  double gap_tol = 1e-6;
  long lp_iteration_limit = 20000;
  /// Re-solve node LPs warm from the previous basis (dual simplex) instead
  /// of cold two-phase solves. Changes speed, not answers.
  bool use_warm_start = true;
  /// Pseudocost branching; false reverts to most-fractional selection.
  bool use_pseudocost = true;
  /// Per-node bound propagation on the branched variable's rows.
  bool use_presolve = true;
  /// External dual-bound provider (non-owning; e.g. lp::FlowRelaxation).
  /// Consulted once at the root — where it can prove optimality or
  /// infeasibility before any branching — and per node when the depth /
  /// frequency gates below pass, *before* the node LP so a flow prune skips
  /// the LP entirely. Node bounds are max-combined with the LP relaxation
  /// bound for pruning and for the children's bounds, and the combined
  /// degradation feeds the pseudocosts.
  DualBoundProvider* flow = nullptr;
  /// Consult `flow` at nodes whose branching depth is ≤ this.
  int flow_node_depth = 6;
  /// Additionally consult `flow` at every Nth explored node (0 = never).
  long flow_node_every = 16;
};

enum class MilpStatus {
  Optimal,     ///< proven within gap_tol
  Feasible,    ///< incumbent found, limits hit before proof
  Infeasible,  ///< no integer-feasible point exists
  Unbounded,
  Limit,       ///< limits hit with no incumbent
};

struct MilpSolution {
  MilpStatus status = MilpStatus::Limit;
  double objective = 0.0;
  std::vector<double> x;
  long nodes_explored = 0;
  /// Best LP lower bound at termination (for gap reporting).
  double best_bound = -lp::kInf;
  /// Simplex pivots across all node LPs (warm re-solves + fallbacks).
  long lp_iterations = 0;
  /// Node LPs served by warm dual-simplex re-entry.
  long warm_hits = 0;
  /// Node LPs that fell back to the cold two-phase primal path.
  long warm_fallbacks = 0;
  /// Nodes pruned by per-node bound propagation before any LP call.
  long presolve_prunes = 0;
  /// Nodes pruned by their inherited (parent / propagated) bound against the
  /// incumbent, before any LP call. Split from lp_prunes so benches can
  /// attribute wins to the bound that actually closed the node.
  long bound_prunes = 0;
  /// Nodes pruned by their own LP relaxation bound, after the LP solve.
  long lp_prunes = 0;
  /// Nodes pruned by the external flow bound (infeasible box or bound ≥
  /// incumbent), LP call skipped.
  long flow_prunes = 0;
  /// Root bound reported by MilpOptions::flow (−inf when absent).
  double flow_root_bound = -lp::kInf;
  /// Simplex pivots spent inside the flow relaxation (root + node refreshes).
  long flow_lp_iterations = 0;
  /// Nodes whose LP hit the iteration/time limit. Their subtrees were never
  /// bounded, so Optimal/Infeasible claims are downgraded when > 0.
  long dropped_nodes = 0;
};

/// Solves the MILP. `incumbent`, if given, must be integer-feasible; it
/// seeds the upper bound.
MilpSolution solve(const MilpProblem& problem, const MilpOptions& options = {},
                   const std::optional<std::vector<double>>& incumbent = std::nullopt);

}  // namespace syccl::milp
