// Mixed-integer linear programming by LP-based branch and bound.
//
// This module plays the role of the commercial MILP solver (Gurobi) in the
// paper's pipeline. Best-first search over LP relaxations, branching on the
// most fractional integer variable. A warm-start incumbent (from the greedy
// scheduler, §5.3) both bounds the search and guarantees a feasible answer
// under node/time limits — mirroring how the paper runs Gurobi with a
// timeout and keeps the best incumbent.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "lp/simplex.h"

namespace syccl::milp {

struct MilpProblem {
  lp::Problem lp;
  /// is_integer[v] — variable v must take an integer value.
  std::vector<bool> is_integer;
};

struct MilpOptions {
  double time_limit_s = 5.0;
  long node_limit = 20000;
  double int_tol = 1e-6;
  /// Relative optimality gap at which search stops.
  double gap_tol = 1e-6;
  long lp_iteration_limit = 20000;
};

enum class MilpStatus {
  Optimal,     ///< proven within gap_tol
  Feasible,    ///< incumbent found, limits hit before proof
  Infeasible,  ///< no integer-feasible point exists
  Unbounded,
  Limit,       ///< limits hit with no incumbent
};

struct MilpSolution {
  MilpStatus status = MilpStatus::Limit;
  double objective = 0.0;
  std::vector<double> x;
  long nodes_explored = 0;
  /// Best LP lower bound at termination (for gap reporting).
  double best_bound = -lp::kInf;
};

/// Solves the MILP. `incumbent`, if given, must be integer-feasible; it
/// seeds the upper bound.
MilpSolution solve(const MilpProblem& problem, const MilpOptions& options = {},
                   const std::optional<std::vector<double>>& incumbent = std::nullopt);

}  // namespace syccl::milp
