// Mixed-integer linear programming by LP-based branch and bound.
//
// This module plays the role of the commercial MILP solver (Gurobi) in the
// paper's pipeline. Best-first search over LP relaxations. A warm-start
// incumbent (from the greedy scheduler, §5.3) both bounds the search and
// guarantees a feasible answer under node/time limits — mirroring how the
// paper runs Gurobi with a timeout and keeps the best incumbent.
//
// Node LPs are re-solved warm: one lp::SimplexSolver is built per MILP
// instance and each node re-enters from the previous basis via dual simplex
// (bound changes leave the basis dual feasible). Nodes store only their
// branching delta plus the parent's basis snapshot; bounds are materialized
// on pop. A cheap per-node presolve propagates the branched bound through
// the rows that contain it and can prune the node without an LP call.
// Branching uses pseudocosts (seeded from objective coefficients, updated
// from observed per-branch degradation); most-fractional selection remains
// available as a toggle.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "lp/simplex.h"

namespace syccl::milp {

struct MilpProblem {
  lp::Problem lp;
  /// is_integer[v] — variable v must take an integer value.
  std::vector<bool> is_integer;
};

struct MilpOptions {
  double time_limit_s = 5.0;
  long node_limit = 20000;
  double int_tol = 1e-6;
  /// Relative optimality gap at which search stops.
  double gap_tol = 1e-6;
  long lp_iteration_limit = 20000;
  /// Re-solve node LPs warm from the previous basis (dual simplex) instead
  /// of cold two-phase solves. Changes speed, not answers.
  bool use_warm_start = true;
  /// Pseudocost branching; false reverts to most-fractional selection.
  bool use_pseudocost = true;
  /// Per-node bound propagation on the branched variable's rows.
  bool use_presolve = true;
};

enum class MilpStatus {
  Optimal,     ///< proven within gap_tol
  Feasible,    ///< incumbent found, limits hit before proof
  Infeasible,  ///< no integer-feasible point exists
  Unbounded,
  Limit,       ///< limits hit with no incumbent
};

struct MilpSolution {
  MilpStatus status = MilpStatus::Limit;
  double objective = 0.0;
  std::vector<double> x;
  long nodes_explored = 0;
  /// Best LP lower bound at termination (for gap reporting).
  double best_bound = -lp::kInf;
  /// Simplex pivots across all node LPs (warm re-solves + fallbacks).
  long lp_iterations = 0;
  /// Node LPs served by warm dual-simplex re-entry.
  long warm_hits = 0;
  /// Node LPs that fell back to the cold two-phase primal path.
  long warm_fallbacks = 0;
  /// Nodes pruned by per-node bound propagation before any LP call.
  long presolve_prunes = 0;
  /// Nodes whose LP hit the iteration/time limit. Their subtrees were never
  /// bounded, so Optimal/Infeasible claims are downgraded when > 0.
  long dropped_nodes = 0;
};

/// Solves the MILP. `incumbent`, if given, must be integer-feasible; it
/// seeds the upper bound.
MilpSolution solve(const MilpProblem& problem, const MilpOptions& options = {},
                   const std::optional<std::vector<double>>& incumbent = std::nullopt);

}  // namespace syccl::milp
