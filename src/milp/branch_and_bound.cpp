#include "milp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>
#include <stdexcept>

#include "lp/simplex_solver.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace syccl::milp {

namespace {

/// Branching delta: absolute replacement bounds for one variable. A node's
/// bounds are the root bounds overwritten by the deltas on its ancestor
/// chain (deeper deltas are tighter, so root→leaf application is exact).
struct BoundDelta {
  int var = -1;
  double lo = 0.0;
  double hi = 0.0;
};

/// Pool-allocated search node. Instead of full lower/upper vectors and an
/// lp::Problem copy, a node carries only its branching delta, pseudocost
/// bookkeeping, and the parent's final basis (shared by both children) for
/// warm re-entry.
struct Node {
  int parent = -1;           ///< pool index of the parent (-1 for the root)
  BoundDelta delta;          ///< branching delta applied on top of the parent
  double bound = -lp::kInf;  ///< parent LP objective (lower bound)
  int branch_var = -1;       ///< variable `delta` branched on (-1 for root)
  bool up = false;           ///< true: lower raised to ceil; false: upper cut
  double frac = 0.0;         ///< fractional part at the parent optimum
  std::shared_ptr<const lp::Basis> warm;  ///< parent's basis snapshot
};

struct HeapEntry {
  double bound = -lp::kInf;
  int id = -1;
  /// Min-heap on bound; FIFO on ties for determinism.
  bool operator<(const HeapEntry& o) const {
    if (bound != o.bound) return bound > o.bound;
    return id > o.id;
  }
};

/// Index of the most fractional integer variable, or -1 if integral.
int most_fractional(const std::vector<double>& x, const std::vector<bool>& is_integer,
                    double tol) {
  int best = -1;
  double best_frac = tol;
  for (std::size_t v = 0; v < x.size(); ++v) {
    if (!is_integer[v]) continue;
    const double f = x[v] - std::floor(x[v]);
    const double dist = std::min(f, 1.0 - f);
    if (dist > best_frac) {
      best_frac = dist;
      best = static_cast<int>(v);
    }
  }
  return best;
}

/// Per-variable branching history: observed objective degradation per unit
/// of fractional distance, one estimate per direction, seeded from the
/// objective coefficient magnitude.
struct PseudoCosts {
  std::vector<double> up_sum, dn_sum, init;
  std::vector<long> up_n, dn_n;

  explicit PseudoCosts(const lp::Problem& p) {
    const std::size_t n = static_cast<std::size_t>(p.num_vars);
    up_sum.assign(n, 0.0);
    dn_sum.assign(n, 0.0);
    up_n.assign(n, 0);
    dn_n.assign(n, 0);
    init.assign(n, 1e-6);
    for (std::size_t v = 0; v < n && v < p.objective.size(); ++v) {
      init[v] = std::fabs(p.objective[v]) + 1e-6;
    }
  }

  double up_est(int v) const {
    const std::size_t s = static_cast<std::size_t>(v);
    return up_n[s] > 0 ? up_sum[s] / static_cast<double>(up_n[s]) : init[s];
  }
  double dn_est(int v) const {
    const std::size_t s = static_cast<std::size_t>(v);
    return dn_n[s] > 0 ? dn_sum[s] / static_cast<double>(dn_n[s]) : init[s];
  }
  void observe(int v, bool up, double frac, double degradation) {
    const double dist = up ? 1.0 - frac : frac;
    if (dist < 1e-9) return;
    const std::size_t s = static_cast<std::size_t>(v);
    if (up) {
      up_sum[s] += degradation / dist;
      ++up_n[s];
    } else {
      dn_sum[s] += degradation / dist;
      ++dn_n[s];
    }
  }
};

/// Pseudocost product-rule selection over fractional integer variables; the
/// first maximizer (lowest index) wins, keeping the search deterministic.
int select_pseudocost(const std::vector<double>& x, const std::vector<bool>& is_integer,
                      double tol, const PseudoCosts& pc) {
  constexpr double kMinScore = 1e-12;
  int best = -1;
  double best_score = -1.0;
  for (std::size_t v = 0; v < x.size(); ++v) {
    if (!is_integer[v]) continue;
    const double f = x[v] - std::floor(x[v]);
    if (std::min(f, 1.0 - f) <= tol) continue;
    const double score = std::max(pc.dn_est(static_cast<int>(v)) * f, kMinScore) *
                         std::max(pc.up_est(static_cast<int>(v)) * (1.0 - f), kMinScore);
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(v);
    }
  }
  return best;
}

double objective_of(const lp::Problem& p, const std::vector<double>& x) {
  double obj = 0.0;
  for (int v = 0; v < p.num_vars; ++v) {
    obj += (static_cast<std::size_t>(v) < p.objective.size() ? p.objective[static_cast<std::size_t>(v)] : 0.0) *
           x[static_cast<std::size_t>(v)];
  }
  return obj;
}

std::vector<std::vector<int>> build_touching(const lp::Problem& p) {
  std::vector<std::vector<int>> touching(static_cast<std::size_t>(p.num_vars));
  for (std::size_t c = 0; c < p.constraints.size(); ++c) {
    for (const auto& [v, coef] : p.constraints[c].terms) {
      (void)coef;
      touching[static_cast<std::size_t>(v)].push_back(static_cast<int>(c));
    }
  }
  return touching;
}

/// One round of activity-based bound propagation over the rows containing
/// `v`: each row's residual activity implies a bound on every other variable
/// in it (exact for rows one variable dominates, conservative otherwise);
/// implied bounds on integer variables are rounded. Tightening never cuts
/// LP-feasible points (the bounds are implied), so the relaxation value is
/// unchanged; integer rounding only removes fractional strips. Returns
/// false when a domain empties — the node is infeasible without an LP call.
bool propagate_branch(const lp::Problem& p, const std::vector<bool>& is_integer,
                      const std::vector<std::vector<int>>& touching, int v,
                      std::vector<double>& lo, std::vector<double>& hi, double int_tol) {
  constexpr double kImprove = 1e-7;
  auto tighten_hi = [&](int w, double b) {
    const std::size_t s = static_cast<std::size_t>(w);
    if (is_integer[s]) b = std::floor(b + int_tol);
    if (b < hi[s] - kImprove) hi[s] = b;
    return lo[s] <= hi[s] + 1e-9;
  };
  auto tighten_lo = [&](int w, double b) {
    const std::size_t s = static_cast<std::size_t>(w);
    if (is_integer[s]) b = std::ceil(b - int_tol);
    if (b > lo[s] + kImprove) lo[s] = b;
    return lo[s] <= hi[s] + 1e-9;
  };

  for (const int ci : touching[static_cast<std::size_t>(v)]) {
    const lp::Constraint& c = p.constraints[static_cast<std::size_t>(ci)];
    double min_act = 0.0, max_act = 0.0;
    int min_inf = 0, max_inf = 0;
    for (const auto& [w, a] : c.terms) {
      const std::size_t s = static_cast<std::size_t>(w);
      const double cmin = a > 0 ? a * lo[s] : a * hi[s];
      const double cmax = a > 0 ? a * hi[s] : a * lo[s];
      if (cmin <= -lp::kInf) {
        ++min_inf;
      } else {
        min_act += cmin;
      }
      if (cmax >= lp::kInf) {
        ++max_inf;
      } else {
        max_act += cmax;
      }
    }
    for (const auto& [w, a] : c.terms) {
      if (a == 0.0) continue;
      const std::size_t s = static_cast<std::size_t>(w);
      const double cmin = a > 0 ? a * lo[s] : a * hi[s];
      const double cmax = a > 0 ? a * hi[s] : a * lo[s];
      if (c.rel != lp::Relation::GreaterEq) {  // a·x_w ≤ rhs − min-activity(rest)
        const bool self_inf = cmin <= -lp::kInf;
        if (min_inf - (self_inf ? 1 : 0) == 0) {
          const double rest = min_act - (self_inf ? 0.0 : cmin);
          const double b = (c.rhs - rest) / a;
          if (!(a > 0 ? tighten_hi(w, b) : tighten_lo(w, b))) return false;
        }
      }
      if (c.rel != lp::Relation::LessEq) {  // a·x_w ≥ rhs − max-activity(rest)
        const bool self_inf = cmax >= lp::kInf;
        if (max_inf - (self_inf ? 1 : 0) == 0) {
          const double rest = max_act - (self_inf ? 0.0 : cmax);
          const double b = (c.rhs - rest) / a;
          if (!(a > 0 ? tighten_lo(w, b) : tighten_hi(w, b))) return false;
        }
      }
    }
  }
  return true;
}

/// Uninstrumented search body; the public solve() below wraps it in a trace
/// span and folds the solution's search counters into the metrics registry
/// once, whichever of the many return paths produced it.
MilpSolution solve_impl(const MilpProblem& problem, const MilpOptions& options,
                        const std::optional<std::vector<double>>& incumbent) {
  const int n = problem.lp.num_vars;
  if (static_cast<int>(problem.is_integer.size()) != n) {
    throw std::invalid_argument("is_integer size must match num_vars");
  }

  util::Stopwatch clock;
  MilpSolution result;

  double best_obj = lp::kInf;
  std::vector<double> best_x;
  if (incumbent.has_value()) {
    if (static_cast<int>(incumbent->size()) != n) {
      throw std::invalid_argument("incumbent size mismatch");
    }
    best_obj = objective_of(problem.lp, *incumbent);
    best_x = *incumbent;
  }

  std::vector<double> root_lo = problem.lp.lower;
  std::vector<double> root_hi = problem.lp.upper;
  root_lo.resize(static_cast<std::size_t>(n), 0.0);
  root_hi.resize(static_cast<std::size_t>(n), lp::kInf);
  // Fractional bounds on integer variables carry no integer point in the
  // strip; round them once at the root.
  for (int v = 0; v < n; ++v) {
    const std::size_t s = static_cast<std::size_t>(v);
    if (!problem.is_integer[s]) continue;
    if (root_lo[s] > -lp::kInf) root_lo[s] = std::ceil(root_lo[s] - options.int_tol);
    if (root_hi[s] < lp::kInf) root_hi[s] = std::floor(root_hi[s] + options.int_tol);
    if (root_lo[s] > root_hi[s]) {
      result.status = MilpStatus::Infeasible;
      return result;
    }
  }

  // Relative-gap pruning threshold against the current incumbent.
  const auto prune_floor = [&]() {
    return best_obj - options.gap_tol * std::max(1.0, std::fabs(best_obj));
  };

  // Root flow bound: a global dual bound for the whole tree. It can prove
  // the incumbent optimal (or the problem infeasible) before any branching.
  double flow_floor = -lp::kInf;
  if (options.flow != nullptr) {
    const DualBoundProvider::Result fb = options.flow->root_bound(root_lo, root_hi);
    result.flow_lp_iterations += fb.lp_iterations;
    if (fb.infeasible) {
      result.status = MilpStatus::Infeasible;
      return result;
    }
    flow_floor = fb.bound;
    result.flow_root_bound = fb.bound;
    if (!best_x.empty() && flow_floor >= prune_floor()) {
      result.objective = best_obj;
      result.x = std::move(best_x);
      result.best_bound = flow_floor;
      result.status = MilpStatus::Optimal;
      return result;
    }
  }

  std::unique_ptr<lp::SimplexSolver> solver;
  if (options.use_warm_start) solver = std::make_unique<lp::SimplexSolver>(problem.lp);
  std::vector<std::vector<int>> touching;
  if (options.use_presolve) touching = build_touching(problem.lp);
  PseudoCosts pc(problem.lp);

  std::vector<Node> pool;
  pool.emplace_back();  // root: no delta, bound −inf
  std::priority_queue<HeapEntry> open;
  open.push(HeapEntry{-lp::kInf, 0});

  std::vector<double> lo, hi;  // materialized bounds of the popped node
  std::vector<int> chain;      // ancestor ids of the popped node, leaf→root
  double proven_bound = lp::kInf;   // min over bounds of pruned/unexplored parts
  double dropped_floor = lp::kInf;  // min over bounds of dropped (unbounded) nodes
  bool exhausted = false;           // stopped on node/time limits

  while (!open.empty()) {
    if (result.nodes_explored >= options.node_limit ||
        clock.elapsed_seconds() >= options.time_limit_s) {
      // Remaining open nodes: the best of their bounds is the proof floor.
      proven_bound = std::min(proven_bound, open.top().bound);
      exhausted = true;
      break;
    }
    const int id = open.top().id;
    open.pop();
    // Copy: the children pushed below may reallocate the pool.
    const Node node = pool[static_cast<std::size_t>(id)];
    ++result.nodes_explored;

    if (node.bound >= prune_floor()) {
      ++result.bound_prunes;
      proven_bound = std::min(proven_bound, node.bound);
      continue;  // cannot improve
    }

    // Materialize bounds: root bounds overwritten by the ancestor deltas in
    // root→leaf order.
    lo = root_lo;
    hi = root_hi;
    {
      chain.clear();
      for (int cur = id; cur >= 0; cur = pool[static_cast<std::size_t>(cur)].parent) {
        if (pool[static_cast<std::size_t>(cur)].delta.var >= 0) chain.push_back(cur);
      }
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        const BoundDelta& d = pool[static_cast<std::size_t>(*it)].delta;
        lo[static_cast<std::size_t>(d.var)] = d.lo;
        hi[static_cast<std::size_t>(d.var)] = d.hi;
      }
    }

    if (options.use_presolve && node.branch_var >= 0 &&
        !propagate_branch(problem.lp, problem.is_integer, touching, node.delta.var, lo, hi,
                          options.int_tol)) {
      ++result.presolve_prunes;
      continue;  // domain emptied — infeasible without an LP call
    }

    // Flow-bound refresh: re-bound the node box through the flow relaxation
    // before paying for the node LP. Gated by depth (shallow nodes shape the
    // most tree) and a node-count stride (periodic deep refreshes).
    double flow_node = -lp::kInf;
    if (options.flow != nullptr &&
        (static_cast<int>(chain.size()) <= options.flow_node_depth ||
         (options.flow_node_every > 0 &&
          result.nodes_explored % options.flow_node_every == 0))) {
      const DualBoundProvider::Result fb = options.flow->node_bound(lo, hi);
      result.flow_lp_iterations += fb.lp_iterations;
      if (fb.infeasible) {
        ++result.flow_prunes;
        continue;  // box holds no integer point
      }
      flow_node = fb.bound;
      if (flow_node >= prune_floor()) {
        ++result.flow_prunes;
        proven_bound = std::min(proven_bound, flow_node);
        continue;  // flow bound closes the node — LP never solved
      }
    }

    const double remaining = options.time_limit_s - clock.elapsed_seconds();
    if (remaining <= 0.0) {
      proven_bound = std::min(proven_bound, node.bound);
      if (!open.empty()) proven_bound = std::min(proven_bound, open.top().bound);
      exhausted = true;
      break;
    }
    lp::Solution rel;
    if (solver) {
      rel = solver->resolve(lo, hi, options.lp_iteration_limit, remaining, node.warm.get());
    } else {
      lp::Problem sub = problem.lp;
      sub.lower = lo;
      sub.upper = hi;
      rel = lp::solve(sub, options.lp_iteration_limit, remaining);
      result.lp_iterations += rel.iterations;
    }
    if (rel.status == lp::Status::Infeasible) continue;
    if (rel.status == lp::Status::Unbounded) {
      result.status = MilpStatus::Unbounded;
      if (solver) {
        result.lp_iterations = solver->stats().lp_iterations;
        result.warm_hits = solver->stats().warm_hits;
        result.warm_fallbacks = solver->stats().warm_fallbacks;
      }
      return result;
    }
    if (rel.status == lp::Status::IterationLimit) {
      // The subtree was never bounded; remember its parent bound so the
      // final status/bound cannot overclaim.
      ++result.dropped_nodes;
      dropped_floor = std::min(dropped_floor, node.bound);
      continue;
    }

    // Max-combine the LP relaxation with the flow refresh: the node's true
    // optimum respects both, so the tighter one prunes and both seed the
    // pseudocosts (flow deltas count as observed degradation).
    const double node_lb = std::max(rel.objective, flow_node);
    if (node.branch_var >= 0) {
      pc.observe(node.branch_var, node.up, node.frac, std::max(0.0, node_lb - node.bound));
    }

    if (node_lb >= prune_floor()) {
      if (rel.objective >= prune_floor()) {
        ++result.lp_prunes;
      } else {
        ++result.flow_prunes;  // only the flow bound closed it
      }
      proven_bound = std::min(proven_bound, node_lb);
      continue;
    }

    const int branch_var = options.use_pseudocost
                               ? select_pseudocost(rel.x, problem.is_integer, options.int_tol, pc)
                               : most_fractional(rel.x, problem.is_integer, options.int_tol);
    if (branch_var < 0) {
      // Integer feasible: round to kill tolerance noise. Adding 0.0
      // normalises std::round(-1e-9) = -0.0 to +0.0 so incumbents are
      // byte-identical regardless of which side of zero the LP landed on.
      std::vector<double> x = rel.x;
      for (int v = 0; v < n; ++v) {
        if (problem.is_integer[static_cast<std::size_t>(v)]) {
          x[static_cast<std::size_t>(v)] = std::round(x[static_cast<std::size_t>(v)]) + 0.0;
        }
      }
      const double obj = objective_of(problem.lp, x);
      if (obj < best_obj) {
        best_obj = obj;
        best_x = std::move(x);
        // The root flow bound is global: once the incumbent is within the
        // gap of it, everything still open is proven non-improving.
        if (flow_floor >= prune_floor()) break;
      }
      continue;
    }

    const double val = rel.x[static_cast<std::size_t>(branch_var)];
    const double frac = val - std::floor(val);
    std::shared_ptr<const lp::Basis> snap;
    if (solver) snap = std::make_shared<const lp::Basis>(solver->basis());

    Node down;
    down.parent = id;
    down.delta = BoundDelta{branch_var, lo[static_cast<std::size_t>(branch_var)], std::floor(val)};
    down.bound = node_lb;
    down.branch_var = branch_var;
    down.up = false;
    down.frac = frac;
    down.warm = snap;
    Node up;
    up.parent = id;
    up.delta = BoundDelta{branch_var, std::ceil(val), hi[static_cast<std::size_t>(branch_var)]};
    up.bound = node_lb;
    up.branch_var = branch_var;
    up.up = true;
    up.frac = frac;
    up.warm = snap;
    if (down.delta.lo <= down.delta.hi) {
      pool.push_back(std::move(down));
      open.push(HeapEntry{node_lb, static_cast<int>(pool.size()) - 1});
    }
    if (up.delta.lo <= up.delta.hi) {
      pool.push_back(std::move(up));
      open.push(HeapEntry{node_lb, static_cast<int>(pool.size()) - 1});
    }
  }

  if (solver) {
    result.lp_iterations = solver->stats().lp_iterations;
    result.warm_hits = solver->stats().warm_hits;
    result.warm_fallbacks = solver->stats().warm_fallbacks;
  }

  const double open_floor = open.empty() ? lp::kInf : open.top().bound;
  // flow_floor holds tree-wide, so it can only raise the proof floor.
  const double floor_all =
      std::max(std::min({proven_bound, dropped_floor, open_floor}), flow_floor);
  result.best_bound = floor_all;
  if (!best_x.empty()) {
    if (open.empty() && result.dropped_nodes == 0) {
      result.best_bound = std::min(floor_all, best_obj);
    }
    result.objective = best_obj;
    result.x = std::move(best_x);
    const bool proven = result.best_bound >=
                        best_obj - options.gap_tol * std::max(1.0, std::fabs(best_obj));
    result.status = proven ? MilpStatus::Optimal : MilpStatus::Feasible;
    return result;
  }
  // Infeasibility can only be claimed over a fully bounded tree: no early
  // stop and no dropped (never-bounded) subtrees.
  result.status = (open.empty() && !exhausted && result.dropped_nodes == 0)
                      ? MilpStatus::Infeasible
                      : MilpStatus::Limit;
  return result;
}

}  // namespace

MilpSolution solve(const MilpProblem& problem, const MilpOptions& options,
                   const std::optional<std::vector<double>>& incumbent) {
  SYCCL_TRACE_SPAN(span, "milp.solve", "milp");
  MilpSolution result = solve_impl(problem, options, incumbent);

  auto& reg = obs::MetricsRegistry::instance();
  static obs::Counter& solves = reg.counter("milp.solves");
  static obs::Counter& nodes = reg.counter("milp.nodes_explored");
  static obs::Counter& lp_iters = reg.counter("milp.lp_iterations");
  static obs::Counter& warm_hits = reg.counter("milp.warm_hits");
  static obs::Counter& warm_fallbacks = reg.counter("milp.warm_fallbacks");
  static obs::Counter& presolve_prunes = reg.counter("milp.presolve_prunes");
  static obs::Counter& bound_prunes = reg.counter("milp.bound_prunes");
  static obs::Counter& lp_prunes = reg.counter("milp.lp_prunes");
  static obs::Counter& flow_prunes = reg.counter("milp.flow_prunes");
  static obs::Counter& flow_lp_iters = reg.counter("milp.flow_lp_iterations");
  static obs::Counter& flow_root_proofs = reg.counter("milp.flow_root_proofs");
  static obs::Counter& dropped = reg.counter("milp.dropped_nodes");
  solves.add(1);
  nodes.add(result.nodes_explored);
  lp_iters.add(result.lp_iterations);
  warm_hits.add(result.warm_hits);
  warm_fallbacks.add(result.warm_fallbacks);
  presolve_prunes.add(result.presolve_prunes);
  bound_prunes.add(result.bound_prunes);
  lp_prunes.add(result.lp_prunes);
  flow_prunes.add(result.flow_prunes);
  flow_lp_iters.add(result.flow_lp_iterations);
  if (result.flow_root_bound > -lp::kInf && result.nodes_explored == 0 &&
      result.status == MilpStatus::Optimal) {
    flow_root_proofs.add(1);
  }
  dropped.add(result.dropped_nodes);

  span.annotate("vars", static_cast<double>(problem.lp.num_vars));
  span.annotate("nodes", static_cast<double>(result.nodes_explored));
  span.annotate("lp_iterations", static_cast<double>(result.lp_iterations));
  span.annotate("warm_hits", static_cast<double>(result.warm_hits));
  span.annotate("flow_prunes", static_cast<double>(result.flow_prunes));
  span.annotate("flow_lp_iterations", static_cast<double>(result.flow_lp_iterations));
  span.annotate("status", static_cast<double>(result.status));
  return result;
}

}  // namespace syccl::milp
