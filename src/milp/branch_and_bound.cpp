#include "milp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "util/stopwatch.h"

namespace syccl::milp {

namespace {

struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  double bound = -lp::kInf;  ///< parent LP objective (lower bound)

  bool operator<(const Node& o) const { return bound > o.bound; }  // min-heap
};

/// Index of the most fractional integer variable, or -1 if integral.
int most_fractional(const std::vector<double>& x, const std::vector<bool>& is_integer,
                    double tol) {
  int best = -1;
  double best_frac = tol;
  for (std::size_t v = 0; v < x.size(); ++v) {
    if (!is_integer[v]) continue;
    const double f = x[v] - std::floor(x[v]);
    const double dist = std::min(f, 1.0 - f);
    if (dist > best_frac) {
      best_frac = dist;
      best = static_cast<int>(v);
    }
  }
  return best;
}

double objective_of(const lp::Problem& p, const std::vector<double>& x) {
  double obj = 0.0;
  for (int v = 0; v < p.num_vars; ++v) {
    obj += (static_cast<std::size_t>(v) < p.objective.size() ? p.objective[static_cast<std::size_t>(v)] : 0.0) *
           x[static_cast<std::size_t>(v)];
  }
  return obj;
}

}  // namespace

MilpSolution solve(const MilpProblem& problem, const MilpOptions& options,
                   const std::optional<std::vector<double>>& incumbent) {
  const int n = problem.lp.num_vars;
  if (static_cast<int>(problem.is_integer.size()) != n) {
    throw std::invalid_argument("is_integer size must match num_vars");
  }

  util::Stopwatch clock;
  MilpSolution result;

  double best_obj = lp::kInf;
  std::vector<double> best_x;
  if (incumbent.has_value()) {
    if (static_cast<int>(incumbent->size()) != n) {
      throw std::invalid_argument("incumbent size mismatch");
    }
    best_obj = objective_of(problem.lp, *incumbent);
    best_x = *incumbent;
  }

  Node root;
  root.lower = problem.lp.lower;
  root.upper = problem.lp.upper;
  root.lower.resize(static_cast<std::size_t>(n), 0.0);
  root.upper.resize(static_cast<std::size_t>(n), lp::kInf);

  std::priority_queue<Node> open;
  open.push(std::move(root));

  bool any_lp_feasible = false;
  double proven_bound = lp::kInf;  // min over open bounds when queue drains

  while (!open.empty()) {
    if (result.nodes_explored >= options.node_limit ||
        clock.elapsed_seconds() > options.time_limit_s) {
      // Remaining open nodes: the best of their bounds is the proof floor.
      proven_bound = std::min(proven_bound, open.top().bound);
      break;
    }
    Node node = open.top();
    open.pop();
    ++result.nodes_explored;

    if (node.bound >= best_obj - options.gap_tol * std::max(1.0, std::fabs(best_obj))) {
      proven_bound = std::min(proven_bound, node.bound);
      continue;  // cannot improve
    }

    lp::Problem sub = problem.lp;
    sub.lower = node.lower;
    sub.upper = node.upper;
    const double remaining = options.time_limit_s - clock.elapsed_seconds();
    const lp::Solution rel =
        lp::solve(sub, options.lp_iteration_limit, std::max(0.05, remaining));
    if (rel.status == lp::Status::Infeasible) continue;
    if (rel.status == lp::Status::Unbounded) {
      result.status = MilpStatus::Unbounded;
      return result;
    }
    if (rel.status == lp::Status::IterationLimit) continue;  // treat as pruned
    any_lp_feasible = true;

    if (rel.objective >= best_obj - options.gap_tol * std::max(1.0, std::fabs(best_obj))) {
      proven_bound = std::min(proven_bound, rel.objective);
      continue;
    }

    const int branch_var = most_fractional(rel.x, problem.is_integer, options.int_tol);
    if (branch_var < 0) {
      // Integer feasible: round to kill tolerance noise.
      std::vector<double> x = rel.x;
      for (int v = 0; v < n; ++v) {
        if (problem.is_integer[static_cast<std::size_t>(v)]) {
          x[static_cast<std::size_t>(v)] = std::round(x[static_cast<std::size_t>(v)]);
        }
      }
      const double obj = objective_of(problem.lp, x);
      if (obj < best_obj) {
        best_obj = obj;
        best_x = std::move(x);
      }
      continue;
    }

    const double val = rel.x[static_cast<std::size_t>(branch_var)];
    Node down = node;
    down.bound = rel.objective;
    down.upper[static_cast<std::size_t>(branch_var)] = std::floor(val);
    Node up = node;
    up.bound = rel.objective;
    up.lower[static_cast<std::size_t>(branch_var)] = std::ceil(val);
    if (down.lower[static_cast<std::size_t>(branch_var)] <=
        down.upper[static_cast<std::size_t>(branch_var)]) {
      open.push(std::move(down));
    }
    if (up.lower[static_cast<std::size_t>(branch_var)] <=
        up.upper[static_cast<std::size_t>(branch_var)]) {
      open.push(std::move(up));
    }
  }

  result.best_bound = open.empty() ? (best_x.empty() ? proven_bound : std::min(proven_bound, best_obj))
                                   : std::min(proven_bound, open.top().bound);
  if (!best_x.empty()) {
    result.objective = best_obj;
    result.x = std::move(best_x);
    const bool proven = open.empty() ||
                        result.best_bound >= best_obj - options.gap_tol * std::max(1.0, std::fabs(best_obj));
    result.status = proven ? MilpStatus::Optimal : MilpStatus::Feasible;
    return result;
  }
  if (open.empty() && !any_lp_feasible) {
    result.status = MilpStatus::Infeasible;
    return result;
  }
  result.status = open.empty() ? MilpStatus::Infeasible : MilpStatus::Limit;
  return result;
}

}  // namespace syccl::milp
