// Named end-to-end scenarios for the observability tooling.
//
// A scenario is a (topology × collective × size) triple addressed by short
// names ("dgx16" × "allreduce" × 64 MiB). run_traced_scenario() executes the
// full pipeline under instrumentation — registry reset, tracing on,
// synthesize, re-simulate the winner with link-event recording — and returns
// both artefacts the tooling ships: a Chrome trace (synthesis spans as one
// process, the winning schedule's per-link Gantt as another) and a metrics
// JSON scoped to exactly this run. tools/syccl_trace is a thin CLI over this
// function; the obs tests drive it directly to validate the trace schema.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/synthesizer.h"
#include "sim/contention.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace syccl::obs {

struct ScenarioSpec {
  /// Topology name: "dgx16" (two 8-GPU H800 servers, the paper's DGX-style
  /// unit), "h800x<S>" (S servers × 8 GPUs), "a100x<G>" (§7.1 testbed,
  /// G ∈ {16, 32}), "flat<G>" (single switch), "micro" (§7.4 cluster).
  /// A `@degraded` suffix scales the first duplex link's α/β 8× (flapping
  /// optic); `@failnic` removes the first NIC's links (dead NIC). Both
  /// mutate through topo/mutate.h, so the degraded fabric flows through
  /// grouping, synthesis, and simulation like any other scenario.
  std::string topo = "dgx16";
  /// Collective name (case-insensitive): allreduce, allgather,
  /// reducescatter, alltoall, broadcast, scatter, gather, reduce.
  std::string coll = "allreduce";
  /// Collective payload in bytes (nccl-tests "size" convention).
  std::uint64_t bytes = 64ull << 20;
  /// Worker threads for the synthesizer (0 = hardware concurrency).
  int num_threads = 0;
  /// Clear the process-wide solve cache first so the metrics show a cold
  /// run. Off when sweeping sizes to show cache reuse instead.
  bool clear_solve_cache = true;
  /// Concurrent copies of the winning schedule to contend on the fabric
  /// (sim/contention.h). 1 = no contention; N > 1 fills
  /// ScenarioResult::contention with the shared-run timings.
  int tenants = 1;
  /// Overrides applied on top of the default SynthesisConfig. Kept small:
  /// scenarios are observability probes, not a config surface.
  core::SynthesisConfig config;
};

/// Everything one traced run produced.
struct ScenarioResult {
  core::SynthesisResult synthesis;
  /// Winner re-simulated with link events (and final state) recorded.
  sim::SimResult sim;
  /// Chrome-trace JSON: pid 1 = synthesis spans, pid 2 = schedule timeline.
  std::string trace_json;
  /// MetricsRegistry::to_json() scoped to this run (registry reset first).
  std::string metrics_json;
  /// Shared-fabric timings when ScenarioSpec::tenants > 1 (empty otherwise).
  sim::ContentionResult contention;
};

/// Builds the topology for a scenario name. Throws std::invalid_argument on
/// an unknown name.
topo::Topology build_scenario_topology(const std::string& name);

/// Builds the collective for a scenario name over `num_ranks` ranks. Throws
/// std::invalid_argument on an unknown name.
coll::Collective build_scenario_collective(const std::string& name, int num_ranks,
                                           std::uint64_t bytes);

/// Runs a scenario end to end under tracing and returns the artefacts.
/// Resets the process-wide metrics registry and span buffers; tracing is
/// disabled again before returning regardless of exceptions.
ScenarioResult run_traced_scenario(const ScenarioSpec& spec);

}  // namespace syccl::obs
