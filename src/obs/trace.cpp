#include "obs/trace.h"

#include <chrono>
#include <mutex>

namespace syccl::obs {

namespace detail {

std::atomic<bool> g_tracing_enabled{false};

namespace {

using Clock = std::chrono::steady_clock;

/// Shared epoch so every thread's timestamps line up on one axis.
Clock::time_point epoch() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

struct ThreadBuffer {
  std::uint64_t tid = 0;
  std::mutex mutex;
  std::string name;
  std::vector<SpanRecord> spans;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint64_t next_tid = 1;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives late-exiting threads
  return *r;
}

/// The calling thread's buffer, registered on first use. The shared_ptr is
/// held both here (thread lifetime) and in the registry (snapshot lifetime).
ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    b->tid = reg.next_tid++;
    reg.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

void append_span(SpanRecord&& record) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.spans.push_back(std::move(record));
}

int& thread_depth() {
  thread_local int depth = 0;
  return depth;
}

}  // namespace detail

void set_tracing(bool enabled) {
  detail::epoch();  // pin the epoch before the first span can record
  detail::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(detail::Clock::now() - detail::epoch())
      .count();
}

void set_thread_name(std::string name) {
  detail::ThreadBuffer& buf = detail::local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.name = std::move(name);
}

std::vector<ThreadTrace> trace_snapshot() {
  std::vector<std::shared_ptr<detail::ThreadBuffer>> buffers;
  {
    detail::Registry& reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    buffers = reg.buffers;
  }
  std::vector<ThreadTrace> out;
  out.reserve(buffers.size());
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    ThreadTrace t;
    t.tid = buf->tid;
    t.name = buf->name;
    t.spans = buf->spans;
    out.push_back(std::move(t));
  }
  return out;
}

void trace_clear() {
  std::vector<std::shared_ptr<detail::ThreadBuffer>> buffers;
  {
    detail::Registry& reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    buffers = reg.buffers;
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    buf->spans.clear();
  }
}

}  // namespace syccl::obs
