#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "obs/json.h"

namespace syccl::obs {

std::uint64_t Gauge::pack(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double Gauge::unpack(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

int Histogram::bucket_index(double value) {
  if (!(value > 0.0)) return 0;
  int exp = 0;
  std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  return std::clamp(exp - 1 + kZeroBucket, 0, kNumBuckets - 1);
}

double Histogram::bucket_lower_bound(int index) {
  return std::ldexp(1.0, index - kZeroBucket);
}

void Histogram::observe(double value) {
  buckets_[static_cast<std::size_t>(bucket_index(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double sum;
    std::memcpy(&sum, &bits, sizeof(sum));
    sum += value;
    std::uint64_t next;
    std::memcpy(&next, &sum, sizeof(next));
    if (sum_bits_.compare_exchange_weak(bits, next, std::memory_order_relaxed)) break;
  }
}

double Histogram::sum() const {
  const std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double sum;
  std::memcpy(&sum, &bits, sizeof(sum));
  return sum;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

/// Name → instrument maps. std::map keeps snapshots name-sorted for free;
/// unique_ptr keeps instrument addresses stable across rehash-free inserts.
struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* i = new Impl;  // leaked: instruments referenced from statics
  return *i;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto& slot = i.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto& slot = i.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto& slot = i.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  MetricsSnapshot out;
  for (const auto& [name, c] : i.counters) out.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : i.gauges) out.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : i.histograms) {
    MetricsSnapshot::HistogramData data;
    data.name = name;
    data.count = h->count();
    data.sum = h->sum();
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      const std::int64_t n = h->bucket_count(b);
      if (n != 0) data.buckets.emplace_back(Histogram::bucket_lower_bound(b), n);
    }
    out.histograms.push_back(std::move(data));
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  Json counters = Json::object();
  for (const auto& [name, v] : snap.counters) counters.set(name, Json(v));
  Json gauges = Json::object();
  for (const auto& [name, v] : snap.gauges) gauges.set(name, Json(v));
  Json histograms = Json::object();
  for (const auto& h : snap.histograms) {
    Json buckets = Json::array();
    for (const auto& [ge, n] : h.buckets) {
      Json bucket = Json::object();
      bucket.set("ge", Json(ge));
      bucket.set("count", Json(n));
      buckets.push_back(std::move(bucket));
    }
    Json entry = Json::object();
    entry.set("count", Json(h.count));
    entry.set("sum", Json(h.sum));
    entry.set("buckets", std::move(buckets));
    histograms.set(h.name, std::move(entry));
  }
  Json root = Json::object();
  root.set("counters", std::move(counters));
  root.set("gauges", std::move(gauges));
  root.set("histograms", std::move(histograms));
  return root.dump();
}

std::string MetricsRegistry::to_text() const {
  const MetricsSnapshot snap = snapshot();
  std::string out;
  char line[256];
  for (const auto& [name, v] : snap.counters) {
    std::snprintf(line, sizeof(line), "counter   %-40s %lld\n", name.c_str(),
                  static_cast<long long>(v));
    out += line;
  }
  for (const auto& [name, v] : snap.gauges) {
    std::snprintf(line, sizeof(line), "gauge     %-40s %.6g\n", name.c_str(), v);
    out += line;
  }
  for (const auto& h : snap.histograms) {
    std::snprintf(line, sizeof(line), "histogram %-40s count=%lld sum=%.6g mean=%.6g\n",
                  h.name.c_str(), static_cast<long long>(h.count), h.sum,
                  h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0);
    out += line;
  }
  return out;
}

void MetricsRegistry::reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  for (auto& [name, c] : i.counters) c->reset();
  for (auto& [name, g] : i.gauges) g->reset();
  for (auto& [name, h] : i.histograms) h->reset();
}

}  // namespace syccl::obs
