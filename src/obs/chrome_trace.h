// Chrome-trace (chrome://tracing / Perfetto "JSON object format") export.
//
// Two kinds of content share this builder:
//   * synthesis traces — span records from obs/trace.h become "X" (complete)
//     duration events, one Chrome thread per recording thread, with worker
//     names from obs::set_thread_name;
//   * simulated timelines — per-link occupancy intervals (obs/timeline.h)
//     become one Chrome thread *per directed link*, so a schedule renders as
//     a Gantt chart of wire time.
// Distinct pids keep the two groups separate in the viewer's process tree.
//
// Emitted schema per event: {"name","cat","ph":"X","ts","dur","pid","tid",
// "args":{...}} with ts/dur in microseconds, plus "M" metadata records for
// process and thread names. Events are sorted by ts, so consumers (including
// the repo's own tests) can assume a monotone timeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace syccl::obs {

/// One duration event in the builder's staging buffer.
struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int pid = 0;
  std::uint64_t tid = 0;
  std::vector<std::pair<std::string, double>> args;
};

class ChromeTraceBuilder {
 public:
  /// Names a process (pid) in the viewer's tree.
  void set_process_name(int pid, std::string name);
  /// Names a thread (track). Unnamed tids render as their number.
  void set_thread_name(int pid, std::uint64_t tid, std::string name);

  void add_event(TraceEvent event);

  /// Folds a tracer snapshot into process `pid`, one track per recording
  /// thread. Threads without an explicit name get "thread-<tid>".
  void add_spans(int pid, const std::vector<ThreadTrace>& threads);

  std::size_t num_events() const { return events_.size(); }

  /// Serialises {"traceEvents":[...]} with events sorted by ts (metadata
  /// records first). The builder is reusable afterwards.
  std::string json() const;

 private:
  struct NameRecord {
    int pid = 0;
    std::uint64_t tid = 0;
    bool is_thread = false;
    std::string name;
  };
  std::vector<TraceEvent> events_;
  std::vector<NameRecord> names_;
};

}  // namespace syccl::obs
