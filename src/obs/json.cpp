#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace syccl::obs {

bool Json::as_bool() const {
  if (kind_ != Kind::Bool) throw std::logic_error("json value is not a bool");
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::Number) throw std::logic_error("json value is not a number");
  return num_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::String) throw std::logic_error("json value is not a string");
  return str_;
}

void Json::push_back(Json value) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  if (kind_ != Kind::Array) throw std::logic_error("json value is not an array");
  arr_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (kind_ == Kind::Array) return arr_.size();
  if (kind_ == Kind::Object) return obj_.size();
  throw std::logic_error("json value has no size");
}

const Json& Json::at(std::size_t i) const {
  if (kind_ != Kind::Array) throw std::logic_error("json value is not an array");
  return arr_.at(i);
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::Array) throw std::logic_error("json value is not an array");
  return arr_;
}

void Json::set(const std::string& key, Json value) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object) throw std::logic_error("json value is not an object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj_.emplace_back(key, std::move(value));
}

const Json* Json::get(const std::string& key) const {
  if (kind_ != Kind::Object) throw std::logic_error("json value is not an object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = get(key);
  if (v == nullptr) throw std::logic_error("json object has no key '" + key + "'");
  return *v;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (kind_ != Kind::Object) throw std::logic_error("json value is not an object");
  return obj_;
}

namespace {

void escape_to(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void number_to(double v, std::string& out) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Integers within the exactly-representable range print without exponent
  // or fraction — counters and ids stay greppable.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[40];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) {
      out += probe;
      return;
    }
  }
  out += buf;
}

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  explicit Parser(const std::string& t) : text(t) {}

  [[noreturn]] void fail(const std::string& what) const { throw JsonParseError(what, pos); }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text.compare(pos, n, lit) != 0) return false;
    pos += n;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode (no surrogate-pair handling; the emitters never
          // produce them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return obj;
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        obj.set(key, parse_value());
        skip_ws();
        const char d = peek();
        ++pos;
        if (d == '}') return obj;
        if (d != ',') fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return arr;
      }
      for (;;) {
        arr.push_back(parse_value());
        skip_ws();
        const char d = peek();
        ++pos;
        if (d == ']') return arr;
        if (d != ',') fail("expected ',' or ']'");
      }
    }
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json(nullptr);
    // Number.
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) fail("unexpected character");
    double v = 0.0;
    if (std::sscanf(text.c_str() + start, "%lf", &v) != 1) fail("malformed number");
    return Json(v);
  }
};

}  // namespace

void Json::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::Null: out += "null"; return;
    case Kind::Bool: out += bool_ ? "true" : "false"; return;
    case Kind::Number: number_to(num_, out); return;
    case Kind::String: escape_to(str_, out); return;
    case Kind::Array: {
      out.push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out.push_back(',');
        arr_[i].dump_to(out);
      }
      out.push_back(']');
      return;
    }
    case Kind::Object: {
      out.push_back('{');
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out.push_back(',');
        escape_to(obj_[i].first, out);
        out.push_back(':');
        obj_[i].second.dump_to(out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

Json Json::parse(const std::string& text) {
  Parser p(text);
  Json v = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing characters after document");
  return v;
}

}  // namespace syccl::obs
