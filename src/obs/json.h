// Minimal JSON value: parse + serialise, no external dependencies.
//
// The observability exporters (metrics.h, chrome_trace.h) emit JSON, and the
// tests that gate them need to read that JSON back structurally — string
// matching would pin formatting instead of content. This is a deliberately
// small document model (no SAX, no streaming, no comments): numbers are
// doubles, object key order is preserved, and parse errors throw with a byte
// offset. It is not a general-purpose JSON library; it exists so the repo's
// own artifacts (trace.json, metrics.json, BENCH_*.json) can be produced and
// round-tripped by one implementation.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace syccl::obs {

class Json;

/// Thrown by Json::parse with the byte offset of the first bad character.
struct JsonParseError : std::runtime_error {
  JsonParseError(const std::string& what, std::size_t at)
      : std::runtime_error(what + " at byte " + std::to_string(at)), offset(at) {}
  std::size_t offset = 0;
};

class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(double n) : kind_(Kind::Number), num_(n) {}
  Json(int n) : kind_(Kind::Number), num_(n) {}
  Json(long n) : kind_(Kind::Number), num_(static_cast<double>(n)) {}
  Json(long long n) : kind_(Kind::Number), num_(static_cast<double>(n)) {}
  Json(unsigned long n) : kind_(Kind::Number), num_(static_cast<double>(n)) {}
  Json(unsigned long long n) : kind_(Kind::Number), num_(static_cast<double>(n)) {}
  Json(const char* s) : kind_(Kind::String), str_(s) {}
  Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }

  /// Typed accessors; throw std::logic_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access.
  void push_back(Json value);
  std::size_t size() const;
  const Json& at(std::size_t i) const;
  const std::vector<Json>& items() const;

  /// Object access. `set` preserves first-insertion order; `get` returns
  /// nullptr when the key is absent, `at` throws.
  void set(const std::string& key, Json value);
  const Json* get(const std::string& key) const;
  const Json& at(const std::string& key) const;
  bool has(const std::string& key) const { return get(key) != nullptr; }
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Serialises without insignificant whitespace. Numbers use shortest
  /// round-trip formatting; non-finite numbers serialise as null (JSON has
  /// no representation for them).
  std::string dump() const;

  /// Parses a complete document; trailing non-whitespace throws.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace syccl::obs
