#include "obs/scenario.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "sim/contention.h"
#include "solver/solve_cache.h"
#include "topo/builders.h"
#include "topo/mutate.h"

namespace syccl::obs {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Parses the integer following `prefix`, e.g. ("h800x4", "h800x") -> 4.
/// Returns -1 when `name` does not start with `prefix` or the rest is not a
/// positive integer.
int suffix_int(const std::string& name, const std::string& prefix) {
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) return -1;
  int value = 0;
  for (std::size_t i = prefix.size(); i < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return -1;
    value = value * 10 + (name[i] - '0');
    if (value > 1 << 20) return -1;
  }
  return value > 0 ? value : -1;
}

/// Restores the previous tracing state on every exit path.
struct TracingGuard {
  bool previous;
  explicit TracingGuard(bool enable) : previous(tracing_enabled()) { set_tracing(enable); }
  ~TracingGuard() { set_tracing(previous); }
};

}  // namespace

topo::Topology build_scenario_topology(const std::string& name) {
  // A mutation suffix derives a faulty variant of any base scenario.
  if (const std::size_t at = name.find('@'); at != std::string::npos) {
    const topo::Topology base = build_scenario_topology(name.substr(0, at));
    const std::string fault = lower(name.substr(at + 1));
    if (fault == "degraded") {
      if (base.num_links() == 0) {
        throw std::invalid_argument("scenario '" + name + "': topology has no links");
      }
      const topo::Link& l = base.links().front();
      return topo::degrade_duplex(base, l.src, l.dst, 8.0, 8.0).topo;
    }
    if (fault == "failnic") {
      for (const topo::Node& node : base.nodes()) {
        if (node.kind == topo::NodeKind::Nic) return topo::fail_nic(base, node.id).topo;
      }
      throw std::invalid_argument("scenario '" + name + "': topology has no NICs");
    }
    throw std::invalid_argument("unknown scenario fault '" + fault +
                                "' (expected degraded or failnic)");
  }
  const std::string n = lower(name);
  if (n == "dgx16") return topo::build_h800_cluster(2);
  if (n == "micro") return topo::build_microbench_cluster();
  if (int servers = suffix_int(n, "h800x"); servers > 0) {
    return topo::build_h800_cluster(servers);
  }
  if (int gpus = suffix_int(n, "a100x"); gpus > 0) {
    return topo::build_a100_testbed(gpus);
  }
  if (int gpus = suffix_int(n, "flat"); gpus > 0) {
    return topo::build_flat_switch(gpus);
  }
  throw std::invalid_argument(
      "unknown scenario topology '" + name +
      "' (expected dgx16, h800x<servers>, a100x<gpus>, flat<gpus> or micro)");
}

coll::Collective build_scenario_collective(const std::string& name, int num_ranks,
                                           std::uint64_t bytes) {
  const std::string n = lower(name);
  if (n == "allreduce") return coll::make_allreduce(num_ranks, bytes);
  if (n == "allgather") return coll::make_allgather(num_ranks, bytes);
  if (n == "reducescatter") return coll::make_reduce_scatter(num_ranks, bytes);
  if (n == "alltoall") return coll::make_alltoall(num_ranks, bytes);
  if (n == "broadcast") return coll::make_broadcast(num_ranks, bytes);
  if (n == "scatter") return coll::make_scatter(num_ranks, bytes);
  if (n == "gather") return coll::make_gather(num_ranks, bytes);
  if (n == "reduce") return coll::make_reduce(num_ranks, bytes);
  throw std::invalid_argument("unknown scenario collective '" + name + "'");
}

ScenarioResult run_traced_scenario(const ScenarioSpec& spec) {
  topo::Topology topo = build_scenario_topology(spec.topo);
  coll::Collective coll = build_scenario_collective(
      spec.coll, static_cast<int>(topo.num_gpus()), spec.bytes);

  // Scope every instrument to this run: totals in metrics_json must equal the
  // run's own SolveStats/Breakdown so the two reporting paths stay checkable
  // against each other.
  MetricsRegistry::instance().reset();
  trace_clear();
  if (spec.clear_solve_cache) solver::SubScheduleCache::instance().clear();

  core::SynthesisConfig config = spec.config;
  config.num_threads = spec.num_threads;

  ScenarioResult out;
  {
    set_thread_name("main");
    TracingGuard tracing(true);
    core::Synthesizer synth(topo, config);
    out.synthesis = synth.synthesize(coll);

    // Re-simulate the winner with full recording: candidate ranking never
    // pays for link events, so the Gantt data comes from one extra run.
    sim::SimOptions sim_opts = config.sim;
    sim_opts.record_link_events = true;
    sim_opts.record_final_state = true;
    sim::Simulator simulator(synth.groups(), sim_opts);
    out.sim = simulator.run(out.synthesis.schedule);

    // Multi-tenant contention: N copies of the winner share the fabric
    // (sim/contention.h). The plain (non-recording) simulator keeps the
    // shared run cheap; the traced Gantt stays the solo run above.
    if (spec.tenants > 1) {
      sim::Simulator plain(synth.groups(), config.sim);
      std::vector<sim::Tenant> tenants(static_cast<std::size_t>(spec.tenants));
      for (std::size_t t = 0; t < tenants.size(); ++t) {
        tenants[t] = sim::Tenant{&out.synthesis.schedule, "tenant" + std::to_string(t)};
      }
      out.contention = sim::simulate_concurrent(plain, tenants);
    }
  }

  ChromeTraceBuilder builder;
  builder.set_process_name(1, "synthesis");
  builder.add_spans(1, trace_snapshot());
  builder.set_process_name(2, "schedule simulation");
  add_link_timeline(builder, 2, out.synthesis.schedule, out.sim.link_events, &topo);
  out.trace_json = builder.json();
  out.metrics_json = MetricsRegistry::instance().to_json();
  return out;
}

}  // namespace syccl::obs
