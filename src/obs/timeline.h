// Renders simulated schedules as Chrome-trace link-occupancy timelines.
//
// Both simulation engines can supply the underlying intervals: the
// production simulator via SimOptions::record_link_events, and the reference
// oracle via OracleResult::events (always recorded). Each directed physical
// link becomes one Chrome thread, each block's wire occupancy one duration
// event named after its op — so loading trace.json in Perfetto shows the
// schedule as a Gantt chart: which link carries what, when, and where the
// bottleneck serialisation is. The fuzz harness uses the two-engine form to
// dump a divergent case's production and oracle timelines side by side.
#pragma once

#include <string>
#include <vector>

#include "obs/chrome_trace.h"
#include "sim/oracle.h"
#include "sim/schedule.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace syccl::obs {

/// Adds one track per directed link under process `pid`. `topo`, when given,
/// names tracks with link endpoints ("link 12 nvswitch0->gpu0.3"); otherwise
/// tracks are named "link <id>". Event args carry piece/block/src/dst.
void add_link_timeline(ChromeTraceBuilder& builder, int pid, const sim::Schedule& schedule,
                       const std::vector<sim::LinkEvent>& events,
                       const topo::Topology* topo = nullptr);

/// Same rendering for the reference simulator's event list.
void add_oracle_timeline(ChromeTraceBuilder& builder, int pid, const sim::Schedule& schedule,
                         const sim::OracleResult& oracle,
                         const topo::Topology* topo = nullptr);

}  // namespace syccl::obs
