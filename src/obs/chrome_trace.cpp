#include "obs/chrome_trace.h"

#include <algorithm>

#include "obs/json.h"

namespace syccl::obs {

void ChromeTraceBuilder::set_process_name(int pid, std::string name) {
  names_.push_back({pid, 0, false, std::move(name)});
}

void ChromeTraceBuilder::set_thread_name(int pid, std::uint64_t tid, std::string name) {
  names_.push_back({pid, tid, true, std::move(name)});
}

void ChromeTraceBuilder::add_event(TraceEvent event) {
  events_.push_back(std::move(event));
}

void ChromeTraceBuilder::add_spans(int pid, const std::vector<ThreadTrace>& threads) {
  for (const ThreadTrace& t : threads) {
    set_thread_name(pid, t.tid,
                    t.name.empty() ? "thread-" + std::to_string(t.tid) : t.name);
    for (const SpanRecord& s : t.spans) {
      TraceEvent e;
      e.name = s.name;
      e.category = s.category;
      e.ts_us = s.begin_us;
      e.dur_us = s.end_us - s.begin_us;
      e.pid = pid;
      e.tid = t.tid;
      e.args.reserve(s.args.size() + 1);
      for (const auto& [key, value] : s.args) e.args.emplace_back(key, value);
      e.args.emplace_back("depth", static_cast<double>(s.depth));
      events_.push_back(std::move(e));
    }
  }
}

std::string ChromeTraceBuilder::json() const {
  Json trace_events = Json::array();

  for (const NameRecord& n : names_) {
    Json args = Json::object();
    args.set("name", Json(n.name));
    Json meta = Json::object();
    meta.set("name", Json(n.is_thread ? "thread_name" : "process_name"));
    meta.set("ph", Json("M"));
    meta.set("pid", Json(n.pid));
    if (n.is_thread) meta.set("tid", Json(static_cast<double>(n.tid)));
    meta.set("args", std::move(args));
    trace_events.push_back(std::move(meta));
  }

  std::vector<const TraceEvent*> ordered;
  ordered.reserve(events_.size());
  for (const TraceEvent& e : events_) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) { return a->ts_us < b->ts_us; });

  for (const TraceEvent* e : ordered) {
    Json ev = Json::object();
    ev.set("name", Json(e->name));
    ev.set("cat", Json(e->category));
    ev.set("ph", Json("X"));
    ev.set("ts", Json(e->ts_us));
    ev.set("dur", Json(e->dur_us));
    ev.set("pid", Json(e->pid));
    ev.set("tid", Json(static_cast<double>(e->tid)));
    if (!e->args.empty()) {
      Json args = Json::object();
      for (const auto& [key, value] : e->args) args.set(key, Json(value));
      ev.set("args", std::move(args));
    }
    trace_events.push_back(std::move(ev));
  }

  Json root = Json::object();
  root.set("traceEvents", std::move(trace_events));
  root.set("displayTimeUnit", Json("ms"));
  return root.dump();
}

}  // namespace syccl::obs
