#include "obs/timeline.h"

#include <algorithm>
#include <set>

namespace syccl::obs {

namespace {

std::string link_track_name(int link_id, const topo::Topology* topo) {
  if (topo == nullptr || link_id < 0 ||
      static_cast<std::size_t>(link_id) >= topo->num_links()) {
    return "link " + std::to_string(link_id);
  }
  const topo::Link& link = topo->link(link_id);
  return "link " + std::to_string(link_id) + " [" + link.kind + "] " +
         topo->node(link.src).name + "->" + topo->node(link.dst).name;
}

/// Shared rendering: both engines reduce to (op, block, link, start, end).
struct Interval {
  int op;
  int block;
  int link;
  double start;
  double end;
};

void add_intervals(ChromeTraceBuilder& builder, int pid, const sim::Schedule& schedule,
                   const std::vector<Interval>& intervals, const topo::Topology* topo) {
  std::set<int> links;
  for (const Interval& iv : intervals) links.insert(iv.link);
  for (const int link : links) {
    // Track ids must be non-negative for Chrome; link ids are ≥ 0 already,
    // but shift by 1 so a stray -1 cannot collide with link 0.
    builder.set_thread_name(pid, static_cast<std::uint64_t>(link + 1),
                            link_track_name(link, topo));
  }
  for (const Interval& iv : intervals) {
    TraceEvent e;
    const bool known_op =
        iv.op >= 0 && static_cast<std::size_t>(iv.op) < schedule.ops.size();
    const sim::TransferOp* op = known_op ? &schedule.ops[static_cast<std::size_t>(iv.op)] : nullptr;
    e.name = "op" + std::to_string(iv.op) +
             (op != nullptr ? " p" + std::to_string(op->piece) + " " +
                                  std::to_string(op->src) + "->" + std::to_string(op->dst)
                            : std::string());
    e.category = "link";
    e.ts_us = iv.start * 1e6;
    e.dur_us = (iv.end - iv.start) * 1e6;
    e.pid = pid;
    e.tid = static_cast<std::uint64_t>(iv.link + 1);
    e.args.emplace_back("op", static_cast<double>(iv.op));
    e.args.emplace_back("block", static_cast<double>(iv.block));
    if (op != nullptr) {
      e.args.emplace_back("piece", static_cast<double>(op->piece));
      e.args.emplace_back("src", static_cast<double>(op->src));
      e.args.emplace_back("dst", static_cast<double>(op->dst));
    }
    builder.add_event(std::move(e));
  }
}

}  // namespace

void add_link_timeline(ChromeTraceBuilder& builder, int pid, const sim::Schedule& schedule,
                       const std::vector<sim::LinkEvent>& events,
                       const topo::Topology* topo) {
  std::vector<Interval> intervals;
  intervals.reserve(events.size());
  for (const sim::LinkEvent& e : events) {
    intervals.push_back({e.op, e.block, e.link, e.start, e.end});
  }
  add_intervals(builder, pid, schedule, intervals, topo);
}

void add_oracle_timeline(ChromeTraceBuilder& builder, int pid, const sim::Schedule& schedule,
                         const sim::OracleResult& oracle, const topo::Topology* topo) {
  std::vector<Interval> intervals;
  intervals.reserve(oracle.events.size());
  for (const sim::OracleEvent& e : oracle.events) {
    intervals.push_back({e.op, e.block, e.link, e.start, e.end});
  }
  add_intervals(builder, pid, schedule, intervals, topo);
}

}  // namespace syccl::obs
