// Process-wide metrics registry: named counters, gauges and log-bucketed
// histograms with a consistent snapshot and JSON/text exporters.
//
// This is the single reporting path for the per-call stat structs scattered
// through the pipeline (solver::SolveStats, SubScheduleCache::Stats,
// core::SynthesisBreakdown): those structs keep returning per-call values to
// their callers, and the instrumentation sites additionally fold the same
// fields into registry metrics, so one `metrics_json()` shows totals across
// an entire process — every solve, every cache shard, every synthesis.
//
// Cost model: instruments are plain atomics. `counter.add` is one relaxed
// fetch_add; `histogram.observe` is a frexp plus three relaxed RMWs (bucket,
// count, bits-of-double sum CAS). Lookup by name takes a mutex — hot paths
// must hoist it (`static auto& c = MetricsRegistry::instance().counter(...)`)
// so steady-state cost is the atomic alone. Returned references live as long
// as the registry (entries are never erased; reset() zeroes values in place).
//
// Histograms are base-2 log-bucketed: bucket i counts observations in
// [2^(i-64), 2^(i-63)), computed exactly with frexp so powers of two land in
// the bucket they open. That covers ~1e-19 … 1e19 — nanosecond solve times
// to multi-gigabyte sizes — with 128 fixed buckets and no configuration.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace syccl::obs {

class Counter {
 public:
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { bits_.store(pack(v), std::memory_order_relaxed); }
  double value() const { return unpack(bits_.load(std::memory_order_relaxed)); }
  void reset() { set(0.0); }

 private:
  static std::uint64_t pack(double v);
  static double unpack(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0};
};

class Histogram {
 public:
  static constexpr int kNumBuckets = 128;
  /// Exponent offset: bucket i spans [2^(i-kZeroBucket), 2^(i-kZeroBucket+1)).
  static constexpr int kZeroBucket = 64;

  /// Bucket index for a value. Non-positive and sub-range values clamp to
  /// bucket 0, values beyond the top bucket clamp to kNumBuckets - 1.
  static int bucket_index(double value);
  /// Inclusive lower bound of bucket i (2^(i - kZeroBucket)).
  static double bucket_lower_bound(int index);

  void observe(double value);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  std::int64_t bucket_count(int index) const {
    return buckets_[static_cast<std::size_t>(index)].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::int64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::int64_t> count_{0};
  /// Sum as bits-of-double, accumulated by CAS (atomic<double> fetch_add is
  /// not universally lock-free pre-C++20 library support).
  std::atomic<std::uint64_t> sum_bits_{0};
};

/// Point-in-time copy of every registered instrument.
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    std::int64_t count = 0;
    double sum = 0.0;
    /// (bucket lower bound, count) for non-empty buckets, ascending.
    std::vector<std::pair<double, std::int64_t>> buckets;
  };
  std::vector<std::pair<std::string, std::int64_t>> counters;  ///< sorted by name
  std::vector<std::pair<std::string, double>> gauges;          ///< sorted by name
  std::vector<HistogramData> histograms;                       ///< sorted by name
};

class MetricsRegistry {
 public:
  /// The process-wide registry used by all instrumentation sites.
  static MetricsRegistry& instance();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates an instrument. The reference stays valid forever;
  /// callers on hot paths hoist it into a local/static.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  /// buckets:[{le is implicit — "ge" lower bound, "count"}...]}}}
  std::string to_json() const;
  /// One instrument per line, for terminal diffing.
  std::string to_text() const;

  /// Zeroes every instrument in place (references stay valid). Scenario runs
  /// and tests call this to scope totals to one measured region.
  void reset();

 private:
  struct Impl;
  Impl& impl() const;
};

}  // namespace syccl::obs
