// Thread-safe span tracer for synthesis-time observability.
//
// A *span* is a named wall-clock interval recorded by an RAII guard
// (SYCCL_TRACE_SPAN). Spans nest: each thread keeps a depth counter, and a
// span records the depth at which it opened, so exporters can reconstruct
// the call tree (Chrome trace infers nesting from time containment on the
// same track, which these records satisfy by construction). Spans carry
// optional numeric annotations ("binaries" = 412, "cache_hit" = 1) that
// surface as args in the Chrome trace viewer.
//
// Disabled-path contract: tracing is off by default, and a span guard on the
// disabled path costs exactly one relaxed atomic load plus a branch — no
// clock read, no allocation, no lock. Instrumentation may therefore stay
// compiled into release hot paths (the synthesizer's candidate loop, every
// sub-demand solve, every simulator run); bench_synth gates the overhead.
//
// Recording path: each thread owns an append-only buffer registered with the
// process-global tracer on first use. The owning thread appends completed
// spans under the buffer's own mutex (uncontended in steady state — the only
// other taker is a snapshot), so threads never contend with each other.
// Buffers are shared_ptr-owned by both the thread and the registry: a
// ThreadPool worker that exits before the snapshot does not lose its spans.
//
// Timestamps are microseconds on std::chrono::steady_clock, relative to a
// process-wide epoch captured at static-init time, so spans from different
// threads share one timeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace syccl::obs {

namespace detail {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace detail

/// True while span recording is on. One relaxed load — callable on any path.
inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Turns span recording on or off process-wide. Spans already open when
/// tracing flips off still record (their guard captured the enabled state).
void set_tracing(bool enabled);

/// Microseconds since the tracer epoch on the steady clock.
double trace_now_us();

/// One completed span. `name` and `category` point at string literals
/// supplied by the instrumentation site (never freed, never copied).
struct SpanRecord {
  const char* name = nullptr;
  const char* category = nullptr;
  double begin_us = 0.0;
  double end_us = 0.0;
  /// Nesting depth at open (0 = top-level span of its thread).
  int depth = 0;
  std::vector<std::pair<const char*, double>> args;
};

/// Everything one thread recorded: a stable tid, an optional human name
/// (obs::set_thread_name) and the completed spans in completion order.
struct ThreadTrace {
  std::uint64_t tid = 0;
  std::string name;
  std::vector<SpanRecord> spans;
};

/// Names the calling thread in trace exports ("syccl-worker-3", "main").
/// Idempotent; cheap enough to call unconditionally from thread entry.
void set_thread_name(std::string name);

/// Copies every thread's completed spans. Safe to call while other threads
/// record; spans completing concurrently may or may not be included.
std::vector<ThreadTrace> trace_snapshot();

/// Drops all recorded spans (thread registrations and names survive).
void trace_clear();

namespace detail {

/// Appends `record` to the calling thread's buffer, registering the buffer
/// on first use. Called only on the enabled path.
void append_span(SpanRecord&& record);

/// Per-thread nesting depth; mutated only by the owning thread.
int& thread_depth();

}  // namespace detail

/// RAII span guard. Construct with string literals; destructor records.
class Span {
 public:
  explicit Span(const char* name, const char* category = "syccl") {
    if (!tracing_enabled()) return;
    active_ = true;
    record_.name = name;
    record_.category = category;
    record_.begin_us = trace_now_us();
    record_.depth = detail::thread_depth()++;
  }

  ~Span() {
    if (!active_) return;
    --detail::thread_depth();
    record_.end_us = trace_now_us();
    detail::append_span(std::move(record_));
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a numeric annotation; `key` must be a string literal. No-op
  /// when the span was constructed with tracing disabled.
  void annotate(const char* key, double value) {
    if (active_) record_.args.emplace_back(key, value);
  }

  /// Whether this guard is recording (tracing was enabled at construction).
  bool active() const { return active_; }

 private:
  bool active_ = false;
  SpanRecord record_;
};

}  // namespace syccl::obs

/// Scoped span over the rest of the enclosing block.
#define SYCCL_TRACE_SPAN(var, name, category) ::syccl::obs::Span var(name, category)
