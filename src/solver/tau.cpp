#include "solver/tau.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace syccl::solver {

EpochParams derive_epoch_params(double alpha, double beta, double bytes, double E) {
  if (beta <= 0 || bytes <= 0) throw std::invalid_argument("beta and bytes must be positive");
  if (alpha < 0) throw std::invalid_argument("alpha must be non-negative");
  if (E <= 0) throw std::invalid_argument("E must be positive");

  const double bs = beta * bytes;

  // τ = r·β·s with r or 1/r integer (bandwidth constraint, Fig. 18(a)).
  // E targets r directly: larger E → larger τ → coarser model. Among the two
  // valid neighbours of E we pick the one minimising the latency-constraint
  // slack g(r) = ⌈f(r)⌉ − f(r) with f(r) = (α+βs)/(r·βs) (Fig. 18(b)).
  std::vector<double> candidates;
  if (E >= 1.0) {
    const double lo = std::max(1.0, std::floor(E));
    candidates.push_back(lo);
    candidates.push_back(lo + 1.0);
  } else {
    const double k = 1.0 / E;
    const double lo = std::max(1.0, std::floor(k));
    candidates.push_back(1.0 / lo);
    candidates.push_back(1.0 / (lo + 1.0));
  }

  double best_r = candidates.front();
  double best_score = std::numeric_limits<double>::infinity();
  for (double r : candidates) {
    const double f = (alpha + bs) / (r * bs);
    const double g = std::ceil(f - 1e-12) - f;
    const double score = g + 0.01 * std::fabs(r - E) / std::max(E, 1e-12);
    if (score < best_score) {
      best_score = score;
      best_r = r;
    }
  }

  EpochParams p;
  p.r = best_r;
  p.tau = best_r * bs;
  p.lat_epochs = std::max(1, static_cast<int>(std::ceil((alpha + bs) / p.tau - 1e-9)));
  if (best_r >= 1.0) {
    p.capacity = std::max(1, static_cast<int>(std::llround(best_r)));
    p.occupancy = 1;
  } else {
    p.capacity = 1;
    p.occupancy = std::max(1, static_cast<int>(std::llround(1.0 / best_r)));
  }
  return p;
}

EpochParams derive_epoch_params(const topo::GroupTopology& group, double bytes, double E) {
  double worst_alpha = 0.0, worst_beta = 0.0;
  for (int i = 0; i < group.size(); ++i) {
    worst_alpha = std::max(worst_alpha,
                           group.up[static_cast<std::size_t>(i)].alpha +
                               group.down[static_cast<std::size_t>(i)].alpha);
    worst_beta = std::max({worst_beta, group.up[static_cast<std::size_t>(i)].beta,
                           group.down[static_cast<std::size_t>(i)].beta});
  }
  return derive_epoch_params(worst_alpha, worst_beta, bytes, E);
}

}  // namespace syccl::solver
