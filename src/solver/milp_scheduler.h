// MILP-based sub-demand scheduler (paper §5.1, Appendix A.1).
//
// Encodes a sub-demand into the epoch model as a MILP (binary send variables
// x[p][i][j][t], availability variables, per-epoch port capacities) and
// minimises the number of completion epochs. The greedy schedule seeds the
// search as an incumbent, so the result is never worse than greedy; under
// node/time limits the incumbent survives — exactly how the paper operates
// its commercial solver.
//
// Transfers are restricted to the members of each piece's demand (its source
// and destinations): in the star group abstraction, relaying through an
// uninvolved GPU cannot reduce the bottleneck port load.
#pragma once

#include <vector>

#include "lp/flow_relax.h"
#include "milp/branch_and_bound.h"
#include "solver/epoch_model.h"

namespace syccl::solver {

/// ε objective weight on every send variable: keeps the MILP schedule
/// traffic-minimal among equally fast solutions. Shared with the flow
/// relaxation, whose bound lives on the same objective scale.
inline constexpr double kMilpSendCost = 1e-3;

struct MilpSchedulerOptions {
  /// Epoch knob (Appendix A.3). Coarse step E₁ ≈ 3.0, fine step E₂ ≈ 0.5.
  double E = 1.0;
  double time_limit_s = 2.0;
  long node_limit = 4000;
  /// Skip the MILP (greedy only) when the encoding would exceed this many
  /// binary variables; keeps the dense-simplex B&B inside its practical size
  /// range (worst-case synthesis time stays bounded).
  int max_binaries = 500;
  /// Force greedy-only solving (used by fast/coarse passes and ablations).
  bool greedy_only = false;
  /// Multi-commodity flow dual bounds (lp::FlowRelaxation): a root bound
  /// that can prove the greedy incumbent optimal before any branching, plus
  /// depth/frequency-gated per-node bound refreshes. Changes speed, never
  /// answers (the winning schedule is byte-identical either way).
  bool use_flow_bounds = true;
  /// Consult the flow bound at nodes of branching depth ≤ this.
  int flow_node_depth = 6;
  /// Additionally consult it at every Nth explored node (0 = never).
  long flow_node_every = 16;
};

struct SolveStats {
  bool used_milp = false;
  bool milp_improved = false;
  /// Served from the process-wide SubScheduleCache without solving.
  bool cache_hit = false;
  double solve_seconds = 0.0;
  long nodes_explored = 0;
  int binaries = 0;
  /// Simplex pivots across all node LPs of the MILP solve.
  long lp_iterations = 0;
  /// Node LPs served by warm dual-simplex re-entry / cold fallbacks.
  long warm_hits = 0;
  long warm_fallbacks = 0;
  /// Nodes pruned by per-node bound propagation before any LP call.
  long presolve_prunes = 0;
  /// Nodes pruned by their inherited bound against the incumbent (pre-LP)
  /// vs. by their own LP relaxation bound (post-solve) — split so benches
  /// can attribute wins to the bound that closed the node.
  long bound_prunes = 0;
  long lp_prunes = 0;
  /// Nodes closed by the multi-commodity flow bound (LP call skipped).
  long flow_prunes = 0;
  /// Flow bound at the root box (−inf when flow bounds were off/unused).
  double flow_root_bound = -lp::kInf;
  /// Simplex pivots spent inside the flow relaxation.
  long flow_lp_iterations = 0;
};

/// Solves `demand`: derives epoch parameters from the group and `options.E`,
/// runs the greedy scheduler, then (size permitting) the MILP with the
/// greedy incumbent. Returns the best feasible schedule found.
SubSchedule solve_sub_demand(const SubDemand& demand, const MilpSchedulerOptions& options = {},
                             SolveStats* stats = nullptr);

/// Builds the epoch-model MILP encoding of `demand` over `horizon` epochs
/// (E controls τ) and returns its binary-variable count. Exposed so
/// bench_micro can track the encode step in isolation; solving goes through
/// solve_sub_demand.
int encode_sub_demand_binaries(const SubDemand& demand, double E, int horizon);

/// A fully-built MILP encoding of one sub-demand, with the greedy schedule
/// translated into an integer-feasible incumbent vector. Exposed so
/// bench_milp can exercise the branch-and-bound / warm-started-LP stack on
/// representative encodings without going through the synthesis pipeline.
struct SubDemandEncoding {
  milp::MilpProblem problem;
  std::vector<double> incumbent;  ///< greedy schedule as a MILP warm start
  int binaries = 0;
  int horizon = 0;  ///< epochs encoded (greedy completion when derived)
  /// Flow projection of the variable layout + the epoch discretisation it
  /// was encoded under, so callers can stand up an lp::FlowRelaxation.
  lp::FlowVarMap flow_map;
  EpochParams params;
};

/// Encodes `demand` over `horizon` epochs (`horizon` ≤ 0 uses the greedy
/// schedule's completion epoch, the same horizon solve_sub_demand uses).
SubDemandEncoding encode_sub_demand_milp(const SubDemand& demand, double E, int horizon = 0);

}  // namespace syccl::solver
