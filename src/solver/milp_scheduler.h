// MILP-based sub-demand scheduler (paper §5.1, Appendix A.1).
//
// Encodes a sub-demand into the epoch model as a MILP (binary send variables
// x[p][i][j][t], availability variables, per-epoch port capacities) and
// minimises the number of completion epochs. The greedy schedule seeds the
// search as an incumbent, so the result is never worse than greedy; under
// node/time limits the incumbent survives — exactly how the paper operates
// its commercial solver.
//
// Transfers are restricted to the members of each piece's demand (its source
// and destinations): in the star group abstraction, relaying through an
// uninvolved GPU cannot reduce the bottleneck port load.
#pragma once

#include "solver/epoch_model.h"

namespace syccl::solver {

struct MilpSchedulerOptions {
  /// Epoch knob (Appendix A.3). Coarse step E₁ ≈ 3.0, fine step E₂ ≈ 0.5.
  double E = 1.0;
  double time_limit_s = 2.0;
  long node_limit = 4000;
  /// Skip the MILP (greedy only) when the encoding would exceed this many
  /// binary variables; keeps the dense-simplex B&B inside its practical size
  /// range (worst-case synthesis time stays bounded).
  int max_binaries = 500;
  /// Force greedy-only solving (used by fast/coarse passes and ablations).
  bool greedy_only = false;
};

struct SolveStats {
  bool used_milp = false;
  bool milp_improved = false;
  /// Served from the process-wide SubScheduleCache without solving.
  bool cache_hit = false;
  double solve_seconds = 0.0;
  long nodes_explored = 0;
  int binaries = 0;
};

/// Solves `demand`: derives epoch parameters from the group and `options.E`,
/// runs the greedy scheduler, then (size permitting) the MILP with the
/// greedy incumbent. Returns the best feasible schedule found.
SubSchedule solve_sub_demand(const SubDemand& demand, const MilpSchedulerOptions& options = {},
                             SolveStats* stats = nullptr);

/// Builds the epoch-model MILP encoding of `demand` over `horizon` epochs
/// (E controls τ) and returns its binary-variable count. Exposed so
/// bench_micro can track the encode step in isolation; solving goes through
/// solve_sub_demand.
int encode_sub_demand_binaries(const SubDemand& demand, double E, int horizon);

}  // namespace syccl::solver
