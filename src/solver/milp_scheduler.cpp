#include "solver/milp_scheduler.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "lp/flow_relax.h"

#include "milp/branch_and_bound.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/greedy.h"
#include "solver/tau.h"
#include "util/log.h"
#include "util/stopwatch.h"

namespace syccl::solver {

namespace {

/// Packed (p, i, j, t) keys for the per-solve variable tables. 16 bits per
/// field is far beyond anything the binary-count gate lets through.
inline std::uint64_t pack4(int a, int b, int c, int d) {
  return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(a)) << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(b)) << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(c)) << 16) |
         static_cast<std::uint64_t>(static_cast<std::uint16_t>(d));
}
// pack3 reuses the pack4 layout with j = 0, so the key_* extractors below
// read both x (p,i,j,t) and has (p,i,t) keys uniformly.
inline std::uint64_t pack3(int a, int b, int c) { return pack4(a, b, 0, c); }

/// Insertion-ordered hash table from packed key to variable id: O(1) lookups
/// on the encode hot path, while `list` preserves the deterministic emission
/// order the constraint builders (and thus B&B) rely on.
struct VarTable {
  std::unordered_map<std::uint64_t, int> id;
  std::vector<std::pair<std::uint64_t, int>> list;  ///< insertion order

  void add(std::uint64_t key, int var) {
    id.emplace(key, var);
    list.emplace_back(key, var);
  }
  int at(std::uint64_t key) const {
    const auto it = id.find(key);
    if (it == id.end()) throw std::logic_error("missing encoding variable");
    return it->second;
  }
  const int* find(std::uint64_t key) const {
    const auto it = id.find(key);
    return it == id.end() ? nullptr : &it->second;
  }
};

/// Variable bookkeeping for one encoded sub-demand.
struct Encoding {
  milp::MilpProblem problem;
  // x keyed by pack4(p, i, j, t); has keyed by pack3(p, i, t).
  VarTable x;
  VarTable has;
  std::vector<int> done;  ///< done[t-1] for t = 1..T
  int horizon = 0;
  int binaries = 0;
  /// Flow projection of the x/done layout for lp::FlowRelaxation.
  lp::FlowVarMap flow_map;
};

/// Field extractors for the packed keys.
inline int key_p(std::uint64_t k) { return static_cast<int>((k >> 48) & 0xffff); }
inline int key_i(std::uint64_t k) { return static_cast<int>((k >> 32) & 0xffff); }
inline int key_j(std::uint64_t k) { return static_cast<int>((k >> 16) & 0xffff); }
inline int key_t(std::uint64_t k) { return static_cast<int>(k & 0xffff); }

Encoding encode(const SubDemand& demand, const EpochParams& ep, int horizon) {
  const topo::GroupTopology& g = *demand.group;
  const int np = static_cast<int>(demand.pieces.size());
  const int T = horizon;
  Encoding enc;
  enc.horizon = T;
  lp::Problem& pb = enc.problem.lp;

  // Members of each piece: src + dsts.
  std::vector<std::vector<int>> members(static_cast<std::size_t>(np));
  for (int p = 0; p < np; ++p) {
    const DemandPiece& dp = demand.pieces[static_cast<std::size_t>(p)];
    std::set<int> m(dp.dsts.begin(), dp.dsts.end());
    m.insert(dp.srcs.begin(), dp.srcs.end());
    members[static_cast<std::size_t>(p)] = std::vector<int>(m.begin(), m.end());
  }

  // Variables. The ε objective weight on x (kMilpSendCost) keeps the
  // schedule traffic-minimal among equally fast solutions. Each (p, i, j)
  // family of x variables becomes one arc of the flow projection.
  for (int p = 0; p < np; ++p) {
    const DemandPiece& dp = demand.pieces[static_cast<std::size_t>(p)];
    const std::set<int> dstset(dp.dsts.begin(), dp.dsts.end());
    const std::set<int> srcset(dp.srcs.begin(), dp.srcs.end());
    for (int i : members[static_cast<std::size_t>(p)]) {
      for (int t = 0; t <= T; ++t) {
        const bool is_src = srcset.count(i) != 0;
        const bool must_end = (t == T && dstset.count(i) != 0);
        const double lo = (is_src || must_end) ? 1.0 : 0.0;
        const double hi = (is_src || t > 0) ? 1.0 : 0.0;  // has[·][·][0] = 0 unless src
        enc.has.add(pack3(p, i, t), pb.add_var(lo, hi, 0.0));
      }
      if (dstset.count(i) == 0 && srcset.count(i) == 0) continue;
      for (int j : dp.dsts) {
        if (j == i) continue;
        lp::FlowVarMap::Arc arc;
        arc.piece = p;
        arc.from = i;
        arc.to = j;
        for (int t = 0; t + ep.lat_epochs <= T; ++t) {
          const int var = pb.add_var(0.0, 1.0, kMilpSendCost);
          enc.x.add(pack4(p, i, j, t), var);
          arc.x_vars.push_back(var);
          ++enc.binaries;
        }
        enc.flow_map.arcs.push_back(std::move(arc));
      }
    }
  }
  for (int t = 1; t <= T; ++t) {
    enc.done.push_back(pb.add_var(0.0, 1.0, -1.0));  // maximize Σ done
    enc.flow_map.done_vars.push_back(enc.done.back());
    ++enc.binaries;
  }

  enc.problem.is_integer.assign(static_cast<std::size_t>(pb.num_vars), true);

  // Monotonicity: has[p][i][t] ≤ has[p][i][t+1].
  for (const auto& [key, var] : enc.has.list) {
    const int p = key_p(key), i = key_i(key), t = key_t(key);
    if (t == 0) continue;
    const int prev = enc.has.at(pack3(p, i, t - 1));
    pb.add_constraint({{{prev, 1.0}, {var, -1.0}}, lp::Relation::LessEq, 0.0});
  }
  // Sends require availability: x[p][i][j][t] ≤ has[p][i][t].
  for (const auto& [key, var] : enc.x.list) {
    const int p = key_p(key), i = key_i(key), t = key_t(key);
    pb.add_constraint(
        {{{var, 1.0}, {enc.has.at(pack3(p, i, t)), -1.0}}, lp::Relation::LessEq, 0.0});
  }
  // Arrival: has[p][j][t] ≤ has[p][j][t-1] + Σ_i x[p][i][j][t-L].
  std::unordered_map<std::uint64_t, std::vector<int>> inbound;  // pack3(p, j, ts) → x vars
  inbound.reserve(enc.x.list.size());
  for (const auto& [key, var] : enc.x.list) {
    inbound[pack3(key_p(key), key_j(key), key_t(key))].push_back(var);
  }
  for (const auto& [key, var] : enc.has.list) {
    const int p = key_p(key), j = key_i(key), t = key_t(key);
    if (t == 0) continue;
    const DemandPiece& dp = demand.pieces[static_cast<std::size_t>(p)];
    if (std::find(dp.srcs.begin(), dp.srcs.end(), j) != dp.srcs.end()) {
      continue;  // sources always have it
    }
    lp::Constraint c;
    c.terms.push_back({var, 1.0});
    c.terms.push_back({enc.has.at(pack3(p, j, t - 1)), -1.0});
    const int ts = t - ep.lat_epochs;
    if (ts >= 0) {
      const auto iit = inbound.find(pack3(p, j, ts));
      if (iit != inbound.end()) {
        for (int xvar : iit->second) c.terms.push_back({xvar, -1.0});
      }
    }
    c.rel = lp::Relation::LessEq;
    c.rhs = 0.0;
    pb.add_constraint(c);
  }
  // Port capacities: for every physical port/direction and epoch t, sends
  // started in (t-O, t] occupy it; total ≤ C.
  std::map<std::pair<int, int>, std::vector<std::pair<int, int>>> sends_by_port;
  for (const auto& [key, var] : enc.x.list) {
    const int i = key_i(key), j = key_j(key), t = key_t(key);
    sends_by_port[{g.up[static_cast<std::size_t>(i)].port_id, 0}].push_back({var, t});
    sends_by_port[{g.down[static_cast<std::size_t>(j)].port_id, 1}].push_back({var, t});
  }
  for (const auto& [port, sends] : sends_by_port) {
    (void)port;
    for (int t = 0; t <= T; ++t) {
      lp::Constraint c;
      for (const auto& [var, ts] : sends) {
        if (ts <= t && t < ts + ep.occupancy) c.terms.push_back({var, 1.0});
      }
      if (c.terms.size() <= static_cast<std::size_t>(ep.capacity)) continue;  // trivially satisfied
      c.rel = lp::Relation::LessEq;
      c.rhs = ep.capacity;
      pb.add_constraint(c);
    }
  }
  // done[t] ≤ has[p][d][t] for every demanded pair.
  for (int t = 1; t <= T; ++t) {
    const int dv = enc.done[static_cast<std::size_t>(t - 1)];
    for (int p = 0; p < np; ++p) {
      for (int d : demand.pieces[static_cast<std::size_t>(p)].dsts) {
        pb.add_constraint(
            {{{dv, 1.0}, {enc.has.at(pack3(p, d, t)), -1.0}}, lp::Relation::LessEq, 0.0});
      }
    }
  }
  return enc;
}

/// Builds the MILP warm-start vector from a feasible sub-schedule.
std::vector<double> incumbent_vector(const Encoding& enc, const SubDemand& demand,
                                     const EpochParams& ep, const SubSchedule& sched) {
  std::vector<double> x0(static_cast<std::size_t>(enc.problem.lp.num_vars), 0.0);
  // Arrival epochs per (piece, local).
  std::map<std::pair<int, int>, int> arrival;
  for (const auto& p : demand.pieces) {
    for (int s : p.srcs) arrival[{p.id, s}] = 0;
  }
  for (const auto& op : sched.ops) {
    auto [it, inserted] = arrival.try_emplace({op.piece, op.dst}, op.start_epoch + ep.lat_epochs);
    if (!inserted) it->second = std::min(it->second, op.start_epoch + ep.lat_epochs);
    const int* xvar = enc.x.find(pack4(op.piece, op.src, op.dst, op.start_epoch));
    if (xvar == nullptr) throw std::logic_error("incumbent op outside encoding");
    x0[static_cast<std::size_t>(*xvar)] = 1.0;
  }
  for (const auto& [key, var] : enc.has.list) {
    const auto it = arrival.find({key_p(key), key_i(key)});
    x0[static_cast<std::size_t>(var)] =
        (it != arrival.end() && it->second <= key_t(key)) ? 1.0 : 0.0;
  }
  for (int t = 1; t <= enc.horizon; ++t) {
    bool all = true;
    for (const auto& p : demand.pieces) {
      for (int d : p.dsts) {
        const auto it = arrival.find({p.id, d});
        if (it == arrival.end() || it->second > t) {
          all = false;
          break;
        }
      }
      if (!all) break;
    }
    x0[static_cast<std::size_t>(enc.done[static_cast<std::size_t>(t - 1)])] = all ? 1.0 : 0.0;
  }
  return x0;
}

/// Decodes a MILP solution back into a sub-schedule.
SubSchedule decode(const Encoding& enc, const EpochParams& ep, const std::vector<double>& x) {
  SubSchedule out;
  out.params = ep;
  for (const auto& [key, var] : enc.x.list) {
    if (x[static_cast<std::size_t>(var)] > 0.5) {
      out.ops.push_back(SubOp{key_p(key), key_i(key), key_j(key), key_t(key)});
    }
  }
  std::stable_sort(out.ops.begin(), out.ops.end(),
                   [](const SubOp& a, const SubOp& b) { return a.start_epoch < b.start_epoch; });
  for (const auto& op : out.ops) {
    out.num_epochs = std::max(out.num_epochs, op.start_epoch + ep.lat_epochs);
  }
  return out;
}

}  // namespace

SubSchedule solve_sub_demand(const SubDemand& demand, const MilpSchedulerOptions& options,
                             SolveStats* stats) {
  SYCCL_TRACE_SPAN(span, "solve_sub_demand", "solver");
  util::Stopwatch clock;
  demand.validate();
  const EpochParams ep = derive_epoch_params(*demand.group, demand.piece_bytes, options.E);

  SubSchedule best = solve_greedy(demand, ep);
  SolveStats local;

  // α-dominated regimes can make one transmission span hundreds of epochs;
  // the epoch encoding then degenerates (huge horizons, tiny decisions), so
  // the greedy schedule — optimal in that regime — stands.
  constexpr int kMaxHorizon = 48;
  if (!options.greedy_only && best.num_epochs > ep.lat_epochs &&
      best.num_epochs <= kMaxHorizon) {
    // Arithmetic size estimate first: building a hopeless encoding is itself
    // expensive for large merged demands. Availability variables (members ×
    // epochs) dominate the tableau for long horizons, so they count too.
    const int T = best.num_epochs;
    long estimate = T;
    for (const auto& piece : demand.pieces) {
      const long members = static_cast<long>(piece.srcs.size() + piece.dsts.size());
      estimate += members * static_cast<long>(piece.dsts.size()) *
                  std::max(1, T - ep.lat_epochs + 1);
      estimate += members * (T + 1);
    }
    local.binaries = static_cast<int>(std::min<long>(estimate, 1 << 30));
    if (estimate <= options.max_binaries) {
    Encoding enc = encode(demand, ep, T);
    local.binaries = enc.binaries;
    if (enc.binaries <= options.max_binaries) {
      local.used_milp = true;
      milp::MilpOptions mopts;
      mopts.time_limit_s = options.time_limit_s;
      mopts.node_limit = options.node_limit;
      std::optional<lp::FlowRelaxation> flow;
      if (options.use_flow_bounds) {
        flow.emplace(demand, ep, T, enc.flow_map, kMilpSendCost);
        mopts.flow = &*flow;
        mopts.flow_node_depth = options.flow_node_depth;
        mopts.flow_node_every = options.flow_node_every;
      }
      const auto warm = incumbent_vector(enc, demand, ep, best);
      const milp::MilpSolution sol = milp::solve(enc.problem, mopts, warm);
      local.nodes_explored = sol.nodes_explored;
      local.lp_iterations = sol.lp_iterations;
      local.warm_hits = sol.warm_hits;
      local.warm_fallbacks = sol.warm_fallbacks;
      local.presolve_prunes = sol.presolve_prunes;
      local.bound_prunes = sol.bound_prunes;
      local.lp_prunes = sol.lp_prunes;
      local.flow_prunes = sol.flow_prunes;
      local.flow_root_bound = sol.flow_root_bound;
      local.flow_lp_iterations = sol.flow_lp_iterations;
      if ((sol.status == milp::MilpStatus::Optimal || sol.status == milp::MilpStatus::Feasible) &&
          !sol.x.empty()) {
        SubSchedule cand = decode(enc, ep, sol.x);
        try {
          check_sub_schedule(demand, cand);
          if (cand.num_epochs < best.num_epochs ||
              (cand.num_epochs == best.num_epochs && cand.ops.size() < best.ops.size())) {
            best = std::move(cand);
            local.milp_improved = true;
          }
        } catch (const std::logic_error& e) {
          SYCCL_WARN << "MILP schedule rejected by checker: " << e.what();
        }
      }
    }
    }
  }

  local.solve_seconds = clock.elapsed_seconds();

  // Fold the per-solve stats into the metrics registry (one reporting path;
  // the struct keeps serving per-call consumers like the solve cache and
  // SynthesisBreakdown). References hoisted: solves run on the synthesis hot
  // path, so steady-state cost is a handful of relaxed atomics.
  {
    auto& reg = obs::MetricsRegistry::instance();
    static obs::Counter& solves = reg.counter("solver.solves");
    static obs::Counter& milp_used = reg.counter("solver.milp_used");
    static obs::Counter& milp_improved = reg.counter("solver.milp_improved");
    static obs::Counter& nodes = reg.counter("solver.nodes_explored");
    static obs::Counter& lp_iters = reg.counter("solver.lp_iterations");
    static obs::Counter& warm_hits = reg.counter("solver.warm_hits");
    static obs::Counter& warm_fallbacks = reg.counter("solver.warm_fallbacks");
    static obs::Counter& presolve_prunes = reg.counter("solver.presolve_prunes");
    static obs::Counter& bound_prunes = reg.counter("solver.bound_prunes");
    static obs::Counter& lp_prunes = reg.counter("solver.lp_prunes");
    static obs::Counter& flow_prunes = reg.counter("solver.flow_prunes");
    static obs::Counter& flow_lp_iters = reg.counter("solver.flow_lp_iterations");
    static obs::Histogram& seconds = reg.histogram("solver.solve_seconds");
    static obs::Histogram& binaries = reg.histogram("solver.binaries");
    solves.add(1);
    if (local.used_milp) milp_used.add(1);
    if (local.milp_improved) milp_improved.add(1);
    nodes.add(local.nodes_explored);
    lp_iters.add(local.lp_iterations);
    warm_hits.add(local.warm_hits);
    warm_fallbacks.add(local.warm_fallbacks);
    presolve_prunes.add(local.presolve_prunes);
    bound_prunes.add(local.bound_prunes);
    lp_prunes.add(local.lp_prunes);
    flow_prunes.add(local.flow_prunes);
    flow_lp_iters.add(local.flow_lp_iterations);
    seconds.observe(local.solve_seconds);
    binaries.observe(local.binaries);
  }
  span.annotate("binaries", local.binaries);
  span.annotate("used_milp", local.used_milp ? 1.0 : 0.0);
  span.annotate("milp_improved", local.milp_improved ? 1.0 : 0.0);
  span.annotate("nodes", static_cast<double>(local.nodes_explored));
  span.annotate("flow_prunes", static_cast<double>(local.flow_prunes));
  span.annotate("epochs", best.num_epochs);

  if (stats != nullptr) *stats = local;
  return best;
}

int encode_sub_demand_binaries(const SubDemand& demand, double E, int horizon) {
  demand.validate();
  const EpochParams ep = derive_epoch_params(*demand.group, demand.piece_bytes, E);
  return encode(demand, ep, horizon).binaries;
}

SubDemandEncoding encode_sub_demand_milp(const SubDemand& demand, double E, int horizon) {
  demand.validate();
  const EpochParams ep = derive_epoch_params(*demand.group, demand.piece_bytes, E);
  const SubSchedule greedy = solve_greedy(demand, ep);
  const int T = horizon > 0 ? horizon : greedy.num_epochs;
  Encoding enc = encode(demand, ep, T);
  SubDemandEncoding out;
  out.binaries = enc.binaries;
  out.horizon = T;
  out.params = ep;
  // The greedy incumbent only fits encodings whose horizon covers it.
  if (greedy.num_epochs <= T) out.incumbent = incumbent_vector(enc, demand, ep, greedy);
  out.problem = std::move(enc.problem);
  out.flow_map = std::move(enc.flow_map);
  return out;
}

}  // namespace syccl::solver
