// Automatic epoch-duration selection (paper Appendix A.3).
//
// τ must simultaneously satisfy the bandwidth constraint (τ = r·β·s with r or
// 1/r integer, Fig. 18(a)) and come close to the latency constraint
// (⌈(α+βs)/τ⌉ epochs should waste little time, Fig. 18(b)). The knob E sets
// the target number of epochs per transmission: larger E → larger τ → fewer
// MILP variables but coarser schedules.
#pragma once

#include "solver/epoch_model.h"

namespace syccl::solver {

/// Derives epoch parameters for a link class (α, β) and piece size `bytes`
/// from the accuracy knob E (paper uses E₁=3.0 coarse, E₂=0.5 fine).
/// Guarantees τ > 0, L ≥ 1, and exactly one of C > 1 / O > 1.
EpochParams derive_epoch_params(double alpha, double beta, double bytes, double E);

/// Convenience: derive from the worst-case pair parameters of a group.
EpochParams derive_epoch_params(const topo::GroupTopology& group, double bytes, double E);

}  // namespace syccl::solver
