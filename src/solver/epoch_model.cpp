#include "solver/epoch_model.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

namespace syccl::solver {

std::string SubDemand::isomorphism_key() const {
  // The key is the demand structure in local indices plus the group
  // signature. Two demands with the same key on positionally isomorphic
  // groups accept the same schedule (with local indices re-interpreted).
  std::ostringstream os;
  os << (group != nullptr ? group->signature() : "?") << "#s=" << piece_bytes << "#";
  std::vector<std::string> piece_keys;
  for (const auto& p : pieces) {
    std::ostringstream ps;
    std::vector<int> src = p.srcs;
    std::sort(src.begin(), src.end());
    for (int x : src) ps << x << ",";
    ps << ":";
    std::vector<int> d = p.dsts;
    std::sort(d.begin(), d.end());
    for (int x : d) ps << x << ",";
    piece_keys.push_back(ps.str());
  }
  std::sort(piece_keys.begin(), piece_keys.end());
  for (const auto& k : piece_keys) os << k << ";";
  return os.str();
}

void SubDemand::validate() const {
  if (group == nullptr) throw std::invalid_argument("sub-demand without group");
  if (pieces.empty()) throw std::invalid_argument("sub-demand without pieces");
  if (piece_bytes <= 0) throw std::invalid_argument("sub-demand piece_bytes must be positive");
  const int n = group->size();
  for (const auto& p : pieces) {
    if (p.srcs.empty()) throw std::invalid_argument("piece without sources");
    for (int s : p.srcs) {
      if (s < 0 || s >= n) throw std::invalid_argument("piece src out of group");
    }
    if (p.dsts.empty()) throw std::invalid_argument("piece without destinations");
    for (int d : p.dsts) {
      if (d < 0 || d >= n) throw std::invalid_argument("piece dst out of group");
      for (int s : p.srcs) {
        if (d == s) throw std::invalid_argument("piece dst equals src");
      }
    }
  }
}

void check_sub_schedule(const SubDemand& demand, const SubSchedule& sched) {
  demand.validate();
  const topo::GroupTopology& g = *demand.group;
  const int n = g.size();
  const EpochParams& ep = sched.params;

  // arrival[piece][local] = epoch at which the piece becomes usable.
  std::map<std::pair<int, int>, int> arrival;
  for (const auto& p : demand.pieces) {
    for (int s : p.srcs) arrival[{p.id, s}] = 0;
  }

  // Port usage per (port id, direction, epoch).
  std::map<std::tuple<int, int, int>, int> usage;

  std::vector<SubOp> ops = sched.ops;
  std::stable_sort(ops.begin(), ops.end(),
                   [](const SubOp& a, const SubOp& b) { return a.start_epoch < b.start_epoch; });

  for (const auto& op : ops) {
    if (op.src < 0 || op.src >= n || op.dst < 0 || op.dst >= n) {
      throw std::logic_error("sub-op endpoint outside group");
    }
    const auto it = arrival.find({op.piece, op.src});
    if (it == arrival.end() || it->second > op.start_epoch) {
      std::ostringstream os;
      os << "sub-op sends piece " << op.piece << " from " << op.src << " at epoch "
         << op.start_epoch << " before it is available";
      throw std::logic_error(os.str());
    }
    const int up_port = g.up[static_cast<std::size_t>(op.src)].port_id;
    const int down_port = g.down[static_cast<std::size_t>(op.dst)].port_id;
    for (int o = 0; o < ep.occupancy; ++o) {
      for (const auto& [port, dir] : {std::pair{up_port, 0}, std::pair{down_port, 1}}) {
        int& u = usage[{port, dir, op.start_epoch + o}];
        if (++u > ep.capacity) {
          std::ostringstream os;
          os << "port " << port << (dir == 0 ? " (up)" : " (down)") << " over capacity at epoch "
             << op.start_epoch + o;
          throw std::logic_error(os.str());
        }
      }
    }
    auto [dit, inserted] = arrival.try_emplace({op.piece, op.dst}, op.start_epoch + ep.lat_epochs);
    if (!inserted) dit->second = std::min(dit->second, op.start_epoch + ep.lat_epochs);
  }

  int completion = 0;
  for (const auto& p : demand.pieces) {
    for (int d : p.dsts) {
      const auto it = arrival.find({p.id, d});
      if (it == arrival.end()) {
        std::ostringstream os;
        os << "demand unmet: piece " << p.id << " never reaches " << d;
        throw std::logic_error(os.str());
      }
      completion = std::max(completion, it->second);
    }
  }
  if (completion > sched.num_epochs) {
    std::ostringstream os;
    os << "schedule claims " << sched.num_epochs << " epochs but completes at " << completion;
    throw std::logic_error(os.str());
  }
}

SubSchedule remap_sub_schedule(const SubSchedule& sched, const std::vector<int>& mapping) {
  SubSchedule out = sched;
  for (auto& op : out.ops) {
    if (op.src < 0 || static_cast<std::size_t>(op.src) >= mapping.size() || op.dst < 0 ||
        static_cast<std::size_t>(op.dst) >= mapping.size()) {
      throw std::invalid_argument("sub-op endpoint outside mapping");
    }
    op.src = mapping[static_cast<std::size_t>(op.src)];
    op.dst = mapping[static_cast<std::size_t>(op.dst)];
  }
  return out;
}

}  // namespace syccl::solver
