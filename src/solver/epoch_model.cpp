#include "solver/epoch_model.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

namespace syccl::solver {

namespace {

std::vector<int> invert_perm(const std::vector<int>& perm) {
  std::vector<int> inv(perm.size(), -1);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inv[static_cast<std::size_t>(perm[i])] = static_cast<int>(i);
  }
  return inv;
}

}  // namespace

SubScheduleRemap CanonicalDemand::to_canonical() const {
  if (identity) return {};
  return SubScheduleRemap{member_perm, piece_perm};
}

SubScheduleRemap CanonicalDemand::from_canonical() const {
  if (identity) return {};
  return SubScheduleRemap{invert_perm(member_perm), invert_perm(piece_perm)};
}

CanonicalDemand SubDemand::canonical() const {
  // Canonicalise the group first (stable member relabelling under positional
  // isomorphism), then express every piece in canonical member indices and
  // sort the pieces by that encoding. Demands with equal keys are identical
  // in canonical coordinates, so cached canonical schedules transfer exactly.
  if (group == nullptr) throw std::invalid_argument("sub-demand without group");
  const topo::GroupTopology::CanonicalForm form = group->canonical_form();
  const auto& perm = form.perm;
  const std::size_t np = pieces.size();

  std::vector<std::string> enc(np);
  for (std::size_t t = 0; t < np; ++t) {
    const auto& p = pieces[t];
    std::ostringstream ps;
    std::vector<int> src, dst;
    src.reserve(p.srcs.size());
    dst.reserve(p.dsts.size());
    for (int x : p.srcs) src.push_back(perm.at(static_cast<std::size_t>(x)));
    for (int x : p.dsts) dst.push_back(perm.at(static_cast<std::size_t>(x)));
    std::sort(src.begin(), src.end());
    std::sort(dst.begin(), dst.end());
    for (int x : src) ps << x << ",";
    ps << ":";
    for (int x : dst) ps << x << ",";
    enc[t] = ps.str();
  }

  // Canonical piece order: by encoding, ties by list position. Ties are
  // pieces indistinguishable in canonical coordinates, so any consistent
  // order is sound.
  std::vector<std::size_t> ord(np);
  for (std::size_t t = 0; t < np; ++t) ord[t] = t;
  std::sort(ord.begin(), ord.end(), [&](std::size_t a, std::size_t b) {
    if (enc[a] != enc[b]) return enc[a] < enc[b];
    return a < b;
  });

  CanonicalDemand out;
  out.member_perm = perm;
  out.piece_perm.assign(np, -1);
  for (std::size_t k = 0; k < np; ++k) {
    const int id = pieces[ord[k]].id;
    if (id < 0 || static_cast<std::size_t>(id) >= np || out.piece_perm[static_cast<std::size_t>(id)] != -1) {
      throw std::invalid_argument("sub-demand piece ids are not a permutation of [0, n)");
    }
    out.piece_perm[static_cast<std::size_t>(id)] = static_cast<int>(k);
  }

  std::ostringstream os;
  os << form.signature << "#s=" << std::hexfloat << piece_bytes << "#";
  for (std::size_t k = 0; k < np; ++k) os << enc[ord[k]] << ";";
  out.key = os.str();

  out.identity = true;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != static_cast<int>(i)) out.identity = false;
  }
  for (std::size_t i = 0; i < np; ++i) {
    if (out.piece_perm[i] != static_cast<int>(i)) out.identity = false;
  }
  return out;
}

std::string SubDemand::isomorphism_key() const { return canonical().key; }

void SubDemand::validate() const {
  if (group == nullptr) throw std::invalid_argument("sub-demand without group");
  if (pieces.empty()) throw std::invalid_argument("sub-demand without pieces");
  if (piece_bytes <= 0) throw std::invalid_argument("sub-demand piece_bytes must be positive");
  const int n = group->size();
  for (const auto& p : pieces) {
    if (p.srcs.empty()) throw std::invalid_argument("piece without sources");
    for (int s : p.srcs) {
      if (s < 0 || s >= n) throw std::invalid_argument("piece src out of group");
    }
    if (p.dsts.empty()) throw std::invalid_argument("piece without destinations");
    for (int d : p.dsts) {
      if (d < 0 || d >= n) throw std::invalid_argument("piece dst out of group");
      for (int s : p.srcs) {
        if (d == s) throw std::invalid_argument("piece dst equals src");
      }
    }
  }
}

void check_sub_schedule(const SubDemand& demand, const SubSchedule& sched) {
  demand.validate();
  const topo::GroupTopology& g = *demand.group;
  const int n = g.size();
  const EpochParams& ep = sched.params;

  // arrival[piece][local] = epoch at which the piece becomes usable.
  std::map<std::pair<int, int>, int> arrival;
  for (const auto& p : demand.pieces) {
    for (int s : p.srcs) arrival[{p.id, s}] = 0;
  }

  // Port usage per (port id, direction, epoch).
  std::map<std::tuple<int, int, int>, int> usage;

  std::vector<SubOp> ops = sched.ops;
  std::stable_sort(ops.begin(), ops.end(),
                   [](const SubOp& a, const SubOp& b) { return a.start_epoch < b.start_epoch; });

  for (const auto& op : ops) {
    if (op.src < 0 || op.src >= n || op.dst < 0 || op.dst >= n) {
      throw std::logic_error("sub-op endpoint outside group");
    }
    const auto it = arrival.find({op.piece, op.src});
    if (it == arrival.end() || it->second > op.start_epoch) {
      std::ostringstream os;
      os << "sub-op sends piece " << op.piece << " from " << op.src << " at epoch "
         << op.start_epoch << " before it is available";
      throw std::logic_error(os.str());
    }
    const int up_port = g.up[static_cast<std::size_t>(op.src)].port_id;
    const int down_port = g.down[static_cast<std::size_t>(op.dst)].port_id;
    for (int o = 0; o < ep.occupancy; ++o) {
      for (const auto& [port, dir] : {std::pair{up_port, 0}, std::pair{down_port, 1}}) {
        int& u = usage[{port, dir, op.start_epoch + o}];
        if (++u > ep.capacity) {
          std::ostringstream os;
          os << "port " << port << (dir == 0 ? " (up)" : " (down)") << " over capacity at epoch "
             << op.start_epoch + o;
          throw std::logic_error(os.str());
        }
      }
    }
    auto [dit, inserted] = arrival.try_emplace({op.piece, op.dst}, op.start_epoch + ep.lat_epochs);
    if (!inserted) dit->second = std::min(dit->second, op.start_epoch + ep.lat_epochs);
  }

  int completion = 0;
  for (const auto& p : demand.pieces) {
    for (int d : p.dsts) {
      const auto it = arrival.find({p.id, d});
      if (it == arrival.end()) {
        std::ostringstream os;
        os << "demand unmet: piece " << p.id << " never reaches " << d;
        throw std::logic_error(os.str());
      }
      completion = std::max(completion, it->second);
    }
  }
  if (completion > sched.num_epochs) {
    std::ostringstream os;
    os << "schedule claims " << sched.num_epochs << " epochs but completes at " << completion;
    throw std::logic_error(os.str());
  }
}

SubSchedule remap_sub_schedule(const SubSchedule& sched, const std::vector<int>& mapping) {
  SubSchedule out = sched;
  for (auto& op : out.ops) {
    if (op.src < 0 || static_cast<std::size_t>(op.src) >= mapping.size() || op.dst < 0 ||
        static_cast<std::size_t>(op.dst) >= mapping.size()) {
      throw std::invalid_argument("sub-op endpoint outside mapping");
    }
    op.src = mapping[static_cast<std::size_t>(op.src)];
    op.dst = mapping[static_cast<std::size_t>(op.dst)];
  }
  return out;
}

SubSchedule remap_sub_schedule(const SubSchedule& sched, const SubScheduleRemap& remap) {
  if (remap.is_identity()) return sched;
  SubSchedule out = remap_sub_schedule(sched, remap.member);
  for (auto& op : out.ops) {
    if (op.piece < 0 || static_cast<std::size_t>(op.piece) >= remap.piece.size()) {
      throw std::invalid_argument("sub-op piece outside remap");
    }
    op.piece = remap.piece[static_cast<std::size_t>(op.piece)];
  }
  return out;
}

}  // namespace syccl::solver
