// Epoch-based sub-demand scheduling model (paper §5.1 and Appendix A).
//
// A *sub-demand* is a set of equally sized pieces to move inside one GPU
// group (the star abstraction of src/topo/groups.h): each piece starts at a
// local source and is demanded by a set of local destinations. Time is
// discretised into epochs of duration τ; each transmission occupies an
// integer number of epochs (bandwidth constraint) and arrives after
// ⌈(α+βs)/τ⌉ epochs (latency constraint).
//
// Two solvers operate on this model: the greedy list scheduler
// (solver/greedy.h, the fast incumbent) and the MILP scheduler
// (solver/milp_scheduler.h, the accurate one).
#pragma once

#include <vector>

#include "topo/groups.h"

namespace syccl::solver {

/// One piece of a sub-demand, in group-local member indices. A piece may
/// start on several members (merged sub-demands whose sources all hold it).
struct DemandPiece {
  int id = -1;
  std::vector<int> srcs;
  std::vector<int> dsts;
};

/// Remapping of a sub-schedule between two coordinate systems: `member`
/// relabels op endpoints, `piece` relabels op piece ids. An empty `member`
/// vector denotes the identity remap.
struct SubScheduleRemap {
  std::vector<int> member;  ///< source member index -> target member index
  std::vector<int> piece;   ///< source piece id -> target piece id

  bool is_identity() const { return member.empty(); }
};

/// A sub-demand and its group jointly canonicalised (§5.3): `key` is
/// invariant under any relabelling of members/pieces that preserves the
/// group structure and demand shape, and the maps carry schedules between
/// local and canonical coordinates. Demands with equal keys become literally
/// identical once both are mapped to canonical coordinates, so a schedule
/// cached canonically transfers to *any* demand with the same key via its
/// `from_canonical()` remap — this is what makes the cache safe on
/// heterogeneous (degraded) groups, where the historical position-blind key
/// served schedules with the slow link in the wrong place.
struct CanonicalDemand {
  std::string key;
  std::vector<int> member_perm;  ///< local member index -> canonical position
  std::vector<int> piece_perm;   ///< piece id -> canonical piece id
  bool identity = false;         ///< both maps are identities

  SubScheduleRemap to_canonical() const;    ///< local -> canonical coordinates
  SubScheduleRemap from_canonical() const;  ///< canonical -> local coordinates
};

/// A merged sub-demand inside one group at one sketch stage (§5.1).
struct SubDemand {
  const topo::GroupTopology* group = nullptr;  ///< non-owning
  std::vector<DemandPiece> pieces;
  double piece_bytes = 0.0;

  /// Joint canonical form of (group, demand). Requires piece ids to be a
  /// permutation of [0, pieces.size()) — build_demand_plan guarantees
  /// id == index; throws std::invalid_argument otherwise.
  CanonicalDemand canonical() const;

  /// Structural key for isomorphism-class deduplication (§5.3):
  /// `canonical().key`. Equal keys ⇒ solutions transfer through the
  /// canonical remaps (see CanonicalDemand).
  std::string isomorphism_key() const;

  /// Throws std::invalid_argument on malformed demands (bad locals, empty).
  void validate() const;
};

/// Epoch discretisation derived from the E knob (Appendix A.3).
struct EpochParams {
  double tau = 0.0;     ///< epoch duration, seconds
  double r = 1.0;       ///< τ = r·β·s with r or 1/r integer
  int lat_epochs = 1;   ///< L = ⌈(α+βs)/τ⌉ epochs until the piece is usable
  int capacity = 1;     ///< C = sends a port can start per epoch (r ≥ 1)
  int occupancy = 1;    ///< O = epochs one send occupies a port (r < 1)
};

/// One scheduled transmission, in group-local indices.
struct SubOp {
  int piece = -1;
  int src = -1;
  int dst = -1;
  int start_epoch = 0;
};

/// The solved sub-schedule for a sub-demand.
struct SubSchedule {
  std::vector<SubOp> ops;   ///< sorted by start_epoch
  EpochParams params;
  int num_epochs = 0;       ///< completion epoch of the demand
  /// Model-estimated completion time = num_epochs · τ. The global simulator
  /// (§5.2) recomputes real timing after merging.
  double est_time() const { return num_epochs * params.tau; }
};

/// Verifies that `sched` satisfies `demand` under the epoch model: every
/// destination receives every demanded piece, sources hold pieces before
/// sending (L-epoch latency respected), port capacities never exceeded.
/// Throws std::logic_error with a description on violation.
void check_sub_schedule(const SubDemand& demand, const SubSchedule& sched);

/// Remaps a sub-schedule onto an isomorphic group via a local-index mapping
/// (identity-length permutation), used by isomorphism-class dedup (§5.3).
SubSchedule remap_sub_schedule(const SubSchedule& sched, const std::vector<int>& mapping);

/// Full remap: relabels op endpoints through `remap.member` and op piece ids
/// through `remap.piece`. The identity remap returns `sched` unchanged.
SubSchedule remap_sub_schedule(const SubSchedule& sched, const SubScheduleRemap& remap);

}  // namespace syccl::solver
