// Process-wide sub-demand solve cache (paper §5.3, extended across calls).
//
// The synthesizer already deduplicates isomorphic sub-demands *within* one
// synthesis, but size sweeps, the RS/AG phases of AllReduce and repeated
// `synthesize()` calls re-solve the same isomorphism classes from scratch.
// This cache memoises `solve_sub_demand` results process-wide, keyed on
// (SubDemand::canonical().key, MilpSchedulerOptions fingerprint) — the
// fingerprint includes E, so coarse and fine passes occupy distinct entries.
//
// Entries are stored in canonical coordinates: keys are invariant under
// member/piece relabelling (the group's canonical form plus the demand in
// canonical indices), schedules are canonicalised on insert and remapped
// into the requesting demand's local coordinates on a hit. Two groups with
// the same degradation pattern at different ranks therefore share one entry
// *and* each receives the schedule with the slow link in the right place.
//
// Concurrency: the map is sharded by key hash, each shard behind its own
// mutex. In-flight solves are published as shared futures, so two threads
// (e.g. the concurrently synthesized RS and AG phases of an AllReduce)
// racing on the same class perform one solve — the loser blocks on the
// winner's future instead of duplicating work. Entries are LRU-evicted per
// shard once the shard exceeds its share of the byte budget.
#pragma once

#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <unordered_map>

#include "solver/milp_scheduler.h"

namespace syccl::solver {

class SubScheduleCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;  ///< estimated resident bytes of ready entries
  };

  /// `max_bytes` bounds the estimated footprint (LRU eviction per shard).
  explicit SubScheduleCache(std::size_t max_bytes = kDefaultMaxBytes);

  SubScheduleCache(const SubScheduleCache&) = delete;
  SubScheduleCache& operator=(const SubScheduleCache&) = delete;

  /// The process-wide instance shared by every Synthesizer.
  static SubScheduleCache& instance();

  /// Deterministic digest of every option that can change a solve result.
  static std::string options_fingerprint(const MilpSchedulerOptions& options);

  /// Returns the cached schedule for (demand, options), solving on a miss.
  /// Concurrent misses on the same key solve once. `stats` (optional)
  /// reports the underlying solve; on a hit it is zeroed with
  /// `cache_hit = true`. If the solve throws, the entry is dropped and the
  /// exception propagates to every waiter.
  SubSchedule get_or_solve(const SubDemand& demand, const MilpSchedulerOptions& options,
                           SolveStats* stats = nullptr);

  /// Drops every ready entry and resets counters (tests, topology changes).
  /// In-flight solves complete normally but are not re-inserted.
  void clear();

  Stats stats() const;
  std::size_t max_bytes() const { return max_bytes_; }

 private:
  static constexpr std::size_t kDefaultMaxBytes = 64ull << 20;
  static constexpr std::size_t kNumShards = 16;

  struct Entry {
    std::shared_future<SubSchedule> future;
    std::size_t bytes = 0;        ///< 0 while the solve is in flight
    std::uint64_t last_used = 0;  ///< shard tick for LRU
    bool ready = false;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Entry> map;
    std::size_t bytes = 0;
    std::uint64_t tick = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(const std::string& key);
  /// Evicts least-recently-used ready entries until the shard fits its
  /// budget. Caller holds the shard mutex.
  void evict_locked(Shard& shard);

  std::size_t max_bytes_;
  Shard shards_[kNumShards];
};

}  // namespace syccl::solver
