#include "solver/greedy.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

namespace syccl::solver {

namespace {

struct PieceState {
  std::vector<int> holders;       ///< locals holding the piece (usable now)
  std::vector<int> arriving_at;   ///< arrival epoch per local (-1 = never)
  std::vector<bool> needed;       ///< still-unserved destinations
  int remaining = 0;
};

}  // namespace

SubSchedule solve_greedy(const SubDemand& demand, const EpochParams& params) {
  demand.validate();
  const topo::GroupTopology& g = *demand.group;
  const int n = g.size();
  const int np = static_cast<int>(demand.pieces.size());

  std::vector<PieceState> state(static_cast<std::size_t>(np));
  int total_remaining = 0;
  for (int p = 0; p < np; ++p) {
    PieceState& ps = state[static_cast<std::size_t>(p)];
    ps.arriving_at.assign(static_cast<std::size_t>(n), -1);
    ps.needed.assign(static_cast<std::size_t>(n), false);
    const DemandPiece& dp = demand.pieces[static_cast<std::size_t>(p)];
    for (int src : dp.srcs) ps.arriving_at[static_cast<std::size_t>(src)] = 0;
    for (int d : dp.dsts) {
      if (!ps.needed[static_cast<std::size_t>(d)]) {
        ps.needed[static_cast<std::size_t>(d)] = true;
        ++ps.remaining;
        ++total_remaining;
      }
    }
  }

  // Port usage per (port, direction) per epoch, grown on demand.
  std::map<std::pair<int, int>, std::vector<int>> usage;
  auto port_free = [&](int port, int dir, int t, int occupancy, int capacity) {
    auto& u = usage[{port, dir}];
    if (static_cast<int>(u.size()) < t + occupancy) u.resize(static_cast<std::size_t>(t + occupancy), 0);
    for (int o = 0; o < occupancy; ++o) {
      if (u[static_cast<std::size_t>(t + o)] >= capacity) return false;
    }
    return true;
  };
  auto port_take = [&](int port, int dir, int t, int occupancy) {
    auto& u = usage[{port, dir}];
    for (int o = 0; o < occupancy; ++o) ++u[static_cast<std::size_t>(t + o)];
  };

  SubSchedule out;
  out.params = params;

  const long safety_epochs =
      static_cast<long>(np) * n * std::max(params.occupancy, params.lat_epochs) + n + 16;

  int completion = 0;
  for (int t = 0; total_remaining > 0; ++t) {
    if (t > safety_epochs) {
      throw std::logic_error("greedy scheduler failed to converge (demand unreachable?)");
    }
    // Candidate sends this epoch: (piece, src holder, unserved dst). Order by
    // criticality: pieces with the most unserved destinations first, then
    // destinations that are sources of nothing — plain index order suffices
    // for uniform groups, so we sort pieces by remaining demand only.
    std::vector<int> piece_order(static_cast<std::size_t>(np));
    for (int p = 0; p < np; ++p) piece_order[static_cast<std::size_t>(p)] = p;
    std::stable_sort(piece_order.begin(), piece_order.end(), [&](int a, int b) {
      return state[static_cast<std::size_t>(a)].remaining > state[static_cast<std::size_t>(b)].remaining;
    });

    bool progress = true;
    while (progress) {
      progress = false;
      for (int p : piece_order) {
        PieceState& ps = state[static_cast<std::size_t>(p)];
        if (ps.remaining == 0) continue;
        for (int d = 0; d < n && ps.remaining > 0; ++d) {
          if (!ps.needed[static_cast<std::size_t>(d)]) continue;
          const int down_port = g.down[static_cast<std::size_t>(d)].port_id;
          if (!port_free(down_port, 1, t, params.occupancy, params.capacity)) continue;
          // Pick a holder with free up-port; prefer the one that received
          // the piece earliest (balances relay load deterministically).
          int best_src = -1;
          for (int s = 0; s < n; ++s) {
            const int arr = ps.arriving_at[static_cast<std::size_t>(s)];
            if (arr < 0 || arr > t || s == d) continue;
            if (!port_free(g.up[static_cast<std::size_t>(s)].port_id, 0, t, params.occupancy,
                           params.capacity)) {
              continue;
            }
            if (best_src < 0 ||
                arr < ps.arriving_at[static_cast<std::size_t>(best_src)]) {
              best_src = s;
            }
          }
          if (best_src < 0) continue;
          port_take(g.up[static_cast<std::size_t>(best_src)].port_id, 0, t, params.occupancy);
          port_take(down_port, 1, t, params.occupancy);
          out.ops.push_back(SubOp{p, best_src, d, t});
          ps.needed[static_cast<std::size_t>(d)] = false;
          --ps.remaining;
          --total_remaining;
          const int arrival = t + params.lat_epochs;
          ps.arriving_at[static_cast<std::size_t>(d)] = arrival;
          completion = std::max(completion, arrival);
          progress = true;
        }
      }
    }
  }

  out.num_epochs = completion;
  check_sub_schedule(demand, out);
  return out;
}

}  // namespace syccl::solver
