#include "solver/solve_cache.h"

#include <functional>
#include <limits>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace syccl::solver {

namespace {

/// Registry mirrors of the shard counters (one reporting path with the
/// shard-local Stats). Hoisted: lookups sit on the parallel solve path.
obs::Counter& hits_counter() {
  static obs::Counter& c = obs::MetricsRegistry::instance().counter("solve_cache.hits");
  return c;
}
obs::Counter& misses_counter() {
  static obs::Counter& c = obs::MetricsRegistry::instance().counter("solve_cache.misses");
  return c;
}
obs::Counter& evictions_counter() {
  static obs::Counter& c = obs::MetricsRegistry::instance().counter("solve_cache.evictions");
  return c;
}

}  // namespace

SubScheduleCache::SubScheduleCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

SubScheduleCache& SubScheduleCache::instance() {
  static SubScheduleCache cache;
  return cache;
}

std::string SubScheduleCache::options_fingerprint(const MilpSchedulerOptions& options) {
  // hexfloat keeps the digest exact; every field below can change the solved
  // schedule (E via τ, limits via incumbent survival, gates via MILP skips).
  std::ostringstream os;
  os << std::hexfloat << "E=" << options.E << ";tl=" << options.time_limit_s
     << ";nl=" << options.node_limit << ";mb=" << options.max_binaries
     << ";g=" << static_cast<int>(options.greedy_only)
     << ";f=" << static_cast<int>(options.use_flow_bounds) << ";fd=" << options.flow_node_depth
     << ";fe=" << options.flow_node_every;
  return os.str();
}

SubScheduleCache::Shard& SubScheduleCache::shard_for(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

void SubScheduleCache::evict_locked(Shard& shard) {
  const std::size_t budget = max_bytes_ / kNumShards;
  while (shard.bytes > budget) {
    auto victim = shard.map.end();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
      if (it->second.ready && it->second.last_used < oldest) {
        oldest = it->second.last_used;
        victim = it;
      }
    }
    if (victim == shard.map.end()) return;  // only in-flight entries left
    shard.bytes -= victim->second.bytes;
    shard.map.erase(victim);
    ++shard.evictions;
    evictions_counter().add(1);
  }
}

SubSchedule SubScheduleCache::get_or_solve(const SubDemand& demand,
                                           const MilpSchedulerOptions& options,
                                           SolveStats* stats) {
  SYCCL_TRACE_SPAN(span, "solve_cache.lookup", "cache");
  // Entries are stored in *canonical* coordinates (CanonicalDemand): the key
  // is invariant under member/piece relabelling, and hits are remapped into
  // this demand's local coordinates. A miss solves locally and publishes the
  // canonicalised result, so any later demand with the same key — e.g. the
  // same degradation pattern at a different rank — receives a correctly
  // repositioned schedule instead of an identity-mapped one.
  const CanonicalDemand canon = demand.canonical();
  const std::string key = canon.key + '\n' + options_fingerprint(options);
  Shard& shard = shard_for(key);

  std::promise<SubSchedule> promise;
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      ++shard.hits;
      it->second.last_used = ++shard.tick;
      std::shared_future<SubSchedule> future = it->second.future;
      // get() outside the lock: an in-flight entry blocks until the solving
      // thread publishes, which never takes this shard's mutex first.
      lock.unlock();
      hits_counter().add(1);
      span.annotate("hit", 1.0);
      if (stats != nullptr) {
        *stats = SolveStats{};
        stats->cache_hit = true;
      }
      return remap_sub_schedule(future.get(), canon.from_canonical());
    }
    ++shard.misses;
    misses_counter().add(1);
    span.annotate("hit", 0.0);
    Entry entry;
    entry.future = promise.get_future().share();
    entry.last_used = ++shard.tick;
    shard.map.emplace(key, std::move(entry));
  }

  SubSchedule result;
  try {
    result = solve_sub_demand(demand, options, stats);
  } catch (...) {
    // Drop the placeholder so later calls retry, then fail every waiter.
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.map.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  promise.set_value(remap_sub_schedule(result, canon.to_canonical()));

  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {  // absent if clear() raced the solve
      it->second.ready = true;
      it->second.bytes = key.size() + sizeof(Entry) + sizeof(SubSchedule) +
                         result.ops.size() * sizeof(SubOp) + 64;
      shard.bytes += it->second.bytes;
      evict_locked(shard);
    }
  }

  // Resident-footprint gauges. Only on the miss path, where the preceding
  // solve (milliseconds at least) dwarfs the 16-shard stats() walk.
  {
    const Stats s = this->stats();  // `stats` names the out-param here
    auto& reg = obs::MetricsRegistry::instance();
    static obs::Gauge& bytes_gauge = reg.gauge("solve_cache.bytes");
    static obs::Gauge& entries_gauge = reg.gauge("solve_cache.entries");
    bytes_gauge.set(static_cast<double>(s.bytes));
    entries_gauge.set(static_cast<double>(s.entries));
  }
  return result;
}

void SubScheduleCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Keep in-flight entries: their solving threads still expect to find and
    // finalise them; dropping ready ones is enough to release the bytes.
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      it = it->second.ready ? shard.map.erase(it) : std::next(it);
    }
    shard.bytes = 0;
    shard.hits = shard.misses = shard.evictions = 0;
    shard.tick = 0;
  }
}

SubScheduleCache::Stats SubScheduleCache::stats() const {
  Stats out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.entries += shard.map.size();
    out.bytes += shard.bytes;
  }
  return out;
}

}  // namespace syccl::solver
