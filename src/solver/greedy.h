// Greedy list scheduler for sub-demands.
//
// Fast feasible scheduling over the epoch model: epoch by epoch, issue the
// most critical sends that fit the free port capacity. For one-to-all
// sub-demands this reproduces binomial-tree broadcasts; for merged AllGather
// stages it reproduces shifted direct exchanges. The result seeds the MILP
// scheduler as its incumbent (§5.3) and is the fallback under solver limits.
#pragma once

#include "solver/epoch_model.h"

namespace syccl::solver {

/// Schedules `demand` greedily under `params`. Always returns a feasible
/// schedule (validated by check_sub_schedule) or throws std::logic_error if
/// the demand cannot make progress (disconnected demand — impossible for
/// well-formed groups).
SubSchedule solve_greedy(const SubDemand& demand, const EpochParams& params);

}  // namespace syccl::solver
