// Automatic dimension/group extraction (paper §3.1, Table 2).
//
// SyCCL organises GPUs into *dimensions* — one per type of inter-GPU
// connection — and within each dimension into *groups* of directly connected
// GPUs. We recover this structure from the raw graph:
//
//   1. Every switch gets a *tier* = its minimum hop distance from any GPU
//      (NVSwitch = 1, rail/ToR leaf = 2, spine = 3, core = 4, ...).
//   2. A switch's *span* is the set of GPUs that reach it by a monotonically
//      up-going path (strictly increasing distance-from-GPU).
//   3. Switches at the same tier with identical spans collapse into one
//      group (e.g. eight spine switches above the same leaves are one
//      logical group with 8× fabric capacity).
//   4. Tiers, sorted ascending, become dimensions 0, 1, 2, ...
//
// For each group we also precompute the *star abstraction* used by the
// sub-demand solver and the simulator: every member GPU has an uplink and a
// downlink to the group's (virtual, non-blocking) switch, each with an
// aggregate α/β and a *port id* identifying the physical serialisation
// resource (GPUs sharing a NIC share a port — the A100 testbed has 2 GPUs
// per 200G NIC).
#pragma once

#include <string>
#include <vector>

#include "topo/topology.h"

namespace syccl::topo {

/// One direction of a GPU's attachment to a group's virtual switch.
struct GroupPort {
  double alpha = 0.0;  ///< summed latency of the physical path, seconds
  double beta = 0.0;   ///< bottleneck reciprocal bandwidth, s/byte
  /// Identifier of the physical serialisation resource (bottleneck link id).
  /// Transfers sharing a port id in the same direction serialise.
  int port_id = -1;
};

/// One physical link on a path, used by the simulator for per-link
/// contention (fabric uplinks are shared by many GPUs).
struct PathHop {
  int link_id = -1;
  double alpha = 0.0;
  double beta = 0.0;
};

/// The star abstraction of one (dimension, group): member GPUs around a
/// non-blocking virtual switch.
struct GroupTopology {
  int dim = -1;
  int group_index = -1;
  std::vector<int> ranks;       ///< global GPU ranks, ascending
  std::vector<GroupPort> up;    ///< indexed like `ranks`
  std::vector<GroupPort> down;  ///< indexed like `ranks`
  /// Full physical paths member → switch and switch → member (for the
  /// simulator's per-link contention model).
  std::vector<std::vector<PathHop>> up_hops;
  std::vector<std::vector<PathHop>> down_hops;

  int size() const { return static_cast<int>(ranks.size()); }

  /// Local index of a global rank, or -1.
  int local_of(int rank) const;

  /// Effective α for a transfer between local members i → j.
  double pair_alpha(int i, int j) const { return up[static_cast<std::size_t>(i)].alpha + down[static_cast<std::size_t>(j)].alpha; }
  /// Effective bottleneck β for a transfer between local members i → j.
  double pair_beta(int i, int j) const;

  /// Canonical labelling of the group's members under positional isomorphism.
  /// `perm[i]` is the canonical position of local member i; `signature`
  /// encodes, per canonical position, the quantised port parameters plus the
  /// up/down port-sharing blocks (renumbered along the canonical order).
  ///
  /// Equal signatures ⇒ mapping canonical position k of one group onto
  /// canonical position k of the other is a positional isomorphism: the
  /// encoding pins down everything the sub-demand solver and checker consume
  /// (per-member α/β and which members serialise on a shared port). The
  /// converse may not hold when colour refinement leaves symmetric ties —
  /// two isomorphic groups can then canonicalise differently and merely miss
  /// a dedup opportunity, which is safe.
  struct CanonicalForm {
    std::string signature;
    std::vector<int> perm;  ///< local member index -> canonical position
  };

  /// The canonical form, computed on demand. `freeze_canonical()` caches it
  /// (extract_groups freezes every group so hot paths never recompute);
  /// hand-built groups that skip freezing just pay the recomputation.
  CanonicalForm canonical_form() const;
  void freeze_canonical();

  /// Canonical structural signature (`canonical_form().signature`); equal
  /// signatures ⇒ the groups are positionally isomorphic under their
  /// canonical orders. Replaces the historical sorted-multiset encoding,
  /// which was position-blind: a group with rank 0's link degraded and a
  /// group with rank 3's link degraded shared a signature, so cached
  /// sub-schedules could be served with the slow link in the wrong place.
  std::string signature() const;

  /// Cached canonical form (empty signature = not yet computed). Treat as
  /// private; use canonical_form().
  CanonicalForm canon_;
};

/// One dimension: a tier of isomorphic (or categorised) groups.
struct DimensionInfo {
  int tier = 0;                       ///< hop distance of the backing switches
  std::string link_kind;              ///< kind of the bottleneck links
  std::vector<GroupTopology> groups;
  /// Aggregate capacity share of this dimension (distinct up-port count at
  /// the dimension's modal port bandwidth — robust to a minority of degraded
  /// links), normalised across dimensions by extract_groups: used as u_d in
  /// §4.2.
  double bandwidth_share = 0.0;
  /// The dimension whose physical ports this one consumes. A spine tier
  /// whose bottleneck is the rail NICs has capacity_dim = the rail
  /// dimension; dimensions with their own ports point at themselves. The
  /// §4.2 chunk allocator aggregates workloads by capacity_dim.
  int capacity_dim = -1;
};

/// The full dimension/group decomposition of a topology.
struct TopologyGroups {
  std::vector<DimensionInfo> dims;
  /// group_of[d][rank] = group index of `rank` in dimension d, or -1 if the
  /// rank is not covered by dimension d.
  std::vector<std::vector<int>> group_of;

  int num_dims() const { return static_cast<int>(dims.size()); }

  /// Smallest (fastest) dimension whose group contains both ranks, or -1.
  int best_common_dim(int rank_a, int rank_b) const;

  const GroupTopology& group(int dim, int g) const {
    return dims.at(static_cast<std::size_t>(dim)).groups.at(static_cast<std::size_t>(g));
  }
};

/// Extracts dimensions and groups from a topology. Throws if the topology has
/// no GPUs or a GPU is unreachable from the switch fabric.
TopologyGroups extract_groups(const Topology& topo);

}  // namespace syccl::topo
