// Builders for the cluster topologies used in the paper's evaluation (§7.1,
// Fig. 13, Appendix B) plus generic parameterised variants.
//
// Bandwidth inputs are bytes/second; the builders convert to β = 1/bandwidth.
#pragma once

#include "topo/topology.h"

namespace syccl::topo {

/// Parameters for one link class.
struct LinkParams {
  double alpha_s = 0.0;           ///< latency, seconds
  double bandwidth_Bps = 1.0;     ///< bytes per second
  double beta() const { return 1.0 / bandwidth_Bps; }
};

/// Commonly used constants (per public specs / paper §2.1).
namespace params {
/// NVLink through NVSwitch: per-GPU ~180 GB/s usable on H800, ~200 GB/s A100.
inline LinkParams nvlink_h800() { return {0.35e-6, 180e9}; }
inline LinkParams nvlink_a100() { return {0.35e-6, 200e9}; }
/// 400 Gbps RDMA NIC ≈ 50 GB/s, 200 Gbps ≈ 25 GB/s. α covers NIC+switch hop.
inline LinkParams nic_400g() { return {2.5e-6, 50e9}; }
inline LinkParams nic_200g() { return {2.5e-6, 25e9}; }
/// Switch-to-switch hop inside the fabric.
inline LinkParams fabric_400g() { return {1.0e-6, 50e9}; }
inline LinkParams fabric_200g() { return {1.0e-6, 25e9}; }
}  // namespace params

/// One server with `num_gpus` GPUs on a single NVSwitch.
Topology build_single_server(int num_gpus, LinkParams nvlink = params::nvlink_a100());

/// Multi-rail cluster (paper Fig. 3 / Fig. 13(b)): `num_servers` servers of
/// `gpus_per_server` GPUs. Every GPU owns one NIC; NICs with the same
/// intra-server index connect to the same rail leaf switch. If `with_spine`,
/// all leaves connect to one spine tier so cross-rail traffic is routable.
struct MultiRailSpec {
  int num_servers = 4;
  int gpus_per_server = 4;
  LinkParams nvlink = params::nvlink_h800();
  LinkParams nic = params::nic_400g();
  LinkParams fabric = params::fabric_400g();
  bool with_spine = true;
};
Topology build_multi_rail(const MultiRailSpec& spec);

/// Clos cluster (paper Fig. 13(a) / Fig. 20): servers pair up under leaf
/// (ToR) switches; leaves connect to a spine tier (and optionally a core).
/// `nics_per_server` NICs are shared evenly by the GPUs of a server.
struct ClosSpec {
  int num_servers = 4;
  int gpus_per_server = 8;
  int nics_per_server = 4;
  int servers_per_leaf = 2;
  int leaves_per_spine = 2;    ///< if > number of leaves, a single spine tier
  LinkParams nvlink = params::nvlink_a100();
  LinkParams nic = params::nic_200g();
  LinkParams fabric = params::fabric_200g();
};
Topology build_clos(const ClosSpec& spec);

/// The 16/32-GPU A100 testbed of §7.1: 8 GPUs + 4×200G NICs per server, two
/// servers per ToR, spine above (only present when >1 ToR).
Topology build_a100_testbed(int num_gpus);

/// The 64-server H800 cluster of §7.1 scaled to `num_servers` servers of 8
/// GPUs with 8×400G NICs, multi-rail with spine.
Topology build_h800_cluster(int num_servers);

/// The scaled-down microbenchmark topology of §7.4: 6 servers × 4 GPUs,
/// multi-rail with spine, H800-class links.
Topology build_microbench_cluster();

/// The larger multi-rail example of Appendix B Fig. 19: seven 4-GPU servers,
/// four rail leaves, one spine.
Topology build_fig19_topology();

/// The Clos example of Appendix B Fig. 20: eight 4-GPU servers, two servers
/// per leaf, two leaves per spine, one core — four dimensions.
Topology build_fig20_topology();

/// A flat single-switch domain in the style of rail-only NVL/HPN designs
/// cited by the paper ([30]): `num_gpus` GPUs on one non-blocking switch.
Topology build_flat_switch(int num_gpus, LinkParams link = params::nvlink_h800());

}  // namespace topo
