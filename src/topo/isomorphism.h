// Group isomorphism helpers (paper §3.1 / §5.3).
//
// Two groups in the same dimension are isomorphic when a one-to-one member
// mapping preserves port parameters and port-sharing shape. Builders emit
// regular topologies, so positional mapping (i-th member ↔ i-th member)
// realises the isomorphism whenever one exists; `positional_mapping`
// validates this before returning it.
#pragma once

#include <vector>

#include "topo/groups.h"

namespace syccl::topo {

/// True when `a` and `b` have identical structural signatures and their
/// positional port parameters match (sufficient for solver-result reuse).
bool isomorphic(const GroupTopology& a, const GroupTopology& b);

/// Mapping m with m[local index in a] = local index in b realising the
/// isomorphism. Throws std::invalid_argument when the groups are not
/// positionally isomorphic.
std::vector<int> positional_mapping(const GroupTopology& a, const GroupTopology& b);

/// Partitions groups of one dimension into isomorphism classes; returns
/// class id per group index.
std::vector<int> isomorphism_classes(const std::vector<GroupTopology>& groups);

}  // namespace syccl::topo
