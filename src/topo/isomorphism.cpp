#include "topo/isomorphism.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>

namespace syccl::topo {

namespace {

bool close(double a, double b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-12});
  return std::fabs(a - b) <= 1e-9 * scale;
}

bool ports_match(const GroupPort& a, const GroupPort& b) {
  return close(a.alpha, b.alpha) && close(a.beta, b.beta);
}

/// Positional check: the i-th member of `a` must have the same port
/// parameters as the i-th member of `b`, and port sharing must align (two
/// members share a port in `a` iff their counterparts share in `b`).
bool positionally_isomorphic(const GroupTopology& a, const GroupTopology& b) {
  if (a.size() != b.size()) return false;
  for (int i = 0; i < a.size(); ++i) {
    if (!ports_match(a.up[static_cast<std::size_t>(i)], b.up[static_cast<std::size_t>(i)]) ||
        !ports_match(a.down[static_cast<std::size_t>(i)], b.down[static_cast<std::size_t>(i)])) {
      return false;
    }
  }
  for (int i = 0; i < a.size(); ++i) {
    for (int j = i + 1; j < a.size(); ++j) {
      const bool share_a = a.up[static_cast<std::size_t>(i)].port_id ==
                           a.up[static_cast<std::size_t>(j)].port_id;
      const bool share_b = b.up[static_cast<std::size_t>(i)].port_id ==
                           b.up[static_cast<std::size_t>(j)].port_id;
      if (share_a != share_b) return false;
    }
  }
  return true;
}

}  // namespace

bool isomorphic(const GroupTopology& a, const GroupTopology& b) {
  if (a.signature() != b.signature()) return false;
  return positionally_isomorphic(a, b);
}

std::vector<int> positional_mapping(const GroupTopology& a, const GroupTopology& b) {
  if (!positionally_isomorphic(a, b)) {
    throw std::invalid_argument("groups are not positionally isomorphic");
  }
  std::vector<int> m(static_cast<std::size_t>(a.size()));
  for (int i = 0; i < a.size(); ++i) m[static_cast<std::size_t>(i)] = i;
  return m;
}

std::vector<int> isomorphism_classes(const std::vector<GroupTopology>& groups) {
  std::vector<int> cls(groups.size(), -1);
  std::map<std::string, int> seen;
  int next = 0;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const std::string sig = groups[i].signature();
    auto it = seen.find(sig);
    if (it == seen.end()) {
      it = seen.emplace(sig, next++).first;
    }
    cls[i] = it->second;
  }
  return cls;
}

}  // namespace syccl::topo
