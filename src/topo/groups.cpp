#include "topo/groups.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace syccl::topo {

namespace {

constexpr int kUnreached = -1;

/// BFS distance (in hops) of every node from the nearest GPU, walking links
/// in either direction. GPUs are at distance 0.
std::vector<int> distances_from_gpus(const Topology& topo) {
  std::vector<int> dist(topo.num_nodes(), kUnreached);
  std::deque<NodeId> queue;
  for (NodeId g : topo.gpus()) {
    dist[static_cast<std::size_t>(g)] = 0;
    queue.push_back(g);
  }
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    const int du = dist[static_cast<std::size_t>(u)];
    auto relax = [&](NodeId v) {
      if (dist[static_cast<std::size_t>(v)] == kUnreached) {
        dist[static_cast<std::size_t>(v)] = du + 1;
        queue.push_back(v);
      }
    };
    for (LinkId l : topo.out_links(u)) relax(topo.link(l).dst);
    for (LinkId l : topo.in_links(u)) relax(topo.link(l).src);
  }
  return dist;
}

/// The up-going path (sequence of link ids) from GPU `g` to switch `sw`,
/// following strictly increasing distance. Returns empty if unreachable.
std::vector<LinkId> up_path(const Topology& topo, const std::vector<int>& dist, NodeId g,
                            NodeId sw) {
  // BFS restricted to strictly increasing distance; reconstruct path.
  std::vector<LinkId> via(topo.num_nodes(), kInvalidLink);
  std::vector<bool> seen(topo.num_nodes(), false);
  std::deque<NodeId> queue;
  seen[static_cast<std::size_t>(g)] = true;
  queue.push_back(g);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (u == sw) break;
    for (LinkId l : topo.out_links(u)) {
      const NodeId v = topo.link(l).dst;
      if (seen[static_cast<std::size_t>(v)]) continue;
      if (dist[static_cast<std::size_t>(v)] != dist[static_cast<std::size_t>(u)] + 1) continue;
      seen[static_cast<std::size_t>(v)] = true;
      via[static_cast<std::size_t>(v)] = l;
      queue.push_back(v);
    }
  }
  if (!seen[static_cast<std::size_t>(sw)]) return {};
  std::vector<LinkId> path;
  NodeId cur = sw;
  while (cur != g) {
    const LinkId l = via[static_cast<std::size_t>(cur)];
    path.push_back(l);
    cur = topo.link(l).src;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

/// Aggregates a physical path into a GroupPort: α sums, β is the bottleneck,
/// the port id is the bottleneck link (ties resolved toward the switch so
/// shared NICs map to one port).
GroupPort aggregate_path(const Topology& topo, const std::vector<LinkId>& path) {
  GroupPort port;
  double worst_beta = -1.0;
  for (LinkId l : path) {
    const Link& link = topo.link(l);
    port.alpha += link.alpha;
    if (link.beta >= worst_beta) {  // >= : prefer the link nearest the switch
      worst_beta = link.beta;
      port.port_id = l;
    }
  }
  port.beta = worst_beta;
  return port;
}

/// Reversed counterpart of `path` (the down direction), using the duplex
/// sibling of every link.
std::vector<LinkId> reverse_path(const Topology& topo, const std::vector<LinkId>& path) {
  std::vector<LinkId> rev;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    const Link& link = topo.link(*it);
    const LinkId back = topo.find_link(link.dst, link.src);
    if (back == kInvalidLink) return {};
    rev.push_back(back);
  }
  return rev;
}

}  // namespace

int GroupTopology::local_of(int rank) const {
  const auto it = std::lower_bound(ranks.begin(), ranks.end(), rank);
  if (it == ranks.end() || *it != rank) return -1;
  return static_cast<int>(it - ranks.begin());
}

double GroupTopology::pair_beta(int i, int j) const {
  return std::max(up[static_cast<std::size_t>(i)].beta, down[static_cast<std::size_t>(j)].beta);
}

namespace {

/// Per-member port parameters, rounded to avoid float noise (same
/// quantisation the historical multiset signature used).
std::string quantized_params(const GroupTopology& g, std::size_t i) {
  std::ostringstream p;
  p << static_cast<long long>(g.up[i].alpha * 1e12) << "/"
    << static_cast<long long>(g.up[i].beta * 1e21) << "/"
    << static_cast<long long>(g.down[i].alpha * 1e12) << "/"
    << static_cast<long long>(g.down[i].beta * 1e21);
  return p.str();
}

/// Replaces each member's colour string with its rank among the sorted
/// distinct strings, so colours are comparable across isomorphic groups
/// regardless of member order. Returns the number of distinct colours.
int compress_colors(const std::vector<std::string>& strings, std::vector<int>& colors) {
  std::map<std::string, int> rank;
  for (const auto& s : strings) rank.emplace(s, 0);
  int next = 0;
  for (auto& [s, r] : rank) r = next++;
  for (std::size_t i = 0; i < strings.size(); ++i) colors[i] = rank.at(strings[i]);
  return next;
}

GroupTopology::CanonicalForm compute_canonical_form(const GroupTopology& g) {
  const std::size_t n = g.ranks.size();
  GroupTopology::CanonicalForm form;
  form.perm.resize(n);
  if (n == 0) return form;

  // Port-sharing blocks (the partition is what matters; block ids are
  // renumbered canonically below).
  std::map<int, std::vector<std::size_t>> up_block, down_block;
  for (std::size_t i = 0; i < n; ++i) {
    up_block[g.up[i].port_id].push_back(i);
    down_block[g.down[i].port_id].push_back(i);
  }

  // Colour refinement: start from the quantised parameters, then repeatedly
  // split colours by the colour multiset of each member's up/down blocks.
  // Refinement only ever splits classes, so it stabilises within n rounds.
  std::vector<std::string> strings(n);
  std::vector<int> colors(n, 0);
  for (std::size_t i = 0; i < n; ++i) strings[i] = quantized_params(g, i);
  int num_colors = compress_colors(strings, colors);
  for (std::size_t round = 0; round < n; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      std::multiset<int> up_peers, down_peers;
      for (std::size_t j : up_block.at(g.up[i].port_id)) up_peers.insert(colors[j]);
      for (std::size_t j : down_block.at(g.down[i].port_id)) down_peers.insert(colors[j]);
      std::ostringstream os;
      os << colors[i] << "|u:";
      for (int c : up_peers) os << c << ",";
      os << "|d:";
      for (int c : down_peers) os << c << ",";
      strings[i] = os.str();
    }
    const int refined = compress_colors(strings, colors);
    if (refined == num_colors) break;
    num_colors = refined;
  }

  // Canonical order: by final colour, ties by original index. Ties mean the
  // refinement could not tell the members apart; breaking them by index
  // keeps the signature deterministic (and merely conservative, see header).
  std::vector<std::size_t> ord(n);
  for (std::size_t i = 0; i < n; ++i) ord[i] = i;
  std::sort(ord.begin(), ord.end(), [&](std::size_t a, std::size_t b) {
    if (colors[a] != colors[b]) return colors[a] < colors[b];
    return a < b;
  });
  for (std::size_t k = 0; k < n; ++k) form.perm[ord[k]] = static_cast<int>(k);

  // Signature: per canonical position, the parameters plus up/down block ids
  // renumbered by first appearance along the canonical order. This fully
  // describes the star topology up to relabelling, so equal signatures give
  // a concrete positional isomorphism (canonical position -> canonical
  // position).
  std::ostringstream os;
  os << "n=" << n << ";";
  std::map<int, int> up_renum, down_renum;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = ord[k];
    const int ub = up_renum.emplace(g.up[i].port_id, static_cast<int>(up_renum.size()))
                       .first->second;
    const int db = down_renum.emplace(g.down[i].port_id, static_cast<int>(down_renum.size()))
                       .first->second;
    os << quantized_params(g, i) << "/u" << ub << "/d" << db << "|";
  }
  form.signature = os.str();
  return form;
}

}  // namespace

GroupTopology::CanonicalForm GroupTopology::canonical_form() const {
  if (!canon_.signature.empty()) return canon_;
  return compute_canonical_form(*this);
}

void GroupTopology::freeze_canonical() { canon_ = compute_canonical_form(*this); }

std::string GroupTopology::signature() const { return canonical_form().signature; }

int TopologyGroups::best_common_dim(int rank_a, int rank_b) const {
  for (int d = 0; d < num_dims(); ++d) {
    const auto& gd = group_of[static_cast<std::size_t>(d)];
    const int ga = gd[static_cast<std::size_t>(rank_a)];
    const int gb = gd[static_cast<std::size_t>(rank_b)];
    if (ga >= 0 && ga == gb) return d;
  }
  return -1;
}

TopologyGroups extract_groups(const Topology& topo) {
  if (topo.num_gpus() == 0) throw std::invalid_argument("topology has no GPUs");
  const std::vector<int> dist = distances_from_gpus(topo);
  for (NodeId g : topo.gpus()) {
    (void)g;
  }

  // Collect switches per tier.
  std::map<int, std::vector<NodeId>> switches_by_tier;
  for (const Node& n : topo.nodes()) {
    if (n.kind != NodeKind::Switch) continue;
    if (dist[static_cast<std::size_t>(n.id)] == kUnreached) {
      throw std::invalid_argument("switch unreachable from GPUs: " + n.name);
    }
    switches_by_tier[dist[static_cast<std::size_t>(n.id)]].push_back(n.id);
  }
  if (switches_by_tier.empty()) throw std::invalid_argument("topology has no switches");

  TopologyGroups out;
  const int num_ranks = static_cast<int>(topo.num_gpus());

  for (const auto& [tier, switches] : switches_by_tier) {
    // Span of each switch: GPUs reaching it by an up-going path.
    // Collapse switches with identical spans into one group; paths through
    // any of the collapsed switches share physical first-hop bottlenecks, so
    // using a representative switch for port extraction is sufficient.
    std::map<std::vector<int>, NodeId> span_to_rep;
    for (NodeId sw : switches) {
      std::vector<int> span;
      for (int r = 0; r < num_ranks; ++r) {
        const NodeId g = topo.gpus()[static_cast<std::size_t>(r)];
        if (!up_path(topo, dist, g, sw).empty()) span.push_back(r);
      }
      if (span.empty()) continue;
      span_to_rep.emplace(std::move(span), sw);  // keep first representative
    }
    if (span_to_rep.empty()) continue;

    DimensionInfo dim_info;
    dim_info.tier = tier;
    std::vector<int> group_of_rank(static_cast<std::size_t>(num_ranks), -1);

    int group_index = 0;
    for (const auto& [span, rep] : span_to_rep) {
      GroupTopology gt;
      gt.dim = static_cast<int>(out.dims.size());
      gt.group_index = group_index;
      gt.ranks = span;
      for (int r : span) {
        const NodeId g = topo.gpus()[static_cast<std::size_t>(r)];
        const auto up = up_path(topo, dist, g, rep);
        const auto down = reverse_path(topo, up);
        if (up.empty() || down.empty()) {
          throw std::logic_error("group member without duplex path to switch");
        }
        gt.up.push_back(aggregate_path(topo, up));
        gt.down.push_back(aggregate_path(topo, down));
        auto hops_of = [&](const std::vector<LinkId>& path) {
          std::vector<PathHop> hops;
          hops.reserve(path.size());
          for (LinkId l : path) {
            const Link& link = topo.link(l);
            hops.push_back(PathHop{l, link.alpha, link.beta});
          }
          return hops;
        };
        gt.up_hops.push_back(hops_of(up));
        gt.down_hops.push_back(hops_of(down));
        if (group_of_rank[static_cast<std::size_t>(r)] != -1) {
          throw std::invalid_argument(
              "GPU belongs to two groups in one dimension; topology is not "
              "tier-structured");
        }
        group_of_rank[static_cast<std::size_t>(r)] = group_index;
      }
      if (!gt.up.empty()) {
        dim_info.link_kind = topo.link(static_cast<LinkId>(gt.up.front().port_id)).kind;
      }
      gt.freeze_canonical();
      dim_info.groups.push_back(std::move(gt));
      ++group_index;
    }

    out.dims.push_back(std::move(dim_info));
    out.group_of.push_back(std::move(group_of_rank));
  }

  // Bandwidth share u_d: distinct up-port bandwidth per dimension,
  // normalised to 1 across dimensions (§4.2 step 2). Ports are deduplicated
  // *globally*: a higher tier whose bottleneck is a lower tier's port (e.g.
  // spine paths squeezing through the same NIC as the rail) contributes no
  // additional capacity.
  //
  // Each dimension counts its ports at the dimension's *modal* β (most
  // common among its owned ports, ties toward the fastest) rather than
  // summing per-port 1/β. On homogeneous fabrics the two are identical; on a
  // fabric with a few degraded links the modal estimate keeps u_d — and
  // hence the sketch fractions and every sub-demand's piece size — stable,
  // so incremental re-synthesis after a local degradation re-solves only the
  // groups that actually touch the changed links instead of invalidating
  // every cached sub-schedule over a hairline share shift.
  double total = 0.0;
  std::vector<double> per_dim(out.dims.size(), 0.0);
  std::map<int, int> port_owner;  // port id -> first dimension using it
  for (std::size_t d = 0; d < out.dims.size(); ++d) {
    std::map<int, int> shared_with;  // earlier dim -> #ports shared
    std::map<long long, std::pair<int, double>> beta_count;  // quantised β -> {count, β}
    int own_ports = 0;
    for (const auto& g : out.dims[d].groups) {
      for (const auto& p : g.up) {
        const auto [it, inserted] = port_owner.emplace(p.port_id, static_cast<int>(d));
        if (inserted) {
          auto& [count, beta] = beta_count[static_cast<long long>(p.beta * 1e21)];
          ++count;
          beta = p.beta;
          ++own_ports;
        } else {
          ++shared_with[it->second];
        }
      }
    }
    double modal_beta = 0.0;
    int modal_count = 0;
    for (const auto& [q, cb] : beta_count) {
      // Map iteration is by ascending quantised β, so on a tie the fastest
      // (smallest β) wins.
      if (cb.first > modal_count) {
        modal_count = cb.first;
        modal_beta = cb.second;
      }
    }
    if (modal_beta > 0) per_dim[d] = own_ports / modal_beta;
    total += per_dim[d];
    out.dims[d].capacity_dim = static_cast<int>(d);
    // If the dimension mostly rides on earlier dimensions' ports, its
    // workload competes for that capacity.
    int best_dim = -1, best_count = own_ports;
    for (const auto& [dim, count] : shared_with) {
      if (count > best_count) {
        best_count = count;
        best_dim = dim;
      }
    }
    if (best_dim >= 0) {
      out.dims[d].capacity_dim = out.dims[static_cast<std::size_t>(best_dim)].capacity_dim;
    }
  }
  for (std::size_t d = 0; d < out.dims.size(); ++d) {
    out.dims[d].bandwidth_share = total > 0 ? per_dim[d] / total : 0.0;
  }

  return out;
}

}  // namespace syccl::topo
