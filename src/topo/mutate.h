// Topology mutation: link degradation, link failure, NIC failure.
//
// Production fabrics are not static — links degrade (flapping optics, ECN
// storms), NICs die, cables get pulled. These helpers derive a *new*
// Topology from an existing one plus a fault, returning both the mutated
// topology and a TopologyDelta describing exactly what changed. The delta is
// what incremental re-synthesis (core/resynthesize.h) consumes to decide
// which groups must be re-solved.
//
// Topology stores links in an append-only vector (link id == index), so
// removals rebuild the graph: node ids are preserved verbatim, surviving
// links are renumbered densely and the delta carries the old→new link map.
#pragma once

#include <string>
#include <vector>

#include "topo/topology.h"

namespace syccl::topo {

/// What a mutation did, in terms a consumer can act on.
struct TopologyDelta {
  /// Links of the *new* topology whose α/β changed (degradation).
  std::vector<LinkId> changed_links;
  /// Links of the *old* topology that were removed (failure).
  std::vector<LinkId> removed_links;
  /// Old link id -> new link id; kInvalidLink for removed links. Identity
  /// (i -> i) for pure degradations.
  std::vector<LinkId> link_map;

  bool empty() const { return changed_links.empty() && removed_links.empty(); }
  /// Human-readable one-line summary for logs and scenario names.
  std::string describe() const;
};

/// A mutated topology plus the delta that produced it.
struct MutationResult {
  Topology topo;
  TopologyDelta delta;
};

/// Scales α and β of the directed link `src -> dst` (scale > 1 = slower).
/// Throws std::invalid_argument if the link does not exist or a scale is
/// not positive.
MutationResult degrade_link(const Topology& topo, NodeId src, NodeId dst, double alpha_scale,
                            double beta_scale);

/// Degrades both directions of the duplex pair between `a` and `b`.
MutationResult degrade_duplex(const Topology& topo, NodeId a, NodeId b, double alpha_scale,
                              double beta_scale);

/// Removes the duplex link pair between `a` and `b` (group extraction
/// requires duplex paths, so failing one direction fails both). Throws
/// std::invalid_argument if no such link exists and std::runtime_error if
/// the removal disconnects a GPU or strands a switch (see
/// check_reachability).
MutationResult fail_link(const Topology& topo, NodeId a, NodeId b);

/// Removes every link touching `nic` (a NodeKind::Nic node), modelling a
/// dead NIC: the attached GPUs keep their other planes (e.g. NVLink) but
/// lose this uplink. The NIC node itself remains, isolated. Throws
/// std::invalid_argument if `nic` is not a NIC and std::runtime_error if the
/// failure disconnects a GPU or strands a switch.
MutationResult fail_nic(const Topology& topo, NodeId nic);

/// Verifies the preconditions group extraction needs: every GPU and every
/// switch mutually reachable over the (undirected) link graph. Throws
/// std::runtime_error naming the first unreachable node. NIC nodes may be
/// isolated (a failed NIC is exactly that).
void check_reachability(const Topology& topo);

/// Node id by exact name. Throws std::invalid_argument if absent. The
/// builders name nodes deterministically ("gpu0.3", "nvswitch0", "leaf2",
/// "nic1.0", ...), so scenario specs and CLI flags address nodes by name.
NodeId node_by_name(const Topology& topo, const std::string& name);

/// Rebuilds `topo` with its GPU *ranks* relabelled: the GPU that was rank r
/// becomes rank `perm[r]` in the result. Non-GPU nodes, link parameters and
/// the physical shape are untouched — the result is exactly isomorphic to
/// the input, which makes this the reference generator for "a different
/// consumer labelled the same cluster differently" in the serve tests and
/// bench. Throws std::invalid_argument if `perm` is not a permutation of
/// 0..num_gpus-1.
Topology permute_gpu_ranks(const Topology& topo, const std::vector<int>& perm);

}  // namespace syccl::topo
