#include "topo/mutate.h"

#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace syccl::topo {

namespace {

/// Rebuilds `topo` without the links in `removed`, scaling the links in
/// `scaled` by {alpha_scale, beta_scale}. Node ids are preserved (insertion
/// order is replayed); surviving links are renumbered densely.
MutationResult rebuild(const Topology& topo, const std::set<LinkId>& removed,
                       const std::map<LinkId, std::pair<double, double>>& scaled) {
  MutationResult out;
  out.delta.link_map.assign(topo.num_links(), kInvalidLink);
  for (const Node& n : topo.nodes()) {
    out.topo.add_node(n.kind, n.server, n.local_index, n.name);
  }
  for (const Link& l : topo.links()) {
    if (removed.count(l.id) != 0) {
      out.delta.removed_links.push_back(l.id);
      continue;
    }
    double alpha = l.alpha;
    double beta = l.beta;
    const auto it = scaled.find(l.id);
    if (it != scaled.end()) {
      alpha *= it->second.first;
      beta *= it->second.second;
    }
    const LinkId id = out.topo.add_link(l.src, l.dst, alpha, beta, l.kind);
    out.delta.link_map[static_cast<std::size_t>(l.id)] = id;
    if (it != scaled.end()) out.delta.changed_links.push_back(id);
  }
  return out;
}

LinkId require_link(const Topology& topo, NodeId src, NodeId dst) {
  const LinkId l = topo.find_link(src, dst);
  if (l == kInvalidLink) {
    std::ostringstream os;
    os << "no link " << src << " -> " << dst;
    throw std::invalid_argument(os.str());
  }
  return l;
}

void require_scales(double alpha_scale, double beta_scale) {
  if (alpha_scale <= 0 || beta_scale <= 0) {
    throw std::invalid_argument("degradation scales must be positive");
  }
}

}  // namespace

std::string TopologyDelta::describe() const {
  std::ostringstream os;
  if (empty()) return "no-op";
  if (!changed_links.empty()) {
    os << "degraded " << changed_links.size() << " link(s) [";
    for (std::size_t i = 0; i < changed_links.size(); ++i) {
      os << (i > 0 ? "," : "") << changed_links[i];
    }
    os << "]";
  }
  if (!removed_links.empty()) {
    if (!changed_links.empty()) os << "; ";
    os << "removed " << removed_links.size() << " link(s) [";
    for (std::size_t i = 0; i < removed_links.size(); ++i) {
      os << (i > 0 ? "," : "") << removed_links[i];
    }
    os << "]";
  }
  return os.str();
}

MutationResult degrade_link(const Topology& topo, NodeId src, NodeId dst, double alpha_scale,
                            double beta_scale) {
  require_scales(alpha_scale, beta_scale);
  const LinkId l = require_link(topo, src, dst);
  return rebuild(topo, {}, {{l, {alpha_scale, beta_scale}}});
}

MutationResult degrade_duplex(const Topology& topo, NodeId a, NodeId b, double alpha_scale,
                              double beta_scale) {
  require_scales(alpha_scale, beta_scale);
  const LinkId fwd = require_link(topo, a, b);
  const LinkId rev = require_link(topo, b, a);
  return rebuild(topo, {},
                 {{fwd, {alpha_scale, beta_scale}}, {rev, {alpha_scale, beta_scale}}});
}

MutationResult fail_link(const Topology& topo, NodeId a, NodeId b) {
  const LinkId fwd = require_link(topo, a, b);
  std::set<LinkId> removed{fwd};
  const LinkId rev = topo.find_link(b, a);
  if (rev != kInvalidLink) removed.insert(rev);
  MutationResult out = rebuild(topo, removed, {});
  check_reachability(out.topo);
  return out;
}

MutationResult fail_nic(const Topology& topo, NodeId nic) {
  if (nic < 0 || static_cast<std::size_t>(nic) >= topo.num_nodes() ||
      topo.node(nic).kind != NodeKind::Nic) {
    throw std::invalid_argument("fail_nic target is not a NIC node");
  }
  std::set<LinkId> removed;
  for (LinkId l : topo.out_links(nic)) removed.insert(l);
  for (LinkId l : topo.in_links(nic)) removed.insert(l);
  if (removed.empty()) throw std::invalid_argument("NIC has no links to fail");
  MutationResult out = rebuild(topo, removed, {});
  check_reachability(out.topo);
  return out;
}

void check_reachability(const Topology& topo) {
  if (topo.num_gpus() == 0) throw std::runtime_error("topology has no GPUs");
  std::vector<bool> seen(topo.num_nodes(), false);
  std::deque<NodeId> queue;
  const NodeId start = topo.gpus().front();
  seen[static_cast<std::size_t>(start)] = true;
  queue.push_back(start);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    auto relax = [&](NodeId v) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        queue.push_back(v);
      }
    };
    for (LinkId l : topo.out_links(u)) relax(topo.link(l).dst);
    for (LinkId l : topo.in_links(u)) relax(topo.link(l).src);
  }
  for (const Node& n : topo.nodes()) {
    if (n.kind == NodeKind::Nic) continue;  // dead NICs may dangle
    if (!seen[static_cast<std::size_t>(n.id)]) {
      throw std::runtime_error("mutation disconnects node: " + n.name);
    }
  }
}

Topology permute_gpu_ranks(const Topology& topo, const std::vector<int>& perm) {
  const std::size_t n = topo.num_gpus();
  if (perm.size() != n) throw std::invalid_argument("permutation size != num_gpus");
  std::vector<int> inv(n, -1);
  for (std::size_t r = 0; r < n; ++r) {
    const int p = perm[r];
    if (p < 0 || static_cast<std::size_t>(p) >= n || inv[static_cast<std::size_t>(p)] != -1) {
      throw std::invalid_argument("perm is not a permutation of 0..num_gpus-1");
    }
    inv[static_cast<std::size_t>(p)] = static_cast<int>(r);
  }

  // GPU rank is insertion order among GPUs, and node ids are sequential, so
  // replaying the node list with the k-th GPU slot holding the GPU of old
  // rank inv[k] relabels ranks while keeping every node id position stable.
  // new_id[old id] then only moves GPUs: old rank r lands in slot perm[r].
  std::vector<NodeId> new_id(topo.num_nodes());
  for (const Node& node : topo.nodes()) new_id[static_cast<std::size_t>(node.id)] = node.id;
  for (std::size_t r = 0; r < n; ++r) {
    new_id[static_cast<std::size_t>(topo.gpus()[r])] =
        topo.gpus()[static_cast<std::size_t>(perm[r])];
  }

  Topology out;
  std::size_t gpu_slot = 0;
  for (const Node& node : topo.nodes()) {
    const Node* src = &node;
    if (node.kind == NodeKind::Gpu) {
      src = &topo.node(topo.gpus()[static_cast<std::size_t>(inv[gpu_slot])]);
      ++gpu_slot;
    }
    out.add_node(src->kind, src->server, src->local_index, src->name);
  }
  for (const Link& l : topo.links()) {
    out.add_link(new_id[static_cast<std::size_t>(l.src)], new_id[static_cast<std::size_t>(l.dst)],
                 l.alpha, l.beta, l.kind);
  }
  return out;
}

NodeId node_by_name(const Topology& topo, const std::string& name) {
  for (const Node& n : topo.nodes()) {
    if (n.name == name) return n.id;
  }
  throw std::invalid_argument("no node named '" + name + "'");
}

}  // namespace syccl::topo
