#include "topo/topology.h"

#include <sstream>

namespace syccl::topo {

NodeId Topology::add_node(NodeKind kind, int server, int local_index, std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, kind, server, local_index, std::move(name)});
  out_links_.emplace_back();
  in_links_.emplace_back();
  if (kind == NodeKind::Gpu) {
    gpu_rank_.resize(nodes_.size(), -1);
    gpu_rank_[static_cast<std::size_t>(id)] = static_cast<int>(gpus_.size());
    gpus_.push_back(id);
  } else {
    gpu_rank_.resize(nodes_.size(), -1);
  }
  return id;
}

LinkId Topology::add_link(NodeId src, NodeId dst, double alpha, double beta, std::string kind) {
  check_node(src);
  check_node(dst);
  if (src == dst) throw std::invalid_argument("self-link");
  if (beta <= 0.0) throw std::invalid_argument("link beta must be positive");
  if (alpha < 0.0) throw std::invalid_argument("link alpha must be non-negative");
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{id, src, dst, alpha, beta, std::move(kind)});
  out_links_[static_cast<std::size_t>(src)].push_back(id);
  in_links_[static_cast<std::size_t>(dst)].push_back(id);
  return id;
}

void Topology::add_duplex_link(NodeId a, NodeId b, double alpha, double beta,
                               const std::string& kind) {
  add_link(a, b, alpha, beta, kind);
  add_link(b, a, alpha, beta, kind);
}

std::optional<int> Topology::gpu_rank(NodeId id) const {
  check_node(id);
  const int r = gpu_rank_[static_cast<std::size_t>(id)];
  if (r < 0) return std::nullopt;
  return r;
}

LinkId Topology::find_link(NodeId src, NodeId dst) const {
  check_node(src);
  check_node(dst);
  for (LinkId l : out_links_[static_cast<std::size_t>(src)]) {
    if (links_[static_cast<std::size_t>(l)].dst == dst) return l;
  }
  return kInvalidLink;
}

std::string Topology::summary() const {
  std::size_t nics = 0, switches = 0;
  for (const auto& n : nodes_) {
    if (n.kind == NodeKind::Nic) ++nics;
    if (n.kind == NodeKind::Switch) ++switches;
  }
  std::ostringstream os;
  os << "topology: " << gpus_.size() << " GPUs, " << nics << " NICs, " << switches
     << " switches, " << links_.size() << " links";
  return os.str();
}

void Topology::check_node(NodeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) {
    throw std::out_of_range("invalid node id");
  }
}

}  // namespace syccl::topo
