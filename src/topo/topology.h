// Topology model (paper §3.1, Table 2).
//
// A topology is a directed graph of GPUs, NICs and switches. Every link
// carries the α–β transmission parameters: sending s bytes over a link takes
// α + β·s seconds end-to-end and occupies the link for β·s seconds before the
// next chunk can start (Hockney model, §5.1).
//
// Bandwidth convention: β is seconds **per byte** (the reciprocal of link
// bandwidth in bytes/second); α is seconds.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace syccl::topo {

using NodeId = std::int32_t;
using LinkId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;

enum class NodeKind { Gpu, Nic, Switch };

struct Node {
  NodeId id = kInvalidNode;
  NodeKind kind = NodeKind::Gpu;
  /// Server index for GPUs/NICs; -1 for switches.
  int server = -1;
  /// Index within the server for GPUs/NICs; tier index for switches.
  int local_index = -1;
  std::string name;
};

struct Link {
  LinkId id = kInvalidLink;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  /// Link latency in seconds.
  double alpha = 0.0;
  /// Reciprocal bandwidth in seconds per byte.
  double beta = 0.0;
  /// Human-readable link class ("nvlink", "pcie", "net", ...). Links of the
  /// same class with the same α/β are considered identical for symmetry.
  std::string kind;
};

/// A directed multigraph of GPUs, NICs and switches with α–β links.
///
/// The class maintains adjacency indexes so that group extraction and the
/// simulator can walk the graph without linear scans.
class Topology {
 public:
  NodeId add_node(NodeKind kind, int server, int local_index, std::string name);

  /// Adds a directed link. Throws std::invalid_argument on bad endpoints or
  /// non-positive bandwidth.
  LinkId add_link(NodeId src, NodeId dst, double alpha, double beta, std::string kind);

  /// Adds a pair of links src->dst and dst->src with identical parameters.
  void add_duplex_link(NodeId a, NodeId b, double alpha, double beta, const std::string& kind);

  const Node& node(NodeId id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  const Link& link(LinkId id) const { return links_.at(static_cast<std::size_t>(id)); }

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_links() const { return links_.size(); }

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Link>& links() const { return links_; }

  /// GPU node ids in insertion order. GPU *rank* r is gpus()[r]; collectives
  /// and schedules address GPUs by rank.
  const std::vector<NodeId>& gpus() const { return gpus_; }
  std::size_t num_gpus() const { return gpus_.size(); }

  /// Rank of a GPU node, or nullopt if the node is not a GPU.
  std::optional<int> gpu_rank(NodeId id) const;

  const std::vector<LinkId>& out_links(NodeId id) const {
    return out_links_.at(static_cast<std::size_t>(id));
  }
  const std::vector<LinkId>& in_links(NodeId id) const {
    return in_links_.at(static_cast<std::size_t>(id));
  }

  /// First link src->dst, or kInvalidLink.
  LinkId find_link(NodeId src, NodeId dst) const;

  /// Human-readable one-line summary (node/link counts) for logging.
  std::string summary() const;

 private:
  void check_node(NodeId id) const;

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<NodeId> gpus_;
  std::vector<int> gpu_rank_;  // indexed by NodeId, -1 for non-GPUs
  std::vector<std::vector<LinkId>> out_links_;
  std::vector<std::vector<LinkId>> in_links_;
};

}  // namespace syccl::topo
