// Plain-text topology serialisation.
//
// Real deployments describe clusters in files produced by inventory tooling;
// the profiler fills in α/β. The format is line-oriented and diff-friendly:
//
//   # comment
//   node <kind:gpu|nic|switch> <server> <local_index> <name>
//   link <src_name> <dst_name> <alpha_seconds> <bandwidth_Bps> <kind>
//   duplex <a_name> <b_name> <alpha_seconds> <bandwidth_Bps> <kind>
//
// Node ids are assigned in file order; links reference nodes by name.
#pragma once

#include <string>

#include "topo/topology.h"

namespace syccl::topo {

/// Serialises a topology to the text format above.
std::string to_text(const Topology& topo);

/// Parses the text format. Throws std::invalid_argument with a line number
/// on malformed input (unknown node names, bad kinds, non-positive
/// bandwidth).
Topology from_text(const std::string& text);

}  // namespace syccl::topo
