#include "topo/serialize.h"

#include <charconv>
#include <map>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace syccl::topo {

namespace {

/// Shortest decimal representation that parses back to exactly the same
/// double (std::to_chars round-trip guarantee). Default ostream precision is
/// 6 significant digits, which silently truncates profiled α/bandwidth
/// values — the serve path ships topologies as text, so serialisation must
/// not perturb the canonical scenario key.
std::string exact_double(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  if (res.ec != std::errc()) throw std::logic_error("double to_chars failed");
  return std::string(buf, res.ptr);
}

const char* kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::Gpu: return "gpu";
    case NodeKind::Nic: return "nic";
    case NodeKind::Switch: return "switch";
  }
  return "?";
}

NodeKind parse_kind(const std::string& word, int line) {
  if (word == "gpu") return NodeKind::Gpu;
  if (word == "nic") return NodeKind::Nic;
  if (word == "switch") return NodeKind::Switch;
  throw std::invalid_argument("line " + std::to_string(line) + ": unknown node kind '" + word +
                              "'");
}

}  // namespace

std::string to_text(const Topology& topo) {
  std::ostringstream os;
  os << "# syccl topology, " << topo.num_gpus() << " GPUs\n";
  for (const Node& n : topo.nodes()) {
    os << "node " << kind_name(n.kind) << " " << n.server << " " << n.local_index << " "
       << n.name << "\n";
  }
  for (const Link& l : topo.links()) {
    os << "link " << topo.node(l.src).name << " " << topo.node(l.dst).name << " "
       << exact_double(l.alpha) << " " << exact_double(1.0 / l.beta) << " " << l.kind << "\n";
  }
  return os.str();
}

Topology from_text(const std::string& text) {
  Topology topo;
  std::map<std::string, NodeId> by_name;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word[0] == '#') continue;
    if (word == "node") {
      std::string kind, name;
      int server = 0, local = 0;
      if (!(ls >> kind >> server >> local >> name)) {
        throw std::invalid_argument("line " + std::to_string(line_no) + ": malformed node");
      }
      if (by_name.count(name) != 0) {
        throw std::invalid_argument("line " + std::to_string(line_no) + ": duplicate node '" +
                                    name + "'");
      }
      by_name[name] = topo.add_node(parse_kind(kind, line_no), server, local, name);
    } else if (word == "link" || word == "duplex") {
      std::string a, b, kind;
      double alpha = 0.0, bandwidth = 0.0;
      if (!(ls >> a >> b >> alpha >> bandwidth >> kind)) {
        throw std::invalid_argument("line " + std::to_string(line_no) + ": malformed link");
      }
      const auto ia = by_name.find(a);
      const auto ib = by_name.find(b);
      if (ia == by_name.end() || ib == by_name.end()) {
        throw std::invalid_argument("line " + std::to_string(line_no) + ": unknown node name");
      }
      if (bandwidth <= 0) {
        throw std::invalid_argument("line " + std::to_string(line_no) +
                                    ": bandwidth must be positive");
      }
      if (word == "link") {
        topo.add_link(ia->second, ib->second, alpha, 1.0 / bandwidth, kind);
      } else {
        topo.add_duplex_link(ia->second, ib->second, alpha, 1.0 / bandwidth, kind);
      }
    } else {
      throw std::invalid_argument("line " + std::to_string(line_no) + ": unknown directive '" +
                                  word + "'");
    }
  }
  return topo;
}

}  // namespace syccl::topo
