#include "topo/builders.h"

#include <stdexcept>
#include <string>

namespace syccl::topo {

namespace {

std::string idx_name(const std::string& prefix, int a, int b = -1) {
  std::string s = prefix + std::to_string(a);
  if (b >= 0) s += "." + std::to_string(b);
  return s;
}

}  // namespace

Topology build_single_server(int num_gpus, LinkParams nvlink) {
  if (num_gpus < 2) throw std::invalid_argument("single server needs >= 2 GPUs");
  Topology t;
  std::vector<NodeId> gpus;
  gpus.reserve(static_cast<std::size_t>(num_gpus));
  for (int g = 0; g < num_gpus; ++g) {
    gpus.push_back(t.add_node(NodeKind::Gpu, 0, g, idx_name("gpu", g)));
  }
  const NodeId nvsw = t.add_node(NodeKind::Switch, -1, 0, "nvswitch0");
  for (NodeId g : gpus) {
    // α split evenly across the two hops so GPU→GPU latency equals 2·α/2.
    t.add_duplex_link(g, nvsw, nvlink.alpha_s / 2, nvlink.beta(), "nvlink");
  }
  return t;
}

Topology build_multi_rail(const MultiRailSpec& spec) {
  if (spec.num_servers < 1 || spec.gpus_per_server < 1) {
    throw std::invalid_argument("multi-rail spec needs positive sizes");
  }
  Topology t;
  std::vector<std::vector<NodeId>> gpus(static_cast<std::size_t>(spec.num_servers));
  std::vector<std::vector<NodeId>> nics(static_cast<std::size_t>(spec.num_servers));

  for (int s = 0; s < spec.num_servers; ++s) {
    for (int g = 0; g < spec.gpus_per_server; ++g) {
      gpus[static_cast<std::size_t>(s)].push_back(
          t.add_node(NodeKind::Gpu, s, g, idx_name("gpu", s, g)));
    }
  }
  // Intra-server NVSwitch per server.
  for (int s = 0; s < spec.num_servers; ++s) {
    const NodeId nvsw = t.add_node(NodeKind::Switch, s, 0, idx_name("nvswitch", s));
    for (NodeId g : gpus[static_cast<std::size_t>(s)]) {
      t.add_duplex_link(g, nvsw, spec.nvlink.alpha_s / 2, spec.nvlink.beta(), "nvlink");
    }
  }
  // One NIC per GPU; NIC i of every server connects to rail leaf i.
  std::vector<NodeId> leaves;
  for (int r = 0; r < spec.gpus_per_server; ++r) {
    leaves.push_back(t.add_node(NodeKind::Switch, -1, 1, idx_name("leaf", r)));
  }
  for (int s = 0; s < spec.num_servers; ++s) {
    for (int g = 0; g < spec.gpus_per_server; ++g) {
      const NodeId nic = t.add_node(NodeKind::Nic, s, g, idx_name("nic", s, g));
      nics[static_cast<std::size_t>(s)].push_back(nic);
      // GPU→NIC over PCIe/NVLink bridge: fast, tiny α; the NIC→leaf hop is
      // the 400G bottleneck that carries the NIC's α.
      t.add_duplex_link(gpus[static_cast<std::size_t>(s)][static_cast<std::size_t>(g)], nic,
                        0.2e-6, spec.nic.beta() / 4, "pcie");
      t.add_duplex_link(nic, leaves[static_cast<std::size_t>(g)], spec.nic.alpha_s,
                        spec.nic.beta(), "net");
    }
  }
  if (spec.with_spine && spec.gpus_per_server > 1) {
    // The spine tier aggregates a rail's uplinks. Production multi-rail
    // fabrics oversubscribe leaf→spine (paper Fig. 13(b): 8×400G down vs
    // 4×400G up per leaf); we model the tier as one fat link per leaf with
    // the aggregate capacity of the leaf's uplinks.
    const NodeId spine = t.add_node(NodeKind::Switch, -1, 2, "spine0");
    const double up_ratio = 0.5;  // 2:1 oversubscription
    const double agg_beta = spec.nic.beta() / std::max(1.0, spec.num_servers * up_ratio);
    for (NodeId leaf : leaves) {
      t.add_duplex_link(leaf, spine, spec.fabric.alpha_s, agg_beta, "fabric");
    }
  }
  return t;
}

Topology build_clos(const ClosSpec& spec) {
  if (spec.num_servers < 1 || spec.gpus_per_server < 1 || spec.nics_per_server < 1) {
    throw std::invalid_argument("clos spec needs positive sizes");
  }
  if (spec.gpus_per_server % spec.nics_per_server != 0) {
    throw std::invalid_argument("gpus_per_server must be a multiple of nics_per_server");
  }
  Topology t;
  std::vector<std::vector<NodeId>> gpus(static_cast<std::size_t>(spec.num_servers));
  for (int s = 0; s < spec.num_servers; ++s) {
    for (int g = 0; g < spec.gpus_per_server; ++g) {
      gpus[static_cast<std::size_t>(s)].push_back(
          t.add_node(NodeKind::Gpu, s, g, idx_name("gpu", s, g)));
    }
  }
  for (int s = 0; s < spec.num_servers; ++s) {
    const NodeId nvsw = t.add_node(NodeKind::Switch, s, 0, idx_name("nvswitch", s));
    for (NodeId g : gpus[static_cast<std::size_t>(s)]) {
      t.add_duplex_link(g, nvsw, spec.nvlink.alpha_s / 2, spec.nvlink.beta(), "nvlink");
    }
  }
  const int num_leaves = (spec.num_servers + spec.servers_per_leaf - 1) / spec.servers_per_leaf;
  std::vector<NodeId> leaves;
  for (int l = 0; l < num_leaves; ++l) {
    leaves.push_back(t.add_node(NodeKind::Switch, -1, 1, idx_name("leaf", l)));
  }
  const int gpus_per_nic = spec.gpus_per_server / spec.nics_per_server;
  for (int s = 0; s < spec.num_servers; ++s) {
    const NodeId leaf = leaves[static_cast<std::size_t>(s / spec.servers_per_leaf)];
    for (int n = 0; n < spec.nics_per_server; ++n) {
      const NodeId nic = t.add_node(NodeKind::Nic, s, n, idx_name("nic", s, n));
      for (int k = 0; k < gpus_per_nic; ++k) {
        const int g = n * gpus_per_nic + k;
        t.add_duplex_link(gpus[static_cast<std::size_t>(s)][static_cast<std::size_t>(g)], nic,
                          0.2e-6, spec.nic.beta() / 4, "pcie");
      }
      t.add_duplex_link(nic, leaf, spec.nic.alpha_s, spec.nic.beta(), "net");
    }
  }
  if (num_leaves > 1) {
    const int num_spines =
        (num_leaves + spec.leaves_per_spine - 1) / spec.leaves_per_spine;
    std::vector<NodeId> spines;
    for (int sp = 0; sp < num_spines; ++sp) {
      spines.push_back(t.add_node(NodeKind::Switch, -1, 2, idx_name("spine", sp)));
    }
    // Non-oversubscribed Clos (paper Fig. 13(a): 8 spine switches): each
    // leaf's uplink carries its full downstream NIC capacity, modelled as
    // one fat link per leaf.
    const double leaf_up_beta =
        spec.nic.beta() / (spec.nics_per_server * spec.servers_per_leaf);
    for (int l = 0; l < num_leaves; ++l) {
      t.add_duplex_link(leaves[static_cast<std::size_t>(l)],
                        spines[static_cast<std::size_t>(l / spec.leaves_per_spine)],
                        spec.fabric.alpha_s, leaf_up_beta, "fabric");
    }
    if (num_spines > 1) {
      const NodeId core = t.add_node(NodeKind::Switch, -1, 3, "core0");
      const double spine_up_beta = leaf_up_beta / spec.leaves_per_spine;
      for (NodeId sp : spines) {
        t.add_duplex_link(sp, core, spec.fabric.alpha_s, spine_up_beta, "fabric");
      }
    }
  }
  return t;
}

Topology build_a100_testbed(int num_gpus) {
  if (num_gpus % 8 != 0) throw std::invalid_argument("A100 testbed scales in 8-GPU servers");
  ClosSpec spec;
  spec.num_servers = num_gpus / 8;
  spec.gpus_per_server = 8;
  spec.nics_per_server = 4;
  spec.servers_per_leaf = 2;
  spec.leaves_per_spine = 4;  // single spine tier over all ToRs
  spec.nvlink = params::nvlink_a100();
  spec.nic = params::nic_200g();
  spec.fabric = params::fabric_200g();
  return build_clos(spec);
}

Topology build_h800_cluster(int num_servers) {
  MultiRailSpec spec;
  spec.num_servers = num_servers;
  spec.gpus_per_server = 8;
  spec.nvlink = params::nvlink_h800();
  spec.nic = params::nic_400g();
  spec.fabric = params::fabric_400g();
  spec.with_spine = true;
  return build_multi_rail(spec);
}

Topology build_fig19_topology() {
  MultiRailSpec spec;
  spec.num_servers = 7;
  spec.gpus_per_server = 4;
  spec.nvlink = params::nvlink_h800();
  spec.nic = params::nic_400g();
  spec.fabric = params::fabric_400g();
  spec.with_spine = true;
  return build_multi_rail(spec);
}

Topology build_fig20_topology() {
  ClosSpec spec;
  spec.num_servers = 8;
  spec.gpus_per_server = 4;
  spec.nics_per_server = 4;
  spec.servers_per_leaf = 2;
  spec.leaves_per_spine = 2;
  spec.nvlink = params::nvlink_a100();
  spec.nic = params::nic_200g();
  spec.fabric = params::fabric_200g();
  return build_clos(spec);
}

Topology build_flat_switch(int num_gpus, LinkParams link) {
  return build_single_server(num_gpus, link);
}

Topology build_microbench_cluster() {
  MultiRailSpec spec;
  spec.num_servers = 6;
  spec.gpus_per_server = 4;
  spec.nvlink = params::nvlink_h800();
  spec.nic = params::nic_400g();
  spec.fabric = params::fabric_400g();
  spec.with_spine = true;
  return build_multi_rail(spec);
}

}  // namespace syccl::topo
