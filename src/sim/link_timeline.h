// Busy-interval timeline of one directed physical link.
//
// Extracted from the simulator so the merge/allocation logic can be unit
// tested in isolation (fragmentation regressions are invisible end-to-end:
// they only change asymptotics, not results).
//
// Allocation policy: a transfer that becomes ready while the link is idle may
// claim the gap even if an earlier-issued transfer is still waiting for its
// data — links arbitrate per packet, they do not head-of-line block on
// program order.
//
// Interval merging is a pure compaction: two busy intervals merge when they
// touch exactly or are separated by a gap below a few ulps of the interval
// endpoints (relative, so it works at any time scale). Gaps that small cannot
// host any transfer of realistic duration, so merging never changes an
// allocation result beyond ulp-level rounding.
#pragma once

#include <cstddef>
#include <map>

namespace syccl::sim {

class LinkTimeline {
 public:
  /// Allocates `dur` seconds starting no earlier than `ready`; returns the
  /// start time. Zero/negative durations claim no slot and start at `ready`.
  double allocate(double ready, double dur);

  /// Number of stored busy intervals (merged). Exposed for the fragmentation
  /// unit tests; a saturated link must stay at O(1) intervals.
  std::size_t num_intervals() const { return intervals_.size(); }

 private:
  std::map<double, double> intervals_;  // start -> end
};

}  // namespace syccl::sim
