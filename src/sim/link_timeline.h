// Busy-interval timeline of one directed physical link.
//
// Extracted from the simulator so the merge/allocation logic can be unit
// tested in isolation (fragmentation regressions are invisible end-to-end:
// they only change asymptotics, not results).
//
// Allocation policy: a transfer that becomes ready while the link is idle may
// claim the gap even if an earlier-issued transfer is still waiting for its
// data — links arbitrate per packet, they do not head-of-line block on
// program order.
//
// Interval merging is a pure compaction: two busy intervals merge when they
// touch exactly or are separated by a gap below a few ulps of the interval
// endpoints (relative, so it works at any time scale). Gaps that small cannot
// host any transfer of realistic duration, so merging never changes an
// allocation result beyond ulp-level rounding.
//
// Storage is a sorted small-vector of disjoint [start, end) intervals with a
// fixed inline capacity: a saturated link — common, because merging compacts
// back-to-back transfers into one interval — never leaves the inline buffer
// and allocates in O(1) via the last-interval append path. Requests that
// land before the last interval (frequent on multi-source links, where
// transfers from idle sources become ready early and may claim mid-timeline
// gaps) take a position-hinted scan plus an in-place merge.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>

namespace syccl::sim {

class LinkTimeline {
 public:
  LinkTimeline() = default;
  ~LinkTimeline() {
    if (data_ != inline_) delete[] data_;
  }
  LinkTimeline(const LinkTimeline& o) { assign(o); }
  LinkTimeline& operator=(const LinkTimeline& o) {
    if (this != &o) {
      clear_storage();
      assign(o);
    }
    return *this;
  }
  LinkTimeline(LinkTimeline&& o) noexcept { steal(std::move(o)); }
  LinkTimeline& operator=(LinkTimeline&& o) noexcept {
    if (this != &o) {
      clear_storage();
      steal(std::move(o));
    }
    return *this;
  }

  /// Allocates `dur` seconds starting no earlier than `ready`; returns the
  /// start time. Zero/negative durations claim no slot and start at `ready`.
  /// Inline so the per-event fast path (saturated link: extend or append the
  /// last interval) folds into the simulator's hop loop; requests that could
  /// fit a mid-timeline gap fall through to the gap-search path.
  double allocate(double ready, double dur) {
    if (dur <= 0) return ready;
    if (size_ == 0) {
      data_[0] = {ready, ready + dur};
      size_ = 1;
      return ready;
    }
    // Fast path: the request cannot use any gap before the last interval
    // (every such gap ends at or before `ready`), so it starts at
    // max(ready, last.end) and either extends the last interval or appends a
    // new one. On a saturated link every allocation takes this branch.
    Interval& last = data_[size_ - 1];
    if (ready >= last.start) {
      const double t = ready > last.end ? ready : last.end;
      if (touches(last.end, t)) {
        last.end = t + dur > last.end ? t + dur : last.end;
      } else {
        if (size_ == cap_) grow();
        data_[size_++] = {t, t + dur};
      }
      return t;
    }
    return allocate_slow(ready, dur);
  }

  /// Number of stored busy intervals (merged). Exposed for the fragmentation
  /// unit tests; a saturated link must stay at O(1) intervals.
  std::size_t num_intervals() const { return size_; }

  /// Drops every interval but keeps heap capacity (engine-reuse path).
  void reset() {
    size_ = 0;
    hint_ = 0;
  }

 private:
  struct Interval {
    double start;
    double end;
  };

  static constexpr std::size_t kInline = 16;

  /// Merge tolerance between two time points: a few ulps, relative to their
  /// magnitude, with a tiny absolute floor for times near zero. An absolute
  /// epsilon (the old 1e-18) is below one ulp of any time ≥ ~4.5e-3 s, so
  /// rounding-level gaps between mathematically adjacent intervals at second
  /// scale never merged and the timeline fragmented into O(#transfers)
  /// slivers, degrading allocation to O(n²) on long schedules.
  static double touch_tolerance(double a, double b) {
    constexpr double kUlps = 4.0;
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return std::max(1e-18, kUlps * std::numeric_limits<double>::epsilon() * scale);
  }
  static bool touches(double earlier_end, double later_start) {
    return earlier_end >= later_start - touch_tolerance(earlier_end, later_start);
  }

  /// Gap-search path: the request lands before the last interval. Inline for
  /// the same reason as `allocate` — on fragmented timelines this is the
  /// majority path, and an out-of-line call would spill the simulator's
  /// head/tail registers on every event.
  double allocate_slow(double ready, double dur) {
    // The request may fit a gap in the middle of the timeline. First interval
    // whose start is > ready; its predecessor may still cover `ready`.
    // Requests land near the tail on average, so on short timelines a
    // backward scan of predictable compares beats the binary search's
    // mispredicted halvings.
    double t = ready;
    std::size_t idx;
    // Position hint: successive blocks of one op allocate at nearly the same
    // point in the timeline, so the previous insert position usually still
    // satisfies the upper-bound invariant and the scan collapses to two
    // compares.
    if (hint_ <= size_ && (hint_ == 0 || data_[hint_ - 1].start <= ready) &&
        (hint_ == size_ || data_[hint_].start > ready)) {
      idx = hint_;
    } else if (size_ <= 64) {
      idx = size_;
      while (idx > 0 && data_[idx - 1].start > ready) --idx;
    } else {
      idx = static_cast<std::size_t>(
          std::upper_bound(data_, data_ + size_, ready,
                           [](double v, const Interval& iv) { return v < iv.start; }) -
          data_);
    }
    if (idx > 0 && data_[idx - 1].end > t) t = data_[idx - 1].end;
    while (idx < size_ && data_[idx].start < t + dur) {
      t = std::max(t, data_[idx].end);
      ++idx;
    }

    // Insert [t, t+dur) at position `idx`, merging with touching neighbours.
    // `idx` is the insertion point already: every interval before it was
    // either left of `ready` or walked over during conflict resolution
    // (end <= t), so all have start < t; the interval at `idx`, if any,
    // starts >= t + dur.
    double lo = t;
    double hi = t + dur;
    std::size_t pos = idx;
    std::size_t erased = 0;
    if (pos > 0 && touches(data_[pos - 1].end, lo)) {
      --pos;
      lo = data_[pos].start;
      hi = std::max(hi, data_[pos].end);
      ++erased;
    }
    while (pos + erased < size_ && touches(hi, data_[pos + erased].start)) {
      hi = std::max(hi, data_[pos + erased].end);
      ++erased;
    }
    splice(pos, erased, lo, hi);
    // The next request on this link tends to become ready inside or just
    // after the interval written at `pos`, whose start is <= that ready time.
    hint_ = static_cast<std::uint32_t>(pos + 1);
    return t;
  }

  /// Inserts [lo, hi) at `pos`, replacing the `erased` intervals already
  /// merged into it (slow path only). The merged case writes in place; only
  /// a net insert/shrink moves the tail.
  void splice(std::size_t pos, std::size_t erased, double lo, double hi) {
    if (erased >= 1) {
      data_[pos] = {lo, hi};
      if (erased > 1) {
        for (std::size_t i = pos + erased; i < size_; ++i) data_[i - erased + 1] = data_[i];
        size_ -= erased - 1;
      }
      return;
    }
    if (size_ == cap_) grow();
    for (std::size_t i = size_; i > pos; --i) data_[i] = data_[i - 1];
    data_[pos] = {lo, hi};
    ++size_;
  }

  void grow();

  void assign(const LinkTimeline& o) {
    if (o.size_ > kInline) {
      data_ = new Interval[o.cap_];
      cap_ = o.cap_;
    }
    size_ = o.size_;
    hint_ = o.hint_;
    for (std::size_t i = 0; i < size_; ++i) data_[i] = o.data_[i];
  }
  void steal(LinkTimeline&& o) noexcept {
    if (o.data_ != o.inline_) {
      data_ = o.data_;
      cap_ = o.cap_;
      o.data_ = o.inline_;
      o.cap_ = kInline;
    } else {
      for (std::size_t i = 0; i < o.size_; ++i) inline_[i] = o.inline_[i];
    }
    size_ = o.size_;
    hint_ = o.hint_;
    o.size_ = 0;
    o.hint_ = 0;
  }
  void clear_storage() {
    if (data_ != inline_) delete[] data_;
    data_ = inline_;
    cap_ = kInline;
    size_ = 0;
    hint_ = 0;
  }

  Interval* data_ = inline_;
  std::size_t size_ = 0;
  std::size_t cap_ = kInline;
  /// Last slow-path insert position; validated before use, so a stale value
  /// costs two compares and falls back to the scan.
  std::uint32_t hint_ = 0;
  Interval inline_[kInline];
};

}  // namespace syccl::sim
