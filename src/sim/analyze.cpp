#include "sim/analyze.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

namespace syccl::sim {

std::vector<std::pair<int, std::vector<int>>> reduce_demands(const coll::Collective& coll) {
  std::map<int, std::vector<int>> by_dst;
  for (const auto& c : coll.chunks()) {
    for (int d : c.dsts) by_dst[d].push_back(c.src);
  }
  std::vector<std::pair<int, std::vector<int>>> out;
  out.reserve(by_dst.size());
  for (auto& [dst, contribs] : by_dst) {
    contribs.push_back(dst);
    std::sort(contribs.begin(), contribs.end());
    contribs.erase(std::unique(contribs.begin(), contribs.end()), contribs.end());
    out.emplace_back(dst, std::move(contribs));
  }
  return out;
}

DemandIndex build_demand_index(const Schedule& schedule, const coll::Collective& coll) {
  DemandIndex index;
  index.pieces_by_chunk.reserve(schedule.pieces.size());
  for (std::size_t i = 0; i < schedule.pieces.size(); ++i) {
    index.pieces_by_chunk[schedule.pieces[i].chunk].push_back(static_cast<int>(i));
  }
  if (coll.reduce()) index.reduce_demands = reduce_demands(coll);
  return index;
}

ScheduleStats analyze_schedule(const Schedule& schedule, const topo::TopologyGroups& groups,
                               const SimOptions& options) {
  ScheduleStats stats;
  stats.num_ops = schedule.ops.size();
  stats.num_pieces = schedule.pieces.size();
  stats.traffic_per_dim.assign(static_cast<std::size_t>(groups.num_dims()), 0.0);

  std::map<int, double> egress;   // up-port bottleneck link id → bytes
  std::map<int, double> ingress;  // down-port bottleneck link id → bytes
  std::map<int, double> port_beta;
  std::map<std::pair<int, int>, int> depth;  // (piece, rank) → relay depth

  for (std::size_t pi = 0; pi < schedule.pieces.size(); ++pi) {
    const Piece& p = schedule.pieces[pi];
    if (p.reduce) {
      for (int c : p.contributors) depth[{static_cast<int>(pi), c}] = 0;
    } else if (p.origin >= 0) {
      depth[{static_cast<int>(pi), p.origin}] = 0;
    }
  }

  for (const TransferOp& op : schedule.ops) {
    const int dim = op.dim >= 0 ? op.dim : groups.best_common_dim(op.src, op.dst);
    if (dim < 0 || dim >= groups.num_dims()) {
      throw std::invalid_argument("op endpoints share no dimension group");
    }
    const auto& gt = groups.group(
        dim, groups.group_of[static_cast<std::size_t>(dim)][static_cast<std::size_t>(op.src)]);
    const int ls = gt.local_of(op.src);
    const int ld = gt.local_of(op.dst);
    const double bytes = schedule.pieces[static_cast<std::size_t>(op.piece)].bytes;

    stats.traffic_per_dim[static_cast<std::size_t>(dim)] += bytes;
    stats.total_traffic += bytes;
    const auto& up = gt.up[static_cast<std::size_t>(ls)];
    const auto& down = gt.down[static_cast<std::size_t>(ld)];
    egress[up.port_id] += bytes;
    ingress[down.port_id] += bytes;
    port_beta[up.port_id] = up.beta;
    port_beta[down.port_id] = down.beta;

    const auto sit = depth.find({op.piece, op.src});
    const int d = (sit != depth.end() ? sit->second : 0) + 1;
    auto [dit, inserted] = depth.try_emplace({op.piece, op.dst}, d);
    if (!inserted) dit->second = std::min(dit->second, d);
    stats.max_relay_depth = std::max(stats.max_relay_depth, d);
  }

  for (const auto& [port, bytes] : egress) {
    (void)port;
    stats.max_port_egress = std::max(stats.max_port_egress, bytes);
  }
  for (const auto& [port, bytes] : ingress) {
    (void)port;
    stats.max_port_ingress = std::max(stats.max_port_ingress, bytes);
  }

  const Simulator sim(groups, options);
  stats.makespan = sim.run(schedule).makespan;
  if (stats.makespan > 0) {
    double worst_busy = 0.0;
    for (const auto& [port, bytes] : egress) {
      worst_busy = std::max(worst_busy, bytes * port_beta[port]);
    }
    for (const auto& [port, bytes] : ingress) {
      worst_busy = std::max(worst_busy, bytes * port_beta[port]);
    }
    stats.bottleneck_utilisation = std::min(1.0, worst_busy / stats.makespan);
  }
  return stats;
}

std::string format_stats(const ScheduleStats& stats) {
  std::ostringstream os;
  os << stats.num_ops << " ops over " << stats.num_pieces << " pieces, "
     << stats.total_traffic / 1e6 << " MB total\n";
  os << "traffic per dimension (MB):";
  for (double t : stats.traffic_per_dim) os << " " << t / 1e6;
  os << "\n";
  os << "hottest port: " << stats.max_port_egress / 1e6 << " MB out, "
     << stats.max_port_ingress / 1e6 << " MB in; relay depth " << stats.max_relay_depth << "\n";
  os << "makespan " << stats.makespan * 1e3 << " ms, bottleneck utilisation "
     << stats.bottleneck_utilisation * 100 << "%";
  return os.str();
}

}  // namespace syccl::sim
