// α–β schedule simulator (paper §5.2), modelled on ASTRA-sim's analytical
// network backend.
//
// The simulator processes transfer ops in issue order. Each op is expanded
// into pipeline blocks; a block over a group link takes α + β·b seconds to
// arrive and occupies the source's up-port and the destination's down-port
// for β·b seconds (Hockney model, identical to the solver's §5.1 model).
// Every event is processed exactly once, so a run costs O(#events) with
// array indexing only on the per-event path: piece state lives in a dense
// per-piece-row arena (struct-of-arrays, no hashing), link busy intervals in
// a dense per-link-id vector of compact timelines, and the (dim, rank) →
// physical hop path resolution is cached once per Simulator.
//
// Ordering contract: ops execute per port in issue order (like MSCCL channel
// programs). A piece must have arrived at an op's source via an earlier op
// (or start there); otherwise the run throws — schedules with dependency
// inversions are rejected rather than silently mistimed.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "coll/collective.h"
#include "sim/schedule.h"
#include "topo/groups.h"

namespace syccl::util {
class ThreadPool;
}

namespace syccl::sim {

struct SimOptions {
  /// Pipeline granularity: a piece is cut into ceil(bytes/block_bytes)
  /// blocks, capped at max_blocks.
  double block_bytes = 1 << 20;
  int max_blocks = 16;
  /// Record the final per-(piece, rank) state in SimResult::final_state.
  /// Off by default: candidate ranking runs millions of simulations and
  /// never looks at the state; the differential harness (sim/oracle.h)
  /// turns it on to compare against the reference simulator.
  bool record_final_state = false;
  /// Record every (block, hop) link occupancy in SimResult::link_events.
  /// Off by default for the same reason; the Chrome-trace timeline export
  /// (obs/timeline.h) turns it on to render per-link Gantt tracks.
  bool record_link_events = false;
};

/// One block occupying one directed physical link (record_link_events only).
struct LinkEvent {
  int op = -1;     ///< index into Schedule::ops
  int block = -1;  ///< pipeline block index within the op
  int link = -1;   ///< directed physical link id (topo::LinkId)
  double start = 0.0;  ///< wire claimed (seconds)
  double end = 0.0;    ///< wire released (start + β·bytes)
};

/// Final availability of one piece at one rank (record_final_state only;
/// ranks where the piece never became present are omitted).
struct PieceRankState {
  int piece = -1;
  int rank = -1;
  /// Per-block arrival times.
  std::vector<double> block_arrival;
  /// Merged contributor ranks, ascending (reduce pieces only).
  std::vector<int> contributors;
};

struct SimResult {
  /// Time at which the last op finished (seconds).
  double makespan = 0.0;
  /// Start time of each op's first block, indexed like Schedule::ops.
  std::vector<double> op_start;
  /// Finish time of each op's last block, indexed like Schedule::ops.
  std::vector<double> op_finish;
  /// Total number of simulated block events.
  std::size_t num_events = 0;
  /// Present (piece, rank) pairs, sorted, when record_final_state is set.
  std::vector<PieceRankState> final_state;
  /// Per-link occupancy intervals when record_link_events is set.
  std::vector<LinkEvent> link_events;
};

/// Outcome of one schedule in a batched timing call. `error` is empty iff
/// the schedule simulated cleanly and met every demand; otherwise it holds
/// the exception text the serial API would have thrown.
struct BatchTiming {
  double time = std::numeric_limits<double>::infinity();
  std::string error;
  bool ok() const { return error.empty(); }
};

/// Immutable after construction: run/time_collective/tune_issue_order are
/// const and keep all working state on the stack, so one Simulator may rank
/// many candidate schedules concurrently (core::Synthesizer's parallel
/// evaluation relies on this). Construction resolves every (dimension, rank)
/// to its physical hop path once; all runs share that cache.
class Simulator {
 public:
  explicit Simulator(const topo::TopologyGroups& groups, SimOptions opts = {});

  /// Simulates a schedule and returns the timing result. Throws
  /// std::invalid_argument on malformed schedules (unknown dims, piece not
  /// present at an op's source, cross-group transfers, reduce contributions
  /// delivered to a rank after it already forwarded its partial).
  SimResult run(const Schedule& schedule) const;

  /// Simulates and additionally verifies that every demand of `coll` is
  /// satisfied (each chunk fully present at each destination; reduce blocks
  /// carry all contributors). Returns the completion time of the *demands*
  /// (max arrival over demanded pairs). Throws if a demand is unmet.
  double time_collective(const Schedule& schedule, const coll::Collective& coll) const;

  /// Iteratively reorders `schedule`'s ops by their simulated start times
  /// (fixed-point of order ↔ timing) and returns the final demand completion
  /// time. Removes head-of-line blocking that a static issue order causes
  /// under per-port FIFO execution. Mutates the schedule's op order only.
  /// Runs exactly one simulation per pass (plus one up front): the engine
  /// result supplies both the sort keys and the timing.
  double tune_issue_order(Schedule& schedule, const coll::Collective& coll,
                          int passes = 2) const;

  // ---- Batched multi-candidate simulation. All batch calls reuse this
  // Simulator's topology/path caches and, when `pool` is non-null, fan the
  // candidates across it. Results are byte-identical to the equivalent
  // serial loop regardless of pool size (each candidate's simulation is
  // deterministic and independent); outputs are written by candidate index.

  /// run() over every schedule. On error the first failing index's exception
  /// is rethrown (after all candidates finished), like a serial loop would.
  std::vector<SimResult> run_batch(std::span<const Schedule* const> schedules,
                                   util::ThreadPool* pool = nullptr) const;

  /// time_collective() over every schedule against one collective.
  /// Per-candidate failures are captured in BatchTiming::error instead of
  /// thrown, so one malformed candidate cannot mask the others' timings.
  std::vector<BatchTiming> time_collectives(std::span<const Schedule* const> schedules,
                                            const coll::Collective& coll,
                                            util::ThreadPool* pool = nullptr) const;

  /// tune_issue_order() over every schedule (mutating each in place).
  /// Failures are captured per candidate like time_collectives().
  std::vector<BatchTiming> tune_issue_orders(std::span<Schedule* const> schedules,
                                             const coll::Collective& coll, int passes = 2,
                                             util::ThreadPool* pool = nullptr) const;

  const topo::TopologyGroups& groups() const { return groups_; }
  const SimOptions& options() const { return opts_; }

  /// Resolved physical-path cache, shared by every engine run. Internal to
  /// src/sim (definition in simulator.cpp); exposed only as an opaque type.
  struct PathCache;

 private:
  const topo::TopologyGroups& groups_;
  SimOptions opts_;
  /// shared_ptr keeps Simulator cheaply copyable; the cache is immutable.
  std::shared_ptr<const PathCache> paths_;
};

}  // namespace syccl::sim
