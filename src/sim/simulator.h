// α–β schedule simulator (paper §5.2), modelled on ASTRA-sim's analytical
// network backend.
//
// The simulator processes transfer ops in issue order. Each op is expanded
// into pipeline blocks; a block over a group link takes α + β·b seconds to
// arrive and occupies the source's up-port and the destination's down-port
// for β·b seconds (Hockney model, identical to the solver's §5.1 model).
// Every event is processed exactly once, so a run costs O(#events) plus hash
// lookups.
//
// Ordering contract: ops execute per port in issue order (like MSCCL channel
// programs). A piece must have arrived at an op's source via an earlier op
// (or start there); otherwise the run throws — schedules with dependency
// inversions are rejected rather than silently mistimed.
#pragma once

#include <cstdint>
#include <vector>

#include "coll/collective.h"
#include "sim/schedule.h"
#include "topo/groups.h"

namespace syccl::sim {

struct SimOptions {
  /// Pipeline granularity: a piece is cut into ceil(bytes/block_bytes)
  /// blocks, capped at max_blocks.
  double block_bytes = 1 << 20;
  int max_blocks = 16;
  /// Record the final per-(piece, rank) state in SimResult::final_state.
  /// Off by default: candidate ranking runs millions of simulations and
  /// never looks at the state; the differential harness (sim/oracle.h)
  /// turns it on to compare against the reference simulator.
  bool record_final_state = false;
  /// Record every (block, hop) link occupancy in SimResult::link_events.
  /// Off by default for the same reason; the Chrome-trace timeline export
  /// (obs/timeline.h) turns it on to render per-link Gantt tracks.
  bool record_link_events = false;
};

/// One block occupying one directed physical link (record_link_events only).
struct LinkEvent {
  int op = -1;     ///< index into Schedule::ops
  int block = -1;  ///< pipeline block index within the op
  int link = -1;   ///< directed physical link id (topo::LinkId)
  double start = 0.0;  ///< wire claimed (seconds)
  double end = 0.0;    ///< wire released (start + β·bytes)
};

/// Final availability of one piece at one rank (record_final_state only;
/// ranks where the piece never became present are omitted).
struct PieceRankState {
  int piece = -1;
  int rank = -1;
  /// Per-block arrival times.
  std::vector<double> block_arrival;
  /// Merged contributor ranks, ascending (reduce pieces only).
  std::vector<int> contributors;
};

struct SimResult {
  /// Time at which the last op finished (seconds).
  double makespan = 0.0;
  /// Start time of each op's first block, indexed like Schedule::ops.
  std::vector<double> op_start;
  /// Finish time of each op's last block, indexed like Schedule::ops.
  std::vector<double> op_finish;
  /// Total number of simulated block events.
  std::size_t num_events = 0;
  /// Present (piece, rank) pairs, sorted, when record_final_state is set.
  std::vector<PieceRankState> final_state;
  /// Per-link occupancy intervals when record_link_events is set.
  std::vector<LinkEvent> link_events;
};

/// Immutable after construction: run/time_collective/tune_issue_order are
/// const and keep all working state on the stack, so one Simulator may rank
/// many candidate schedules concurrently (core::Synthesizer's parallel
/// evaluation relies on this).
class Simulator {
 public:
  explicit Simulator(const topo::TopologyGroups& groups, SimOptions opts = {});

  /// Simulates a schedule and returns the timing result. Throws
  /// std::invalid_argument on malformed schedules (unknown dims, piece not
  /// present at an op's source, cross-group transfers, reduce contributions
  /// delivered to a rank after it already forwarded its partial).
  SimResult run(const Schedule& schedule) const;

  /// Simulates and additionally verifies that every demand of `coll` is
  /// satisfied (each chunk fully present at each destination; reduce blocks
  /// carry all contributors). Returns the completion time of the *demands*
  /// (max arrival over demanded pairs). Throws if a demand is unmet.
  double time_collective(const Schedule& schedule, const coll::Collective& coll) const;

  /// Iteratively reorders `schedule`'s ops by their simulated start times
  /// (fixed-point of order ↔ timing) and returns the final demand completion
  /// time. Removes head-of-line blocking that a static issue order causes
  /// under per-port FIFO execution. Mutates the schedule's op order only.
  double tune_issue_order(Schedule& schedule, const coll::Collective& coll,
                          int passes = 2) const;

  const topo::TopologyGroups& groups() const { return groups_; }
  const SimOptions& options() const { return opts_; }

 private:
  const topo::TopologyGroups& groups_;
  SimOptions opts_;
};

}  // namespace syccl::sim
