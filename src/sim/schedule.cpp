#include "sim/schedule.h"

#include <algorithm>
#include <stdexcept>

#include "sim/analyze.h"

namespace syccl::sim {

int Schedule::add_piece(Piece piece) {
  pieces.push_back(std::move(piece));
  return static_cast<int>(pieces.size()) - 1;
}

void Schedule::add_op(int piece, int src, int dst, int dim, int phase) {
  if (piece < 0 || static_cast<std::size_t>(piece) >= pieces.size()) {
    throw std::out_of_range("op references unknown piece");
  }
  if (src == dst) throw std::invalid_argument("op src == dst");
  ops.push_back(TransferOp{piece, src, dst, dim, phase});
}

void Schedule::append_sequential(const Schedule& tail) {
  int max_phase = 0;
  for (const auto& op : ops) max_phase = std::max(max_phase, op.phase);
  const int base_piece = static_cast<int>(pieces.size());
  pieces.insert(pieces.end(), tail.pieces.begin(), tail.pieces.end());
  for (const auto& op : tail.ops) {
    TransferOp shifted = op;
    shifted.piece += base_piece;
    shifted.phase += max_phase + 1;
    ops.push_back(shifted);
  }
}

double Schedule::total_traffic() const {
  double sum = 0.0;
  for (const auto& op : ops) sum += pieces[static_cast<std::size_t>(op.piece)].bytes;
  return sum;
}

std::vector<Piece> pieces_for(const coll::Collective& coll) {
  std::vector<Piece> out;
  if (!coll.reduce()) {
    out.reserve(coll.chunks().size());
    for (std::size_t i = 0; i < coll.chunks().size(); ++i) {
      const auto& c = coll.chunks()[i];
      out.push_back(Piece{static_cast<int>(i), coll.chunk_bytes(), c.src, false, {}});
    }
    return out;
  }
  // Reduce flows: one reduce piece per destination block, merging the
  // contributions of every chunk that targets it (plus the destination's own
  // partial).
  for (auto& [dst, contribs] : reduce_demands(coll)) {
    Piece p;
    p.chunk = dst;  // block index == destination rank for Reduce/ReduceScatter
    p.bytes = coll.chunk_bytes();
    p.origin = -1;
    p.reduce = true;
    p.contributors = std::move(contribs);
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace syccl::sim
