// Multi-tenant contention simulation: ≥2 concurrent collectives sharing one
// fabric's link timelines.
//
// Production fleets rarely run one job per fabric — data-parallel and
// tensor-parallel traffic of co-located jobs contend for the same NICs and
// rails ("Rethinking ML Collective Communication as a Multi-Commodity Flow
// Problem", PAPERS.md). The model here reuses the α–β engine unchanged:
// every tenant's schedule is merged into one combined schedule with disjoint
// piece rows and a round-robin op interleave, so per-port FIFO execution
// naturally serializes contending tenants on shared links while disjoint
// links stay concurrent.
//
// Modelling assumptions (deterministic by construction):
//  - Tenants start simultaneously; the round-robin interleave is the
//    fair-arbitration approximation of simultaneous issue.
//  - Phase barriers stay global in the merged run: tenants iterate in
//    lockstep (the synchronized-training model — DP+TP phases of co-located
//    jobs align at step boundaries). A tenant with fewer phases simply has
//    no ops in the later ones.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sim/schedule.h"
#include "sim/simulator.h"

namespace syccl::sim {

/// One concurrent collective.
struct Tenant {
  const Schedule* schedule = nullptr;
  std::string name;
};

/// A merged multi-tenant schedule plus the op → tenant ownership map.
struct MergedTenants {
  Schedule schedule;
  /// Owning tenant index of each merged op, indexed like schedule.ops.
  std::vector<int> op_tenant;
};

/// Merges tenants into one schedule: piece rows re-based per tenant, ops
/// interleaved round-robin (one op per live tenant per round) so each
/// tenant's internal issue order — and therefore its dependency order — is
/// preserved. Throws std::invalid_argument on a null tenant schedule.
MergedTenants merge_tenants(std::span<const Tenant> tenants);

/// Per-tenant outcome of a shared run.
struct TenantTiming {
  std::string name;
  /// Finish time of the tenant's last op when running alone on the fabric.
  double solo = 0.0;
  /// Finish time of the tenant's last op in the shared run.
  double contended = 0.0;
  /// contended / solo (1.0 = no interference).
  double slowdown = 1.0;
};

struct ContentionResult {
  /// Makespan of the merged run (= max over tenants' contended finishes).
  double makespan = 0.0;
  std::vector<TenantTiming> tenants;
};

/// Simulates all tenants concurrently on `sim`'s fabric and, for the
/// slowdown ratio, each tenant alone. Throws what Simulator::run throws on
/// malformed schedules.
ContentionResult simulate_concurrent(const Simulator& sim, std::span<const Tenant> tenants);

/// Ranks candidate schedules for one tenant slot under fixed background
/// traffic: candidate i's entry is its contended finish time when simulated
/// concurrently with `background` (infinity when the merged run fails).
/// Candidates that tie solo can rank differently here — a schedule routing
/// around the background's hot links wins under contention.
std::vector<double> rank_under_contention(const Simulator& sim,
                                          std::span<const Schedule* const> candidates,
                                          std::span<const Tenant> background);

}  // namespace syccl::sim
