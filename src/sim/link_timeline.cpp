#include "sim/link_timeline.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace syccl::sim {

namespace {

/// Merge tolerance between two time points: a few ulps, relative to their
/// magnitude, with a tiny absolute floor for times near zero. An absolute
/// epsilon (the old 1e-18) is below one ulp of any time ≥ ~4.5e-3 s, so
/// rounding-level gaps between mathematically adjacent intervals at second
/// scale never merged and the map fragmented into O(#transfers) slivers,
/// degrading allocation to O(n²) on long schedules.
double touch_tolerance(double a, double b) {
  constexpr double kUlps = 4.0;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::max(1e-18, kUlps * std::numeric_limits<double>::epsilon() * scale);
}

bool touches(double earlier_end, double later_start) {
  return earlier_end >= later_start - touch_tolerance(earlier_end, later_start);
}

}  // namespace

double LinkTimeline::allocate(double ready, double dur) {
  if (dur <= 0) return ready;
  double t = ready;
  // First interval that ends after t (candidates for conflict).
  auto it = intervals_.upper_bound(t);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > t) t = prev->second;
  }
  while (it != intervals_.end() && it->first < t + dur) {
    t = std::max(t, it->second);
    ++it;
  }
  // Insert [t, t+dur), merging with touching neighbours.
  double lo = t;
  double hi = t + dur;
  auto next = intervals_.lower_bound(lo);
  if (next != intervals_.begin()) {
    auto prev = std::prev(next);
    if (touches(prev->second, lo)) {
      lo = prev->first;
      hi = std::max(hi, prev->second);
      next = intervals_.erase(prev);
    }
  }
  while (next != intervals_.end() && touches(hi, next->first)) {
    hi = std::max(hi, next->second);
    next = intervals_.erase(next);
  }
  intervals_.emplace(lo, hi);
  return t;
}

}  // namespace syccl::sim
