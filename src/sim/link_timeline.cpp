#include "sim/link_timeline.h"

#include <cstring>

namespace syccl::sim {

void LinkTimeline::grow() {
  const std::size_t new_cap = cap_ * 2;
  Interval* fresh = new Interval[new_cap];
  std::memcpy(fresh, data_, size_ * sizeof(Interval));
  if (data_ != inline_) delete[] data_;
  data_ = fresh;
  cap_ = new_cap;
}

}  // namespace syccl::sim
