// Independent reference simulator for differential correctness checking.
//
// The production simulator (sim/simulator.h) is both the ranking function
// for candidate sketches and the repo's substitute for real execution, so a
// silent bug in it corrupts every reported result. This oracle recomputes
// makespan, per-op start/finish times and the final per-(piece, rank) state
// for any Schedule using deliberately naive machinery, sharing *no code*
// with the production engine:
//
//   * a global chronological event list — every (block, hop) link crossing
//     is materialised as an explicit OracleEvent instead of being folded
//     into incremental head/tail accumulators;
//   * exact per-link FIFO serialisation over plain sorted interval lists —
//     no interval merging, no epsilon compaction, no gap heuristics;
//   * explicit reduce bookkeeping with std::set<int> contributor sets and
//     per-rank forwarded flags.
//
// Both engines implement the same α–β cut-through contract (that contract
// *is* the model under test), so on a correct implementation they agree to
// floating-point rounding: makespans and op times within a relative 1e-9,
// presence and contributor sets exactly. Any larger divergence is a bug in
// one of the two engines. The fuzz harness (fuzz/differential.h) drives
// both over randomized topologies/collectives/schedules.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/schedule.h"
#include "sim/simulator.h"
#include "topo/groups.h"

namespace syccl::sim {

/// One block crossing one directed physical link.
struct OracleEvent {
  int op = -1;
  int block = -1;
  int link = -1;
  double start = 0.0;  ///< wire claimed
  double end = 0.0;    ///< wire released (start + β·bytes)
};

/// Final availability of one piece at one rank.
struct OraclePieceState {
  std::vector<double> block_arrival;
  std::set<int> contributors;  ///< reduce pieces only
};

struct OracleResult {
  double makespan = 0.0;
  std::vector<double> op_start;   ///< indexed like Schedule::ops
  std::vector<double> op_finish;  ///< indexed like Schedule::ops
  /// Final state of every (piece, rank) pair where the piece became present.
  std::map<std::pair<int, int>, OraclePieceState> state;
  /// All link crossings, sorted chronologically by start time.
  std::vector<OracleEvent> events;
};

/// Runs the reference simulation. Throws std::invalid_argument on the same
/// malformed-schedule conditions as Simulator::run (missing source piece,
/// cross-group ops, stale reduce contributions) plus structurally invalid
/// reduce pieces (unsorted/duplicate contributor lists, which the production
/// engine's binary_search would silently mishandle).
OracleResult oracle_run(const topo::TopologyGroups& groups, const Schedule& schedule,
                        const SimOptions& opts = {});

/// Compares a production result (run with record_final_state=true) against
/// the oracle. Returns human-readable divergence descriptions; empty means
/// the engines agree. Times compare within `rel_tol` (relative, with the
/// same absolute floor); presence and contributor sets compare exactly.
std::vector<std::string> diff_against_oracle(const SimResult& production,
                                             const OracleResult& oracle,
                                             double rel_tol = 1e-9);

}  // namespace syccl::sim
