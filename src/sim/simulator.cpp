#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>
#include <tuple>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/link_timeline.h"

namespace syccl::sim {

namespace {

/// Bitset over ranks, used for reduce-contributor tracking.
class RankSet {
 public:
  explicit RankSet(int num_ranks = 0) : words_((static_cast<std::size_t>(num_ranks) + 63) / 64) {}
  void set(int r) { words_[static_cast<std::size_t>(r) / 64] |= 1ull << (r % 64); }
  bool test(int r) const { return (words_[static_cast<std::size_t>(r) / 64] >> (r % 64)) & 1; }
  void merge(const RankSet& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  }
  bool contains_all(const std::vector<int>& ranks) const {
    for (int r : ranks) {
      if (!test(r)) return false;
    }
    return true;
  }
  bool contains(const RankSet& o) const {
    for (std::size_t i = 0; i < o.words_.size(); ++i) {
      if (i >= words_.size()) {
        if (o.words_[i] != 0) return false;
        continue;
      }
      if ((o.words_[i] & ~words_[i]) != 0) return false;
    }
    return true;
  }
  std::vector<int> to_sorted_vector(int num_ranks) const {
    std::vector<int> out;
    for (int r = 0; r < num_ranks; ++r) {
      if (test(r)) out.push_back(r);
    }
    return out;
  }

 private:
  std::vector<std::uint64_t> words_;
};

struct PieceState {
  std::vector<double> block_arrival;  ///< per-block availability time
  RankSet contributors;               ///< reduce pieces only
  bool present = false;
  /// Set once this rank forwarded its partial (reduce pieces only). A
  /// contribution merged in afterwards would never reach downstream ranks
  /// through the already-sent copy — the schedule is racy, reject it.
  bool forwarded = false;
};

using StateKey = std::uint64_t;

StateKey key_of(int piece, int rank) {
  return (static_cast<StateKey>(static_cast<std::uint32_t>(piece)) << 32) |
         static_cast<std::uint32_t>(rank);
}

// Link busy-state (sim/link_timeline.h) is keyed by the directed physical
// link id, shared across dimensions: a rail (dim 1) and a spine (dim 2)
// transfer from the same GPU contend for the same NIC uplink.

struct Engine {
  const topo::TopologyGroups& groups;
  const SimOptions& opts;
  const Schedule& schedule;
  int num_ranks;

  std::unordered_map<StateKey, PieceState> state;
  std::unordered_map<StateKey, LinkTimeline> port_busy;
  SimResult result;

  Engine(const topo::TopologyGroups& g, const SimOptions& o, const Schedule& s)
      : groups(g), opts(o), schedule(s) {
    num_ranks = groups.group_of.empty()
                    ? 0
                    : static_cast<int>(groups.group_of.front().size());
  }

  int blocks_for(double bytes) const {
    const int nb = static_cast<int>(std::ceil(bytes / std::max(1.0, opts.block_bytes)));
    return std::clamp(nb, 1, std::max(1, opts.max_blocks));
  }

  PieceState& state_at(int piece, int rank) {
    auto [it, inserted] = state.try_emplace(key_of(piece, rank));
    if (inserted) {
      const Piece& p = schedule.pieces[static_cast<std::size_t>(piece)];
      const int nb = blocks_for(p.bytes);
      PieceState& ps = it->second;
      ps.contributors = RankSet(num_ranks);
      if (!p.reduce && p.origin == rank) {
        ps.block_arrival.assign(static_cast<std::size_t>(nb), 0.0);
        ps.present = true;
      } else if (p.reduce &&
                 std::binary_search(p.contributors.begin(), p.contributors.end(), rank)) {
        ps.block_arrival.assign(static_cast<std::size_t>(nb), 0.0);
        ps.present = true;
        ps.contributors.set(rank);
      } else {
        ps.block_arrival.assign(static_cast<std::size_t>(nb),
                                std::numeric_limits<double>::infinity());
      }
    }
    return it->second;
  }

  void run() {
    // Event-loop totals for the observability layer. run() is the single
    // choke point behind Simulator::run/time_collective/tune_issue_order, so
    // these two relaxed adds (per run, not per event) see every simulation.
    static obs::Counter& runs_counter = obs::MetricsRegistry::instance().counter("sim.runs");
    static obs::Counter& events_counter =
        obs::MetricsRegistry::instance().counter("sim.events");
    SYCCL_TRACE_SPAN(span, "sim.run", "sim");

    result.op_start.assign(schedule.ops.size(), 0.0);
    result.op_finish.assign(schedule.ops.size(), 0.0);

    // Ops are processed phase by phase with a barrier between phases; inside
    // a phase, issue order is the per-port order.
    std::vector<std::size_t> order(schedule.ops.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return schedule.ops[a].phase < schedule.ops[b].phase;
    });

    double phase_floor = 0.0;
    double phase_max = 0.0;
    int current_phase = order.empty() ? 0 : schedule.ops[order.front()].phase;

    for (std::size_t idx : order) {
      const TransferOp& op = schedule.ops[idx];
      if (op.phase != current_phase) {
        phase_floor = phase_max;
        current_phase = op.phase;
      }
      const double finish = run_op(idx, phase_floor);
      phase_max = std::max(phase_max, finish);
      result.op_finish[idx] = finish;
      result.makespan = std::max(result.makespan, finish);
    }

    if (opts.record_final_state) record_final_state();

    runs_counter.add(1);
    events_counter.add(static_cast<std::int64_t>(result.num_events));
    span.annotate("ops", static_cast<double>(schedule.ops.size()));
    span.annotate("events", static_cast<double>(result.num_events));
    span.annotate("makespan_us", result.makespan * 1e6);
  }

  void record_final_state() {
    for (const auto& [key, ps] : state) {
      if (!ps.present) continue;
      PieceRankState out;
      out.piece = static_cast<int>(key >> 32);
      out.rank = static_cast<int>(key & 0xFFFFFFFFu);
      out.block_arrival = ps.block_arrival;
      if (schedule.pieces[static_cast<std::size_t>(out.piece)].reduce) {
        out.contributors = ps.contributors.to_sorted_vector(num_ranks);
      }
      result.final_state.push_back(std::move(out));
    }
    std::sort(result.final_state.begin(), result.final_state.end(),
              [](const PieceRankState& a, const PieceRankState& b) {
                return std::tie(a.piece, a.rank) < std::tie(b.piece, b.rank);
              });
  }

  double run_op(std::size_t idx, double phase_floor) {
    const TransferOp& op = schedule.ops[idx];
    const Piece& p = schedule.pieces[static_cast<std::size_t>(op.piece)];

    int dim = op.dim;
    if (dim < 0) dim = groups.best_common_dim(op.src, op.dst);
    if (dim < 0 || dim >= groups.num_dims()) {
      throw std::invalid_argument("op endpoints share no dimension group");
    }
    const int g_src = groups.group_of[static_cast<std::size_t>(dim)][static_cast<std::size_t>(op.src)];
    const int g_dst = groups.group_of[static_cast<std::size_t>(dim)][static_cast<std::size_t>(op.dst)];
    if (g_src < 0 || g_src != g_dst) {
      throw std::invalid_argument("op crosses groups in dimension " + std::to_string(dim));
    }
    const topo::GroupTopology& gt = groups.group(dim, g_src);
    const int ls = gt.local_of(op.src);
    const int ld = gt.local_of(op.dst);

    // Full physical path: src → group switch → dst.
    std::vector<const topo::PathHop*> path;
    for (const auto& h : gt.up_hops[static_cast<std::size_t>(ls)]) path.push_back(&h);
    for (const auto& h : gt.down_hops[static_cast<std::size_t>(ld)]) path.push_back(&h);

    PieceState& src_state = state_at(op.piece, op.src);
    if (!src_state.present) {
      throw std::invalid_argument("piece " + std::to_string(op.piece) +
                                  " not available at op source rank " + std::to_string(op.src) +
                                  " (dependency inversion?)");
    }
    // Capture source arrival times before touching dst state (the map may
    // rehash on insertion).
    const std::vector<double> src_arrival = src_state.block_arrival;
    const RankSet src_contrib = src_state.contributors;

    const int nb = blocks_for(p.bytes);
    const double block_bytes = p.bytes / nb;

    PieceState& dst_state = state_at(op.piece, op.dst);
    if (p.reduce && dst_state.forwarded && !dst_state.contributors.contains(src_contrib)) {
      // The destination already forwarded its partial; merging a new
      // contribution now means the copy in flight is stale — downstream
      // ranks would see a contributor set that silently grew after the
      // send. Reject, like the src-absent case, instead of leaving the
      // divergence for the final-destination demand check to maybe catch.
      throw std::invalid_argument("stale reduce contribution: piece " + std::to_string(op.piece) +
                                  " gains contributors at rank " + std::to_string(op.dst) +
                                  " after that rank forwarded its partial");
    }
    double finish = 0.0;
    double first_start = -1.0;
    double first_ready = phase_floor;
    for (int b = 0; b < nb; ++b) {
      // Cut-through per hop: the block's head advances after each hop's α,
      // its tail after the slowest upstream hop drains; each directed link
      // is occupied for β·b and serialises concurrent flows.
      const double ready = std::max(src_arrival[static_cast<std::size_t>(b)], phase_floor);
      if (b == 0) first_ready = ready;
      double head = ready;
      double tail = ready;
      for (const topo::PathHop* hop : path) {
        LinkTimeline& link = port_busy[static_cast<StateKey>(static_cast<std::uint32_t>(hop->link_id))];
        const double occupy = block_bytes * hop->beta;
        const double start = link.allocate(head, occupy);
        if (first_start < 0) first_start = start;
        head = start + hop->alpha;
        tail = std::max(start + hop->alpha + occupy, tail + hop->alpha);
        result.num_events++;
        if (opts.record_link_events) {
          result.link_events.push_back(
              {static_cast<int>(idx), b, hop->link_id, start, start + occupy});
        }
      }
      const double arrival = tail;
      double& slot = dst_state.block_arrival[static_cast<std::size_t>(b)];
      if (p.reduce) {
        // Reduce: the block is usable downstream only once every inbound
        // partial arrived.
        slot = dst_state.present ? std::max(slot, arrival) : arrival;
      } else {
        slot = std::min(slot, arrival);
      }
      finish = std::max(finish, arrival);
    }
    // An op whose blocks never claimed a link slot (zero-hop path) leaves
    // first_start unset; fall back to the first block's ready time instead
    // of reporting a bogus 0.0 that would corrupt tune_issue_order's
    // start-time sort.
    result.op_start[static_cast<std::size_t>(idx)] = first_start >= 0.0 ? first_start : first_ready;
    dst_state.present = true;
    if (p.reduce) {
      dst_state.contributors.merge(src_contrib);
      // Re-look up the source: the dst insertion above may have rehashed
      // the map and invalidated src_state.
      state.find(key_of(op.piece, op.src))->second.forwarded = true;
    }
    return finish;
  }
};

}  // namespace

Simulator::Simulator(const topo::TopologyGroups& groups, SimOptions opts)
    : groups_(groups), opts_(opts) {
  if (opts_.block_bytes <= 0) throw std::invalid_argument("block_bytes must be positive");
  if (opts_.max_blocks < 1) throw std::invalid_argument("max_blocks must be >= 1");
}

SimResult Simulator::run(const Schedule& schedule) const {
  Engine engine(groups_, opts_, schedule);
  engine.run();
  return engine.result;
}

double Simulator::tune_issue_order(Schedule& schedule, const coll::Collective& coll,
                                   int passes) const {
  double best = time_collective(schedule, coll);
  for (int p = 0; p < passes; ++p) {
    Engine engine(groups_, opts_, schedule);
    engine.run();
    std::vector<std::size_t> idx(schedule.ops.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      if (schedule.ops[a].phase != schedule.ops[b].phase) {
        return schedule.ops[a].phase < schedule.ops[b].phase;
      }
      return engine.result.op_start[a] < engine.result.op_start[b];
    });
    Schedule candidate = schedule;
    candidate.ops.clear();
    for (std::size_t i : idx) candidate.ops.push_back(schedule.ops[i]);
    double t;
    try {
      t = time_collective(candidate, coll);
    } catch (const std::exception&) {
      break;  // reorder broke a dependency (shouldn't happen); keep current
    }
    if (t < best) {
      best = t;
      schedule = std::move(candidate);
    } else {
      break;
    }
  }
  return best;
}

double Simulator::time_collective(const Schedule& schedule, const coll::Collective& coll) const {
  Engine engine(groups_, opts_, schedule);
  engine.run();

  // Demand check: every chunk must be fully present at each destination.
  // With chunk splitting, the distinct pieces of one chunk at a destination
  // must cover the chunk's bytes.
  double completion = 0.0;
  const double chunk_bytes = coll.chunk_bytes();
  constexpr double kEps = 1e-6;

  // Index pieces by chunk.
  std::unordered_map<int, std::vector<int>> pieces_by_chunk;
  for (std::size_t i = 0; i < schedule.pieces.size(); ++i) {
    pieces_by_chunk[schedule.pieces[i].chunk].push_back(static_cast<int>(i));
  }

  auto demand_time = [&](int chunk, int dst, bool reduce,
                         const std::vector<int>* contributors) -> double {
    const auto it = pieces_by_chunk.find(chunk);
    if (it == pieces_by_chunk.end()) {
      throw std::invalid_argument("schedule has no pieces for chunk " + std::to_string(chunk));
    }
    double covered = 0.0;
    double when = 0.0;
    for (int pid : it->second) {
      const auto st = engine.state.find(key_of(pid, dst));
      if (st == engine.state.end() || !st->second.present) continue;
      if (reduce && contributors != nullptr &&
          !st->second.contributors.contains_all(*contributors)) {
        continue;
      }
      covered += schedule.pieces[static_cast<std::size_t>(pid)].bytes;
      for (double t : st->second.block_arrival) when = std::max(when, t);
    }
    if (covered + kEps < chunk_bytes) {
      throw std::invalid_argument("demand unmet: chunk " + std::to_string(chunk) +
                                  " at rank " + std::to_string(dst) + " covered " +
                                  std::to_string(covered) + "/" + std::to_string(chunk_bytes));
    }
    return when;
  };

  if (!coll.reduce()) {
    for (std::size_t c = 0; c < coll.chunks().size(); ++c) {
      for (int d : coll.chunks()[c].dsts) {
        completion = std::max(completion, demand_time(static_cast<int>(c), d, false, nullptr));
      }
    }
    return completion;
  }

  // Reduce collectives: block index == destination rank (see pieces_for).
  std::unordered_map<int, std::vector<int>> contributors_by_dst;
  for (const auto& c : coll.chunks()) {
    for (int d : c.dsts) contributors_by_dst[d].push_back(c.src);
  }
  for (auto& [dst, contribs] : contributors_by_dst) {
    contribs.push_back(dst);
    std::sort(contribs.begin(), contribs.end());
    completion = std::max(completion, demand_time(dst, dst, true, &contribs));
  }
  return completion;
}

}  // namespace syccl::sim
